(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Figs. 5, 6, 8, 9; Tables I, II) plus the design ablations,
   and a Bechamel microbenchmark suite for the substrate itself.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- fig5    -- one experiment
     dune exec bench/main.exe -- table2 --np 256   -- smaller scale

   Virtual seconds play the role of the paper's wall-clock seconds (see
   DESIGN.md, "Substitutions"); host seconds are the cost of running the
   simulation itself. *)

module Explorer = Dampi.Explorer
module Report = Dampi.Report
module State = Dampi.State
module Stats = Mpi.Stats
module Runtime = Mpi.Runtime

let pf = Printf.printf

let heading title =
  pf "\n================================================================\n";
  pf "%s\n" title;
  pf "================================================================\n%!"

let finding_kinds (report : Report.t) =
  List.fold_left
    (fun (c, r) (f : Report.finding) ->
      match f.Report.error with
      | Report.Comm_leak _ -> (true, r)
      | Report.Request_leak _ -> (c, true)
      | _ -> (c, r))
    (false, false) report.Report.findings

let yesno = function true -> "Yes" | false -> "No"

(* ---- Fig. 5: ParMETIS, DAMPI vs ISP, 4..32 processes ---- *)

let fig5 () =
  heading
    "Fig. 5 -- ParMETIS-3.1: verification time (virtual s), ISP vs DAMPI";
  pf "%6s %12s %12s %12s %10s %10s\n" "np" "native" "DAMPI" "ISP" "DAMPI-x"
    "ISP-x";
  List.iter
    (fun np ->
      let program = Workloads.Parmetis.program () in
      let native = Explorer.native_makespan ~np program in
      let dampi =
        (Explorer.verify
           ~config:{ Explorer.default_config with max_runs = 1 }
           ~np program)
          .Report.first_run_makespan
      in
      let isp = Isp.Engine.single_run_makespan ~np program in
      pf "%6d %12.3f %12.3f %12.3f %9.2fx %9.2fx\n%!" np native dampi isp
        (dampi /. native) (isp /. native))
    [ 4; 8; 12; 16; 20; 24; 28; 32 ]

(* ---- Table I: ParMETIS MPI operation statistics ---- *)

let table1 () =
  heading "Table I -- Statistics of MPI operations in ParMETIS-3.1";
  let npl = [ 8; 16; 32; 64; 128 ] in
  let results =
    List.map
      (fun np ->
        let rt, outcome = Mpi.Bind.exec ~np (Workloads.Parmetis.program ()) in
        (match outcome with
        | Sim.Coroutine.All_finished -> ()
        | _ -> failwith "table1: parmetis did not finish");
        (np, Runtime.stats rt))
      npl
  in
  let k v = Printf.sprintf "%dK" (v / 1000) in
  let row label f =
    pf "%-22s" label;
    List.iter (fun (_, s) -> pf " %10s" (f s)) results;
    pf "\n"
  in
  pf "%-22s" "MPI Operation Type";
  List.iter (fun np -> pf " %10s" (Printf.sprintf "procs=%d" np)) npl;
  pf "\n";
  row "All" (fun s -> k (Stats.total s));
  row "All per proc." (fun s -> k (int_of_float (Stats.all_per_proc s)));
  row "Send-Recv" (fun s -> k (Stats.total_send_recv s));
  row "Send-Recv per proc" (fun s ->
      k (int_of_float (Stats.send_recv_per_proc s)));
  row "Collective" (fun s -> k (Stats.total_collective s));
  row "Collective per proc" (fun s ->
      Printf.sprintf "%.1fK" (Stats.collective_per_proc s /. 1000.0));
  row "Wait" (fun s -> k (Stats.total_wait s));
  row "Wait per proc" (fun s ->
      Printf.sprintf "%.1fK" (Stats.wait_per_proc s /. 1000.0));
  pf "%!"

(* ---- Table II: DAMPI overhead on medium-large benchmarks ---- *)

let table2 ?(np = 1024) () =
  heading
    (Printf.sprintf
       "Table II -- DAMPI overhead: medium-large benchmarks at %d procs" np);
  pf "%-16s %10s %9s %7s %7s\n" "Program" "Slowdown" "Total R*" "C-Leak"
    "R-Leak";
  let bench name program =
    let native = Explorer.native_makespan ~np program in
    let report =
      Explorer.verify
        ~config:{ Explorer.default_config with max_runs = 1 }
        ~np program
    in
    let c_leak, r_leak = finding_kinds report in
    pf "%-16s %9.2fx %9d %7s %7s\n%!" name
      (report.Report.first_run_makespan /. native)
      report.Report.wildcards_analyzed (yesno c_leak) (yesno r_leak)
  in
  (* ParMETIS's full Table I volume at 1024 ranks is ~10^8 simulated calls;
     the op counts are scaled down 50x here. The slowdown ratio is
     scale-invariant because the skeleton ties compute to the op count. *)
  bench "ParMETIS-3.1"
    (Workloads.Parmetis.program
       ~params:{ Workloads.Parmetis.default_params with scale = 0.02 }
       ());
  List.iter
    (fun shape ->
      bench shape.Workloads.Skeleton.name (Workloads.Skeleton.program shape))
    Workloads.Specmpi.all;
  List.iter
    (fun shape ->
      bench shape.Workloads.Skeleton.name (Workloads.Skeleton.program shape))
    Workloads.Nas.all

(* ---- Fig. 6: matmult, time to explore N interleavings ---- *)

let fig6 () =
  heading
    "Fig. 6 -- Matrix multiplication: time (virtual s) to explore N \
     interleavings";
  let np = 8 in
  let params =
    { Workloads.Matmult.default_params with n = 16; rows_per_task = 1 }
  in
  let program = Workloads.Matmult.program ~params () in
  pf "%15s %14s %14s\n" "interleavings" "DAMPI" "ISP";
  List.iter
    (fun budget ->
      let dampi =
        Explorer.verify
          ~config:{ Explorer.default_config with max_runs = budget }
          ~np program
      in
      let isp =
        Isp.Engine.verify
          ~config:{ Isp.Engine.default_config with max_runs = budget }
          ~np program
      in
      pf "%15d %14.2f %14.2f\n%!" budget dampi.Report.total_virtual_time
        isp.Report.total_virtual_time)
    [ 250; 500; 750; 1000 ]

(* ---- Fig. 8: matmult under bounded mixing ---- *)

let explore_count ~np ~k ~max_runs program =
  let config =
    {
      Explorer.default_config with
      state_config = State.make_config ?mixing_bound:k ();
      max_runs;
    }
  in
  (Explorer.verify ~config ~np program).Report.interleavings

let fig8 () =
  heading
    "Fig. 8 -- Matrix multiplication with bounded mixing: interleavings \
     explored";
  let cap = 20_000 in
  pf "(counts capped at %d)\n" cap;
  pf "%6s %10s %10s %10s %12s\n" "np" "k=0" "k=1" "k=2" "unbounded";
  List.iter
    (fun np ->
      let params =
        { Workloads.Matmult.default_params with n = 6; rows_per_task = 1 }
      in
      let program = Workloads.Matmult.program ~params () in
      let count k = explore_count ~np ~k ~max_runs:cap program in
      pf "%6d %10d %10d %10d %12d\n%!" np
        (count (Some 0))
        (count (Some 1))
        (count (Some 2))
        (count None))
    [ 2; 3; 4; 5; 6; 7; 8 ]

(* ---- Fig. 9: ADLB under bounded mixing ---- *)

let fig9 () =
  heading "Fig. 9 -- ADLB with bounded mixing: interleavings explored";
  let cap = 10_000 in
  pf "(counts capped at %d; ADLB's space explodes beyond any budget, which\n\
     \ is the paper's point about it)\n" cap;
  pf "%6s %10s %10s %10s\n" "np" "k=0" "k=1" "k=2";
  List.iter
    (fun np ->
      let params =
        {
          Workloads.Adlb.default_params with
          servers = max 1 (np / 4);
          puts_per_client = 1;
        }
      in
      let program = Workloads.Adlb.program ~params () in
      let count k = explore_count ~np ~k:(Some k) ~max_runs:cap program in
      pf "%6d %10d %10d %10d\n%!" np (count 0) (count 1) (count 2))
    [ 4; 8; 16; 24; 32 ]

(* ---- Ablation: Lamport vs vector clocks ---- *)

let ablation_clocks () =
  heading
    "Ablation -- clock algebra: Lamport (paper default) vs vector clocks";
  let lamport = (module Clocks.Lamport : Clocks.Clock_intf.S) in
  let vector = (module Clocks.Vector : Clocks.Clock_intf.S) in
  let run clock ~np program =
    let t0 = Unix.gettimeofday () in
    let report =
      Explorer.verify
        ~config:
          {
            Explorer.default_config with
            state_config = State.make_config ~clock ();
            max_runs = 2000;
          }
        ~np program
    in
    let host = Unix.gettimeofday () -. t0 in
    (report, host)
  in
  pf "%-28s %10s %10s %9s %12s %9s\n" "workload/clock" "interleav."
    "findings" "pb-ints" "virtual-s" "host-s";
  let show label ((report : Report.t), host) ~pb_ints =
    pf "%-28s %10d %10d %9d %12.4f %9.3f\n%!" label report.Report.interleavings
      (List.length report.Report.findings)
      pb_ints report.Report.total_virtual_time host
  in
  List.iter
    (fun (wname, np, program) ->
      show (wname ^ "/lamport") (run lamport ~np program) ~pb_ints:1;
      show (wname ^ "/vector") (run vector ~np program) ~pb_ints:np)
    [
      ("fig4", 4, Workloads.Patterns.fig4);
      ( "matmult(6x6)",
        6,
        Workloads.Matmult.program
          ~params:
            { Workloads.Matmult.default_params with n = 6; rows_per_task = 2 }
          () );
      ("adlb", 8, Workloads.Adlb.program ());
    ]

(* ---- Ablation: piggyback mechanism (separate message vs inline packing,
   SS II-D) ---- *)

let ablation_piggyback () =
  heading
    "Ablation -- piggyback mechanism: separate messages (paper's choice) vs \
     inline payload packing";
  let run ~mode ~clock ~np program =
    let config =
      {
        Explorer.default_config with
        state_config = State.make_config ~clock ~piggyback:mode ();
        max_runs = 1;
      }
    in
    (Explorer.verify ~config ~np program).Report.first_run_makespan
  in
  let lamport = (module Clocks.Lamport : Clocks.Clock_intf.S) in
  let vector = (module Clocks.Vector : Clocks.Clock_intf.S) in
  pf "%-24s %6s %12s %14s %14s\n" "workload/clock" "np" "native"
    "pb=separate" "pb=inline";
  List.iter
    (fun (name, np, program) ->
      let native = Explorer.native_makespan ~np program in
      List.iter
        (fun (cname, clock) ->
          let sep = run ~mode:State.Separate ~clock ~np program in
          let inl = run ~mode:State.Inline ~clock ~np program in
          pf "%-24s %6d %12.5f %13.2fx %13.2fx\n%!"
            (name ^ "/" ^ cname)
            np native (sep /. native) (inl /. native))
        [ ("lamport", lamport); ("vector", vector) ])
    [
      ( "parmetis(2%)",
        64,
        Workloads.Parmetis.program
          ~params:{ Workloads.Parmetis.default_params with scale = 0.02 }
          () );
      ("milc", 128, Workloads.Skeleton.program Workloads.Specmpi.milc);
    ]

(* ---- Ablation: random testing (Jitterbug/Marmot style) vs DAMPI ---- *)

module Three_senders_bench (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    match M.rank world with
    | 0 ->
        let seen = ref [] in
        for _ = 1 to 3 do
          let v, _ = M.recv ~src:M.any_source world in
          seen := Mpi.Payload.to_int v :: !seen
        done;
        if !seen = [ 3; 2; 1 ] then failwith "ordering bug"
    | r -> M.send ~dest:0 world (Mpi.Payload.int r)
end

let ablation_random () =
  heading
    "Ablation -- coverage: random schedule testing (SS I baseline) vs DAMPI";
  pf "%-16s %6s | %22s | %s\n" "workload" "np" "random (20/100 seeds)"
    "DAMPI (guaranteed)";
  let cases =
    [
      ("fig3", 3, Workloads.Patterns.fig3);
      ("fig10", 3, Workloads.Patterns.fig10);
      ("three-senders", 4, (module Three_senders_bench : Mpi.Mpi_intf.PROGRAM));
    ]
  in
  List.iter
    (fun (name, np, program) ->
      let r20 = Dampi.Sampler.test ~seeds:(List.init 20 Fun.id) ~np program in
      let r100 = Dampi.Sampler.test ~seeds:(List.init 100 Fun.id) ~np program in
      let dfs =
        Explorer.verify
          ~config:{ Explorer.default_config with max_runs = 5_000 }
          ~np program
      in
      let dfs_errors =
        List.exists
          (fun (f : Report.finding) ->
            match f.Report.error with
            | Report.Deadlock _ | Report.Crash _ -> true
            | _ -> false)
          dfs.Report.findings
      in
      pf "%-16s %6d | err in %3d/20, %3d/100  | %s in %d interleavings\n%!"
        name np r20.Dampi.Sampler.errors_found r100.Dampi.Sampler.errors_found
        (if dfs_errors then "error found"
         else if dfs.Report.monitor_alerts > 0 then "monitor alert"
         else "clean")
        dfs.Report.interleavings)
    cases

(* ---- Ablation: bounded mixing k sweep on one workload ---- *)

let ablation_mixing () =
  heading "Ablation -- bounded mixing k sweep (matmult np=6)";
  let params =
    { Workloads.Matmult.default_params with n = 8; rows_per_task = 2 }
  in
  let program = Workloads.Matmult.program ~params () in
  pf "%10s %14s\n" "k" "interleavings";
  List.iter
    (fun k ->
      let label =
        match k with None -> "unbounded" | Some k -> string_of_int k
      in
      pf "%10s %14d\n%!" label
        (explore_count ~np:6 ~k ~max_runs:50_000 program))
    [ Some 0; Some 1; Some 2; Some 3; Some 4; None ]

(* ---- Parallel exploration scaling (SS IV: decentralized replays are
   independent, so the cluster-level concurrency of the paper maps onto a
   pool of OCaml domains here). Emits BENCH_parallel_explore.json. ---- *)

let parallel_explore () =
  heading
    "Parallel exploration -- wall-clock scaling of domain-parallel guided \
     replays (matmult exhaustive, adlb k=1)";
  pf "(host has %d recommended domain(s); speedup above that count is \
      bounded by the hardware)\n"
    (Domain.recommended_domain_count ());
  let scenarios =
    [
      ( "matmult",
        6,
        None,
        max_int,
        fun () ->
          Workloads.Matmult.program
            ~params:
              { Workloads.Matmult.default_params with n = 8; rows_per_task = 1 }
            () );
      ( "adlb",
        8,
        Some 1,
        2_000,
        fun () -> Workloads.Adlb.program () );
    ]
  in
  let jobs_list = [ 1; 2; 4; 8 ] in
  let all_results =
    List.map
      (fun (name, np, k, max_runs, build) ->
        pf "\n%-10s np=%d %s\n" name np
          (match k with
          | None -> "(unbounded, exhaustive)"
          | Some k -> Printf.sprintf "(mixing bound k=%d, max-runs %d)" k max_runs);
        pf "%6s %14s %10s %12s %9s %12s\n" "jobs" "interleavings" "findings"
          "wall-s" "speedup" "queue-waits";
        let state_config = State.make_config ?mixing_bound:k () in
        let rows =
          List.map
            (fun jobs ->
              let report =
                Explorer.verify
                  ~config:
                    {
                      Explorer.default_config with
                      state_config;
                      max_runs;
                      jobs;
                    }
                  ~np (build ())
              in
              (jobs, report))
            jobs_list
        in
        let base_wall =
          match rows with (_, r) :: _ -> r.Report.host_seconds | [] -> 0.0
        in
        List.iter
          (fun (jobs, (r : Report.t)) ->
            let waits =
              List.fold_left
                (fun acc (w : Report.worker_stat) -> acc + w.Report.queue_waits)
                0 r.Report.workers
            in
            pf "%6d %14d %10d %12.3f %8.2fx %12d\n%!" jobs
              r.Report.interleavings
              (List.length r.Report.findings)
              r.Report.host_seconds
              (base_wall /. Float.max 1e-9 r.Report.host_seconds)
              waits)
          rows;
        (name, np, max_runs, base_wall, rows))
      scenarios
  in
  let path = "BENCH_parallel_explore.json" in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"bench\": \"parallel_explore\",\n  \"scenarios\": [\n";
  let ns = List.length all_results in
  List.iteri
    (fun si (name, np, max_runs, base_wall, rows) ->
      Printf.fprintf oc
        "    {\"workload\": %S, \"np\": %d, \"max_runs\": %d, \"results\": [\n"
        name np max_runs;
      let nr = List.length rows in
      List.iteri
        (fun ri (jobs, (r : Report.t)) ->
          Printf.fprintf oc
            "      {\"jobs\": %d, \"interleavings\": %d, \"findings\": %d, \
             \"wall_seconds\": %.6f, \"speedup\": %.4f, \
             \"match_attempts\": %d, \"piggyback_bytes\": %d, \
             \"queue_waits\": %d}%s\n"
            jobs r.Report.interleavings
            (List.length r.Report.findings)
            r.Report.host_seconds
            (base_wall /. Float.max 1e-9 r.Report.host_seconds)
            (Obs.Metrics.counter_value r.Report.metrics "mpi.match_attempts")
            (Obs.Metrics.counter_value r.Report.metrics
               "dampi.piggyback_bytes")
            (match
               Obs.Metrics.find r.Report.metrics "sched.queue_wait_s"
             with
            | Some (Obs.Metrics.Histogram h) -> h.Obs.Metrics.count
            | _ -> 0)
            (if ri = nr - 1 then "" else ","))
        rows;
      Printf.fprintf oc "    ]}%s\n" (if si = ns - 1 then "" else ","))
    all_results;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  pf "\nresults written to %s\n" path

(* ---- Distributed exploration (SS IV): the coordinator/worker socket
   transport vs the in-process pool on the same workloads. Workers are
   in-process domains speaking the real wire protocol over socketpairs, so
   the measured overhead is the transport itself (framing, leasing,
   heartbeats, result ingestion) and not process start-up. Emits
   BENCH_distributed_explore.json. ---- *)

let distributed_explore () =
  heading
    "Distributed exploration -- coordinator + socket workers vs in-process \
     pool (matmult exhaustive, adlb k=1)";
  let scenarios =
    [
      ( "matmult",
        6,
        None,
        max_int,
        fun () ->
          Workloads.Matmult.program
            ~params:
              { Workloads.Matmult.default_params with n = 8; rows_per_task = 1 }
            () );
      ("adlb", 8, Some 1, 2_000, fun () -> Workloads.Adlb.program ());
    ]
  in
  let resolve (job : Dampi.Wire.job) =
    match
      List.find_opt (fun (n, _, _, _, _) -> n = job.Dampi.Wire.workload)
        scenarios
    with
    | None -> Error (Printf.sprintf "unknown workload %S" job.Dampi.Wire.workload)
    | Some (_, np, k, _, build) ->
        Ok
          {
            Dampi.Remote_worker.np;
            runner =
              Explorer.dampi_runner
                {
                  Explorer.default_config with
                  state_config = State.make_config ?mixing_bound:k ();
                }
                ~np (build ());
            rb = Explorer.default_robustness;
            prune = false;
          }
  in
  (* jobs=1 pool is the baseline; the distributed rows attach 2 and 4
     socket workers to the same exploration. *)
  let modes = [ `Pool 1; `Pool 4; `Dist 2; `Dist 4 ] in
  let all_results =
    List.map
      (fun (name, np, k, max_runs, build) ->
        pf "\n%-10s np=%d %s\n" name np
          (match k with
          | None -> "(unbounded, exhaustive)"
          | Some k ->
              Printf.sprintf "(mixing bound k=%d, max-runs %d)" k max_runs);
        pf "%-10s %14s %10s %12s %9s %8s %10s %8s %10s %9s\n" "mode"
          "interleavings" "findings" "wall-s" "speedup" "leases" "re-leases"
          "steals" "reconnects" "fallbacks";
        let state_config = State.make_config ?mixing_bound:k () in
        let config =
          { Explorer.default_config with state_config; max_runs }
        in
        let rows =
          List.map
            (fun mode ->
              match mode with
              | `Pool jobs ->
                  let r =
                    Explorer.verify ~config:{ config with jobs } ~np (build ())
                  in
                  (Printf.sprintf "pool-%d" jobs, jobs, r)
              | `Dist n ->
                  let workers =
                    List.init n (fun _ ->
                        let c, w =
                          Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
                        in
                        ( c,
                          Domain.spawn (fun () ->
                              ignore (Dampi.Remote_worker.serve ~resolve w)) ))
                  in
                  let setup =
                    {
                      Dampi.Coordinator.attach =
                        Dampi.Coordinator.Fds (List.map fst workers);
                      job = { Dampi.Wire.workload = name; np; params = [] };
                      lease_size = Dampi.Coordinator.default_lease_size;
                      heartbeat_timeout =
                        Dampi.Coordinator.default_heartbeat_timeout;
                      join_timeout = Dampi.Coordinator.default_join_timeout;
                      rejoin_grace = Dampi.Coordinator.default_rejoin_grace;
                      auth = None;
                      net_fault = None;
                      outq_budget = Dampi.Coordinator.default_outq_budget;
                    }
                  in
                  let r =
                    Explorer.verify ~config ~distribute:setup ~np (build ())
                  in
                  List.iter (fun (_, d) -> Domain.join d) workers;
                  (Printf.sprintf "dist-%d" n, n, r))
            modes
        in
        let base_wall =
          match rows with (_, _, r) :: _ -> r.Report.host_seconds | [] -> 0.0
        in
        let counters (r : Report.t) =
          ( Obs.Metrics.counter_value r.Report.metrics "coordinator.leases",
            Obs.Metrics.counter_value r.Report.metrics "coordinator.releases",
            Obs.Metrics.counter_value r.Report.metrics "sched.steals",
            Obs.Metrics.counter_value r.Report.metrics
              "coordinator.reconnects",
            Obs.Metrics.counter_value r.Report.metrics "coordinator.fallbacks"
          )
        in
        List.iter
          (fun (label, _, (r : Report.t)) ->
            let leases, releases, steals, reconnects, fallbacks = counters r in
            pf "%-10s %14d %10d %12.3f %8.2fx %8d %10d %8d %10d %9d\n%!" label
              r.Report.interleavings
              (List.length r.Report.findings)
              r.Report.host_seconds
              (base_wall /. Float.max 1e-9 r.Report.host_seconds)
              leases releases steals reconnects fallbacks)
          rows;
        (name, np, max_runs, base_wall, rows))
      scenarios
  in
  let path = "BENCH_distributed_explore.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"bench\": \"distributed_explore\",\n  \"scenarios\": [\n";
  let ns = List.length all_results in
  List.iteri
    (fun si (name, np, max_runs, base_wall, rows) ->
      Printf.fprintf oc
        "    {\"workload\": %S, \"np\": %d, \"max_runs\": %d, \"results\": [\n"
        name np max_runs;
      let nr = List.length rows in
      List.iteri
        (fun ri (label, workers, (r : Report.t)) ->
          let leases =
            Obs.Metrics.counter_value r.Report.metrics "coordinator.leases"
          in
          let releases =
            Obs.Metrics.counter_value r.Report.metrics "coordinator.releases"
          in
          let steals =
            Obs.Metrics.counter_value r.Report.metrics "sched.steals"
          in
          let reconnects =
            Obs.Metrics.counter_value r.Report.metrics
              "coordinator.reconnects"
          in
          let fallbacks =
            Obs.Metrics.counter_value r.Report.metrics
              "coordinator.fallbacks"
          in
          Printf.fprintf oc
            "      {\"mode\": %S, \"workers\": %d, \"interleavings\": %d, \
             \"findings\": %d, \"wall_seconds\": %.6f, \"speedup\": %.4f, \
             \"leases\": %d, \"releases\": %d, \"steals\": %d, \
             \"reconnects\": %d, \"fallbacks\": %d}%s\n"
            label workers r.Report.interleavings
            (List.length r.Report.findings)
            r.Report.host_seconds
            (base_wall /. Float.max 1e-9 r.Report.host_seconds)
            leases releases steals reconnects fallbacks
            (if ri = nr - 1 then "" else ","))
        rows;
      Printf.fprintf oc "    ]}%s\n" (if si = ns - 1 then "" else ","))
    all_results;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  pf "\nresults written to %s\n" path

(* ---- Fault soak: exploration under injected faults (SS robustness).
   Transient send failures and rank kills abort individual replay attempts;
   the watchdog + retry machinery must absorb them, and whenever every
   replay eventually succeeds within its retry budget the canonical report
   (interleavings, findings) must equal the fault-free one. Emits
   BENCH_fault_soak.json. ---- *)

let fault_soak () =
  heading
    "Fault soak -- exploration under deterministic fault injection (adlb \
     np=8, k=0)";
  let np = 8 in
  let state_config = State.make_config ~mixing_bound:0 () in
  let build () = Workloads.Adlb.program () in
  let run ?fault ?(jobs = 1) () =
    let config =
      {
        Explorer.default_config with
        state_config;
        jobs;
        robustness =
          {
            Explorer.default_robustness with
            fault;
            max_retries = 4;
            max_replay_steps = Some 200_000;
          };
      }
    in
    Explorer.verify ~config ~np (build ())
  in
  let baseline = run () in
  pf "%-26s %6s %14s %10s %9s %9s %9s\n" "scenario" "jobs" "interleavings"
    "findings" "timeouts" "retries" "faulted";
  let show label (r : Report.t) jobs =
    pf "%-26s %6d %14d %10d %9d %9d %9d%s\n%!" label jobs
      r.Report.interleavings
      (List.length r.Report.findings)
      r.Report.runs_timed_out r.Report.runs_retried r.Report.runs_crashed
      (if
         r.Report.interleavings = baseline.Report.interleavings
         && List.length r.Report.findings
            = List.length baseline.Report.findings
       then "  (= fault-free)"
       else "")
  in
  show "fault-free" baseline 1;
  let scenarios =
    [
      ("sendfail(seed=1)", { (Mpi.Fault.default_spec ~seed:1) with delay_prob = 0.0 }, 1);
      ("delay+sendfail(seed=2)", Mpi.Fault.default_spec ~seed:2, 1);
      ("delay+sendfail(seed=2)", Mpi.Fault.default_spec ~seed:2, 4);
      ( "kills(seed=3)",
        { Mpi.Fault.inert with seed = 3; crash_prob = 0.02 },
        4 );
      ( "wedges(seed=4)",
        { Mpi.Fault.inert with seed = 4; wedge_prob = 0.02 },
        4 );
    ]
  in
  let results =
    List.map
      (fun (label, spec, jobs) ->
        let r = run ~fault:spec ~jobs () in
        show label r jobs;
        (label, spec, jobs, r))
      scenarios
  in
  let path = "BENCH_fault_soak.json" in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"bench\": \"fault_soak\",\n  \"np\": %d,\n" np;
  Printf.fprintf oc "  \"baseline_interleavings\": %d,\n  \"results\": [\n"
    baseline.Report.interleavings;
  let n = List.length results in
  List.iteri
    (fun i (label, spec, jobs, (r : Report.t)) ->
      Printf.fprintf oc
        "    {\"scenario\": %S, \"spec\": %S, \"jobs\": %d, \
         \"interleavings\": %d, \"findings\": %d, \"timed_out\": %d, \
         \"retried\": %d, \"faulted\": %d, \"matches_baseline\": %b}%s\n"
        label (Mpi.Fault.to_string spec) jobs r.Report.interleavings
        (List.length r.Report.findings)
        r.Report.runs_timed_out r.Report.runs_retried r.Report.runs_crashed
        (r.Report.interleavings = baseline.Report.interleavings)
        (if i = n - 1 then "" else ","))
    results;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  pf "\nresults written to %s\n" path

(* ---- Sleep-set pruning + prefix cache: effective replays/sec against the
   unpruned walk. Replays/sec — not parallel speedup — is the honest
   single-core metric here: pruning and caching shrink the work, they don't
   add workers (EXPERIMENTS.md). Three measurements per workload:

   - unpruned vs pruned exhaustive walks: the pruned walk covers the same
     schedule space (the differential harness in test_pruning.ml proves the
     canonical reports equal), so its effective rate is baseline-runs over
     pruned wall;
   - a pruned+cached walk that persists the cache sidecar next to a
     checkpoint on completion;
   - a warm re-verification of the same workload: the sidecar turns every
     replay — self run included — into a lookup, which is where the >= 2x
     requirement is met with room to spare.

   matmult is the soundness no-op (every wildcard epoch is owned by the
   master, so no two epochs commute and nothing may be pruned); two-server
   ADLB has independent per-server event loops, so sleep sets actually
   fire. Emits BENCH_prune_explore.json; [prune-gate] compares the
   deterministic fields against bench/baselines/prune.json. ---- *)

type prune_row = {
  pr_workload : string;
  pr_np : int;
  pr_base_runs : int;
  pr_base_wall : float;
  pr_pruned_runs : int;
  pr_runs_pruned : int;
  pr_pruned_findings : int;
  pr_pruned_wall : float;
  pr_equal_findings : bool;
  pr_cached_wall : float;
  pr_warm_wall : float;
  pr_warm_hits : int;
  pr_base_prps : float option;  (* profiler-derived replays/s, unpruned *)
  pr_pruned_prps : float option;
  pr_warm_prps : float option;  (* None when the walk replayed nothing *)
  pr_depth : (string * int) list;  (* resume-depth histogram, bound -> count *)
}

let prune_rows : prune_row list ref = ref []

let prune_explore () =
  heading
    "Prune + prefix cache -- effective replays/sec vs the unpruned walk \
     (matmult no-op check, 2-server adlb)";
  let scenarios =
    [
      ( "matmult",
        6,
        fun () ->
          Workloads.Matmult.program
            ~params:
              { Workloads.Matmult.default_params with n = 6; rows_per_task = 1 }
            () );
      ( "adlb2",
        6,
        fun () ->
          Workloads.Adlb.program
            ~params:
              {
                Workloads.Adlb.default_params with
                servers = 2;
                puts_per_client = 1;
              }
            () );
    ]
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let errors_of (r : Report.t) =
    List.sort compare
      (List.map (fun (f : Report.finding) -> f.Report.error) r.Report.findings)
  in
  pf "%-10s %-14s %14s %8s %9s %10s %11s %9s %8s\n" "workload" "mode"
    "interleavings" "pruned" "findings" "wall-s" "replays/s" "prof-rps"
    "speedup";
  (* Profiler-derived throughput: replays over the summed per-replay wall
     from the explorer.replay_wall_s histogram — excludes scheduler and
     reporting overhead, so it is the per-replay cost the pruning saves.
     A walk that replayed nothing (e.g. a warm cache-hit re-run) has an
     empty histogram: that is [None], not a misleading 0.00. *)
  let hist_rps (r : Report.t) =
    match Obs.Metrics.find r.Report.metrics "explorer.replay_wall_s" with
    | Some (Obs.Metrics.Histogram h)
      when h.Obs.Metrics.sum > 0.0 && h.Obs.Metrics.count > 0 ->
        Some (float_of_int h.Obs.Metrics.count /. h.Obs.Metrics.sum)
    | _ -> None
  in
  let prps_str = function Some v -> Printf.sprintf "%9.1f" v | None -> Printf.sprintf "%9s" "-" in
  let rows =
    List.map
      (fun (name, np, build) ->
        let cfg =
          {
            Explorer.default_config with
            state_config = State.make_config ();
            profile = true;
          }
        in
        let base, base_wall =
          time (fun () -> Explorer.verify ~config:cfg ~np (build ()))
        in
        let base_rps =
          float_of_int base.Report.interleavings /. Float.max 1e-9 base_wall
        in
        let show mode (r : Report.t) wall extra =
          (* Every mode covers the same schedule space as the baseline, so
             effective replays/sec is baseline runs over that mode's wall. *)
          let rps =
            float_of_int base.Report.interleavings /. Float.max 1e-9 wall
          in
          pf "%-10s %-14s %14d %8d %9d %10.3f %11.1f %s %7.2fx%s\n%!" name
            mode r.Report.interleavings r.Report.runs_pruned
            (List.length r.Report.findings)
            wall rps
            (prps_str (hist_rps r))
            (rps /. Float.max 1e-9 base_rps)
            extra
        in
        show "unpruned" base base_wall "";
        let pruned, pruned_wall =
          time (fun () ->
              Explorer.verify ~config:{ cfg with prune = true } ~np (build ()))
        in
        let equal_findings = errors_of base = errors_of pruned in
        show "pruned" pruned pruned_wall
          (if equal_findings then "  (= findings)" else "  (FINDINGS DIFFER)");
        (* Cached walk: persist the sidecar, then re-verify warm. *)
        let ck_path = Filename.temp_file "dampi-prune" ".ck" in
        let ck =
          {
            Explorer.path = ck_path;
            every = 0;
            label = Printf.sprintf "bench prune %s np=%d" name np;
          }
        in
        let cfg_cached =
          {
            cfg with
            prune = true;
            prefix_cache = Some (16 * 1024 * 1024);
            robustness =
              { Explorer.default_robustness with checkpoint = Some ck };
          }
        in
        let cached, cached_wall =
          time (fun () -> Explorer.verify ~config:cfg_cached ~np (build ()))
        in
        show "pruned+cache" cached cached_wall "";
        let warm, warm_wall =
          time (fun () -> Explorer.verify ~config:cfg_cached ~np (build ()))
        in
        let warm_hits =
          Obs.Metrics.counter_value warm.Report.metrics "cache.hits"
        in
        show "warm re-run" warm warm_wall
          (Printf.sprintf "  (%d cache hits)" warm_hits);
        let depth =
          match Obs.Metrics.find warm.Report.metrics "cache.resume_depth" with
          | Some (Obs.Metrics.Histogram h) ->
              List.init
                (Array.length h.Obs.Metrics.counts)
                (fun i ->
                  ( (if i < Array.length h.Obs.Metrics.bounds then
                       Printf.sprintf "%g" h.Obs.Metrics.bounds.(i)
                     else "+inf"),
                    h.Obs.Metrics.counts.(i) ))
              |> List.filter (fun (_, c) -> c > 0)
          | _ -> []
        in
        if depth <> [] then begin
          pf "%-10s resumed-depth histogram (<=bound: count):" name;
          List.iter (fun (b, c) -> pf " %s:%d" b c) depth;
          pf "\n%!"
        end;
        if
          warm.Report.interleavings <> pruned.Report.interleavings
          || errors_of warm <> errors_of pruned
        then pf "%-10s WARNING: warm re-run disagrees with pruned walk\n%!" name;
        (try Sys.remove ck_path with Sys_error _ -> ());
        (try Sys.remove (ck_path ^ ".cache") with Sys_error _ -> ());
        {
          pr_workload = name;
          pr_np = np;
          pr_base_runs = base.Report.interleavings;
          pr_base_wall = base_wall;
          pr_pruned_runs = pruned.Report.interleavings;
          pr_runs_pruned = pruned.Report.runs_pruned;
          pr_pruned_findings = List.length pruned.Report.findings;
          pr_pruned_wall = pruned_wall;
          pr_equal_findings = equal_findings;
          pr_cached_wall = cached_wall;
          pr_warm_wall = warm_wall;
          pr_warm_hits = warm_hits;
          pr_base_prps = hist_rps base;
          pr_pruned_prps = hist_rps pruned;
          pr_warm_prps = hist_rps warm;
          pr_depth = depth;
        })
      scenarios
  in
  prune_rows := rows;
  let path = "BENCH_prune_explore.json" in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"bench\": \"prune_explore\",\n  \"results\": [\n";
  let n = List.length rows in
  (* Profiled replays/sec is [null] when the mode replayed nothing (a warm
     cache-hit walk has an empty replay histogram). *)
  let prps_json = function
    | Some v -> Printf.sprintf "%.2f" v
    | None -> "null"
  in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"workload\": %S, \"np\": %d, \"base_interleavings\": %d, \
         \"pruned_interleavings\": %d, \"runs_pruned\": %d, \"findings\": %d, \
         \"equal_findings\": %b, \"base_wall\": %.6f, \"pruned_wall\": %.6f, \
         \"pruned_speedup\": %.4f, \"cached_wall\": %.6f, \"warm_wall\": %.6f, \
         \"warm_speedup\": %.4f, \"cache_hits\": %d, \
         \"base_profiled_rps\": %s, \"pruned_profiled_rps\": %s, \
         \"warm_profiled_rps\": %s}%s\n"
        r.pr_workload r.pr_np r.pr_base_runs r.pr_pruned_runs r.pr_runs_pruned
        r.pr_pruned_findings r.pr_equal_findings r.pr_base_wall r.pr_pruned_wall
        (r.pr_base_wall /. Float.max 1e-9 r.pr_pruned_wall)
        r.pr_cached_wall r.pr_warm_wall
        (r.pr_base_wall /. Float.max 1e-9 r.pr_warm_wall)
        r.pr_warm_hits
        (prps_json r.pr_base_prps)
        (prps_json r.pr_pruned_prps)
        (prps_json r.pr_warm_prps)
        (if i = n - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  pf "\nresults written to %s\n" path

(* The regression gate: deterministic fields must match the committed
   baseline exactly; wall-derived ratios only have to clear the baseline's
   minimum with generous slack (same-process ratios are machine-portable,
   absolute walls are not). Re-baselining is a deliberate manual act:
   run [bench -- prune], inspect BENCH_prune_explore.json, and edit
   bench/baselines/prune.json to the new deterministic values. *)

let prune_gate () =
  heading "Prune gate -- against bench/baselines/prune.json";
  if !prune_rows = [] then prune_explore ();
  let baseline_path = "bench/baselines/prune.json" in
  if not (Sys.file_exists baseline_path) then begin
    pf "FAIL: %s not found (run from the repository root)\n" baseline_path;
    exit 1
  end;
  let text =
    let ic = open_in baseline_path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  (* The baseline is flat JSON: "<workload>.<field>": value. *)
  let lookup key =
    let anchor = Printf.sprintf "\"%s\":" key in
    match
      let rec find i =
        if i + String.length anchor > String.length text then None
        else if String.sub text i (String.length anchor) = anchor then
          Some (i + String.length anchor)
        else find (i + 1)
      in
      find 0
    with
    | None -> None
    | Some start ->
        let stop = ref start in
        while
          !stop < String.length text
          && not (List.mem text.[!stop] [ ','; '\n'; '}' ])
        do
          incr stop
        done;
        Some (String.trim (String.sub text start (!stop - start)))
  in
  let int_of key = Option.bind (lookup key) int_of_string_opt in
  let float_of key = Option.bind (lookup key) float_of_string_opt in
  let failures = ref 0 in
  let check_int label actual = function
    | None ->
        pf "FAIL %-34s missing from baseline\n" label;
        incr failures
    | Some expected when expected <> actual ->
        pf "FAIL %-34s %d (baseline %d)\n" label actual expected;
        incr failures
    | Some expected -> pf "ok   %-34s %d\n" label expected
  in
  List.iter
    (fun r ->
      let k f = r.pr_workload ^ "." ^ f in
      check_int (k "base_interleavings") r.pr_base_runs (int_of (k "base_interleavings"));
      check_int (k "pruned_interleavings") r.pr_pruned_runs (int_of (k "pruned_interleavings"));
      check_int (k "runs_pruned") r.pr_runs_pruned (int_of (k "runs_pruned"));
      check_int (k "findings") r.pr_pruned_findings (int_of (k "findings"));
      check_int (k "cache_hits") r.pr_warm_hits (int_of (k "cache_hits"));
      if not r.pr_equal_findings then begin
        pf "FAIL %-34s pruned findings differ from unpruned\n" (k "equal_findings");
        incr failures
      end
      else pf "ok   %-34s true\n" (k "equal_findings"))
    !prune_rows;
  (* The acceptance ratio: at least one workload must cover schedules at
     >= min_speedup x the unpruned rate — via pruning, the warm
     re-verification from the cache sidecar, or both. *)
  let min_speedup = Option.value (float_of "min_speedup") ~default:2.0 in
  let best =
    List.fold_left
      (fun acc r ->
        let pruned = r.pr_base_wall /. Float.max 1e-9 r.pr_pruned_wall in
        let warm = r.pr_base_wall /. Float.max 1e-9 r.pr_warm_wall in
        Float.max acc (Float.max pruned warm))
      0.0 !prune_rows
  in
  if best >= min_speedup then
    pf "ok   %-34s %.2fx (needs >= %.2fx)\n" "best replays/sec speedup" best
      min_speedup
  else begin
    pf "FAIL %-34s %.2fx (needs >= %.2fx)\n" "best replays/sec speedup" best
      min_speedup;
    incr failures
  end;
  if !failures > 0 then begin
    pf "\nprune gate: %d failure(s)\n" !failures;
    exit 1
  end;
  pf "\nprune gate: all checks passed\n"

(* ---- Trace overhead: a trace:false runtime must allocate no event
   records. Both the event list and the per-event records are only built
   behind the [trace_on] guard, so two untraced runs of a deterministic
   workload allocate exactly the same number of minor words, and a traced
   run strictly more. ---- *)

let trace_overhead () =
  heading
    "Trace overhead -- message-flow event records only exist under \
     ~trace:true";
  let exec ~trace =
    let rt = Runtime.create ~trace ~np:3 () in
    let module B = Mpi.Bind.Make (struct
      let rt = rt
    end) in
    let module P = (val Workloads.Patterns.fig3) in
    let module Prog = P (B) in
    Runtime.spawn_ranks rt (fun _ -> Prog.main ());
    ignore (Runtime.run rt);
    rt
  in
  let words ~trace =
    ignore (exec ~trace);
    (* warm-up: fault in code paths so both measured runs see the same state *)
    let before = Gc.minor_words () in
    let rt = exec ~trace in
    let after = Gc.minor_words () in
    (after -. before, List.length (Runtime.trace rt))
  in
  let off1, ev_off = words ~trace:false in
  let off2, _ = words ~trace:false in
  let on1, ev_on = words ~trace:true in
  pf "%-14s %14.0f minor words %8d events\n" "trace:false" off1 ev_off;
  pf "%-14s %14.0f minor words %8s\n" "trace:false" off2 "(repeat)";
  pf "%-14s %14.0f minor words %8d events\n%!" "trace:true" on1 ev_on;
  assert (ev_off = 0);
  assert (ev_on > 0);
  assert (off1 = off2);
  assert (on1 > off1);
  pf "OK: untraced runs allocate identically and record zero events; \
      tracing allocates strictly more\n"

(* ---- Hot path: the single-thread replay loop itself ----

   Cold exhaustive walks at jobs=1, trace off, pruning off, no cache — the
   configuration where every interleaving is a genuine re-execution, so
   replays/sec and Gc.minor_words per replay measure the runtime + clock
   hot path and nothing else. Both figures feed bench/baselines/hotpath.json
   via [hotpath_gate]. *)

type hotpath_row = {
  hp_workload : string;
  hp_np : int;
  hp_interleavings : int;
  hp_findings : int;
  hp_wall : float;
  hp_rps : float;
  hp_words_per_replay : float;  (* minor words, deterministic per replay *)
}

let hotpath_rows : hotpath_row list ref = ref []

let hotpath_scenarios =
  [
    ( "adlb2",
      6,
      fun () ->
        Workloads.Adlb.program
          ~params:
            {
              Workloads.Adlb.default_params with
              servers = 2;
              puts_per_client = 1;
            }
          () );
    ( "matmult",
      6,
      fun () ->
        Workloads.Matmult.program
          ~params:
            { Workloads.Matmult.default_params with n = 6; rows_per_task = 1 }
          () );
  ]

let hotpath ?only () =
  heading
    "Hot path -- replays/sec and minor words/replay (jobs=1, trace off, \
     pruning off)";
  pf "%-10s %4s %14s %9s %10s %11s %16s\n" "workload" "np" "interleavings"
    "findings" "wall-s" "replays/s" "minor-w/replay";
  let scenarios =
    match only with
    | None -> hotpath_scenarios
    | Some w -> List.filter (fun (name, _, _) -> name = w) hotpath_scenarios
  in
  let rows =
    List.map
      (fun (name, np, build) ->
        let cfg =
          {
            Explorer.default_config with
            state_config = State.make_config ();
          }
        in
        (* Warm-up walk: faults in every code path and lazy allocation so
           the measured walk's allocation count is steady-state. *)
        ignore (Explorer.verify ~config:cfg ~np (build ()));
        let w0 = Gc.minor_words () in
        let t0 = Unix.gettimeofday () in
        let r = Explorer.verify ~config:cfg ~np (build ()) in
        let wall = Unix.gettimeofday () -. t0 in
        let words = Gc.minor_words () -. w0 in
        let runs = r.Report.interleavings in
        let rps = float_of_int runs /. Float.max 1e-9 wall in
        let wpr = words /. float_of_int (max 1 runs) in
        pf "%-10s %4d %14d %9d %10.3f %11.1f %16.0f\n%!" name np runs
          (List.length r.Report.findings)
          wall rps wpr;
        {
          hp_workload = name;
          hp_np = np;
          hp_interleavings = runs;
          hp_findings = List.length r.Report.findings;
          hp_wall = wall;
          hp_rps = rps;
          hp_words_per_replay = wpr;
        })
      scenarios
  in
  hotpath_rows := rows;
  let path = "BENCH_hotpath.json" in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"bench\": \"hotpath\",\n  \"results\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"workload\": %S, \"np\": %d, \"interleavings\": %d, \
         \"findings\": %d, \"wall_s\": %.6f, \"replays_per_sec\": %.2f, \
         \"minor_words_per_replay\": %.1f}%s\n"
        r.hp_workload r.hp_np r.hp_interleavings r.hp_findings r.hp_wall
        r.hp_rps r.hp_words_per_replay
        (if i = n - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  pf "\nresults written to %s\n" path

(* The hot-path regression gate, mirroring [prune_gate]'s policy:
   deterministic fields (interleavings, findings) must match the committed
   baseline exactly; replays/sec only has to clear [min_rps.<workload>],
   which carries generous slack because absolute throughput is
   machine-dependent; minor words per replay is deterministic for a given
   compiler, so it must stay at or below [max_words_per_replay.<workload>].
   Re-baselining is a deliberate manual act: run [bench -- hotpath], inspect
   BENCH_hotpath.json, and edit bench/baselines/hotpath.json (or run the
   re-baseline workflow_dispatch job and commit its artifact). *)

let hotpath_gate () =
  heading "Hot-path gate -- against bench/baselines/hotpath.json";
  (* Look for the baseline before spending bench time: a missing file is a
     setup error and should fail immediately. *)
  let baseline_path = "bench/baselines/hotpath.json" in
  if not (Sys.file_exists baseline_path) then begin
    pf "FAIL: %s not found (run from the repository root)\n" baseline_path;
    exit 1
  end;
  if !hotpath_rows = [] then hotpath ();
  let text =
    let ic = open_in baseline_path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  (* The baseline is flat JSON: "<workload>.<field>": value. *)
  let lookup key =
    let anchor = Printf.sprintf "\"%s\":" key in
    match
      let rec find i =
        if i + String.length anchor > String.length text then None
        else if String.sub text i (String.length anchor) = anchor then
          Some (i + String.length anchor)
        else find (i + 1)
      in
      find 0
    with
    | None -> None
    | Some start ->
        let stop = ref start in
        while
          !stop < String.length text
          && not (List.mem text.[!stop] [ ','; '\n'; '}' ])
        do
          incr stop
        done;
        Some (String.trim (String.sub text start (!stop - start)))
  in
  let int_of key = Option.bind (lookup key) int_of_string_opt in
  let float_of key = Option.bind (lookup key) float_of_string_opt in
  let failures = ref 0 in
  let check_int label actual = function
    | None ->
        pf "FAIL %-36s missing from baseline\n" label;
        incr failures
    | Some expected when expected <> actual ->
        pf "FAIL %-36s %d (baseline %d)\n" label actual expected;
        incr failures
    | Some expected -> pf "ok   %-36s %d\n" label expected
  in
  List.iter
    (fun r ->
      let k f = r.hp_workload ^ "." ^ f in
      check_int (k "interleavings") r.hp_interleavings
        (int_of (k "interleavings"));
      check_int (k "findings") r.hp_findings (int_of (k "findings"));
      (match float_of ("min_rps." ^ r.hp_workload) with
      | None ->
          pf "FAIL %-36s missing from baseline\n" ("min_rps." ^ r.hp_workload);
          incr failures
      | Some floor when r.hp_rps < floor ->
          pf "FAIL %-36s %.1f (floor %.1f)\n"
            (r.hp_workload ^ ".replays_per_sec")
            r.hp_rps floor;
          incr failures
      | Some floor ->
          pf "ok   %-36s %.1f (floor %.1f)\n"
            (r.hp_workload ^ ".replays_per_sec")
            r.hp_rps floor);
      match float_of ("max_words_per_replay." ^ r.hp_workload) with
      | None ->
          pf "FAIL %-36s missing from baseline\n"
            ("max_words_per_replay." ^ r.hp_workload);
          incr failures
      | Some ceiling when r.hp_words_per_replay > ceiling ->
          pf "FAIL %-36s %.0f (ceiling %.0f)\n"
            (r.hp_workload ^ ".minor_words_per_replay")
            r.hp_words_per_replay ceiling;
          incr failures
      | Some ceiling ->
          pf "ok   %-36s %.0f (ceiling %.0f)\n"
            (r.hp_workload ^ ".minor_words_per_replay")
            r.hp_words_per_replay ceiling)
    !hotpath_rows;
  if !failures > 0 then begin
    pf "\nhotpath gate: %d failure(s)\n" !failures;
    exit 1
  end;
  pf "\nhotpath gate: all checks passed\n"

(* ---- Bechamel microbenchmarks of the substrate ---- *)

let micro () =
  heading "Microbenchmarks (Bechamel) -- substrate throughput";
  let open Bechamel in
  let open Toolkit in
  let tests =
    [
      Test.make ~name:"mpi ping-pong (np=2, 100 msgs)"
        (Staged.stage (fun () ->
             let module P (M : Mpi.Mpi_intf.MPI_CORE) = struct
               let main () =
                 let world = M.comm_world in
                 if M.rank world = 0 then
                   for _ = 1 to 100 do
                     M.send ~dest:1 world (Mpi.Payload.Int 1);
                     ignore (M.recv ~src:1 world)
                   done
                 else
                   for _ = 1 to 100 do
                     ignore (M.recv ~src:0 world);
                     M.send ~dest:0 world (Mpi.Payload.Int 2)
                   done
             end in
             ignore (Mpi.Bind.exec ~np:2 (module P : Mpi.Mpi_intf.PROGRAM))));
      Test.make ~name:"wildcard fan-in (np=8, 70 msgs)"
        (Staged.stage (fun () ->
             let module P (M : Mpi.Mpi_intf.MPI_CORE) = struct
               let main () =
                 let world = M.comm_world in
                 if M.rank world = 0 then
                   for _ = 1 to 70 do
                     ignore (M.recv ~src:M.any_source world)
                   done
                 else
                   for _ = 1 to 10 do
                     M.send ~dest:0 world (Mpi.Payload.Int 3)
                   done
             end in
             ignore (Mpi.Bind.exec ~np:8 (module P : Mpi.Mpi_intf.PROGRAM))));
      Test.make ~name:"full verification of fig3 (np=3)"
        (Staged.stage (fun () ->
             ignore
               (Explorer.verify ~config:Explorer.default_config ~np:3
                  Workloads.Patterns.fig3)));
      Test.make ~name:"lamport tick+merge x1000"
        (Staged.stage (fun () ->
             let c = ref (Clocks.Lamport.make ~np:64) in
             for _ = 1 to 1000 do
               c := Clocks.Lamport.merge (Clocks.Lamport.tick ~me:0 !c) 42
             done));
      Test.make ~name:"vector tick+merge x1000 (np=64)"
        (Staged.stage (fun () ->
             let other = Clocks.Vector.make ~np:64 in
             let c = ref (Clocks.Vector.make ~np:64) in
             for _ = 1 to 1000 do
               c := Clocks.Vector.merge (Clocks.Vector.tick ~me:0 !c) other
             done));
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let grouped = Test.make_grouped ~name:"substrate" tests in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let analyzed =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) analyzed []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> pf "%-52s %14.1f ns/run\n%!" name est
      | Some _ | None -> pf "%-52s (no estimate)\n%!" name)
    rows

(* ---- driver ---- *)

let usage () =
  pf
    "usage: main.exe [all|fig5|fig6|fig8|fig9|table1|table2|ablation-clocks|\n\
    \                 ablation-piggyback|ablation-mixing|parallel|\
     distributed|fault-soak|prune|prune-gate|hotpath|hotpath-matmult|\
     hotpath-gate|trace-overhead|micro] [--np N]\n"

let () =
  let args = Array.to_list Sys.argv in
  let np_override =
    let rec find = function
      | "--np" :: v :: _ -> Some (int_of_string v)
      | _ :: tl -> find tl
      | [] -> None
    in
    find args
  in
  let cmds =
    List.filter
      (fun a ->
        (not (String.length a >= 2 && String.sub a 0 2 = "--"))
        && (match int_of_string_opt a with Some _ -> false | None -> true))
      (List.tl args)
  in
  let run = function
    | "fig5" -> fig5 ()
    | "fig6" -> fig6 ()
    | "fig8" -> fig8 ()
    | "fig9" -> fig9 ()
    | "table1" -> table1 ()
    | "table2" -> table2 ?np:np_override ()
    | "ablation-clocks" -> ablation_clocks ()
    | "ablation-piggyback" -> ablation_piggyback ()
    | "ablation-random" -> ablation_random ()
    | "ablation-mixing" -> ablation_mixing ()
    | "parallel" -> parallel_explore ()
    | "distributed" -> distributed_explore ()
    | "fault-soak" -> fault_soak ()
    | "prune" -> prune_explore ()
    | "prune-gate" -> prune_gate ()
    | "hotpath" -> hotpath ()
    (* Matmult only: quick enough (well under a second) for smoke tests. *)
    | "hotpath-matmult" -> hotpath ~only:"matmult" ()
    | "hotpath-gate" -> hotpath_gate ()
    | "trace-overhead" -> trace_overhead ()
    | "micro" -> micro ()
    | "all" ->
        fig5 ();
        table1 ();
        table2 ?np:np_override ();
        fig6 ();
        fig8 ();
        fig9 ();
        ablation_clocks ();
        ablation_piggyback ();
        ablation_random ();
        ablation_mixing ();
        parallel_explore ();
        distributed_explore ();
        fault_soak ();
        prune_explore ();
        hotpath ();
        trace_overhead ()
    | other ->
        pf "unknown command %S\n" other;
        usage ();
        exit 1
  in
  match cmds with [] -> run "all" | cmds -> List.iter run cmds
