(** The DAMPI interposition layer (Algorithm 1 + the §II-D piggyback
    protocol).

    [Wrap (M) (Cfg)] produces an {!Mpi.Mpi_intf.MPI_CORE} that behaves like
    [M] while maintaining logical clocks, exchanging them through piggyback
    messages (shadow communicators by default, inline payload packing
    optionally), recording epochs and potential matches, enforcing
    guided-replay decisions, and running the §V limitation monitor. Target
    programs instantiate against the wrapped module unmodified — the OCaml
    analogue of relinking against PnMPI. *)

module type WRAPPED = sig
  include Mpi.Mpi_intf.MPI_CORE

  val init_tool : unit -> unit
  (** Collective tool prologue: every rank must call it before any other MPI
      operation (creates the world shadow communicator). *)

  val finalize_tool : unit -> unit
  (** Tool epilogue: synchronizes, then drains in-flight messages and their
      piggybacks so that alternates the application never received (e.g.
      Fig. 3's losing send) still enter the late-message analysis. *)

  val shadow_ctxs : unit -> int list
  (** Contexts of tool-created communicators, for leak-report filtering. *)
end

module Wrap (_ : Mpi.Mpi_intf.MPI_CORE) (_ : sig
  val st : State.t
end) : WRAPPED
