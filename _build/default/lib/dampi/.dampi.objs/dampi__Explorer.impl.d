lib/dampi/explorer.ml: Array Atomic Decisions Epoch Float Hashtbl Interpose List Mpi Mutex Obs Option Printexc Printf Report Scheduler Sim State Unix
