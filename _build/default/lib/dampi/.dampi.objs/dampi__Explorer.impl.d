lib/dampi/explorer.ml: Array Decisions Epoch Hashtbl Interpose List Mpi Printexc Printf Report Sim State Unix
