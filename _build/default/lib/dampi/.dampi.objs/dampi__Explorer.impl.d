lib/dampi/explorer.ml: Array Atomic Decisions Epoch Hashtbl Interpose List Mpi Mutex Printexc Printf Report Scheduler Sim State Unix
