lib/dampi/epoch.ml: Format List Mpi String
