lib/dampi/report.mli: Decisions Epoch Format Sim
