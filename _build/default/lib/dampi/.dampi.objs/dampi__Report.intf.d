lib/dampi/report.mli: Decisions Epoch Format Obs Sim
