lib/dampi/scheduler.ml: Array Condition Domain Fun List Mutex Obs Option Unix
