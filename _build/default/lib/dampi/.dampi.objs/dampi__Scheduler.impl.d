lib/dampi/scheduler.ml: Array Condition Domain Fun List Mutex
