lib/dampi/state.ml: Array Clocks Decisions Epoch Hashtbl List Mpi Obs Option
