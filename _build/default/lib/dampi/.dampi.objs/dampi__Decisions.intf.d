lib/dampi/decisions.mli: Epoch Format Hashtbl
