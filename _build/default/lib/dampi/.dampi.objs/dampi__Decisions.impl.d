lib/dampi/decisions.ml: Array Buffer Epoch Format Fun Hashtbl List Option Printf String
