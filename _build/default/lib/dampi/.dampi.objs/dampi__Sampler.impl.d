lib/dampi/sampler.ml: Array Format Fun Hashtbl List Mpi Option Printexc Printf Sim String
