lib/dampi/epoch.mli: Format
