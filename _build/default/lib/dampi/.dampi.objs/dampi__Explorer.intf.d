lib/dampi/explorer.mli: Decisions Mpi Obs Report Sim State
