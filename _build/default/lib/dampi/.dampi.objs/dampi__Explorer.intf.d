lib/dampi/explorer.mli: Decisions Mpi Report Sim State
