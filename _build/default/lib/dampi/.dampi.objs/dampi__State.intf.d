lib/dampi/state.mli: Clocks Decisions Epoch Hashtbl Mpi Obs
