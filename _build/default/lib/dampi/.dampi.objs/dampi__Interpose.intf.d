lib/dampi/interpose.mli: Mpi State
