lib/dampi/scheduler.mli: Obs
