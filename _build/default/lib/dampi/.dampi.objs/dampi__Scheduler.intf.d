lib/dampi/scheduler.mli:
