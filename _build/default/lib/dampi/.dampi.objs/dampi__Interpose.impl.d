lib/dampi/interpose.ml: Array Epoch Hashtbl List Mpi State
