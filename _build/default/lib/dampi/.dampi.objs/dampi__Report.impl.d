lib/dampi/report.ml: Decisions Epoch Format List Obs Printf Sim String
