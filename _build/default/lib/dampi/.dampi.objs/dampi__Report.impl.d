lib/dampi/report.ml: Decisions Epoch Format List Printf Sim String
