(** The schedule generator and replay driver (Fig. 1, §II-B).

    After the initial self run, DAMPI walks the space of match decisions
    depth-first: it forces the alternate matches of the {e last} epoch
    first, then the penultimate, and so on, re-executing the target program
    under each Epoch-Decisions plan. The walk is stateless — every
    interleaving is a full re-execution from [MPI_Init] — so it relies on
    the runtime's determinism for sound replay.

    The explorer is parametric in the [runner] that executes one
    interleaving; the ISP baseline reuses the same walk with its own
    centralized-cost runner, which is exactly the comparison of Figs. 5/6
    (same coverage, different per-run cost). *)

module Runtime = Mpi.Runtime
module Coroutine = Sim.Coroutine

type config = {
  state_config : State.config;
  cost : Runtime.cost_model;
  max_runs : int;  (** interleaving budget; [max_int] = exhaustive *)
  check_leaks : bool;
  stop_on_first_error : bool;
  jobs : int;  (** worker domains; 1 = sequential depth-first walk *)
  trace : bool;  (** collect a span timeline of the exploration *)
}

let default_config =
  {
    state_config = State.default_config;
    cost = Runtime.default_cost;
    max_runs = max_int;
    check_leaks = true;
    stop_on_first_error = false;
    jobs = 1;
    trace = false;
  }

(* Per-run observability context threaded into the runner: which worker is
   executing, the metric shard that worker owns, and the poison closure the
   interposition layer polls for in-replay cancellation. *)
type run_ctx = {
  worker : int;
  metrics : Obs.Metrics.shard option;
  poison : (unit -> bool) option;
}

let null_ctx = { worker = 0; metrics = None; poison = None }

type runner = ctx:run_ctx -> Decisions.plan -> fork_index:int -> Report.run_record

(* ---- The DAMPI runner: one interposed execution ---- *)

let errors_of_run ~check_leaks ~(outcome : Coroutine.outcome) ~leaks
    ~shadow_ctxs ~(st : State.t) =
  let errors = ref [] in
  (match outcome with
  | Coroutine.All_finished -> ()
  | Coroutine.Deadlock blocked ->
      (* Ranks parked in the tool's finalize barrier completed their user
         code; naming that keeps the report pointing at the real culprits. *)
      let describe (b : Coroutine.blocked_info) =
        let reason =
          if
            b.reason = "collective barrier on dup(world)"
            || b.reason = "collective comm_dup on world"
          then "finished its program (parked in tool finalize)"
          else b.reason
        in
        (b.pid, reason)
      in
      errors :=
        Report.Deadlock { blocked = List.map describe blocked } :: !errors
  | Coroutine.Crashed (pid, exn, _) ->
      errors :=
        Report.Crash { pid; message = Printexc.to_string exn } :: !errors);
  if check_leaks then begin
    (* Leaks are only meaningful for runs that completed finalize. *)
    (match outcome with
    | Coroutine.All_finished ->
        let { Runtime.comm_leaks; req_leaks; _ } = leaks in
        List.iter
          (fun (pid, leaked) ->
            let user_leaked =
              List.filter
                (fun (l : Runtime.leaked_comm) ->
                  not (List.mem l.Runtime.leaked_ctx shadow_ctxs))
                leaked
            in
            if user_leaked <> [] then
              errors :=
                Report.Comm_leak
                  {
                    pid;
                    labels =
                      List.map
                        (fun (l : Runtime.leaked_comm) ->
                          Printf.sprintf "%s(ctx=%d)" l.Runtime.leaked_label
                            l.Runtime.leaked_ctx)
                        user_leaked;
                  }
                :: !errors)
          comm_leaks;
        Array.iteri
          (fun pid count ->
            if count > 0 then
              errors := Report.Request_leak { pid; count } :: !errors)
          req_leaks
    | Coroutine.Deadlock _ | Coroutine.Crashed _ -> ())
  end;
  List.iter
    (fun (w : State.monitor_warning) ->
      errors :=
        Report.Monitor_alert
          { pid = w.State.warn_pid; epoch_id = w.State.warn_epoch_id; op = w.State.warn_op }
        :: !errors)
    (State.warnings st);
  if st.State.divergences > 0 then
    errors := Report.Replay_divergence { count = st.State.divergences } :: !errors;
  List.rev !errors

let dampi_runner config ~np (program : Mpi.Mpi_intf.program) : runner =
 fun ~ctx plan ~fork_index ->
  let rt = Runtime.create ~cost:config.cost ?metrics:ctx.metrics ~np () in
  let st =
    State.create ~config:config.state_config ?metrics:ctx.metrics
      ?poison:ctx.poison ~np ~plan ~fork_index ()
  in
  let module B = Mpi.Bind.Make (struct
    let rt = rt
  end) in
  let module W = Interpose.Wrap (B) (struct
    let st = st
  end) in
  let module P = (val program) in
  let module Prog = P (W) in
  Runtime.spawn_ranks rt (fun _rank ->
      W.init_tool ();
      Prog.main ();
      W.finalize_tool ());
  let outcome = Runtime.run rt in
  (* A poisoned rank surfaces as a crash on [Replay_cancelled]; the run is
     then a cancelled replay, not a finding. *)
  let cancelled =
    match outcome with
    | Coroutine.Crashed (_, State.Replay_cancelled, _) -> true
    | _ -> false
  in
  let leaks = Runtime.leak_report rt in
  {
    Report.run_plan = plan;
    outcome;
    makespan = Runtime.makespan rt;
    new_epochs = (if cancelled then [] else State.completed_epochs st);
    run_errors =
      (if cancelled then []
       else
         errors_of_run ~check_leaks:config.check_leaks ~outcome ~leaks
           ~shadow_ctxs:(W.shadow_ctxs ()) ~st);
    wildcards = State.wildcard_events st;
    cancelled;
  }

(* A run with no tool attached, for overhead baselines (Table II). *)
let native_makespan ?(cost = Runtime.default_cost) ~np program =
  let rt, _outcome = Mpi.Bind.exec ~cost ~np program in
  Runtime.makespan rt

(* ---- The walk over epoch decisions ---- *)

(* One pending guided run: the observed prefix up to a fork, plus the single
   alternate match to force there. Expanding a frontier into one item per
   alternative (rather than one frame per epoch with an [untried] list)
   keeps the work-queue items immutable, which is what lets a pool of
   domains consume them without sharing any per-frame mutable state. *)
type item = {
  prefix : Decisions.decision list;  (* observed matches before the fork *)
  choice : Decisions.decision;  (* the alternate match this run forces *)
}

let rec take n = function
  | [] -> []
  | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

(* The child frontier of [record]: one item per unexplored alternative of
   each expandable epoch, deepest epoch first and alternatives in ascending
   order. Under a LIFO queue with one worker this visits exactly the same
   depth-first order as the original recursive walk: the deepest fork's
   first alternative runs next, and its whole subtree is exhausted before
   the second alternative starts. *)
let items_of_record (record : Report.run_record) ~plan_decisions =
  let observed =
    List.map
      (fun (e : Epoch.t) ->
        Decisions.decision_of_epoch e ~src:e.Epoch.matched_src)
      record.Report.new_epochs
  in
  let batches =
    List.mapi
      (fun i (e : Epoch.t) ->
        if not e.Epoch.expandable then []
        else
          List.map
            (fun alt ->
              {
                prefix = plan_decisions @ take i observed;
                choice =
                  {
                    Decisions.owner = e.Epoch.owner;
                    epoch_id = e.Epoch.id;
                    src = alt;
                    kind = e.Epoch.kind;
                  };
              })
            (Epoch.alternatives e))
      record.Report.new_epochs
  in
  List.concat (List.rev batches)

(* Sequential and parallel exploration share this one loop: the frontier
   lives in a Scheduler work queue, and each executed item is a complete
   guided replay (fresh Runtime + State inside [runner], so workers share
   no mutable state beyond the queue and the findings table). Findings
   merge under [m] keyed by error signature, keeping the canonically
   smallest reproduction schedule, and the report sorts findings by
   schedule — so the finding set, interleaving count, and bounded-epoch
   count are identical at any worker count (on an exhaustive exploration;
   a binding [max_runs] budget selects a worker-order-dependent subset of
   runs by nature). *)
let explore ?(config = default_config) ~np (runner : runner) : Report.t =
  let started = Unix.gettimeofday () in
  let jobs = max 1 config.jobs in
  (* Shard layout: one per worker domain, plus a final shard for the
     scheduler (whose writes happen under its own lock). The merged snapshot
     of a jobs=N exploration equals the jobs=1 one for every series that is
     a property of the run set. *)
  let registry = Obs.Metrics.create ~shards:(jobs + 1) () in
  let worker_shard w = Obs.Metrics.shard registry w in
  let replays_c =
    Array.init jobs (fun w ->
        Obs.Metrics.counter (worker_shard w) "explorer.replays")
  in
  let wall_h =
    Array.init jobs (fun w ->
        Obs.Metrics.histogram (worker_shard w) "explorer.replay_wall_s")
  in
  let vtime_h =
    Array.init jobs (fun w ->
        Obs.Metrics.histogram (worker_shard w) "explorer.replay_vtime_s")
  in
  let cancel_h =
    Array.init jobs (fun w ->
        Obs.Metrics.histogram (worker_shard w) "explorer.cancel_latency_s")
  in
  let tracer =
    if config.trace then Some (Obs.Trace.create ~shards:jobs ()) else None
  in
  let m = Mutex.create () in
  let findings : (string, Report.finding) Hashtbl.t = Hashtbl.create 16 in
  let runs = ref 0 in
  let runs_cancelled = ref 0 in
  let total_vtime = ref 0.0 in
  let monitor_alerts = ref 0 in
  let bounded = ref 0 in
  let error_found = Atomic.make false in
  let cancel_at = Atomic.make 0.0 in
  let poison =
    if config.stop_on_first_error then
      Some (fun () -> Atomic.get error_found)
    else None
  in
  let root_span =
    Option.map
      (fun tr ->
        Obs.Trace.begin_span (Obs.Trace.sink tr 0)
          ~args:[ ("np", Obs.Trace.Int np); ("jobs", Obs.Trace.Int jobs) ]
          "explore")
      tracer
  in
  let root_id =
    match root_span with Some sp -> Obs.Trace.span_id sp | None -> -1
  in
  let worker_runs = Array.make jobs 0 in
  let worker_wall = Array.make jobs 0.0 in
  let worker_vtime = Array.make jobs 0.0 in
  (* Caller holds [m]. *)
  let record_findings (record : Report.run_record) ~run_index ~schedule =
    List.iter
      (fun error ->
        (match error with
        | Report.Monitor_alert _ -> incr monitor_alerts
        | _ -> ());
        let key = Report.error_signature error in
        let candidate = { Report.error; run_index; schedule } in
        match Hashtbl.find_opt findings key with
        | None -> Hashtbl.replace findings key candidate
        | Some kept ->
            if Report.compare_schedule schedule kept.Report.schedule < 0 then
              Hashtbl.replace findings key candidate)
      record.Report.run_errors
  in
  let run_one plan ~fork_index ~schedule ~worker ~name =
    let ctx = { worker; metrics = Some (worker_shard worker); poison } in
    (* Span args carry only run-set-determined values (fork, depth), never
       wall times, so jobs=1 span trees reproduce exactly. *)
    let sp =
      Option.map
        (fun tr ->
          Obs.Trace.begin_span (Obs.Trace.sink tr worker) ~parent:root_id
            ~args:
              [
                ("fork", Obs.Trace.Int fork_index);
                ("depth", Obs.Trace.Int (List.length schedule));
              ]
            name)
        tracer
    in
    let t0 = Unix.gettimeofday () in
    let record = runner ~ctx plan ~fork_index in
    let wall = Unix.gettimeofday () -. t0 in
    (match (tracer, sp) with
    | Some tr, Some sp -> Obs.Trace.end_span (Obs.Trace.sink tr worker) sp
    | _ -> ());
    (* Per-worker shard: this domain is the only writer. *)
    Obs.Metrics.observe wall_h.(worker) wall;
    if record.Report.cancelled then
      Obs.Metrics.observe cancel_h.(worker)
        (Float.max 0.0 (Unix.gettimeofday () -. Atomic.get cancel_at))
    else begin
      Obs.Metrics.incr replays_c.(worker);
      Obs.Metrics.observe vtime_h.(worker) record.Report.makespan
    end;
    Mutex.lock m;
    if record.Report.cancelled then begin
      incr runs_cancelled;
      worker_wall.(worker) <- worker_wall.(worker) +. wall;
      Mutex.unlock m;
      record
    end
    else begin
      let index = !runs in
      incr runs;
      total_vtime := !total_vtime +. record.Report.makespan;
      worker_runs.(worker) <- worker_runs.(worker) + 1;
      worker_wall.(worker) <- worker_wall.(worker) +. wall;
      worker_vtime.(worker) <- worker_vtime.(worker) +. record.Report.makespan;
      List.iter
        (fun (e : Epoch.t) -> if not e.Epoch.expandable then incr bounded)
        record.Report.new_epochs;
      record_findings record ~run_index:index ~schedule;
      if
        List.exists
          (function Report.Deadlock _ | Report.Crash _ -> true | _ -> false)
          record.Report.run_errors
      then begin
        if not (Atomic.get error_found) then
          Atomic.set cancel_at (Unix.gettimeofday ());
        Atomic.set error_found true
      end;
      Mutex.unlock m;
      record
    end
  in
  (* Initial self run, on the calling domain. *)
  let initial =
    run_one (Decisions.empty ~np) ~fork_index:(-1) ~schedule:[] ~worker:0
      ~name:"self-run"
  in
  let sched_stats =
    if
      !runs >= config.max_runs
      || (config.stop_on_first_error && Atomic.get error_found)
    then []
    else begin
      let sched =
        Scheduler.create ~order:Scheduler.Lifo ~jobs
          ~budget:(config.max_runs - !runs)
          ~metrics:(Obs.Metrics.shard registry jobs)
          ()
      in
      Scheduler.push_batch sched (items_of_record initial ~plan_decisions:[]);
      Scheduler.run sched (fun ~worker it ->
          let decisions = it.prefix @ [ it.choice ] in
          let plan = Decisions.of_decisions ~np decisions in
          let record =
            run_one plan
              ~fork_index:(List.length decisions - 1)
              ~schedule:decisions ~worker ~name:"replay"
          in
          if
            record.Report.cancelled
            || (config.stop_on_first_error && Atomic.get error_found)
          then begin
            Scheduler.cancel sched;
            []
          end
          else items_of_record record ~plan_decisions:decisions);
      Scheduler.stats sched
    end
  in
  let workers =
    List.init jobs (fun i ->
        let queue_waits =
          match
            List.find_opt
              (fun (ws : Scheduler.worker_stats) -> ws.Scheduler.worker_id = i)
              sched_stats
          with
          | Some ws -> ws.Scheduler.queue_waits
          | None -> 0
        in
        {
          Report.worker_id = i;
          runs_executed = worker_runs.(i);
          queue_waits;
          wall_seconds = worker_wall.(i);
          virtual_seconds = worker_vtime.(i);
        })
  in
  (match (tracer, root_span) with
  | Some tr, Some sp -> Obs.Trace.end_span (Obs.Trace.sink tr 0) sp
  | _ -> ());
  {
    Report.np;
    interleavings = !runs;
    findings =
      Hashtbl.fold (fun _ f acc -> f :: acc) findings []
      |> List.sort Report.compare_finding;
    wildcards_analyzed = initial.Report.wildcards;
    first_run_makespan = initial.Report.makespan;
    total_virtual_time = !total_vtime;
    monitor_alerts = !monitor_alerts;
    bounded_epochs = !bounded;
    host_seconds = Unix.gettimeofday () -. started;
    jobs;
    workers;
    runs_cancelled = !runs_cancelled;
    metrics = Obs.Metrics.snapshot registry;
    worker_metrics =
      List.init (jobs + 1) (fun i -> (i, Obs.Metrics.shard_snapshot registry i))
      |> List.filter (fun (_, s) -> s <> []);
    events = (match tracer with Some tr -> Obs.Trace.events tr | None -> []);
  }

(** Verify [program] on [np] simulated ranks under DAMPI. *)
let verify ?(config = default_config) ~np program =
  explore ~config ~np (dampi_runner config ~np program)

(** Execute exactly one guided run under [plan] (e.g. a schedule loaded from
    an Epoch-Decisions file) and report what it produced. *)
let replay ?(config = default_config) ?metrics ~np program plan =
  dampi_runner config ~np program
    ~ctx:{ null_ctx with metrics }
    plan
    ~fork_index:(Decisions.length plan - 1)
