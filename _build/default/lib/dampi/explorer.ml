(** The schedule generator and replay driver (Fig. 1, §II-B).

    After the initial self run, DAMPI walks the space of match decisions
    depth-first: it forces the alternate matches of the {e last} epoch
    first, then the penultimate, and so on, re-executing the target program
    under each Epoch-Decisions plan. The walk is stateless — every
    interleaving is a full re-execution from [MPI_Init] — so it relies on
    the runtime's determinism for sound replay.

    The explorer is parametric in the [runner] that executes one
    interleaving; the ISP baseline reuses the same walk with its own
    centralized-cost runner, which is exactly the comparison of Figs. 5/6
    (same coverage, different per-run cost). *)

module Runtime = Mpi.Runtime
module Coroutine = Sim.Coroutine

type config = {
  state_config : State.config;
  cost : Runtime.cost_model;
  max_runs : int;  (** interleaving budget; [max_int] = exhaustive *)
  check_leaks : bool;
  stop_on_first_error : bool;
}

let default_config =
  {
    state_config = State.default_config;
    cost = Runtime.default_cost;
    max_runs = max_int;
    check_leaks = true;
    stop_on_first_error = false;
  }

type runner = Decisions.plan -> fork_index:int -> Report.run_record

(* ---- The DAMPI runner: one interposed execution ---- *)

let errors_of_run ~check_leaks ~(outcome : Coroutine.outcome) ~leaks
    ~shadow_ctxs ~(st : State.t) =
  let errors = ref [] in
  (match outcome with
  | Coroutine.All_finished -> ()
  | Coroutine.Deadlock blocked ->
      (* Ranks parked in the tool's finalize barrier completed their user
         code; naming that keeps the report pointing at the real culprits. *)
      let describe (b : Coroutine.blocked_info) =
        let reason =
          if
            b.reason = "collective barrier on dup(world)"
            || b.reason = "collective comm_dup on world"
          then "finished its program (parked in tool finalize)"
          else b.reason
        in
        (b.pid, reason)
      in
      errors :=
        Report.Deadlock { blocked = List.map describe blocked } :: !errors
  | Coroutine.Crashed (pid, exn, _) ->
      errors :=
        Report.Crash { pid; message = Printexc.to_string exn } :: !errors);
  if check_leaks then begin
    (* Leaks are only meaningful for runs that completed finalize. *)
    (match outcome with
    | Coroutine.All_finished ->
        let { Runtime.comm_leaks; req_leaks; _ } = leaks in
        List.iter
          (fun (pid, leaked) ->
            let user_leaked =
              List.filter
                (fun (l : Runtime.leaked_comm) ->
                  not (List.mem l.Runtime.leaked_ctx shadow_ctxs))
                leaked
            in
            if user_leaked <> [] then
              errors :=
                Report.Comm_leak
                  {
                    pid;
                    labels =
                      List.map
                        (fun (l : Runtime.leaked_comm) ->
                          Printf.sprintf "%s(ctx=%d)" l.Runtime.leaked_label
                            l.Runtime.leaked_ctx)
                        user_leaked;
                  }
                :: !errors)
          comm_leaks;
        Array.iteri
          (fun pid count ->
            if count > 0 then
              errors := Report.Request_leak { pid; count } :: !errors)
          req_leaks
    | Coroutine.Deadlock _ | Coroutine.Crashed _ -> ())
  end;
  List.iter
    (fun (w : State.monitor_warning) ->
      errors :=
        Report.Monitor_alert
          { pid = w.State.warn_pid; epoch_id = w.State.warn_epoch_id; op = w.State.warn_op }
        :: !errors)
    (State.warnings st);
  if st.State.divergences > 0 then
    errors := Report.Replay_divergence { count = st.State.divergences } :: !errors;
  List.rev !errors

let dampi_runner config ~np (program : Mpi.Mpi_intf.program) : runner =
 fun plan ~fork_index ->
  let rt = Runtime.create ~cost:config.cost ~np () in
  let st =
    State.create ~config:config.state_config ~np ~plan ~fork_index ()
  in
  let module B = Mpi.Bind.Make (struct
    let rt = rt
  end) in
  let module W = Interpose.Wrap (B) (struct
    let st = st
  end) in
  let module P = (val program) in
  let module Prog = P (W) in
  Runtime.spawn_ranks rt (fun _rank ->
      W.init_tool ();
      Prog.main ();
      W.finalize_tool ());
  let outcome = Runtime.run rt in
  let leaks = Runtime.leak_report rt in
  {
    Report.run_plan = plan;
    outcome;
    makespan = Runtime.makespan rt;
    new_epochs = State.completed_epochs st;
    run_errors =
      errors_of_run ~check_leaks:config.check_leaks ~outcome ~leaks
        ~shadow_ctxs:(W.shadow_ctxs ()) ~st;
    wildcards = State.wildcard_events st;
  }

(* A run with no tool attached, for overhead baselines (Table II). *)
let native_makespan ?(cost = Runtime.default_cost) ~np program =
  let rt, _outcome = Mpi.Bind.exec ~cost ~np program in
  Runtime.makespan rt

(* ---- Depth-first walk over epoch decisions ---- *)

type frame = {
  prefix : Decisions.decision list;  (* observed matches before the fork *)
  fork_owner : int;
  fork_id : int;
  fork_kind : Epoch.kind;
  mutable untried : int list;
}

let rec take n = function
  | [] -> []
  | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

let explore ?(config = default_config) ~np (runner : runner) : Report.t =
  let started = Unix.gettimeofday () in
  let stack = ref [] in
  let findings : (string, Report.finding) Hashtbl.t = Hashtbl.create 16 in
  let runs = ref 0 in
  let total_vtime = ref 0.0 in
  let first_makespan = ref 0.0 in
  let wildcards_analyzed = ref 0 in
  let monitor_alerts = ref 0 in
  let bounded = ref 0 in
  let record_findings (record : Report.run_record) ~run_index ~schedule =
    List.iter
      (fun error ->
        (match error with
        | Report.Monitor_alert _ -> incr monitor_alerts
        | _ -> ());
        let key = Report.error_signature error in
        if not (Hashtbl.mem findings key) then
          Hashtbl.replace findings key { Report.error; run_index; schedule })
      record.Report.run_errors
  in
  (* Push one frame per expandable epoch of [record], deepest last so the
     stack pops the last decision first. *)
  let push_frames (record : Report.run_record) ~plan_decisions =
    let observed =
      List.map
        (fun (e : Epoch.t) ->
          Decisions.decision_of_epoch e ~src:e.Epoch.matched_src)
        record.Report.new_epochs
    in
    List.iteri
      (fun i (e : Epoch.t) ->
        if not e.Epoch.expandable then incr bounded;
        if e.Epoch.expandable then
          match Epoch.alternatives e with
          | [] -> ()
          | alts ->
              stack :=
                {
                  prefix = plan_decisions @ take i observed;
                  fork_owner = e.Epoch.owner;
                  fork_id = e.Epoch.id;
                  fork_kind = e.Epoch.kind;
                  untried = alts;
                }
                :: !stack)
      record.Report.new_epochs
  in
  let run_one plan ~fork_index ~schedule =
    let record = runner plan ~fork_index in
    let index = !runs in
    incr runs;
    total_vtime := !total_vtime +. record.Report.makespan;
    record_findings record ~run_index:index ~schedule;
    record
  in
  (* Initial self run. *)
  let initial =
    run_one (Decisions.empty ~np) ~fork_index:(-1) ~schedule:[]
  in
  first_makespan := initial.Report.makespan;
  wildcards_analyzed := initial.Report.wildcards;
  push_frames initial ~plan_decisions:[];
  let errors_found () =
    Hashtbl.fold
      (fun _ (f : Report.finding) acc ->
        acc
        ||
        match f.Report.error with
        | Report.Deadlock _ | Report.Crash _ -> true
        | _ -> false)
      findings false
  in
  let rec loop () =
    if !runs >= config.max_runs then ()
    else if config.stop_on_first_error && errors_found () then ()
    else
      match !stack with
      | [] -> ()
      | frame :: rest -> (
          match frame.untried with
          | [] ->
              stack := rest;
              loop ()
          | alt :: more ->
              frame.untried <- more;
              let decisions =
                frame.prefix
                @ [
                    {
                      Decisions.owner = frame.fork_owner;
                      epoch_id = frame.fork_id;
                      src = alt;
                      kind = frame.fork_kind;
                    };
                  ]
              in
              let plan = Decisions.of_decisions ~np decisions in
              let record =
                run_one plan
                  ~fork_index:(List.length decisions - 1)
                  ~schedule:decisions
              in
              push_frames record ~plan_decisions:decisions;
              loop ())
  in
  loop ();
  {
    Report.np;
    interleavings = !runs;
    findings =
      Hashtbl.fold (fun _ f acc -> f :: acc) findings []
      |> List.sort (fun a b -> compare a.Report.run_index b.Report.run_index);
    wildcards_analyzed = !wildcards_analyzed;
    first_run_makespan = !first_makespan;
    total_virtual_time = !total_vtime;
    monitor_alerts = !monitor_alerts;
    bounded_epochs = !bounded;
    host_seconds = Unix.gettimeofday () -. started;
  }

(** Verify [program] on [np] simulated ranks under DAMPI. *)
let verify ?(config = default_config) ~np program =
  explore ~config ~np (dampi_runner config ~np program)

(** Execute exactly one guided run under [plan] (e.g. a schedule loaded from
    an Epoch-Decisions file) and report what it produced. *)
let replay ?(config = default_config) ~np program plan =
  dampi_runner config ~np program plan
    ~fork_index:(Decisions.length plan - 1)
