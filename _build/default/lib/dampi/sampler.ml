(** Random-testing baseline (the paper's §I straw man).

    Tools like Jitterbug and Marmot perturb schedules randomly: each trial
    re-runs the program with a randomized wildcard-match oracle and hopes to
    trip over a bad matching. No coverage guarantee — the paper's motivating
    observation is that production MPI libraries bias outcomes so heavily
    that plain testing keeps seeing the same schedule, and randomization
    only modulates timing.

    [test ~seeds ~np program] runs one native execution per seed, each with
    a different seeded random match oracle, and reports which distinct
    outcomes were observed. Comparing its findings with
    {!Explorer.verify}'s on the same program quantifies the coverage gap
    (bench target: [ablation-random]). *)

module Runtime = Mpi.Runtime
module Coroutine = Sim.Coroutine

type outcome_class =
  | Finished
  | Deadlocked of string
  | Crashed of string

type result = {
  trials : int;
  distinct_outcomes : (outcome_class * int) list;
      (** outcome -> number of seeds that produced it *)
  errors_found : int;  (** trials ending in deadlock or crash *)
}

let classify (outcome : Coroutine.outcome) =
  match outcome with
  | Coroutine.All_finished -> Finished
  | Coroutine.Deadlock blocked ->
      Deadlocked
        (String.concat ";"
           (List.map
              (fun (b : Coroutine.blocked_info) -> string_of_int b.pid)
              blocked))
  | Coroutine.Crashed (pid, exn, _) ->
      Crashed (Printf.sprintf "%d:%s" pid (Printexc.to_string exn))

(* A match oracle that picks uniformly among the candidates. *)
let random_oracle rng : Runtime.oracle =
 fun candidates -> Sim.Splitmix.pick rng (Array.of_list candidates)

let run_one ?cost ~np ~seed program =
  let rng = Sim.Splitmix.create seed in
  let rt = Runtime.create ?cost ~oracle:(random_oracle rng) ~np () in
  let module B = Mpi.Bind.Make (struct
    let rt = rt
  end) in
  let module P = (val program : Mpi.Mpi_intf.PROGRAM) in
  let module Prog = P (B) in
  Runtime.spawn_ranks rt (fun _ -> Prog.main ());
  Runtime.run rt

let test ?cost ?(seeds = List.init 20 Fun.id) ~np program =
  let tally = Hashtbl.create 8 in
  List.iter
    (fun seed ->
      let cls = classify (run_one ?cost ~np ~seed program) in
      Hashtbl.replace tally cls
        (1 + Option.value ~default:0 (Hashtbl.find_opt tally cls)))
    seeds;
  let distinct = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally [] in
  {
    trials = List.length seeds;
    distinct_outcomes = distinct;
    errors_found =
      List.fold_left
        (fun acc (cls, n) ->
          match cls with Finished -> acc | Deadlocked _ | Crashed _ -> acc + n)
        0 distinct;
  }

let found_errors result = result.errors_found > 0

let pp ppf result =
  Format.fprintf ppf
    "@[<v>random testing: %d trials, %d erroneous, %d distinct outcome(s)@]"
    result.trials result.errors_found
    (List.length result.distinct_outcomes)
