(** Virtual-time cost model.

    The paper's performance figures (Figs. 5, 6; Table II) were measured in
    wall-clock seconds on an 800-node cluster. This repository substitutes a
    virtual-time simulation: each simulated process carries its own clock,
    message receipt synchronizes clocks the way a real network transfer
    would ([recv_time = max(local, send_time + latency)]), and centralized
    resources (the ISP scheduler) are modelled as FIFO queueing servers.

    The *makespan* — the maximum per-process clock at program end — plays the
    role of measured wall-clock time. The model captures exactly the
    architectural property the paper measures: a per-call synchronous
    round-trip to a central scheduler saturates and queues as offered load
    grows, while decentralized piggybacking adds only bounded local cost. *)

type t
(** Per-process clock vector. *)

val create : int -> t
(** [create n] gives [n] processes, all clocks at 0. *)

val nprocs : t -> int

val now : t -> int -> float
(** [now t pid] reads process [pid]'s clock. *)

val advance : t -> int -> float -> unit
(** [advance t pid dt] charges [dt] (>= 0) seconds of local work to [pid]. *)

val observe : t -> int -> float -> unit
(** [observe t pid stamp] moves [pid]'s clock forward to at least [stamp] —
    the receive-side half of a message transfer or synchronization. *)

val synchronize : t -> int list -> float -> unit
(** [synchronize t pids cost] models a synchronizing collective: every
    process in [pids] advances to [max clocks + cost]. *)

val makespan : t -> float
(** Maximum clock over all processes. *)

val reset : t -> unit

(** FIFO queueing server for centralized resources. *)
module Server : sig
  type server

  val create : service:float -> server
  (** [service] is the per-request service time in virtual seconds. *)

  val serve : server -> arrival:float -> float
  (** [serve srv ~arrival] enqueues a request arriving at [arrival] and
      returns its completion time: requests are served one at a time in
      arrival order, so completion is
      [max busy_until arrival + service]. *)

  val utilization_window : server -> float
  (** Time at which the server frees up — exposes queue pressure so engines
      can report saturation. *)

  val served : server -> int
  (** Total requests served. *)

  val reset : server -> unit
end
