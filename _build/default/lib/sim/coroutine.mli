(** Cooperative processes over OCaml 5 effect handlers.

    Simulated MPI ranks run as coroutines inside one OCaml domain. The
    scheduler is strictly deterministic: processes are resumed in FIFO order
    from a ready queue, wake-ups enqueue in call order, and no wall-clock or
    OS-level nondeterminism is consulted. Determinism is what makes DAMPI's
    stateless replay sound — re-running the same program with the same forced
    decisions reproduces the same execution prefix.

    A process blocks by performing the {!Block} effect; it is the
    responsibility of whoever owns the blocking condition (e.g. the MPI
    runtime completing a request) to call {!wake}. *)

type sched
(** A scheduler instance owning a set of processes. *)

type pid = int
(** Process identifier, dense in [\[0, nprocs)]. *)

type blocked_info = {
  pid : pid;
  reason : string;  (** human-readable description of the blocking operation *)
}

type outcome =
  | All_finished
      (** Every process ran to completion. *)
  | Deadlock of blocked_info list
      (** The ready queue drained while at least one process remained
          blocked: global quiescence, i.e. a deadlock in the simulated
          system. *)
  | Crashed of pid * exn * Printexc.raw_backtrace
      (** A process raised; the run is aborted at that point. *)

val create : unit -> sched

val spawn : sched -> (unit -> unit) -> pid
(** [spawn sched body] registers a new process. Processes start in the ready
    queue in spawn order. Must be called before {!run}. *)

val run : sched -> outcome
(** Execute until completion, deadlock, or crash. Can only be called once per
    scheduler. *)

val self : unit -> pid
(** Identity of the currently running process. Must be called from within a
    process body. *)

val yield : unit -> unit
(** Reschedule the calling process at the back of the ready queue. *)

val block : string -> unit
(** Park the calling process until someone calls {!wake} on it. The string
    describes the blocked operation and is surfaced in deadlock reports. *)

val wake : sched -> pid -> unit
(** Move a blocked process to the ready queue. Waking a process that is not
    blocked is a no-op (the wake-up is not remembered; blocking conditions
    must be re-checked by the blocker under this discipline). *)

val wake_all : sched -> pid list -> unit
(** Wake several processes, in list order. *)

val is_blocked : sched -> pid -> bool
val nprocs : sched -> int

val blocked_processes : sched -> blocked_info list
(** Processes currently parked, in pid order. *)
