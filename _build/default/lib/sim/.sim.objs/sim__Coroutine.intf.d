lib/sim/coroutine.mli: Printexc
