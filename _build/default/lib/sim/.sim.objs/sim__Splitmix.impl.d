lib/sim/splitmix.ml: Array Int64
