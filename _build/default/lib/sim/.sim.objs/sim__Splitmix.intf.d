lib/sim/splitmix.mli:
