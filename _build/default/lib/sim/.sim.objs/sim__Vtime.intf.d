lib/sim/vtime.mli:
