lib/sim/coroutine.ml: Array Effect List Printexc Queue
