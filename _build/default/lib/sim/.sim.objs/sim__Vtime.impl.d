lib/sim/vtime.ml: Array Float List
