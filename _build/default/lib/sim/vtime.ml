type t = { clocks : float array }

let create n =
  if n <= 0 then invalid_arg "Vtime.create: need at least one process";
  { clocks = Array.make n 0.0 }

let nprocs t = Array.length t.clocks
let now t pid = t.clocks.(pid)

let advance t pid dt =
  assert (dt >= 0.0);
  t.clocks.(pid) <- t.clocks.(pid) +. dt

let observe t pid stamp =
  if stamp > t.clocks.(pid) then t.clocks.(pid) <- stamp

let synchronize t pids cost =
  let peak = List.fold_left (fun acc pid -> Float.max acc t.clocks.(pid)) 0.0 pids in
  let finish = peak +. cost in
  List.iter (fun pid -> t.clocks.(pid) <- finish) pids

let makespan t = Array.fold_left Float.max 0.0 t.clocks
let reset t = Array.fill t.clocks 0 (Array.length t.clocks) 0.0

module Server = struct
  type server = {
    service : float;
    mutable busy_until : float;
    mutable served : int;
  }

  let create ~service = { service; busy_until = 0.0; served = 0 }

  let serve srv ~arrival =
    let start = Float.max srv.busy_until arrival in
    let finish = start +. srv.service in
    srv.busy_until <- finish;
    srv.served <- srv.served + 1;
    finish

  let utilization_window srv = srv.busy_until
  let served srv = srv.served

  let reset srv =
    srv.busy_until <- 0.0;
    srv.served <- 0
end
