lib/obs/metrics.mli: Format
