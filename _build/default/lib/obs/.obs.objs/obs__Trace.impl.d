lib/obs/trace.ml: Array Buffer Float Format Fun Hashtbl List Metrics Option Printf Unix
