lib/obs/metrics.ml: Array Buffer Char Float Format Hashtbl List Option Printf String
