lib/obs/trace.mli: Format
