(* Sharded span/event collector. See trace.mli for the contract. Timestamps
   come from one gettimeofday epoch shared by all sinks so cross-worker
   spans line up in the exported timeline; ids are deterministic
   (seq * shards + worker) so span trees are reproducible. *)

type arg = Str of string | Int of int | Float of float

type event = {
  id : int;
  parent : int;
  name : string;
  worker : int;
  t_us : float;
  dur_us : float;
  args : (string * arg) list;
}

type sink = {
  sk_worker : int;
  stride : int;  (* total shard count, for id spacing *)
  epoch : float;
  mutable seq : int;
  mutable log : event list;  (* reversed *)
}

type t = { sinks : sink array }

let create ~shards () =
  let shards = max 1 shards in
  let epoch = Unix.gettimeofday () in
  {
    sinks =
      Array.init shards (fun sk_worker ->
          { sk_worker; stride = shards; epoch; seq = 0; log = [] });
  }

let sink t i = t.sinks.(i)

let fresh_id sk =
  let id = (sk.seq * sk.stride) + sk.sk_worker in
  sk.seq <- sk.seq + 1;
  id

let now_us sk = (Unix.gettimeofday () -. sk.epoch) *. 1e6

type span = {
  sp_id : int;
  sp_parent : int;
  sp_name : string;
  sp_args : (string * arg) list;
  sp_t0 : float;
}

let begin_span sk ?(parent = -1) ?(args = []) name =
  { sp_id = fresh_id sk; sp_parent = parent; sp_name = name; sp_args = args;
    sp_t0 = now_us sk }

let end_span sk sp =
  sk.log <-
    {
      id = sp.sp_id;
      parent = sp.sp_parent;
      name = sp.sp_name;
      worker = sk.sk_worker;
      t_us = sp.sp_t0;
      dur_us = Float.max 0.0 (now_us sk -. sp.sp_t0);
      args = sp.sp_args;
    }
    :: sk.log

let with_span sk ?parent ?args name f =
  let sp = begin_span sk ?parent ?args name in
  Fun.protect ~finally:(fun () -> end_span sk sp) f

let span_id sp = sp.sp_id

let instant sk ?(parent = -1) ?(args = []) name =
  sk.log <-
    {
      id = fresh_id sk;
      parent;
      name;
      worker = sk.sk_worker;
      t_us = now_us sk;
      dur_us = -1.0;
      args;
    }
    :: sk.log

let events t =
  Array.to_list t.sinks
  |> List.concat_map (fun sk -> List.rev sk.log)
  |> List.sort (fun a b ->
         let c = compare a.t_us b.t_us in
         if c <> 0 then c else compare a.id b.id)

(* ---- Export ---- *)

let buf_args b args extra =
  Buffer.add_char b '{';
  let emit i (k, v) =
    if i > 0 then Buffer.add_char b ',';
    Printf.bprintf b "\"%s\":" (Metrics.json_escape k);
    match v with
    | Str s -> Printf.bprintf b "\"%s\"" (Metrics.json_escape s)
    | Int n -> Printf.bprintf b "%d" n
    | Float f -> Buffer.add_string b (Metrics.json_float f)
  in
  List.iteri emit (extra @ List.map (fun (k, v) -> (k, v)) args);
  Buffer.add_char b '}'

let to_chrome evs =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n  ";
      let common () =
        Printf.bprintf b
          "\"name\":\"%s\",\"cat\":\"dampi\",\"pid\":0,\"tid\":%d,\"ts\":%s,"
          (Metrics.json_escape ev.name) ev.worker
          (Metrics.json_float ev.t_us)
      in
      Buffer.add_char b '{';
      common ();
      if ev.dur_us >= 0.0 then
        Printf.bprintf b "\"ph\":\"X\",\"dur\":%s," (Metrics.json_float ev.dur_us)
      else Buffer.add_string b "\"ph\":\"i\",\"s\":\"t\",";
      Buffer.add_string b "\"args\":";
      buf_args b ev.args [ ("id", Int ev.id); ("parent", Int ev.parent) ];
      Buffer.add_char b '}')
    evs;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let to_jsonl evs =
  let b = Buffer.create 4096 in
  List.iter
    (fun ev ->
      Printf.bprintf b
        "{\"id\":%d,\"parent\":%d,\"name\":\"%s\",\"worker\":%d,\"ts_us\":%s,\"dur_us\":%s,\"args\":"
        ev.id ev.parent
        (Metrics.json_escape ev.name)
        ev.worker
        (Metrics.json_float ev.t_us)
        (Metrics.json_float ev.dur_us);
      buf_args b ev.args [];
      Buffer.add_string b "}\n")
    evs;
  Buffer.contents b

(* ---- Span trees ---- *)

type tree = { t_name : string; t_args : (string * arg) list; t_children : tree list }

let span_forest evs =
  let evs = List.sort (fun a b -> compare a.id b.id) evs in
  let children = Hashtbl.create 64 in
  List.iter
    (fun ev ->
      Hashtbl.replace children ev.parent
        (ev :: Option.value ~default:[] (Hashtbl.find_opt children ev.parent)))
    evs;
  let rec build ev =
    {
      t_name = ev.name;
      t_args = ev.args;
      t_children =
        Option.value ~default:[] (Hashtbl.find_opt children ev.id)
        |> List.sort (fun a b -> compare a.id b.id)
        |> List.map build;
    }
  in
  let ids = Hashtbl.create 64 in
  List.iter (fun ev -> Hashtbl.replace ids ev.id ()) evs;
  evs
  |> List.filter (fun ev -> ev.parent < 0 || not (Hashtbl.mem ids ev.parent))
  |> List.map build

let rec pp_tree ppf t =
  Format.fprintf ppf "@[<v 2>%s" t.t_name;
  List.iter
    (fun (k, v) ->
      Format.fprintf ppf " %s=%s" k
        (match v with
        | Str s -> s
        | Int n -> string_of_int n
        | Float f -> Printf.sprintf "%g" f))
    t.t_args;
  List.iter (fun c -> Format.fprintf ppf "@ %a" pp_tree c) t.t_children;
  Format.fprintf ppf "@]"
