(** Structured span/event tracer with monotonic timestamps and explicit
    parent ids.

    Like {!Metrics}, recording is sharded: each {!sink} is owned by one
    writer (a worker domain), so appending an event is lock-free; the merged
    event stream is read only after the writers have quiesced. Span and
    event ids are globally unique and deterministic ([seq * shards +
    worker]), so two [jobs = 1] runs of the same deterministic workload
    produce identical span {e trees} — only the timestamps differ.

    Exported as a JSONL event stream or as Chrome's [trace_event] JSON
    (load the file in [about://tracing] / [ui.perfetto.dev]). *)

type t
type sink

type arg = Str of string | Int of int | Float of float

type event = {
  id : int;
  parent : int;  (** parent span id, [-1] for roots *)
  name : string;
  worker : int;
  t_us : float;  (** start, microseconds since the collector's epoch *)
  dur_us : float;  (** span duration; [< 0] marks an instant event *)
  args : (string * arg) list;
}

val create : shards:int -> unit -> t
val sink : t -> int -> sink

(** {1 Recording} *)

type span

val begin_span :
  sink -> ?parent:int -> ?args:(string * arg) list -> string -> span

val end_span : sink -> span -> unit

val with_span :
  sink ->
  ?parent:int ->
  ?args:(string * arg) list ->
  string ->
  (unit -> 'a) ->
  'a
(** Run the thunk inside a span; the span closes even if the thunk raises. *)

val span_id : span -> int
(** For parenting children (possibly recorded on other sinks). *)

val instant :
  sink -> ?parent:int -> ?args:(string * arg) list -> string -> unit

(** {1 Reading and export} *)

val events : t -> event list
(** All shards merged, sorted by start time then id. *)

val to_chrome : event list -> string
(** Chrome [trace_event] JSON: spans as ["ph": "X"] complete events (one
    thread lane per worker), instants as ["ph": "i"]. *)

val to_jsonl : event list -> string
(** One JSON object per line, in stream order. *)

(** {1 Span trees} *)

type tree = { t_name : string; t_args : (string * arg) list; t_children : tree list }

val span_forest : event list -> tree list
(** Structure only — timestamps and ids dropped, children in id order. The
    determinism test's modulo-timestamps comparison object. *)

val pp_tree : Format.formatter -> tree -> unit
