(* Sharded metrics. Each shard is single-writer (a worker domain, or a
   subsystem that already serializes its writes under a lock), so recording
   is a plain store with no synchronization; reads happen only after the
   writers have quiesced (end of an exploration, or after a Domain.join) and
   merge shard-by-shard. *)

type hist = {
  h_bounds : float array;  (* ascending upper bounds *)
  h_counts : int array;  (* length = bounds + 1: last is overflow *)
  mutable h_sum : float;
  mutable h_count : int;
  mutable h_max : float;
}

type counter = { mutable c : int }
type gauge = { mutable g : float }
type histogram = hist

type value = V_counter of counter | V_gauge of gauge | V_hist of hist

type shard = { sh_worker : int; table : (string, value) Hashtbl.t }
type t = { all : shard array }

let seconds_bounds = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0 |]
let count_bounds = [| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024. |]

let create ~shards () =
  let shards = max 1 shards in
  {
    all =
      Array.init shards (fun sh_worker ->
          { sh_worker; table = Hashtbl.create 32 });
  }

let shards t = Array.length t.all
let shard t i = t.all.(i)
let worker sh = sh.sh_worker

let mismatch name =
  invalid_arg (Printf.sprintf "Obs.Metrics: %S registered with another kind" name)

let counter sh name =
  match Hashtbl.find_opt sh.table name with
  | Some (V_counter c) -> c
  | Some _ -> mismatch name
  | None ->
      let c = { c = 0 } in
      Hashtbl.replace sh.table name (V_counter c);
      c

let add c n = c.c <- c.c + n
let incr c = add c 1

let gauge_set sh name v =
  match Hashtbl.find_opt sh.table name with
  | Some (V_gauge g) -> g.g <- v
  | Some _ -> mismatch name
  | None -> Hashtbl.replace sh.table name (V_gauge { g = v })

let histogram sh ?(bounds = seconds_bounds) name =
  match Hashtbl.find_opt sh.table name with
  | Some (V_hist h) -> h
  | Some _ -> mismatch name
  | None ->
      let h =
        {
          h_bounds = Array.copy bounds;
          h_counts = Array.make (Array.length bounds + 1) 0;
          h_sum = 0.0;
          h_count = 0;
          h_max = neg_infinity;
        }
      in
      Hashtbl.replace sh.table name (V_hist h);
      h

let observe h v =
  let n = Array.length h.h_bounds in
  let rec bucket i = if i >= n || v <= h.h_bounds.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1;
  if v > h.h_max then h.h_max <- v

(* ---- Snapshots ---- *)

type hist_view = {
  bounds : float array;
  counts : int array;
  sum : float;
  count : int;
  max_value : float;
}

type sample = Counter of int | Gauge of float | Histogram of hist_view

type snapshot = (string * sample) list

let view_of_hist h =
  {
    bounds = Array.copy h.h_bounds;
    counts = Array.copy h.h_counts;
    sum = h.h_sum;
    count = h.h_count;
    max_value = (if h.h_count = 0 then 0.0 else h.h_max);
  }

let sample_of_value = function
  | V_counter c -> Counter c.c
  | V_gauge g -> Gauge g.g
  | V_hist h -> Histogram (view_of_hist h)

let merge_samples name a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge x, Gauge y -> Gauge (Float.max x y)
  | Histogram x, Histogram y ->
      if x.bounds <> y.bounds then mismatch name
      else
        Histogram
          {
            bounds = x.bounds;
            counts = Array.mapi (fun i c -> c + y.counts.(i)) x.counts;
            sum = x.sum +. y.sum;
            count = x.count + y.count;
            max_value = Float.max x.max_value y.max_value;
          }
  | _ -> mismatch name

let merge snapshots =
  let acc = Hashtbl.create 64 in
  List.iter
    (List.iter (fun (name, s) ->
         match Hashtbl.find_opt acc name with
         | None -> Hashtbl.replace acc name s
         | Some prev -> Hashtbl.replace acc name (merge_samples name prev s)))
    snapshots;
  Hashtbl.fold (fun name s l -> (name, s) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let raw_shard_snapshot sh =
  Hashtbl.fold (fun name v l -> (name, sample_of_value v) :: l) sh.table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let shard_snapshot t i = raw_shard_snapshot t.all.(i)

let snapshot t =
  merge (Array.to_list (Array.map raw_shard_snapshot t.all))

let find snap name =
  Option.map snd (List.find_opt (fun (n, _) -> String.equal n name) snap)

let counter_value snap name =
  match find snap name with Some (Counter n) -> n | _ -> 0

(* ---- Export ---- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%.9g" v

let sample_json b = function
  | Counter n -> Printf.bprintf b "{\"type\":\"counter\",\"value\":%d}" n
  | Gauge v ->
      Printf.bprintf b "{\"type\":\"gauge\",\"value\":%s}" (json_float v)
  | Histogram h ->
      Printf.bprintf b
        "{\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"max\":%s,\"buckets\":["
        h.count (json_float h.sum) (json_float h.max_value);
      Array.iteri
        (fun i c ->
          if i > 0 then Buffer.add_char b ',';
          if i < Array.length h.bounds then
            Printf.bprintf b "{\"le\":%s,\"count\":%d}"
              (json_float h.bounds.(i)) c
          else Printf.bprintf b "{\"le\":\"+inf\",\"count\":%d}" c)
        h.counts;
      Buffer.add_string b "]}"

let snapshot_json b snap =
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, s) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\"%s\":" (json_escape name);
      sample_json b s)
    snap;
  Buffer.add_char b '}'

let to_json ?(workers = []) snap =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"metrics\": ";
  snapshot_json b snap;
  if workers <> [] then begin
    Buffer.add_string b ",\n  \"workers\": [";
    List.iteri
      (fun i (w, s) ->
        if i > 0 then Buffer.add_char b ',';
        Printf.bprintf b "\n    {\"worker\": %d, \"metrics\": " w;
        snapshot_json b s;
        Buffer.add_char b '}')
      workers;
    Buffer.add_string b "\n  ]"
  end;
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let pp ppf snap =
  Format.pp_open_vbox ppf 0;
  List.iteri
    (fun i (name, s) ->
      if i > 0 then Format.pp_print_cut ppf ();
      match s with
      | Counter n -> Format.fprintf ppf "%-28s %d" name n
      | Gauge v -> Format.fprintf ppf "%-28s %g" name v
      | Histogram h ->
          Format.fprintf ppf "%-28s count=%d sum=%g max=%g" name h.count h.sum
            h.max_value)
    snap;
  Format.pp_close_box ppf ()
