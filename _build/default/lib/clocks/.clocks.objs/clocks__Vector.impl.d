lib/clocks/vector.ml: Array Format Printf String
