lib/clocks/clock_intf.ml: Format
