lib/clocks/lamport.ml: Array Format Printf
