(** Process groups ([MPI_Group]): ordered sets of world pids, the local
    (non-collective) half of communicator construction. *)

type t = { members : int array }

let of_comm comm = { members = Array.init (Comm.size comm) (Comm.world_of_rank comm) }
let members t = Array.copy t.members
let size t = Array.length t.members

let rank_opt t pid =
  let found = ref None in
  Array.iteri (fun i m -> if m = pid && !found = None then found := Some i) t.members;
  !found

let is_member t pid = rank_opt t pid <> None

(** [incl t ranks] — the subgroup of [t] at positions [ranks], in that
    order (like [MPI_Group_incl]). *)
let incl t ranks =
  {
    members =
      Array.map
        (fun r ->
          if r < 0 || r >= size t then
            Types.mpi_errorf "Group.incl: rank %d out of range (size %d)" r
              (size t)
          else t.members.(r))
        (Array.of_list ranks);
  }

(** [excl t ranks] — [t] without the positions in [ranks], order kept. *)
let excl t ranks =
  let drop = List.sort_uniq compare ranks in
  List.iter
    (fun r ->
      if r < 0 || r >= size t then
        Types.mpi_errorf "Group.excl: rank %d out of range (size %d)" r (size t))
    drop;
  let keep = ref [] in
  Array.iteri
    (fun i m -> if not (List.mem i drop) then keep := m :: !keep)
    t.members;
  { members = Array.of_list (List.rev !keep) }

(** Union keeps the order of [a], then the members of [b] not in [a]. *)
let union a b =
  let extra =
    Array.to_list b.members |> List.filter (fun m -> not (is_member a m))
  in
  { members = Array.append a.members (Array.of_list extra) }

(** Intersection in the order of [a]. *)
let inter a b =
  {
    members =
      Array.to_list a.members
      |> List.filter (fun m -> is_member b m)
      |> Array.of_list;
  }

(** Difference in the order of [a]. *)
let diff a b =
  {
    members =
      Array.to_list a.members
      |> List.filter (fun m -> not (is_member b m))
      |> Array.of_list;
  }

let equal a b = a.members = b.members

let pp ppf t =
  Format.fprintf ppf "group[%s]"
    (String.concat ";" (Array.to_list (Array.map string_of_int t.members)))
