(** Communication request objects (the analogue of [MPI_Request]).

    A request is [complete] once the runtime has finished the transfer it
    describes; it is [released] once the owning process has observed that
    completion through [wait]/[test]. Requests that are never released before
    finalize are reported as request leaks (the "R-leak" column of the
    paper's Table II). *)

type kind =
  | Send of { dest : int;  (** world pid *) tag : int; ctx : int; sync : bool }
  | Recv of {
      mutable src : int;
          (** world pid or [any_source]; rewritten to the matched source *)
      tag : int;
      ctx : int;
      posted_as_wildcard : bool;
    }

type t = {
  uid : int;
  owner : int;  (** world pid that created the request *)
  kind : kind;
  mutable complete : bool;
  mutable released : bool;
  mutable status : Types.status option;  (** set for completed receives *)
  mutable data : Payload.t option;  (** received payload *)
  mutable arrive_time : float;
      (** virtual timestamp at which the transfer completed; the owner's
          clock observes it at [wait]/[test] *)
}

let is_send t = match t.kind with Send _ -> true | Recv _ -> false
let is_recv t = match t.kind with Recv _ -> true | Send _ -> false

let is_wildcard t =
  match t.kind with
  | Recv r -> r.posted_as_wildcard
  | Send _ -> false

let ctx t = match t.kind with Send s -> s.ctx | Recv r -> r.ctx
let tag t = match t.kind with Send s -> s.tag | Recv r -> r.tag

let recv_src t =
  match t.kind with
  | Recv r -> r.src
  | Send _ -> Types.mpi_errorf "Request.recv_src: not a receive request"

let pp ppf t =
  let kind =
    match t.kind with
    | Send s ->
        Format.asprintf "%ssend(dst=%d,tag=%d,ctx=%d)"
          (if s.sync then "s" else "")
          s.dest s.tag s.ctx
    | Recv r ->
        Format.asprintf "recv(src=%s,tag=%d,ctx=%d)"
          (if r.src = Types.any_source then "*" else string_of_int r.src)
          r.tag r.ctx
  in
  Format.fprintf ppf "req#%d@%d %s%s" t.uid t.owner kind
    (if t.complete then " [complete]" else " [pending]")
