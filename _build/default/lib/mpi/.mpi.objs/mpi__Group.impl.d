lib/mpi/group.ml: Array Comm Format List String Types
