lib/mpi/matching.ml: Envelope Hashtbl List Request
