lib/mpi/envelope.ml: Format Payload Types
