lib/mpi/runtime.mli: Comm Envelope Format Group Payload Request Sim Stats Types
