lib/mpi/runtime.mli: Comm Envelope Format Group Obs Payload Request Sim Stats Types
