lib/mpi/payload.mli: Format Types
