lib/mpi/types.ml: Format
