lib/mpi/mpi_intf.ml: Group Payload Types
