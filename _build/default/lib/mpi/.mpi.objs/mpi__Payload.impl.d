lib/mpi/payload.ml: Array Float Format String Types
