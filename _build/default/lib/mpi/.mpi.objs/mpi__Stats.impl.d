lib/mpi/stats.ml: Array Format Hashtbl Option
