lib/mpi/matching.mli: Envelope Request
