lib/mpi/runtime.ml: Array Comm Envelope Float Format Fun Group Hashtbl List Matching Obs Option Payload Printf Request Sim Stats String Types
