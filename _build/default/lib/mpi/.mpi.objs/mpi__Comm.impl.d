lib/mpi/comm.ml: Array Format Hashtbl Types
