lib/mpi/stats.mli: Format
