lib/mpi/bind.ml: Comm List Mpi_intf Request Runtime Types
