lib/mpi/request.ml: Format Payload Types
