(** Instantiate {!Mpi_intf.MPI_CORE} over a concrete runtime — the "native
    MPI library" layer of the interposition stack. *)

module Make (R : sig
  val rt : Runtime.t
end) : Mpi_intf.MPI_CORE with type comm = Comm.t and type request = Request.t =
struct
  type comm = Comm.t
  type request = Request.t

  let rt = R.rt
  let any_source = Types.any_source
  let any_tag = Types.any_tag
  let comm_world = Runtime.comm_world rt
  let rank comm = Comm.rank_of_world comm (Runtime.current rt)
  let size = Comm.size
  let comm_id = Comm.ctx
  let world_rank () = Runtime.current rt
  let world_size () = Runtime.np rt
  let isend ?tag ~dest comm payload = Runtime.isend rt ?tag ~dest comm payload
  let issend ?tag ~dest comm payload = Runtime.issend rt ?tag ~dest comm payload
  let send ?tag ~dest comm payload = Runtime.send rt ?tag ~dest comm payload
  let ssend ?tag ~dest comm payload = Runtime.ssend rt ?tag ~dest comm payload
  let irecv ?src ?tag comm = Runtime.irecv rt ?src ?tag comm
  let recv ?src ?tag comm = Runtime.recv rt ?src ?tag comm

  let sendrecv ?stag ?rtag ~dest ~src comm payload =
    Runtime.sendrecv rt ?stag ?rtag ~dest ~src comm payload

  (* A persistent request is a template re-posted by each [start]. *)
  type prequest = unit -> Request.t

  let send_init ?tag ~dest comm payload () =
    Runtime.isend rt ?tag ~dest comm payload

  let recv_init ?src ?tag comm () = Runtime.irecv rt ?src ?tag comm
  let start p = p ()
  let startall ps = List.map start ps
  let wait req = Runtime.wait rt req
  let test req = Runtime.test rt req
  let waitall reqs = Runtime.waitall rt reqs
  let waitany reqs = Runtime.waitany rt reqs
  let testall reqs = Runtime.testall rt reqs
  let recv_data = Runtime.recv_data
  let request_id (req : Request.t) = req.uid
  let probe ?src ?tag comm = Runtime.probe rt ?src ?tag comm
  let iprobe ?src ?tag comm = Runtime.iprobe rt ?src ?tag comm
  let barrier comm = Runtime.barrier rt comm
  let bcast ~root comm payload = Runtime.bcast rt ~root comm payload
  let reduce ~root ~op comm payload = Runtime.reduce rt ~root ~op comm payload
  let allreduce ~op comm payload = Runtime.allreduce rt ~op comm payload
  let gather ~root comm payload = Runtime.gather rt ~root comm payload
  let allgather comm payload = Runtime.allgather rt comm payload
  let scatter ~root comm payloads = Runtime.scatter rt ~root comm payloads
  let alltoall comm payloads = Runtime.alltoall rt comm payloads
  let scan ~op comm payload = Runtime.scan rt ~op comm payload
  let exscan ~op comm payload = Runtime.exscan rt ~op comm payload

  let reduce_scatter_block ~op comm payloads =
    Runtime.reduce_scatter_block rt ~op comm payloads
  let comm_group comm = Runtime.comm_group rt comm
  let comm_create comm group = Runtime.comm_create rt comm group
  let comm_dup comm = Runtime.comm_dup rt comm
  let comm_split ~color ~key comm = Runtime.comm_split rt ~color ~key comm
  let comm_free comm = Runtime.comm_free rt comm
  let pcontrol level = Runtime.pcontrol rt level
  let wtime () = Runtime.wtime rt

  let work dt =
    if dt < 0.0 then invalid_arg "work: negative duration";
    Runtime.advance_clock rt (Runtime.current rt) dt
end

(** Convenience: run [program] natively on a fresh runtime. Returns the
    runtime (for stats/leak inspection) and the scheduler outcome. *)
let exec ?cost ?oracle ?metrics ~np (program : Mpi_intf.program) =
  let rt = Runtime.create ?cost ?oracle ?metrics ~np () in
  let module P = (val program) in
  let module M = Make (struct
    let rt = rt
  end) in
  let module Prog = P (M) in
  Runtime.spawn_ranks rt (fun _rank -> Prog.main ());
  let outcome = Runtime.run rt in
  (rt, outcome)
