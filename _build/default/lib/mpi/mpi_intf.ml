(** The MPI interface seen by target programs.

    Programs under verification are functors over {!MPI_CORE} — the OCaml
    analogue of linking an unmodified MPI binary against either the native
    library or a PMPI interposition stack. The same program functor can be
    instantiated with:

    - {!Bind} over a bare {!Runtime.t} — a "native" run;
    - [Dampi.Interpose (Bind (...)) (...)] — a run under the DAMPI verifier;
    - [Isp.Interpose (Bind (...)) (...)] — a run under the ISP baseline.

    All operations act on the implicitly-current simulated process, so one
    functor instantiation serves every rank. Programs must keep their mutable
    state inside [main] (module-level state in the program functor body would
    be shared across ranks). *)

module type MPI_CORE = sig
  type comm
  type request

  val any_source : int
  val any_tag : int

  val comm_world : comm
  val rank : comm -> int
  val size : comm -> int
  val comm_id : comm -> int
  val world_rank : unit -> int
  val world_size : unit -> int

  (* Point-to-point *)
  val isend : ?tag:int -> dest:int -> comm -> Payload.t -> request
  val issend : ?tag:int -> dest:int -> comm -> Payload.t -> request
  val send : ?tag:int -> dest:int -> comm -> Payload.t -> unit
  val ssend : ?tag:int -> dest:int -> comm -> Payload.t -> unit
  val irecv : ?src:int -> ?tag:int -> comm -> request
  val recv : ?src:int -> ?tag:int -> comm -> Payload.t * Types.status

  val sendrecv :
    ?stag:int ->
    ?rtag:int ->
    dest:int ->
    src:int ->
    comm ->
    Payload.t ->
    Payload.t * Types.status
  (** Combined send+receive (the halo-exchange staple); deadlock-free by
      construction like [MPI_Sendrecv]. *)

  (* Persistent requests: a communication template activated by [start];
     each activation yields an ordinary request to complete with
     [wait]/[test]. *)
  type prequest

  val send_init : ?tag:int -> dest:int -> comm -> Payload.t -> prequest
  val recv_init : ?src:int -> ?tag:int -> comm -> prequest
  val start : prequest -> request
  val startall : prequest list -> request list

  (* Completion *)
  val wait : request -> Types.status
  val test : request -> Types.status option
  val waitall : request list -> Types.status list
  val waitany : request list -> int * Types.status
  val testall : request list -> Types.status list option
  val recv_data : request -> Payload.t

  val request_id : request -> int
  (** Stable unique identifier; lets tool layers key auxiliary per-request
      state without access to the representation. *)

  (* Probe *)
  val probe : ?src:int -> ?tag:int -> comm -> Types.status
  val iprobe : ?src:int -> ?tag:int -> comm -> Types.status option

  (* Collectives *)
  val barrier : comm -> unit
  val bcast : root:int -> comm -> Payload.t -> Payload.t
  val reduce : root:int -> op:Types.reduce_op -> comm -> Payload.t -> Payload.t option
  val allreduce : op:Types.reduce_op -> comm -> Payload.t -> Payload.t
  val gather : root:int -> comm -> Payload.t -> Payload.t array option
  val allgather : comm -> Payload.t -> Payload.t array
  val scatter : root:int -> comm -> Payload.t array option -> Payload.t
  val alltoall : comm -> Payload.t array -> Payload.t array

  val scan : op:Types.reduce_op -> comm -> Payload.t -> Payload.t
  (** Inclusive prefix reduction: rank r receives the reduction over the
      contributions of ranks 0..r. *)

  val exscan : op:Types.reduce_op -> comm -> Payload.t -> Payload.t
  (** Exclusive prefix reduction; rank 0 receives [Payload.Unit]. *)

  val reduce_scatter_block :
    op:Types.reduce_op -> comm -> Payload.t array -> Payload.t
  (** Every rank contributes an np-element array; rank r receives the
      element-wise reduction of slot r. *)

  (* Communicator management. Group values ({!Group.t}) are local objects;
     build them with the pure [Mpi.Group] operations. *)
  val comm_group : comm -> Group.t
  val comm_create : comm -> Group.t -> comm option
  val comm_dup : comm -> comm
  val comm_split : color:int -> key:int -> comm -> comm
  val comm_free : comm -> unit

  (* Misc *)
  val pcontrol : int -> unit
  val wtime : unit -> float

  val work : float -> unit
  (** [work dt] models [dt] virtual seconds of local computation. The
      simulation substitute for the CPU time a real application burns
      between MPI calls; not intercepted by any tool layer. *)
end

(** A target program: [main] is executed once per rank. *)
module type PROGRAM = functor (M : MPI_CORE) -> sig
  val main : unit -> unit
end

type program = (module PROGRAM)
