(** MPI operation census, per process and per class — the instrumentation
    behind the paper's Table I (Send-Recv / Collective / Wait). *)

type op_class = Send_recv | Collective | Wait

type t

val create : int -> t
val record : t -> int -> op_class -> string -> unit

val total : t -> int
val total_send_recv : t -> int
val total_collective : t -> int
val total_wait : t -> int

val all_per_proc : t -> float
val send_recv_per_proc : t -> float
val collective_per_proc : t -> float
val wait_per_proc : t -> float

val count_of : t -> string -> int
(** Calls of one named operation (e.g. ["iprobe"]). *)

val pp : Format.formatter -> t -> unit
