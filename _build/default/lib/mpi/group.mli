(** Process groups ([MPI_Group]): ordered sets of world pids, the local
    (non-collective) half of communicator construction. All operations are
    pure; pair with {!Runtime.comm_create} (collective) to build
    communicators. *)

type t

val of_comm : Comm.t -> t
val members : t -> int array
val size : t -> int
val rank_opt : t -> int -> int option
val is_member : t -> int -> bool

val incl : t -> int list -> t
(** Subgroup at the given positions, in that order (raises
    {!Types.Mpi_error} out of range). *)

val excl : t -> int list -> t
val union : t -> t -> t
(** Order of the first operand, then new members of the second. *)

val inter : t -> t -> t
val diff : t -> t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
