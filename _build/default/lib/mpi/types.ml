(** Shared ground types of the simulated MPI runtime. *)

(** Completion status of a receive (or probe), mirroring [MPI_Status]. *)
type status = {
  source : int;  (** rank the matched message was sent from (communicator rank) *)
  tag : int;  (** tag of the matched message *)
  count : int;  (** payload size in bytes *)
}

(** Reduction operators for [reduce]/[allreduce]. *)
type reduce_op = Sum | Prod | Max | Min | Land | Lor

let any_source = -1
let any_tag = -1

(** Raised on MPI usage errors detected by the runtime (mismatched
    collectives, operations on freed communicators, invalid ranks, ...).
    A crash of a simulated rank with this exception is itself a verification
    finding. *)
exception Mpi_error of string

let mpi_errorf fmt = Format.kasprintf (fun s -> raise (Mpi_error s)) fmt

let string_of_reduce_op = function
  | Sum -> "sum"
  | Prod -> "prod"
  | Max -> "max"
  | Min -> "min"
  | Land -> "land"
  | Lor -> "lor"

let pp_status ppf { source; tag; count } =
  Format.fprintf ppf "{source=%d; tag=%d; count=%d}" source tag count
