(** Communicators.

    A communicator is a context id plus an ordered list of member world pids.
    The context id isolates matching: messages only match receives posted on
    the same context. Rank translation (communicator rank <-> world pid) is
    precomputed.

    Freeing is tracked per member rank so that the finalize-time leak check
    can report, per process, communicators it helped create but never freed
    (the "C-leak" column of the paper's Table II). Tool-internal
    communicators (DAMPI's piggyback shadows) carry [internal = true] and are
    exempt from user-facing leak reports. *)

type t = {
  ctx : int;
  ranks : int array;  (** comm rank -> world pid *)
  of_world : (int, int) Hashtbl.t;  (** world pid -> comm rank *)
  freed : bool array;  (** per comm rank *)
  internal : bool;
  label : string;  (** for reports, e.g. "world", "dup(world)" *)
}

let make ~ctx ~ranks ~internal ~label =
  let of_world = Hashtbl.create (Array.length ranks) in
  Array.iteri (fun r pid -> Hashtbl.replace of_world pid r) ranks;
  { ctx; ranks; of_world; freed = Array.make (Array.length ranks) false; internal; label }

let size t = Array.length t.ranks
let ctx t = t.ctx
let label t = t.label
let is_internal t = t.internal

let rank_of_world t pid =
  match Hashtbl.find_opt t.of_world pid with
  | Some r -> r
  | None ->
      Types.mpi_errorf "process %d is not a member of communicator %s(ctx=%d)"
        pid t.label t.ctx

let world_of_rank t r =
  if r < 0 || r >= Array.length t.ranks then
    Types.mpi_errorf "rank %d out of range for communicator %s of size %d" r
      t.label (Array.length t.ranks)
  else t.ranks.(r)

let is_member t pid = Hashtbl.mem t.of_world pid

let mark_freed t pid =
  let r = rank_of_world t pid in
  if t.freed.(r) then
    Types.mpi_errorf "communicator %s(ctx=%d) freed twice by rank %d" t.label
      t.ctx r;
  t.freed.(r) <- true

let freed_by t pid =
  match Hashtbl.find_opt t.of_world pid with
  | Some r -> t.freed.(r)
  | None -> true

let pp ppf t =
  Format.fprintf ppf "%s(ctx=%d, size=%d%s)" t.label t.ctx (size t)
    (if t.internal then ", internal" else "")
