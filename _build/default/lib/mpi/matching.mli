(** The message-matching engine: one {!mailbox} per destination process.

    Implements MPI's matching rules — context/tag/source agreement modulo
    wildcards, earliest-posted receive wins on arrival, and the
    non-overtaking rule: taking the {e earliest} matching envelope per
    source means a wildcard receive has at most one eligible envelope per
    source, which is exactly the candidate set DAMPI reasons about
    (§II-C of the paper).

    Invariant: no envelope in the unexpected queue matches any request in
    the posted queue. *)

type mailbox

type arrival_result =
  | Delivered of Request.t  (** matched the earliest posted receive *)
  | Queued  (** appended to the unexpected queue *)

val create : unit -> mailbox

val on_arrival : mailbox -> Envelope.t -> arrival_result
(** Deliver an envelope to the earliest posted matching receive, if any.
    The caller completes the returned request. *)

val post_recv :
  mailbox -> Request.t -> choose:(Envelope.t list -> Envelope.t) -> Envelope.t option
(** Post a receive: claims an unexpected envelope if one matches. [choose]
    is the match oracle, consulted only when two or more per-source
    candidates exist. [None] means the request was queued as posted. *)

val candidates : mailbox -> src:int -> tag:int -> ctx:int -> Envelope.t list
(** Earliest matching envelope per source, in arrival order — what a
    (wildcard) receive or probe with this spec could match right now. *)

val remove_unexpected : mailbox -> Envelope.t -> unit
val cancel_posted : mailbox -> Request.t -> unit
val unexpected_count : mailbox -> int
val posted_count : mailbox -> int
val unexpected : mailbox -> Envelope.t list
