(** Communicators: a context id plus an ordered list of member world pids.

    The context id isolates matching; freeing is tracked per member rank so
    the finalize-time leak check can report per-process communicator leaks
    (Table II's "C-leak" column). *)

type t

val make : ctx:int -> ranks:int array -> internal:bool -> label:string -> t
val size : t -> int
val ctx : t -> int
val label : t -> string

val is_internal : t -> bool
(** Tool-created (e.g. DAMPI's piggyback shadows): exempt from user-facing
    leak reports. *)

val rank_of_world : t -> int -> int
(** Communicator rank of a member world pid; raises {!Types.Mpi_error} for
    non-members. *)

val world_of_rank : t -> int -> int
val is_member : t -> int -> bool

val mark_freed : t -> int -> unit
(** Raises {!Types.Mpi_error} on double free. *)

val freed_by : t -> int -> bool
val pp : Format.formatter -> t -> unit
