lib/workloads/parmetis.ml: Array List Mpi
