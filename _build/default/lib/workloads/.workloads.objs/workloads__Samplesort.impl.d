lib/workloads/samplesort.ml: Array List Mpi Sim
