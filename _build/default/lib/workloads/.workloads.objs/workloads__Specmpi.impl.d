lib/workloads/specmpi.ml: Skeleton
