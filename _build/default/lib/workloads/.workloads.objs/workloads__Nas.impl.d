lib/workloads/nas.ml: Skeleton
