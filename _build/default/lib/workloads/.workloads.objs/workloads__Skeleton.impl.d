lib/workloads/skeleton.ml: Array List Mpi
