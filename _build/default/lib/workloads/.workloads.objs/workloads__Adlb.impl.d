lib/workloads/adlb.ml: Fun List Mpi Printf
