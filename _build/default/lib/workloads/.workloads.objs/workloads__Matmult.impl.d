lib/workloads/matmult.ml: Array Float Mpi Printf
