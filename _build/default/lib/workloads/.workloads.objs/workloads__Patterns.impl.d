lib/workloads/patterns.ml: Mpi
