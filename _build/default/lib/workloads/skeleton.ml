(** Generic communication-skeleton builder for the Table II benchmark rows.

    Each NAS-PB / SpecMPI benchmark is modelled by the communication
    behaviour Table II's columns depend on: rounds of neighbor exchange
    (with an optional wildcard-receive fraction), a collective cadence, a
    compute/communication ratio, and deliberate resource leaks where the
    paper reports them. The numerics of the original codes are irrelevant
    to DAMPI overhead; the op mix is what loads the tool. *)

module Payload = Mpi.Payload
module Types = Mpi.Types

type collective_kind = Allreduce | Barrier | Alltoall | Bcast | Allgather

type shape = {
  name : string;
  rounds : int;  (** exchange rounds per process *)
  degree : int;  (** neighbor count (symmetric, capped at np-1) *)
  payload_ints : int;  (** message size in 8-byte words *)
  compute_per_round : float;  (** virtual seconds of local work per round *)
  wildcard_every : int;
      (** every k-th round receives via MPI_ANY_SOURCE; 0 = never
          (deterministic benchmark) *)
  solo_wildcards : int;
      (** per-process count of pipelined ring-style wildcard receives
          (one candidate each): loads the tool's non-determinism handling
          (the R* column) without exploding the match space *)
  collective_every : int;  (** a collective every k rounds; 0 = never *)
  collective : collective_kind;
  final_allreduce : bool;  (** verification/residual reduction at the end *)
  leak_comm : bool;  (** Table II C-leak column *)
  leak_request : bool;  (** Table II R-leak column *)
}

let base =
  {
    name = "skeleton";
    rounds = 10;
    degree = 2;
    payload_ints = 64;
    compute_per_round = 1e-3;
    wildcard_every = 0;
    solo_wildcards = 0;
    collective_every = 0;
    collective = Allreduce;
    final_allreduce = true;
    leak_comm = false;
    leak_request = false;
  }

module Make (S : sig
  val shape : shape
end)
(M : Mpi.Mpi_intf.MPI_CORE) =
struct
  let s = S.shape

  let neighbors ~np ~me =
    let half = max 1 (min (s.degree / 2) ((np - 1) / 2)) in
    if np = 2 then [ 1 - me ]
    else
      List.concat_map
        (fun j -> [ (me + j) mod np; (me - j + np) mod np ])
        (List.init half (fun i -> i + 1))
      |> List.sort_uniq compare
      |> List.filter (fun r -> r <> me)

  let run_collective comm round =
    match s.collective with
    | Allreduce -> ignore (M.allreduce ~op:Types.Sum comm (Payload.Int round))
    | Barrier -> M.barrier comm
    | Bcast -> ignore (M.bcast ~root:0 comm (Payload.Int round))
    | Allgather -> ignore (M.allgather comm (Payload.Int round))
    | Alltoall ->
        let n = M.size comm in
        ignore
          (M.alltoall comm (Array.init n (fun i -> Payload.Int (round + i))))

  let main () =
    let world = M.comm_world in
    let np = M.size world and me = M.rank world in
    let nbs = neighbors ~np ~me in
    let payload =
      Payload.Arr (Array.init s.payload_ints (fun i -> Payload.Int (me lxor i)))
    in
    let leaked_comm = if s.leak_comm then Some (M.comm_dup world) else None in
    ignore leaked_comm;
    for round = 1 to s.rounds do
      let tag = round land 0xFFFF in
      let sends =
        List.map (fun nb -> M.isend ~tag ~dest:nb world payload) nbs
      in
      let wildcard =
        s.wildcard_every > 0 && round mod s.wildcard_every = 0
      in
      let recvs =
        (* A wildcard round receives its neighbor messages through
           MPI_ANY_SOURCE (pipelined wavefront style); the tag still keys
           the round, so matching stays well-defined. *)
        if wildcard then
          List.map (fun _ -> M.irecv ~src:M.any_source ~tag world) nbs
        else List.map (fun nb -> M.irecv ~src:nb ~tag world) nbs
      in
      M.work s.compute_per_round;
      ignore (M.waitall (sends @ recvs));
      if s.collective_every > 0 && round mod s.collective_every = 0 then
        run_collective world round
    done;
    (* Pipelined ring wildcards: each process forwards to its successor and
       receives from MPI_ANY_SOURCE; exactly one message can match, so R*
       grows without growing the interleaving space. *)
    for i = 1 to s.solo_wildcards do
      let tag = 0x5150 + (i land 0xFF) in
      let send = M.isend ~tag ~dest:((me + 1) mod np) world (Payload.Int i) in
      let recv = M.irecv ~src:M.any_source ~tag world in
      ignore (M.waitall [ send; recv ])
    done;
    if s.leak_request then
      (* One request posted and never completed (Table II R-leak). The
         matching message is never sent, so nothing dangles in transit. *)
      ignore (M.irecv ~src:(if me = 0 then np - 1 else me - 1) ~tag:0xDEAD world);
    if s.final_allreduce then
      ignore (M.allreduce ~op:Types.Max world (Payload.Int me))
end

(** [program shape] — a verifiable program exercising [shape]. *)
let program shape : Mpi.Mpi_intf.program =
  (module Make (struct
    let shape = shape
  end))

(** Total wildcard receives a shape issues across [np] ranks (the paper's
    R* column). *)
let wildcard_total shape ~np =
  (np * shape.solo_wildcards)
  +
  if shape.wildcard_every = 0 then 0
  else
    let degree np me =
      let half = max 1 (min (shape.degree / 2) ((np - 1) / 2)) in
      if np = 2 then 1
      else
        List.concat_map
          (fun j -> [ (me + j) mod np; (me - j + np) mod np ])
          (List.init half (fun i -> i + 1))
        |> List.sort_uniq compare
        |> List.filter (fun r -> r <> me)
        |> List.length
    in
    let per_proc me = shape.rounds / shape.wildcard_every * degree np me in
    let total = ref 0 in
    for me = 0 to np - 1 do
      total := !total + per_proc me
    done;
    !total
