(** ParMETIS-3.1 communication skeleton (Fig. 5, Tables I and II).

    ParMETIS is a fully deterministic parallel k-way graph partitioner; the
    paper uses it as the tool-overhead workhorse. What Fig. 5 and Table I
    depend on is its {e MPI operation mix and volume}, which Table I reports
    precisely. This skeleton regenerates that mix: per-process operation
    counts are calibrated to Table I's measurements at np in
    {8, 16, 32, 64, 128} (log-log interpolated elsewhere), issued as
    multi-round symmetric neighbor exchanges (coarsening/refinement
    exchanges) punctuated by collectives, with every request properly
    completed.

    Table II also reports that DAMPI flags a communicator leak in
    ParMETIS-3.1; the skeleton reproduces it (one dup is never freed). *)

module Payload = Mpi.Payload
module Types = Mpi.Types

type params = {
  scale : float;  (** scales all op counts; 1.0 = Table I volumes *)
  compute_per_op : float;
      (** virtual seconds of local work per point-to-point operation posted
          (keeps the compute/communication ratio stable across np and
          scale) *)
  payload_ints : int;  (** ints per neighbor message *)
}

let default_params = { scale = 1.0; compute_per_op = 4e-6; payload_ints = 32 }

(* Table I, converted to per-process counts: np -> (send-recv, collective,
   wait). *)
let table1 =
  [
    (8, (15125.0, 2500.0, 5875.0));
    (16, (23812.0, 2250.0, 7375.0));
    (32, (30656.0, 1968.0, 8500.0));
    (64, (37750.0, 1640.0, 9562.0));
    (128, (49578.0, 1390.0, 11429.0));
  ]

(* Log-log interpolation between calibration points; end-slope
   extrapolation outside [8, 128]. *)
let interpolate np =
  let x = log (float_of_int np) in
  let points =
    List.map (fun (n, v) -> (log (float_of_int n), v)) table1
  in
  let lerp (x0, (a0, c0, w0)) (x1, (a1, c1, w1)) =
    let t = (x -. x0) /. (x1 -. x0) in
    let f v0 v1 = exp (log v0 +. (t *. (log v1 -. log v0))) in
    (f a0 a1, f c0 c1, f w0 w1)
  in
  let rec segments = function
    | a :: (b :: _ as rest) -> (a, b) :: segments rest
    | [ _ ] | [] -> []
  in
  let segs = segments points in
  let inside =
    List.find_opt (fun ((x0, _), (x1, _)) -> x >= x0 && x <= x1) segs
  in
  let seg =
    match inside with
    | Some s -> s
    | None ->
        (* Extrapolate with the nearest end segment. *)
        if x < fst (List.hd points) then List.hd segs
        else List.nth segs (List.length segs - 1)
  in
  let p0, p1 = seg in
  lerp p0 p1

(** Per-process operation targets for [np] ranks at [scale]. *)
let targets ~np ~scale =
  let a, c, w = interpolate np in
  ( max 2.0 (a *. scale),
    max 1.0 (c *. scale),
    max 1.0 (w *. scale) )

module Make (P : sig
  val params : params
end)
(M : Mpi.Mpi_intf.MPI_CORE) =
struct
  let { scale; compute_per_op; payload_ints } = P.params

  let main () =
    let world = M.comm_world in
    let np = M.size world and me = M.rank world in
    let a, c, w = targets ~np ~scale in
    (* Symmetric neighbor set: (me +- j) mod np for j = 1..half. *)
    let half = max 1 (min 3 ((np - 1) / 2)) in
    let neighbors =
      if np = 2 then [ 1 - me ]
      else
        List.concat_map
          (fun j -> [ (me + j) mod np; (me - j + np) mod np ])
          (List.init half (fun i -> i + 1))
        |> List.sort_uniq compare
        |> List.filter (fun r -> r <> me)
    in
    let d = List.length neighbors in
    let rounds = max 1 (int_of_float (a /. float_of_int (2 * d))) in
    let waits_per_round = w /. float_of_int rounds in
    let coll_per_round = c /. float_of_int rounds in
    (* The communicator ParMETIS-3.1 leaks (Table II, C-leak = Yes). *)
    let leaked = M.comm_dup world in
    ignore leaked;
    (* A second one used and freed correctly, to show the check is not a
       blanket alarm. *)
    let scratch = M.comm_dup world in
    let payload =
      Payload.Arr (Array.init payload_ints (fun i -> Payload.Int (me + i)))
    in
    let coll_acc = ref 0.0 and coll_cycle = ref 0 in
    let wait_acc = ref 0.0 in
    for round = 1 to rounds do
      let tag = round land 0xFFFF in
      let sends =
        List.map (fun nb -> M.isend ~tag ~dest:nb world payload) neighbors
      in
      let recvs = List.map (fun nb -> M.irecv ~src:nb ~tag world) neighbors in
      M.work (compute_per_op *. float_of_int (2 * d));
      (* Complete receives: some individually, the rest (and all sends) in
         one waitall — reproducing Table I's wait-call mix. The fractional
         accumulator spreads the per-round wait budget so totals match the
         calibration targets. *)
      wait_acc := !wait_acc +. waits_per_round;
      let budget = int_of_float !wait_acc in
      wait_acc := !wait_acc -. float_of_int budget;
      let indiv = max 0 (min (budget - 1) d) in
      let rec split n = function
        | [] -> ([], [])
        | x :: tl ->
            if n <= 0 then ([], x :: tl)
            else
              let taken, rest = split (n - 1) tl in
              (x :: taken, rest)
      in
      let first, rest = split indiv recvs in
      List.iter (fun r -> ignore (M.wait r)) first;
      ignore (M.waitall (sends @ rest));
      (* Collectives at the calibrated rate, cycling over the kinds
         ParMETIS uses. *)
      coll_acc := !coll_acc +. coll_per_round;
      while !coll_acc >= 1.0 do
        (match !coll_cycle mod 3 with
        | 0 ->
            ignore (M.allreduce ~op:Types.Max scratch (Payload.Int (me + round)))
        | 1 -> M.barrier scratch
        | _ -> ignore (M.bcast ~root:0 scratch (Payload.Int round)));
        incr coll_cycle;
        coll_acc := !coll_acc -. 1.0
      done
    done;
    M.comm_free scratch
end

(** [program ?params ()] — the ParMETIS skeleton as a verifiable program. *)
let program ?(params = default_params) () : Mpi.Mpi_intf.program =
  (module Make (struct
    let params = params
  end))
