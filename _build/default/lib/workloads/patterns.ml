(** The paper's illustrative micro-patterns, packaged as verifiable
    programs for the examples and the test/bench suites.

    - {!fig3}: the 3-process wildcard race whose bug appears only under the
      alternate match (paper Fig. 3);
    - {!fig4}: the cross-coupled pattern on which Lamport clocks lose
      completeness while vector clocks retain it (paper Fig. 4);
    - {!fig10}: the clock-escape pattern DAMPI cannot cover but its runtime
      monitor flags (paper Fig. 10, §V);
    - {!head_to_head}: a deterministic cross-receive deadlock (tool sanity
      baseline). *)

module Payload = Mpi.Payload

module Fig3 (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    match M.rank world with
    | 0 -> M.send ~dest:1 world (Payload.int 22)
    | 1 ->
        let x, _ = M.recv ~src:M.any_source world in
        if Payload.to_int x = 33 then
          failwith "fig3: received 33 — the interleaving-dependent bug"
    | 2 -> M.send ~dest:1 world (Payload.int 33)
    | _ -> ()
end

let fig3 : Mpi.Mpi_intf.program = (module Fig3)

module Fig4 (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    match M.rank world with
    | 0 -> M.send ~dest:1 world (Payload.int 0)
    | 1 ->
        let x, _ = M.recv ~src:M.any_source world in
        if Payload.to_int x = 2 then
          failwith "fig4: P1 matched P2 — only vector clocks reach this"
    | 2 ->
        let _ = M.recv ~src:M.any_source world in
        M.send ~dest:1 world (Payload.int 2)
    | 3 -> M.send ~dest:2 world (Payload.int 3)
    | _ -> ()
end

let fig4 : Mpi.Mpi_intf.program = (module Fig4)

module Fig10 (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    match M.rank world with
    | 0 ->
        let req = M.isend ~dest:1 world (Payload.int 22) in
        M.barrier world;
        ignore (M.wait req)
    | 1 ->
        let req = M.irecv ~src:M.any_source world in
        M.barrier world;
        ignore (M.wait req);
        if Payload.to_int (M.recv_data req) = 33 then
          failwith "fig10: received 33 — beyond DAMPI's guarantee"
    | 2 ->
        M.barrier world;
        M.send ~dest:1 world (Payload.int 33)
    | _ -> ()
end

let fig10 : Mpi.Mpi_intf.program = (module Fig10)

module Head_to_head (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    let peer = 1 - M.rank world in
    if M.rank world <= 1 then begin
      (* Both receive before sending: guaranteed deadlock. *)
      ignore (M.recv ~src:peer world);
      M.send ~dest:peer world Payload.Unit
    end
end

let head_to_head : Mpi.Mpi_intf.program = (module Head_to_head)
