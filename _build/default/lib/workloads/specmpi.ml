(** SpecMPI 2007 communication skeletons for the codes Table II reports.

    - 104.milc: lattice QCD; the paper's extreme case — ~51K wildcard
      receives at 1024 ranks drive a 15x DAMPI slowdown. Modelled as a
      pipelined-wildcard-dominated exchange (50 per process) with almost
      no shielding compute.
    - 107.leslie3d: computational fluid dynamics; deterministic neighbor
      exchanges, moderate compute.
    - 113.GemsFDTD: finite-difference time-domain electromagnetics;
      deterministic, leaks a communicator in the paper's run.
    - 126.lammps: molecular dynamics; fine-grained halo exchanges every
      timestep — communication-bound, hence the elevated 1.88x.
    - 130.socorro: density functional theory; mixed compute and
      collectives.
    - 137.lu: SpecMPI's LU; 732 wildcard receives at 1024 ranks but long
      compute phases shield them (1.04x). Modelled as one pipelined
      wildcard per process shielded by compute. *)

let milc =
  {
    Skeleton.base with
    name = "104.milc";
    rounds = 4;
    degree = 2;
    payload_ints = 16;
    compute_per_round = 2e-6;
    solo_wildcards = 50;
    collective_every = 0;
    leak_comm = true;
  }

let leslie3d =
  {
    Skeleton.base with
    name = "107.leslie3d";
    rounds = 60;
    degree = 4;
    payload_ints = 120;
    compute_per_round = 9e-5;
    collective_every = 15;
    collective = Skeleton.Allreduce;
  }

let gemsfdtd =
  {
    Skeleton.base with
    name = "113.GemsFDTD";
    rounds = 55;
    degree = 4;
    payload_ints = 100;
    compute_per_round = 1e-4;
    collective_every = 12;
    collective = Skeleton.Allreduce;
    leak_comm = true;
  }

let lammps =
  {
    Skeleton.base with
    name = "126.lammps";
    rounds = 120;
    degree = 6;
    payload_ints = 48;
    compute_per_round = 1.5e-5;
    collective_every = 30;
    collective = Skeleton.Allreduce;
  }

let socorro =
  {
    Skeleton.base with
    name = "130.socorro";
    rounds = 45;
    degree = 4;
    payload_ints = 96;
    compute_per_round = 5e-5;
    collective_every = 8;
    collective = Skeleton.Allreduce;
  }

(* 137.lu's 732 wildcards at 1024 ranks: one pipelined wildcard per process
   (same order of magnitude), shielded by long compute phases. *)
let spec_lu =
  {
    Skeleton.base with
    name = "137.lu";
    rounds = 90;
    degree = 2;
    payload_ints = 64;
    compute_per_round = 4e-4;
    solo_wildcards = 1;
    collective_every = 30;
    collective = Skeleton.Allreduce;
  }

let all = [ milc; leslie3d; gemsfdtd; lammps; socorro; spec_lu ]
let program shape = Skeleton.program shape
