(** Master/slave matrix multiplication (§III, Figs. 6 and 8).

    The master broadcasts B, then deals row-blocks of A to slaves; each
    completion is collected through a wildcard receive and triggers the next
    assignment — the paper's canonical bounded-mixing study subject. The
    matrices are real (the result is checked), scaled so the interesting
    quantity is the matching non-determinism, not FLOPs. *)

module Payload = Mpi.Payload
module Types = Mpi.Types

type params = {
  n : int;  (** square matrix dimension *)
  rows_per_task : int;  (** rows handed out per assignment *)
  flop_cost : float;  (** virtual seconds per multiply-add *)
}

let default_params = { n = 8; rows_per_task = 2; flop_cost = 2e-9 }

let tag_task = 0
let tag_result = 1
let tag_stop = 2

module Make (P : sig
  val params : params
end)
(M : Mpi.Mpi_intf.MPI_CORE) =
struct
  let { n; rows_per_task; flop_cost } = P.params

  (* Deterministic test matrices. *)
  let a_val i j = float_of_int (((i * 7) + (j * 3)) mod 11)
  let b_val i j = float_of_int (((i * 5) + j) mod 13)

  let expected i j =
    let acc = ref 0.0 in
    for k = 0 to n - 1 do
      acc := !acc +. (a_val i k *. b_val k j)
    done;
    !acc

  let encode_rows start count =
    Payload.Pair
      ( Payload.Int start,
        Payload.Arr
          (Array.init count (fun r ->
               Payload.Arr (Array.init n (fun j -> Payload.Float (a_val (start + r) j))))) )

  let master world =
    let size = M.size world in
    let slaves = size - 1 in
    let tasks = (n + rows_per_task - 1) / rows_per_task in
    let next = ref 0 in
    let give dest =
      if !next < tasks then begin
        let start = !next * rows_per_task in
        let count = min rows_per_task (n - start) in
        M.send ~tag:tag_task ~dest world (encode_rows start count);
        incr next;
        true
      end
      else begin
        M.send ~tag:tag_stop ~dest world Payload.Unit;
        false
      end
    in
    let outstanding = ref 0 in
    for s = 1 to slaves do
      if give s then incr outstanding
    done;
    let c = Array.make_matrix n n 0.0 in
    while !outstanding > 0 do
      (* The wildcard collection at the heart of the study. *)
      let result, status = M.recv ~src:M.any_source ~tag:tag_result world in
      decr outstanding;
      (match result with
      | Payload.Pair (Payload.Int start, Payload.Arr rows) ->
          Array.iteri
            (fun r row ->
              match row with
              | Payload.Arr vals ->
                  Array.iteri
                    (fun j v -> c.(start + r).(j) <- Payload.to_float v)
                    vals
              | _ -> failwith "matmult: malformed result row")
            rows
      | _ -> failwith "matmult: malformed result");
      if give status.Types.source then incr outstanding
    done;
    (* Validate every entry: an incorrect matching order that corrupted the
       result would crash here and be reported by the verifier. *)
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if Float.abs (c.(i).(j) -. expected i j) > 1e-6 then
          failwith
            (Printf.sprintf "matmult: wrong C[%d][%d] = %f (expected %f)" i j
               c.(i).(j) (expected i j))
      done
    done

  let slave world b =
    (* B arrived via the broadcast; serve tasks until stopped. *)
    let running = ref true in
    while !running do
      let status = M.probe ~src:0 ~tag:M.any_tag world in
      if status.Types.tag = tag_stop then begin
        ignore (M.recv ~src:0 ~tag:tag_stop world);
        running := false
      end
      else begin
        let task, _ = M.recv ~src:0 ~tag:tag_task world in
        match task with
        | Payload.Pair (Payload.Int start, Payload.Arr rows) ->
            let count = Array.length rows in
            (* n multiply-adds per output element. *)
            M.work (flop_cost *. float_of_int (count * n * n));
            let result =
              Payload.Pair
                ( Payload.Int start,
                  Payload.Arr
                    (Array.init count (fun r ->
                         let row =
                           match rows.(r) with
                           | Payload.Arr vals -> Array.map Payload.to_float vals
                           | _ -> failwith "matmult: malformed task row"
                         in
                         Payload.Arr
                           (Array.init n (fun j ->
                                let acc = ref 0.0 in
                                for k = 0 to n - 1 do
                                  acc := !acc +. (row.(k) *. b.(k).(j))
                                done;
                                Payload.Float !acc)))) )
            in
            M.send ~tag:tag_result ~dest:0 world result
        | _ -> failwith "matmult: malformed task"
      end
    done

  let main () =
    let world = M.comm_world in
    (* The master owns B and broadcasts it (paper's protocol). *)
    let contrib =
      if M.rank world = 0 then
        Payload.Arr
          (Array.init n (fun i ->
               Payload.Arr (Array.init n (fun j -> Payload.Float (b_val i j)))))
      else Payload.Unit
    in
    let b_payload = M.bcast ~root:0 world contrib in
    if M.rank world = 0 then master world
    else begin
      let b =
        match b_payload with
        | Payload.Arr rows ->
            Array.map
              (fun row ->
                match row with
                | Payload.Arr vals -> Array.map Payload.to_float vals
                | _ -> failwith "matmult: malformed B row")
              rows
        | _ -> failwith "matmult: malformed B"
      in
      slave world b
    end
end

(** [program ?params ()] — the matmult workload as a verifiable program. *)
let program ?(params = default_params) () : Mpi.Mpi_intf.program =
  (module Make (struct
    let params = params
  end))
