(** NAS Parallel Benchmarks 3.3 communication skeletons (Table II rows).

    Shapes encode each benchmark's communication personality — the driver
    of DAMPI overhead and of the leak findings the paper reports:

    - BT: block-tridiagonal solver; heavy multi-neighbor face exchanges,
      periodic reductions. The paper's run leaks a communicator.
    - CG: conjugate gradient; sparse row/column exchanges with an
      allreduce per iteration (dot products).
    - DT: data-traffic graph; few large deterministic transfers.
    - EP: embarrassingly parallel; almost pure compute, one final reduce.
    - FT: 3-D FFT; all-to-all transposes dominate. Leaks a communicator.
    - IS: integer bucket sort; all-to-all key exchange plus reductions.
    - LU: pipelined SSOR wavefront; fine-grained, communication-bound,
      and the one NAS benchmark the paper reports wildcard receives for
      (R* = 1K at 1024 ranks: one pipelined wildcard per process).
    - MG: multigrid V-cycles; neighbor exchanges at every level with
      periodic residual reductions. *)

let bt =
  {
    Skeleton.base with
    name = "BT";
    rounds = 60;
    degree = 6;
    payload_ints = 200;
    compute_per_round = 4.5e-5;
    collective_every = 20;
    collective = Skeleton.Allreduce;
    leak_comm = true;
  }

let cg =
  {
    Skeleton.base with
    name = "CG";
    rounds = 75;
    degree = 2;
    payload_ints = 96;
    compute_per_round = 6e-5;
    collective_every = 3;
    collective = Skeleton.Allreduce;
  }

let dt =
  {
    Skeleton.base with
    name = "DT";
    rounds = 12;
    degree = 2;
    payload_ints = 640;
    compute_per_round = 1.2e-3;
    collective_every = 0;
  }

let ep =
  {
    Skeleton.base with
    name = "EP";
    rounds = 4;
    degree = 2;
    payload_ints = 8;
    compute_per_round = 6e-3;
    collective_every = 0;
  }

let ft =
  {
    Skeleton.base with
    name = "FT";
    rounds = 10;
    degree = 2;
    payload_ints = 128;
    compute_per_round = 1.5e-3;
    collective_every = 1;
    collective = Skeleton.Alltoall;
    leak_comm = true;
  }

let is_ =
  {
    Skeleton.base with
    name = "IS";
    rounds = 16;
    degree = 2;
    payload_ints = 64;
    compute_per_round = 1.5e-4;
    collective_every = 2;
    collective = Skeleton.Alltoall;
  }

let lu =
  {
    Skeleton.base with
    name = "LU";
    rounds = 150;
    degree = 2;
    payload_ints = 24;
    compute_per_round = 1e-6;
    collective_every = 50;
    collective = Skeleton.Allreduce;
    solo_wildcards = 1;
  }

let mg =
  {
    Skeleton.base with
    name = "MG";
    rounds = 50;
    degree = 4;
    payload_ints = 80;
    compute_per_round = 4e-5;
    collective_every = 10;
    collective = Skeleton.Allreduce;
  }

let all = [ bt; cg; dt; ep; ft; is_; lu; mg ]
let program shape = Skeleton.program shape
