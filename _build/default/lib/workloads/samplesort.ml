(** Parallel sample sort — a complete distributed algorithm over the
    substrate's collective stack (gather, bcast, alltoall) with a
    point-to-point boundary check at the end.

    1. Each rank draws a deterministic pseudo-random block of keys.
    2. Regular samples are gathered at rank 0, which picks np-1 splitters
       and broadcasts them.
    3. Keys are partitioned by splitter and exchanged with one alltoall.
    4. Each rank sorts its bucket locally, then verifies the global order
       by sending its maximum to the successor (sendrecv ring) and checking
       it does not exceed the local minimum.

    Fully deterministic: under verification it must be a single clean
    interleaving. A broken exchange or partition trips an assertion and is
    reported as a crash by the verifier. *)

module Payload = Mpi.Payload
module Types = Mpi.Types

type params = {
  keys_per_rank : int;
  seed : int;
  compare_cost : float;  (** virtual seconds per comparison, for timing *)
}

let default_params = { keys_per_rank = 64; seed = 42; compare_cost = 5e-9 }

module Make (P : sig
  val params : params
end)
(M : Mpi.Mpi_intf.MPI_CORE) =
struct
  let { keys_per_rank; seed; compare_cost } = P.params

  let local_keys rank =
    let rng = Sim.Splitmix.create (seed + (rank * 7919)) in
    Array.init keys_per_rank (fun _ -> Sim.Splitmix.int rng 1_000_000)

  let ints_payload a = Payload.Arr (Array.map (fun v -> Payload.Int v) a)
  let ints_of_payload p = Array.map Payload.to_int (Payload.to_arr p)

  let main () =
    let world = M.comm_world in
    let rank = M.rank world and np = M.size world in
    let keys = local_keys rank in
    Array.sort compare keys;
    M.work (compare_cost *. float_of_int (keys_per_rank * 8));
    (* Regular sampling: np local samples per rank. *)
    let samples =
      Array.init np (fun i -> keys.(i * keys_per_rank / np))
    in
    let splitters =
      match M.gather ~root:0 world (ints_payload samples) with
      | Some all ->
          let pool = Array.concat (List.map ints_of_payload (Array.to_list all)) in
          Array.sort compare pool;
          let n = Array.length pool in
          ints_payload (Array.init (np - 1) (fun i -> pool.((i + 1) * n / np)))
      | None -> Payload.Unit
    in
    let splitters = ints_of_payload (M.bcast ~root:0 world splitters) in
    (* Partition into np buckets by splitter. *)
    let buckets = Array.make np [] in
    Array.iter
      (fun k ->
        let rec find i =
          if i >= np - 1 || k < splitters.(i) then i else find (i + 1)
        in
        let b = find 0 in
        buckets.(b) <- k :: buckets.(b))
      keys;
    let outgoing =
      Array.map (fun l -> ints_payload (Array.of_list (List.rev l))) buckets
    in
    (* One alltoall moves every key to its destination bucket. *)
    let incoming = M.alltoall world outgoing in
    let mine =
      Array.concat (List.map ints_of_payload (Array.to_list incoming))
    in
    Array.sort compare mine;
    M.work (compare_cost *. float_of_int (Array.length mine * 8));
    (* Global-order verification: my maximum must not exceed my successor's
       minimum. Ring sendrecv; sentinels at the ends. *)
    let my_max =
      if Array.length mine = 0 then min_int else mine.(Array.length mine - 1)
    in
    let my_min = if Array.length mine = 0 then max_int else mine.(0) in
    if np > 1 then begin
      let succ_rank = (rank + 1) mod np and pred_rank = (rank + np - 1) mod np in
      let pred_max, _ =
        M.sendrecv ~dest:succ_rank ~src:pred_rank world (Payload.int my_max)
      in
      if rank > 0 && Payload.to_int pred_max > my_min then
        failwith "samplesort: global order violated"
    end;
    (* Conservation: total key count unchanged. *)
    let total =
      Payload.to_int
        (M.allreduce ~op:Types.Sum world (Payload.int (Array.length mine)))
    in
    assert (total = np * keys_per_rank)
end

let program ?(params = default_params) () : Mpi.Mpi_intf.program =
  (module Make (struct
    let params = params
  end))
