(** Mini-ADLB: an asynchronous dynamic load-balancing library in the spirit
    of Lusk et al.'s ADLB (§III, Fig. 9).

    A subset of ranks act as {e servers} holding shared work queues; the
    rest are {e clients} that put and get work. Every server runs a single
    event loop around a wildcard receive — ADLB's signature "aggressively
    non-deterministic" pattern that made it intractable for ISP. Servers
    defer unsatisfiable gets and steal work from sibling servers through
    asynchronous request/response messages, so no server ever blocks on
    another server's state.

    Protocol tags (client -> home server, server -> server):
    - [put]: deposit a work item
    - [get]: request an item; the server answers [work] or defers
    - [steal_req]/[steal_rsp]: inter-server work migration
    - [work]: item delivery to a client
    - [done]: global termination (all items consumed)

    Termination: the total item count is known at startup (each client
    seeds [puts_per_client]); server 0 tracks a global consumed count via
    [consumed] notifications and broadcasts shutdown tokens. *)

module Payload = Mpi.Payload
module Types = Mpi.Types

type params = {
  servers : int;  (** number of server ranks (>= 1) *)
  puts_per_client : int;  (** items each client seeds *)
  work_cost : float;  (** virtual seconds to process one item *)
}

let default_params = { servers = 1; puts_per_client = 2; work_cost = 1e-4 }

let tag_put = 10
let tag_get = 11
let tag_work = 12
let tag_done = 13
let tag_steal_req = 14
let tag_steal_rsp = 15
let tag_consumed = 16
let tag_shutdown = 17

module Make (P : sig
  val params : params
end)
(M : Mpi.Mpi_intf.MPI_CORE) =
struct
  let { servers; puts_per_client; work_cost } = P.params

  (* The server a client deposits to / draws from. *)
  let home_server_of rank nservers = rank mod nservers

  (* ---- Server ---- *)

  type server_state = {
    mutable queue : int list;  (* work items *)
    mutable pending_gets : int list;  (* client ranks waiting for work *)
    mutable steal_outstanding : bool;
    mutable next_victim : int;  (* round-robin steal target *)
    mutable dry_steals : int;  (* empty responses since the last item *)
    mutable live : bool;
    (* rank-0 server only: global consumption accounting *)
    mutable consumed_total : int;
  }

  let serve world nservers total_items =
    let me = M.rank world in
    let st =
      {
        queue = [];
        pending_gets = [];
        steal_outstanding = false;
        next_victim = (me + 1) mod nservers;
        dry_steals = 0;
        live = true;
        consumed_total = 0;
      }
    in
    let deliver client item =
      M.send ~tag:tag_work ~dest:client world (Payload.int item);
      (* Report consumption to the accounting server. *)
      if me = 0 then st.consumed_total <- st.consumed_total + 1
      else M.send ~tag:tag_consumed ~dest:0 world Payload.Unit
    in
    let try_steal () =
      (* A full round of empty-handed steals means the pool is (momentarily)
         dry: stop hunting until a new event arrives, or the retry storm
         never ends. *)
      if
        (not st.steal_outstanding)
        && nservers > 1
        && st.dry_steals < nservers - 1
      then begin
        M.send ~tag:tag_steal_req ~dest:st.next_victim world Payload.Unit;
        st.steal_outstanding <- true;
        st.next_victim <-
          (let v = (st.next_victim + 1) mod nservers in
           if v = me then (v + 1) mod nservers else v)
      end
    in
    let push_work item =
      match st.pending_gets with
      | client :: rest ->
          st.pending_gets <- rest;
          deliver client item
      | [] -> st.queue <- st.queue @ [ item ]
    in
    let my_clients =
      List.filter
        (fun r -> r >= nservers && r mod nservers = me)
        (List.init (M.size world) Fun.id)
    in
    let shutdown_clients () =
      List.iter
        (fun c -> M.send ~tag:tag_shutdown ~dest:c world Payload.Unit)
        my_clients;
      st.live <- false
    in
    let maybe_shutdown () =
      (* The accounting server decides termination and tells the other
         servers; each server shuts its own clients down, so clients only
         ever hear from their home server (deterministic receives). *)
      if me = 0 && st.consumed_total >= total_items && st.live then begin
        for srv = 1 to nservers - 1 do
          M.send ~tag:tag_shutdown ~dest:srv world Payload.Unit
        done;
        shutdown_clients ()
      end
    in
    (* Degenerate pool (no clients): terminate immediately. *)
    maybe_shutdown ();
    while st.live do
      (* The ADLB event loop: one wildcard receive dispatching on tag. *)
      let data, status = M.recv ~src:M.any_source ~tag:M.any_tag world in
      let peer = status.Types.source in
      (match status.Types.tag with
      | t when t = tag_put ->
          st.dry_steals <- 0;
          push_work (Payload.to_int data)
      | t when t = tag_get -> (
          match st.queue with
          | item :: rest ->
              st.queue <- rest;
              deliver peer item
          | [] ->
              st.pending_gets <- st.pending_gets @ [ peer ];
              try_steal ())
      | t when t = tag_steal_req -> (
          match st.queue with
          | item :: rest ->
              st.queue <- rest;
              M.send ~tag:tag_steal_rsp ~dest:peer world (Payload.int item)
          | [] -> M.send ~tag:tag_steal_rsp ~dest:peer world Payload.Unit)
      | t when t = tag_steal_rsp ->
          st.steal_outstanding <- false;
          (match data with
          | Payload.Int item ->
              st.dry_steals <- 0;
              push_work item
          | _ ->
              st.dry_steals <- st.dry_steals + 1;
              if st.pending_gets <> [] then try_steal ())
      | t when t = tag_consumed ->
          st.consumed_total <- st.consumed_total + 1;
          maybe_shutdown ()
      | t when t = tag_shutdown -> shutdown_clients ()
      | t -> failwith (Printf.sprintf "adlb server: unknown tag %d" t));
      maybe_shutdown ()
    done

  (* ---- Client ---- *)

  let client world nservers =
    let me = M.rank world in
    let home = home_server_of me nservers in
    (* Seed the pool. *)
    for i = 0 to puts_per_client - 1 do
      M.send ~tag:tag_put ~dest:home world (Payload.int ((me * 1000) + i))
    done;
    (* Consume until shutdown. Replies and the shutdown token both come
       from the home server, so the receive is deterministic — ADLB's
       non-determinism lives in the servers' event loops. *)
    let live = ref true in
    M.send ~tag:tag_get ~dest:home world Payload.Unit;
    while !live do
      let data, status = M.recv ~src:home ~tag:M.any_tag world in
      match status.Types.tag with
      | t when t = tag_work ->
          ignore (Payload.to_int data);
          M.work work_cost;
          M.send ~tag:tag_get ~dest:home world Payload.Unit
      | t when t = tag_shutdown -> live := false
      | t -> failwith (Printf.sprintf "adlb client: unknown tag %d" t)
    done

  let main () =
    let world = M.comm_world in
    let size = M.size world in
    let nservers = min servers (max 1 (size - 1)) in
    let nclients = size - nservers in
    let total_items = nclients * puts_per_client in
    if M.rank world < nservers then serve world nservers total_items
    else client world nservers
end

(** [program ?params ()] — mini-ADLB as a verifiable program. *)
let program ?(params = default_params) () : Mpi.Mpi_intf.program =
  (module Make (struct
    let params = params
  end))
