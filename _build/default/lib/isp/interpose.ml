(** ISP's interposition layer: every MPI call synchronizes with the central
    scheduler before (and, for completion calls, after) executing.

    The functor layers over any [MPI_CORE] — in the ISP engine it sits above
    the match-discovery layer, so exploration coverage is identical to
    DAMPI's and only the per-run cost differs, which is exactly the
    comparison the paper's Figs. 5 and 6 make. *)

module Types = Mpi.Types

module Wrap
    (M : Mpi.Mpi_intf.MPI_CORE) (Cfg : sig
      val rt : Mpi.Runtime.t
      val model : Model.t
      val server : Sim.Vtime.Server.server
    end) : Mpi.Mpi_intf.MPI_CORE with type comm = M.comm and type request = M.request =
struct
  type comm = M.comm
  type request = M.request

  let rt = Cfg.rt

  (* One synchronous exchange with the scheduler: the caller's clock jumps
     to the round-trip completion. *)
  let scheduler_sync ?(nd = false) () =
    let me = Mpi.Runtime.current rt in
    let now = Mpi.Runtime.clock rt me in
    let finish = Model.round_trip Cfg.model Cfg.server ~now ~nd in
    Mpi.Runtime.advance_clock rt me (finish -. now)

  let any_source = M.any_source
  let any_tag = M.any_tag
  let comm_world = M.comm_world
  let rank = M.rank
  let size = M.size
  let comm_id = M.comm_id
  let world_rank = M.world_rank
  let world_size = M.world_size
  let request_id = M.request_id
  let recv_data = M.recv_data
  let wtime = M.wtime
  let work = M.work (* computation is not intercepted *)

  let isend ?tag ~dest comm payload =
    scheduler_sync ();
    M.isend ?tag ~dest comm payload

  let issend ?tag ~dest comm payload =
    scheduler_sync ();
    M.issend ?tag ~dest comm payload

  let send ?tag ~dest comm payload =
    scheduler_sync ();
    M.send ?tag ~dest comm payload

  let ssend ?tag ~dest comm payload =
    scheduler_sync ();
    M.ssend ?tag ~dest comm payload

  let irecv ?(src = Types.any_source) ?tag comm =
    scheduler_sync ~nd:(src = Types.any_source) ();
    M.irecv ~src ?tag comm

  let recv ?(src = Types.any_source) ?tag comm =
    scheduler_sync ~nd:(src = Types.any_source) ();
    M.recv ~src ?tag comm

  let sendrecv ?stag ?rtag ~dest ~src comm payload =
    scheduler_sync ~nd:(src = Types.any_source) ();
    M.sendrecv ?stag ?rtag ~dest ~src comm payload

  type prequest = M.prequest

  let send_init ?tag ~dest comm payload =
    scheduler_sync ();
    M.send_init ?tag ~dest comm payload

  let recv_init ?(src = Types.any_source) ?tag comm =
    scheduler_sync ~nd:(src = Types.any_source) ();
    M.recv_init ~src ?tag comm

  let start p =
    scheduler_sync ();
    M.start p

  let startall ps =
    scheduler_sync ();
    M.startall ps

  let wait req =
    scheduler_sync ();
    M.wait req

  let test req =
    scheduler_sync ();
    M.test req

  let waitall reqs =
    scheduler_sync ();
    M.waitall reqs

  let waitany reqs =
    scheduler_sync ();
    M.waitany reqs

  let testall reqs =
    scheduler_sync ();
    M.testall reqs

  let probe ?(src = Types.any_source) ?tag comm =
    scheduler_sync ~nd:(src = Types.any_source) ();
    M.probe ~src ?tag comm

  let iprobe ?(src = Types.any_source) ?tag comm =
    scheduler_sync ~nd:(src = Types.any_source) ();
    M.iprobe ~src ?tag comm

  let barrier comm =
    scheduler_sync ();
    M.barrier comm

  let bcast ~root comm payload =
    scheduler_sync ();
    M.bcast ~root comm payload

  let reduce ~root ~op comm payload =
    scheduler_sync ();
    M.reduce ~root ~op comm payload

  let allreduce ~op comm payload =
    scheduler_sync ();
    M.allreduce ~op comm payload

  let gather ~root comm payload =
    scheduler_sync ();
    M.gather ~root comm payload

  let allgather comm payload =
    scheduler_sync ();
    M.allgather comm payload

  let scatter ~root comm payloads =
    scheduler_sync ();
    M.scatter ~root comm payloads

  let alltoall comm payloads =
    scheduler_sync ();
    M.alltoall comm payloads

  let scan ~op comm payload =
    scheduler_sync ();
    M.scan ~op comm payload

  let exscan ~op comm payload =
    scheduler_sync ();
    M.exscan ~op comm payload

  let reduce_scatter_block ~op comm payloads =
    scheduler_sync ();
    M.reduce_scatter_block ~op comm payloads

  let comm_group comm = M.comm_group comm

  let comm_create comm group =
    scheduler_sync ();
    M.comm_create comm group

  let comm_dup comm =
    scheduler_sync ();
    M.comm_dup comm

  let comm_split ~color ~key comm =
    scheduler_sync ();
    M.comm_split ~color ~key comm

  let comm_free comm =
    scheduler_sync ();
    M.comm_free comm

  let pcontrol level =
    scheduler_sync ();
    M.pcontrol level
end
