(** Cost model of ISP's centralized scheduler (§II-A).

    ISP intercepts every MPI call and holds it for a {e synchronous}
    exchange with a single scheduler process. Two architectural properties
    drive the paper's Fig. 5/6 curves, and both are modelled here:

    - every call pays a round trip to a {e shared} FIFO server, so the
      scheduler saturates as total call volume grows (calls arrive from all
      ranks but are served one at a time);
    - the scheduler's per-call work grows with the process count (it
      maintains a global picture of every rank's pending operations), and
      non-deterministic operations are {e delayed} while the scheduler
      discovers the full match set.

    DAMPI pays none of this: its only overhead is piggyback traffic. *)

type t = {
  net_latency : float;  (** one-way process <-> scheduler latency *)
  base_service : float;  (** scheduler service time per MPI call *)
  per_proc_service : float;
      (** additional service per participating process (global state
          bookkeeping) *)
  nd_hold : float;
      (** additional hold applied to non-deterministic operations while the
          scheduler waits to discover the match set *)
}

(* Calibrated so that, with the runtime's default cost model, ParMETIS-scale
   call volumes reproduce the Fig. 5 shape: modest overhead at 4 ranks,
   an order of magnitude past 32. Note the round trip serializes with the
   service (a process cannot issue its next call mid-flight), so the
   effective per-call cost is ~ 2*net_latency + service(np). *)
let default =
  {
    net_latency = 1e-6;
    base_service = 5e-7;
    per_proc_service = 5e-8;
    nd_hold = 2.5e-4;
  }

let service t ~np = t.base_service +. (t.per_proc_service *. float_of_int np)

(** Completion time of one synchronous scheduler exchange for a call issued
    at [now]: travel there, queue, get served, travel back. The server must
    have been created with [service t ~np]. *)
let round_trip t server ~now ~nd =
  let arrival = now +. t.net_latency in
  let served = Sim.Vtime.Server.serve server ~arrival in
  let hold = if nd then t.nd_hold else 0.0 in
  served +. hold +. t.net_latency
