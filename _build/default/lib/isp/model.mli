(** Cost model of ISP's centralized scheduler (§II-A of the paper).

    Every intercepted MPI call pays a synchronous round trip to a single
    FIFO-queueing scheduler whose per-call service grows with the process
    count; non-deterministic operations are additionally held while the
    scheduler assembles its global picture. DAMPI pays none of this — which
    is the architectural comparison behind Figs. 5 and 6. *)

type t = {
  net_latency : float;  (** one-way process <-> scheduler latency *)
  base_service : float;  (** scheduler service time per MPI call *)
  per_proc_service : float;  (** additional service per participating rank *)
  nd_hold : float;  (** extra hold for non-deterministic operations *)
}

val default : t
(** Calibrated to reproduce the Fig. 5 shape (see EXPERIMENTS.md). *)

val service : t -> np:int -> float

val round_trip : t -> Sim.Vtime.Server.server -> now:float -> nd:bool -> float
(** Completion time of one synchronous exchange issued at [now]. The server
    must have been created with [service t ~np]. *)
