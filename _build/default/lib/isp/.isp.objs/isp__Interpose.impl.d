lib/isp/interpose.ml: Model Mpi Sim
