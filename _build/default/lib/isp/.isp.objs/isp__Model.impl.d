lib/isp/model.ml: Sim
