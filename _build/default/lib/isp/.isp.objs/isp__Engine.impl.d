lib/isp/engine.ml: Dampi Interpose Model Mpi Sim
