lib/isp/model.mli: Sim
