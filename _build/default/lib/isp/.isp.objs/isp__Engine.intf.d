lib/isp/engine.mli: Dampi Model Mpi
