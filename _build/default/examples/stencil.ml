(* A 1-D heat-equation stencil solver — a realistic deterministic workload
   built on sendrecv halo exchanges, with convergence detection by
   allreduce, verified end to end.

   Each rank owns a block of the rod; every step exchanges boundary cells
   with both neighbors and applies the three-point update. The program is
   fully deterministic, so the verifier's job is to prove there is nothing
   to explore (one interleaving) and no deadlock, leak, or crash in the
   halo protocol.

     dune exec examples/stencil.exe *)

module Payload = Mpi.Payload
module Types = Mpi.Types

let cells_per_rank = 16
let steps = 50
let alpha = 0.25

module Stencil (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    let rank = M.rank world and size = M.size world in
    let n = cells_per_rank in
    (* Initial condition: a hot spike in rank 0's first cell. *)
    let u = Array.make n (if rank = 0 then 0.0 else 0.0) in
    if rank = 0 then u.(0) <- 100.0;
    let left = rank - 1 and right = rank + 1 in
    for _step = 1 to steps do
      (* Halo exchange: fixed boundary (0.0) at the rod's ends. With both
         neighbors, a combined sendrecv in each direction avoids the
         head-to-head deadlock. *)
      let halo_left =
        if left < 0 then 0.0
        else
          let v, _ =
            M.sendrecv ~dest:left ~src:left world (Payload.float u.(0))
          in
          Payload.to_float v
      in
      let halo_right =
        if right >= size then 0.0
        else
          let v, _ =
            M.sendrecv ~dest:right ~src:right world (Payload.float u.(n - 1))
          in
          Payload.to_float v
      in
      (* Three-point update. *)
      let prev = Array.copy u in
      let at i = if i < 0 then halo_left else if i >= n then halo_right else prev.(i) in
      for i = 0 to n - 1 do
        u.(i) <- prev.(i) +. (alpha *. (at (i - 1) -. (2.0 *. prev.(i)) +. at (i + 1)))
      done;
      M.work 1e-5
    done;
    (* Conservation check: total heat is preserved by the scheme up to the
       (cold) boundary losses, so the global sum must not exceed the
       initial 100 and must stay positive. *)
    let local = Array.fold_left ( +. ) 0.0 u in
    let total =
      Payload.to_float (M.allreduce ~op:Types.Sum world (Payload.float local))
    in
    assert (total > 0.0 && total <= 100.0 +. 1e-9);
    if rank = 0 then
      Printf.printf "  total heat after %d steps: %.4f (started at 100.0)\n%!"
        steps total
end

let () =
  let np = 6 in
  Printf.printf
    "1-D heat equation on %d ranks (%d cells each, %d steps), halo exchange\n\
     via sendrecv:\n\n"
    np cells_per_rank steps;
  let report =
    Dampi.Explorer.verify ~config:Dampi.Explorer.default_config ~np
      (module Stencil : Mpi.Mpi_intf.PROGRAM)
  in
  Printf.printf
    "\nverified: %d interleaving(s), %d finding(s) — a deterministic solver\n\
     has exactly one behaviour, and DAMPI proves it.\n"
    report.Dampi.Report.interleavings
    (List.length report.Dampi.Report.findings)
