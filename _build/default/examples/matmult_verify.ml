(* Verifying the master/slave matmult workload, and taming its interleaving
   space with bounded mixing (paper §III-B2, Fig. 8).

     dune exec examples/matmult_verify.exe *)

module Explorer = Dampi.Explorer
module Report = Dampi.Report
module State = Dampi.State

let verify ~k ~np program =
  let config =
    {
      Explorer.default_config with
      state_config = State.make_config ?mixing_bound:k ();
      max_runs = 50_000;
    }
  in
  Explorer.verify ~config ~np program

let () =
  let np = 5 in
  let params =
    { Workloads.Matmult.default_params with n = 8; rows_per_task = 2 }
  in
  let program = Workloads.Matmult.program ~params () in
  Printf.printf
    "Master/slave matmult (8x8, %d ranks): the master collects results\n\
     through wildcard receives; every matching order must compute the same\n\
     product. The verifier checks them all.\n\n"
    np;
  List.iter
    (fun k ->
      let label =
        match k with None -> "unbounded" | Some k -> Printf.sprintf "k=%d" k
      in
      let report = verify ~k ~np program in
      Printf.printf "  %-10s %6d interleavings, %d findings\n%!" label
        report.Report.interleavings
        (List.length report.Report.findings))
    [ Some 0; Some 1; Some 2; None ];
  print_endline
    "\nBounded mixing trades exhaustiveness for a tractable, user-tunable\n\
     search; all runs validated the product, so no findings is the good\n\
     answer."
