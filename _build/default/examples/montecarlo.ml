(* Monte-Carlo estimation of pi — an embarrassingly-parallel workload with
   a work-sharing twist: a coordinator hands out sample batches and collects
   partial counts through wildcard receives (the master/worker idiom the
   paper's matmult study uses), then everyone agrees on the estimate with a
   reduction.

   The estimate must be identical in every interleaving (addition commutes),
   which is exactly what verification proves here.

     dune exec examples/montecarlo.exe *)

module Payload = Mpi.Payload
module Types = Mpi.Types

let batches = 8
let samples_per_batch = 2000

let printed = ref false

module Pi (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let hits_in_batch seed =
    (* Deterministic per-batch sampling, so every matching order computes
       the same totals. *)
    let rng = Sim.Splitmix.create (0xC0FFEE + seed) in
    let hits = ref 0 in
    for _ = 1 to samples_per_batch do
      let x = Sim.Splitmix.float rng 1.0 and y = Sim.Splitmix.float rng 1.0 in
      if (x *. x) +. (y *. y) <= 1.0 then incr hits
    done;
    !hits

  let coordinator world =
    let size = M.size world in
    let next = ref 0 and outstanding = ref 0 and total = ref 0 in
    let give dest =
      if !next < batches then begin
        M.send ~tag:0 ~dest world (Payload.int !next);
        incr next;
        incr outstanding
      end
      else M.send ~tag:1 ~dest world Payload.Unit
    in
    for w = 1 to size - 1 do
      give w
    done;
    while !outstanding > 0 do
      let v, st = M.recv ~src:M.any_source ~tag:2 world in
      decr outstanding;
      total := !total + Payload.to_int v;
      M.work 1e-6;
      give st.Types.source
    done;
    !total

  let worker world =
    let live = ref true in
    while !live do
      let st = M.probe ~src:0 world in
      if st.Types.tag = 1 then begin
        ignore (M.recv ~src:0 ~tag:1 world);
        live := false
      end
      else begin
        let b, _ = M.recv ~src:0 ~tag:0 world in
        M.work 5e-5;
        M.send ~tag:2 ~dest:0 world (Payload.int (hits_in_batch (Payload.to_int b)))
      end
    done;
    0

  let main () =
    let world = M.comm_world in
    let my_total =
      if M.rank world = 0 then coordinator world else worker world
    in
    (* Everyone learns the total; only rank 0 had a real contribution. *)
    let total =
      Payload.to_int (M.allreduce ~op:Types.Sum world (Payload.int my_total))
    in
    let pi =
      4.0 *. float_of_int total /. float_of_int (batches * samples_per_batch)
    in
    (* The estimate is schedule-independent; a wrong matching that corrupted
       the bookkeeping would trip this. *)
    assert (Float.abs (pi -. 3.1415) < 0.1);
    (* The verifier replays this program thousands of times; report the
       estimate only once (the value is identical on every schedule). *)
    if M.rank world = 0 && not !printed then begin
      printed := true;
      Printf.printf "  pi ~ %.4f from %d samples\n%!" pi
        (batches * samples_per_batch)
    end
end

let () =
  let np = 4 in
  Printf.printf
    "Monte-Carlo pi on %d ranks (%d batches of %d samples), collected via\n\
     wildcard receives:\n\n"
    np batches samples_per_batch;
  let report =
    Dampi.Explorer.verify
      ~config:{ Dampi.Explorer.default_config with max_runs = 2000 }
      ~np
      (module Pi : Mpi.Mpi_intf.PROGRAM)
  in
  Printf.printf
    "\nverified %d interleavings, %d findings: the estimate is the same on\n\
     every matching order, so the collection logic is order-insensitive.\n"
    report.Dampi.Report.interleavings
    (List.length report.Dampi.Report.findings)
