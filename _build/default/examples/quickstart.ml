(* Quickstart: write an MPI program against [Mpi.Mpi_intf.MPI_CORE], hand it
   to the DAMPI verifier, and read the report.

   The program is the paper's Fig. 3 race: rank 1's wildcard receive can
   match rank 0 (benign) or rank 2 (crash). Plain testing sees only the
   benign schedule; DAMPI discovers the alternate match from the first run's
   piggybacked Lamport clocks and forces it in a replay.

     dune exec examples/quickstart.exe *)

module Payload = Mpi.Payload

(* A target program is a functor over the MPI interface — the analogue of an
   unmodified MPI binary that can be relinked against an interposition
   stack. *)
module Racy (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    match M.rank world with
    | 0 -> M.send ~dest:1 world (Payload.int 22)
    | 1 ->
        let x, status = M.recv ~src:M.any_source world in
        Printf.printf "  [rank 1] got %d from rank %d\n%!" (Payload.to_int x)
          status.Mpi.Types.source;
        assert (Payload.to_int x <> 33) (* "impossible"... *)
    | 2 -> M.send ~dest:1 world (Payload.int 33)
    | _ -> ()
end

let () =
  print_endline "1. Running natively (the schedule testing would see):";
  (match Mpi.Bind.exec ~np:3 (module Racy : Mpi.Mpi_intf.PROGRAM) with
  | _, Sim.Coroutine.All_finished -> print_endline "  native run: no error.\n"
  | _ -> print_endline "  native run: error!?\n");
  print_endline "2. Verifying with DAMPI (covers every wildcard match):";
  let report =
    Dampi.Explorer.verify ~config:Dampi.Explorer.default_config ~np:3
      (module Racy : Mpi.Mpi_intf.PROGRAM)
  in
  Format.printf "%a@." Dampi.Report.pp report;
  if Dampi.Report.has_errors report then
    print_endline "\nDAMPI found the bug plain testing missed."
