(* Verifying the mini-ADLB work-sharing library (paper §III, Fig. 9).

   ADLB's server event loop is a single wildcard receive dispatching puts,
   gets, steals and shutdowns — "aggressively non-deterministic". Full
   coverage is hopeless even at small scale; bounded mixing makes a useful
   sweep feasible.

     dune exec examples/adlb_verify.exe *)

module Explorer = Dampi.Explorer
module Report = Dampi.Report
module State = Dampi.State

let () =
  let np = 6 in
  let params =
    { Workloads.Adlb.default_params with servers = 2; puts_per_client = 2 }
  in
  let program = Workloads.Adlb.program ~params () in
  Printf.printf
    "mini-ADLB: %d ranks (2 servers with work stealing, 4 clients, 8 work\n\
     items). Verifying the matching space under bounded mixing:\n\n"
    np;
  List.iter
    (fun k ->
      let config =
        {
          Explorer.default_config with
          state_config = State.make_config ~mixing_bound:k ();
          max_runs = 20_000;
        }
      in
      let report = Explorer.verify ~config ~np program in
      Printf.printf "  k=%d: %5d interleavings, %d wildcard events, %d findings\n%!"
        k report.Report.interleavings report.Report.wildcards_analyzed
        (List.length report.Report.findings))
    [ 0; 1; 2 ];
  print_endline
    "\nEvery explored schedule terminated with all work consumed: the\n\
     put/get/steal/shutdown protocol holds under reordering."
