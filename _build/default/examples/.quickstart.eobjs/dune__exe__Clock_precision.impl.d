examples/clock_precision.ml: Clocks Dampi Format List Printf Workloads
