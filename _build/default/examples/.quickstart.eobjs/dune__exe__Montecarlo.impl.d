examples/montecarlo.ml: Dampi Float List Mpi Printf Sim
