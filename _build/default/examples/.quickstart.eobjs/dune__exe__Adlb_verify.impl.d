examples/adlb_verify.ml: Dampi List Printf Workloads
