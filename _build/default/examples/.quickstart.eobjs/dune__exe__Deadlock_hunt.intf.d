examples/deadlock_hunt.mli:
