examples/montecarlo.mli:
