examples/deadlock_hunt.ml: Dampi Format List Mpi Printf
