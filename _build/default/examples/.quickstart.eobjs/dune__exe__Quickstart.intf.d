examples/quickstart.mli:
