examples/quickstart.ml: Dampi Format Mpi Printf Sim
