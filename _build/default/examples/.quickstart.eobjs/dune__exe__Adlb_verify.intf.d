examples/adlb_verify.mli:
