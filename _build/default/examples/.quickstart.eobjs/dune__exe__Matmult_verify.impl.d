examples/matmult_verify.ml: Dampi List Printf Workloads
