examples/stencil.ml: Array Dampi List Mpi Printf
