examples/stencil.mli:
