examples/matmult_verify.mli:
