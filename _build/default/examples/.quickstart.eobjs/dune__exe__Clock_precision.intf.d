examples/clock_precision.mli:
