(* Hunting an interleaving-dependent deadlock.

   Rank 1 does a wildcard receive and then a specific receive from rank 2.
   If the wildcard happens to match rank 2's only message, the specific
   receive starves — a deadlock that exists on some platforms and not
   others. DAMPI finds it and prints the schedule that reproduces it.

     dune exec examples/deadlock_hunt.exe *)

module Payload = Mpi.Payload

module Fragile (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    match M.rank world with
    | 0 -> M.send ~dest:1 world (Payload.str "from-0")
    | 1 ->
        let _, st = M.recv ~src:M.any_source world in
        Printf.printf "  [rank 1] wildcard matched rank %d\n%!"
          st.Mpi.Types.source;
        ignore (M.recv ~src:2 world)
    | 2 -> M.send ~dest:1 world (Payload.str "from-2")
    | _ -> ()
end

let () =
  print_endline "Verifying the fragile receive sequence on 3 ranks:\n";
  let report =
    Dampi.Explorer.verify ~config:Dampi.Explorer.default_config ~np:3
      (module Fragile : Mpi.Mpi_intf.PROGRAM)
  in
  Format.printf "@.%a@." Dampi.Report.pp report;
  let deadlocks =
    List.filter
      (fun (f : Dampi.Report.finding) ->
        match f.Dampi.Report.error with
        | Dampi.Report.Deadlock _ -> true
        | _ -> false)
      report.Dampi.Report.findings
  in
  Printf.printf
    "\n%d deadlock(s) found across %d interleavings; the reported schedule\n\
     (owner@epoch <- source) deterministically reproduces it under guided\n\
     replay.\n"
    (List.length deadlocks)
    report.Dampi.Report.interleavings
