(* Lamport vs vector clocks on the paper's Fig. 4 cross-coupled pattern
   (§II-C and §II-F).

   Two wildcard receives on different processes match "crosswise" sends.
   Lamport clocks — a single scalar — over-order the concurrent sends, so
   DAMPI's default (scalable) configuration cannot see one alternate match.
   Vector clocks keep the events incomparable and recover it, at O(np)
   piggyback cost per message.

     dune exec examples/clock_precision.exe *)

module Explorer = Dampi.Explorer
module Report = Dampi.Report
module State = Dampi.State

let verify clock =
  Explorer.verify
    ~config:
      { Explorer.default_config with state_config = State.make_config ~clock () }
    ~np:4 Workloads.Patterns.fig4

let describe name (report : Report.t) =
  Printf.printf "%s clocks: %d interleavings, %d finding(s)\n" name
    report.Report.interleavings
    (List.length report.Report.findings);
  List.iter
    (fun (f : Report.finding) ->
      Format.printf "    %a@." Report.pp_finding f)
    report.Report.findings

let () =
  print_endline
    "Fig. 4 cross-coupled pattern: P0 -> P1(recv any), P3 -> P2(recv any),\n\
     then P2 sends to P1. P1 crashes iff it receives P2's message - a match\n\
     reachable only by first redirecting P2's receive to P3.\n";
  describe "Lamport" (verify (module Clocks.Lamport : Clocks.Clock_intf.S));
  print_newline ();
  describe "Vector" (verify (module Clocks.Vector : Clocks.Clock_intf.S));
  print_endline
    "\nThe scalar clock judges P2's send 'not late' (its value equals the\n\
     epoch's) and misses the bug; the vector clock sees concurrency and\n\
     finds it. The paper accepts this rare incompleteness for scalability\n\
     (SS II-F) - this repository implements both so the trade-off is\n\
     measurable (bench: ablation-clocks)."
