  $ dampi list | head -8
  $ dampi verify fig3 -q
  $ dampi verify fig4 -q
  $ dampi verify fig4 --clock vector -q
  $ dampi verify fig10 -q
  $ dampi verify fig10 --dual-clock -q
  $ dampi verify matmult -q --max-runs 100000 -k 0
  $ dampi verify deadlock -q
  $ dampi verify fig3 -q --dump-schedule fig3.sched
  $ cat fig3.sched
  $ dampi replay fig3 fig3.sched | tail -2
  $ dampi stats fig3
  $ dampi verify fig3 -q --trace-out fig3.trace.json --metrics-out fig3.metrics.json
  $ grep -c '"traceEvents"' fig3.trace.json
  $ grep -c '"ph":"X"' fig3.trace.json
  $ for s in mpi.match_attempts dampi.piggyback_bytes sched.queue_wait_s \
  >   explorer.replay_wall_s explorer.replays; do
  >   grep -q "\"$s\"" fig3.metrics.json && echo "$s present"
  > done
  $ dampi replay fig3 fig3.sched --metrics-out replay.metrics.json | tail -1
  $ grep -q '"mpi.match_attempts"' replay.metrics.json && echo found
