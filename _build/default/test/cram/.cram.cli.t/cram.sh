  $ dampi list | head -8
  $ dampi verify fig3 -q
  $ dampi verify fig4 -q
  $ dampi verify fig4 --clock vector -q
  $ dampi verify fig10 -q
  $ dampi verify fig10 --dual-clock -q
  $ dampi verify matmult -q --max-runs 100000 -k 0
  $ dampi verify deadlock -q
  $ dampi verify fig3 -q --dump-schedule fig3.sched
  $ cat fig3.sched
  $ dampi replay fig3 fig3.sched | tail -2
