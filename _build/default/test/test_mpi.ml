(* Tests for the simulated MPI runtime: matching semantics, wildcard
   receives, collectives, communicators, deadlock and leak detection. *)

module Runtime = Mpi.Runtime
module Payload = Mpi.Payload
module Types = Mpi.Types
module Comm = Mpi.Comm
module Coroutine = Sim.Coroutine

(* Run [body rank] on [np] simulated ranks over a fresh runtime; return the
   runtime and outcome. *)
let exec ?cost ?oracle ~np body =
  let rt = Runtime.create ?cost ?oracle ~np () in
  Runtime.spawn_ranks rt (fun rank -> body rt rank);
  let outcome = Runtime.run rt in
  (rt, outcome)

(* Substring check used to assert on error messages. *)
let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let check_finished (outcome : Coroutine.outcome) =
  match outcome with
  | Coroutine.All_finished -> ()
  | Coroutine.Deadlock blocked ->
      Alcotest.failf "unexpected deadlock: %s"
        (String.concat ", "
           (List.map
              (fun (b : Coroutine.blocked_info) ->
                Printf.sprintf "%d:%s" b.pid b.reason)
              blocked))
  | Coroutine.Crashed (pid, exn, _) ->
      Alcotest.failf "rank %d crashed: %s" pid (Printexc.to_string exn)

(* ---- Point-to-point basics ---- *)

let test_ping_pong () =
  let got = ref None in
  let _, outcome =
    exec ~np:2 (fun rt rank ->
        let world = Runtime.comm_world rt in
        if rank = 0 then Runtime.send rt ~dest:1 world (Payload.int 41)
        else begin
          let data, st = Runtime.recv rt ~src:0 world in
          got := Some (Payload.to_int data, st.Types.source, st.Types.tag)
        end)
  in
  check_finished outcome;
  Alcotest.(check (option (triple int int int)))
    "payload, source, tag" (Some (41, 0, 0)) !got

let test_tag_matching () =
  (* Receive tag 7 first even though tag 3 was sent first. *)
  let order = ref [] in
  let _, outcome =
    exec ~np:2 (fun rt rank ->
        let world = Runtime.comm_world rt in
        if rank = 0 then begin
          Runtime.send rt ~tag:3 ~dest:1 world (Payload.int 3);
          Runtime.send rt ~tag:7 ~dest:1 world (Payload.int 7)
        end
        else begin
          let a, _ = Runtime.recv rt ~src:0 ~tag:7 world in
          let b, _ = Runtime.recv rt ~src:0 ~tag:3 world in
          order := [ Payload.to_int a; Payload.to_int b ]
        end)
  in
  check_finished outcome;
  Alcotest.(check (list int)) "tag-selective receive" [ 7; 3 ] !order

let test_non_overtaking () =
  (* Two same-tag messages on one channel must arrive in send order, even
     through wildcard receives. *)
  let order = ref [] in
  let _, outcome =
    exec ~np:2 (fun rt rank ->
        let world = Runtime.comm_world rt in
        if rank = 0 then
          for i = 1 to 5 do
            Runtime.send rt ~dest:1 world (Payload.int i)
          done
        else
          for _ = 1 to 5 do
            let v, _ = Runtime.recv rt ~src:Types.any_source world in
            order := Payload.to_int v :: !order
          done)
  in
  check_finished outcome;
  Alcotest.(check (list int)) "fifo per channel" [ 1; 2; 3; 4; 5 ]
    (List.rev !order)

let test_wildcard_two_senders () =
  (* Both senders' messages are received; sources recorded faithfully. *)
  let sources = ref [] in
  let _, outcome =
    exec ~np:3 (fun rt rank ->
        let world = Runtime.comm_world rt in
        if rank = 1 then
          for _ = 1 to 2 do
            let _, st = Runtime.recv rt ~src:Types.any_source world in
            sources := st.Types.source :: !sources
          done
        else Runtime.send rt ~dest:1 world (Payload.int rank))
  in
  check_finished outcome;
  Alcotest.(check (list int))
    "both sources seen" [ 0; 2 ]
    (List.sort compare !sources)

let test_isend_wait () =
  let got = ref 0 in
  let _, outcome =
    exec ~np:2 (fun rt rank ->
        let world = Runtime.comm_world rt in
        if rank = 0 then begin
          let reqs =
            List.init 4 (fun i -> Runtime.isend rt ~dest:1 world (Payload.int i))
          in
          ignore (Runtime.waitall rt reqs)
        end
        else begin
          let reqs = List.init 4 (fun _ -> Runtime.irecv rt ~src:0 world) in
          ignore (Runtime.waitall rt reqs);
          got :=
            List.fold_left
              (fun acc r -> acc + Payload.to_int (Runtime.recv_data r))
              0 reqs
        end)
  in
  check_finished outcome;
  Alcotest.(check int) "all payloads received" 6 !got

let test_ssend_blocks_until_matched () =
  (* P0's ssend cannot complete before P1 posts the receive; P1 only posts
     after it has made visible progress. *)
  let progress = ref [] in
  let _, outcome =
    exec ~np:2 (fun rt rank ->
        let world = Runtime.comm_world rt in
        if rank = 0 then begin
          progress := "p0-ssend-start" :: !progress;
          Runtime.ssend rt ~dest:1 world (Payload.int 1);
          progress := "p0-ssend-done" :: !progress
        end
        else begin
          Coroutine.yield ();
          progress := "p1-posting" :: !progress;
          ignore (Runtime.recv rt ~src:0 world)
        end)
  in
  check_finished outcome;
  let idx s =
    let rec go i = function
      | [] -> Alcotest.failf "missing %s" s
      | x :: _ when String.equal x s -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 (List.rev !progress)
  in
  Alcotest.(check bool) "ssend completes after recv posted" true
    (idx "p0-ssend-done" > idx "p1-posting")

let test_waitany () =
  let winner = ref (-1) in
  let _, outcome =
    exec ~np:3 (fun rt rank ->
        let world = Runtime.comm_world rt in
        if rank = 0 then begin
          (* Rank 1 sends only after rank 0's go message, so request 0
             cannot be complete when waitany returns. *)
          let r1 = Runtime.irecv rt ~src:1 world in
          let r2 = Runtime.irecv rt ~src:2 world in
          let i, _ = Runtime.waitany rt [ r1; r2 ] in
          winner := i;
          Runtime.send rt ~dest:1 world Payload.Unit;
          ignore (Runtime.wait rt r1)
        end
        else if rank = 2 then Runtime.send rt ~dest:0 world Payload.Unit
        else begin
          ignore (Runtime.recv rt ~src:0 world);
          Runtime.send rt ~dest:0 world Payload.Unit
        end)
  in
  check_finished outcome;
  Alcotest.(check int) "second request completed first" 1 !winner

let test_probe () =
  let seen = ref None in
  let _, outcome =
    exec ~np:2 (fun rt rank ->
        let world = Runtime.comm_world rt in
        if rank = 0 then Runtime.send rt ~tag:9 ~dest:1 world (Payload.str "hi")
        else begin
          let st = Runtime.probe rt ~src:Types.any_source world in
          seen := Some (st.Types.source, st.Types.tag, st.Types.count);
          (* The message is still there after the probe. *)
          let data, _ = Runtime.recv rt ~src:st.Types.source ~tag:st.Types.tag world in
          Alcotest.(check string) "probe left message" "hi" (Payload.to_str data)
        end)
  in
  check_finished outcome;
  Alcotest.(check (option (triple int int int)))
    "probe status" (Some (0, 9, 2)) !seen

let test_iprobe_miss () =
  let first = ref (Some { Types.source = 0; tag = 0; count = 0 }) in
  let _, outcome =
    exec ~np:2 (fun rt rank ->
        let world = Runtime.comm_world rt in
        if rank = 1 then begin
          first := Runtime.iprobe rt ~src:0 world;
          (* rank 0 sends on its first slice; eventually iprobe hits. *)
          let rec poll () =
            match Runtime.iprobe rt ~src:0 world with
            | Some _ -> ignore (Runtime.recv rt ~src:0 world)
            | None -> poll ()
          in
          poll ()
        end
        else begin
          Coroutine.yield ();
          Runtime.send rt ~dest:1 world Payload.Unit
        end)
  in
  check_finished outcome;
  Alcotest.(check bool) "first iprobe misses" true (!first = None)

(* ---- Deadlock and error detection ---- *)

let test_deadlock_cross_recv () =
  let _, outcome =
    exec ~np:2 (fun rt rank ->
        let world = Runtime.comm_world rt in
        (* Both ranks receive first: classic head-to-head deadlock. *)
        ignore (Runtime.recv rt ~src:(1 - rank) world);
        Runtime.send rt ~dest:(1 - rank) world Payload.Unit)
  in
  match outcome with
  | Coroutine.Deadlock blocked ->
      Alcotest.(check int) "both ranks blocked" 2 (List.length blocked)
  | _ -> Alcotest.fail "expected deadlock"

let test_collective_mismatch_detected () =
  let _, outcome =
    exec ~np:2 (fun rt rank ->
        let world = Runtime.comm_world rt in
        if rank = 0 then Runtime.barrier rt world
        else ignore (Runtime.allreduce rt ~op:Types.Sum world (Payload.int 1)))
  in
  match outcome with
  | Coroutine.Crashed (_, Types.Mpi_error msg, _) ->
      Alcotest.(check bool) "mentions mismatch" true
        (contains ~sub:"collective mismatch" msg)
  | _ -> Alcotest.fail "expected Mpi_error crash"

let test_invalid_rank_detected () =
  let _, outcome =
    exec ~np:2 (fun rt rank ->
        let world = Runtime.comm_world rt in
        if rank = 0 then Runtime.send rt ~dest:5 world Payload.Unit)
  in
  match outcome with
  | Coroutine.Crashed (0, Types.Mpi_error _, _) -> ()
  | _ -> Alcotest.fail "expected Mpi_error for invalid rank"

let expect_mpi_error name body =
  let _, outcome = exec ~np:2 body in
  match outcome with
  | Coroutine.Crashed (_, Types.Mpi_error _, _) -> ()
  | _ -> Alcotest.failf "%s: expected an Mpi_error crash" name

let test_wait_on_foreign_request () =
  (* Rank 1 waits on a request owned by rank 0: usage error. *)
  let stash = ref None in
  expect_mpi_error "foreign wait" (fun rt rank ->
      let world = Runtime.comm_world rt in
      if rank = 0 then begin
        stash := Some (Runtime.irecv rt ~src:1 world);
        Runtime.send rt ~dest:1 world Payload.Unit
      end
      else begin
        ignore (Runtime.recv rt ~src:0 world);
        match !stash with
        | Some req -> ignore (Runtime.wait rt req)
        | None -> ()
      end)

let test_negative_tag_rejected () =
  expect_mpi_error "negative tag" (fun rt rank ->
      let world = Runtime.comm_world rt in
      if rank = 0 then Runtime.send rt ~tag:(-3) ~dest:1 world Payload.Unit)

let test_scatter_size_mismatch () =
  expect_mpi_error "scatter size" (fun rt rank ->
      let world = Runtime.comm_world rt in
      ignore
        (Runtime.scatter rt ~root:0 world
           (if rank = 0 then Some [| Payload.Unit |] else None)))

let test_alltoall_size_mismatch () =
  expect_mpi_error "alltoall size" (fun rt _rank ->
      let world = Runtime.comm_world rt in
      ignore (Runtime.alltoall rt world [| Payload.Unit |]))

let test_free_world_rejected () =
  expect_mpi_error "free world" (fun rt rank ->
      let world = Runtime.comm_world rt in
      if rank = 0 then Runtime.comm_free rt world)

let test_double_free_rejected () =
  expect_mpi_error "double free" (fun rt rank ->
      let world = Runtime.comm_world rt in
      let dup = Runtime.comm_dup rt world in
      Runtime.comm_free rt dup;
      if rank = 0 then Runtime.comm_free rt dup)

(* ---- Collectives ---- *)

let test_barrier_synchronizes_time () =
  let rt, outcome =
    exec ~np:4 (fun rt rank ->
        let world = Runtime.comm_world rt in
        (* Rank 2 does a lot of local work; barrier drags everyone to it. *)
        if rank = 2 then Runtime.advance_clock rt rank 1.0;
        Runtime.barrier rt world)
  in
  check_finished outcome;
  Alcotest.(check bool) "makespan includes slowest rank" true
    (Runtime.makespan rt >= 1.0)

let test_allreduce () =
  let results = Array.make 4 0 in
  let _, outcome =
    exec ~np:4 (fun rt rank ->
        let world = Runtime.comm_world rt in
        let r = Runtime.allreduce rt ~op:Types.Sum world (Payload.int (rank + 1)) in
        results.(rank) <- Payload.to_int r)
  in
  check_finished outcome;
  Array.iteri
    (fun i v -> Alcotest.(check int) (Printf.sprintf "rank %d" i) 10 v)
    results

let test_allreduce_max_min () =
  let mx = ref 0 and mn = ref 0 in
  let _, outcome =
    exec ~np:5 (fun rt rank ->
        let world = Runtime.comm_world rt in
        let m = Runtime.allreduce rt ~op:Types.Max world (Payload.int rank) in
        let n = Runtime.allreduce rt ~op:Types.Min world (Payload.int rank) in
        if rank = 0 then begin
          mx := Payload.to_int m;
          mn := Payload.to_int n
        end)
  in
  check_finished outcome;
  Alcotest.(check int) "max" 4 !mx;
  Alcotest.(check int) "min" 0 !mn

let test_bcast () =
  let results = Array.make 4 "" in
  let _, outcome =
    exec ~np:4 (fun rt rank ->
        let world = Runtime.comm_world rt in
        let contrib = if rank = 2 then Payload.str "root" else Payload.Unit in
        let r = Runtime.bcast rt ~root:2 world contrib in
        results.(rank) <- Payload.to_str r)
  in
  check_finished outcome;
  Array.iter (fun v -> Alcotest.(check string) "bcast value" "root" v) results

let test_reduce_root_only () =
  let at_root = ref None and elsewhere = ref [] in
  let _, outcome =
    exec ~np:3 (fun rt rank ->
        let world = Runtime.comm_world rt in
        match Runtime.reduce rt ~root:1 ~op:Types.Prod world (Payload.int (rank + 1)) with
        | Some v -> at_root := Some (rank, Payload.to_int v)
        | None -> elsewhere := rank :: !elsewhere)
  in
  check_finished outcome;
  Alcotest.(check (option (pair int int))) "root result" (Some (1, 6)) !at_root;
  Alcotest.(check (list int)) "non-roots" [ 0; 2 ] (List.sort compare !elsewhere)

let test_gather_scatter () =
  let gathered = ref [||] in
  let scattered = Array.make 3 0 in
  let _, outcome =
    exec ~np:3 (fun rt rank ->
        let world = Runtime.comm_world rt in
        (match Runtime.gather rt ~root:0 world (Payload.int (rank * 10)) with
        | Some arr when rank = 0 -> gathered := Array.map Payload.to_int arr
        | Some _ -> Alcotest.fail "non-root got gather result"
        | None -> ());
        let mine =
          Runtime.scatter rt ~root:0 world
            (if rank = 0 then
               Some (Array.init 3 (fun i -> Payload.int (100 + i)))
             else None)
        in
        scattered.(rank) <- Payload.to_int mine)
  in
  check_finished outcome;
  Alcotest.(check (array int)) "gather in rank order" [| 0; 10; 20 |] !gathered;
  Alcotest.(check (array int)) "scatter" [| 100; 101; 102 |] scattered

let test_allgather_alltoall () =
  let ag = ref [||] in
  let at = Array.make 3 [||] in
  let _, outcome =
    exec ~np:3 (fun rt rank ->
        let world = Runtime.comm_world rt in
        let everyone = Runtime.allgather rt world (Payload.int rank) in
        if rank = 1 then ag := Array.map Payload.to_int everyone;
        let out =
          Runtime.alltoall rt world
            (Array.init 3 (fun dst -> Payload.int ((rank * 10) + dst)))
        in
        at.(rank) <- Array.map Payload.to_int out)
  in
  check_finished outcome;
  Alcotest.(check (array int)) "allgather" [| 0; 1; 2 |] !ag;
  (* alltoall: rank r receives (s*10 + r) from each s. *)
  Alcotest.(check (array int)) "alltoall rank0" [| 0; 10; 20 |] at.(0);
  Alcotest.(check (array int)) "alltoall rank2" [| 2; 12; 22 |] at.(2)

(* ---- Communicators ---- *)

let test_comm_dup_isolates_traffic () =
  let got = ref [] in
  let _, outcome =
    exec ~np:2 (fun rt rank ->
        let world = Runtime.comm_world rt in
        let dup = Runtime.comm_dup rt world in
        if rank = 0 then begin
          Runtime.send rt ~dest:1 world (Payload.int 1);
          Runtime.send rt ~dest:1 dup (Payload.int 2)
        end
        else begin
          (* Receive on dup first: must get the dup message, not the world
             one, even though world's was sent earlier with the same tag. *)
          let a, _ = Runtime.recv rt ~src:0 dup in
          let b, _ = Runtime.recv rt ~src:0 world in
          got := [ Payload.to_int a; Payload.to_int b ]
        end;
        Runtime.comm_free rt dup)
  in
  check_finished outcome;
  Alcotest.(check (list int)) "contexts isolate matching" [ 2; 1 ] !got

let test_comm_split () =
  let sizes = Array.make 4 0 in
  let ranks_in_split = Array.make 4 (-1) in
  let _, outcome =
    exec ~np:4 (fun rt rank ->
        let world = Runtime.comm_world rt in
        (* Even ranks vs odd ranks; key reverses order within evens. *)
        let sub =
          Runtime.comm_split rt ~color:(rank mod 2) ~key:(-rank) world
        in
        sizes.(rank) <- Comm.size sub;
        ranks_in_split.(rank) <- Comm.rank_of_world sub rank)
  in
  check_finished outcome;
  Alcotest.(check (array int)) "split sizes" [| 2; 2; 2; 2 |] sizes;
  (* Evens: key -0 > -2, so rank 2 (key -2) sorts first. *)
  Alcotest.(check int) "world rank 0 is second in evens" 1 ranks_in_split.(0);
  Alcotest.(check int) "world rank 2 is first in evens" 0 ranks_in_split.(2)

let test_use_after_free_detected () =
  let _, outcome =
    exec ~np:2 (fun rt rank ->
        let world = Runtime.comm_world rt in
        let dup = Runtime.comm_dup rt world in
        Runtime.comm_free rt dup;
        if rank = 0 then Runtime.send rt ~dest:1 dup Payload.Unit)
  in
  match outcome with
  | Coroutine.Crashed (0, Types.Mpi_error msg, _) ->
      Alcotest.(check bool) "mentions free" true
        (contains ~sub:"after freeing" msg)
  | _ -> Alcotest.fail "expected use-after-free error"

(* ---- Leak reports ---- *)

let test_comm_leak_reported () =
  let rt, outcome =
    exec ~np:2 (fun rt rank ->
        let world = Runtime.comm_world rt in
        let dup = Runtime.comm_dup rt world in
        (* Only rank 0 frees. *)
        if rank = 0 then Runtime.comm_free rt dup)
  in
  check_finished outcome;
  let report = Runtime.leak_report rt in
  let leakers = List.map fst report.Runtime.comm_leaks in
  Alcotest.(check (list int)) "rank 1 leaks the dup" [ 1 ] leakers

let test_request_leak_reported () =
  let rt, outcome =
    exec ~np:2 (fun rt rank ->
        let world = Runtime.comm_world rt in
        if rank = 0 then begin
          (* isend completed by the runtime but never waited: leaked. *)
          ignore (Runtime.isend rt ~dest:1 world Payload.Unit)
        end
        else ignore (Runtime.recv rt ~src:0 world))
  in
  check_finished outcome;
  let report = Runtime.leak_report rt in
  Alcotest.(check int) "rank 0 leaks one request" 1 report.Runtime.req_leaks.(0);
  Alcotest.(check int) "rank 1 leaks none" 0 report.Runtime.req_leaks.(1)

let test_no_false_leaks () =
  let rt, outcome =
    exec ~np:2 (fun rt rank ->
        let world = Runtime.comm_world rt in
        let dup = Runtime.comm_dup rt world in
        if rank = 0 then Runtime.send rt ~dest:1 dup Payload.Unit
        else ignore (Runtime.recv rt ~src:0 dup);
        Runtime.comm_free rt dup)
  in
  check_finished outcome;
  let report = Runtime.leak_report rt in
  Alcotest.(check int) "no comm leaks" 0 (List.length report.Runtime.comm_leaks);
  Alcotest.(check int) "no req leaks rank0" 0 report.Runtime.req_leaks.(0);
  Alcotest.(check int) "no req leaks rank1" 0 report.Runtime.req_leaks.(1)

(* ---- Statistics (Table I infrastructure) ---- *)

let test_stats_census () =
  let rt, outcome =
    exec ~np:2 (fun rt rank ->
        let world = Runtime.comm_world rt in
        Runtime.barrier rt world;
        if rank = 0 then Runtime.send rt ~dest:1 world Payload.Unit
        else ignore (Runtime.recv rt ~src:0 world);
        Runtime.barrier rt world)
  in
  check_finished outcome;
  let stats = Runtime.stats rt in
  Alcotest.(check int) "collectives" 4 (Mpi.Stats.total_collective stats);
  (* send + (irecv) = 2 point-to-point posts; blocking wrappers add waits. *)
  Alcotest.(check int) "send-recv" 2 (Mpi.Stats.total_send_recv stats);
  Alcotest.(check int) "waits" 2 (Mpi.Stats.total_wait stats)

(* ---- Determinism (replay foundation) ---- *)

let run_trace () =
  let trace = ref [] in
  let _, outcome =
    exec ~np:4 (fun rt rank ->
        let world = Runtime.comm_world rt in
        if rank = 0 then
          for _ = 1 to 3 do
            let v, st = Runtime.recv rt ~src:Types.any_source world in
            trace := (st.Types.source, Payload.to_int v) :: !trace
          done
        else begin
          Runtime.send rt ~dest:0 world (Payload.int rank);
          Runtime.send rt ~dest:0 world (Payload.int (rank * 100))
        end)
  in
  (* Drain the extra messages so no deadlock; they stay unexpected. *)
  ignore outcome;
  List.rev !trace

let test_deterministic_replay () =
  let t1 = run_trace () and t2 = run_trace () in
  Alcotest.(check (list (pair int int))) "identical traces" t1 t2

let prop_allreduce_sum_matches_spec =
  QCheck.Test.make ~name:"allreduce sum over random contributions" ~count:50
    QCheck.(pair (int_range 1 8) (small_list small_int))
    (fun (np, extra) ->
      let contributions = Array.init np (fun i -> i + List.length extra) in
      let expected = Array.fold_left ( + ) 0 contributions in
      let results = Array.make np 0 in
      let _, outcome =
        exec ~np (fun rt rank ->
            let world = Runtime.comm_world rt in
            let r =
              Runtime.allreduce rt ~op:Types.Sum world
                (Payload.int contributions.(rank))
            in
            results.(rank) <- Payload.to_int r)
      in
      (match outcome with Coroutine.All_finished -> () | _ -> failwith "bad");
      Array.for_all (fun v -> v = expected) results)

(* ---- Execution trace ---- *)

let test_trace_events () =
  let rt = Runtime.create ~trace:true ~np:2 () in
  Runtime.spawn_ranks rt (fun rank ->
      let world = Runtime.comm_world rt in
      if rank = 0 then Runtime.send rt ~tag:5 ~dest:1 world (Payload.int 1)
      else ignore (Runtime.recv rt ~src:0 world);
      Runtime.barrier rt world);
  (match Runtime.run rt with
  | Coroutine.All_finished -> ()
  | _ -> Alcotest.fail "expected completion");
  let events = Runtime.trace rt in
  let has p = List.exists p events in
  Alcotest.(check bool) "send recorded" true
    (has (function Runtime.Ev_send { tag = 5; _ } -> true | _ -> false));
  Alcotest.(check bool) "match recorded" true
    (has (function
      | Runtime.Ev_match { src = 0; dst = 1; _ } -> true
      | _ -> false));
  Alcotest.(check bool) "collective recorded" true
    (has (function
      | Runtime.Ev_collective { name = "barrier"; _ } -> true
      | _ -> false))

let test_trace_off_by_default () =
  let rt, outcome =
    exec ~np:2 (fun rt rank ->
        let world = Runtime.comm_world rt in
        if rank = 0 then Runtime.send rt ~dest:1 world Payload.Unit
        else ignore (Runtime.recv rt ~src:0 world))
  in
  check_finished outcome;
  Alcotest.(check int) "no events" 0 (List.length (Runtime.trace rt))

(* ---- sendrecv / scan ---- *)

let test_sendrecv_ring () =
  let received = Array.make 4 (-1) in
  let _, outcome =
    exec ~np:4 (fun rt rank ->
        let world = Runtime.comm_world rt in
        let right = (rank + 1) mod 4 and left = (rank + 3) mod 4 in
        let v, st =
          Runtime.sendrecv rt ~dest:right ~src:left world (Payload.int rank)
        in
        Alcotest.(check int) "status source" left st.Types.source;
        received.(rank) <- Payload.to_int v)
  in
  check_finished outcome;
  Alcotest.(check (array int)) "ring shift" [| 3; 0; 1; 2 |] received

let test_scan () =
  let results = Array.make 5 0 in
  let _, outcome =
    exec ~np:5 (fun rt rank ->
        let world = Runtime.comm_world rt in
        let r = Runtime.scan rt ~op:Types.Sum world (Payload.int (rank + 1)) in
        results.(rank) <- Payload.to_int r)
  in
  check_finished outcome;
  Alcotest.(check (array int)) "inclusive prefix sums" [| 1; 3; 6; 10; 15 |]
    results

let test_exscan () =
  let results = Array.make 5 (-1) in
  let zeros = ref 0 in
  let _, outcome =
    exec ~np:5 (fun rt rank ->
        let world = Runtime.comm_world rt in
        match Runtime.exscan rt ~op:Types.Sum world (Payload.int (rank + 1)) with
        | Payload.Unit -> incr zeros
        | p -> results.(rank) <- Payload.to_int p)
  in
  check_finished outcome;
  Alcotest.(check int) "rank 0 gets Unit" 1 !zeros;
  Alcotest.(check (array int)) "exclusive prefix sums" [| -1; 1; 3; 6; 10 |]
    results

let test_reduce_scatter_block () =
  let results = Array.make 3 (-1) in
  let _, outcome =
    exec ~np:3 (fun rt rank ->
        let world = Runtime.comm_world rt in
        (* Contribution of rank s to slot r: 10*s + r. *)
        let contribs = Array.init 3 (fun r -> Payload.int ((10 * rank) + r)) in
        let mine =
          Runtime.reduce_scatter_block rt ~op:Types.Sum world contribs
        in
        results.(rank) <- Payload.to_int mine)
  in
  check_finished outcome;
  (* Slot r = sum over s of (10 s + r) = 30 + 3r. *)
  Alcotest.(check (array int)) "slotwise reductions" [| 30; 33; 36 |] results

let () =
  Alcotest.run "mpi"
    [
      ( "point-to-point",
        [
          Alcotest.test_case "ping pong" `Quick test_ping_pong;
          Alcotest.test_case "tag matching" `Quick test_tag_matching;
          Alcotest.test_case "non-overtaking fifo" `Quick test_non_overtaking;
          Alcotest.test_case "wildcard, two senders" `Quick
            test_wildcard_two_senders;
          Alcotest.test_case "isend + waitall" `Quick test_isend_wait;
          Alcotest.test_case "ssend blocks until matched" `Quick
            test_ssend_blocks_until_matched;
          Alcotest.test_case "waitany" `Quick test_waitany;
          Alcotest.test_case "probe" `Quick test_probe;
          Alcotest.test_case "iprobe can miss" `Quick test_iprobe_miss;
        ] );
      ( "errors",
        [
          Alcotest.test_case "wait on foreign request" `Quick
            test_wait_on_foreign_request;
          Alcotest.test_case "negative tag" `Quick test_negative_tag_rejected;
          Alcotest.test_case "scatter size mismatch" `Quick
            test_scatter_size_mismatch;
          Alcotest.test_case "alltoall size mismatch" `Quick
            test_alltoall_size_mismatch;
          Alcotest.test_case "free world rejected" `Quick
            test_free_world_rejected;
          Alcotest.test_case "double free rejected" `Quick
            test_double_free_rejected;
          Alcotest.test_case "cross-receive deadlock" `Quick
            test_deadlock_cross_recv;
          Alcotest.test_case "collective mismatch" `Quick
            test_collective_mismatch_detected;
          Alcotest.test_case "invalid rank" `Quick test_invalid_rank_detected;
          Alcotest.test_case "use after free" `Quick
            test_use_after_free_detected;
        ] );
      ( "collectives",
        [
          Alcotest.test_case "barrier time sync" `Quick
            test_barrier_synchronizes_time;
          Alcotest.test_case "allreduce sum" `Quick test_allreduce;
          Alcotest.test_case "allreduce max/min" `Quick test_allreduce_max_min;
          Alcotest.test_case "bcast" `Quick test_bcast;
          Alcotest.test_case "reduce root-only" `Quick test_reduce_root_only;
          Alcotest.test_case "gather + scatter" `Quick test_gather_scatter;
          Alcotest.test_case "allgather + alltoall" `Quick
            test_allgather_alltoall;
          QCheck_alcotest.to_alcotest prop_allreduce_sum_matches_spec;
        ] );
      ( "communicators",
        [
          Alcotest.test_case "dup isolates traffic" `Quick
            test_comm_dup_isolates_traffic;
          Alcotest.test_case "split" `Quick test_comm_split;
        ] );
      ( "leaks",
        [
          Alcotest.test_case "comm leak" `Quick test_comm_leak_reported;
          Alcotest.test_case "request leak" `Quick test_request_leak_reported;
          Alcotest.test_case "no false positives" `Quick test_no_false_leaks;
        ] );
      ( "stats",
        [ Alcotest.test_case "census" `Quick test_stats_census ] );
      ( "trace",
        [
          Alcotest.test_case "events recorded" `Quick test_trace_events;
          Alcotest.test_case "off by default" `Quick test_trace_off_by_default;
        ] );
      ( "sendrecv-scan",
        [
          Alcotest.test_case "sendrecv ring" `Quick test_sendrecv_ring;
          Alcotest.test_case "scan prefix sums" `Quick test_scan;
          Alcotest.test_case "exscan" `Quick test_exscan;
          Alcotest.test_case "reduce_scatter_block" `Quick
            test_reduce_scatter_block;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "identical replays" `Quick
            test_deterministic_replay;
        ] );
    ]
