(* Property tests for payloads and reduction operators — the value algebra
   collectives compute over. *)

module Payload = Mpi.Payload
module Types = Mpi.Types

let gen_scalar =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> Payload.Int n) (int_range (-1000) 1000);
        map (fun f -> Payload.Float (float_of_int f /. 8.0)) (int_range (-800) 800);
      ])

(* Shallow random payloads: scalars, pairs, small int arrays. *)
let gen_payload =
  QCheck.Gen.(
    oneof
      [
        gen_scalar;
        map2 (fun a b -> Payload.Pair (a, b)) gen_scalar gen_scalar;
        map
          (fun l -> Payload.Arr (Array.of_list (List.map (fun n -> Payload.Int n) l)))
          (list_size (int_range 1 5) (int_range (-100) 100));
        map (fun s -> Payload.Str s) (string_size (int_range 0 12));
        return Payload.Unit;
      ])

let payload = QCheck.make ~print:(Format.asprintf "%a" Payload.pp) gen_payload

let int_arr =
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map string_of_int l))
    QCheck.Gen.(list_size (int_range 1 6) (int_range (-100) 100))

let arr_of l = Payload.Arr (Array.of_list (List.map (fun n -> Payload.Int n) l))

let prop_equal_reflexive =
  QCheck.Test.make ~name:"equal is reflexive" ~count:300 payload (fun p ->
      Payload.equal p p)

let prop_size_nonneg =
  QCheck.Test.make ~name:"size_bytes >= 0" ~count:300 payload (fun p ->
      Payload.size_bytes p >= 0)

let prop_pair_size_additive =
  QCheck.Test.make ~name:"pair size is additive" ~count:300
    (QCheck.pair payload payload)
    (fun (a, b) ->
      Payload.size_bytes (Payload.Pair (a, b))
      = Payload.size_bytes a + Payload.size_bytes b)

(* Reduction laws on same-length int arrays (the shapes collectives use). *)
let combine_ints op a b =
  match Payload.combine op (arr_of a) (arr_of b) with
  | Payload.Arr r -> Array.to_list (Array.map Payload.to_int r)
  | _ -> assert false

let same_len (a, b) =
  let n = min (List.length a) (List.length b) in
  let take l = List.filteri (fun i _ -> i < n) l in
  (take a, take b)

let prop_sum_commutative =
  QCheck.Test.make ~name:"sum commutes" ~count:300 (QCheck.pair int_arr int_arr)
    (fun p ->
      let a, b = same_len p in
      a = [] || combine_ints Types.Sum a b = combine_ints Types.Sum b a)

let prop_max_associative =
  QCheck.Test.make ~name:"max associates" ~count:300
    (QCheck.triple int_arr int_arr int_arr)
    (fun (a, b, c) ->
      let n = min (List.length a) (min (List.length b) (List.length c)) in
      let take l = List.filteri (fun i _ -> i < n) l in
      let a = take a and b = take b and c = take c in
      a = []
      || combine_ints Types.Max (combine_ints Types.Max a b) c
         = combine_ints Types.Max a (combine_ints Types.Max b c))

let prop_max_idempotent =
  QCheck.Test.make ~name:"max idempotent" ~count:300 int_arr (fun a ->
      combine_ints Types.Max a a = a)

let prop_min_le_max =
  QCheck.Test.make ~name:"min <= max pointwise" ~count:300
    (QCheck.pair int_arr int_arr)
    (fun p ->
      let a, b = same_len p in
      a = []
      || List.for_all2 ( <= )
           (combine_ints Types.Min a b)
           (combine_ints Types.Max a b))

let prop_logical_ops_boolean =
  QCheck.Test.make ~name:"land/lor produce 0/1" ~count:300
    (QCheck.pair int_arr int_arr)
    (fun p ->
      let a, b = same_len p in
      a = []
      || List.for_all
           (fun v -> v = 0 || v = 1)
           (combine_ints Types.Land a b @ combine_ints Types.Lor a b))

let test_combine_length_mismatch () =
  Alcotest.check_raises "length mismatch rejected"
    (Types.Mpi_error "Payload.combine: array length mismatch (2 vs 3)")
    (fun () -> ignore (Payload.combine Types.Sum (arr_of [ 1; 2 ]) (arr_of [ 1; 2; 3 ])))

let test_numeric_promotion () =
  match Payload.combine Types.Sum (Payload.Int 1) (Payload.Float 2.5) with
  | Payload.Float f -> Alcotest.(check (float 1e-9)) "int+float promotes" 3.5 f
  | _ -> Alcotest.fail "expected float"

let test_destructor_errors () =
  Alcotest.(check bool) "to_int rejects strings" true
    (try
       ignore (Payload.to_int (Payload.Str "x"));
       false
     with Types.Mpi_error _ -> true);
  Alcotest.(check bool) "to_arr rejects scalars" true
    (try
       ignore (Payload.to_arr (Payload.Int 1));
       false
     with Types.Mpi_error _ -> true)

let () =
  Alcotest.run "payload"
    [
      ( "structure",
        [
          QCheck_alcotest.to_alcotest prop_equal_reflexive;
          QCheck_alcotest.to_alcotest prop_size_nonneg;
          QCheck_alcotest.to_alcotest prop_pair_size_additive;
          Alcotest.test_case "destructor errors" `Quick test_destructor_errors;
        ] );
      ( "reduction-laws",
        [
          QCheck_alcotest.to_alcotest prop_sum_commutative;
          QCheck_alcotest.to_alcotest prop_max_associative;
          QCheck_alcotest.to_alcotest prop_max_idempotent;
          QCheck_alcotest.to_alcotest prop_min_le_max;
          QCheck_alcotest.to_alcotest prop_logical_ops_boolean;
          Alcotest.test_case "length mismatch" `Quick
            test_combine_length_mismatch;
          Alcotest.test_case "numeric promotion" `Quick test_numeric_promotion;
        ] );
    ]
