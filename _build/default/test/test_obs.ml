(* The observability subsystem: metric recording and shard merging
   (including under real domain parallelism), span-tree determinism of
   traced explorations, merged-counter equality between jobs=1 and jobs=4,
   zero-allocation tracing when disabled, and in-replay poisoning. *)

module Metrics = Obs.Metrics
module Trace = Obs.Trace
module Explorer = Dampi.Explorer
module Report = Dampi.Report

(* ---- histogram bucketing ---- *)

let test_histogram_bucketing () =
  let m = Metrics.create ~shards:1 () in
  let sh = Metrics.shard m 0 in
  let h = Metrics.histogram sh ~bounds:[| 1.0; 10.0; 100.0 |] "h" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 5.0; 10.0; 99.0; 100.5; 1e9 ];
  match Metrics.find (Metrics.snapshot m) "h" with
  | Some (Metrics.Histogram v) ->
      Alcotest.(check (array int)) "bucket counts (le 1, 10, 100, +inf)"
        [| 2; 2; 1; 2 |] v.Metrics.counts;
      Alcotest.(check int) "count" 7 v.Metrics.count;
      Alcotest.(check (float 1e-6)) "max" 1e9 v.Metrics.max_value;
      Alcotest.(check (float 1e-3)) "sum" 1000000216.0 v.Metrics.sum
  | _ -> Alcotest.fail "histogram not found in snapshot"

(* ---- counters, gauges, and handle idempotence ---- *)

let test_counters_and_gauges () =
  let m = Metrics.create ~shards:2 () in
  let sh0 = Metrics.shard m 0 and sh1 = Metrics.shard m 1 in
  let c = Metrics.counter sh0 "c" in
  Metrics.add c 5;
  (* resolving the same name again must return the same cell *)
  Metrics.incr (Metrics.counter sh0 "c");
  Metrics.add (Metrics.counter sh1 "c") 10;
  Metrics.gauge_set sh0 "g" 3.0;
  Metrics.gauge_set sh1 "g" 7.0;
  let snap = Metrics.snapshot m in
  Alcotest.(check int) "counters sum across shards" 16
    (Metrics.counter_value snap "c");
  (match Metrics.find snap "g" with
  | Some (Metrics.Gauge g) ->
      Alcotest.(check (float 1e-9)) "gauges merge by max" 7.0 g
  | _ -> Alcotest.fail "gauge not found");
  Alcotest.(check int) "absent counter reads 0" 0
    (Metrics.counter_value snap "nope")

(* ---- shard merging under real domains ---- *)

let test_domain_shard_merge () =
  let m = Metrics.create ~shards:4 () in
  let worker i () =
    let sh = Metrics.shard m i in
    let c = Metrics.counter sh "hits" in
    let h = Metrics.histogram sh ~bounds:Metrics.count_bounds "depth" in
    for k = 1 to 10_000 do
      Metrics.incr c;
      Metrics.observe h (float_of_int (k mod 7))
    done
  in
  let domains = List.init 4 (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join domains;
  let snap = Metrics.snapshot m in
  Alcotest.(check int) "4 x 10k increments merge to 40k" 40_000
    (Metrics.counter_value snap "hits");
  (match Metrics.find snap "depth" with
  | Some (Metrics.Histogram v) ->
      Alcotest.(check int) "histogram observations all merged" 40_000
        v.Metrics.count
  | _ -> Alcotest.fail "histogram not found");
  (* merging the per-shard snapshots by hand equals the registry merge *)
  let by_hand =
    Metrics.merge (List.init 4 (Metrics.shard_snapshot m))
  in
  Alcotest.(check bool) "merge of shard snapshots = snapshot" true
    (by_hand = snap)

(* ---- traced exploration: span-tree determinism ---- *)

let traced_report () =
  Explorer.verify
    ~config:{ Explorer.default_config with trace = true }
    ~np:3 Workloads.Patterns.fig3

let test_span_forest_deterministic () =
  let f1 = Trace.span_forest (traced_report ()).Report.events in
  let f2 = Trace.span_forest (traced_report ()).Report.events in
  Alcotest.(check bool)
    "two traced jobs=1 runs have identical span forests" true (f1 = f2);
  match f1 with
  | [ root ] ->
      Alcotest.(check string) "root span" "explore" root.Trace.t_name;
      let names =
        List.sort_uniq compare
          (List.map (fun t -> t.Trace.t_name) root.Trace.t_children)
      in
      Alcotest.(check (list string))
        "children are the self run and the replays" [ "replay"; "self-run" ]
        names
  | _ -> Alcotest.fail "expected exactly one root span"

(* ---- jobs=1 vs jobs=4: merged counters agree on run-set series ---- *)

let test_parallel_metrics_equal () =
  let run jobs =
    let program =
      Workloads.Matmult.program
        ~params:
          { Workloads.Matmult.default_params with n = 8; rows_per_task = 2 }
        ()
    in
    (Explorer.verify
       ~config:{ Explorer.default_config with jobs }
       ~np:5 program)
      .Report.metrics
  in
  let s1 = run 1 and s4 = run 4 in
  List.iter
    (fun name ->
      Alcotest.(check int)
        (name ^ " equal at jobs=1 and jobs=4")
        (Metrics.counter_value s1 name)
        (Metrics.counter_value s4 name))
    [
      "mpi.match_attempts";
      "dampi.piggyback_bytes";
      "dampi.piggyback_msgs";
      "dampi.epochs_recorded";
      "explorer.replays";
    ];
  Alcotest.(check bool) "replays counted" true
    (Metrics.counter_value s1 "explorer.replays" > 0)

(* ---- trace:false runtimes record nothing ---- *)

let test_untraced_runtime_empty () =
  let rt = Mpi.Runtime.create ~np:3 () in
  let module B = Mpi.Bind.Make (struct
    let rt = rt
  end) in
  let module P = (val Workloads.Patterns.fig3) in
  let module Prog = P (B) in
  Mpi.Runtime.spawn_ranks rt (fun _ -> Prog.main ());
  ignore (Mpi.Runtime.run rt);
  Alcotest.(check int) "no events recorded with trace:false" 0
    (List.length (Mpi.Runtime.trace rt))

(* ---- in-replay poisoning ---- *)

let test_poison_cancels_run () =
  let config = Explorer.default_config in
  let runner = Explorer.dampi_runner config ~np:3 Workloads.Patterns.fig3 in
  let ctx =
    { Explorer.null_ctx with Explorer.poison = Some (fun () -> true) }
  in
  let record = runner ~ctx (Dampi.Decisions.empty ~np:3) ~fork_index:(-1) in
  Alcotest.(check bool) "record marked cancelled" true
    record.Report.cancelled;
  Alcotest.(check int) "no epochs from a cancelled run" 0
    (List.length record.Report.new_epochs);
  Alcotest.(check int) "no errors from a cancelled run" 0
    (List.length record.Report.run_errors);
  (* un-poisoned, the same runner completes normally *)
  let clean =
    runner ~ctx:Explorer.null_ctx (Dampi.Decisions.empty ~np:3)
      ~fork_index:(-1)
  in
  Alcotest.(check bool) "unpoisoned run is not cancelled" false
    clean.Report.cancelled

(* ---- stop-first populates the cancellation series at jobs>1 ---- *)

let test_stop_first_counts_cancellations () =
  let report =
    Explorer.verify
      ~config:
        { Explorer.default_config with stop_on_first_error = true; jobs = 4 }
      ~np:5
      (Workloads.Matmult.program
         ~params:
           { Workloads.Matmult.default_params with n = 8; rows_per_task = 2 }
         ())
  in
  (* matmult is clean: nothing to stop on, nothing cancelled *)
  Alcotest.(check int) "no cancellations without findings" 0
    report.Report.runs_cancelled;
  let report_err =
    Explorer.verify
      ~config:
        { Explorer.default_config with stop_on_first_error = true; jobs = 2 }
      ~np:3 Workloads.Patterns.fig3
  in
  Alcotest.(check bool) "finding still reported under stop-first" true
    (report_err.Report.findings <> [])

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "histogram bucketing" `Quick
            test_histogram_bucketing;
          Alcotest.test_case "counters and gauges" `Quick
            test_counters_and_gauges;
          Alcotest.test_case "4-domain shard merge" `Quick
            test_domain_shard_merge;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "span-forest determinism" `Quick
            test_span_forest_deterministic;
          Alcotest.test_case "trace:false records nothing" `Quick
            test_untraced_runtime_empty;
        ] );
      ( "integration",
        [
          Alcotest.test_case "jobs=1 = jobs=4 merged counters" `Quick
            test_parallel_metrics_equal;
          Alcotest.test_case "poison cancels a replay" `Quick
            test_poison_cancels_run;
          Alcotest.test_case "stop-first cancellation counters" `Quick
            test_stop_first_counts_cancellations;
        ] );
    ]
