test/test_obs.ml: Alcotest Dampi Domain List Mpi Obs Workloads
