test/test_clocks.ml: Alcotest Array Clocks List QCheck QCheck_alcotest
