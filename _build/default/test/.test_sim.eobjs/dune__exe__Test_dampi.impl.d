test/test_dampi.ml: Alcotest Clocks Dampi Fun List Mpi Printf Workloads
