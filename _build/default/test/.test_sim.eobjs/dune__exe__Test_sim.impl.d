test/test_sim.ml: Alcotest Array List Printf QCheck QCheck_alcotest Sim
