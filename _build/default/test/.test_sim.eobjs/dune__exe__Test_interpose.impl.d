test/test_interpose.ml: Alcotest Array Clocks Dampi List Mpi Printf QCheck QCheck_alcotest Sim
