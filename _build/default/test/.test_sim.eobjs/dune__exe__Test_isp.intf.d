test/test_isp.mli:
