test/test_explorer_parallel.mli:
