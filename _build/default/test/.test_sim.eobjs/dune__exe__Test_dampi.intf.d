test/test_dampi.mli:
