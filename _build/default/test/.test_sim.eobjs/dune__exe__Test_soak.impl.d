test/test_soak.ml: Alcotest Array Clocks Dampi Fun List Mpi Printf QCheck QCheck_alcotest Sim Workloads
