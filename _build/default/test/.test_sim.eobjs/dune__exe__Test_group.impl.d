test/test_group.ml: Alcotest Array Dampi Fun List Mpi Printexc Printf QCheck QCheck_alcotest Sim
