test/test_workloads.ml: Alcotest Dampi Isp List Mpi Printexc Printf Sim String Workloads
