test/test_matching.ml: Alcotest Hashtbl List Mpi Option QCheck QCheck_alcotest
