test/test_isp.ml: Alcotest Dampi Isp List Printf Sim Workloads
