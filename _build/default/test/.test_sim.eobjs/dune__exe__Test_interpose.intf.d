test/test_interpose.mli:
