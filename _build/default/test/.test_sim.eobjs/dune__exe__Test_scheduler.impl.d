test/test_scheduler.ml: Alcotest Atomic Dampi Fun List Printf
