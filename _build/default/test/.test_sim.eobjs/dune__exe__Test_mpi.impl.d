test/test_mpi.ml: Alcotest Array List Mpi Printexc Printf QCheck QCheck_alcotest Sim String
