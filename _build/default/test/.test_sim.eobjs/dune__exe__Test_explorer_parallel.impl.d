test/test_explorer_parallel.ml: Alcotest Clocks Dampi Format List Mpi Printf Workloads
