test/test_payload.ml: Alcotest Array Format List Mpi QCheck QCheck_alcotest String
