(* Tests for the evaluation workloads: they must run to completion natively,
   behave correctly, and expose exactly the properties the experiments rely
   on (op mix, wildcard counts, leaks, non-determinism). *)

module Runtime = Mpi.Runtime
module Stats = Mpi.Stats
module Coroutine = Sim.Coroutine
module Explorer = Dampi.Explorer
module Report = Dampi.Report

let check_finished name (outcome : Coroutine.outcome) =
  match outcome with
  | Coroutine.All_finished -> ()
  | Coroutine.Deadlock blocked ->
      Alcotest.failf "%s deadlocked: %s" name
        (String.concat ", "
           (List.map
              (fun (b : Coroutine.blocked_info) ->
                Printf.sprintf "%d:%s" b.pid b.reason)
              blocked))
  | Coroutine.Crashed (pid, exn, _) ->
      Alcotest.failf "%s: rank %d crashed: %s" name pid (Printexc.to_string exn)

let run_native ?cost ~np program =
  let rt, outcome = Mpi.Bind.exec ?cost ~np program in
  (rt, outcome)

(* ---- matmult ---- *)

let test_matmult_native () =
  (* The master validates C against the expected product: completion with
     no crash is the correctness check. *)
  List.iter
    (fun np ->
      let _, outcome = run_native ~np (Workloads.Matmult.program ()) in
      check_finished (Printf.sprintf "matmult np=%d" np) outcome)
    [ 2; 3; 5; 8 ]

let test_matmult_verified_clean () =
  let report =
    Explorer.verify
      ~config:{ Explorer.default_config with max_runs = 200 }
      ~np:3 (Workloads.Matmult.program ())
  in
  Alcotest.(check int) "no findings" 0 (List.length report.Report.findings);
  Alcotest.(check bool)
    (Printf.sprintf "explores interleavings (got %d)" report.Report.interleavings)
    true
    (report.Report.interleavings > 1);
  Alcotest.(check bool) "wildcards analyzed" true
    (report.Report.wildcards_analyzed > 0)

(* ---- mini-ADLB ---- *)

let test_adlb_native_single_server () =
  List.iter
    (fun np ->
      let _, outcome = run_native ~np (Workloads.Adlb.program ()) in
      check_finished (Printf.sprintf "adlb np=%d" np) outcome)
    [ 2; 4; 8 ]

let test_adlb_native_multi_server () =
  let params = { Workloads.Adlb.default_params with servers = 3 } in
  List.iter
    (fun np ->
      let _, outcome = run_native ~np (Workloads.Adlb.program ~params ()) in
      check_finished (Printf.sprintf "adlb-multi np=%d" np) outcome)
    [ 6; 9; 12 ]

let test_adlb_wildcard_heavy () =
  (* Every server receive and every client reply is a wildcard: the
     wildcard count must exceed the total item count. *)
  let rt, outcome = run_native ~np:6 (Workloads.Adlb.program ()) in
  check_finished "adlb" outcome;
  Alcotest.(check bool) "wildcards dominate" true
    (Runtime.wildcard_count rt > 5 * Workloads.Adlb.default_params.puts_per_client)

let test_adlb_verified () =
  let report =
    Explorer.verify
      ~config:
        {
          Explorer.default_config with
          state_config = Dampi.State.make_config ~mixing_bound:0 ();
          max_runs = 500;
        }
      ~np:4 (Workloads.Adlb.program ())
  in
  Alcotest.(check int) "no errors in mini-ADLB" 0
    (List.length
       (List.filter
          (fun (f : Report.finding) ->
            match f.Report.error with
            | Report.Deadlock _ | Report.Crash _ | Report.Comm_leak _
            | Report.Request_leak _ ->
                true
            | _ -> false)
          report.Report.findings));
  Alcotest.(check bool)
    (Printf.sprintf "explores (got %d)" report.Report.interleavings)
    true
    (report.Report.interleavings > 1)

(* ---- ParMETIS skeleton ---- *)

let small_parmetis =
  { Workloads.Parmetis.default_params with scale = 0.01 }

let test_parmetis_native_deterministic () =
  let rt, outcome =
    run_native ~np:8 (Workloads.Parmetis.program ~params:small_parmetis ())
  in
  check_finished "parmetis" outcome;
  Alcotest.(check int) "fully deterministic (no wildcards)" 0
    (Runtime.wildcard_count rt)

let test_parmetis_op_mix () =
  (* At scale 1.0 and np = 8, per-process counts must approximate Table I:
     15.1K send-recv, 2.5K collective, 5.9K wait (within 15%). *)
  let rt, outcome = run_native ~np:8 (Workloads.Parmetis.program ()) in
  check_finished "parmetis-full" outcome;
  let stats = Runtime.stats rt in
  let within pct target actual =
    let f = float_of_int actual in
    f >= target *. (1.0 -. pct) && f <= target *. (1.0 +. pct)
  in
  let sr = Stats.total_send_recv stats / 8 in
  let co = Stats.total_collective stats / 8 in
  let wa = Stats.total_wait stats / 8 in
  Alcotest.(check bool)
    (Printf.sprintf "send-recv/proc ~ 15125 (got %d)" sr)
    true (within 0.15 15125.0 sr);
  Alcotest.(check bool)
    (Printf.sprintf "collective/proc ~ 2500 (got %d)" co)
    true (within 0.15 2500.0 co);
  Alcotest.(check bool)
    (Printf.sprintf "wait/proc ~ 5875 (got %d)" wa)
    true (within 0.15 5875.0 wa)

let test_parmetis_comm_leak () =
  (* Table II: ParMETIS leaks a communicator; the verifier must report it
     on every rank, and nothing else. *)
  let report =
    Explorer.verify
      ~config:{ Explorer.default_config with max_runs = 2 }
      ~np:4
      (Workloads.Parmetis.program ~params:small_parmetis ())
  in
  let comm_leaks =
    List.filter
      (fun (f : Report.finding) ->
        match f.Report.error with Report.Comm_leak _ -> true | _ -> false)
      report.Report.findings
  in
  Alcotest.(check int) "one leak finding per rank" 4 (List.length comm_leaks);
  Alcotest.(check int) "exactly one interleaving (deterministic)" 1
    report.Report.interleavings

let test_parmetis_interpolation () =
  (* Calibration points reproduce Table I exactly; midpoints are monotone. *)
  let a8, c8, w8 = Workloads.Parmetis.targets ~np:8 ~scale:1.0 in
  Alcotest.(check (float 1.0)) "A(8)" 15125.0 a8;
  Alcotest.(check (float 1.0)) "C(8)" 2500.0 c8;
  Alcotest.(check (float 1.0)) "W(8)" 5875.0 w8;
  let a16, c16, _ = Workloads.Parmetis.targets ~np:16 ~scale:1.0 in
  Alcotest.(check (float 1.0)) "A(16)" 23812.0 a16;
  let a12, c12, _ = Workloads.Parmetis.targets ~np:12 ~scale:1.0 in
  Alcotest.(check bool) "A monotone" true (a8 < a12 && a12 < a16);
  Alcotest.(check bool) "C decreasing trend" true (c8 > c12 && c12 > c16)

(* ---- NAS / SpecMPI skeletons ---- *)

let shrink shape =
  (* Smaller rounds for unit tests; behaviour (leaks, wildcards) intact. *)
  { shape with Workloads.Skeleton.rounds = min shape.Workloads.Skeleton.rounds 6 }

let test_nas_all_native () =
  List.iter
    (fun shape ->
      let _, outcome =
        run_native ~np:8 (Workloads.Skeleton.program (shrink shape))
      in
      check_finished shape.Workloads.Skeleton.name outcome)
    Workloads.Nas.all

let test_specmpi_all_native () =
  List.iter
    (fun shape ->
      let _, outcome =
        run_native ~np:8 (Workloads.Skeleton.program (shrink shape))
      in
      check_finished shape.Workloads.Skeleton.name outcome)
    Workloads.Specmpi.all

let test_skeleton_wildcard_accounting () =
  let shape =
    { Workloads.Skeleton.base with rounds = 8; degree = 2; wildcard_every = 2 }
  in
  let rt, outcome = run_native ~np:6 (Workloads.Skeleton.program shape) in
  check_finished "skeleton" outcome;
  Alcotest.(check int) "wildcards posted = predicted"
    (Workloads.Skeleton.wildcard_total shape ~np:6)
    (Runtime.wildcard_count rt)

let test_skeleton_solo_wildcards () =
  let shape = { Workloads.Skeleton.base with rounds = 2; solo_wildcards = 5 } in
  let rt, outcome = run_native ~np:4 (Workloads.Skeleton.program shape) in
  check_finished "skeleton-solo" outcome;
  Alcotest.(check int) "solo wildcards counted" 20 (Runtime.wildcard_count rt)

let test_skeleton_leak_flags () =
  let leaky =
    {
      Workloads.Skeleton.base with
      rounds = 2;
      leak_comm = true;
      leak_request = true;
    }
  in
  let report =
    Explorer.verify
      ~config:{ Explorer.default_config with max_runs = 1 }
      ~np:4
      (Workloads.Skeleton.program leaky)
  in
  let kinds =
    List.map
      (fun (f : Report.finding) ->
        match f.Report.error with
        | Report.Comm_leak _ -> "comm"
        | Report.Request_leak _ -> "req"
        | _ -> "other")
      report.Report.findings
  in
  Alcotest.(check bool) "comm leak reported" true (List.mem "comm" kinds);
  Alcotest.(check bool) "request leak reported" true (List.mem "req" kinds)

let test_nas_leak_columns_match_table2 () =
  (* Exactly BT and FT (among NAS) set leak_comm; none set leak_request. *)
  List.iter
    (fun shape ->
      let expected =
        List.mem shape.Workloads.Skeleton.name [ "BT"; "FT" ]
      in
      Alcotest.(check bool)
        (shape.Workloads.Skeleton.name ^ " C-leak column")
        expected shape.Workloads.Skeleton.leak_comm;
      Alcotest.(check bool)
        (shape.Workloads.Skeleton.name ^ " R-leak column")
        false shape.Workloads.Skeleton.leak_request)
    Workloads.Nas.all

(* ---- sample sort ---- *)

let test_samplesort_native () =
  List.iter
    (fun np ->
      let _, outcome = run_native ~np (Workloads.Samplesort.program ()) in
      check_finished (Printf.sprintf "samplesort np=%d" np) outcome)
    [ 1; 2; 4; 7; 8 ]

let test_samplesort_verified () =
  let report =
    Explorer.verify
      ~config:{ Explorer.default_config with max_runs = 10 }
      ~np:4 (Workloads.Samplesort.program ())
  in
  Alcotest.(check int) "deterministic: one interleaving" 1
    report.Report.interleavings;
  Alcotest.(check int) "no findings" 0 (List.length report.Report.findings)

let test_samplesort_seeds () =
  (* Different key distributions still sort. *)
  List.iter
    (fun seed ->
      let params = { Workloads.Samplesort.default_params with seed } in
      let _, outcome =
        run_native ~np:5 (Workloads.Samplesort.program ~params ())
      in
      check_finished (Printf.sprintf "samplesort seed=%d" seed) outcome)
    [ 0; 1; 7; 123; 99991 ]

(* ---- paper patterns (packaged versions) ---- *)

let test_patterns_fig3 () =
  let report =
    Explorer.verify ~config:Explorer.default_config ~np:3 Workloads.Patterns.fig3
  in
  Alcotest.(check bool) "bug found" true
    (List.exists
       (fun (f : Report.finding) ->
         match f.Report.error with Report.Crash _ -> true | _ -> false)
       report.Report.findings)

let test_patterns_head_to_head () =
  let report =
    Explorer.verify ~config:Explorer.default_config ~np:2
      Workloads.Patterns.head_to_head
  in
  Alcotest.(check bool) "deadlock found" true
    (List.exists
       (fun (f : Report.finding) ->
         match f.Report.error with Report.Deadlock _ -> true | _ -> false)
       report.Report.findings)

(* ---- ISP engine over workloads ---- *)

let test_isp_costs_exceed_dampi () =
  (* Same coverage, higher virtual cost: the architectural claim. *)
  let program = Workloads.Parmetis.program ~params:small_parmetis () in
  let dampi_report =
    Explorer.verify
      ~config:{ Explorer.default_config with max_runs = 1 }
      ~np:8 program
  in
  let isp_report =
    Isp.Engine.verify
      ~config:{ Isp.Engine.default_config with max_runs = 1 }
      ~np:8 program
  in
  Alcotest.(check bool)
    (Printf.sprintf "ISP slower (%f vs %f)"
       isp_report.Report.first_run_makespan dampi_report.Report.first_run_makespan)
    true
    (isp_report.Report.first_run_makespan
    > dampi_report.Report.first_run_makespan)

let test_isp_scaling_shape () =
  (* ISP's overhead ratio to native grows with np (the Fig. 5 hockey
     stick); DAMPI's stays near-flat. *)
  let params = { Workloads.Parmetis.default_params with scale = 0.02 } in
  let ratio np =
    let program = Workloads.Parmetis.program ~params () in
    let native = Explorer.native_makespan ~np program in
    let isp = Isp.Engine.single_run_makespan ~np program in
    isp /. native
  in
  let r4 = ratio 4 and r16 = ratio 16 in
  Alcotest.(check bool)
    (Printf.sprintf "ISP ratio grows: %f (np=4) < %f (np=16)" r4 r16)
    true (r4 < r16)

let () =
  Alcotest.run "workloads"
    [
      ( "matmult",
        [
          Alcotest.test_case "native runs and validates" `Quick
            test_matmult_native;
          Alcotest.test_case "verifies clean, explores" `Quick
            test_matmult_verified_clean;
        ] );
      ( "adlb",
        [
          Alcotest.test_case "single server terminates" `Quick
            test_adlb_native_single_server;
          Alcotest.test_case "multi server + stealing terminates" `Quick
            test_adlb_native_multi_server;
          Alcotest.test_case "wildcard heavy" `Quick test_adlb_wildcard_heavy;
          Alcotest.test_case "verifies clean under k=0" `Quick
            test_adlb_verified;
        ] );
      ( "parmetis",
        [
          Alcotest.test_case "deterministic" `Quick
            test_parmetis_native_deterministic;
          Alcotest.test_case "op mix matches Table I at np=8" `Slow
            test_parmetis_op_mix;
          Alcotest.test_case "communicator leak reported" `Quick
            test_parmetis_comm_leak;
          Alcotest.test_case "Table I interpolation" `Quick
            test_parmetis_interpolation;
        ] );
      ( "skeletons",
        [
          Alcotest.test_case "all NAS shapes run" `Quick test_nas_all_native;
          Alcotest.test_case "all SpecMPI shapes run" `Quick
            test_specmpi_all_native;
          Alcotest.test_case "wildcard accounting" `Quick
            test_skeleton_wildcard_accounting;
          Alcotest.test_case "solo wildcards" `Quick
            test_skeleton_solo_wildcards;
          Alcotest.test_case "leak flags surface" `Quick
            test_skeleton_leak_flags;
          Alcotest.test_case "NAS leak columns match Table II" `Quick
            test_nas_leak_columns_match_table2;
        ] );
      ( "samplesort",
        [
          Alcotest.test_case "sorts at several np" `Quick
            test_samplesort_native;
          Alcotest.test_case "verifies clean" `Quick test_samplesort_verified;
          Alcotest.test_case "random seeds" `Quick test_samplesort_seeds;
        ] );
      ( "patterns",
        [
          Alcotest.test_case "fig3 bug" `Quick test_patterns_fig3;
          Alcotest.test_case "head-to-head deadlock" `Quick
            test_patterns_head_to_head;
        ] );
      ( "isp",
        [
          Alcotest.test_case "ISP costs exceed DAMPI" `Quick
            test_isp_costs_exceed_dampi;
          Alcotest.test_case "ISP overhead grows with np" `Quick
            test_isp_scaling_shape;
        ] );
    ]
