(* Tests for the DAMPI verifier: the paper's illustrative patterns (Figs. 3,
   4, 10), guided replay, coverage guarantees, bounding heuristics, and the
   error checks of Table II. *)

module Explorer = Dampi.Explorer
module Report = Dampi.Report
module State = Dampi.State
module Epoch = Dampi.Epoch
module Decisions = Dampi.Decisions
module Payload = Mpi.Payload
module Types = Mpi.Types

let lamport = (module Clocks.Lamport : Clocks.Clock_intf.S)
let vector = (module Clocks.Vector : Clocks.Clock_intf.S)

let config ?(clock = lamport) ?mixing_bound ?(max_runs = 10_000) () =
  {
    Explorer.default_config with
    state_config = State.make_config ~clock ?mixing_bound ();
    max_runs;
  }

let crashes report =
  List.filter
    (fun (f : Report.finding) ->
      match f.Report.error with Report.Crash _ -> true | _ -> false)
    report.Report.findings

let deadlocks report =
  List.filter
    (fun (f : Report.finding) ->
      match f.Report.error with Report.Deadlock _ -> true | _ -> false)
    report.Report.findings

let monitor_alerts report =
  List.filter
    (fun (f : Report.finding) ->
      match f.Report.error with Report.Monitor_alert _ -> true | _ -> false)
    report.Report.findings

(* ---- Fig. 3: the bug that only an alternate match exposes ---- *)

(* P0: Isend(to:1, 22); P1: Irecv(any) -> x, crash if x = 33; P2: Isend(to:1, 33).
   The self run matches P0 (scheduled first); replay forces P2 and exposes
   the crash. *)
module Fig3 (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    match M.rank world with
    | 0 -> M.send ~dest:1 world (Payload.int 22)
    | 1 ->
        let x, _ = M.recv ~src:M.any_source world in
        if Payload.to_int x = 33 then failwith "fig3: x = 33 bug triggered"
    | 2 -> M.send ~dest:1 world (Payload.int 33)
    | _ -> ()
end

let fig3_program = (module Fig3 : Mpi.Mpi_intf.PROGRAM)

let test_fig3_bug_found () =
  let report = Explorer.verify ~config:(config ()) ~np:3 fig3_program in
  Alcotest.(check int) "two interleavings" 2 report.Report.interleavings;
  (match crashes report with
  | [ f ] ->
      Alcotest.(check bool) "found in the replay, not the self run" true
        (f.Report.run_index = 1);
      Alcotest.(check int) "schedule has one forced decision" 1
        (List.length f.Report.schedule)
  | l -> Alcotest.failf "expected exactly one crash finding, got %d" (List.length l));
  Alcotest.(check int) "one wildcard analyzed" 1 report.Report.wildcards_analyzed

(* The same program is clean when only one sender exists: no false alarm. *)
module Fig3_single (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    match M.rank world with
    | 0 -> M.send ~dest:1 world (Payload.int 22)
    | 1 ->
        let x, _ = M.recv ~src:M.any_source world in
        if Payload.to_int x = 33 then failwith "impossible"
    | _ -> ()
end

let test_single_sender_one_interleaving () =
  let report =
    Explorer.verify ~config:(config ())
      ~np:2 (module Fig3_single : Mpi.Mpi_intf.PROGRAM)
  in
  Alcotest.(check int) "one interleaving" 1 report.Report.interleavings;
  Alcotest.(check (list string)) "no findings" []
    (List.map (fun (f : Report.finding) -> Report.error_signature f.Report.error)
       report.Report.findings)

(* ---- Deterministic program: nothing to explore ---- *)

module Deterministic (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    let rank = M.rank world and size = M.size world in
    let next = (rank + 1) mod size and prev = (rank + size - 1) mod size in
    (* Token ring with deterministic receives plus a reduction. *)
    let req = M.irecv ~src:prev world in
    M.send ~dest:next world (Payload.int rank);
    ignore (M.wait req);
    let total = M.allreduce ~op:Types.Sum world (Payload.int rank) in
    assert (Payload.to_int total = size * (size - 1) / 2)
end

let test_deterministic_single_run () =
  let report =
    Explorer.verify ~config:(config ()) ~np:6
      (module Deterministic : Mpi.Mpi_intf.PROGRAM)
  in
  Alcotest.(check int) "one interleaving" 1 report.Report.interleavings;
  Alcotest.(check int) "no wildcards" 0 report.Report.wildcards_analyzed;
  Alcotest.(check int) "no findings" 0 (List.length report.Report.findings)

(* ---- Full coverage of a 3-sender wildcard pattern ---- *)

(* P1 receives three wildcard messages carrying distinct values and records
   the order; every permutation consistent with non-overtaking should be
   reachable, and the verifier must visit the matching orders exhaustively. *)
module Three_senders (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    match M.rank world with
    | 0 ->
        let seen = ref [] in
        for _ = 1 to 3 do
          let v, _ = M.recv ~src:M.any_source world in
          seen := Payload.to_int v :: !seen
        done;
        (* Canary: one specific order is a bug. *)
        if !seen = [ 3; 2; 1 ] then failwith "order 1-2-3 triggers bug"
    | r -> M.send ~dest:0 world (Payload.int r)
end

let test_three_senders_coverage () =
  let report =
    Explorer.verify ~config:(config ()) ~np:4
      (module Three_senders : Mpi.Mpi_intf.PROGRAM)
  in
  (* 3 senders x independent matches: 3! = 6 distinct matching orders; DFS
     visits each at least once. *)
  Alcotest.(check bool)
    (Printf.sprintf "at least 6 interleavings (got %d)" report.Report.interleavings)
    true
    (report.Report.interleavings >= 6);
  Alcotest.(check int) "the buggy order was found" 1 (List.length (crashes report))

(* ---- Fig. 4: Lamport incompleteness vs vector completeness ---- *)

(* The cross-coupled pattern. The canary: P1 crashes iff its wildcard
   receive matches P2's send — the very match that Lamport clocks cannot
   discover (P2's send carries a scalar clock >= P1's epoch) but vector
   clocks can (the send is concurrent with the epoch in the partial
   order, once P2 is forced to match P3 first). *)
module Fig4 (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    match M.rank world with
    | 0 -> M.send ~dest:1 world (Payload.int 0)
    | 1 ->
        let x, _ = M.recv ~src:M.any_source world in
        if Payload.to_int x = 2 then failwith "fig4: P2-to-P1 match reached"
    | 2 ->
        let _ = M.recv ~src:M.any_source world in
        M.send ~dest:1 world (Payload.int 2)
    | 3 -> M.send ~dest:2 world (Payload.int 3)
    | _ -> ()
end

let fig4_program = (module Fig4 : Mpi.Mpi_intf.PROGRAM)

(* P1 sends nothing of its own here: keep the paper's shape by making P1's
   send to P2 implicit in program order (the crash guard stands in for the
   divergent control flow). P2's wildcard still has the P1-vs-P3 choice
   through P0's message being consumed by P1 only. *)
let test_fig4_lamport_incomplete () =
  let report = Explorer.verify ~config:(config ~clock:lamport ()) ~np:4 fig4_program in
  Alcotest.(check int) "lamport never reaches the P2-to-P1 match" 0
    (List.length (crashes report))

let test_fig4_vector_complete () =
  let lam = Explorer.verify ~config:(config ~clock:lamport ()) ~np:4 fig4_program in
  let vec = Explorer.verify ~config:(config ~clock:vector ()) ~np:4 fig4_program in
  Alcotest.(check int) "vector reaches the P2-to-P1 match" 1
    (List.length (crashes vec));
  Alcotest.(check bool)
    (Printf.sprintf "vector explores at least as much (%d vs %d)"
       vec.Report.interleavings lam.Report.interleavings)
    true
    (vec.Report.interleavings >= lam.Report.interleavings)

(* ---- Fig. 10: the limitation pattern and its monitor ---- *)

module Fig10 (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    match M.rank world with
    | 0 ->
        let req = M.isend ~dest:1 world (Payload.int 22) in
        M.barrier world;
        ignore (M.wait req)
    | 1 ->
        let req = M.irecv ~src:M.any_source world in
        M.barrier world;
        let _ = M.wait req in
        let x = Payload.to_int (M.recv_data req) in
        if x = 33 then failwith "fig10: crash"
    | 2 ->
        M.barrier world;
        M.send ~dest:1 world (Payload.int 33)
    | _ -> ()
end

let test_fig10_monitor_alert () =
  let report =
    Explorer.verify ~config:(config ()) ~np:3 (module Fig10 : Mpi.Mpi_intf.PROGRAM)
  in
  (* DAMPI cannot see P2's send as an alternative (its clock was polluted by
     the barrier), so no crash is found — but the monitor flags the
     vulnerable pattern. *)
  Alcotest.(check int) "alternative is missed" 1 report.Report.interleavings;
  Alcotest.(check int) "no crash found" 0 (List.length (crashes report));
  Alcotest.(check bool) "monitor alert raised" true
    (List.length (monitor_alerts report) >= 1)

(* A well-formed variant (wait before barrier) must not alert. *)
module Fig10_clean (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    match M.rank world with
    | 0 -> M.send ~dest:1 world (Payload.int 22)
    | 1 ->
        let req = M.irecv ~src:M.any_source world in
        ignore (M.wait req);
        M.barrier world
    | _ -> M.barrier world

  (* ranks 0 and 1 must also meet the barrier *)
end

let test_fig10_clean_no_alert () =
  let report =
    Explorer.verify ~config:(config ()) ~np:3
      (module Fig10_clean : Mpi.Mpi_intf.PROGRAM)
  in
  Alcotest.(check int) "no monitor alert" 0 (List.length (monitor_alerts report))

(* ---- §V future work: dual Lamport clocks cover the Fig. 10 pattern ---- *)

let dual_config () =
  {
    Explorer.default_config with
    state_config = State.make_config ~dual_clock:true ();
    max_runs = 10_000;
  }

let test_fig10_dual_clock_covers () =
  (* With the lagging transmission clock, P2's post-barrier send carries a
     clock that predates P1's open epoch: the alternate match is discovered
     and the crash exposed — the coverage the baseline algorithm loses. *)
  let report =
    Explorer.verify ~config:(dual_config ()) ~np:3
      (module Fig10 : Mpi.Mpi_intf.PROGRAM)
  in
  Alcotest.(check bool)
    (Printf.sprintf "explores the alternative (got %d runs)"
       report.Report.interleavings)
    true
    (report.Report.interleavings > 1);
  Alcotest.(check int) "fig10 crash found under dual clocks" 1
    (List.length (crashes report))

let test_dual_clock_equivalent_elsewhere () =
  (* On programs without the clock-escape pattern, dual clocks must find
     exactly what the baseline finds. *)
  let base = Explorer.verify ~config:(config ()) ~np:3 fig3_program in
  let dual = Explorer.verify ~config:(dual_config ()) ~np:3 fig3_program in
  Alcotest.(check int) "same interleavings" base.Report.interleavings
    dual.Report.interleavings;
  Alcotest.(check int) "same crash count"
    (List.length (crashes base))
    (List.length (crashes dual))

let test_dual_clock_still_sound () =
  (* The deterministic ring must stay a single quiet interleaving. *)
  let report =
    Explorer.verify ~config:(dual_config ()) ~np:6
      (module Deterministic : Mpi.Mpi_intf.PROGRAM)
  in
  Alcotest.(check int) "one interleaving" 1 report.Report.interleavings;
  Alcotest.(check int) "no findings" 0 (List.length report.Report.findings)

(* ---- Deadlock discovery through alternate matches ---- *)

(* P1: recv(any); recv(from 0). If the wildcard matches P0, the second receive
   starves — a deadlock reachable only under one matching. *)
module Wildcard_deadlock (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    match M.rank world with
    | 0 -> M.send ~dest:1 world (Payload.int 0)
    | 1 ->
        let _ = M.recv ~src:M.any_source world in
        let _ = M.recv ~src:2 world in
        ()
    | 2 -> M.send ~dest:1 world (Payload.int 2)
    | _ -> ()
end

let test_wildcard_deadlock_found () =
  let report =
    Explorer.verify ~config:(config ()) ~np:3
      (module Wildcard_deadlock : Mpi.Mpi_intf.PROGRAM)
  in
  Alcotest.(check int) "two interleavings" 2 report.Report.interleavings;
  Alcotest.(check int) "deadlock found" 1 (List.length (deadlocks report))

(* ---- Resource-leak checks (Table II columns) ---- *)

module Leaky (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    let dup = M.comm_dup world in
    (* Never freed: C-leak on every rank. *)
    ignore dup;
    if M.rank world = 0 then begin
      (* Posted and never completed: R-leak. *)
      ignore (M.irecv ~src:M.any_source world)
    end
end

let test_leaks_reported () =
  let report =
    Explorer.verify ~config:(config ()) ~np:2 (module Leaky : Mpi.Mpi_intf.PROGRAM)
  in
  let leaks =
    List.filter
      (fun (f : Report.finding) ->
        match f.Report.error with
        | Report.Comm_leak _ | Report.Request_leak _ -> true
        | _ -> false)
      report.Report.findings
  in
  Alcotest.(check bool)
    (Printf.sprintf "both leak kinds reported (got %d findings)" (List.length leaks))
    true
    (List.length leaks >= 3)
(* comm leak on each of 2 ranks + request leak on rank 0 *)

(* The tool's own shadow communicators must not be reported. *)
module Clean_comms (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    let dup = M.comm_dup world in
    M.barrier dup;
    M.comm_free dup
end

let test_no_shadow_false_positives () =
  let report =
    Explorer.verify ~config:(config ()) ~np:2
      (module Clean_comms : Mpi.Mpi_intf.PROGRAM)
  in
  Alcotest.(check int) "no findings" 0 (List.length report.Report.findings)

(* ---- Master/worker matmult kernel: exploration counting ---- *)

(* A miniature of the paper's matmult: the master hands out [work] items,
   collecting results through wildcard receives; each completion triggers
   the next send. This is the workload of Figs. 6 and 8. *)
module Mini_master_worker (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let work = 4

  let main () =
    let world = M.comm_world in
    let rank = M.rank world and size = M.size world in
    let workers = size - 1 in
    if rank = 0 then begin
      let sent = ref 0 and received = ref 0 in
      (* Seed every worker. *)
      for w = 1 to workers do
        if !sent < work then begin
          M.send ~dest:w world (Payload.int !sent);
          incr sent
        end
        else M.send ~tag:1 ~dest:w world Payload.Unit
      done;
      while !received < work do
        let _, st = M.recv ~src:M.any_source world in
        incr received;
        if !sent < work then begin
          M.send ~dest:st.Types.source world (Payload.int !sent);
          incr sent
        end
        else M.send ~tag:1 ~dest:st.Types.source world Payload.Unit
      done
    end
    else begin
      let continue_ = ref true in
      while !continue_ do
        let st = M.probe ~src:0 world in
        if st.Types.tag = 1 then begin
          ignore (M.recv ~src:0 ~tag:1 world);
          continue_ := false
        end
        else begin
          let v, _ = M.recv ~src:0 ~tag:0 world in
          M.send ~dest:0 world (Payload.pair (Payload.int (M.rank world)) v)
        end
      done
    end
end

let mini_mw = (module Mini_master_worker : Mpi.Mpi_intf.PROGRAM)

let test_master_worker_explores () =
  let report = Explorer.verify ~config:(config ()) ~np:3 mini_mw in
  Alcotest.(check int) "no errors" 0 (List.length report.Report.findings);
  Alcotest.(check bool)
    (Printf.sprintf "multiple interleavings (got %d)" report.Report.interleavings)
    true
    (report.Report.interleavings > 1)

(* ---- Bounded mixing (§III-B2) ---- *)

let interleavings_with_k k =
  let report = Explorer.verify ~config:(config ?mixing_bound:k ()) ~np:3 mini_mw in
  report.Report.interleavings

let test_bounded_mixing_monotone () =
  let unbounded = interleavings_with_k None in
  let k0 = interleavings_with_k (Some 0) in
  let k1 = interleavings_with_k (Some 1) in
  let k2 = interleavings_with_k (Some 2) in
  Alcotest.(check bool)
    (Printf.sprintf "k=0 (%d) <= k=1 (%d)" k0 k1)
    true (k0 <= k1);
  Alcotest.(check bool)
    (Printf.sprintf "k=1 (%d) <= k=2 (%d)" k1 k2)
    true (k1 <= k2);
  Alcotest.(check bool)
    (Printf.sprintf "k=2 (%d) <= unbounded (%d)" k2 unbounded)
    true (k2 <= unbounded);
  Alcotest.(check bool)
    (Printf.sprintf "k=0 (%d) < unbounded (%d)" k0 unbounded)
    true (k0 < unbounded)

(* Bounded mixing must not lose the Fig. 3 bug: the buggy decision is the
   first (and only) epoch, inside every window. *)
let test_bounded_mixing_keeps_shallow_bugs () =
  let report =
    Explorer.verify ~config:(config ~mixing_bound:0 ()) ~np:3 fig3_program
  in
  Alcotest.(check int) "bug still found at k=0" 1 (List.length (crashes report))

(* ---- Loop iteration abstraction (§III-B1) ---- *)

module Abstracted_loop (B : sig
  val bracket : bool
end)
(M : Mpi.Mpi_intf.MPI_CORE) =
struct
  let main () =
    let world = M.comm_world in
    match M.rank world with
    | 0 ->
        (* Two wildcard receives in a "loop", then one outside. The bug
           (receiving 99 outside the loop) is reachable only if the loop
           consumes rank 2's first message — an interleaving that loop
           abstraction deliberately prunes. *)
        if B.bracket then M.pcontrol 1;
        for _ = 1 to 2 do
          ignore (M.recv ~src:M.any_source world)
        done;
        if B.bracket then M.pcontrol 0;
        let v, _ = M.recv ~src:M.any_source world in
        if Payload.to_int v = 99 then failwith "bug outside loop"
    | r ->
        M.send ~dest:0 world (Payload.int r);
        if r <= 2 then
          M.send ~dest:0 world (Payload.int (if r = 2 then 99 else 10))
end

module Bracketed = Abstracted_loop (struct
  let bracket = true
end)

module Unbracketed = Abstracted_loop (struct
  let bracket = false
end)

let test_loop_abstraction () =
  let free =
    Explorer.verify ~config:(config ()) ~np:3
      (module Unbracketed : Mpi.Mpi_intf.PROGRAM)
  in
  let bracketed =
    Explorer.verify ~config:(config ()) ~np:3
      (module Bracketed : Mpi.Mpi_intf.PROGRAM)
  in
  (* Unrestricted exploration reaches the bug. *)
  Alcotest.(check int) "bug found without brackets" 1
    (List.length (crashes free));
  (* Loop abstraction prunes the loop's epochs: fewer interleavings, and
     the deep bug is (knowingly) sacrificed. *)
  Alcotest.(check bool) "bracketed epochs reported" true
    (bracketed.Report.bounded_epochs > 0);
  Alcotest.(check bool)
    (Printf.sprintf "fewer interleavings with brackets (%d < %d)"
       bracketed.Report.interleavings free.Report.interleavings)
    true
    (bracketed.Report.interleavings < free.Report.interleavings);
  Alcotest.(check int) "pruned bug not reported" 0
    (List.length (crashes bracketed))

(* ---- Piggyback mechanisms (SS II-D) ---- *)

let inline_config ?(clock = lamport) () =
  {
    Explorer.default_config with
    state_config = State.make_config ~clock ~piggyback:State.Inline ();
    max_runs = 10_000;
  }

let test_inline_finds_fig3 () =
  let sep = Explorer.verify ~config:(config ()) ~np:3 fig3_program in
  let inl = Explorer.verify ~config:(inline_config ()) ~np:3 fig3_program in
  Alcotest.(check int) "same interleavings" sep.Report.interleavings
    inl.Report.interleavings;
  Alcotest.(check int) "bug found under inline packing" 1
    (List.length (crashes inl))

(* Payload integrity and user-visible sizes under inline packing. *)
module Size_sensitive (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    match M.rank world with
    | 0 -> M.send ~dest:1 world (Payload.str "abcde")
    | 1 ->
        let data, st = M.recv ~src:M.any_source world in
        if Payload.to_str data <> "abcde" then failwith "payload corrupted";
        if st.Types.count <> 5 then
          failwith
            (Printf.sprintf "user-visible count is %d, wanted 5" st.Types.count)
    | _ -> ()
end

let test_inline_payload_transparent () =
  let report =
    Explorer.verify ~config:(inline_config ()) ~np:2
      (module Size_sensitive : Mpi.Mpi_intf.PROGRAM)
  in
  Alcotest.(check int) "no findings (payload and count intact)" 0
    (List.length report.Report.findings)

let test_inline_with_vector_clocks () =
  let report =
    Explorer.verify ~config:(inline_config ~clock:vector ()) ~np:4 fig4_program
  in
  Alcotest.(check int) "vector+inline still reaches the fig4 bug" 1
    (List.length (crashes report))

let test_inline_separate_equivalence () =
  (* Same exploration tree regardless of the piggyback transport. *)
  let sep = Explorer.verify ~config:(config ()) ~np:4 mini_mw in
  let inl = Explorer.verify ~config:(inline_config ()) ~np:4 mini_mw in
  Alcotest.(check int) "same interleavings" sep.Report.interleavings
    inl.Report.interleavings;
  Alcotest.(check int) "same findings" 
    (List.length sep.Report.findings)
    (List.length inl.Report.findings)

(* ---- Semantic edge cases through the interposition stack ---- *)

(* Fig. 3 with synchronous-mode sends. An unmatched Ssend blocks forever,
   so the receiver takes both messages; the bug is in the matching order of
   the first. *)
module Fig3_ssend (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    match M.rank world with
    | 0 -> M.ssend ~dest:1 world (Payload.int 22)
    | 1 ->
        let x, _ = M.recv ~src:M.any_source world in
        let _ = M.recv ~src:M.any_source world in
        if Payload.to_int x = 33 then failwith "fig3-ssend bug"
    | 2 -> M.ssend ~dest:1 world (Payload.int 33)
    | _ -> ()
end

let test_fig3_with_ssend () =
  let report =
    Explorer.verify ~config:(config ()) ~np:3
      (module Fig3_ssend : Mpi.Mpi_intf.PROGRAM)
  in
  Alcotest.(check int) "bug found with sync sends" 1
    (List.length (crashes report))

(* Wildcard on both source and tag: the epoch must accept any-tag late
   messages. *)
module Any_any (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    match M.rank world with
    | 0 ->
        let v, _ = M.recv ~src:M.any_source ~tag:M.any_tag world in
        if Payload.to_int v = 2 then failwith "any-any bug";
        ignore (M.recv ~src:M.any_source ~tag:M.any_tag world)
    | 1 -> M.send ~tag:7 ~dest:0 world (Payload.int 1)
    | 2 -> M.send ~tag:9 ~dest:0 world (Payload.int 2)
    | _ -> ()
end

let test_any_source_any_tag () =
  let report =
    Explorer.verify ~config:(config ()) ~np:3 (module Any_any : Mpi.Mpi_intf.PROGRAM)
  in
  Alcotest.(check int) "cross-tag alternative found" 1
    (List.length (crashes report))

(* A test-polling consumer: completion through M.test instead of M.wait
   must drive the same analysis. *)
module Poller (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    match M.rank world with
    | 0 ->
        let req = M.irecv ~src:M.any_source world in
        let rec poll () =
          match M.test req with
          | Some _ -> ()
          | None -> poll ()
        in
        poll ();
        if Payload.to_int (M.recv_data req) = 2 then failwith "poller bug";
        ignore (M.recv ~src:M.any_source world)
    | r -> M.send ~dest:0 world (Payload.int r)
end

let test_completion_via_test () =
  let report =
    Explorer.verify ~config:(config ()) ~np:3 (module Poller : Mpi.Mpi_intf.PROGRAM)
  in
  Alcotest.(check int) "bug found through test-based completion" 1
    (List.length (crashes report))

(* Same tags on a dup'd communicator: a late message on the dup is no
   alternative for a world epoch. *)
module Dup_isolation (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    let dup = M.comm_dup world in
    (match M.rank world with
    | 0 ->
        (* World wildcard can only legally match rank 1 (rank 2 sends on
           the dup): forcing rank 2 here would be unsound. *)
        let v, _ = M.recv ~src:M.any_source world in
        assert (Payload.to_int v = 1);
        let w, _ = M.recv ~src:M.any_source dup in
        assert (Payload.to_int w = 2)
    | 1 -> M.send ~dest:0 world (Payload.int 1)
    | 2 -> M.send ~dest:0 dup (Payload.int 2)
    | _ -> ());
    M.comm_free dup
end

let test_dup_context_isolation () =
  let report =
    Explorer.verify ~config:(config ()) ~np:3
      (module Dup_isolation : Mpi.Mpi_intf.PROGRAM)
  in
  (* One interleaving: neither wildcard has a cross-context alternative,
     and the asserts prove no unsound forcing happened. *)
  Alcotest.(check int) "no cross-context alternatives" 1
    report.Report.interleavings;
  Alcotest.(check int) "no findings" 0 (List.length report.Report.findings)

(* ---- Random-testing baseline (Sampler) ---- *)

let test_sampler_misses_fig3 () =
  (* The fig3 race needs an arrival reordering, not just a different match
     choice among queued candidates: randomizing the oracle cannot reach it
     (the paper's SS I point about schedule randomization). *)
  let r =
    Dampi.Sampler.test ~seeds:(List.init 50 Fun.id) ~np:3
      Workloads.Patterns.fig3
  in
  Alcotest.(check int) "trials" 50 r.Dampi.Sampler.trials;
  Alcotest.(check bool) "random testing misses the bug" false
    (Dampi.Sampler.found_errors r)

let test_sampler_finds_queued_races_sometimes () =
  let r =
    Dampi.Sampler.test ~seeds:(List.init 50 Fun.id) ~np:4
      (module Three_senders : Mpi.Mpi_intf.PROGRAM)
  in
  Alcotest.(check bool) "some trials hit the bug" true
    (Dampi.Sampler.found_errors r);
  Alcotest.(check bool) "but not all" true
    (r.Dampi.Sampler.errors_found < r.Dampi.Sampler.trials)

let test_sampler_deterministic_per_seed () =
  let r1 =
    Dampi.Sampler.test ~seeds:[ 1; 2; 3 ] ~np:4
      (module Three_senders : Mpi.Mpi_intf.PROGRAM)
  in
  let r2 =
    Dampi.Sampler.test ~seeds:[ 1; 2; 3 ] ~np:4
      (module Three_senders : Mpi.Mpi_intf.PROGRAM)
  in
  Alcotest.(check int) "same errors for same seeds"
    r1.Dampi.Sampler.errors_found r2.Dampi.Sampler.errors_found

(* ---- Guided replay internals ---- *)

let test_decisions_lookup () =
  let plan =
    Decisions.of_decisions ~np:4
      [
        { Decisions.owner = 1; epoch_id = 0; src = 2; kind = Epoch.Wildcard_recv };
        { Decisions.owner = 1; epoch_id = 3; src = 0; kind = Epoch.Wildcard_recv };
        { Decisions.owner = 2; epoch_id = 1; src = 3; kind = Epoch.Wildcard_probe };
      ]
  in
  Alcotest.(check (option int)) "lookup hit" (Some 2)
    (Decisions.forced_src plan ~owner:1 ~epoch_id:0 ~kind:Epoch.Wildcard_recv);
  Alcotest.(check (option int)) "kind mismatch" None
    (Decisions.forced_src plan ~owner:2 ~epoch_id:1 ~kind:Epoch.Wildcard_recv);
  Alcotest.(check (option int)) "miss" None
    (Decisions.forced_src plan ~owner:0 ~epoch_id:0 ~kind:Epoch.Wildcard_recv);
  Alcotest.(check bool) "guided window inside" true
    (Decisions.in_guided_window plan ~owner:1 ~epoch_id:3);
  Alcotest.(check bool) "guided window outside" false
    (Decisions.in_guided_window plan ~owner:1 ~epoch_id:4);
  Alcotest.(check bool) "no window for unforced owner" false
    (Decisions.in_guided_window plan ~owner:3 ~epoch_id:0)

let test_epoch_potentials () =
  let e =
    Epoch.make ~owner:1 ~id:5 ~kind:Epoch.Wildcard_recv ~ctx:0 ~tag:7
      ~clock_enc:[| 5 |]
  in
  Epoch.add_potential e 2;
  Epoch.add_potential e 2;
  Epoch.add_potential e 3;
  Alcotest.(check (list int)) "no duplicates" [ 2; 3 ] (Epoch.alternatives e);
  Epoch.set_matched e 3;
  Alcotest.(check (list int)) "matched source dropped" [ 2 ]
    (Epoch.alternatives e);
  Alcotest.(check bool) "spec matches same ctx/tag" true
    (Epoch.spec_matches e ~ctx:0 ~tag:7);
  Alcotest.(check bool) "spec rejects other ctx" false
    (Epoch.spec_matches e ~ctx:1 ~tag:7);
  Alcotest.(check bool) "wildcard tag epoch matches anything" true
    (Epoch.spec_matches
       (Epoch.make ~owner:0 ~id:0 ~kind:Epoch.Wildcard_recv ~ctx:0
          ~tag:Types.any_tag ~clock_enc:[| 0 |])
       ~ctx:0 ~tag:42)

(* ---- stop_on_first_error ---- *)

let test_stop_on_first_error () =
  (* Three senders: full exploration is >= 6 runs, but stopping at the
     first crash cuts the walk short. *)
  let full = Explorer.verify ~config:(config ()) ~np:4 (module Three_senders : Mpi.Mpi_intf.PROGRAM) in
  let stopped =
    Explorer.verify
      ~config:{ (config ()) with Explorer.stop_on_first_error = true }
      ~np:4 (module Three_senders : Mpi.Mpi_intf.PROGRAM)
  in
  Alcotest.(check int) "still finds the bug" 1 (List.length (crashes stopped));
  Alcotest.(check bool)
    (Printf.sprintf "stops early (%d < %d)" stopped.Report.interleavings
       full.Report.interleavings)
    true
    (stopped.Report.interleavings < full.Report.interleavings)

(* ---- Determinism of verification itself ---- *)

let test_verify_deterministic () =
  let r1 = Explorer.verify ~config:(config ()) ~np:4 (module Three_senders : Mpi.Mpi_intf.PROGRAM) in
  let r2 = Explorer.verify ~config:(config ()) ~np:4 (module Three_senders : Mpi.Mpi_intf.PROGRAM) in
  Alcotest.(check int) "same interleaving count" r1.Report.interleavings
    r2.Report.interleavings;
  Alcotest.(check (list string)) "same findings"
    (List.map (fun (f : Report.finding) -> Report.error_signature f.Report.error) r1.Report.findings)
    (List.map (fun (f : Report.finding) -> Report.error_signature f.Report.error) r2.Report.findings)

let () =
  Alcotest.run "dampi"
    [
      ( "paper-patterns",
        [
          Alcotest.test_case "fig3: bug found via replay" `Quick
            test_fig3_bug_found;
          Alcotest.test_case "single sender: no exploration" `Quick
            test_single_sender_one_interleaving;
          Alcotest.test_case "fig4: lamport incomplete" `Quick
            test_fig4_lamport_incomplete;
          Alcotest.test_case "fig4: vector complete" `Quick
            test_fig4_vector_complete;
          Alcotest.test_case "fig10: monitor alert" `Quick
            test_fig10_monitor_alert;
          Alcotest.test_case "fig10 clean variant: no alert" `Quick
            test_fig10_clean_no_alert;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "deterministic program: one run" `Quick
            test_deterministic_single_run;
          Alcotest.test_case "three senders: full coverage" `Quick
            test_three_senders_coverage;
          Alcotest.test_case "wildcard-dependent deadlock" `Quick
            test_wildcard_deadlock_found;
          Alcotest.test_case "master/worker explores" `Quick
            test_master_worker_explores;
          Alcotest.test_case "verification is deterministic" `Quick
            test_verify_deterministic;
          Alcotest.test_case "stop on first error" `Quick
            test_stop_on_first_error;
        ] );
      ( "checks",
        [
          Alcotest.test_case "comm and request leaks" `Quick test_leaks_reported;
          Alcotest.test_case "shadow comms not reported" `Quick
            test_no_shadow_false_positives;
        ] );
      ( "heuristics",
        [
          Alcotest.test_case "bounded mixing monotone in k" `Quick
            test_bounded_mixing_monotone;
          Alcotest.test_case "bounded mixing keeps shallow bugs" `Quick
            test_bounded_mixing_keeps_shallow_bugs;
          Alcotest.test_case "loop iteration abstraction" `Quick
            test_loop_abstraction;
        ] );
      ( "dual-clock",
        [
          Alcotest.test_case "fig10 covered (SSV future work)" `Quick
            test_fig10_dual_clock_covers;
          Alcotest.test_case "equivalent on fig3" `Quick
            test_dual_clock_equivalent_elsewhere;
          Alcotest.test_case "sound on deterministic ring" `Quick
            test_dual_clock_still_sound;
        ] );
      ( "piggyback",
        [
          Alcotest.test_case "inline finds fig3" `Quick test_inline_finds_fig3;
          Alcotest.test_case "inline payload transparent" `Quick
            test_inline_payload_transparent;
          Alcotest.test_case "inline + vector clocks" `Quick
            test_inline_with_vector_clocks;
          Alcotest.test_case "inline/separate equivalence" `Quick
            test_inline_separate_equivalence;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "fig3 with ssend" `Quick test_fig3_with_ssend;
          Alcotest.test_case "any-source any-tag" `Quick
            test_any_source_any_tag;
          Alcotest.test_case "completion via test" `Quick
            test_completion_via_test;
          Alcotest.test_case "dup context isolation" `Quick
            test_dup_context_isolation;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "misses fig3 (coverage gap)" `Quick
            test_sampler_misses_fig3;
          Alcotest.test_case "finds queued races sometimes" `Quick
            test_sampler_finds_queued_races_sometimes;
          Alcotest.test_case "deterministic per seed" `Quick
            test_sampler_deterministic_per_seed;
        ] );
      ( "internals",
        [
          Alcotest.test_case "decision lookup" `Quick test_decisions_lookup;
          Alcotest.test_case "epoch potential bookkeeping" `Quick
            test_epoch_potentials;
        ] );
    ]
