(* Tests for the ISP baseline: the centralized-scheduler cost model and the
   equality of coverage with DAMPI (the paper's Figs. 5/6 premise). *)

module Report = Dampi.Report
module Explorer = Dampi.Explorer

let contains_crash (report : Report.t) =
  List.exists
    (fun (f : Report.finding) ->
      match f.Report.error with Report.Crash _ -> true | _ -> false)
    report.Report.findings

(* ---- cost model ---- *)

let test_service_grows_with_np () =
  let m = Isp.Model.default in
  Alcotest.(check bool) "service(128) > service(8)" true
    (Isp.Model.service m ~np:128 > Isp.Model.service m ~np:8)

let test_round_trip_queues () =
  let m = Isp.Model.default in
  let server = Sim.Vtime.Server.create ~service:(Isp.Model.service m ~np:4) in
  (* Two calls at the same instant: the second queues behind the first. *)
  let t1 = Isp.Model.round_trip m server ~now:0.0 ~nd:false in
  let t2 = Isp.Model.round_trip m server ~now:0.0 ~nd:false in
  Alcotest.(check bool) "fifo queueing" true (t2 > t1);
  Alcotest.(check int) "both served" 2 (Sim.Vtime.Server.served server)

let test_nd_hold () =
  let m = Isp.Model.default in
  let server = Sim.Vtime.Server.create ~service:(Isp.Model.service m ~np:4) in
  let det = Isp.Model.round_trip m server ~now:0.0 ~nd:false in
  Sim.Vtime.Server.reset server;
  let nd = Isp.Model.round_trip m server ~now:0.0 ~nd:true in
  Alcotest.(check (float 1e-12)) "nd ops held longer" m.Isp.Model.nd_hold
    (nd -. det)

(* ---- coverage equality ---- *)

let test_isp_finds_fig3 () =
  let report =
    Isp.Engine.verify ~config:Isp.Engine.default_config ~np:3
      Workloads.Patterns.fig3
  in
  Alcotest.(check bool) "ISP finds the fig3 bug" true (contains_crash report);
  Alcotest.(check int) "same interleaving count as DAMPI"
    (Explorer.verify ~config:Explorer.default_config ~np:3
       Workloads.Patterns.fig3)
      .Report.interleavings report.Report.interleavings

let test_isp_same_tree_on_matmult () =
  let program =
    Workloads.Matmult.program
      ~params:{ Workloads.Matmult.default_params with n = 6; rows_per_task = 2 }
      ()
  in
  let dampi = Explorer.verify ~config:Explorer.default_config ~np:4 program in
  let isp = Isp.Engine.verify ~config:Isp.Engine.default_config ~np:4 program in
  Alcotest.(check int) "identical exploration trees"
    dampi.Report.interleavings isp.Report.interleavings;
  Alcotest.(check bool) "ISP pays more virtual time" true
    (isp.Report.total_virtual_time > dampi.Report.total_virtual_time)

(* ---- scaling shape (the Fig. 5 premise) ---- *)

let test_overhead_ratio_grows () =
  let params = { Workloads.Parmetis.default_params with scale = 0.02 } in
  let ratio np =
    let program = Workloads.Parmetis.program ~params () in
    Isp.Engine.single_run_makespan ~np program
    /. Explorer.native_makespan ~np program
  in
  let r4 = ratio 4 and r8 = ratio 8 and r16 = ratio 16 in
  Alcotest.(check bool)
    (Printf.sprintf "monotone: %.1f < %.1f < %.1f" r4 r8 r16)
    true
    (r4 < r8 && r8 < r16)

let test_dampi_overhead_stays_flat () =
  (* DAMPI's ratio must not grow the way ISP's does: over the 4->16 range
     ISP's ratio multiplies several-fold, DAMPI's stays within 20%. *)
  let params = { Workloads.Parmetis.default_params with scale = 0.02 } in
  let dampi_ratio np =
    let program = Workloads.Parmetis.program ~params () in
    let report =
      Explorer.verify
        ~config:{ Explorer.default_config with max_runs = 1 }
        ~np program
    in
    report.Report.first_run_makespan /. Explorer.native_makespan ~np program
  in
  let r4 = dampi_ratio 4 and r16 = dampi_ratio 16 in
  Alcotest.(check bool)
    (Printf.sprintf "near-flat: %.2f vs %.2f" r4 r16)
    true
    (r16 /. r4 < 1.2)

let () =
  Alcotest.run "isp"
    [
      ( "model",
        [
          Alcotest.test_case "service grows with np" `Quick
            test_service_grows_with_np;
          Alcotest.test_case "round trips queue" `Quick test_round_trip_queues;
          Alcotest.test_case "nd hold" `Quick test_nd_hold;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "finds fig3" `Quick test_isp_finds_fig3;
          Alcotest.test_case "same tree on matmult" `Quick
            test_isp_same_tree_on_matmult;
        ] );
      ( "scaling",
        [
          Alcotest.test_case "ISP ratio grows with np" `Quick
            test_overhead_ratio_grows;
          Alcotest.test_case "DAMPI ratio stays flat" `Quick
            test_dampi_overhead_stays_flat;
        ] );
    ]
