(* Unit tests for the domain-parallel work queue behind the explorer:
   ordering guarantees, budget enforcement under contention, cooperative
   cancellation, and the zero-frame fast path. *)

module Scheduler = Dampi.Scheduler

(* Run a scheduler with one worker and record execution order. [children]
   maps an item to its follow-on items. *)
let trace_order ~order ?budget seed children =
  let sched = Scheduler.create ~order ~jobs:1 ?budget () in
  Scheduler.push_batch sched seed;
  let log = ref [] in
  Scheduler.run sched (fun ~worker:_ x ->
      log := x :: !log;
      children x);
  List.rev !log

let test_lifo_batch_order () =
  (* The first element of a pushed batch pops first; a popped item's
     children run before its batch siblings — depth-first order. *)
  let children = function 1 -> [ 10; 11 ] | 10 -> [ 100 ] | _ -> [] in
  Alcotest.(check (list int))
    "depth-first"
    [ 1; 10; 100; 11; 2; 3 ]
    (trace_order ~order:Scheduler.Lifo [ 1; 2; 3 ] children)

let test_fifo_batch_order () =
  (* Under FIFO, children queue behind the remaining seed — breadth-first. *)
  let children = function 1 -> [ 10; 11 ] | 10 -> [ 100 ] | _ -> [] in
  Alcotest.(check (list int))
    "breadth-first"
    [ 1; 2; 3; 10; 11; 100 ]
    (trace_order ~order:Scheduler.Fifo [ 1; 2; 3 ] children)

let test_lifo_push_is_a_stack () =
  let sched = Scheduler.create ~order:Scheduler.Lifo ~jobs:1 () in
  Scheduler.push sched 1;
  Scheduler.push sched 2;
  Scheduler.push sched 3;
  let log = ref [] in
  Scheduler.run sched (fun ~worker:_ x ->
      log := x :: !log;
      []);
  Alcotest.(check (list int)) "stack order" [ 3; 2; 1 ] (List.rev !log)

let test_budget_sequential () =
  (* A self-replicating workload: without the budget it would never end. *)
  let executed =
    trace_order ~order:Scheduler.Lifo ~budget:7 [ 0 ] (fun x -> [ x + 1 ])
  in
  Alcotest.(check (list int)) "exactly budget items"
    [ 0; 1; 2; 3; 4; 5; 6 ] executed

let test_budget_under_contention () =
  (* Four domains racing over a replicating queue: the claim counter is the
     only admission gate, so exactly [budget] items may ever run. *)
  let budget = 50 in
  let sched = Scheduler.create ~order:Scheduler.Lifo ~jobs:4 ~budget () in
  Scheduler.push_batch sched [ 0; 1; 2; 3 ];
  let ran = Atomic.make 0 in
  Scheduler.run sched (fun ~worker:_ x ->
      Atomic.incr ran;
      [ (x * 2) + 1; (x * 2) + 2 ]);
  Alcotest.(check int) "claimed = budget" budget (Scheduler.executed sched);
  Alcotest.(check int) "ran = budget" budget (Atomic.get ran);
  let per_worker =
    List.fold_left
      (fun acc (ws : Scheduler.worker_stats) -> acc + ws.Scheduler.items_run)
      0 (Scheduler.stats sched)
  in
  Alcotest.(check int) "worker counters sum to budget" budget per_worker

let test_cancel_drops_queued_work () =
  let sched = Scheduler.create ~order:Scheduler.Lifo ~jobs:1 () in
  Scheduler.push_batch sched [ 1; 2; 3; 4; 5 ];
  let log = ref [] in
  Scheduler.run sched (fun ~worker:_ x ->
      log := x :: !log;
      if x = 2 then Scheduler.cancel sched;
      if x < 100 then [ x + 100 ] else []);
  Alcotest.(check (list int)) "stops after the cancelling item" [ 1; 101; 2 ]
    (List.rev !log);
  Alcotest.(check bool) "cancelled" true (Scheduler.cancelled sched);
  Alcotest.(check bool)
    "queued work dropped, not run"
    true
    (Scheduler.pending sched > 0)

let test_cancel_under_contention () =
  (* Cooperative cancellation with racing workers: whatever was in flight
     finishes, nothing is claimed afterwards, and the queue keeps the
     abandoned work. *)
  let sched = Scheduler.create ~order:Scheduler.Fifo ~jobs:4 () in
  Scheduler.push_batch sched (List.init 64 Fun.id);
  let ran = Atomic.make 0 in
  Scheduler.run sched (fun ~worker:_ x ->
      Atomic.incr ran;
      if x = 0 then Scheduler.cancel sched;
      []);
  Alcotest.(check bool) "cancelled" true (Scheduler.cancelled sched);
  Alcotest.(check bool)
    "not everything ran"
    true
    (Atomic.get ran < 64);
  Alcotest.(check int) "ran + pending = pushed" 64
    (Atomic.get ran + Scheduler.pending sched)

let test_zero_frame_fast_path () =
  (* A deterministic program produces no fork frames: run must return
     immediately, for any worker count, without spawning domains. *)
  List.iter
    (fun jobs ->
      let sched = Scheduler.create ~jobs () in
      let ran = Atomic.make 0 in
      Scheduler.run sched (fun ~worker:_ _ ->
          Atomic.incr ran;
          []);
      Alcotest.(check int)
        (Printf.sprintf "nothing ran (jobs=%d)" jobs)
        0 (Atomic.get ran);
      Alcotest.(check int)
        (Printf.sprintf "nothing executed (jobs=%d)" jobs)
        0 (Scheduler.executed sched))
    [ 1; 4 ]

let test_parallel_drains_everything () =
  (* No budget, no cancellation: every item (including discovered children)
     must run exactly once even with many workers. *)
  let sched = Scheduler.create ~order:Scheduler.Lifo ~jobs:4 () in
  Scheduler.push_batch sched (List.init 20 Fun.id);
  let sum = Atomic.make 0 in
  Scheduler.run sched (fun ~worker:_ x ->
      ignore (Atomic.fetch_and_add sum x);
      if x < 100 then [ x + 100 ] else []);
  (* seeds 0..19 plus one child x+100 each *)
  let expected = (190 * 2) + (20 * 100) in
  Alcotest.(check int) "all items ran once" expected (Atomic.get sum);
  Alcotest.(check int) "40 executions" 40 (Scheduler.executed sched);
  Alcotest.(check int) "queue drained" 0 (Scheduler.pending sched)

let test_run_twice_rejected () =
  let sched = Scheduler.create ~jobs:1 () in
  Scheduler.push sched 1;
  Scheduler.run sched (fun ~worker:_ _ -> []);
  Alcotest.check_raises "second run rejected"
    (Invalid_argument "Scheduler.run: already ran") (fun () ->
      Scheduler.run sched (fun ~worker:_ _ -> []))

let () =
  Alcotest.run "scheduler"
    [
      ( "ordering",
        [
          Alcotest.test_case "lifo batch is depth-first" `Quick
            test_lifo_batch_order;
          Alcotest.test_case "fifo batch is breadth-first" `Quick
            test_fifo_batch_order;
          Alcotest.test_case "lifo push is a stack" `Quick
            test_lifo_push_is_a_stack;
        ] );
      ( "budget",
        [
          Alcotest.test_case "sequential budget" `Quick test_budget_sequential;
          Alcotest.test_case "budget under contention" `Quick
            test_budget_under_contention;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "cancel drops queued work" `Quick
            test_cancel_drops_queued_work;
          Alcotest.test_case "cancel under contention" `Quick
            test_cancel_under_contention;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "zero-frame fast path" `Quick
            test_zero_frame_fast_path;
          Alcotest.test_case "parallel drain" `Quick
            test_parallel_drains_everything;
          Alcotest.test_case "run twice rejected" `Quick test_run_twice_rejected;
        ] );
    ]
