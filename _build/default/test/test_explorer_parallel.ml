(* The determinism contract of stateless replay (paper §IV): every guided
   interleaving is an independent re-execution from MPI_Init, so exploring
   the decision space with 4 domains must find exactly what the sequential
   depth-first walk finds. For every workload of the CLI registry (at small
   parameters) we check that jobs=1 and jobs=4 exhaustive explorations agree
   on the finding-signature set, the interleaving count, and the
   bounded-epoch count. *)

module Explorer = Dampi.Explorer
module Report = Dampi.Report
module State = Dampi.State

(* The CLI registry, sized down so exhaustive exploration stays small. *)
let registry : (string * int * State.config * (unit -> Mpi.Mpi_intf.program)) list
    =
  let default = State.default_config in
  let vector = State.make_config ~clock:(module Clocks.Vector) () in
  let dual = State.make_config ~dual_clock:true () in
  let k0 = State.make_config ~mixing_bound:0 () in
  [
    ("fig3", 3, default, fun () -> Workloads.Patterns.fig3);
    ("fig4", 4, default, fun () -> Workloads.Patterns.fig4);
    ("fig4/vector", 4, vector, fun () -> Workloads.Patterns.fig4);
    ("fig10", 3, default, fun () -> Workloads.Patterns.fig10);
    ("fig10/dual", 3, dual, fun () -> Workloads.Patterns.fig10);
    ("deadlock", 2, default, fun () -> Workloads.Patterns.head_to_head);
    ( "matmult",
      5,
      default,
      fun () ->
        Workloads.Matmult.program
          ~params:
            { Workloads.Matmult.default_params with n = 8; rows_per_task = 2 }
          () );
    ("samplesort", 6, default, fun () -> Workloads.Samplesort.program ());
    (* ADLB's unbounded space explodes; k=0 keeps it exhaustive and small. *)
    ("adlb/k0", 6, k0, fun () -> Workloads.Adlb.program ());
    ( "parmetis",
      4,
      default,
      fun () ->
        Workloads.Parmetis.program
          ~params:{ Workloads.Parmetis.default_params with scale = 0.01 }
          () );
  ]
  @ List.map
      (fun s ->
        ( s.Workloads.Skeleton.name,
          8,
          default,
          fun () -> Workloads.Skeleton.program s ))
      (Workloads.Nas.all @ Workloads.Specmpi.all)

let signatures (report : Report.t) =
  List.map
    (fun (f : Report.finding) -> Report.error_signature f.Report.error)
    report.Report.findings
  |> List.sort_uniq compare

let verify ~jobs ~np ~state_config program =
  Explorer.verify
    ~config:{ Explorer.default_config with state_config; jobs }
    ~np program

let check_equivalence (name, np, state_config, build) () =
  let seq = verify ~jobs:1 ~np ~state_config (build ()) in
  let par = verify ~jobs:4 ~np ~state_config (build ()) in
  Alcotest.(check (list string))
    (name ^ ": same finding signatures")
    (signatures seq) (signatures par);
  Alcotest.(check int)
    (name ^ ": same interleaving count")
    seq.Report.interleavings par.Report.interleavings;
  Alcotest.(check int)
    (name ^ ": same bounded epochs")
    seq.Report.bounded_epochs par.Report.bounded_epochs;
  Alcotest.(check int)
    (name ^ ": same wildcards analyzed")
    seq.Report.wildcards_analyzed par.Report.wildcards_analyzed;
  (* The canonical report also agrees on each finding's reproduction
     schedule, not just its signature. *)
  Alcotest.(check (list string))
    (name ^ ": same canonical schedules")
    (List.map
       (fun (f : Report.finding) -> Format.asprintf "%a" Report.pp_finding f)
       (List.map (fun f -> { f with Report.run_index = 0 }) seq.Report.findings))
    (List.map
       (fun (f : Report.finding) -> Format.asprintf "%a" Report.pp_finding f)
       (List.map (fun f -> { f with Report.run_index = 0 }) par.Report.findings));
  (* Worker accounting is conserved: per-worker runs sum to the total. *)
  let total_runs (r : Report.t) =
    List.fold_left
      (fun acc (w : Report.worker_stat) -> acc + w.Report.runs_executed)
      0 r.Report.workers
  in
  Alcotest.(check int)
    (name ^ ": jobs=1 worker runs sum")
    seq.Report.interleavings (total_runs seq);
  Alcotest.(check int)
    (name ^ ": jobs=4 worker runs sum")
    par.Report.interleavings (total_runs par)

(* stop_on_first_error stays sound in parallel mode: whatever interleaving
   finds the error first, the reported error set is a subset of the full
   exploration's and contains at least one deadlock/crash. *)
let test_stop_first_parallel () =
  let config jobs =
    {
      Explorer.default_config with
      stop_on_first_error = true;
      jobs;
    }
  in
  List.iter
    (fun jobs ->
      let report =
        Explorer.verify ~config:(config jobs) ~np:3 Workloads.Patterns.fig3
      in
      Alcotest.(check bool)
        (Printf.sprintf "error found (jobs=%d)" jobs)
        true
        (List.exists
           (fun (f : Report.finding) ->
             match f.Report.error with
             | Report.Deadlock _ | Report.Crash _ -> true
             | _ -> false)
           report.Report.findings))
    [ 1; 4 ]

(* max_runs is a hard ceiling at any worker count. *)
let test_budget_parallel () =
  List.iter
    (fun jobs ->
      let report =
        Explorer.verify
          ~config:{ Explorer.default_config with max_runs = 10; jobs }
          ~np:6 (Workloads.Adlb.program ())
      in
      Alcotest.(check int)
        (Printf.sprintf "budget respected (jobs=%d)" jobs)
        10 report.Report.interleavings)
    [ 1; 4 ]

let () =
  Alcotest.run "explorer-parallel"
    [
      ( "jobs=1 vs jobs=4",
        List.map
          (fun ((name, _, _, _) as case) ->
            Alcotest.test_case name `Quick (check_equivalence case))
          registry );
      ( "cooperative cancellation",
        [
          Alcotest.test_case "stop-first" `Quick test_stop_first_parallel;
          Alcotest.test_case "max-runs" `Quick test_budget_parallel;
        ] );
    ]
