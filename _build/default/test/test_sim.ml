(* Tests for the simulation substrate: coroutines, virtual time, PRNG. *)

module Coroutine = Sim.Coroutine
module Vtime = Sim.Vtime
module Splitmix = Sim.Splitmix

(* ---- Coroutine scheduler ---- *)

let test_run_to_completion () =
  let sched = Coroutine.create () in
  let log = ref [] in
  for i = 0 to 2 do
    ignore
      (Coroutine.spawn sched (fun () ->
           log := (i, "a") :: !log;
           Coroutine.yield ();
           log := (i, "b") :: !log))
  done;
  (match Coroutine.run sched with
  | Coroutine.All_finished -> ()
  | _ -> Alcotest.fail "expected all processes to finish");
  let order = List.rev !log in
  Alcotest.(check (list (pair int string)))
    "round-robin interleaving"
    [ (0, "a"); (1, "a"); (2, "a"); (0, "b"); (1, "b"); (2, "b") ]
    order

let test_self () =
  let sched = Coroutine.create () in
  let seen = ref [] in
  for _ = 0 to 3 do
    ignore (Coroutine.spawn sched (fun () -> seen := Coroutine.self () :: !seen))
  done;
  ignore (Coroutine.run sched);
  Alcotest.(check (list int)) "pids in spawn order" [ 0; 1; 2; 3 ] (List.rev !seen)

let test_block_wake () =
  let sched = Coroutine.create () in
  let log = ref [] in
  let _p0 =
    Coroutine.spawn sched (fun () ->
        log := "p0-before" :: !log;
        Coroutine.block "waiting for p1";
        log := "p0-after" :: !log)
  in
  let _p1 =
    Coroutine.spawn sched (fun () ->
        log := "p1" :: !log;
        Coroutine.wake sched 0)
  in
  (match Coroutine.run sched with
  | Coroutine.All_finished -> ()
  | _ -> Alcotest.fail "expected completion");
  Alcotest.(check (list string))
    "wake resumes blocked process"
    [ "p0-before"; "p1"; "p0-after" ]
    (List.rev !log)

let test_deadlock_detection () =
  let sched = Coroutine.create () in
  ignore (Coroutine.spawn sched (fun () -> Coroutine.block "stuck-0"));
  ignore (Coroutine.spawn sched (fun () -> ()));
  ignore (Coroutine.spawn sched (fun () -> Coroutine.block "stuck-2"));
  match Coroutine.run sched with
  | Coroutine.Deadlock blocked ->
      let pids = List.map (fun (b : Coroutine.blocked_info) -> b.pid) blocked in
      Alcotest.(check (list int)) "blocked pids" [ 0; 2 ] pids;
      let reasons =
        List.map (fun (b : Coroutine.blocked_info) -> b.reason) blocked
      in
      Alcotest.(check (list string)) "reasons" [ "stuck-0"; "stuck-2" ] reasons
  | _ -> Alcotest.fail "expected deadlock"

let test_crash_reported () =
  let sched = Coroutine.create () in
  ignore (Coroutine.spawn sched (fun () -> Coroutine.yield ()));
  ignore (Coroutine.spawn sched (fun () -> failwith "boom"));
  match Coroutine.run sched with
  | Coroutine.Crashed (pid, Failure msg, _) ->
      Alcotest.(check int) "crashing pid" 1 pid;
      Alcotest.(check string) "message" "boom" msg
  | _ -> Alcotest.fail "expected crash"

let test_wake_nonblocked_is_noop () =
  let sched = Coroutine.create () in
  let count = ref 0 in
  ignore
    (Coroutine.spawn sched (fun () ->
         incr count;
         Coroutine.yield ();
         incr count));
  ignore (Coroutine.spawn sched (fun () -> Coroutine.wake sched 0));
  (match Coroutine.run sched with
  | Coroutine.All_finished -> ()
  | _ -> Alcotest.fail "expected completion");
  Alcotest.(check int) "body ran exactly once through both halves" 2 !count

let test_many_processes () =
  let n = 2000 in
  let sched = Coroutine.create () in
  let sum = ref 0 in
  for i = 0 to n - 1 do
    ignore
      (Coroutine.spawn sched (fun () ->
           Coroutine.yield ();
           sum := !sum + i))
  done;
  (match Coroutine.run sched with
  | Coroutine.All_finished -> ()
  | _ -> Alcotest.fail "expected completion");
  Alcotest.(check int) "all processes ran" (n * (n - 1) / 2) !sum

(* ---- Virtual time ---- *)

let test_vtime_advance_observe () =
  let vt = Vtime.create 2 in
  Vtime.advance vt 0 5.0;
  Vtime.observe vt 1 3.0;
  Vtime.observe vt 1 1.0;
  Alcotest.(check (float 1e-9)) "advance" 5.0 (Vtime.now vt 0);
  Alcotest.(check (float 1e-9)) "observe keeps max" 3.0 (Vtime.now vt 1);
  Alcotest.(check (float 1e-9)) "makespan" 5.0 (Vtime.makespan vt)

let test_vtime_synchronize () =
  let vt = Vtime.create 3 in
  Vtime.advance vt 0 1.0;
  Vtime.advance vt 1 7.0;
  Vtime.synchronize vt [ 0; 1; 2 ] 0.5;
  List.iter
    (fun pid ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "pid %d synchronized" pid)
        7.5 (Vtime.now vt pid))
    [ 0; 1; 2 ]

let test_server_queueing () =
  let srv = Vtime.Server.create ~service:1.0 in
  let t1 = Vtime.Server.serve srv ~arrival:0.0 in
  let t2 = Vtime.Server.serve srv ~arrival:0.0 in
  let t3 = Vtime.Server.serve srv ~arrival:10.0 in
  Alcotest.(check (float 1e-9)) "first request" 1.0 t1;
  Alcotest.(check (float 1e-9)) "second queues behind first" 2.0 t2;
  Alcotest.(check (float 1e-9)) "idle server serves at arrival" 11.0 t3

(* ---- Splitmix PRNG ---- *)

let test_splitmix_deterministic () =
  let a = Splitmix.create 42 and b = Splitmix.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64)
      "same seed, same stream" (Splitmix.next_int64 a) (Splitmix.next_int64 b)
  done

let test_splitmix_split_independent () =
  let a = Splitmix.create 7 in
  let child = Splitmix.split a in
  let x = Splitmix.next_int64 child in
  (* Re-derive: the child stream must not depend on later draws from parent. *)
  let a2 = Splitmix.create 7 in
  let child2 = Splitmix.split a2 in
  ignore (Splitmix.next_int64 a2);
  Alcotest.(check int64) "split stream stable" x (Splitmix.next_int64 child2)

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Splitmix.int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let g = Splitmix.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Splitmix.int g bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let prop_float_in_bounds =
  QCheck.Test.make ~name:"Splitmix.float stays in bounds" ~count:200
    QCheck.small_int
    (fun seed ->
      let g = Splitmix.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Splitmix.float g 3.5 in
        if v < 0.0 || v >= 3.5 then ok := false
      done;
      !ok)

let prop_shuffle_is_permutation =
  QCheck.Test.make ~name:"Splitmix.shuffle permutes" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let g = Splitmix.create seed in
      let arr = Array.of_list l in
      Splitmix.shuffle g arr;
      List.sort compare (Array.to_list arr) = List.sort compare l)

let () =
  Alcotest.run "sim"
    [
      ( "coroutine",
        [
          Alcotest.test_case "run to completion, round-robin" `Quick
            test_run_to_completion;
          Alcotest.test_case "self returns pid" `Quick test_self;
          Alcotest.test_case "block / wake" `Quick test_block_wake;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
          Alcotest.test_case "crash reported" `Quick test_crash_reported;
          Alcotest.test_case "wake on non-blocked is noop" `Quick
            test_wake_nonblocked_is_noop;
          Alcotest.test_case "2000 processes" `Quick test_many_processes;
        ] );
      ( "vtime",
        [
          Alcotest.test_case "advance / observe" `Quick test_vtime_advance_observe;
          Alcotest.test_case "synchronize" `Quick test_vtime_synchronize;
          Alcotest.test_case "server queueing" `Quick test_server_queueing;
        ] );
      ( "splitmix",
        [
          Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
          Alcotest.test_case "split independence" `Quick
            test_splitmix_split_independent;
          QCheck_alcotest.to_alcotest prop_int_in_bounds;
          QCheck_alcotest.to_alcotest prop_float_in_bounds;
          QCheck_alcotest.to_alcotest prop_shuffle_is_permutation;
        ] );
    ]
