(* Tests for process groups and group-based communicator creation. *)

module Group = Mpi.Group
module Runtime = Mpi.Runtime
module Comm = Mpi.Comm
module Payload = Mpi.Payload
module Types = Mpi.Types
module Coroutine = Sim.Coroutine

let exec ~np body =
  let rt = Runtime.create ~np () in
  Runtime.spawn_ranks rt (fun rank -> body rt rank);
  (rt, Runtime.run rt)

let check_finished = function
  | Coroutine.All_finished -> ()
  | Coroutine.Deadlock _ -> Alcotest.fail "deadlock"
  | Coroutine.Crashed (pid, e, _) ->
      Alcotest.failf "rank %d crashed: %s" pid (Printexc.to_string e)

(* ---- pure group algebra ---- *)

(* A group over a synthetic world 0..n-1 built through a comm. *)
let group_world n =
  Group.of_comm
    (Comm.make ~ctx:99 ~ranks:(Array.init n Fun.id) ~internal:false ~label:"g")

let test_incl_excl () =
  let w = group_world 8 in
  let g = Group.incl w [ 3; 1; 5 ] in
  Alcotest.(check (array int)) "incl keeps order" [| 3; 1; 5 |]
    (Group.members g);
  let e = Group.excl w [ 0; 2; 4; 6 ] in
  Alcotest.(check (array int)) "excl" [| 1; 3; 5; 7 |] (Group.members e);
  Alcotest.(check bool) "membership" true (Group.is_member g 5);
  Alcotest.(check bool) "non-membership" false (Group.is_member g 0);
  Alcotest.(check (option int)) "rank lookup" (Some 1) (Group.rank_opt g 1)

let test_set_ops () =
  let w = group_world 6 in
  let a = Group.incl w [ 0; 1; 2; 3 ] in
  let b = Group.incl w [ 2; 3; 4; 5 ] in
  Alcotest.(check (array int)) "union" [| 0; 1; 2; 3; 4; 5 |]
    (Group.members (Group.union a b));
  Alcotest.(check (array int)) "inter" [| 2; 3 |]
    (Group.members (Group.inter a b));
  Alcotest.(check (array int)) "diff" [| 0; 1 |]
    (Group.members (Group.diff a b));
  Alcotest.(check bool) "equal" true (Group.equal a (Group.incl w [ 0; 1; 2; 3 ]))

let test_incl_out_of_range () =
  let w = group_world 4 in
  Alcotest.check_raises "out of range"
    (Types.Mpi_error "Group.incl: rank 7 out of range (size 4)") (fun () ->
      ignore (Group.incl w [ 7 ]))

let prop_union_contains_both =
  QCheck.Test.make ~name:"union contains both operands" ~count:200
    QCheck.(pair (small_list (int_range 0 7)) (small_list (int_range 0 7)))
    (fun (la, lb) ->
      let dedup l = List.sort_uniq compare l in
      let w = group_world 8 in
      let a = Group.incl w (dedup la) and b = Group.incl w (dedup lb) in
      let u = Group.union a b in
      Array.for_all (Group.is_member u) (Group.members a)
      && Array.for_all (Group.is_member u) (Group.members b))

let prop_inter_subset =
  QCheck.Test.make ~name:"intersection is a subset of both" ~count:200
    QCheck.(pair (small_list (int_range 0 7)) (small_list (int_range 0 7)))
    (fun (la, lb) ->
      let dedup l = List.sort_uniq compare l in
      let w = group_world 8 in
      let a = Group.incl w (dedup la) and b = Group.incl w (dedup lb) in
      Array.for_all
        (fun m -> Group.is_member a m && Group.is_member b m)
        (Group.members (Group.inter a b)))

(* ---- comm_create over the runtime ---- *)

let test_comm_create () =
  let members_got = Array.make 6 (-2) in
  let _, outcome =
    exec ~np:6 (fun rt rank ->
        let world = Runtime.comm_world rt in
        let g = Group.incl (Runtime.comm_group rt world) [ 1; 3; 5 ] in
        match Runtime.comm_create rt world g with
        | Some sub ->
            members_got.(rank) <- Comm.rank_of_world sub rank;
            (* Communicate within the new comm to prove it works. *)
            if Comm.rank_of_world sub rank = 0 then
              Runtime.send rt ~dest:2 sub (Payload.int 77)
            else if Comm.rank_of_world sub rank = 2 then begin
              let v, _ = Runtime.recv rt ~src:0 sub in
              assert (Payload.to_int v = 77)
            end;
            Runtime.comm_free rt sub
        | None -> members_got.(rank) <- -1)
  in
  check_finished outcome;
  Alcotest.(check (array int)) "ranks within the new communicator"
    [| -1; 0; -1; 1; -1; 2 |] members_got

let test_comm_create_group_mismatch () =
  let _, outcome =
    exec ~np:4 (fun rt rank ->
        let world = Runtime.comm_world rt in
        let g =
          Group.incl (Runtime.comm_group rt world)
            (if rank = 0 then [ 0; 1 ] else [ 0; 2 ])
        in
        ignore (Runtime.comm_create rt world g))
  in
  match outcome with
  | Coroutine.Crashed (_, Types.Mpi_error _, _) -> ()
  | _ -> Alcotest.fail "expected group-mismatch error"

(* comm_create under DAMPI: wildcards inside the created communicator are
   explored like any other. *)
module Subteam (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    let g = Group.incl (M.comm_group world) [ 0; 2; 3 ] in
    match M.comm_create world g with
    | None -> ()
    | Some sub ->
        (match M.rank sub with
        | 0 ->
            let a, _ = M.recv ~src:M.any_source sub in
            let b, _ = M.recv ~src:M.any_source sub in
            if Payload.to_int a = 2 && Payload.to_int b = 1 then
              failwith "subteam order bug"
        | r -> M.send ~dest:0 sub (Payload.int r));
        M.comm_free sub
end

let test_comm_create_under_dampi () =
  let report =
    Dampi.Explorer.verify ~config:Dampi.Explorer.default_config ~np:4
      (module Subteam : Mpi.Mpi_intf.PROGRAM)
  in
  Alcotest.(check bool)
    (Printf.sprintf "explores the subteam wildcards (got %d)"
       report.Dampi.Report.interleavings)
    true
    (report.Dampi.Report.interleavings >= 2);
  Alcotest.(check int) "planted order bug found" 1
    (List.length
       (List.filter
          (fun (f : Dampi.Report.finding) ->
            match f.Dampi.Report.error with
            | Dampi.Report.Crash _ -> true
            | _ -> false)
          report.Dampi.Report.findings))

let () =
  Alcotest.run "group"
    [
      ( "algebra",
        [
          Alcotest.test_case "incl / excl" `Quick test_incl_excl;
          Alcotest.test_case "union / inter / diff" `Quick test_set_ops;
          Alcotest.test_case "incl out of range" `Quick test_incl_out_of_range;
          QCheck_alcotest.to_alcotest prop_union_contains_both;
          QCheck_alcotest.to_alcotest prop_inter_subset;
        ] );
      ( "comm-create",
        [
          Alcotest.test_case "create + use + free" `Quick test_comm_create;
          Alcotest.test_case "group mismatch detected" `Quick
            test_comm_create_group_mismatch;
          Alcotest.test_case "verified under DAMPI" `Quick
            test_comm_create_under_dampi;
        ] );
    ]
