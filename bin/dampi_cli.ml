(* The dampi command-line tool: verify bundled workloads, compare engines
   and clock algebras, sweep bounding heuristics.

     dune exec bin/dampi_cli.exe -- list
     dune exec bin/dampi_cli.exe -- verify fig3 --np 3
     dune exec bin/dampi_cli.exe -- verify matmult --np 6 -k 1
     dune exec bin/dampi_cli.exe -- verify adlb --np 8 --engine isp
     dune exec bin/dampi_cli.exe -- verify fig4 --clock vector *)

open Cmdliner

module Explorer = Dampi.Explorer
module Report = Dampi.Report
module State = Dampi.State

(* ---- workload registry ---- *)

type entry = {
  key : string;
  doc : string;
  default_np : int;
  build : unit -> Mpi.Mpi_intf.program;
}

let skeleton_entry shape doc =
  {
    key = String.lowercase_ascii shape.Workloads.Skeleton.name;
    doc;
    default_np = 16;
    build = (fun () -> Workloads.Skeleton.program shape);
  }

let registry =
  [
    {
      key = "fig3";
      doc = "paper Fig. 3: wildcard race, bug on the alternate match";
      default_np = 3;
      build = (fun () -> Workloads.Patterns.fig3);
    };
    {
      key = "fig4";
      doc = "paper Fig. 4: cross-coupled wildcards (Lamport imprecision)";
      default_np = 4;
      build = (fun () -> Workloads.Patterns.fig4);
    };
    {
      key = "fig10";
      doc = "paper Fig. 10: clock escape before wait (monitor alert)";
      default_np = 3;
      build = (fun () -> Workloads.Patterns.fig10);
    };
    {
      key = "deadlock";
      doc = "deterministic head-to-head deadlock";
      default_np = 2;
      build = (fun () -> Workloads.Patterns.head_to_head);
    };
    {
      key = "matmult";
      doc = "master/slave matrix multiplication (Figs. 6, 8)";
      default_np = 5;
      build =
        (fun () ->
          Workloads.Matmult.program
            ~params:
              { Workloads.Matmult.default_params with n = 8; rows_per_task = 2 }
            ());
    };
    {
      key = "samplesort";
      doc = "parallel sample sort (deterministic collective pipeline)";
      default_np = 6;
      build = (fun () -> Workloads.Samplesort.program ());
    };
    {
      key = "adlb";
      doc = "mini-ADLB work-sharing library (Fig. 9)";
      default_np = 6;
      build = (fun () -> Workloads.Adlb.program ());
    };
    {
      key = "parmetis";
      doc = "ParMETIS-3.1 communication skeleton, 1% scale (Fig. 5, Tables I-II)";
      default_np = 8;
      build =
        (fun () ->
          Workloads.Parmetis.program
            ~params:{ Workloads.Parmetis.default_params with scale = 0.01 }
            ());
    };
  ]
  @ List.map
      (fun s -> skeleton_entry s ("NAS-PB skeleton " ^ s.Workloads.Skeleton.name))
      Workloads.Nas.all
  @ List.map
      (fun s ->
        skeleton_entry s ("SpecMPI skeleton " ^ s.Workloads.Skeleton.name))
      Workloads.Specmpi.all

let find_entry key =
  List.find_opt (fun e -> String.equal e.key (String.lowercase_ascii key)) registry

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* Decorative stderr writes (the --progress ticker, dampi top's redraw
   line). stderr may be a pipe whose consumer vanished mid-run; with
   SIGPIPE ignored that surfaces as Sys_error, and losing a ticker line
   must never kill a long verify. *)
let safe_eprintf fmt =
  Printf.ksprintf
    (fun s -> try Printf.eprintf "%s%!" s with Sys_error _ -> ())
    fmt

let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

(* ---- distributed mode: job parameters and the worker's resolve ----

   A distributed verify ships its configuration to the workers as free-form
   job parameters; each worker rebuilds the identical runner from its own
   copy of the registry. Encoding and decoding live side by side so they
   cannot drift. *)

let job_params ~clock_name ~mixing_bound ~dual ~prune ~profile ~replay_timeout
    ~max_replay_steps ~max_retries ~retry_backoff ~fault_seed ~fault_spec
    ~net_fault_seed ~net_fault_spec =
  [
    ("clock", clock_name);
    ("dual", string_of_bool dual);
    ("prune", string_of_bool prune);
    ("profile", string_of_bool profile);
    ("max-retries", string_of_int max_retries);
    ("retry-backoff", string_of_float retry_backoff);
  ]
  @ (match mixing_bound with Some k -> [ ("k", string_of_int k) ] | None -> [])
  @ (match replay_timeout with
    | Some t -> [ ("replay-timeout", string_of_float t) ]
    | None -> [])
  @ (match max_replay_steps with
    | Some n -> [ ("max-replay-steps", string_of_int n) ]
    | None -> [])
  @ (match fault_seed with
    | Some s -> [ ("fault-seed", string_of_int s) ]
    | None -> [])
  @ (match fault_spec with Some s -> [ ("fault-spec", s) ] | None -> [])
  @ (match net_fault_seed with
    | Some s -> [ ("net-fault-seed", string_of_int s) ]
    | None -> [])
  @
  match net_fault_spec with Some s -> [ ("net-fault-spec", s) ] | None -> []

exception Bad_job of string

let cli_resolve (job : Dampi.Wire.job) =
  match find_entry job.Dampi.Wire.workload with
  | None ->
      Error (Printf.sprintf "unknown workload %S" job.Dampi.Wire.workload)
  | Some entry -> (
      try
        let p key = List.assoc_opt key job.Dampi.Wire.params in
        let int_p key =
          Option.map
            (fun v ->
              try int_of_string v
              with Failure _ ->
                raise (Bad_job (Printf.sprintf "bad %s=%S" key v)))
            (p key)
        in
        let float_p key =
          Option.map
            (fun v ->
              try float_of_string v
              with Failure _ ->
                raise (Bad_job (Printf.sprintf "bad %s=%S" key v)))
            (p key)
        in
        let clock =
          match p "clock" with
          | Some "vector" -> (module Clocks.Vector : Clocks.Clock_intf.S)
          | Some "lamport" | None -> (module Clocks.Lamport)
          | Some other ->
              raise (Bad_job (Printf.sprintf "unknown clock %S" other))
        in
        let dual = p "dual" = Some "true" in
        let state_config =
          State.make_config ~clock ?mixing_bound:(int_p "k") ~dual_clock:dual
            ()
        in
        let fault =
          match (int_p "fault-seed", p "fault-spec") with
          | None, None -> None
          | seed, text -> (
              match
                Mpi.Fault.of_string ?seed (Option.value text ~default:"")
              with
              | Ok spec -> Some spec
              | Error msg -> raise (Bad_job ("bad fault spec: " ^ msg)))
        in
        let net_fault =
          match (int_p "net-fault-seed", p "net-fault-spec") with
          | None, None -> None
          | seed, text -> (
              match
                Mpi.Fault.Net.of_string ?seed (Option.value text ~default:"")
              with
              | Ok spec -> Some spec
              | Error msg -> raise (Bad_job ("bad net-fault spec: " ^ msg)))
        in
        let d = Explorer.default_robustness in
        let rb =
          {
            Explorer.replay_timeout = float_p "replay-timeout";
            max_replay_steps = int_p "max-replay-steps";
            max_retries =
              Option.value (int_p "max-retries") ~default:d.Explorer.max_retries;
            retry_backoff =
              Option.value (float_p "retry-backoff")
                ~default:d.Explorer.retry_backoff;
            fault;
            net_fault;
            checkpoint = None;
            interrupt_after = None;
          }
        in
        let config =
          {
            Explorer.default_config with
            state_config;
            robustness = rb;
            (* Rides in the job params so remote replays carry the same
               profile.* histograms a local run would. *)
            profile = p "profile" = Some "true";
          }
        in
        Ok
          {
            Dampi.Remote_worker.np = job.Dampi.Wire.np;
            runner =
              Explorer.dampi_runner config ~np:job.Dampi.Wire.np
                (entry.build ());
            rb;
            (* Must match the coordinator's setting so both sides suppress
               identically — which is why it rides in the job params. *)
            prune = p "prune" = Some "true";
          }
      with Bad_job msg -> Error msg)

(* Children spawned by [verify --distribute] exit on the coordinator's
   shutdown; reap them, escalating to SIGKILL only if one wedges. *)
let reap_children pids =
  let deadline = Unix.gettimeofday () +. 10.0 in
  List.iter
    (fun pid ->
      let rec wait () =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ ->
            if Unix.gettimeofday () > deadline then begin
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              ignore (Unix.waitpid [] pid)
            end
            else begin
              Unix.sleepf 0.05;
              wait ()
            end
        | _, _ -> ()
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
      in
      wait ())
    pids

let hist_count snap name =
  match Obs.Metrics.find snap name with
  | Some (Obs.Metrics.Histogram h) -> h.Obs.Metrics.count
  | _ -> 0

(* ---- list command ---- *)

let list_cmd =
  let run () =
    Printf.printf "%-14s %s\n" "WORKLOAD" "DESCRIPTION";
    List.iter (fun e -> Printf.printf "%-14s %s\n" e.key e.doc) registry
  in
  Cmd.v (Cmd.info "list" ~doc:"List the bundled workloads.")
    Term.(const run $ const ())

(* ---- verify command ---- *)

let cli_src = Obs.Log.src "dampi.cli"

module Cli_log = (val Obs.Log.src_log cli_src : Obs.Log.LOG)

(* Re-exec this verify without --coordinator-respawn, restarting it from
   its checkpoint each time it dies to a signal (up to [budget] times). A
   SIGKILLed coordinator thus costs the run one resume, not the run. *)
let supervise_respawns ~budget =
  let rec strip = function
    | [] -> []
    | "--coordinator-respawn" :: rest -> (
        match rest with _ :: tl -> strip tl | [] -> [])
    | a :: rest
      when String.length a >= 22
           && String.sub a 0 22 = "--coordinator-respawn=" ->
        strip rest
    | a :: rest -> a :: strip rest
  in
  let argv = Array.of_list (strip (Array.to_list Sys.argv)) in
  (* OCaml signal numbers are a private negative encoding; name the common
     ones rather than leak e.g. -7 for SIGKILL into the diagnostics. *)
  let signal_name sg =
    if sg = Sys.sigkill then "SIGKILL"
    else if sg = Sys.sigterm then "SIGTERM"
    else if sg = Sys.sigint then "SIGINT"
    else if sg = Sys.sigsegv then "SIGSEGV"
    else if sg = Sys.sigabrt then "SIGABRT"
    else if sg = Sys.sighup then "SIGHUP"
    else if sg = Sys.sigquit then "SIGQUIT"
    else if sg = Sys.sigbus then "SIGBUS"
    else Printf.sprintf "signal %d" sg
  in
  let rec go restarts =
    let pid =
      Unix.create_process Sys.executable_name argv Unix.stdin Unix.stdout
        Unix.stderr
    in
    match snd (Unix.waitpid [] pid) with
    | Unix.WEXITED code -> exit code
    | Unix.WSIGNALED sg | Unix.WSTOPPED sg ->
        if restarts >= budget then begin
          Cli_log.err (fun m ->
              m "coordinator died (%s); respawn budget exhausted after %d \
                 restart(s)"
                (signal_name sg) restarts);
          exit 1
        end
        else begin
          Cli_log.warn (fun m ->
              m "coordinator died (%s); respawning from checkpoint (%d/%d)"
                (signal_name sg) (restarts + 1) budget);
          go (restarts + 1)
        end
  in
  go 0

let verify_run workload np clock_name mixing_bound max_runs engine dual
    no_prune prefix_cache stop_first quiet dump_schedule jobs distribute
    workers trace_out metrics_out
    (progress, profile, metrics_format, log_level)
    (checkpoint_path, checkpoint_every, replay_timeout, max_replay_steps,
     max_retries, retry_backoff, fault_seed, fault_spec, net_fault_seed,
     net_fault_spec)
    (auth_token, fallback_local, join_timeout, heartbeat_timeout, rejoin_grace,
     coordinator_respawn) =
  if jobs < 1 then begin
    Printf.eprintf "--jobs must be at least 1\n";
    exit 2
  end;
  (match Obs.Log.level_of_string log_level with
  | Ok lvl -> Obs.Log.set_level lvl
  | Error msg ->
      Printf.eprintf "bad --log-level: %s\n" msg;
      exit 2);
  (match metrics_format with
  | "json" | "openmetrics" -> ()
  | other ->
      Printf.eprintf "unknown --metrics-format %S (json|openmetrics)\n" other;
      exit 2);
  (match prefix_cache with
  | Some n when n <= 0 ->
      Printf.eprintf "--prefix-cache needs a positive byte budget\n";
      exit 2
  | _ -> ());
  if engine <> "dampi" && (no_prune || prefix_cache <> None) then begin
    Printf.eprintf
      "--no-prune and --prefix-cache only apply to the dampi engine (the \
       isp baseline explores unpruned by construction)\n";
    exit 2
  end;
  if engine <> "dampi" && (profile || progress) then begin
    Printf.eprintf "--profile and --progress only apply to the dampi engine\n";
    exit 2
  end;
  (* The CLI explores pruned by default: the differential harness proves
     the canonical report equal, and the library default stays off. *)
  let prune = engine = "dampi" && not no_prune in
  (match distribute with
  | Some n when n < 1 ->
      Printf.eprintf "--distribute needs at least 1 worker\n";
      exit 2
  | _ -> ());
  (match (distribute, workers) with
  | Some _, Some _ ->
      Printf.eprintf
        "--distribute and --workers cannot be combined (spawn workers or \
         dial already-running ones, not both)\n";
      exit 2
  | _ -> ());
  let distributed = distribute <> None || workers <> None in
  if distributed && jobs > 1 then begin
    Printf.eprintf
      "--jobs does not combine with a distributed run (worker processes \
       replace the in-process pool)\n";
    exit 2
  end;
  if distributed && stop_first then begin
    Printf.eprintf "--stop-first is not supported in distributed mode\n";
    exit 2
  end;
  if distributed && engine <> "dampi" then begin
    Printf.eprintf "distributed mode supports only the dampi engine\n";
    exit 2
  end;
  if fallback_local && not distributed then begin
    Printf.eprintf "--fallback-local only applies to a distributed run\n";
    exit 2
  end;
  (match auth_token with
  | Some _ when not distributed ->
      Printf.eprintf "--auth-token only applies to a distributed run\n";
      exit 2
  | _ -> ());
  let auth =
    match auth_token with
    | None -> None
    | Some file -> (
        match Dampi.Wire.load_token file with
        | Ok secret -> Some secret
        | Error msg ->
            Printf.eprintf "cannot read --auth-token %s: %s\n" file msg;
            exit 2)
  in
  (match coordinator_respawn with
  | Some n ->
      if checkpoint_path = None then begin
        Printf.eprintf
          "--coordinator-respawn requires --checkpoint (a respawned \
           coordinator resumes from it)\n";
        exit 2
      end;
      if n < 1 then begin
        Printf.eprintf "--coordinator-respawn needs at least 1 restart\n";
        exit 2
      end;
      supervise_respawns ~budget:n
  | None -> ());
  let worker_addrs =
    match workers with
    | None -> []
    | Some addrs ->
        List.map
          (fun a ->
            match Dampi.Wire.addr_of_string a with
            | Ok addr -> addr
            | Error msg ->
                Printf.eprintf "bad worker address %S: %s\n" a msg;
                exit 2)
          addrs
  in
  match find_entry workload with
  | None ->
      Printf.eprintf
        "unknown workload %S (try `dampi list` for the available ones)\n"
        workload;
      exit 2
  | Some entry ->
      let np = match np with Some np -> np | None -> entry.default_np in
      let clock =
        match clock_name with
        | "lamport" -> (module Clocks.Lamport : Clocks.Clock_intf.S)
        | "vector" -> (module Clocks.Vector : Clocks.Clock_intf.S)
        | other ->
            Printf.eprintf "unknown clock %S (lamport|vector)\n" other;
            exit 2
      in
      let state_config =
        State.make_config ~clock ?mixing_bound ~dual_clock:dual ()
      in
      let fault =
        match (fault_seed, fault_spec) with
        | None, None -> None
        | seed, text -> (
            match
              Mpi.Fault.of_string ?seed (Option.value text ~default:"")
            with
            | Ok spec -> Some spec
            | Error msg ->
                Printf.eprintf "bad fault spec: %s\n" msg;
                exit 2)
      in
      let net_fault =
        match (net_fault_seed, net_fault_spec) with
        | None, None -> None
        | seed, text -> (
            match
              Mpi.Fault.Net.of_string ?seed (Option.value text ~default:"")
            with
            | Ok spec -> Some spec
            | Error msg ->
                Printf.eprintf "bad net-fault spec: %s\n" msg;
                exit 2)
      in
      (* The label pins everything that shapes the exploration; resuming
         under a different configuration would silently diverge, so it is
         rejected instead. *)
      (* prune is pinned too: a pruned frontier's sleep sets are only
         meaningful to a resume that prunes the same way. *)
      let label =
        Printf.sprintf "%s %s np=%d clock=%s k=%d dual=%b prune=%b" engine
          entry.key np clock_name
          (Option.value mixing_bound ~default:(-1))
          dual prune
      in
      let resume =
        match checkpoint_path with
        | Some path when Sys.file_exists path -> (
            match Dampi.Checkpoint.load path with
            | Error msg ->
                Printf.eprintf "cannot resume from %s: %s\n" path msg;
                exit 2
            | Ok c ->
                if c.Dampi.Checkpoint.label <> label then begin
                  Printf.eprintf
                    "cannot resume from %s: it belongs to a different \
                     configuration (%s, this run is %s)\n"
                    path c.Dampi.Checkpoint.label label;
                  exit 2
                end;
                if c.Dampi.Checkpoint.np <> np then begin
                  Printf.eprintf
                    "cannot resume from %s: np mismatch (checkpoint %d, this \
                     run %d)\n"
                    path c.Dampi.Checkpoint.np np;
                  exit 2
                end;
                Printf.printf
                  "resuming from %s: %d interleavings already explored, %d \
                   frontier item(s)\n"
                  path c.Dampi.Checkpoint.runs
                  (List.length c.Dampi.Checkpoint.frontier);
                Some c)
        | _ -> None
      in
      let robustness =
        {
          Explorer.replay_timeout;
          max_replay_steps;
          max_retries;
          retry_backoff;
          fault;
          net_fault;
          checkpoint =
            Option.map
              (fun path -> { Explorer.path; every = checkpoint_every; label })
              checkpoint_path;
          interrupt_after = None;
        }
      in
      let program = entry.build () in
      let trace = trace_out <> None in
      (* The --progress ticker: one stderr line, redrawn in place (~2 Hz,
         throttled by the explorer), never mixed into the report on
         stdout. *)
      let progress_cb =
        if not progress then None
        else begin
          (* a vanished ticker consumer must surface as Sys_error (ignored
             by safe_eprintf), not as a fatal SIGPIPE *)
          ignore_sigpipe ();
          Some
            (fun kvs ->
              let v k = Option.value (List.assoc_opt k kvs) ~default:"-" in
              let cache =
                match List.assoc_opt "cache.hits" kvs with
                | Some h -> Printf.sprintf "  cache %s/%s" h (v "cache.misses")
                | None -> ""
              in
              safe_eprintf "\r%-76s"
                (Printf.sprintf
                   "%s: runs %s  %s replays/s  frontier %s  pruned %s  \
                    findings %s%s"
                   entry.key (v "runs") (v "replays_per_s") (v "frontier")
                   (v "pruned") (v "findings") cache))
        end
      in
      let children = ref [] in
      let distribute_setup =
        if not distributed then None
        else begin
          let job =
            {
              Dampi.Wire.workload = entry.key;
              np;
              params =
                job_params ~clock_name ~mixing_bound ~dual ~prune ~profile
                  ~replay_timeout ~max_replay_steps ~max_retries
                  ~retry_backoff ~fault_seed ~fault_spec ~net_fault_seed
                  ~net_fault_spec;
            }
          in
          let attach =
            match distribute with
            | Some n ->
                (* Coordinator binds an ephemeral unix socket; [ready]
                   fires once it is listening, so the spawned children
                   never race the bind. *)
                let path = Filename.temp_file "dampi-coord" ".sock" in
                let ready addr =
                  let connect = Dampi.Wire.addr_to_string addr in
                  let argv =
                    [ "dampi"; "worker"; "--connect"; connect ]
                    @ (match auth_token with
                      | Some file -> [ "--auth-token"; file ]
                      | None -> [])
                  in
                  for _ = 1 to n do
                    children :=
                      Unix.create_process Sys.executable_name
                        (Array.of_list argv) Unix.stdin Unix.stdout Unix.stderr
                      :: !children
                  done
                in
                Dampi.Coordinator.Listen
                  { addr = Dampi.Wire.Unix_sock path; ready }
            | None -> Dampi.Coordinator.Dial worker_addrs
          in
          Some
            {
              Dampi.Coordinator.attach;
              job;
              lease_size = Dampi.Coordinator.default_lease_size;
              heartbeat_timeout;
              join_timeout;
              rejoin_grace;
              auth;
              net_fault;
              outq_budget = Dampi.Coordinator.default_outq_budget;
            }
        end
      in
      let report =
        match engine with
        | "dampi" ->
            let r =
              Explorer.verify
                ~config:
                  {
                    Explorer.default_config with
                    state_config;
                    max_runs;
                    stop_on_first_error = stop_first;
                    jobs;
                    trace;
                    prune;
                    prefix_cache;
                    profile;
                    progress = progress_cb;
                    robustness;
                  }
                ?resume ?distribute:distribute_setup ~fallback_local ~np
                program
            in
            reap_children !children;
            (* leave the redrawn ticker line behind before the report *)
            if progress then safe_eprintf "\n";
            r
        | "isp" ->
            Isp.Engine.verify
              ~config:
                {
                  Isp.Engine.default_config with
                  state_config;
                  max_runs;
                  jobs;
                  trace;
                  robustness;
                }
              ?resume ~np program
        | other ->
            Printf.eprintf "unknown engine %S (dampi|isp)\n" other;
            exit 2
      in
      if quiet then
        Printf.printf "%s np=%d: %d interleavings, %d findings\n" entry.key np
          report.Report.interleavings
          (List.length report.Report.findings)
      else Format.printf "%a@." Report.pp report;
      (match trace_out with
      | Some path ->
          write_file path (Report.trace_json report);
          Printf.printf "trace written to %s\n" path
      | None -> ());
      (match metrics_out with
      | Some path ->
          let body =
            if metrics_format = "openmetrics" then
              Report.metrics_openmetrics report
            else Report.metrics_json report
          in
          write_file path body;
          Printf.printf "metrics written to %s\n" path
      | None -> ());
      (match (dump_schedule, report.Report.findings) with
      | Some path, f :: _ ->
          Dampi.Decisions.save
            (Dampi.Decisions.of_decisions ~np f.Report.schedule)
            path;
          Printf.printf "schedule of the first finding written to %s\n" path
      | Some path, [] ->
          Printf.printf "no findings; nothing written to %s\n" path
      | None, _ -> ());
      (match (report.Report.interrupted, checkpoint_path) with
      | true, Some path ->
          Printf.printf
            "interrupted; frontier checkpointed to %s (rerun with the same \
             --checkpoint to resume)\n"
            path;
          exit 3
      | true, None -> exit 3
      | false, _ -> ());
      if Report.has_errors report then exit 1

let verify_cmd =
  let workload =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:"Workload to verify (see $(b,list)).")
  in
  let np =
    Arg.(
      value
      & opt (some int) None
      & info [ "np"; "n" ] ~docv:"N" ~doc:"Number of simulated MPI ranks.")
  in
  let clock =
    Arg.(
      value & opt string "lamport"
      & info [ "clock" ] ~docv:"CLOCK"
          ~doc:"Clock algebra: $(b,lamport) (scalable) or $(b,vector) (precise).")
  in
  let mixing =
    Arg.(
      value
      & opt (some int) None
      & info [ "k"; "mixing-bound" ] ~docv:"K"
          ~doc:"Bounded-mixing window (default: unbounded).")
  in
  let max_runs =
    Arg.(
      value & opt int 100_000
      & info [ "max-runs" ] ~docv:"N" ~doc:"Interleaving budget.")
  in
  let engine =
    Arg.(
      value & opt string "dampi"
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Verification engine: $(b,dampi) (decentralized) or $(b,isp) \
             (centralized baseline; same coverage, different virtual cost).")
  in
  let dual =
    Arg.(
      value & flag
      & info [ "dual-clock" ]
          ~doc:
            "Use the dual (lagging-transmission) Lamport clock that covers \
             the paper's Fig. 10 limitation pattern (SS V future work).")
  in
  let no_prune =
    Arg.(
      value & flag
      & info [ "no-prune" ]
          ~doc:
            "Disable sleep-set schedule pruning and explore the full \
             interleaving tree. Pruning only suppresses runs whose fork \
             provably commutes (disjoint rank footprints on one \
             communicator) with an already-explored sibling, so the \
             canonical report is the same either way — this flag exists \
             for differential checks and benchmarking.")
  in
  let prefix_cache =
    Arg.(
      value
      & opt ~vopt:(Some Dampi.Prefix_cache.default_budget_bytes) (some int)
          None
      & info [ "prefix-cache" ] ~docv:"BYTES"
          ~doc:
            "Memoize each explored schedule's replay artifact under an LRU \
             budget of $(docv) bytes (default 64 MiB when the flag is given \
             bare). Re-discovered schedules — chiefly the expand-only \
             re-runs of a $(b,--checkpoint) resume, warmed from the \
             checkpoint's $(b,.cache) sidecar — then skip execution \
             entirely; replay determinism keeps the report identical.")
  in
  let stop_first =
    Arg.(
      value & flag
      & info [ "stop-first" ]
          ~doc:"Stop exploring after the first deadlock or crash finding.")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"One-line summary only.")
  in
  let dump_schedule =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-schedule" ] ~docv:"FILE"
          ~doc:
            "Write the first finding's reproduction schedule (an \
             Epoch-Decisions file) to $(docv); replay it with $(b,replay).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains exploring interleavings in parallel (guided \
             replays are independent re-executions, so any $(docv) finds \
             the same interleavings and findings on an exhaustive search).")
  in
  let distribute =
    Arg.(
      value
      & opt (some int) None
      & info [ "distribute" ] ~docv:"N"
          ~doc:
            "Distributed exploration: spawn $(docv) local worker processes \
             ($(b,dampi worker --connect)) over an ephemeral unix socket \
             and lease them the frontier. The canonical report of an \
             exhaustive run is identical to a single-process one.")
  in
  let workers =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "workers" ] ~docv:"ADDR,..."
          ~doc:
            "Distributed exploration against already-running workers \
             ($(b,dampi worker --listen ADDR)): comma-separated \
             $(b,unix:PATH) or $(b,tcp:HOST:PORT) addresses the \
             coordinator dials.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Collect a span timeline of the exploration and write it as \
             Chrome trace_event JSON to $(docv) (open in ui.perfetto.dev).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write the run's metrics (merged and per-worker-shard) as JSON \
             to $(docv).")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Checkpoint the exploration frontier to $(docv) (atomically, \
             periodically and on SIGINT/SIGTERM). If $(docv) already exists, \
             resume from it: the resumed exploration reaches the same \
             canonical report as an uninterrupted one. Exits 3 when \
             interrupted.")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 25
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "Completed replays between periodic checkpoint writes (0 writes \
             only on interrupt and completion).")
  in
  let replay_timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "replay-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock watchdog per replay attempt; a wedged replay is \
             cancelled, counted as timed out, and retried per \
             $(b,--max-retries) without stalling other workers.")
  in
  let max_replay_steps =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-replay-steps" ] ~docv:"N"
          ~doc:
            "Deterministic per-attempt budget of verifier steps (interposed \
             MPI events); exceeding it counts as a timeout.")
  in
  let max_retries =
    Arg.(
      value & opt int 2
      & info [ "max-retries" ] ~docv:"N"
          ~doc:
            "Retries per replay after a timeout or an injected transient \
             fault, each under a fresh fault salt.")
  in
  let retry_backoff =
    Arg.(
      value & opt float 0.0
      & info [ "retry-backoff" ] ~docv:"SECONDS"
          ~doc:
            "Base of the capped exponential backoff between retry attempts \
             (0 retries immediately).")
  in
  let fault_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-seed" ] ~docv:"SEED"
          ~doc:
            "Enable deterministic fault injection with the default rates \
             under $(docv); the same seed reproduces the same fault schedule.")
  in
  let fault_spec =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault-spec" ] ~docv:"SPEC"
          ~doc:
            "Fault-injection spec as comma-separated key=value pairs (keys: \
             $(b,seed), $(b,delay), $(b,max-delay), $(b,sendfail), \
             $(b,crash), $(b,wedge), $(b,rank)), e.g. \
             $(b,seed=7,delay=0.1,sendfail=0.05).")
  in
  let net_fault_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "net-fault-seed" ] ~docv:"SEED"
          ~doc:
            "Enable deterministic transport chaos with the default \
             (stall-free) rates under $(docv): wire-level delay, duplicate \
             and reorder injection on every distributed connection, both \
             directions. The same seed reproduces the same injection \
             schedule, and the canonical report stays identical to a clean \
             run — the point of the flag is rehearsing degraded networks.")
  in
  let net_fault_spec =
    Arg.(
      value
      & opt (some string) None
      & info [ "net-fault-spec" ] ~docv:"SPEC"
          ~doc:
            "Transport-chaos spec as comma-separated key=value pairs (keys: \
             $(b,seed), $(b,drop), $(b,delay), $(b,max-delay), $(b,dup), \
             $(b,reorder), $(b,corrupt), $(b,truncate), $(b,partition), \
             $(b,partition-frames), $(b,bandwidth), $(b,write-fail)), e.g. \
             $(b,seed=7,drop=0.1,dup=0.2). $(b,write-fail) injects ENOSPC \
             into checkpoint writes (local too); under drop/partition set \
             $(b,--heartbeat-timeout) low enough that recovery beats your \
             patience.")
  in
  let robustness_opts =
    Term.(
      const (fun a b c d e f g h i j -> (a, b, c, d, e, f, g, h, i, j))
      $ checkpoint $ checkpoint_every $ replay_timeout $ max_replay_steps
      $ max_retries $ retry_backoff $ fault_seed $ fault_spec $ net_fault_seed
      $ net_fault_spec)
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:
            "Stream a live one-line progress ticker to stderr (runs, \
             replays/s, frontier depth, pruned, findings; redrawn in place \
             about twice a second). The canonical report on stdout is \
             unchanged.")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Enable the lightweight replay profiler: phase-timing histograms \
             ($(b,profile.match_loop_s), $(b,profile.clock_merge_s), \
             $(b,profile.sched_wait_s), $(b,profile.wire_io_s)) exported \
             through $(b,--metrics-out). Remote workers spawned by this run \
             inherit the flag through the job parameters.")
  in
  let metrics_format =
    Arg.(
      value & opt string "json"
      & info [ "metrics-format" ] ~docv:"FMT"
          ~doc:
            "Format for $(b,--metrics-out): $(b,json) (default) or \
             $(b,openmetrics) (Prometheus-scrapable text, one series per \
             counter/gauge and the usual _bucket/_sum/_count triplet per \
             histogram).")
  in
  let log_level =
    Arg.(
      value & opt string "warn"
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:
            "Structured-log verbosity on stderr: $(b,quiet), $(b,error), \
             $(b,warn) (default), $(b,info) or $(b,debug). The default keeps \
             today's loud behaviour for operational warnings (worker loss, \
             fallback).")
  in
  let observability_opts =
    Term.(
      const (fun a b c d -> (a, b, c, d))
      $ progress $ profile $ metrics_format $ log_level)
  in
  let auth_token =
    Arg.(
      value
      & opt (some string) None
      & info [ "auth-token" ] ~docv:"FILE"
          ~doc:
            "Require workers to authenticate: $(docv) holds a shared secret \
             (trailing whitespace trimmed), and every joining worker must \
             answer an HMAC challenge over it before receiving work. Pass \
             the same file to $(b,dampi worker); mismatches are refused with \
             a one-line reject. Spawned $(b,--distribute) workers inherit \
             the flag automatically.")
  in
  let fallback_local =
    Arg.(
      value & flag
      & info [ "fallback-local" ]
          ~doc:
            "Graceful degradation: if a distributed run loses every worker \
             (past reconnect grace), drain the remaining frontier with the \
             in-process pool instead of flagging the run interrupted. The \
             canonical report is unchanged; the fallback is reported loudly \
             and counted in the $(b,coordinator.fallbacks) metric.")
  in
  let join_timeout =
    Arg.(
      value
      & opt float Dampi.Coordinator.default_join_timeout
      & info [ "join-timeout" ] ~docv:"SECONDS"
          ~doc:
            "How long a listening coordinator waits for the $(i,first) \
             worker to join before declaring the run lost (distinct from \
             $(b,--heartbeat-timeout), which governs workers already \
             admitted).")
  in
  let heartbeat_timeout =
    Arg.(
      value
      & opt float Dampi.Coordinator.default_heartbeat_timeout
      & info [ "heartbeat-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Silence threshold after which an admitted worker is considered \
             lost and its lease is eligible for refund (after \
             $(b,--rejoin-grace)).")
  in
  let rejoin_grace =
    Arg.(
      value
      & opt float Dampi.Coordinator.default_rejoin_grace
      & info [ "rejoin-grace" ] ~docv:"SECONDS"
          ~doc:
            "Grace window during which a lost worker may redial and resume \
             its in-flight lease; past it the lease is refunded to the \
             frontier and a late rejoiner is fenced onto a fresh epoch.")
  in
  let coordinator_respawn =
    Arg.(
      value
      & opt (some int) None
      & info [ "coordinator-respawn" ] ~docv:"N"
          ~doc:
            "Supervise the coordinator: re-exec this verify as a child and, \
             if it dies to a signal, restart it from its checkpoint up to \
             $(docv) times (requires $(b,--checkpoint)). Surviving \
             $(b,--listen) workers redial and rejoin the restarted \
             coordinator.")
  in
  let distributed_opts =
    Term.(
      const (fun a b c d e f -> (a, b, c, d, e, f))
      $ auth_token $ fallback_local $ join_timeout $ heartbeat_timeout
      $ rejoin_grace $ coordinator_respawn)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Verify a bundled workload over the space of its non-deterministic \
          matches. Exits 1 if errors were found, 3 if interrupted (after \
          checkpointing the frontier when $(b,--checkpoint) is set).")
    Term.(
      const verify_run $ workload $ np $ clock $ mixing $ max_runs $ engine
      $ dual $ no_prune $ prefix_cache $ stop_first $ quiet $ dump_schedule
      $ jobs $ distribute $ workers $ trace_out $ metrics_out
      $ observability_opts $ robustness_opts $ distributed_opts)

(* ---- worker command ---- *)

let worker_run connect listen auth_token max_redials redial_backoff
    metrics_out trace_out log_level =
  (match Obs.Log.level_of_string log_level with
  | Ok lvl -> Obs.Log.set_level lvl
  | Error msg ->
      Printf.eprintf "bad --log-level: %s\n" msg;
      exit 2);
  let parse s =
    match Dampi.Wire.addr_of_string s with
    | Ok a -> a
    | Error msg ->
        Printf.eprintf "bad address %S: %s\n" s msg;
        exit 2
  in
  let mode =
    match (connect, listen) with
    | Some c, None -> `Connect (parse c)
    | None, Some l -> `Listen (parse l)
    | Some _, Some _ | None, None ->
        Printf.eprintf "worker needs exactly one of --connect or --listen\n";
        exit 2
  in
  let auth =
    match auth_token with
    | None -> None
    | Some file -> (
        match Dampi.Wire.load_token file with
        | Ok secret -> Some secret
        | Error msg ->
            Printf.eprintf "cannot read --auth-token %s: %s\n" file msg;
            exit 2)
  in
  let reconnect =
    {
      Dampi.Remote_worker.default_reconnect with
      max_redials;
      backoff = redial_backoff;
    }
  in
  (* The worker always keeps a local registry: it feeds the telemetry
     deltas shipped to the coordinator, and --metrics-out snapshots it at
     exit for offline debugging of a single worker. *)
  let registry = Obs.Metrics.create ~shards:1 () in
  let telemetry = Dampi.Remote_worker.telemetry registry in
  let tracer =
    if trace_out = None then None else Some (Obs.Trace.create ~shards:1 ())
  in
  let resolve job =
    match cli_resolve job with
    | Error _ as e -> e
    | Ok resolved -> (
        match tracer with
        | None -> Ok resolved
        | Some t ->
            let sink = Obs.Trace.sink t 0 in
            let inner = resolved.Dampi.Remote_worker.runner in
            let runner ~ctx plan ~fork_index =
              Obs.Trace.with_span sink "replay"
                ~args:[ ("fork", Obs.Trace.Int fork_index) ]
                (fun () -> inner ~ctx plan ~fork_index)
            in
            Ok { resolved with Dampi.Remote_worker.runner })
  in
  (* Written on every exit path — a worker that lost its coordinator still
     leaves its metrics behind. *)
  let finish () =
    (match metrics_out with
    | Some path ->
        write_file path (Obs.Metrics.to_json (Obs.Metrics.snapshot registry))
    | None -> ());
    match (trace_out, tracer) with
    | Some path, Some t ->
        write_file path (Obs.Trace.to_chrome (Obs.Trace.events t))
    | _ -> ()
  in
  match Dampi.Remote_worker.serve_addr ?auth ~reconnect ~telemetry ~resolve mode with
  | Ok () -> finish ()
  | Error msg ->
      finish ();
      Printf.eprintf "%s\n" msg;
      exit 1

let worker_cmd =
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:
            "Dial a coordinator listening at $(docv) ($(b,unix:PATH) or \
             $(b,tcp:HOST:PORT)); this is what $(b,verify --distribute) \
             spawns.")
  in
  let listen =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Bind $(docv) and wait for coordinators to dial in (pair with \
             $(b,verify --workers)). Serves successive coordinator sessions \
             on one persistent worker identity — so it survives coordinator \
             restarts — and exits when a coordinator announces the run \
             complete or on SIGTERM.")
  in
  let auth_token =
    Arg.(
      value
      & opt (some string) None
      & info [ "auth-token" ] ~docv:"FILE"
          ~doc:
            "Shared-secret file matching the coordinator's \
             $(b,--auth-token); used to answer its HMAC challenge on join.")
  in
  let max_redials =
    Arg.(
      value
      & opt int Dampi.Remote_worker.default_reconnect.max_redials
      & info [ "max-redials" ] ~docv:"N"
          ~doc:
            "With $(b,--connect): redial a lost coordinator up to $(docv) \
             times (capped exponential backoff with deterministic jitter) \
             before giving up; 0 exits on the first disconnect.")
  in
  let redial_backoff =
    Arg.(
      value
      & opt float Dampi.Remote_worker.default_reconnect.backoff
      & info [ "redial-backoff" ] ~docv:"SECONDS"
          ~doc:"Base delay of the redial backoff (doubles per attempt).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Snapshot this worker's local metric registry as JSON to \
             $(docv) at exit (on shutdown, rejection or a lost \
             coordinator). The same counters also stream to the \
             coordinator as telemetry deltas, so this is for offline \
             single-worker debugging.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Collect one span per leased replay and write Chrome \
             trace_event JSON to $(docv) at exit (open in \
             ui.perfetto.dev).")
  in
  let log_level =
    Arg.(
      value & opt string "warn"
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:
            "Structured-log verbosity on stderr: $(b,quiet), $(b,error), \
             $(b,warn) (default), $(b,info) or $(b,debug).")
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Serve guided replays to a distributed $(b,verify) run: receive \
          the job description, replay leased frontier items, stream result \
          deltas back.")
    Term.(
      const worker_run $ connect $ listen $ auth_token $ max_redials
      $ redial_backoff $ metrics_out $ trace_out $ log_level)

(* ---- top command ---- *)

(* A read-only observer of a live distributed run: hello with
   role=observer, answer the HMAC challenge if the coordinator runs
   authenticated, then render the Progress stream. No session is created
   coordinator-side, so attaching and detaching cannot perturb the
   exploration or its canonical report. *)
let top_run connect auth_token once =
  let addr =
    match Dampi.Wire.addr_of_string connect with
    | Ok a -> a
    | Error msg ->
        Printf.eprintf "bad address %S: %s\n" connect msg;
        exit 2
  in
  let secret =
    match auth_token with
    | None -> ""
    | Some file -> (
        match Dampi.Wire.load_token file with
        | Ok s -> s
        | Error msg ->
            Printf.eprintf "cannot read --auth-token %s: %s\n" file msg;
            exit 2)
  in
  (* A coordinator that never listened (wrong path, run already over, DNS
     miss) must be one readable line and exit 2, not a raw backtrace. *)
  let sa =
    try Dampi.Wire.sockaddr_of_addr addr
    with Not_found | Failure _ | Unix.Unix_error _ ->
      Printf.eprintf "cannot resolve %s: no such host or address\n" connect;
      exit 2
  in
  let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sa
   with Unix.Unix_error (e, _, _) ->
     Printf.eprintf "cannot connect to %s: %s (is the coordinator running?)\n"
       connect (Unix.error_message e);
     exit 2);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let session = Printf.sprintf "top-%d" (Unix.getpid ()) in
  Dampi.Wire.write_to_coord oc
    (Dampi.Wire.Hello
       {
         proto = Dampi.Wire.proto_version;
         id = session;
         session;
         epoch = 0;
         pending = None;
         role = Some "observer";
       });
  ignore_sigpipe ();
  let ticking = ref false in
  let finish msg =
    if !ticking && not once then safe_eprintf "\n";
    print_endline msg
  in
  let render kvs =
    let v k = Option.value (List.assoc_opt k kvs) ~default:"-" in
    let hb =
      List.filter_map
        (fun (k, value) ->
          if String.length k > 7 && String.sub k 0 7 = "hb_age." then
            Some
              (Printf.sprintf "%s:%s"
                 (String.sub k 7 (String.length k - 7))
                 (if value = "lost" then value else value ^ "s"))
          else None)
        kvs
    in
    let line =
      Printf.sprintf
        "frontier %s  %s replays/s  runs %s  leases %s  workers %s%s"
        (v "frontier") (v "replays_per_s") (v "runs") (v "leases")
        (v "workers")
        (match hb with [] -> "" | l -> "  hb " ^ String.concat " " l)
    in
    if once then print_endline line
    else begin
      ticking := true;
      safe_eprintf "\r%-78s" line
    end
  in
  let rec loop () =
    match Dampi.Wire.read_to_worker ic with
    | Ok (Dampi.Wire.Challenge nonce) ->
        Dampi.Wire.write_to_coord oc
          (Dampi.Wire.Auth (Dampi.Wire.auth_mac ~secret ~nonce ~session));
        loop ()
    | Ok (Dampi.Wire.Welcome _) -> loop ()
    | Ok (Dampi.Wire.Reject { reason; _ }) ->
        Printf.eprintf "rejected: %s\n" reason;
        exit 1
    | Ok (Dampi.Wire.Progress kvs) ->
        render kvs;
        if not once then loop ()
    | Ok Dampi.Wire.Detach -> finish "coordinator detached"
    | Ok Dampi.Wire.Shutdown -> finish "run complete"
    | Ok (Dampi.Wire.Job _ | Dampi.Wire.Lease _) ->
        (* never sent to observers; ignore defensively *)
        loop ()
    | Error "connection closed" -> finish "coordinator gone"
    | Error _ ->
        (* the progress stream is advisory: skip a malformed line *)
        loop ()
  in
  loop ();
  close_in_noerr ic

let top_cmd =
  let connect =
    Arg.(
      required
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:
            "Coordinator address to observe ($(b,unix:PATH) or \
             $(b,tcp:HOST:PORT)) — the address a $(b,verify --workers) run \
             listens on.")
  in
  let auth_token =
    Arg.(
      value
      & opt (some string) None
      & info [ "auth-token" ] ~docv:"FILE"
          ~doc:
            "Shared-secret file matching the coordinator's \
             $(b,--auth-token), used to answer its HMAC challenge.")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:
            "Print a single progress snapshot to stdout and exit (for \
             scripts); without it, a live ticker redraws on stderr until \
             the run ends.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Attach to a live distributed $(b,verify) run as a read-only \
          observer and stream its progress: frontier depth, replays/s, \
          per-worker heartbeat ages. Observers never receive leases, so \
          watching a run cannot change its canonical report.")
    Term.(const top_run $ connect $ auth_token $ once)

(* ---- replay command ---- *)

let replay_run workload np file trace_out metrics_out =
  match find_entry workload with
  | None ->
      Printf.eprintf "unknown workload %S\n" workload;
      exit 2
  | Some entry -> (
      match Dampi.Decisions.load file with
      | Error msg ->
          Printf.eprintf "cannot load %s: %s\n" file msg;
          exit 2
      | Ok plan ->
          let np =
            match np with
            | Some np -> np
            | None -> Array.length plan.Dampi.Decisions.guided_epoch
          in
          Format.printf "replaying %d forced decision(s):@.%a@.@."
            (Dampi.Decisions.length plan)
            Dampi.Decisions.pp plan;
          let registry = Obs.Metrics.create ~shards:1 () in
          let tracer = Obs.Trace.create ~shards:1 () in
          let sink = Obs.Trace.sink tracer 0 in
          let record =
            Obs.Trace.with_span sink "replay"
              ~args:
                [ ("workload", Obs.Trace.Str entry.key);
                  ("np", Obs.Trace.Int np) ]
              (fun () ->
                Explorer.replay ~config:Explorer.default_config
                  ~metrics:(Obs.Metrics.shard registry 0)
                  ~np (entry.build ()) plan)
          in
          (match record.Report.outcome with
          | Sim.Coroutine.All_finished ->
              print_endline "run finished without deadlock or crash"
          | Sim.Coroutine.Deadlock _ -> print_endline "run deadlocked"
          | Sim.Coroutine.Crashed _ -> print_endline "run crashed");
          List.iter
            (fun e -> Format.printf "  %a@." Report.pp_error e)
            record.Report.run_errors;
          (match trace_out with
          | Some path ->
              write_file path (Obs.Trace.to_chrome (Obs.Trace.events tracer));
              Printf.printf "trace written to %s\n" path
          | None -> ());
          (match metrics_out with
          | Some path ->
              write_file path
                (Obs.Metrics.to_json (Obs.Metrics.snapshot registry));
              Printf.printf "metrics written to %s\n" path
          | None -> ()))

let replay_cmd =
  let workload =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:"Workload the schedule belongs to.")
  in
  let file =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"FILE" ~doc:"Epoch-Decisions file (from --dump-schedule).")
  in
  let np =
    Arg.(
      value
      & opt (some int) None
      & info [ "np"; "n" ] ~docv:"N"
          ~doc:"Rank count (default: taken from the schedule file).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write a Chrome trace_event span timeline to $(docv).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write the replay's metrics as JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Deterministically re-execute one interleaving from an \
          Epoch-Decisions schedule file.")
    Term.(const replay_run $ workload $ np $ file $ trace_out $ metrics_out)

(* ---- trace command ---- *)

let trace_run workload np limit =
  match find_entry workload with
  | None ->
      Printf.eprintf "unknown workload %S\n" workload;
      exit 2
  | Some entry ->
      let np = match np with Some np -> np | None -> entry.default_np in
      let rt = Mpi.Runtime.create ~trace:true ~np () in
      let module B = Mpi.Bind.Make (struct
        let rt = rt
      end) in
      let module P = (val entry.build ()) in
      let module Prog = P (B) in
      Mpi.Runtime.spawn_ranks rt (fun _ -> Prog.main ());
      let outcome = Mpi.Runtime.run rt in
      let events = Mpi.Runtime.trace rt in
      let shown = ref 0 in
      List.iter
        (fun ev ->
          if !shown < limit then begin
            incr shown;
            Format.printf "%a@." Mpi.Runtime.pp_event ev
          end)
        events;
      if List.length events > limit then
        Printf.printf "... (%d more events)\n" (List.length events - limit);
      (match outcome with
      | Sim.Coroutine.All_finished -> ()
      | Sim.Coroutine.Deadlock _ -> print_endline "(run deadlocked)"
      | Sim.Coroutine.Crashed (pid, e, _) ->
          Printf.printf "(rank %d crashed: %s)\n" pid (Printexc.to_string e))

let trace_cmd =
  let workload =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:"Workload to trace (see $(b,list)).")
  in
  let np =
    Arg.(
      value
      & opt (some int) None
      & info [ "np"; "n" ] ~docv:"N" ~doc:"Number of simulated MPI ranks.")
  in
  let limit =
    Arg.(
      value & opt int 200
      & info [ "limit" ] ~docv:"N" ~doc:"Maximum events to print.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a workload natively and print its message-flow trace.")
    Term.(const trace_run $ workload $ np $ limit)

(* ---- bench command: parallel-exploration scaling ---- *)

let bench_run workload np mixing_bound max_runs jobs_list output trace_out
    metrics_out =
  match find_entry workload with
  | None ->
      Printf.eprintf "unknown workload %S\n" workload;
      exit 2
  | Some entry ->
      let np = match np with Some np -> np | None -> entry.default_np in
      let state_config = State.make_config ?mixing_bound () in
      let trace = trace_out <> None in
      let measure jobs =
        let program = entry.build () in
        let report =
          Explorer.verify
            ~config:
              {
                Explorer.default_config with
                state_config;
                max_runs;
                jobs;
                trace;
              }
            ~np program
        in
        (jobs, report)
      in
      let results = List.map measure jobs_list in
      let base_wall =
        match results with
        | (_, r) :: _ -> r.Report.host_seconds
        | [] -> 0.0
      in
      Printf.printf "parallel exploration scaling: %s np=%d max-runs=%d\n"
        entry.key np max_runs;
      Printf.printf "%6s %14s %10s %12s %9s\n" "jobs" "interleavings"
        "findings" "wall-s" "speedup";
      List.iter
        (fun (jobs, (r : Report.t)) ->
          Printf.printf "%6d %14d %10d %12.3f %8.2fx\n%!" jobs
            r.Report.interleavings
            (List.length r.Report.findings)
            r.Report.host_seconds
            (base_wall /. Float.max 1e-9 r.Report.host_seconds))
        results;
      (match output with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          Printf.fprintf oc
            "{\n  \"bench\": \"parallel_explore\",\n  \"workload\": %S,\n\
            \  \"np\": %d,\n  \"max_runs\": %d,\n  \"results\": [\n" entry.key
            np max_runs;
          let n = List.length results in
          List.iteri
            (fun i (jobs, (r : Report.t)) ->
              Printf.fprintf oc
                "    {\"jobs\": %d, \"interleavings\": %d, \"findings\": %d, \
                 \"wall_seconds\": %.6f, \"total_virtual_seconds\": %.6f, \
                 \"speedup\": %.4f, \"match_attempts\": %d, \
                 \"piggyback_bytes\": %d, \"queue_waits\": %d}%s\n"
                jobs r.Report.interleavings
                (List.length r.Report.findings)
                r.Report.host_seconds r.Report.total_virtual_time
                (base_wall /. Float.max 1e-9 r.Report.host_seconds)
                (Obs.Metrics.counter_value r.Report.metrics
                   "mpi.match_attempts")
                (Obs.Metrics.counter_value r.Report.metrics
                   "dampi.piggyback_bytes")
                (hist_count r.Report.metrics "sched.queue_wait_s")
                (if i = n - 1 then "" else ","))
            results;
          Printf.fprintf oc "  ]\n}\n";
          close_out oc;
          Printf.printf "results written to %s\n" path);
      let last_report =
        match List.rev results with (_, r) :: _ -> Some r | [] -> None
      in
      (match (trace_out, last_report) with
      | Some path, Some r ->
          write_file path (Report.trace_json r);
          Printf.printf "trace of the last sweep point written to %s\n" path
      | _ -> ());
      (match (metrics_out, last_report) with
      | Some path, Some r ->
          write_file path (Report.metrics_json r);
          Printf.printf "metrics of the last sweep point written to %s\n" path
      | _ -> ())

let bench_cmd =
  let workload =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:"Workload to benchmark (see $(b,list)).")
  in
  let np =
    Arg.(
      value
      & opt (some int) None
      & info [ "np"; "n" ] ~docv:"N" ~doc:"Number of simulated MPI ranks.")
  in
  let mixing =
    Arg.(
      value
      & opt (some int) None
      & info [ "k"; "mixing-bound" ] ~docv:"K"
          ~doc:"Bounded-mixing window (default: unbounded).")
  in
  let max_runs =
    Arg.(
      value & opt int 100_000
      & info [ "max-runs" ] ~docv:"N" ~doc:"Interleaving budget.")
  in
  let jobs_list =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8 ]
      & info [ "j"; "jobs" ] ~docv:"N,..."
          ~doc:"Comma-separated worker-domain counts to sweep.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Also write the results as JSON to $(docv).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Trace every sweep point and write the last one's span timeline \
             as Chrome trace_event JSON to $(docv).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write the last sweep point's metrics as JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Measure wall-clock scaling of parallel interleaving exploration \
          over a sweep of worker-domain counts.")
    Term.(
      const bench_run $ workload $ np $ mixing $ max_runs $ jobs_list $ output
      $ trace_out $ metrics_out)

(* ---- stats command: one native run, operation + metric counters ---- *)

let stats_run workload np explore =
  match find_entry workload with
  | None ->
      Printf.eprintf "unknown workload %S\n" workload;
      exit 2
  | Some entry when explore ->
      (* A small pruned + cached exploration, so the cache.* and prune.*
         series carry real traffic (a single native run never populates
         them). *)
      let np = match np with Some np -> np | None -> entry.default_np in
      let report =
        Explorer.verify
          ~config:
            {
              Explorer.default_config with
              max_runs = 500;
              prune = true;
              prefix_cache = Some Dampi.Prefix_cache.default_budget_bytes;
            }
          ~np (entry.build ())
      in
      Printf.printf "%s np=%d (exploration: %d interleavings, %d pruned)\n\n"
        entry.key np report.Report.interleavings report.Report.runs_pruned;
      Format.printf "%a" Obs.Metrics.pp report.Report.metrics;
      if Report.has_errors report then exit 1
  | Some entry ->
      let np = match np with Some np -> np | None -> entry.default_np in
      let registry = Obs.Metrics.create ~shards:1 () in
      let rt, outcome =
        Mpi.Bind.exec
          ~metrics:(Obs.Metrics.shard registry 0)
          ~np (entry.build ())
      in
      Printf.printf "%s np=%d (one native run)\n\n" entry.key np;
      Format.printf "%a@." Mpi.Stats.pp (Mpi.Runtime.stats rt);
      Format.printf "%a" Obs.Metrics.pp (Obs.Metrics.snapshot registry);
      match outcome with
      | Sim.Coroutine.All_finished -> ()
      | Sim.Coroutine.Deadlock _ ->
          print_endline "\n(run deadlocked)";
          exit 1
      | Sim.Coroutine.Crashed (pid, e, _) ->
          Printf.printf "\n(rank %d crashed: %s)\n" pid (Printexc.to_string e);
          exit 1

let stats_cmd =
  let workload =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:"Workload to profile (see $(b,list)).")
  in
  let np =
    Arg.(
      value
      & opt (some int) None
      & info [ "np"; "n" ] ~docv:"N" ~doc:"Number of simulated MPI ranks.")
  in
  let explore =
    Arg.(
      value & flag
      & info [ "explore" ]
          ~doc:
            "Instead of one native run, run a small pruned exploration with \
             the prefix cache on and print the merged exploration metrics \
             (including the $(b,cache.*) and $(b,prune.*) series).")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a workload natively once and print its MPI operation counts \
          and runtime metrics.")
    Term.(const stats_run $ workload $ np $ explore)

(* ---- serve / submit / fetch: verification as a service ---- *)

let serve_known_params =
  [ "workload"; "np"; "clock"; "k"; "dual"; "prune"; "prefix-cache";
    "max-runs"; "jobs"; "quiet"; "checkpoint-every" ]

(* Admission-time validation of a submit's parameters, run inside the
   daemon before queueing. Returns the canonical label — the same format
   verify pins its checkpoints with, so serve-side resumes and prefix
   caches line up with standalone runs of the same configuration. *)
let serve_validate params =
  match List.assoc_opt "workload" params with
  | None -> Error "submit needs workload=<key>"
  | Some w -> (
      match find_entry w with
      | None -> Error (Printf.sprintf "unknown workload %S" w)
      | Some entry -> (
          try
            List.iter
              (fun (k, _) ->
                if not (List.mem k serve_known_params) then
                  raise (Bad_job (Printf.sprintf "unknown submit parameter %S" k)))
              params;
            let int_p key =
              Option.map
                (fun v ->
                  match int_of_string_opt v with
                  | Some n -> n
                  | None -> raise (Bad_job (Printf.sprintf "bad %s=%S" key v)))
                (List.assoc_opt key params)
            in
            let bool_p key default =
              match List.assoc_opt key params with
              | None -> default
              | Some "true" -> true
              | Some "false" -> false
              | Some v -> raise (Bad_job (Printf.sprintf "bad %s=%S" key v))
            in
            let np = Option.value (int_p "np") ~default:entry.default_np in
            if np < 1 then raise (Bad_job (Printf.sprintf "bad np=%d" np));
            let clock_name =
              Option.value (List.assoc_opt "clock" params) ~default:"lamport"
            in
            (match clock_name with
            | "lamport" | "vector" -> ()
            | other -> raise (Bad_job (Printf.sprintf "unknown clock %S" other)));
            (match int_p "prefix-cache" with
            | Some b when b < 1 ->
                raise (Bad_job "prefix-cache needs a positive byte budget")
            | _ -> ());
            (match int_p "max-runs" with
            | Some n when n < 1 -> raise (Bad_job "max-runs needs at least 1")
            | _ -> ());
            (match int_p "jobs" with
            | Some n when n < 1 -> raise (Bad_job "jobs needs at least 1")
            | _ -> ());
            (match int_p "checkpoint-every" with
            | Some n when n < 1 ->
                raise (Bad_job "checkpoint-every needs at least 1")
            | _ -> ());
            ignore (bool_p "quiet" false);
            Ok
              (Printf.sprintf "dampi %s np=%d clock=%s k=%d dual=%b prune=%b"
                 entry.key np clock_name
                 (Option.value (int_p "k") ~default:(-1))
                 (bool_p "dual" false) (bool_p "prune" true))
          with Bad_job msg -> Error msg))

(* One admitted job, executed inside the daemon's forked child. Always
   checkpointed into the state dir (that is what lets a daemon drain
   snapshot it) and resumed from that checkpoint when one exists; the
   rendered text is byte-identical to standalone [dampi verify] output. *)
let serve_run_job ~ckpt ~label ~params ~progress =
  let entry =
    match Option.bind (List.assoc_opt "workload" params) find_entry with
    | Some e -> e
    | None -> failwith "job params lost their workload (validate admitted it)"
  in
  let int_p key = Option.bind (List.assoc_opt key params) int_of_string_opt in
  let bool_p key default =
    match List.assoc_opt key params with
    | Some "true" -> true
    | Some "false" -> false
    | _ -> default
  in
  let np = Option.value (int_p "np") ~default:entry.default_np in
  let clock =
    match List.assoc_opt "clock" params with
    | Some "vector" -> (module Clocks.Vector : Clocks.Clock_intf.S)
    | _ -> (module Clocks.Lamport)
  in
  let state_config =
    State.make_config ~clock ?mixing_bound:(int_p "k")
      ~dual_clock:(bool_p "dual" false) ()
  in
  let robustness =
    {
      Explorer.default_robustness with
      checkpoint =
        Some
          {
            Explorer.path = ckpt;
            (* cadence only bounds SIGKILL-loss: a drain SIGTERM flushes
               the frontier regardless, so default coarse and cheap *)
            every = Option.value (int_p "checkpoint-every") ~default:100;
            label;
          };
    }
  in
  let resume =
    if not (Sys.file_exists ckpt) then None
    else
      match Dampi.Checkpoint.load ckpt with
      | Ok c
        when c.Dampi.Checkpoint.label = label && c.Dampi.Checkpoint.np = np ->
          Some c
      | Ok _ | Error _ -> None
  in
  let report =
    Explorer.verify
      ~config:
        {
          Explorer.default_config with
          state_config;
          max_runs =
            Option.value (int_p "max-runs")
              ~default:Explorer.default_config.Explorer.max_runs;
          jobs = Option.value (int_p "jobs") ~default:1;
          prune = bool_p "prune" true;
          prefix_cache = int_p "prefix-cache";
          progress = Some progress;
          robustness;
        }
      ?resume ~np (entry.build ())
  in
  if report.Report.interrupted then Dampi.Serve.Checkpointed
  else
    let text =
      if bool_p "quiet" false then
        Printf.sprintf "%s np=%d: %d interleavings, %d findings\n" entry.key np
          report.Report.interleavings
          (List.length report.Report.findings)
      else Format.asprintf "%a@." Report.pp report
    in
    Dampi.Serve.Completed
      { report = text; code = (if Report.has_errors report then 1 else 0) }

let serve_run listen state_dir parallel max_queue max_queue_bytes max_inflight
    metrics_out log_level =
  (match Obs.Log.level_of_string log_level with
  | Ok lvl -> Obs.Log.set_level lvl
  | Error msg ->
      Printf.eprintf "bad --log-level: %s\n" msg;
      exit 2);
  let addr =
    match listen with
    | None ->
        Printf.eprintf "serve needs --listen ADDR\n";
        exit 2
    | Some s -> (
        match Dampi.Wire.addr_of_string s with
        | Ok a -> a
        | Error msg ->
            Printf.eprintf "bad address %S: %s\n" s msg;
            exit 2)
  in
  if parallel < 1 then begin
    Printf.eprintf "--parallel needs at least 1 job slot\n";
    exit 2
  end;
  if max_queue < 1 || max_queue_bytes < 1 || max_inflight < 1 then begin
    Printf.eprintf
      "--max-queue, --max-queue-bytes and --max-client-inflight need \
       positive values\n";
    exit 2
  end;
  let registry = Obs.Metrics.create ~shards:1 () in
  let finish () =
    match metrics_out with
    | Some path ->
        write_file path (Obs.Metrics.to_json (Obs.Metrics.snapshot registry))
    | None -> ()
  in
  let cfg =
    {
      Dampi.Serve.addr;
      state_dir;
      limits =
        {
          Dampi.Serve.default_limits with
          parallel;
          max_queue;
          max_queue_bytes;
          max_client_inflight = max_inflight;
        };
      validate = serve_validate;
      run = serve_run_job;
      metrics = Some (Obs.Metrics.shard registry 0);
      ready =
        Some
          (fun a ->
            Printf.printf "listening on %s\n%!" (Dampi.Wire.addr_to_string a));
    }
  in
  match Dampi.Serve.serve cfg with
  | Ok code ->
      finish ();
      if code <> 0 then exit code
  | Error msg ->
      finish ();
      Printf.eprintf "%s\n" msg;
      exit 1

let serve_cmd =
  let listen =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Address to serve on ($(b,unix:PATH) or $(b,tcp:HOST:PORT)). \
             Required.")
  in
  let state_dir =
    Arg.(
      value
      & opt string "dampi-serve.d"
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:
            "Where the job journal, per-job checkpoints (and their warm \
             prefix-cache sidecars), and parked reports live. A restarted \
             daemon pointed at the same directory re-admits every lost job \
             exactly once.")
  in
  let parallel =
    Arg.(
      value & opt int 2
      & info [ "parallel" ] ~docv:"N"
          ~doc:"Concurrent job processes (each job is a forked child).")
  in
  let max_queue =
    Arg.(
      value & opt int 32
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Queued-job cap; a submit past it gets a one-line \
             $(b,reject queue-full).")
  in
  let max_queue_bytes =
    Arg.(
      value
      & opt int 1048576
      & info [ "max-queue-bytes" ] ~docv:"BYTES"
          ~doc:"Byte cap on queued job specs (same reject).")
  in
  let max_inflight =
    Arg.(
      value & opt int 4
      & info [ "max-client-inflight" ] ~docv:"N"
          ~doc:
            "Per-client cap on queued+running jobs ($(b,reject \
             client-cap)).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write the daemon's metrics snapshot (serve.jobs_*, queue \
             depth, per-job wall histograms) as JSON on exit.")
  in
  let log_level =
    Arg.(
      value & opt string "warn"
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:"Stderr log level: $(b,quiet), $(b,error), $(b,warn), \
                $(b,info) or $(b,debug).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the resident verification daemon: accepts $(b,submit) jobs \
          from many clients, runs each in a crash-isolated child process, \
          streams progress, and parks reports for $(b,fetch). SIGTERM \
          drains gracefully (in-flight jobs checkpoint and the journal \
          re-admits them on restart); a second SIGINT forces shutdown.")
    Term.(
      const serve_run $ listen $ state_dir $ parallel $ max_queue
      $ max_queue_bytes $ max_inflight $ metrics_out $ log_level)

let dial_daemon connect =
  let addr =
    match Dampi.Wire.addr_of_string connect with
    | Ok a -> a
    | Error msg ->
        Printf.eprintf "bad address %S: %s\n" connect msg;
        exit 2
  in
  let sa =
    try Dampi.Wire.sockaddr_of_addr addr
    with Not_found | Failure _ | Unix.Unix_error _ ->
      Printf.eprintf "cannot resolve %s: no such host or address\n" connect;
      exit 2
  in
  let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sa
   with Unix.Unix_error (e, _, _) ->
     Printf.eprintf "cannot connect to %s: %s (is the daemon running?)\n"
       connect (Unix.error_message e);
     exit 2);
  (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

(* Shared tail of submit and fetch: print the report, surface a crashed
   job's classification, exit with the job's code. *)
let finish_job ~report_lines ~status ~code ~msg ~backtrace =
  List.iter print_endline report_lines;
  (match status with
  | "crashed" ->
      Printf.eprintf "job failed: %s\n" msg;
      if backtrace <> "" then Printf.eprintf "%s" backtrace
  | "checkpointed" ->
      Printf.eprintf "daemon draining; job journaled for restart\n"
  | "cancelled" -> Printf.eprintf "job cancelled\n"
  | _ -> ());
  if code <> 0 then exit code

let submit_run connect workload np clock_name mixing_bound dual no_prune
    prefix_cache max_runs jobs ckpt_every quiet on_disconnect detach progress =
  let connect =
    match connect with
    | Some c -> c
    | None ->
        Printf.eprintf "submit needs --connect ADDR\n";
        exit 2
  in
  let ondisc =
    match Dampi.Serve.on_disconnect_of_string on_disconnect with
    | Ok _ when detach -> Dampi.Serve.Detach
    | Ok o -> o
    | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 2
  in
  (match prefix_cache with
  | Some b when b < 1 ->
      Printf.eprintf "--prefix-cache needs a positive byte budget\n";
      exit 2
  | _ -> ());
  ignore_sigpipe ();
  let params =
    [ ("workload", workload) ]
    @ (match np with Some n -> [ ("np", string_of_int n) ] | None -> [])
    @ (if clock_name = "lamport" then [] else [ ("clock", clock_name) ])
    @ (match mixing_bound with
      | Some k -> [ ("k", string_of_int k) ]
      | None -> [])
    @ (if dual then [ ("dual", "true") ] else [])
    @ (if no_prune then [ ("prune", "false") ] else [])
    @ (match prefix_cache with
      | Some b -> [ ("prefix-cache", string_of_int b) ]
      | None -> [])
    @ (match max_runs with
      | Some n -> [ ("max-runs", string_of_int n) ]
      | None -> [])
    @ (match jobs with Some n -> [ ("jobs", string_of_int n) ] | None -> [])
    @ (match ckpt_every with
      | Some n -> [ ("checkpoint-every", string_of_int n) ]
      | None -> [])
    @ if quiet then [ ("quiet", "true") ] else []
  in
  let ic, oc = dial_daemon connect in
  (try
     output_string oc
       (Dampi.Serve.submit_line ~params ~on_disconnect:ondisc ^ "\n");
     flush oc
   with Sys_error _ ->
     Printf.eprintf "connection closed by daemon\n";
     exit 1);
  let report_lines = ref [] in
  let ticking = ref false in
  let rec loop () =
    match Dampi.Serve.read_event ic with
    | Error e ->
        if !ticking then safe_eprintf "\n";
        Printf.eprintf "%s\n" e;
        exit 1
    | Ok (Dampi.Serve.Accepted id) ->
        if detach then begin
          Printf.printf "accepted id=%d\n" id;
          exit 0
        end
        else loop ()
    | Ok (Dampi.Serve.Rejected r) ->
        Printf.printf "reject %s\n" r;
        exit 1
    | Ok (Dampi.Serve.Errored { reason; _ }) ->
        Printf.eprintf "%s\n" reason;
        exit 2
    | Ok (Dampi.Serve.Progress (_, kvs)) ->
        if progress then begin
          ticking := true;
          let v k = Option.value (List.assoc_opt k kvs) ~default:"-" in
          safe_eprintf "\r%-76s"
            (Printf.sprintf
               "%s: runs %s  %s replays/s  frontier %s  pruned %s  findings \
                %s"
               workload (v "runs") (v "replays_per_s") (v "frontier")
               (v "pruned") (v "findings"))
        end;
        loop ()
    | Ok (Dampi.Serve.Report (_, lines)) ->
        report_lines := lines;
        loop ()
    | Ok (Dampi.Serve.Pending _) -> loop ()
    | Ok (Dampi.Serve.Done { status; code; msg; backtrace; _ }) ->
        if !ticking then safe_eprintf "\n";
        finish_job ~report_lines:!report_lines ~status ~code ~msg ~backtrace
  in
  loop ()

let submit_cmd =
  let workload =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:"Workload to verify (see $(b,list)).")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:
            "Daemon address ($(b,unix:PATH) or $(b,tcp:HOST:PORT)) — what \
             $(b,dampi serve --listen) was given. Required.")
  in
  let np =
    Arg.(
      value
      & opt (some int) None
      & info [ "np"; "n" ] ~docv:"N" ~doc:"Number of simulated MPI ranks.")
  in
  let clock =
    Arg.(
      value & opt string "lamport"
      & info [ "clock" ] ~docv:"CLOCK"
          ~doc:"Clock algebra: $(b,lamport) or $(b,vector).")
  in
  let mixing_bound =
    Arg.(
      value
      & opt (some int) None
      & info [ "k"; "mixing-bound" ] ~docv:"K" ~doc:"Mixing bound.")
  in
  let dual =
    Arg.(
      value & flag
      & info [ "dual-clock" ] ~doc:"Run both clock algebras and compare.")
  in
  let no_prune =
    Arg.(value & flag & info [ "no-prune" ] ~doc:"Disable sleep-set pruning.")
  in
  let prefix_cache =
    Arg.(
      value
      & opt (some int) None
      & info [ "prefix-cache" ] ~docv:"BYTES"
          ~doc:
            "Replay memoization byte budget. The cache sidecar lives in \
             the daemon's state dir, so a repeat submission of the same \
             configuration starts warm.")
  in
  let max_runs =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-runs" ] ~docv:"N" ~doc:"Interleaving budget.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains inside the job's child process.")
  in
  let ckpt_every =
    Arg.(
      value
      & opt (some int) None
      & info [ "checkpoint-every" ] ~docv:"RUNS"
          ~doc:
            "Checkpoint cadence inside the daemon (default 100 runs); a \
             drain SIGTERM flushes the frontier regardless, so the \
             cadence only bounds what a hard kill can lose.")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"One-line summary only.")
  in
  let on_disconnect =
    Arg.(
      value & opt string "cancel"
      & info [ "on-disconnect" ] ~docv:"POLICY"
          ~doc:
            "What the daemon does with this job if the connection drops: \
             $(b,cancel) it, or $(b,detach) it to finish and park its \
             report for $(b,fetch).")
  in
  let detach =
    Arg.(
      value & flag
      & info [ "detach" ]
          ~doc:
            "Print $(b,accepted id=N) and exit as soon as the job is \
             admitted (implies $(b,--on-disconnect detach)); collect the \
             report later with $(b,dampi fetch).")
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:"Redraw the daemon's streamed progress on stderr.")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit a verification job to a running $(b,dampi serve) daemon, \
          stream its progress, and print its report. Exit code mirrors \
          $(b,verify): 0 clean, 1 findings, 3 interrupted.")
    Term.(
      const submit_run $ connect $ workload $ np $ clock $ mixing_bound
      $ dual $ no_prune $ prefix_cache $ max_runs $ jobs $ ckpt_every
      $ quiet $ on_disconnect $ detach $ progress)

let fetch_run connect id =
  let connect =
    match connect with
    | Some c -> c
    | None ->
        Printf.eprintf "fetch needs --connect ADDR\n";
        exit 2
  in
  ignore_sigpipe ();
  let ic, oc = dial_daemon connect in
  (try
     output_string oc (Dampi.Serve.fetch_line id ^ "\n");
     flush oc
   with Sys_error _ ->
     Printf.eprintf "connection closed by daemon\n";
     exit 1);
  let report_lines = ref [] in
  let rec loop () =
    match Dampi.Serve.read_event ic with
    | Error e ->
        Printf.eprintf "%s\n" e;
        exit 1
    | Ok (Dampi.Serve.Report (_, lines)) ->
        report_lines := lines;
        loop ()
    | Ok (Dampi.Serve.Pending { state; _ }) ->
        Printf.eprintf "job %d is still %s\n" id state;
        exit 3
    | Ok (Dampi.Serve.Errored { reason; _ }) ->
        Printf.eprintf "%s\n" reason;
        exit 2
    | Ok (Dampi.Serve.Done { status; code; msg; backtrace; _ }) ->
        finish_job ~report_lines:!report_lines ~status ~code ~msg ~backtrace
    | Ok _ -> loop ()
  in
  loop ()

let fetch_cmd =
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR" ~doc:"Daemon address. Required.")
  in
  let id =
    Arg.(
      required
      & pos 0 (some int) None
      & info [] ~docv:"ID"
          ~doc:"Job id, as printed by $(b,submit) ($(b,accepted id=N)).")
  in
  Cmd.v
    (Cmd.info "fetch"
       ~doc:
         "Collect the parked report of a detached or recovered job from a \
          $(b,dampi serve) daemon. A report can be fetched exactly once. \
          Exits 3 while the job is still queued or running.")
    Term.(const fetch_run $ connect $ id)

let main =
  Cmd.group
    (Cmd.info "dampi" ~version:"1.0.0"
       ~doc:
         "Distributed Analyzer for MPI programs — dynamic formal verification \
          over a simulated MPI runtime (SC'10 reproduction).")
    [ list_cmd; verify_cmd; replay_cmd; trace_cmd; stats_cmd; bench_cmd;
      worker_cmd; top_cmd; serve_cmd; submit_cmd; fetch_cmd ]

let () = exit (Cmd.eval main)
