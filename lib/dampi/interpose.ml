(** The DAMPI interposition layer (Algorithm 1 + §II-D piggyback protocol).

    [Wrap (M) (Cfg)] produces an {!Mpi.Mpi_intf.MPI_CORE} that behaves like
    [M] while maintaining logical clocks, exchanging them through piggyback
    messages on shadow communicators, recording epochs and potential
    matches, enforcing guided-replay decisions, and running the §V
    limitation monitor. Target programs instantiate against the wrapped
    module unmodified — the OCaml analogue of relinking against PnMPI.

    Piggyback protocol (§II-D, "separate messages" mechanism):
    - every user communicator has a {e shadow} communicator, created
      collectively when the user communicator is created;
    - every send posts a second send of the encoded clock on the shadow,
      with the user message's tag;
    - a deterministic receive posts its shadow receive immediately;
    - a {e wildcard} receive defers the shadow receive until [wait]/[test]
      reveals the matched source — posting it blindly could pair with the
      wrong sender and deadlock the tool (reproduced in the test suite). *)

module Payload = Mpi.Payload
module Types = Mpi.Types

module type WRAPPED = sig
  include Mpi.Mpi_intf.MPI_CORE

  val init_tool : unit -> unit
  (** Collective tool prologue: every rank must call it before any other
      MPI operation (creates the world shadow communicator). *)

  val finalize_tool : unit -> unit
  (** Tool epilogue; runs the end-of-execution checks local to each rank. *)

  val shadow_ctxs : unit -> int list
  (** Contexts of tool-created communicators, for leak-report filtering. *)
end

module Wrap
    (M : Mpi.Mpi_intf.MPI_CORE) (Cfg : sig
      val st : State.t
    end) : WRAPPED with type comm = M.comm and type request = M.request =
struct
  type comm = M.comm
  type request = M.request

  let st = Cfg.st
  let any_source = M.any_source
  let any_tag = M.any_tag
  let comm_world = M.comm_world
  let rank = M.rank
  let size = M.size
  let comm_id = M.comm_id
  let world_rank = M.world_rank
  let world_size = M.world_size
  let request_id = M.request_id
  let wtime = M.wtime
  let work = M.work

  (* ---- Shadow communicators ---- *)

  let shadow : (int, M.comm) Hashtbl.t = Hashtbl.create 8

  let shadow_of comm =
    match Hashtbl.find_opt shadow (M.comm_id comm) with
    | Some s -> s
    | None ->
        Types.mpi_errorf
          "DAMPI: no shadow communicator for ctx %d (init_tool not called?)"
          (M.comm_id comm)

  (* User communicators seen so far, for the finalize-time drain. *)
  let user_comms : (int, M.comm) Hashtbl.t = Hashtbl.create 8

  (* Collective: every member of [user_comm] must enter. All ranks obtain
     the same shadow object; the table write is idempotent. *)
  let make_shadow user_comm =
    let s = M.comm_dup user_comm in
    Hashtbl.replace shadow (M.comm_id user_comm) s;
    Hashtbl.replace user_comms (M.comm_id user_comm) user_comm

  let shadow_ctxs () =
    Hashtbl.fold (fun _ s acc -> M.comm_id s :: acc) shadow []

  let init_tool () = make_shadow M.comm_world

  (* ---- Per-request bookkeeping ---- *)

  type req_info = {
    ri_comm : M.comm;
    ri_pb : M.request option;  (* posted shadow receive/send, if any *)
    ri_epoch : Epoch.t option;  (* for self-run wildcard receives *)
    ri_recv : bool;
    ri_wildcard : bool;  (* posted with any_source (self or guided) *)
  }

  let info : (int, req_info) Hashtbl.t = Hashtbl.create 64

  (* ---- Clock piggyback helpers ---- *)

  let me () = M.world_rank ()
  let inline_mode = st.State.config.State.piggyback = State.Inline

  (* In-replay poison check: every interposed MPI call polls the scheduler's
     cancellation flag, so a poisoned replay aborts at its next call instead
     of running to the end (raises [State.Replay_cancelled]). *)
  let check () = State.check_poison st

  (* Wire size of one piggybacked clock, to hide it from user-visible
     statuses under inline packing. Probed through a throwaway payload whose
     buffer goes straight back to the free list. *)
  let clock_bytes =
    let p = State.clock_payload st 0 in
    let bytes = Payload.size_bytes p in
    State.release_clock_buf st (State.clock_of_payload st p);
    bytes

  let pb_send ~tag ~dest comm =
    State.count_piggyback st ~bytes:clock_bytes;
    M.isend ~tag ~dest (shadow_of comm) (State.clock_payload st (me ()))

  (* Split an inline-packed payload into (clock, user part). *)
  let unpack_inline payload =
    match payload with
    | Payload.Pair (clock, user) -> (clock, user)
    | _ -> Types.mpi_errorf "DAMPI: inline piggyback missing on message"

  (* ---- Sends ---- *)

  let wrap_send ~sync ?(tag = 0) ~dest comm payload =
    check ();
    let me = me () in
    State.monitor_clock_escape st ~me ~op:(if sync then "ssend" else "send");
    let send = if sync then M.issend else M.isend in
    let req, pb =
      if inline_mode then begin
        (* Datatype-packing mechanism: the clock rides inside the user
           message; costs extra bytes on the wire, no extra message. *)
        State.count_piggyback st ~bytes:clock_bytes;
        ( send ~tag ~dest comm
            (Payload.Pair (State.clock_payload st me, payload)),
          None )
      end
      else
        let req = send ~tag ~dest comm payload in
        (req, Some (pb_send ~tag ~dest comm))
    in
    Hashtbl.replace info (M.request_id req)
      {
        ri_comm = comm;
        ri_pb = pb;
        ri_epoch = None;
        ri_recv = false;
        ri_wildcard = false;
      };
    req

  let isend ?tag ~dest comm payload = wrap_send ~sync:false ?tag ~dest comm payload
  let issend ?tag ~dest comm payload = wrap_send ~sync:true ?tag ~dest comm payload

  (* ---- Receives ---- *)

  let post_plain_recv ?src ?tag comm ~wildcard ~epoch =
    let req = M.irecv ?src ?tag comm in
    let pb =
      if inline_mode || wildcard then None
        (* inline: the clock arrives with the message itself;
           separate + wildcard: deferred to wait/test (§II-D) *)
      else Some (M.irecv ?src ?tag (shadow_of comm))
    in
    Hashtbl.replace info (M.request_id req)
      { ri_comm = comm; ri_pb = pb; ri_epoch = epoch; ri_recv = true; ri_wildcard = wildcard };
    (match epoch with
    | Some e -> State.watch_wildcard st ~req_uid:(M.request_id req) e
    | None -> ());
    req

  let irecv ?(src = Types.any_source) ?(tag = Types.any_tag) comm =
    check ();
    let me = me () in
    if src = Types.any_source then begin
      (* Tool CPU cost of handling a non-deterministic event. *)
      M.work st.State.config.State.epoch_cost;
      State.refresh_mode st me;
      match st.State.mode.(me) with
      | State.Guided_run -> (
          match State.guided_src st me ~kind:Epoch.Wildcard_recv with
          | Some forced ->
              (* Determinize: issue as a specific-source receive, but keep
                 the clock evolution of the parent run. *)
              State.tick st me;
              post_plain_recv ~src:forced ~tag comm ~wildcard:true ~epoch:None
          | None ->
              (* Replay divergence (recorded); fall back to self-run. *)
              let epoch =
                State.record_epoch st ~me ~kind:Epoch.Wildcard_recv
                  ~ctx:(M.comm_id comm) ~tag
              in
              if State.in_abstracted_loop st me then
                epoch.Epoch.expandable <- false;
              post_plain_recv ~src ~tag comm ~wildcard:true ~epoch:(Some epoch))
      | State.Self_run ->
          let epoch =
            State.record_epoch st ~me ~kind:Epoch.Wildcard_recv
              ~ctx:(M.comm_id comm) ~tag
          in
          if State.in_abstracted_loop st me then
            epoch.Epoch.expandable <- false;
          post_plain_recv ~src ~tag comm ~wildcard:true ~epoch:(Some epoch)
    end
    else post_plain_recv ~src ~tag comm ~wildcard:false ~epoch:None

  (* ---- Persistent requests: each activation goes through the wrapped
     primitives, so every start is instrumented like a fresh post ---- *)

  type prequest =
    | Send_template of { tag : int; dest : int; pcomm : comm; payload : Payload.t }
    | Recv_template of { src : int; tag : int; pcomm : comm }

  let send_init ?(tag = 0) ~dest comm payload =
    Send_template { tag; dest; pcomm = comm; payload }

  let recv_init ?(src = Types.any_source) ?(tag = Types.any_tag) comm =
    Recv_template { src; tag; pcomm = comm }

  (* ---- Completion ---- *)

  (* Post-process one completed request: collect its piggyback clock, merge,
     run the late-message analysis, and close its epoch. Returns the status
     as the user should see it (inline packing hides the clock bytes). *)
  let on_completion req (status : Types.status) =
    let uid = M.request_id req in
    match Hashtbl.find_opt info uid with
    | None -> status (* already processed (waitany + later waitall, etc.) *)
    | Some ri ->
        Hashtbl.remove info uid;
        if not ri.ri_recv then begin
          (* Send: just retire the piggyback send. *)
          (match ri.ri_pb with Some pb -> ignore (M.wait pb) | None -> ());
          status
        end
        else begin
          let my = me () in
          let pb_payload =
            match ri.ri_pb with
            | Some pb ->
                ignore (M.wait pb);
                M.recv_data pb
            | None ->
                if inline_mode then fst (unpack_inline (M.recv_data req))
                else
                  (* Deferred wildcard piggyback: now that the source is
                     known, receive it deterministically (§II-D). *)
                  let data, _ =
                    M.recv ~src:status.Types.source ~tag:status.Types.tag
                      (shadow_of ri.ri_comm)
                  in
                  data
          in
          let send_enc = State.clock_of_payload st pb_payload in
          (* Tool CPU cost of piggyback extraction + analysis. *)
          M.work st.State.config.State.late_check_cost;
          (* FindPotentialMatches: match this message against the epochs it
             arrived too late for. *)
          State.find_potential_matches st ~me:my ~src_rank:status.Types.source
            ~ctx:(M.comm_id ri.ri_comm) ~tag:status.Types.tag ~send_enc;
          State.merge_in st my send_enc;
          (* The piggyback buffer is consumed: each point-to-point clock
             message is completed exactly once (the [info] table guards
             re-processing), so its buffer can rejoin the free list.
             Collective clock payloads are NOT released — the simulator may
             hand every rank the same merged object. *)
          State.release_clock_buf st send_enc;
          State.unwatch_wildcard st ~req_uid:uid;
          (match ri.ri_epoch with
          | Some epoch ->
              State.complete_epoch st epoch ~matched_src:status.Types.source
          | None -> ());
          if inline_mode then
            { status with Types.count = status.Types.count - clock_bytes }
          else status
        end

  let recv_data req =
    let data = M.recv_data req in
    if inline_mode then snd (unpack_inline data) else data

  (* Encountering any Wait/Test synchronizes the dual clocks (§V). *)
  let wait req =
    check ();
    State.sync_xmit st (me ());
    let status = M.wait req in
    on_completion req status

  let test req =
    check ();
    State.sync_xmit st (me ());
    match M.test req with
    | None -> None
    | Some status -> Some (on_completion req status)

  let waitall reqs = List.map wait reqs

  let waitany reqs =
    check ();
    State.sync_xmit st (me ());
    let i, status = M.waitany reqs in
    (i, on_completion (List.nth reqs i) status)

  let testall reqs =
    check ();
    State.sync_xmit st (me ());
    match M.testall reqs with
    | None -> None
    | Some statuses -> Some (List.map2 on_completion reqs statuses)

  let recv ?src ?tag comm =
    let req = irecv ?src ?tag comm in
    let status = wait req in
    (recv_data req, status)

  let sendrecv ?(stag = 0) ?(rtag = Types.any_tag) ~dest ~src comm payload =
    (* Composed from the wrapped primitives so every piece is instrumented;
       note [src] here is a concrete rank (MPI allows ANY_SOURCE, and so do
       we — it then behaves as a wildcard receive). *)
    let sreq = isend ~tag:stag ~dest comm payload in
    let rreq = irecv ~src ~tag:rtag comm in
    let statuses = waitall [ sreq; rreq ] in
    match statuses with
    | [ _; rstatus ] -> (recv_data rreq, rstatus)
    | _ -> assert false

  let send ?tag ~dest comm payload =
    ignore (wait (isend ?tag ~dest comm payload))

  let ssend ?tag ~dest comm payload =
    ignore (wait (issend ?tag ~dest comm payload))

  let start = function
    | Send_template { tag; dest; pcomm; payload } ->
        isend ~tag ~dest pcomm payload
    | Recv_template { src; tag; pcomm } -> irecv ~src ~tag pcomm

  let startall ps = List.map start ps

  (* ---- Probes (§II-E: wildcard probes are epochs; no piggyback) ---- *)

  let record_probe_epoch comm ~tag =
    let me = me () in
    let epoch =
      State.record_epoch st ~me ~kind:Epoch.Wildcard_probe
        ~ctx:(M.comm_id comm) ~tag
    in
    if State.in_abstracted_loop st me then epoch.Epoch.expandable <- false;
    epoch

  let probe ?(src = Types.any_source) ?(tag = Types.any_tag) comm =
    check ();
    let me = me () in
    if src = Types.any_source then begin
      State.refresh_mode st me;
      let forced =
        match st.State.mode.(me) with
        | State.Guided_run -> State.guided_src st me ~kind:Epoch.Wildcard_probe
        | State.Self_run -> None
      in
      match forced with
      | Some fsrc ->
          State.tick st me;
          M.probe ~src:fsrc ~tag comm
      | None ->
          let epoch = record_probe_epoch comm ~tag in
          let status = M.probe ~src ~tag comm in
          State.complete_epoch st epoch ~matched_src:status.Types.source;
          status
    end
    else M.probe ~src ~tag comm

  let iprobe ?(src = Types.any_source) ?(tag = Types.any_tag) comm =
    check ();
    let me = me () in
    if src = Types.any_source then begin
      State.refresh_mode st me;
      let forced =
        match st.State.mode.(me) with
        | State.Guided_run -> State.guided_src st me ~kind:Epoch.Wildcard_probe
        | State.Self_run -> None
      in
      match forced with
      | Some fsrc -> (
          match M.iprobe ~src:fsrc ~tag comm with
          | Some status ->
              State.tick st me;
              Some status
          | None -> None)
      | None -> (
          (* Only a successful non-blocking probe is an epoch (§II-E). *)
          match M.iprobe ~src ~tag comm with
          | Some status ->
              let epoch = record_probe_epoch comm ~tag in
              State.complete_epoch st epoch ~matched_src:status.Types.source;
              Some status
          | None -> None)
    end
    else M.iprobe ~src ~tag comm

  (* ---- Collectives: clock exchange mirrors each operation's semantics
     (§II-E "MPI Collectives") ---- *)

  let clock_allreduce comm =
    let my = me () in
    State.monitor_clock_escape st ~me:my ~op:"collective";
    State.count_piggyback st ~bytes:clock_bytes;
    let merged =
      M.allreduce ~op:Types.Max (shadow_of comm) (State.clock_payload st my)
    in
    State.merge_in st my (State.clock_of_payload st merged)

  let clock_bcast ~root comm =
    let my = me () in
    if M.rank comm = root then begin
      State.monitor_clock_escape st ~me:my ~op:"bcast";
      State.count_piggyback st ~bytes:clock_bytes
    end;
    let root_clock =
      M.bcast ~root (shadow_of comm) (State.clock_payload st my)
    in
    if M.rank comm <> root then
      State.merge_in st my (State.clock_of_payload st root_clock)

  let clock_reduce ~root comm =
    let my = me () in
    if M.rank comm <> root then begin
      State.monitor_clock_escape st ~me:my ~op:"reduce";
      State.count_piggyback st ~bytes:clock_bytes
    end;
    match M.reduce ~root ~op:Types.Max (shadow_of comm) (State.clock_payload st my) with
    | Some merged -> State.merge_in st my (State.clock_of_payload st merged)
    | None -> ()

  let barrier comm =
    check ();
    M.barrier comm;
    clock_allreduce comm

  let bcast ~root comm payload =
    check ();
    let result = M.bcast ~root comm payload in
    clock_bcast ~root comm;
    result

  let reduce ~root ~op comm payload =
    check ();
    let result = M.reduce ~root ~op comm payload in
    clock_reduce ~root comm;
    result

  let allreduce ~op comm payload =
    check ();
    let result = M.allreduce ~op comm payload in
    clock_allreduce comm;
    result

  let gather ~root comm payload =
    check ();
    let result = M.gather ~root comm payload in
    clock_reduce ~root comm;
    result

  let allgather comm payload =
    check ();
    let result = M.allgather comm payload in
    clock_allreduce comm;
    result

  let scatter ~root comm payloads =
    check ();
    let result = M.scatter ~root comm payloads in
    clock_bcast ~root comm;
    result

  let alltoall comm payloads =
    check ();
    let result = M.alltoall comm payloads in
    clock_allreduce comm;
    result

  let exscan ~op comm payload =
    check ();
    let result = M.exscan ~op comm payload in
    (* Rank r receives from ranks 0..r-1: the exclusive Max scan of the
       clocks is the exact prefix merge; rank 0 receives nothing. *)
    let my = me () in
    (* Ranks below the last transmit their clock to higher ranks. *)
    if M.rank comm < M.size comm - 1 then begin
      State.monitor_clock_escape st ~me:my ~op:"exscan";
      State.count_piggyback st ~bytes:clock_bytes
    end;
    (match M.exscan ~op:Types.Max (shadow_of comm) (State.clock_payload st my) with
    | Payload.Unit -> () (* rank 0 *)
    | merged -> State.merge_in st my (State.clock_of_payload st merged));
    result

  let reduce_scatter_block ~op comm payloads =
    check ();
    let result = M.reduce_scatter_block ~op comm payloads in
    (* Everyone receives a slice reduced over everyone: full exchange. *)
    clock_allreduce comm;
    result

  let scan ~op comm payload =
    check ();
    let result = M.scan ~op comm payload in
    (* Rank r effectively receives from ranks 0..r-1: an inclusive Max scan
       of the clocks delivers exactly the prefix merge. *)
    let my = me () in
    State.monitor_clock_escape st ~me:my ~op:"scan";
    State.count_piggyback st ~bytes:clock_bytes;
    let merged =
      M.scan ~op:Types.Max (shadow_of comm) (State.clock_payload st my)
    in
    State.merge_in st my (State.clock_of_payload st merged);
    result

  (* ---- Communicator management ---- *)

  let comm_group = M.comm_group

  let comm_create comm group =
    check ();
    let user = M.comm_create comm group in
    (* Only the new communicator's members create its shadow (collective
       over the new comm); everyone exchanged clocks over the parent. *)
    (match user with Some c -> make_shadow c | None -> ());
    clock_allreduce comm;
    user

  let comm_dup comm =
    check ();
    let user = M.comm_dup comm in
    make_shadow user;
    clock_allreduce comm;
    user

  let comm_split ~color ~key comm =
    check ();
    let user = M.comm_split ~color ~key comm in
    (* Collective over the new sub-communicator: all its members are here. *)
    make_shadow user;
    clock_allreduce comm;
    user

  let comm_free comm =
    (match Hashtbl.find_opt shadow (M.comm_id comm) with
    | Some s -> M.comm_free s
    | None -> ());
    Hashtbl.remove user_comms (M.comm_id comm);
    M.comm_free comm

  (* ---- Misc ---- *)

  let pcontrol level =
    State.pcontrol st (me ()) level;
    M.pcontrol level

  (* Finalize-time drain: a late message the application never receives
     (e.g. P2's send in the paper's Fig. 3, where P1 posts a single
     wildcard receive) still defines alternate matches. At finalize every
     rank synchronizes — in the simulator all in-flight messages are then
     queued — and probes off every remaining message together with its
     piggyback, feeding the late-message analysis. *)
  let drain_comm comm =
    let my = me () in
    let rec loop () =
      match M.iprobe ~src:M.any_source ~tag:M.any_tag comm with
      | None -> ()
      | Some status ->
          let data, _ =
            M.recv ~src:status.Types.source ~tag:status.Types.tag comm
          in
          let pb =
            if inline_mode then fst (unpack_inline data)
            else
              fst
                (M.recv ~src:status.Types.source ~tag:status.Types.tag
                   (shadow_of comm))
          in
          let send_enc = State.clock_of_payload st pb in
          State.find_potential_matches st ~me:my
            ~src_rank:status.Types.source ~ctx:(M.comm_id comm)
            ~tag:status.Types.tag ~send_enc;
          State.release_clock_buf st send_enc;
          loop ()
    in
    loop ()

  let finalize_tool () =
    M.barrier (shadow_of M.comm_world);
    Hashtbl.iter (fun _ comm -> drain_comm comm) user_comms
end
