(** Domain-parallel work queue for guided replays (§IV of the paper).

    DAMPI's exploration is embarrassingly parallel once the initial self run
    has produced the frontier: every guided interleaving is an independent
    re-execution from [MPI_Init], so the only shared state a worker needs is
    the queue of pending fork decisions and the (externally owned) findings
    table. This module provides exactly that queue: a mutex-protected deque
    of work items served to a pool of OCaml 5 [Domain]s, with a cooperative
    run budget and cooperative cancellation.

    The queue is sharded: each worker owns a deque and pushes/pops at its
    near end (LIFO under {!Lifo}, giving depth-first locality), while idle
    workers steal from the far end of a victim's deque — the shallowest
    item, whose subtree is the largest. The hot path therefore touches only
    the owner's lock; cross-worker traffic happens only on steals,
    snapshots, and the idle path.

    Executing one item may discover follow-on items (the child frontier of
    the replay); the scheduler terminates when the queue is empty {e and} no
    worker is still executing — an empty queue alone is not quiescence.

    With [jobs = 1] no domain is spawned and items execute inline on the
    calling domain, in exactly the order a recursive depth-first walk would
    visit them (under {!Lifo}); the sequential explorer is literally the
    parallel one with one worker. *)

type order =
  | Lifo  (** depth-first: the head of the last pushed batch pops first *)
  | Fifo  (** breadth-first: batches pop in arrival order *)

type worker_stats = {
  worker_id : int;
  mutable items_run : int;  (** work items this worker executed *)
  mutable steals : int;
      (** items this worker claimed from another worker's deque *)
  mutable queue_waits : int;
      (** times this worker blocked on an empty (but live) queue *)
  mutable wait_seconds : float;
      (** host seconds this worker spent blocked on the queue *)
}

type 'a t

val create :
  ?order:order ->
  jobs:int ->
  ?budget:int ->
  ?metrics:Obs.Metrics.shard ->
  ?profile:bool ->
  ?admit:('a -> bool) ->
  unit ->
  'a t
(** [create ~jobs ()] makes a scheduler served by [jobs] workers (clamped to
    at least 1). [budget] caps the total number of items ever claimed for
    execution (default: unlimited); items beyond the budget stay queued and
    are reported by {!pending}. [metrics] attaches an observability shard
    ([sched.queue_wait_s], [sched.frontier_size], [sched.steals]); every
    write to it happens under a scheduler-owned mutex, so pass a shard no
    worker owns. [profile] mirrors the queue-wait observations into
    [profile.sched_wait_s], the uniform namespace [--profile] exports. [admit] filters every enqueue path ({!push}, {!push_batch},
    and children published by {!run}): an item it rejects is never inserted.
    It runs on whichever thread publishes, so it must be thread-safe; the
    explorer uses it for duplicate-schedule detection at the frontier. *)

val push : 'a t -> 'a -> unit
(** Add one item. Under {!Lifo} it becomes the next item to pop. *)

val push_batch : 'a t -> 'a list -> unit
(** Add a batch atomically, preserving the invariant that the {e first}
    element of the batch is the first of the batch to pop (under {!Lifo} the
    whole batch goes on top of the stack in order; under {!Fifo} it is
    appended in order). *)

val cancel : 'a t -> unit
(** Cooperative cancellation: no further items are claimed; queued work is
    left in place (see {!pending}); items already executing run to
    completion. Idempotent. *)

val cancelled : 'a t -> bool

val pending : 'a t -> int
(** Items still queued (dropped work, after a cancellation). Children
    returned by items that complete after a cancellation are still pushed
    (though never claimed), so after {!run} returns from a cancelled
    exploration the queue is the exact outstanding frontier — what
    checkpointing serializes. *)

val snapshot : 'a t -> 'a list
(** A consistent cut of the outstanding work: every queued item plus every
    item currently executing on a worker, read with every deque lock held
    at once. In-flight items are included because their children are not
    published yet; a resume that re-runs them regenerates exactly their
    subtrees. *)

val executed : 'a t -> int
(** Items claimed and handed to a worker. *)

val run : 'a t -> (worker:int -> 'a -> 'a list) -> unit
(** [run t f] drains the queue. Each worker loops: claim an item (consuming
    one unit of budget), execute [f ~worker item] {e outside} the lock, then
    push the returned follow-on items. Returns when the queue is drained,
    the budget is exhausted, or {!cancel} was called. With [jobs = 1] this
    runs inline; otherwise worker 0 runs on the calling domain and workers
    [1 .. jobs-1] on fresh domains, all joined before returning. If the
    queue is empty on entry (a deterministic program's frontier) it returns
    immediately without spawning any domain. May be called only once. *)

val stats : 'a t -> worker_stats list
(** Per-worker counters, in worker-id order. *)
