(* On-disk checkpoint of an exploration: canonical counters + findings so
   far, the set of completed replay schedules, and the outstanding frontier.
   See checkpoint.mli for the resume contract.

   The format is line-oriented text, versioned, and self-contained — it is
   the wire format a distributed mode will ship between workers, so nothing
   here may depend on in-process state. Every free-form string (finding
   messages, workload labels) is percent-encoded to keep the grammar
   whitespace-delimited. *)

let version = 1

type item = {
  prefix : Decisions.decision list;
  choice : Decisions.decision;
  sleep : Epoch.summary list;
      (** sleep set inherited from the ancestors that created this item:
          epochs whose alternatives are already covered by a sibling
          subtree. Shipped with the item (and over the wire) so pruning is
          deterministic wherever the item executes. *)
}

type t = {
  label : string;  (** workload identity; validated on resume *)
  np : int;
  complete : bool;  (** frontier empty: resuming just re-reports *)
  runs : int;
  runs_cancelled : int;
  runs_timed_out : int;
  runs_retried : int;
  runs_crashed : int;
  monitor_alerts : int;
  bounded_epochs : int;
  wildcards_analyzed : int;
  first_run_makespan : float;
  total_virtual_time : float;
  findings : Report.finding list;
  completed : string list;  (** {!schedule_key}s of counted replays *)
  frontier : item list;
  epoch : int;  (** highest fencing epoch granted (distributed mode; 0
                    when the run was never distributed) *)
  pruned : int;  (** schedules suppressed by the independence analysis *)
}

(* ---- percent-encoding (RFC 3986 unreserved set) ---- *)

let unreserved c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '-' || c = '_' || c = '.' || c = '~'

let enc s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if unreserved c then Buffer.add_char b c
      else Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Buffer.contents b

let dec s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '%' && i + 2 < n then begin
        (match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
        | Some code -> Buffer.add_char b (Char.chr code)
        | None -> Buffer.add_string b (String.sub s i 3));
        go (i + 3)
      end
      else begin
        Buffer.add_char b s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents b

(* ---- schedule keys ---- *)

let decision_to_key (d : Decisions.decision) =
  Printf.sprintf "%s:%d:%d:%d"
    (Decisions.kind_to_string d.Decisions.kind)
    d.Decisions.owner d.Decisions.epoch_id d.Decisions.src

let decision_of_key s =
  match String.split_on_char ':' s with
  | [ kind; owner; epoch_id; src ] -> (
      match
        ( Decisions.kind_of_string kind,
          int_of_string_opt owner,
          int_of_string_opt epoch_id,
          int_of_string_opt src )
      with
      | Some kind, Some owner, Some epoch_id, Some src ->
          Some { Decisions.owner; epoch_id; src; kind }
      | _ -> None)
  | _ -> None

let schedule_key = function
  | [] -> "-"
  | ds -> String.concat "," (List.map decision_to_key ds)

let schedule_of_key = function
  | "-" -> Some []
  | s ->
      let parts = String.split_on_char ',' s in
      let ds = List.map decision_of_key parts in
      if List.exists Option.is_none ds then None
      else Some (List.filter_map Fun.id ds)

let item_key it = schedule_key (it.prefix @ [ it.choice ])

(* ---- epoch summaries (sleep sets) ----

   One summary per colon-joined token; a sleep set joins summaries with
   [;]. Alternatives are [.]-joined inside their field ([~] when empty) so
   a summary never contains whitespace and survives the space-delimited
   item grammar. *)

let summary_to_key (s : Epoch.summary) =
  Printf.sprintf "%s:%d:%d:%d:%d:%d:%d:%s"
    (Decisions.kind_to_string s.Epoch.s_kind)
    s.Epoch.s_owner s.Epoch.s_id s.Epoch.s_ctx s.Epoch.s_tag s.Epoch.s_matched
    (if s.Epoch.s_expandable then 1 else 0)
    (match s.Epoch.s_alternatives with
    | [] -> "~"
    | alts -> String.concat "." (List.map string_of_int alts))

let summary_of_key key =
  match String.split_on_char ':' key with
  | [ kind; owner; id; ctx; tag; matched; expandable; alts ] -> (
      let alternatives =
        if alts = "~" then Some []
        else
          let parts = List.map int_of_string_opt (String.split_on_char '.' alts) in
          if List.exists Option.is_none parts then None
          else Some (List.filter_map Fun.id parts)
      in
      match
        ( Decisions.kind_of_string kind,
          int_of_string_opt owner,
          int_of_string_opt id,
          int_of_string_opt ctx,
          int_of_string_opt tag,
          int_of_string_opt matched,
          expandable,
          alternatives )
      with
      | ( Some s_kind,
          Some s_owner,
          Some s_id,
          Some s_ctx,
          Some s_tag,
          Some s_matched,
          ("0" | "1"),
          Some s_alternatives ) ->
          Some
            {
              Epoch.s_owner;
              s_id;
              s_kind;
              s_ctx;
              s_tag;
              s_matched;
              s_alternatives;
              s_expandable = expandable = "1";
            }
      | _ -> None)
  | _ -> None

let sleep_key = function
  | [] -> "-"
  | ss -> String.concat ";" (List.map summary_to_key ss)

let sleep_of_key = function
  | "-" -> Some []
  | s ->
      let parts = List.map summary_of_key (String.split_on_char ';' s) in
      if List.exists Option.is_none parts then None
      else Some (List.filter_map Fun.id parts)

(* ---- error serialization ---- *)

let error_to_line = function
  | Report.Deadlock { blocked } ->
      Printf.sprintf "deadlock %s"
        (String.concat ";"
           (List.map
              (fun (pid, r) -> Printf.sprintf "%d:%s" pid (enc r))
              blocked))
  | Report.Crash { pid; message } ->
      Printf.sprintf "crash %d:%s" pid (enc message)
  | Report.Comm_leak { pid; labels } ->
      Printf.sprintf "commleak %d:%s" pid
        (String.concat ";" (List.map enc labels))
  | Report.Request_leak { pid; count } ->
      Printf.sprintf "reqleak %d:%d" pid count
  | Report.Monitor_alert { pid; epoch_id; op } ->
      Printf.sprintf "monitor %d:%d:%s" pid epoch_id (enc op)
  | Report.Replay_divergence { count } ->
      Printf.sprintf "divergence %d" count

let error_of_line tag payload =
  let int_pair s =
    match String.split_on_char ':' s with
    | [ a; b ] -> (
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some a, Some b -> Some (a, b)
        | _ -> None)
    | _ -> None
  in
  match tag with
  | "deadlock" ->
      let parse_one entry =
        match String.index_opt entry ':' with
        | Some i -> (
            match int_of_string_opt (String.sub entry 0 i) with
            | Some pid ->
                Some
                  ( pid,
                    dec (String.sub entry (i + 1) (String.length entry - i - 1))
                  )
            | None -> None)
        | None -> None
      in
      let blocked =
        List.map parse_one
          (if payload = "" then [] else String.split_on_char ';' payload)
      in
      if List.exists Option.is_none blocked then None
      else Some (Report.Deadlock { blocked = List.filter_map Fun.id blocked })
  | "crash" -> (
      match String.index_opt payload ':' with
      | Some i -> (
          match int_of_string_opt (String.sub payload 0 i) with
          | Some pid ->
              Some
                (Report.Crash
                   {
                     pid;
                     message =
                       dec
                         (String.sub payload (i + 1)
                            (String.length payload - i - 1));
                   })
          | None -> None)
      | None -> None)
  | "commleak" -> (
      match String.index_opt payload ':' with
      | Some i -> (
          match int_of_string_opt (String.sub payload 0 i) with
          | Some pid ->
              let labels =
                String.sub payload (i + 1) (String.length payload - i - 1)
              in
              Some
                (Report.Comm_leak
                   {
                     pid;
                     labels =
                       (if labels = "" then []
                        else List.map dec (String.split_on_char ';' labels));
                   })
          | None -> None)
      | None -> None)
  | "reqleak" -> (
      match int_pair payload with
      | Some (pid, count) -> Some (Report.Request_leak { pid; count })
      | None -> None)
  | "monitor" -> (
      match String.split_on_char ':' payload with
      | [ pid; epoch_id; op ] -> (
          match (int_of_string_opt pid, int_of_string_opt epoch_id) with
          | Some pid, Some epoch_id ->
              Some (Report.Monitor_alert { pid; epoch_id; op = dec op })
          | _ -> None)
      | _ -> None)
  | "divergence" -> (
      match int_of_string_opt payload with
      | Some count -> Some (Report.Replay_divergence { count })
      | None -> None)
  | _ -> None

(* ---- document ---- *)

let to_string t =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "# DAMPI checkpoint";
  line "version %d" version;
  line "label %s" (enc t.label);
  line "np %d" t.np;
  line "complete %d" (if t.complete then 1 else 0);
  line "runs %d" t.runs;
  line "cancelled %d" t.runs_cancelled;
  line "timed-out %d" t.runs_timed_out;
  line "retried %d" t.runs_retried;
  line "crashed %d" t.runs_crashed;
  line "alerts %d" t.monitor_alerts;
  line "bounded %d" t.bounded_epochs;
  line "wildcards %d" t.wildcards_analyzed;
  (* %h (hex floats) round-trips exactly; canonical-report equality after a
     resume depends on it. *)
  line "first-makespan %h" t.first_run_makespan;
  line "total-vtime %h" t.total_virtual_time;
  if t.epoch <> 0 then line "epoch %d" t.epoch;
  if t.pruned <> 0 then line "pruned %d" t.pruned;
  List.iter
    (fun (f : Report.finding) ->
      line "finding %d %s %s" f.Report.run_index
        (schedule_key f.Report.schedule)
        (error_to_line f.Report.error))
    t.findings;
  List.iter (fun k -> line "done %s" k) t.completed;
  List.iter
    (fun it ->
      if it.sleep = [] then
        line "item %s %s" (schedule_key it.prefix) (decision_to_key it.choice)
      else
        line "item %s %s %s" (schedule_key it.prefix)
          (decision_to_key it.choice) (sleep_key it.sleep))
    t.frontier;
  Buffer.contents b

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | header :: rest when header = "# DAMPI checkpoint" -> (
      let err = ref None in
      let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
      let seen_version = ref None in
      let label = ref "" in
      let np = ref 0 in
      let complete = ref false in
      let runs = ref 0 in
      let cancelled = ref 0 in
      let timed_out = ref 0 in
      let retried = ref 0 in
      let crashed = ref 0 in
      let alerts = ref 0 in
      let bounded = ref 0 in
      let wildcards = ref 0 in
      let first_makespan = ref 0.0 in
      let total_vtime = ref 0.0 in
      let epoch = ref 0 in
      let pruned = ref 0 in
      let findings = ref [] in
      let completed = ref [] in
      let frontier = ref [] in
      let int_field name v r =
        match int_of_string_opt v with
        | Some n -> r := n
        | None -> fail "malformed %s %S" name v
      in
      let float_field name v r =
        match float_of_string_opt v with
        | Some f -> r := f
        | None -> fail "malformed %s %S" name v
      in
      List.iter
        (fun l ->
          if !err = None then
            match String.index_opt l ' ' with
            | None -> fail "malformed line %S" l
            | Some i -> (
                let key = String.sub l 0 i in
                let rest = String.sub l (i + 1) (String.length l - i - 1) in
                (* Everything but [version] is ignored until the version is
                   known and accepted, so a future format only ever produces
                   the clean version-mismatch error. *)
                match key with
                | "version" -> (
                    match int_of_string_opt rest with
                    | Some v when v = version -> seen_version := Some v
                    | Some v ->
                        fail
                          "checkpoint version %d not supported (this build \
                           reads version %d)"
                          v version
                    | None -> fail "malformed version %S" rest)
                | _ when !seen_version = None ->
                    fail "missing version header"
                | "label" -> label := dec rest
                | "np" -> int_field "np" rest np
                | "complete" -> complete := rest = "1"
                | "runs" -> int_field "runs" rest runs
                | "cancelled" -> int_field "cancelled" rest cancelled
                | "timed-out" -> int_field "timed-out" rest timed_out
                | "retried" -> int_field "retried" rest retried
                | "crashed" -> int_field "crashed" rest crashed
                | "alerts" -> int_field "alerts" rest alerts
                | "bounded" -> int_field "bounded" rest bounded
                | "wildcards" -> int_field "wildcards" rest wildcards
                | "first-makespan" ->
                    float_field "first-makespan" rest first_makespan
                | "total-vtime" -> float_field "total-vtime" rest total_vtime
                | "epoch" -> int_field "epoch" rest epoch
                | "finding" -> (
                    match String.split_on_char ' ' rest with
                    | run_index :: sched :: tag :: payload -> (
                        match
                          ( int_of_string_opt run_index,
                            schedule_of_key sched,
                            error_of_line tag (String.concat " " payload) )
                        with
                        | Some run_index, Some schedule, Some error ->
                            findings :=
                              { Report.error; run_index; schedule }
                              :: !findings
                        | _ -> fail "malformed finding line %S" l)
                    | _ -> fail "malformed finding line %S" l)
                | "done" -> completed := rest :: !completed
                | "pruned" -> int_field "pruned" rest pruned
                | "item" -> (
                    (* 2-field items (no sleep set) predate pruning and
                       still parse: sleep defaults to empty. *)
                    let fields =
                      match String.split_on_char ' ' rest with
                      | [ prefix; choice ] -> Some (prefix, choice, "-")
                      | [ prefix; choice; sleep ] ->
                          Some (prefix, choice, sleep)
                      | _ -> None
                    in
                    match fields with
                    | None -> fail "malformed item line %S" l
                    | Some (prefix, choice, sleep) -> (
                        match
                          ( schedule_of_key prefix,
                            decision_of_key choice,
                            sleep_of_key sleep )
                        with
                        | Some prefix, Some choice, Some sleep ->
                            frontier := { prefix; choice; sleep } :: !frontier
                        | _ -> fail "malformed item line %S" l))
                | _ -> fail "unknown checkpoint field %S" key))
        rest;
      (match (!err, !seen_version) with
      | None, None -> err := Some "missing version header"
      | _ -> ());
      match !err with
      | Some e -> Error e
      | None ->
          Ok
            {
              label = !label;
              np = !np;
              complete = !complete;
              runs = !runs;
              runs_cancelled = !cancelled;
              runs_timed_out = !timed_out;
              runs_retried = !retried;
              runs_crashed = !crashed;
              monitor_alerts = !alerts;
              bounded_epochs = !bounded;
              wildcards_analyzed = !wildcards;
              first_run_makespan = !first_makespan;
              total_virtual_time = !total_vtime;
              findings = List.rev !findings;
              completed = List.rev !completed;
              frontier = List.rev !frontier;
              epoch = !epoch;
              pruned = !pruned;
            })
  | _ -> Error "not a DAMPI checkpoint file"

(* ---- atomic file I/O ---- *)

type write_outcome = Written | Degraded of string

let atomic_write ?fault path text =
  (* Temp file in the same directory so the rename is a same-filesystem
     atomic replace: a reader (or a crash) only ever sees a complete
     checkpoint — the previous one or this one, never a torn write. The
     fsync before the rename makes the replace durable, not just atomic: a
     power cut after the rename cannot resurrect a zero-length file. Every
     failure mode (ENOSPC, EIO, EDQUOT, a read-only remount…) is classified
     into [Degraded] rather than raised — losing one checkpoint cut degrades
     the resume point, it must not kill the exploration that is making
     progress. [?fault] is the chaos layer's injected-ENOSPC hook. *)
  let tmp = path ^ ".tmp" in
  let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
  match
    (match fault with
    | Some f when f () -> raise (Sys_error (tmp ^ ": No space left on device (injected)"))
    | _ -> ());
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc text;
        flush oc;
        Unix.fsync (Unix.descr_of_out_channel oc));
    Sys.rename tmp path
  with
  | () -> Written
  | exception Sys_error msg ->
      cleanup ();
      Degraded msg
  | exception Unix.Unix_error (e, fn, arg) ->
      cleanup ();
      Degraded
        (Printf.sprintf "%s%s: %s"
           (if arg = "" then fn else arg)
           (if arg = "" then "" else " (" ^ fn ^ ")")
           (Unix.error_message e))

let save ?fault t path = atomic_write ?fault path (to_string t)

let load path =
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    text
  with
  | text -> of_string text
  | exception Sys_error msg -> Error msg
