(** Per-run verifier state shared by all ranks' interposition layers:
    logical clocks (behind a first-class clock module), recorded epochs, the
    guided-replay plan, and the bounding-heuristic knobs.

    Clocks are stored encoded ([int array]) and mutated in place through
    the clock module's encoded hot-path block — no decode/encode round trip
    and no allocation per operation; piggyback payload buffers come from a
    per-state free list (see DESIGN.md, "Hot path & allocation discipline").
    This keeps every other DAMPI module monomorphic. *)

type mode = Self_run | Guided_run

type piggyback_mode =
  | Separate  (** shadow-communicator messages — the paper's choice (§II-D) *)
  | Inline  (** pack the clock into the user payload (datatype packing) *)

type config = {
  clock : (module Clocks.Clock_intf.S);
  mixing_bound : int option;  (** bounded mixing [k] (§III-B2) *)
  piggyback : piggyback_mode;
  dual_clock : bool;
      (** §V future work: lagging transmission clock, synchronized at
          Wait/Test; covers the Fig. 10 pattern *)
  epoch_cost : float;  (** tool CPU (virtual s) per non-deterministic event *)
  late_check_cost : float;  (** tool CPU per received message *)
}

val make_config :
  ?clock:(module Clocks.Clock_intf.S) ->
  ?mixing_bound:int ->
  ?piggyback:piggyback_mode ->
  ?dual_clock:bool ->
  ?epoch_cost:float ->
  ?late_check_cost:float ->
  unit ->
  config

val default_config : config

exception Replay_cancelled
(** Raised from inside a simulated rank when the scheduler has poisoned the
    run ([--stop-first] found an error elsewhere). The explorer treats the
    resulting crash outcome as a cancelled run, not a finding. *)

type smetrics
(** Cached [dampi.*] metric handles (piggyback bytes/messages, clock merges,
    epoch lifecycle), resolved once at {!create}. *)

type monitor_warning = { warn_pid : int; warn_epoch_id : int; warn_op : string }

type t = {
  np : int;
  config : config;
  plan : Decisions.plan;
  clocks : int array array;
  xmit_clocks : int array array;
  mode : mode array;
  epochs : Epoch.t list array;
  mutable completed : Epoch.t list;
  mutable completed_count : int;
  fork_index : int;
  pcontrol_depth : int array;
  open_wildcards : (int, Epoch.t) Hashtbl.t;
  mutable warnings : monitor_warning list;
  mutable divergences : int;
  obs : smetrics option;
  poison : (unit -> bool) option;
  clock_width : int;
  pb_pool : int array array;
  mutable pb_pool_top : int;
  mutable pb_reuses : int;
  mutable pending_pb_msgs : int;
  mutable pending_pb_bytes : int;
}

val create :
  ?config:config ->
  ?metrics:Obs.Metrics.shard ->
  ?profile:bool ->
  ?poison:(unit -> bool) ->
  np:int ->
  plan:Decisions.plan ->
  fork_index:int ->
  unit ->
  t
(** [profile] (with [metrics]) wall-clocks every clock merge into the
    [profile.clock_merge_s] histogram — the [--profile] phase timing. *)

val check_poison : t -> unit
(** Raises {!Replay_cancelled} when the poison closure reports true. Called
    by the interposition layer at every interposed MPI call. *)

val count_piggyback : t -> bytes:int -> unit
(** One piggyback message of [bytes] clock payload left this process.
    Batched locally; {!flush_metrics} pushes the totals to the shard. *)

val flush_metrics : t -> unit
(** Push the locally batched piggyback counts to the metrics shard. The
    replay runner calls this once after the runtime returns (on every
    outcome), so end-of-run totals equal per-message counting. *)

(** {1 Clock operations} *)

val scalar : t -> int -> int

val clock_payload : t -> int -> Mpi.Payload.t
(** A piggyback payload snapshotting the current (or, under dual-clock
    mode, the lagging) clock. The backing buffer comes from the free list;
    the consumer must hand it back via {!release_clock_buf} once merged. *)

val clock_of_payload : t -> Mpi.Payload.t -> int array

val release_clock_buf : t -> int array -> unit
(** Return a consumed piggyback buffer to the free list. Call at most once
    per buffer, and never while the buffer is still reachable from an
    in-flight message. Wrong-width arrays are ignored. *)

val merge_in : t -> int -> int array -> unit

val sync_xmit : t -> int -> unit
(** Dual-clock synchronization point ("when a Wait/Test is encountered"). *)

(** {1 Epoch lifecycle} *)

val record_epoch :
  t -> me:int -> kind:Epoch.kind -> ctx:int -> tag:int -> Epoch.t

val tick : t -> int -> unit
(** Tick without recording — guided (forced) events keep the clock evolution
    of the parent run. *)

val complete_epoch : t -> Epoch.t -> matched_src:int -> unit

val find_potential_matches :
  t -> me:int -> src_rank:int -> ctx:int -> tag:int -> send_enc:int array -> unit
(** [FindPotentialMatches] of Algorithm 1. *)

(** {1 Guided replay} *)

val refresh_mode : t -> int -> unit
val guided_src : t -> int -> kind:Epoch.kind -> int option

(** {1 §V limitation monitor} *)

val watch_wildcard : t -> req_uid:int -> Epoch.t -> unit
val unwatch_wildcard : t -> req_uid:int -> unit
val monitor_clock_escape : t -> me:int -> op:string -> unit

(** {1 Loop iteration abstraction (§III-B1)} *)

val pcontrol : t -> int -> int -> unit
val in_abstracted_loop : t -> int -> bool

(** {1 End-of-run summary} *)

val completed_epochs : t -> Epoch.t list
val all_epochs : t -> Epoch.t list
val wildcard_events : t -> int
val warnings : t -> monitor_warning list
