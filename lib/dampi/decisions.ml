(** Epoch Decisions (§II-B, §II-E).

    Between replays DAMPI's schedule generator emits the set of match
    decisions to force: for each process, wildcard events up to its
    [guided_epoch] are determinized to a recorded source, after which the
    process reverts to SELF_RUN and discovers new alternatives. A [plan] is
    the in-memory form of the paper's "Epoch Decisions file". *)

type decision = {
  owner : int;  (** world pid *)
  epoch_id : int;  (** scalar clock identifying the epoch *)
  src : int;  (** communicator rank to force as the match *)
  kind : Epoch.kind;
}

type plan = {
  decisions : decision list;  (** in global completion order of the parent run *)
  by_key : (int * int, decision) Hashtbl.t;  (** (owner, epoch_id) -> decision *)
  guided_epoch : int array;  (** per owner; -1 when nothing is forced *)
}

let empty ~np =
  {
    decisions = [];
    by_key = Hashtbl.create 1;
    guided_epoch = Array.make np (-1);
  }

let of_decisions ~np decisions =
  let by_key = Hashtbl.create (List.length decisions) in
  let guided_epoch = Array.make np (-1) in
  List.iter
    (fun d ->
      Hashtbl.replace by_key (d.owner, d.epoch_id) d;
      if d.epoch_id > guided_epoch.(d.owner) then
        guided_epoch.(d.owner) <- d.epoch_id)
    decisions;
  { decisions; by_key; guided_epoch }

let length plan = List.length plan.decisions
let is_empty plan = plan.decisions = []

(** [GetSrcFromEpoch] of Algorithm 1. The event kind must agree: a failed
    probe does not tick the clock, so a probe and a receive can share a
    clock value; forcing across kinds would misdirect the replay. *)
let forced_src plan ~owner ~epoch_id ~kind =
  match Hashtbl.find_opt plan.by_key (owner, epoch_id) with
  | Some d when d.kind = kind -> Some d.src
  | Some _ | None -> None

(** Is [owner] still within its guided window at clock [epoch_id]? *)
let in_guided_window plan ~owner ~epoch_id =
  epoch_id <= plan.guided_epoch.(owner)

(** Canonical total order on decisions: owner, then epoch, then source,
    then kind. The report layer sorts reproduction schedules with it; the
    pruning layer uses it to build plan normal forms. *)
let compare_decision (a : decision) (b : decision) =
  compare (a.owner, a.epoch_id, a.src, a.kind) (b.owner, b.epoch_id, b.src, b.kind)

(** Two decisions commute in a plan when they govern different epochs:
    {!of_decisions} keys forcing by (owner, epoch_id), so plans built from
    either order force identically. Decisions on the {e same} epoch
    conflict — the later one wins {!forced_src} — and must never be
    treated as independent. *)
let commutes (a : decision) (b : decision) =
  (a.owner, a.epoch_id) <> (b.owner, b.epoch_id)

(** The order-insensitive identity of a decision set: its sorted decision
    list. Two plans with equal normal forms force the same matches. *)
let normal_form plan = List.sort_uniq compare_decision plan.decisions

(** The observed match of a completed epoch, as a decision for a child
    plan's prefix. *)
let decision_of_epoch (e : Epoch.t) ~src =
  { owner = e.Epoch.owner; epoch_id = e.Epoch.id; src; kind = e.Epoch.kind }

(* ---- Schedule files ----

   The on-disk form of the paper's "Epoch Decisions file": a line per
   decision, in force order. Lets a finding's reproduction schedule be
   saved from one session and replayed in another. *)

let kind_to_string = function
  | Epoch.Wildcard_recv -> "recv"
  | Epoch.Wildcard_probe -> "probe"

let kind_of_string = function
  | "recv" -> Some Epoch.Wildcard_recv
  | "probe" -> Some Epoch.Wildcard_probe
  | _ -> None

let to_string plan =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# DAMPI epoch decisions\n";
  Buffer.add_string buf
    (Printf.sprintf "np %d\n" (Array.length plan.guided_epoch));
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf "%s %d %d %d\n" (kind_to_string d.kind) d.owner
           d.epoch_id d.src))
    plan.decisions;
  Buffer.contents buf

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> Error "empty schedule"
  | header :: rest -> (
      match String.split_on_char ' ' header with
      | [ "np"; n ] -> (
          match int_of_string_opt n with
          | None -> Error "malformed np header"
          | Some np -> (
              let parse line =
                match String.split_on_char ' ' line with
                | [ kind; owner; epoch_id; src ] -> (
                    match
                      ( kind_of_string kind,
                        int_of_string_opt owner,
                        int_of_string_opt epoch_id,
                        int_of_string_opt src )
                    with
                    | Some kind, Some owner, Some epoch_id, Some src ->
                        Some { owner; epoch_id; src; kind }
                    | _ -> None)
                | _ -> None
              in
              let decisions = List.map parse rest in
              if List.exists Option.is_none decisions then
                Error "malformed decision line"
              else Ok (of_decisions ~np (List.filter_map Fun.id decisions))))
      | _ -> Error "missing np header")

let save plan path =
  let oc = open_out path in
  output_string oc (to_string plan);
  close_out oc

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string text

let pp_decision ppf d =
  Format.fprintf ppf "%a@%d.%d := %d" Epoch.pp_kind d.kind d.owner d.epoch_id
    d.src

let pp ppf plan =
  Format.fprintf ppf "@[<v>plan (%d forced):@ %a@]" (length plan)
    (Format.pp_print_list pp_decision)
    plan.decisions
