(* Mutex-protected work deque + Domain pool. See scheduler.mli for the
   contract. Locking discipline: every mutable field below is read and
   written only under [m]; workers execute user code strictly outside the
   lock. [in_flight] distinguishes "queue momentarily empty" from "drained":
   a worker holding an item may still push children, so idle workers wait on
   [wakeup] until the queue refills or [in_flight] drops to zero. *)

type order = Lifo | Fifo

type worker_stats = {
  worker_id : int;
  mutable items_run : int;
  mutable queue_waits : int;
  mutable wait_seconds : float;
}

(* All metric writes below happen with [m] held, so a single shard keeps the
   single-writer discipline even though many domains pass through here. *)
type smetrics = {
  m_queue_wait : Obs.Metrics.histogram;
  m_frontier : Obs.Metrics.histogram;
}

type 'a t = {
  order : order;
  jobs : int;
  budget : int;
  m : Mutex.t;
  wakeup : Condition.t;
  mutable front : 'a list;  (* pop side, head first *)
  mutable back : 'a list;  (* Fifo push side, reversed *)
  mutable size : int;
  mutable in_flight : int;
  in_flight_items : 'a option array;  (* per worker, the item being executed *)
  mutable claimed : int;
  mutable is_cancelled : bool;
  mutable ran : bool;
  stats : worker_stats array;
  metrics : smetrics option;
}

let create ?(order = Lifo) ~jobs ?(budget = max_int) ?metrics () =
  let jobs = max 1 jobs in
  {
    order;
    jobs;
    budget = max 0 budget;
    m = Mutex.create ();
    wakeup = Condition.create ();
    front = [];
    back = [];
    size = 0;
    in_flight = 0;
    in_flight_items = Array.make jobs None;
    claimed = 0;
    is_cancelled = false;
    ran = false;
    stats =
      Array.init jobs (fun worker_id ->
          { worker_id; items_run = 0; queue_waits = 0; wait_seconds = 0.0 });
    metrics =
      (* Declared eagerly so the series exists even for a run with no waits
         (a jobs=1 exploration never blocks). *)
      Option.map
        (fun sh ->
          {
            m_queue_wait = Obs.Metrics.histogram sh "sched.queue_wait_s";
            m_frontier =
              Obs.Metrics.histogram sh ~bounds:Obs.Metrics.count_bounds
                "sched.frontier_size";
          })
        metrics;
  }

(* ---- queue primitives (caller holds [m]) ---- *)

let push_batch_locked t items =
  let n = List.length items in
  if n > 0 then begin
    (match t.order with
    | Lifo -> t.front <- items @ t.front
    | Fifo -> t.back <- List.rev_append items t.back);
    t.size <- t.size + n;
    (match t.metrics with
    | Some m -> Obs.Metrics.observe m.m_frontier (float_of_int t.size)
    | None -> ());
    Condition.broadcast t.wakeup
  end

let take_locked t =
  (match t.front with
  | [] ->
      t.front <- List.rev t.back;
      t.back <- []
  | _ :: _ -> ());
  match t.front with
  | [] -> None
  | x :: tl ->
      t.front <- tl;
      t.size <- t.size - 1;
      Some x

(* ---- public queue operations ---- *)

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let push t x = locked t (fun () -> push_batch_locked t [ x ])
let push_batch t items = locked t (fun () -> push_batch_locked t items)

let cancel t =
  locked t (fun () ->
      t.is_cancelled <- true;
      Condition.broadcast t.wakeup)

let cancelled t = locked t (fun () -> t.is_cancelled)
let pending t = locked t (fun () -> t.size)
let executed t = locked t (fun () -> t.claimed)
let stats t = Array.to_list t.stats

(* A consistent cut of the outstanding work: everything queued plus
   everything a worker is currently executing, in one lock acquisition. An
   in-flight item re-appears here because its execution has not published
   children yet — a checkpoint holding this cut can re-run it on resume
   without losing or duplicating any subtree ([finish] publishes children
   and clears the in-flight slot atomically under the same lock). *)
let snapshot t =
  locked t (fun () ->
      let queued = t.front @ List.rev t.back in
      Array.fold_left
        (fun acc it -> match it with Some x -> x :: acc | None -> acc)
        queued t.in_flight_items)

(* ---- worker loop ---- *)

(* Claim the next item, or block while other workers might still produce
   one. Returns [None] on quiescence, exhausted budget, or cancellation. *)
let next t (ws : worker_stats) =
  locked t (fun () ->
      let rec await () =
        if t.is_cancelled || t.claimed >= t.budget then None
        else
          match take_locked t with
          | Some item ->
              t.claimed <- t.claimed + 1;
              t.in_flight <- t.in_flight + 1;
              t.in_flight_items.(ws.worker_id) <- Some item;
              Some item
          | None ->
              if t.in_flight = 0 then None
              else begin
                ws.queue_waits <- ws.queue_waits + 1;
                let t0 = Unix.gettimeofday () in
                Condition.wait t.wakeup t.m;
                let waited = Unix.gettimeofday () -. t0 in
                ws.wait_seconds <- ws.wait_seconds +. waited;
                (match t.metrics with
                | Some m -> Obs.Metrics.observe m.m_queue_wait waited
                | None -> ());
                await ()
              end
      in
      await ())

let finish t (ws : worker_stats) children =
  locked t (fun () ->
      (* Children are pushed even after cancellation: nothing will claim
         them ([next] checks the flag first), but a checkpoint taken after
         [run] returns must see the child frontier of every completed
         replay, or resuming would silently drop those subtrees. *)
      push_batch_locked t children;
      t.in_flight_items.(ws.worker_id) <- None;
      t.in_flight <- t.in_flight - 1;
      (* Wake idle workers even when no children arrived: [in_flight] hitting
         zero is the quiescence signal they are waiting for. *)
      Condition.broadcast t.wakeup)

let worker_loop t ws f =
  let rec go () =
    match next t ws with
    | None -> ()
    | Some item ->
        let children =
          match f ~worker:ws.worker_id item with
          | children -> children
          | exception exn ->
              (* Capture the backtrace before [finish] runs any code that
                 would overwrite it, and keep [in_flight] honest so peers
                 terminate instead of waiting forever on a worker that
                 died. *)
              let bt = Printexc.get_raw_backtrace () in
              finish t ws [];
              Printexc.raise_with_backtrace exn bt
        in
        ws.items_run <- ws.items_run + 1;
        finish t ws children;
        go ()
  in
  go ()

let run t f =
  locked t (fun () ->
      if t.ran then invalid_arg "Scheduler.run: already ran";
      t.ran <- true);
  if pending t = 0 then ()
  else if t.jobs = 1 then worker_loop t t.stats.(0) f
  else begin
    let others =
      Array.init (t.jobs - 1) (fun i ->
          let ws = t.stats.(i + 1) in
          Domain.spawn (fun () -> worker_loop t ws f))
    in
    (* Worker exceptions propagate with the backtrace captured at the catch
       site ([Domain.join] already re-raises with the spawned domain's
       backtrace; the main worker's is captured here). *)
    let main_exn =
      match worker_loop t t.stats.(0) f with
      | () -> None
      | exception exn ->
          let bt = Printexc.get_raw_backtrace () in
          (* Unblock the pool before joining, or the join deadlocks. *)
          cancel t;
          Some (exn, bt)
    in
    let join_exn =
      Array.fold_left
        (fun acc d ->
          match Domain.join d with
          | () -> acc
          | exception exn ->
              let bt = Printexc.get_raw_backtrace () in
              cancel t;
              (match acc with None -> Some (exn, bt) | Some _ -> acc))
        None others
    in
    match (main_exn, join_exn) with
    | Some (exn, bt), _ | None, Some (exn, bt) ->
        Printexc.raise_with_backtrace exn bt
    | None, None -> ()
  end
