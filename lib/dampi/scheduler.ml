(* Per-worker stealing deques + Domain pool. See scheduler.mli for the
   contract.

   Layout (Chase-Lev in shape, locks in mechanism): every worker owns one
   deque. The owner pushes and pops at the *near* end (LIFO under {!Lifo},
   giving depth-first locality: a replay's children run next on the same
   worker); a thief steals from the *far* end (under {!Lifo} that is the
   oldest — shallowest — item, whose subtree is the largest, so one steal
   moves the most work). Each deque has its own small mutex, so the hot
   path (owner push/pop) never touches shared state; only stealing,
   snapshots, and the idle path cross deques.

   Locking discipline:
   - A worker takes at most one deque lock at a time (its own, or one
     victim's while stealing), so deque locks never nest and cannot
     deadlock.
   - [snapshot]/[pending] take *all* deque locks in index order; combined
     with "every queue/in-flight mutation holds some deque lock", that
     makes them a consistent cut.
   - The global [m]/[wakeup] pair serves only the idle path (blocked
     thieves) and carries no queue state.

   Counters shared across workers ([live], [claimed], [sleepers], per-deque
   sizes) are Atomics, so the idle path can scan them without taking deque
   locks; OCaml's SC atomics make the sleep/wake handshake sound (see
   [idle_wait]). *)

type order = Lifo | Fifo

type worker_stats = {
  worker_id : int;
  mutable items_run : int;
  mutable steals : int;
  mutable queue_waits : int;
  mutable wait_seconds : float;
}

(* Metric writes are serialized by [mmet] (frontier size, steals — written
   under assorted deque locks) or by [m] (queue waits — the idle path), so a
   single shard keeps the single-writer discipline. *)
type smetrics = {
  mmet : Mutex.t;
  m_queue_wait : Obs.Metrics.histogram;
  m_frontier : Obs.Metrics.histogram;
  m_steals : Obs.Metrics.counter;
  m_sched_wait : Obs.Metrics.histogram option;
      (* [--profile]: same observations as [sched.queue_wait_s], published
         under the uniform [profile.*] namespace the profiler exports *)
}

(* One worker's deque. The logical sequence is [front @ List.rev back]; the
   owner pops the head of [front] (refilling from [back] when empty), a
   thief pops the head of [back] (refilling from [front]). [current] is the
   item the owner is executing — it lives here so that "pop + set current"
   and "push children + clear current" are each atomic under one lock,
   which is what keeps {!snapshot} a duplicate-free cut. [dsize] mirrors
   the queue length for lock-free scans by idle thieves. *)
type 'a deque = {
  lock : Mutex.t;
  mutable front : 'a list;
  mutable back : 'a list;
  dsize : int Atomic.t;
  mutable current : 'a option;
}

type 'a t = {
  order : order;
  jobs : int;
  budget : int;
  deques : 'a deque array;
  live : int Atomic.t;  (* items queued or in flight; 0 = quiescent *)
  claimed : int Atomic.t;  (* items handed to workers; capped by [budget] *)
  sleepers : int Atomic.t;  (* workers blocked in [idle_wait] *)
  is_cancelled : bool Atomic.t;
  mutable ran : bool;
  m : Mutex.t;  (* guards [ran] and the idle path *)
  wakeup : Condition.t;
  stats : worker_stats array;
  metrics : smetrics option;
  admit : 'a -> bool;
      (* enqueue filter: an item it rejects is never inserted (duplicate
         schedules, in the explorer's use). Must be thread-safe — it runs
         on whichever worker publishes. *)
}

let create ?(order = Lifo) ~jobs ?(budget = max_int) ?metrics
    ?(profile = false) ?(admit = fun _ -> true) () =
  let jobs = max 1 jobs in
  {
    order;
    jobs;
    budget = max 0 budget;
    deques =
      Array.init jobs (fun _ ->
          {
            lock = Mutex.create ();
            front = [];
            back = [];
            dsize = Atomic.make 0;
            current = None;
          });
    live = Atomic.make 0;
    claimed = Atomic.make 0;
    sleepers = Atomic.make 0;
    is_cancelled = Atomic.make false;
    ran = false;
    m = Mutex.create ();
    wakeup = Condition.create ();
    stats =
      Array.init jobs (fun worker_id ->
          {
            worker_id;
            items_run = 0;
            steals = 0;
            queue_waits = 0;
            wait_seconds = 0.0;
          });
    metrics =
      (* Declared eagerly so the series exist even for a run with no waits
         or steals (a jobs=1 exploration has neither). *)
      Option.map
        (fun sh ->
          {
            mmet = Mutex.create ();
            m_queue_wait = Obs.Metrics.histogram sh "sched.queue_wait_s";
            m_frontier =
              Obs.Metrics.histogram sh ~bounds:Obs.Metrics.count_bounds
                "sched.frontier_size";
            m_steals = Obs.Metrics.counter sh "sched.steals";
            m_sched_wait =
              (if profile then
                 Some (Obs.Metrics.histogram sh "profile.sched_wait_s")
               else None);
          })
        metrics;
    admit;
  }

let total_size t =
  let n = ref 0 in
  Array.iter (fun d -> n := !n + Atomic.get d.dsize) t.deques;
  !n

let observe_frontier t =
  match t.metrics with
  | None -> ()
  | Some ms ->
      Mutex.lock ms.mmet;
      Obs.Metrics.observe ms.m_frontier (float_of_int (total_size t));
      Mutex.unlock ms.mmet

(* Wake blocked thieves. Pushers call this after publishing; the SC-atomic
   handshake with [idle_wait] (sleepers incremented under [m] before the
   re-scan, checked here after the publish) guarantees that either the
   re-scan sees the new item or this sees the sleeper. *)
let notify t =
  if Atomic.get t.sleepers > 0 then begin
    Mutex.lock t.m;
    Condition.broadcast t.wakeup;
    Mutex.unlock t.m
  end

(* ---- deque primitives (caller holds [d.lock]) ---- *)

(* Insert a batch preserving the documented pop order: under {!Lifo} the
   batch goes on top of the owner's stack in order (head pops first), under
   {!Fifo} it is appended (the oldest item pops first). [live] is bumped
   *before* insertion so an idle scanner never observes items the counter
   has not admitted to exist. *)
let insert_locked t d items n =
  Atomic.fetch_and_add t.live n |> ignore;
  (match t.order with
  | Lifo -> d.front <- items @ d.front
  | Fifo -> d.back <- List.rev_append items d.back);
  Atomic.fetch_and_add d.dsize n |> ignore

let pop_near_locked d =
  (match d.front with
  | [] ->
      d.front <- List.rev d.back;
      d.back <- []
  | _ :: _ -> ());
  match d.front with
  | [] -> None
  | x :: tl ->
      d.front <- tl;
      Atomic.decr d.dsize;
      Some x

let pop_far_locked d =
  (match d.back with
  | [] ->
      d.back <- List.rev d.front;
      d.front <- []
  | _ :: _ -> ());
  match d.back with
  | [] -> None
  | x :: tl ->
      d.back <- tl;
      Atomic.decr d.dsize;
      Some x

(* ---- public queue operations ---- *)

(* External pushes (seeding, before [run]) land on worker 0's deque; the
   pool redistributes by stealing. This keeps the documented batch pop
   order exact for the jobs=1 sequential walk. *)
let push_batch t items =
  let items = List.filter t.admit items in
  let n = List.length items in
  if n > 0 then begin
    let d = t.deques.(0) in
    Mutex.lock d.lock;
    insert_locked t d items n;
    Mutex.unlock d.lock;
    observe_frontier t;
    notify t
  end

let push t x = push_batch t [ x ]

let cancel t =
  Atomic.set t.is_cancelled true;
  Mutex.lock t.m;
  Condition.broadcast t.wakeup;
  Mutex.unlock t.m

let cancelled t = Atomic.get t.is_cancelled

let lock_all t = Array.iter (fun d -> Mutex.lock d.lock) t.deques
let unlock_all t = Array.iter (fun d -> Mutex.unlock d.lock) t.deques

let pending t =
  lock_all t;
  let n = total_size t in
  unlock_all t;
  n

let executed t = Atomic.get t.claimed
let stats t = Array.to_list t.stats

(* A consistent cut of the outstanding work: everything queued on any deque
   plus everything any worker is executing, read with every deque lock held.
   Each transition (claim: pop + set [current]; finish: push children +
   clear [current]) happens under a single deque lock, so the cut sees each
   item exactly once — an in-flight item appears because its children are
   not published yet, and a resume that re-runs it regenerates exactly its
   subtree. *)
let snapshot t =
  lock_all t;
  let acc =
    Array.fold_left
      (fun acc d ->
        let acc =
          match d.current with Some x -> x :: acc | None -> acc
        in
        List.rev_append d.front (List.rev_append (List.rev d.back) acc))
      [] t.deques
  in
  unlock_all t;
  List.rev acc

(* ---- claiming ---- *)

(* Reserve one unit of budget. The caller must already hold the lock of the
   deque it is about to pop, and must not consume the reservation unless
   the pop succeeds. *)
let reserve_budget t =
  let rec go () =
    let c = Atomic.get t.claimed in
    if c >= t.budget then false
    else if Atomic.compare_and_set t.claimed c (c + 1) then true
    else go ()
  in
  go ()

let budget_exhausted t = Atomic.get t.claimed >= t.budget

(* Claim from one deque: budget-reserve, pop, and publish the in-flight
   item in one lock acquisition. *)
let try_claim t d ~worker ~near =
  Mutex.lock d.lock;
  let item =
    if Atomic.get d.dsize = 0 then None
    else if not (reserve_budget t) then None
    else
      match (if near then pop_near_locked d else pop_far_locked d) with
      | Some x ->
          t.deques.(worker).current <- Some x;
          Some x
      | None ->
          (* dsize said non-empty but the pop found nothing: impossible
             (both are under the lock), but keep the budget honest. *)
          Atomic.decr t.claimed;
          None
  in
  Mutex.unlock d.lock;
  item

(* Wait for new work to appear, or for the pool to quiesce. Returns [`Done]
   when the worker should exit, [`Retry] when a scan is worth repeating.

   Soundness of the sleep: [sleepers] is incremented (SC atomic) before the
   re-scan of the deque sizes; a pusher increments [dsize] before reading
   [sleepers] in [notify]. By sequential consistency, if the re-scan missed
   the pusher's item then the pusher's [sleepers] read sees this waiter and
   broadcasts — and since this waiter holds [m] from the increment until
   [Condition.wait] releases it, the broadcast cannot fire in the gap. *)
let idle_wait t (ws : worker_stats) =
  Mutex.lock t.m;
  Atomic.incr t.sleepers;
  let rec await () =
    if
      Atomic.get t.is_cancelled || budget_exhausted t
      || Atomic.get t.live = 0
    then `Done
    else if total_size t > 0 then `Retry
    else begin
      ws.queue_waits <- ws.queue_waits + 1;
      let t0 = Unix.gettimeofday () in
      Condition.wait t.wakeup t.m;
      let waited = Unix.gettimeofday () -. t0 in
      ws.wait_seconds <- ws.wait_seconds +. waited;
      (match t.metrics with
      | Some ms ->
          Obs.Metrics.observe ms.m_queue_wait waited;
          (match ms.m_sched_wait with
          | Some h -> Obs.Metrics.observe h waited
          | None -> ())
      | None -> ());
      await ()
    end
  in
  let r = await () in
  Atomic.decr t.sleepers;
  Mutex.unlock t.m;
  r

(* Claim the next item: own deque first (near end — depth-first), then one
   steal sweep over the victims (far end), then the idle path. Returns
   [None] on quiescence, exhausted budget, or cancellation. *)
let next t (ws : worker_stats) =
  let w = ws.worker_id in
  let rec claim () =
    if Atomic.get t.is_cancelled || budget_exhausted t then None
    else
      match try_claim t t.deques.(w) ~worker:w ~near:true with
      | Some _ as it -> it
      | None -> steal 1
  and steal k =
    if k >= t.jobs then
      if Atomic.get t.live = 0 then None
      else begin
        match idle_wait t ws with `Done -> None | `Retry -> claim ()
      end
    else
      let v = (w + k) mod t.jobs in
      (* Under {!Lifo} a thief takes the far (oldest, shallowest) end —
         classic work stealing. Under {!Fifo} the contract is arrival
         order for everyone, so a thief takes the same end the owner
         would. *)
      let near = match t.order with Lifo -> false | Fifo -> true in
      match try_claim t t.deques.(v) ~worker:w ~near with
      | Some _ as it ->
          ws.steals <- ws.steals + 1;
          (match t.metrics with
          | Some ms ->
              Mutex.lock ms.mmet;
              Obs.Metrics.incr ms.m_steals;
              Mutex.unlock ms.mmet
          | None -> ());
          it
      | None -> steal (k + 1)
  in
  claim ()

(* Publish a completed item's children on the worker's own deque and clear
   its in-flight slot in one lock acquisition. Children are pushed even
   after cancellation: nothing will claim them ([next] checks the flag
   first), but a checkpoint taken after [run] returns must see the child
   frontier of every completed replay, or resuming would silently drop
   those subtrees. *)
let finish t ~worker children =
  let d = t.deques.(worker) in
  let children = List.filter t.admit children in
  let n = List.length children in
  Mutex.lock d.lock;
  if n > 0 then insert_locked t t.deques.(worker) children n;
  d.current <- None;
  Mutex.unlock d.lock;
  (* The finished item leaves [live] only after its children entered it, so
     the counter never dips to zero while its subtree is unpublished. *)
  Atomic.decr t.live;
  if n > 0 then observe_frontier t;
  (* Wake idle thieves for the children, and — when [live] hit zero — for
     the quiescence they are waiting on. *)
  notify t

let worker_loop t ws f =
  let rec go () =
    match next t ws with
    | None -> ()
    | Some item ->
        let children =
          match f ~worker:ws.worker_id item with
          | children -> children
          | exception exn ->
              (* Capture the backtrace before [finish] runs any code that
                 would overwrite it, and keep [live] honest so peers
                 terminate instead of waiting forever on a worker that
                 died. *)
              let bt = Printexc.get_raw_backtrace () in
              finish t ~worker:ws.worker_id [];
              Printexc.raise_with_backtrace exn bt
        in
        ws.items_run <- ws.items_run + 1;
        finish t ~worker:ws.worker_id children;
        go ()
  in
  go ()

let run t f =
  Mutex.lock t.m;
  if t.ran then begin
    Mutex.unlock t.m;
    invalid_arg "Scheduler.run: already ran"
  end;
  t.ran <- true;
  Mutex.unlock t.m;
  if pending t = 0 then ()
  else if t.jobs = 1 then worker_loop t t.stats.(0) f
  else begin
    let others =
      Array.init (t.jobs - 1) (fun i ->
          let ws = t.stats.(i + 1) in
          Domain.spawn (fun () -> worker_loop t ws f))
    in
    (* Worker exceptions propagate with the backtrace captured at the catch
       site ([Domain.join] already re-raises with the spawned domain's
       backtrace; the main worker's is captured here). *)
    let main_exn =
      match worker_loop t t.stats.(0) f with
      | () -> None
      | exception exn ->
          let bt = Printexc.get_raw_backtrace () in
          (* Unblock the pool before joining, or the join deadlocks. *)
          cancel t;
          Some (exn, bt)
    in
    let join_exn =
      Array.fold_left
        (fun acc d ->
          match Domain.join d with
          | () -> acc
          | exception exn ->
              let bt = Printexc.get_raw_backtrace () in
              cancel t;
              (match acc with None -> Some (exn, bt) | Some _ -> acc))
        None others
    in
    match (main_exn, join_exn) with
    | Some (exn, bt), _ | None, Some (exn, bt) ->
        Printexc.raise_with_backtrace exn bt
    | None, None -> ()
  end
