(** Per-run verifier state shared by all ranks' interposition layers.

    Holds the logical clocks (behind a first-class clock module, so Lamport
    and vector variants share all verifier code), the epochs recorded during
    the run, the guided-replay plan, and the bounding-heuristic knobs.

    Clocks are stored {e encoded} (as [int array]) and mutated in place
    through the clock module's [tick_into]/[merge_into]/[is_late_enc]
    block — no decode/apply/encode round trip, no allocation per operation.
    This keeps every other DAMPI module monomorphic and the replay hot path
    allocation-free (see DESIGN.md, "Hot path & allocation discipline").
    Piggyback payload buffers come from a per-state free list recycled by
    the interposition layer once a received clock has been merged. *)

type mode = Self_run | Guided_run

type piggyback_mode =
  | Separate  (** shadow-communicator messages — the paper's choice (§II-D) *)
  | Inline  (** pack the clock into the user payload (datatype packing) *)

type config = {
  clock : (module Clocks.Clock_intf.S);
  mixing_bound : int option;
      (** bounded mixing [k] (§III-B2); [None] = unbounded *)
  piggyback : piggyback_mode;
  dual_clock : bool;
      (** the paper's §V future-work mechanism: keep a second, {e lagging}
          clock for transmission. The analysis clock ticks at every
          non-deterministic event as usual; the transmitted clock picks the
          ticks up only at Wait/Test. A send issued between a wildcard
          [Irecv] and its completion then carries a clock that predates the
          epoch and is correctly judged late — covering the Fig. 10 pattern
          the baseline algorithm misses. *)
  epoch_cost : float;
      (** virtual CPU seconds DAMPI burns per non-deterministic event
          (RecordEpochData, logging, deferred-piggyback setup) *)
  late_check_cost : float;
      (** virtual CPU seconds per received message for the piggyback
          extraction + late-message analysis *)
}

let make_config ?(clock = (module Clocks.Lamport : Clocks.Clock_intf.S))
    ?mixing_bound ?(piggyback = Separate) ?(dual_clock = false)
    ?(epoch_cost = 4.5e-5) ?(late_check_cost = 1.2e-6) () =
  { clock; mixing_bound; piggyback; dual_clock; epoch_cost; late_check_cost }

let default_config = make_config ()

exception Replay_cancelled
(** Raised from inside a simulated rank when the scheduler has poisoned the
    run (an error was already found elsewhere and [--stop-first] is on). *)

(* Cached metric handles, resolved once at [create]. *)
type smetrics = {
  m_piggyback_bytes : Obs.Metrics.counter;
  m_piggyback_msgs : Obs.Metrics.counter;
  m_clock_merges : Obs.Metrics.counter;
  m_epochs_recorded : Obs.Metrics.counter;
  m_epochs_completed : Obs.Metrics.counter;
  m_clock_buf_reuses : Obs.Metrics.counter;
      (* piggyback encode buffers served from the free list *)
  m_clock_merge_t : Obs.Metrics.histogram option;
      (* [--profile]: wall time of each clock merge *)
}

type monitor_warning = {
  warn_pid : int;
  warn_epoch_id : int;
  warn_op : string;  (** the clock-transmitting operation that triggered it *)
}

type t = {
  np : int;
  config : config;
  plan : Decisions.plan;
  clocks : int array array;  (** per world pid, encoded *)
  xmit_clocks : int array array;
      (** dual-clock mode: the lagging clocks that piggybacks carry *)
  mode : mode array;
  epochs : Epoch.t list array;
      (** per pid, newest first — "existing local wildcard receives" that
          late messages are matched against *)
  mutable completed : Epoch.t list;  (** global completion order, reversed *)
  mutable completed_count : int;
  fork_index : int;
      (** global index of the decision this run re-forces; -1 on the initial
          self run. Bounded mixing measures depth from here. *)
  pcontrol_depth : int array;
      (** loop-abstraction nesting (§III-B1); epochs recorded while > 0 are
          not expandable *)
  open_wildcards : (int, Epoch.t) Hashtbl.t;
      (** user request uid -> epoch, for wildcard receives posted but not yet
          completed — the §V limitation monitor's watch set, per owner *)
  mutable warnings : monitor_warning list;
  mutable divergences : int;
      (** guided-mode wildcard events with no decision in the plan — replay
          divergence, should be zero for deterministic programs *)
  obs : smetrics option;
  poison : (unit -> bool) option;
      (** polled at every interposed call; [true] cancels the replay *)
  clock_width : int;  (** cells per encoded clock, [C.width ~np] *)
  pb_pool : int array array;
      (** free list of piggyback encode buffers (a fixed-capacity stack:
          push/pop never allocates); slots above [pb_pool_top] are dead *)
  mutable pb_pool_top : int;
  mutable pb_reuses : int;
  mutable pending_pb_msgs : int;
      (** piggyback counts batched locally; {!flush_metrics} pushes them to
          the shard once per replay instead of twice per message *)
  mutable pending_pb_bytes : int;
}

let create ?(config = default_config) ?metrics ?(profile = false) ?poison ~np
    ~plan ~fork_index () =
  let module C = (val config.clock) in
  {
    np;
    config;
    plan;
    clocks = Array.init np (fun _ -> C.make_enc ~np);
    xmit_clocks = Array.init np (fun _ -> C.make_enc ~np);
    mode =
      Array.init np (fun pid ->
          if plan.Decisions.guided_epoch.(pid) >= 0 then Guided_run
          else Self_run);
    epochs = Array.make np [];
    completed = [];
    completed_count = Decisions.length plan;
    fork_index;
    pcontrol_depth = Array.make np 0;
    open_wildcards = Hashtbl.create 16;
    warnings = [];
    divergences = 0;
    obs =
      Option.map
        (fun sh ->
          {
            m_piggyback_bytes = Obs.Metrics.counter sh "dampi.piggyback_bytes";
            m_piggyback_msgs = Obs.Metrics.counter sh "dampi.piggyback_msgs";
            m_clock_merges = Obs.Metrics.counter sh "dampi.clock_merges";
            m_epochs_recorded = Obs.Metrics.counter sh "dampi.epochs_recorded";
            m_epochs_completed =
              Obs.Metrics.counter sh "dampi.epochs_completed";
            m_clock_buf_reuses = Obs.Metrics.counter sh "dampi.clock_buf_reuses";
            m_clock_merge_t =
              (if profile then
                 Some (Obs.Metrics.histogram sh "profile.clock_merge_s")
               else None);
          })
        metrics;
    poison;
    clock_width = C.width ~np;
    pb_pool = Array.make ((4 * np) + 16) [||];
    pb_pool_top = 0;
    pb_reuses = 0;
    pending_pb_msgs = 0;
    pending_pb_bytes = 0;
  }

(* The in-replay poison check: polled at every interposed MPI call so a
   poisoned replay aborts at its next call instead of running to the end. *)
let check_poison st =
  match st.poison with
  | Some f when f () -> raise Replay_cancelled
  | Some _ | None -> ()

let count_piggyback st ~bytes =
  st.pending_pb_msgs <- st.pending_pb_msgs + 1;
  st.pending_pb_bytes <- st.pending_pb_bytes + bytes

(* Push the locally batched counts to the metrics shard. The runner calls
   this once per replay, after the runtime returns (on every outcome), so
   the end-of-run totals are identical to per-message counting. *)
let flush_metrics st =
  match st.obs with
  | Some m ->
      if st.pending_pb_msgs > 0 then begin
        Obs.Metrics.add m.m_piggyback_msgs st.pending_pb_msgs;
        Obs.Metrics.add m.m_piggyback_bytes st.pending_pb_bytes;
        st.pending_pb_msgs <- 0;
        st.pending_pb_bytes <- 0
      end;
      if st.pb_reuses > 0 then begin
        Obs.Metrics.add m.m_clock_buf_reuses st.pb_reuses;
        st.pb_reuses <- 0
      end
  | None -> ()

(* ---- Clock operations (in place on the encodings) ---- *)

let scalar st me =
  let module C = (val st.config.clock) in
  C.scalar_enc ~me st.clocks.(me)

(* Piggyback buffer free list: a send needs a snapshot of the current clock
   that survives until the receiver merges it, so the payload cannot alias
   the live clock. The interposition layer returns each consumed buffer via
   [release_clock_buf]; steady state allocates nothing. *)
let alloc_clock_buf st =
  if st.pb_pool_top > 0 then begin
    st.pb_pool_top <- st.pb_pool_top - 1;
    st.pb_reuses <- st.pb_reuses + 1;
    st.pb_pool.(st.pb_pool_top)
  end
  else Array.make st.clock_width 0

let release_clock_buf st buf =
  if
    Array.length buf = st.clock_width
    && st.pb_pool_top < Array.length st.pb_pool
  then begin
    st.pb_pool.(st.pb_pool_top) <- buf;
    st.pb_pool_top <- st.pb_pool_top + 1
  end

(* What goes on the wire: the lagging clock under dual-clock mode. *)
let clock_payload st me =
  let enc =
    if st.config.dual_clock then st.xmit_clocks.(me) else st.clocks.(me)
  in
  let buf = alloc_clock_buf st in
  Array.blit enc 0 buf 0 st.clock_width;
  Mpi.Payload.Ints buf

let clock_of_payload (_ : t) payload =
  match payload with
  | Mpi.Payload.Ints arr -> arr
  | Mpi.Payload.Arr arr -> Array.map Mpi.Payload.to_int arr
  | p ->
      Mpi.Types.mpi_errorf "malformed piggyback payload (%d bytes)"
        (Mpi.Payload.size_bytes p)

let merge_in st me enc =
  (match st.obs with
  | Some m -> Obs.Metrics.incr m.m_clock_merges
  | None -> ());
  let module C = (val st.config.clock) in
  match st.obs with
  | Some { m_clock_merge_t = Some h; _ } ->
      Obs.Metrics.time h (fun () ->
          C.merge_into ~into:st.clocks.(me) enc;
          if st.config.dual_clock then
            C.merge_into ~into:st.xmit_clocks.(me) enc)
  | _ ->
      C.merge_into ~into:st.clocks.(me) enc;
      if st.config.dual_clock then
        C.merge_into ~into:st.xmit_clocks.(me) enc

(* Dual-clock synchronization point ("when a Wait/Test is encountered",
   §V): the transmitted clock catches up with the analysis clock. *)
let sync_xmit st me =
  if st.config.dual_clock then
    let module C = (val st.config.clock) in
    C.merge_into ~into:st.xmit_clocks.(me) st.clocks.(me)

(* ---- Epoch lifecycle ---- *)

(* Record a new epoch at a self-run wildcard event: returns it, having
   ticked the owner's clock (RecordEpochData + LCi++ of Algorithm 1). *)
let record_epoch st ~me ~kind ~ctx ~tag =
  let module C = (val st.config.clock) in
  let pre = st.clocks.(me) in
  (* The epoch keeps its clock for the run's lifetime: this is the one
     intentional per-epoch allocation on the hot path. *)
  let clock_enc = Array.make st.clock_width 0 in
  C.epoch_clock_into ~me ~pre ~into:clock_enc;
  let epoch =
    Epoch.make ~owner:me ~id:(C.scalar_enc ~me pre) ~kind ~ctx ~tag ~clock_enc
  in
  C.tick_into ~me st.clocks.(me);
  st.epochs.(me) <- epoch :: st.epochs.(me);
  (match st.obs with
  | Some m -> Obs.Metrics.incr m.m_epochs_recorded
  | None -> ());
  epoch

(* Tick without recording — a guided (forced) wildcard event must keep the
   clock evolution identical to the parent run's. *)
let tick st me =
  let module C = (val st.config.clock) in
  C.tick_into ~me st.clocks.(me)

(* An epoch completes when its match becomes known. Assigns the global
   completion index and applies the bounded-mixing window: on a forked run,
   only epochs within [k] decisions of the fork stay expandable. *)
let complete_epoch st (epoch : Epoch.t) ~matched_src =
  Epoch.set_matched epoch matched_src;
  epoch.Epoch.global_index <- st.completed_count;
  st.completed_count <- st.completed_count + 1;
  (match st.config.mixing_bound with
  | Some k when st.fork_index >= 0 ->
      if epoch.Epoch.global_index - st.fork_index > k then
        epoch.Epoch.expandable <- false
  | Some _ | None -> ());
  (match st.obs with
  | Some m -> Obs.Metrics.incr m.m_epochs_completed
  | None -> ());
  st.completed <- epoch :: st.completed

(* ---- Late-message analysis (FindPotentialMatches of Algorithm 1) ---- *)

(* A message from [src_rank] (on [ctx] with [tag]) carrying send-clock
   [send_enc] completed at process [me]: every epoch of [me] whose spec it
   satisfies and with respect to which it is late gains [src_rank] as a
   potential match. With an imprecise scalar clock the scan prunes on the
   epoch id (epochs with id <= send scalar cannot be "greater"). *)
let find_potential_matches st ~me ~src_rank ~ctx ~tag ~send_enc =
  let module C = (val st.config.clock) in
  let send_scalar = C.scalar_enc ~me send_enc in
  let rec scan = function
    | [] -> ()
    | (e : Epoch.t) :: rest ->
        if (not C.precise) && e.Epoch.id < send_scalar then
          (* Scalar lateness is [send <= id]; the epochs list is
             newest-first, so ids only decrease from here: stop. *)
          ()
        else begin
          if
            Epoch.spec_matches e ~ctx ~tag
            && C.is_late_enc ~send:send_enc ~epoch:e.Epoch.clock_enc
          then Epoch.add_potential e src_rank;
          scan rest
        end
  in
  scan st.epochs.(me)

(* ---- Guided replay ---- *)

(* Mode transition at each non-deterministic event (Algorithm 1's check at
   MPI_Irecv entry): past the guided window the process rediscovers. *)
let refresh_mode st me =
  if st.mode.(me) = Guided_run then
    if not (Decisions.in_guided_window st.plan ~owner:me ~epoch_id:(scalar st me))
    then st.mode.(me) <- Self_run

let guided_src st me ~kind =
  match
    Decisions.forced_src st.plan ~owner:me ~epoch_id:(scalar st me) ~kind
  with
  | Some src -> Some src
  | None ->
      (* Probes that failed in the parent run leave no decision; only count
         a missing receive decision as replay divergence. *)
      if kind = Epoch.Wildcard_recv then st.divergences <- st.divergences + 1;
      None

(* ---- §V limitation monitor ---- *)

let watch_wildcard st ~req_uid epoch =
  Hashtbl.replace st.open_wildcards req_uid epoch

let unwatch_wildcard st ~req_uid = Hashtbl.remove st.open_wildcards req_uid

(* Called before any operation that transmits the clock (send, collective):
   if [me] has an open wildcard receive whose tick is already folded into
   the clock being sent, the run exhibits the pattern DAMPI cannot handle
   (Fig. 10); flag it. *)
let monitor_clock_escape st ~me ~op =
  Hashtbl.iter
    (fun _uid (e : Epoch.t) ->
      if e.Epoch.owner = me then
        let dup =
          List.exists
            (fun w -> w.warn_pid = me && w.warn_epoch_id = e.Epoch.id)
            st.warnings
        in
        if not dup then
          st.warnings <-
            { warn_pid = me; warn_epoch_id = e.Epoch.id; warn_op = op }
            :: st.warnings)
    st.open_wildcards

(* ---- Loop iteration abstraction (§III-B1) ---- *)

let pcontrol st me level =
  match level with
  | 1 -> st.pcontrol_depth.(me) <- st.pcontrol_depth.(me) + 1
  | 0 -> st.pcontrol_depth.(me) <- max 0 (st.pcontrol_depth.(me) - 1)
  | _ -> ()

let in_abstracted_loop st me = st.pcontrol_depth.(me) > 0

(* ---- End-of-run summary ---- *)

let completed_epochs st = List.rev st.completed
let all_epochs st = Array.to_list st.epochs |> List.concat
let wildcard_events st = List.length (all_epochs st)
let warnings st = List.rev st.warnings
