(** On-disk checkpoint of an interrupted exploration.

    A checkpoint is a consistent cut of the depth-first walk: the canonical
    counters and findings accumulated over {e completed} replays, the
    {!schedule_key}s of those replays, and the outstanding frontier (every
    queued or in-flight fork item at the cut). Resuming replays the frontier
    under the same configuration; frontier items whose key is already in
    [completed] are re-run {e expand-only} (their children are regenerated,
    deterministically identical, but nothing is re-counted), so the resumed
    exploration provably converges to the same canonical report as an
    uninterrupted run.

    The format is versioned line-oriented text, written atomically (temp
    file + rename in the same directory), and self-contained: it is the wire
    format the distributed mode will ship between workers. *)

val version : int
(** Current format version; {!load} rejects any other with a clear error. *)

(** One pending guided run, mirroring the explorer's work item. *)
type item = {
  prefix : Decisions.decision list;
  choice : Decisions.decision;
  sleep : Epoch.summary list;
      (** sleep set inherited from the ancestors that created this item:
          completed epochs whose alternatives a sibling subtree already
          covers. Travels with the item — in checkpoints and over the
          wire — so sleep-set pruning makes identical suppression
          decisions wherever (and whenever) the item executes. Omitted
          from the text when empty; 2-field item lines from older
          checkpoints parse with an empty sleep set. *)
}

type t = {
  label : string;  (** workload identity; validated by the CLI on resume *)
  np : int;
  complete : bool;  (** exploration finished; resuming just re-reports *)
  runs : int;
  runs_cancelled : int;
  runs_timed_out : int;
  runs_retried : int;
  runs_crashed : int;
  monitor_alerts : int;
  bounded_epochs : int;
  wildcards_analyzed : int;
  first_run_makespan : float;
  total_virtual_time : float;
  findings : Report.finding list;
  completed : string list;  (** {!schedule_key}s of counted replays *)
  frontier : item list;
  epoch : int;
      (** highest fencing epoch the coordinator granted before the cut
          (distributed mode — see {!Coordinator}); [0] for runs that were
          never distributed. A restarted coordinator starts granting at
          [epoch + 1], so sessions admitted before the crash are fenced.
          The field is omitted from the text when zero, keeping old
          readers and non-distributed checkpoints unchanged. *)
  pruned : int;
      (** schedules the independence analysis suppressed before the cut;
          omitted from the text when zero, like [epoch]. *)
}

val schedule_key : Decisions.decision list -> string
(** Canonical textual key of a forced schedule (["-"] for the self run).
    Pure function of the decisions, so keys agree across processes. *)

val schedule_of_key : string -> Decisions.decision list option
(** Inverse of {!schedule_key}. *)

val item_key : item -> string
(** [schedule_key (prefix @ [choice])] — the schedule the item would run. *)

(** {2 Serialization primitives}

    Exposed for the distributed wire protocol ({!Wire}), which frames the
    same encodings over sockets instead of a checkpoint file. *)

val enc : string -> string
(** Percent-encode (RFC 3986 unreserved set): the result contains no
    whitespace, newlines, or delimiter characters, whatever the input. *)

val dec : string -> string
(** Inverse of {!enc}. *)

val decision_to_key : Decisions.decision -> string
val decision_of_key : string -> Decisions.decision option

val summary_to_key : Epoch.summary -> string
(** One whitespace-free token per epoch summary (sleep-set element). *)

val summary_of_key : string -> Epoch.summary option

val sleep_key : Epoch.summary list -> string
(** [;]-joined {!summary_to_key}s, ["-"] for the empty set. *)

val sleep_of_key : string -> Epoch.summary list option

val error_to_line : Report.error -> string
(** [tag payload] form, whitespace-safe; parsed back by {!error_of_line}. *)

val error_of_line : string -> string -> Report.error option
(** [error_of_line tag payload] inverts {!error_to_line} (the line split at
    its first space). *)

val to_string : t -> string
val of_string : string -> (t, string) result

type write_outcome =
  | Written
  | Degraded of string
      (** the write failed (ENOSPC, EIO, …); the previous on-disk document,
          if any, is intact, and the temp file has been cleaned up *)

val atomic_write : ?fault:(unit -> bool) -> string -> string -> write_outcome
(** [atomic_write path text]: tempfile + fsync + rename in [path]'s
    directory, so a reader or a crash mid-write only ever observes a
    complete document and the replace is durable. Never raises: every I/O
    failure is classified into [Degraded]. [?fault] is consulted before the
    write; returning [true] simulates an ENOSPC (chaos testing). Also used
    by {!Prefix_cache.save} for the sidecar. *)

val save : ?fault:(unit -> bool) -> t -> string -> write_outcome
(** {!atomic_write} of {!to_string}. *)

val load : string -> (t, string) result
