(** A worker process of the distributed mode.

    Serves one coordinator connection: sends [hello], receives the job
    description, resolves it into a runner (the CLI supplies the registry
    lookup; tests supply their own), then loops executing leased fork items
    through the shared {!Executor.run_attempts} watchdog/retry machinery
    and shipping result deltas back. Heartbeats are emitted from inside
    long replays via the poison hook, so a wedged-but-alive worker is
    distinguishable from a dead one. *)

(** What a resolved job gives the worker: how to run one replay. *)
type resolved = {
  np : int;
  runner : Executor.runner;
  rb : Executor.robustness;
      (** watchdog/retry envelope applied to every leased replay; the
          checkpoint/interrupt fields are coordinator business and ignored
          here *)
}

val serve :
  resolve:(Wire.job -> (resolved, string) result) ->
  Unix.file_descr ->
  unit
(** Speak the worker side of the protocol on a connected socket until
    [shutdown] or disconnect. Never raises on connection loss (the
    coordinator's re-lease handles it); a [resolve] error is reported as a
    [fail] message. *)

val serve_addr :
  resolve:(Wire.job -> (resolved, string) result) ->
  [ `Connect of Wire.addr | `Listen of Wire.addr ] ->
  (unit, string) result
(** [`Connect] dials a listening coordinator ([dampi worker --connect]);
    [`Listen] binds and waits for the coordinator to dial in
    ([dampi worker --listen]), serving exactly one session. A [`Connect]
    that finds the coordinator already gone (socket unlinked or refusing)
    is [Ok]: the run finished before this worker joined. *)
