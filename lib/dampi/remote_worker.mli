(** A worker process of the distributed mode.

    Serves coordinator sessions: sends [hello], passes the optional HMAC
    challenge, receives the job description, resolves it into a runner
    (the CLI supplies the registry lookup; tests supply their own), then
    loops executing leased fork items through the shared
    {!Executor.run_attempts} watchdog/retry machinery and shipping result
    deltas back. Heartbeats are emitted from inside long replays via the
    poison hook, so a wedged-but-alive worker is distinguishable from a
    dead one.

    {b Crash tolerance.} A worker carries a {!session} across connection
    losses: the stable session id, the last granted fencing epoch, and at
    most one {e pending} results frame whose send was never known to
    complete. On reconnect the worker re-hellos with all three; the
    coordinator either resumes the outstanding lease (the pending frame
    is then delivered and counted, exactly once) or fences the session
    (the frame is delivered and discarded). [`Connect] workers redial a
    lost coordinator with capped exponential backoff and deterministic
    jitter; [`Listen] workers simply keep accepting, so a coordinator
    restarted from a checkpoint finds them where it left them. *)

(** What a resolved job gives the worker: how to run one replay. *)
type resolved = {
  np : int;
  runner : Executor.runner;
  rb : Executor.robustness;
      (** watchdog/retry envelope applied to every leased replay; the
          checkpoint/interrupt fields are coordinator business and ignored
          here *)
  prune : bool;
      (** sleep-set pruning at expansion ({!Prune.expand}); must match the
          coordinator's setting (shipped in the job params by the CLI) so
          both sides suppress identically *)
}

type session
(** Worker identity surviving reconnects: session id, granted fencing
    epoch, and the pending (unacknowledged) results frame, if any. *)

val make_session : ?id:string -> unit -> session
(** A fresh session (never admitted, nothing pending). [id] defaults to a
    unique [w<pid>-<hex>] string. *)

type telemetry
(** The worker's local metric registry paired with its shipped-so-far
    snapshot. Metric deltas ({!Obs.Metrics.to_delta}) are shipped to the
    coordinator piggybacked on heartbeats and ahead of every results
    frame; the pair must outlive the connection (a redialling worker
    reuses it) so deltas stay monotone across sessions. *)

val telemetry : Obs.Metrics.t -> telemetry
(** Wrap a caller-owned registry (shard 0 is the worker's write shard).
    The caller keeps the registry handle — [dampi worker --metrics-out]
    snapshots it at exit for offline debugging. *)

type reconnect = {
  max_redials : int;  (** consecutive failed dials before giving up *)
  backoff : float;  (** base delay, doubled per attempt, capped at 5 s *)
  seed : int;
      (** jitter seed ({!Sim.Splitmix.derive}d with the session id): each
          delay is scaled by a deterministic factor in [0.5, 1.5) so
          reconnect storms decorrelate yet tests reproduce exactly *)
}

val default_reconnect : reconnect
(** [{ max_redials = 5; backoff = 0.1; seed = 0 }] *)

val serve :
  ?auth:string ->
  ?session:session ->
  ?telemetry:telemetry ->
  resolve:(Wire.job -> (resolved, string) result) ->
  Unix.file_descr ->
  [ `Shutdown | `Disconnected | `Rejected of string ]
(** Speak the worker side of the protocol on a connected socket. Never
    raises on connection loss. [`Shutdown]: the coordinator declared the
    run complete (also returned after an unresolvable job — redialling
    cannot fix that). [`Disconnected]: the link died or the coordinator
    detached; the run may still be live, and [session] (if supplied)
    carries the lease/pending state a reconnect needs. [`Rejected]: the
    coordinator refused us (version or auth) — retrying is pointless.
    [auth] is the shared secret for the HMAC challenge; without one, a
    challenge is answered with the empty secret (and will be rejected). *)

val serve_addr :
  ?auth:string ->
  ?session:session ->
  ?telemetry:telemetry ->
  ?reconnect:reconnect ->
  ?stop:(unit -> bool) ->
  resolve:(Wire.job -> (resolved, string) result) ->
  [ `Connect of Wire.addr | `Listen of Wire.addr ] ->
  (unit, string) result
(** [`Connect] dials a listening coordinator ([dampi worker --connect]).
    A lost connection is redialled per [reconnect] (session state intact),
    so a coordinator crash + restart-from-checkpoint costs the worker a
    few backoff sleeps, not its life. A first dial that finds the
    coordinator already gone (socket unlinked or refusing) is still [Ok]:
    the run finished before this worker joined. Exhausting [max_redials]
    is also [Ok] (logged): the coordinator never came back.

    [`Listen] binds and serves {e successive} sessions on one persistent
    session identity ([dampi worker --listen]) — after a disconnect or a
    coordinator [detach] it goes straight back to accepting, which is
    what lets a restarted coordinator re-dial its surviving workers. The
    loop ends with [Ok] on a [shutdown] (run complete), on SIGTERM (the
    worker installs a handler unless [stop] is given — embedded callers
    poll their own flag via [stop]), or when [stop] answers true; it ends
    with [Error] if this worker is rejected or the address cannot be
    bound.

    Both modes answer HMAC challenges with [auth]. *)
