(** Sleep-set / independence pruning of the schedule space, and the
    frontier admission filter.

    {b Independence.} Two completed epochs are {e independent} when their
    match footprints are disjoint ({!footprint_disjoint}): same
    communicator context, different owners, and no rank shared among
    [{owner, matched source, alternate sources}]. Re-forcing one such
    epoch cannot change what the other could have matched, so exploring
    the alternatives of both — in both orders — replays equivalent
    interleavings twice. This is the classic DPOR / sleep-set insight the
    POE line descends from; the differential harness
    ([test/test_pruning.ml]) asserts, for every registry workload, that
    pruned and unpruned exploration reach the same canonical report.

    {b Sleep sets.} Each frontier item carries the epochs whose
    alternatives a sibling subtree already owns ({!Checkpoint.item}[.sleep]).
    At expansion, an epoch rediscovered {e unchanged} (structural equality
    on the whole summary — owner, kind, context, tag, match, alternatives,
    expandability) is not expanded again; anything observed differently
    escapes the sleep set and is explored in full. Sleep sets travel with
    the items, so pruning decisions are identical across worker counts,
    transports, and resumes.

    {b Admission.} {!Seen} deduplicates frontier schedules by
    {!Checkpoint.item_key} at enqueue time — the report layer's
    duplicate-schedule detection hoisted to where it prevents the replay
    instead of merely hiding its findings. In a normal tree walk every
    key is unique (a child's key extends its parent's), so this fires on
    degenerate paths only (resume overlap, re-leased work); it is cheap
    insurance, not the pruning lever. *)

val footprint_disjoint : Epoch.summary -> Epoch.summary -> bool
(** Symmetric; conservatively false across communicator contexts. *)

type expansion = {
  items : Checkpoint.item list;
      (** deepest epoch first, alternatives ascending — the historical
          expansion order *)
  suppressed : int;
      (** alternatives not enqueued because their epoch slept *)
}

val expand :
  prune:bool ->
  sleep:Epoch.summary list ->
  plan_decisions:Decisions.decision list ->
  Epoch.summary list ->
  expansion
(** The child frontier of a completed replay, given its epochs in
    completion order. [prune:false] reproduces the unpruned expansion
    exactly (no suppression, empty child sleep sets), so every call site
    shares one expansion function and cached or remote expansion is
    bit-identical to local. *)

(** Thread-safe schedule-key dedup for the enqueue paths. *)
module Seen : sig
  type t

  val create : unit -> t

  val admit : t -> Checkpoint.item -> bool
  (** True the first time a schedule key is offered, false after. *)

  val forget : t -> Checkpoint.item -> unit
  (** Allow a key to be admitted again — used when an interrupted item is
      requeued without having run. *)
end
