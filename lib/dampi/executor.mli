(** The execution layer under the exploration walk.

    {!Explorer} owns the walk (frontier expansion, counting, findings,
    checkpoints); this module owns {e how a replay runs}: the per-run
    context handed to a {!runner}, the robustness envelope (watchdog,
    retries, fault injection), and the retry loop that applies it. It is
    shared by both execution backends — the in-process domain pool and the
    remote worker processes of the distributed mode — so a replay behaves
    identically wherever it executes.

    The explorer drives whichever backend through the tiny {!t} interface:
    drain the frontier, snapshot the outstanding cut, report per-worker
    stats. *)

type checkpoint_cfg = {
  path : string;
  every : int;
      (** completed replays between periodic writes; 0 = only on
          interrupt/finish *)
  label : string;
      (** workload identity stored in (and validated against) the file *)
}

type robustness = {
  replay_timeout : float option;
  max_replay_steps : int option;
  max_retries : int;
  retry_backoff : float;
  fault : Mpi.Fault.spec option;
  net_fault : Mpi.Fault.Net.spec option;
      (** transport + persistence chaos ([--net-fault-seed]/
          [--net-fault-spec]): wire-level injection on distributed
          connections, plus [write_fail] for checkpoint writes *)
  checkpoint : checkpoint_cfg option;
  interrupt_after : int option;
}

val default_robustness : robustness

(** Per-run observability context threaded into the runner: which worker is
    executing, the metric shard that worker owns, the poison closure the
    interposition layer polls for in-replay cancellation, and the fault
    salt identifying this (replay, attempt) for deterministic injection. *)
type run_ctx = {
  worker : int;
  metrics : Obs.Metrics.shard option;
  poison : (unit -> bool) option;
  salt : int;
}

val null_ctx : run_ctx

type runner =
  ctx:run_ctx -> Decisions.plan -> fork_index:int -> Report.run_record

(** Observable moments of the attempt loop, for the caller's counters.
    Semantics match the explorer's report fields: one [Timed_out] per
    attempt the watchdog cut, one [Retried] per re-attempt (after a timeout
    or a transient fault), one [Transient_fault] per injected-fault crash
    that was absorbed by a retry, one [Cancelled] per externally poisoned
    attempt, and one [Attempt_wall] per attempt with its host duration. *)
type event =
  | Attempt_wall of float
  | Timed_out
  | Retried
  | Transient_fault
  | Cancelled

(** How the replay (possibly after retries) resolved. *)
type outcome =
  | Completed of Report.run_record
      (** ran to completion (crashes-as-findings included) *)
  | Poisoned  (** cut by the external poison (stop-first / interrupt) *)
  | Gave_up  (** every allowed attempt hit the watchdog *)

val run_attempts :
  rb:robustness ->
  runner:runner ->
  worker:int ->
  metrics:Obs.Metrics.shard option ->
  need_poison:bool ->
  external_poison:(unit -> bool) ->
  abort_retries:(unit -> bool) ->
  wrap:(attempt:int -> (unit -> Report.run_record) -> Report.run_record) ->
  on_event:(event -> unit) ->
  key:string ->
  Decisions.plan ->
  fork_index:int ->
  outcome
(** One guided replay under the robustness envelope: build the watchdog
    poison (wall deadline polled every 64 steps, exact step budget,
    [external_poison] checked first), derive the per-attempt fault salt
    from [key], execute [runner] through [wrap] (tracing spans), and retry
    on watchdog timeouts and transient injected faults up to
    [rb.max_retries] with capped exponential backoff — unless
    [abort_retries] says the exploration is being interrupted. [on_event]
    fires for every countable moment; the caller owns all counters. *)

val items_of_record :
  Report.run_record -> plan_decisions:Decisions.decision list ->
  Checkpoint.item list
(** The child frontier of a completed replay: one item per unexplored
    alternative of each expandable epoch, deepest epoch first and
    alternatives in ascending order. Pure function of the record and the
    plan, so every process expands children identically. *)

(** How a backend's drive ended. *)
type drive_outcome =
  | Drained
      (** quiescence, budget, or cooperative cancellation — the normal
          ends of a drive *)
  | Lost of { reason : string; leftover : Checkpoint.item list }
      (** the backend itself failed with work outstanding (the socket
          coordinator losing every worker); [leftover] is the consistent
          cut of that work, ready for another backend — or a checkpoint —
          to pick up *)

(** A running execution backend, as the explorer sees it. *)
type t = {
  label : string;  (** for traces/logs: ["pool"] or ["coordinator"] *)
  drive : unit -> drive_outcome;
      (** drain the frontier to quiescence, budget, or cancellation *)
  snapshot : unit -> Checkpoint.item list;
      (** consistent cut of the outstanding work (queued + in flight),
          callable while [drive] runs *)
  stats : unit -> Report.worker_stat list;
      (** per-worker counters, meaningful after [drive] returns *)
  fence_epoch : unit -> int;
      (** highest fencing epoch granted so far (0 for the in-process
          pool) — persisted in checkpoints so a restarted coordinator
          fences its predecessor's sessions *)
}
