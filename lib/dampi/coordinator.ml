(* Frontier coordinator for the distributed mode: leases item batches to
   remote workers over the Wire protocol, ingests result deltas, re-leases
   on worker loss. Single-threaded select loop; see coordinator.mli. *)

let src = Logs.Src.create "dampi.coordinator" ~doc:"distributed coordinator"

module Log = (val Logs.src_log src : Logs.LOG)

type attach =
  | Fds of Unix.file_descr list
  | Listen of { addr : Wire.addr; ready : Wire.addr -> unit }
  | Dial of Wire.addr list

type setup = {
  attach : attach;
  job : Wire.job;
  lease_size : int;
  heartbeat_timeout : float;
}

let default_lease_size = 4
let default_heartbeat_timeout = 30.0

type stats = {
  leases : int;
  releases : int;
  workers_seen : int;
  workers_lost : int;
  results : int;
}

type lease = {
  lease_id : int;
  lease_items : Checkpoint.item list;
  sent_at : float;
}

type conn = {
  fd : Unix.file_descr;
  oc : out_channel;
  asm : Wire.assembler;
  mutable name : string;
  mutable state : [ `Greeting | `Jobbed | `Idle | `Leased of lease ];
  mutable last_seen : float;
  mutable alive : bool;
}

type cmetrics = {
  m_leases : Obs.Metrics.counter;
  m_releases : Obs.Metrics.counter;
  m_rtt : Obs.Metrics.histogram;
}

type t = {
  setup : setup;
  budget : int;
  mutable claimed : int;  (* items ever leased, net of re-leases *)
  mutable frontier : Checkpoint.item list;  (* stack *)
  mutable conns : conn list;
  listen_fd : Unix.file_descr option;
  listen_path : string option;  (* unix socket to unlink on close *)
  started : float;
  mutable next_lease : int;
  mutable st : stats;
  mutable ran : bool;
  metrics : cmetrics option;
}

let mkdirs_socket_fd addr =
  let sa = Wire.sockaddr_of_addr addr in
  let domain = Unix.domain_of_sockaddr sa in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Wire.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | Wire.Unix_sock p -> ( try Unix.unlink p with Unix.Unix_error _ -> ()));
  (fd, sa)

let create ?metrics ~budget setup =
  let listen_fd, listen_path =
    match setup.attach with
    | Listen { addr; ready } ->
        let fd, sa = mkdirs_socket_fd addr in
        Unix.bind fd sa;
        Unix.listen fd 16;
        ready addr;
        ( Some fd,
          match addr with Wire.Unix_sock p -> Some p | Wire.Tcp _ -> None )
    | Fds _ | Dial _ -> (None, None)
  in
  {
    setup;
    budget = max 0 budget;
    claimed = 0;
    frontier = [];
    conns = [];
    listen_fd;
    listen_path;
    started = Unix.gettimeofday ();
    next_lease = 0;
    st =
      { leases = 0; releases = 0; workers_seen = 0; workers_lost = 0;
        results = 0 };
    ran = false;
    metrics =
      Option.map
        (fun sh ->
          {
            m_leases = Obs.Metrics.counter sh "coordinator.leases";
            m_releases = Obs.Metrics.counter sh "coordinator.releases";
            m_rtt = Obs.Metrics.histogram sh "coordinator.worker_rtt_s";
          })
        metrics;
  }

let push t items = t.frontier <- items @ t.frontier

let outstanding t =
  List.concat_map
    (fun c ->
      match c.state with `Leased l when c.alive -> l.lease_items | _ -> [])
    t.conns

let snapshot t = t.frontier @ outstanding t
let pending t = List.length t.frontier
let stats t = t.st

(* ---- connection lifecycle ---- *)

(* Connections stay blocking: reads happen only after select reports the fd
   readable (so they return whatever is buffered without blocking), and
   writes are small frames a socket buffer absorbs. *)
let add_conn t fd =
  let c =
    {
      fd;
      oc = Unix.out_channel_of_descr fd;
      asm = Wire.assembler ();
      name = "?";
      state = `Greeting;
      last_seen = Unix.gettimeofday ();
      alive = true;
    }
  in
  t.conns <- t.conns @ [ c ];
  c

(* Drop a worker; its outstanding lease items go back to the front of the
   frontier for another worker. *)
let lose t c ~reason =
  if c.alive then begin
    c.alive <- false;
    (match c.state with
    | `Leased l ->
        let n = List.length l.lease_items in
        Log.warn (fun m ->
            m "worker %s lost (%s): re-leasing %d item(s)" c.name reason n);
        t.frontier <- l.lease_items @ t.frontier;
        t.claimed <- t.claimed - n;
        t.st <- { t.st with releases = t.st.releases + n };
        (match t.metrics with
        | Some ms ->
            for _ = 1 to n do Obs.Metrics.incr ms.m_releases done
        | None -> ())
    | _ ->
        Log.warn (fun m -> m "worker %s lost (%s)" c.name reason));
    t.st <- { t.st with workers_lost = t.st.workers_lost + 1 };
    c.state <- `Idle;
    (try Unix.close c.fd with Unix.Unix_error _ -> ())
  end

let send t c msg =
  try Wire.write_to_worker c.oc msg
  with Sys_error _ | Unix.Unix_error _ -> lose t c ~reason:"write failed"

(* ---- leasing ---- *)

let rec take_front n acc = function
  | rest when n = 0 -> (List.rev acc, rest)
  | [] -> (List.rev acc, [])
  | x :: tl -> take_front (n - 1) (x :: acc) tl

let maybe_lease t c =
  if c.alive && c.state = `Idle && t.frontier <> [] && t.claimed < t.budget
  then begin
    let n = min t.setup.lease_size (t.budget - t.claimed) in
    let items, rest = take_front n [] t.frontier in
    t.frontier <- rest;
    t.claimed <- t.claimed + List.length items;
    let lease_id = t.next_lease in
    t.next_lease <- t.next_lease + 1;
    c.state <-
      `Leased { lease_id; lease_items = items; sent_at = Unix.gettimeofday () };
    t.st <- { t.st with leases = t.st.leases + 1 };
    (match t.metrics with
    | Some ms -> Obs.Metrics.incr ms.m_leases
    | None -> ());
    send t c (Wire.Lease { lease_id; items })
  end

(* ---- message handling ---- *)

let handle_msg t c ~on_run msg =
  c.last_seen <- Unix.gettimeofday ();
  match msg with
  | Error e -> lose t c ~reason:("protocol error: " ^ e)
  | Ok (Wire.Hello { proto; id }) ->
      if proto <> Wire.proto_version then
        lose t c
          ~reason:
            (Printf.sprintf "protocol version %d (this build speaks %d)" proto
               Wire.proto_version)
      else begin
        c.name <- id;
        c.state <- `Jobbed;
        send t c (Wire.Job t.setup.job)
      end
  | Ok Wire.Ready -> (
      match c.state with
      | `Jobbed ->
          c.state <- `Idle;
          t.st <- { t.st with workers_seen = t.st.workers_seen + 1 };
          Log.info (fun m -> m "worker %s ready" c.name)
      | _ -> lose t c ~reason:"ready out of sequence")
  | Ok Wire.Heartbeat -> ()
  | Ok (Wire.Failed reason) -> lose t c ~reason:("worker failed: " ^ reason)
  | Ok (Wire.Results { lease_id; runs }) -> (
      match c.state with
      | `Leased l when l.lease_id = lease_id ->
          (* Validate the frame covers exactly the leased items before
             ingesting anything: all-or-nothing is what makes re-leases
             duplicate-free. *)
          let by_key =
            List.map (fun it -> (Checkpoint.item_key it, it)) l.lease_items
          in
          let matched =
            List.map
              (fun (r : Wire.run_result) ->
                (List.assoc_opt r.Wire.key by_key, r))
              runs
          in
          if
            List.length runs <> List.length l.lease_items
            || List.exists (fun (it, _) -> it = None) matched
          then lose t c ~reason:"results do not match the lease"
          else begin
            (match t.metrics with
            | Some ms ->
                Obs.Metrics.observe ms.m_rtt
                  (Unix.gettimeofday () -. l.sent_at)
            | None -> ());
            c.state <- `Idle;
            t.st <- { t.st with results = t.st.results + 1 };
            List.iter
              (fun (it, r) ->
                let item = Option.get it in
                (match (r : Wire.run_result).Wire.payload with
                | Some p -> push t p.Wire.children
                | None -> ());
                on_run ~item r)
              matched
          end
      | _ -> lose t c ~reason:"results for an unknown lease")

(* ---- the event loop ---- *)

let work_remains t =
  (t.frontier <> [] && t.claimed < t.budget)
  || List.exists
       (fun c -> c.alive && match c.state with `Leased _ -> true | _ -> false)
       t.conns

let live_workers t = List.filter (fun c -> c.alive) t.conns

let close_all t =
  List.iter
    (fun c ->
      if c.alive then begin
        send t c Wire.Shutdown;
        c.alive <- false;
        try Unix.close c.fd with Unix.Unix_error _ -> ()
      end)
    t.conns;
  (match t.listen_fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  match t.listen_path with
  | Some p -> ( try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
  | None -> ()

let drive t ~on_run ~should_stop ~tick =
  if t.ran then invalid_arg "Coordinator.drive: already ran";
  t.ran <- true;
  (* EPIPE must surface as an exception on write, not kill the process. *)
  let old_pipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  Fun.protect
    ~finally:(fun () ->
      (match old_pipe with
      | Some h -> (
          try Sys.set_signal Sys.sigpipe h
          with Invalid_argument _ | Sys_error _ -> ())
      | None -> ());
      close_all t)
  @@ fun () ->
  (match t.setup.attach with
  | Fds fds -> List.iter (fun fd -> ignore (add_conn t fd)) fds
  | Listen _ -> ()
  | Dial addrs ->
      List.iter
        (fun addr ->
          let sa = Wire.sockaddr_of_addr addr in
          let fd =
            Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0
          in
          match Unix.connect fd sa with
          | () -> ignore (add_conn t fd)
          | exception Unix.Unix_error (e, _, _) ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Log.warn (fun m ->
                  m "cannot dial %s: %s" (Wire.addr_to_string addr)
                    (Unix.error_message e)))
        addrs);
  let buf = Bytes.create 65536 in
  let rec loop () =
    if should_stop () then Ok ()
    else if not (work_remains t) then Ok ()
    else begin
      let live = live_workers t in
      (* Lost everyone (or nobody ever arrived): the frontier still holds
         the unfinished work, so the caller can checkpoint and resume. *)
      if
        live = []
        && (t.st.workers_seen > 0 || t.listen_fd = None
           || Unix.gettimeofday () -. t.started
              > t.setup.heartbeat_timeout)
      then
        Error
          (if t.st.workers_seen = 0 then "no workers connected"
           else
             Printf.sprintf "all %d worker(s) lost with work remaining"
               t.st.workers_seen)
      else begin
        List.iter (fun c -> maybe_lease t c) live;
        let fds =
          (match t.listen_fd with Some fd -> [ fd ] | None -> [])
          @ List.map (fun c -> c.fd) (live_workers t)
        in
        let readable, _, _ =
          try Unix.select fds [] [] 0.2
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        List.iter
          (fun fd ->
            if Some fd = t.listen_fd then begin
              match Unix.accept fd with
              | afd, _ -> ignore (add_conn t afd)
              | exception Unix.Unix_error _ -> ()
            end
            else
              match List.find_opt (fun c -> c.fd = fd && c.alive) t.conns with
              | None -> ()
              | Some c -> (
                  match Unix.read fd buf 0 (Bytes.length buf) with
                  | 0 -> lose t c ~reason:"connection closed"
                  | n ->
                      List.iter (handle_msg t c ~on_run) (Wire.feed c.asm buf n)
                  | exception
                      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
                    ->
                      ()
                  | exception Unix.Unix_error (e, _, _) ->
                      lose t c ~reason:(Unix.error_message e)))
          readable;
        (* Heartbeat scan: a worker silent past the timeout is dead even if
           its socket is technically open (wedged process, dead host). *)
        let now = Unix.gettimeofday () in
        List.iter
          (fun c ->
            if c.alive && now -. c.last_seen > t.setup.heartbeat_timeout then
              lose t c ~reason:"missed heartbeat")
          (live_workers t);
        tick ();
        loop ()
      end
    end
  in
  loop ()
