(* Frontier coordinator for the distributed mode: leases item batches to
   remote workers over the Wire protocol, ingests result deltas, re-leases
   on worker loss. Single-threaded select loop; see coordinator.mli.

   proto=2 separates the *connection* (a socket that can drop and come
   back) from the *session* (a worker identity that survives reconnects).
   Leases belong to sessions; each (re)admission is stamped with a
   monotone fencing epoch, and a results frame is ingested only when its
   epoch and lease id match the session's current ones — anything else is
   a zombie flush and is discarded whole. *)

let src = Obs.Log.src "dampi.coordinator"

module Log = (val Obs.Log.src_log src : Obs.Log.LOG)

type attach =
  | Fds of Unix.file_descr list
  | Listen of { addr : Wire.addr; ready : Wire.addr -> unit }
  | Dial of Wire.addr list

type setup = {
  attach : attach;
  job : Wire.job;
  lease_size : int;
  heartbeat_timeout : float;
  join_timeout : float;
  rejoin_grace : float;
  auth : string option;
  net_fault : Mpi.Fault.Net.spec option;
  outq_budget : int;
}

let default_lease_size = 4
let default_heartbeat_timeout = 30.0
let default_join_timeout = 30.0
let default_rejoin_grace = 1.0
let default_outq_budget = 262144

type stats = {
  leases : int;
  releases : int;
  workers_seen : int;
  workers_lost : int;
  results : int;
  reconnects : int;
  fenced : int;
  dup_results : int;
  backpressured : int;
}

type lease = {
  lease_id : int;
  lease_items : Checkpoint.item list;
  sent_at : float;
}

(* A worker identity: survives reconnects, owns the outstanding lease. *)
type sess = {
  sid : string;
  mutable epoch : int;  (* current fencing epoch grant *)
  mutable lease : lease option;
  mutable conn_fd : Unix.file_descr option;  (* bound connection, if any *)
  mutable lost_at : float;  (* when conn_fd went None *)
  mutable seen_ready : bool;  (* first ready counted in workers_seen *)
  mutable last_settled : (int * int) option;
      (* (epoch, lease_id) of the most recently ingested results frame:
         a second arrival of the same frame is duplicate delivery, not a
         zombie, and is counted separately *)
}

(* Hello fields carried across the auth round-trip. *)
type hello = {
  h_id : string;
  h_session : string;
  h_epoch : int;
  h_pending : int option;
  h_role : string option;
}

type conn = {
  fd : Unix.file_descr;
  oc : out_channel;
  asm : Wire.assembler;
  net : Mpi.Fault.Net.t;  (* chaos injector for this connection instance *)
  mutable name : string;
  mutable state :
    [ `Greeting  (* awaiting hello *)
    | `Challenged of string * hello  (* nonce sent, awaiting auth *)
    | `Jobbed of sess  (* welcomed + job sent, awaiting ready *)
    | `Bound of sess  (* ready; leases flow *)
    | `Observer  (* read-only [dampi top] client; progress frames flow *) ];
  mutable last_seen : float;
  mutable alive : bool;
  mutable outq : (float * string) list;
      (* due-time × serialized frame, FIFO. Delays are head-of-line (a
         TCP stream does not overtake itself); only an injected Hold_back
         reorders. Empty except under chaos or a genuinely slow peer. *)
  mutable outq_bytes : int;
  mutable held : string option;  (* injected reorder: flushed behind the
                                    next frame, or at the next loop tick *)
  mutable sever : bool;  (* injected truncation: cut the link once the
                            truncated prefix has been written *)
  mutable gap_ewma : float;
      (* smoothed inter-frame arrival gap, the RTT proxy behind the
         adaptive heartbeat grace: a slow link with long-but-regular gaps
         earns a longer silence allowance than a fast one going quiet *)
  mutable hb_extended : bool;  (* grace extension logged once per episode *)
}

type cmetrics = {
  m_leases : Obs.Metrics.counter;
  m_releases : Obs.Metrics.counter;
  m_reconnects : Obs.Metrics.counter;
  m_fenced : Obs.Metrics.counter;
  m_dup_results : Obs.Metrics.counter;
  m_backpressure : Obs.Metrics.counter;
  m_hb_grace : Obs.Metrics.counter;
  m_rtt : Obs.Metrics.histogram;
  m_wire_io : Obs.Metrics.histogram option;  (* present under --profile *)
}

type t = {
  setup : setup;
  budget : int;
  mutable claimed : int;  (* items ever leased, net of re-leases *)
  mutable frontier : Checkpoint.item list;  (* stack *)
  mutable conns : conn list;
  mutable conn_seq : int;  (* salt stream for per-connection chaos *)
  net_count : string -> unit;  (* net_fault.<kind> injection counters *)
  sessions : (string, sess) Hashtbl.t;
  mutable next_epoch : int;
  mutable anon : int;  (* synthetic ids for proto peers without a session *)
  listen_fd : Unix.file_descr option;
  listen_path : string option;  (* unix socket to unlink on close *)
  started : float;
  mutable next_lease : int;
  mutable st : stats;
  mutable ran : bool;
  mutable finish : [ `Done | `Abort ];  (* shutdown vs detach at close *)
  metrics : cmetrics option;
  admit : Checkpoint.item -> bool;
      (* enqueue filter on {!push} (seeds and ingested children); refunded
         leases bypass it — their items were admitted when first pushed. *)
  telemetry : (string, Obs.Metrics.snapshot) Hashtbl.t;
      (* session id -> accumulated worker metric deltas *)
  progress : unit -> (string * string) list;
      (* caller-supplied aggregate (explorer runs, rates, cache) appended
         to the coordinator's own figures in observer progress frames *)
  mutable last_progress : float;
}

let mkdirs_socket_fd addr =
  let sa = Wire.sockaddr_of_addr addr in
  let domain = Unix.domain_of_sockaddr sa in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Wire.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | Wire.Unix_sock p -> ( try Unix.unlink p with Unix.Unix_error _ -> ()));
  (fd, sa)

let create ?metrics ?(profile = false) ?(first_epoch = 1)
    ?(admit = fun _ -> true) ?(progress = fun () -> []) ~budget setup =
  let listen_fd, listen_path =
    match setup.attach with
    | Listen { addr; ready } ->
        let fd, sa = mkdirs_socket_fd addr in
        Unix.bind fd sa;
        Unix.listen fd 16;
        ready addr;
        ( Some fd,
          match addr with Wire.Unix_sock p -> Some p | Wire.Tcp _ -> None )
    | Fds _ | Dial _ -> (None, None)
  in
  {
    setup;
    budget = max 0 budget;
    claimed = 0;
    frontier = [];
    conns = [];
    conn_seq = 0;
    net_count =
      (match metrics with
      | Some sh ->
          fun kind -> Obs.Metrics.incr (Obs.Metrics.counter sh ("net_fault." ^ kind))
      | None -> ignore);
    sessions = Hashtbl.create 16;
    next_epoch = max 1 first_epoch;
    anon = 0;
    listen_fd;
    listen_path;
    started = Unix.gettimeofday ();
    next_lease = 0;
    st =
      { leases = 0; releases = 0; workers_seen = 0; workers_lost = 0;
        results = 0; reconnects = 0; fenced = 0; dup_results = 0;
        backpressured = 0 };
    ran = false;
    finish = `Abort;
    metrics =
      Option.map
        (fun sh ->
          {
            m_leases = Obs.Metrics.counter sh "coordinator.leases";
            m_releases = Obs.Metrics.counter sh "coordinator.releases";
            m_reconnects = Obs.Metrics.counter sh "coordinator.reconnects";
            m_fenced = Obs.Metrics.counter sh "coordinator.fenced";
            m_dup_results = Obs.Metrics.counter sh "coordinator.dup_results";
            m_backpressure = Obs.Metrics.counter sh "coordinator.backpressure";
            m_hb_grace = Obs.Metrics.counter sh "coordinator.hb_grace_extends";
            m_rtt = Obs.Metrics.histogram sh "coordinator.worker_rtt_s";
            m_wire_io =
              (if profile then Some (Obs.Metrics.histogram sh "profile.wire_io_s")
               else None);
          })
        metrics;
    admit;
    telemetry = Hashtbl.create 16;
    progress;
    last_progress = 0.0;
  }

let push t items = t.frontier <- List.filter t.admit items @ t.frontier

let outstanding t =
  Hashtbl.fold
    (fun _ s acc ->
      match s.lease with Some l -> l.lease_items @ acc | None -> acc)
    t.sessions []

let snapshot t = t.frontier @ outstanding t
let pending t = List.length t.frontier
let stats t = t.st
let current_epoch t = t.next_epoch - 1

let telemetry t =
  Hashtbl.fold (fun sid snap acc -> (sid, snap) :: acc) t.telemetry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let next_epoch t =
  let e = t.next_epoch in
  t.next_epoch <- e + 1;
  e

(* ---- connection lifecycle ---- *)

(* Connections stay blocking: reads happen only after select reports the fd
   readable (so they return whatever is buffered without blocking), and
   writes are small frames a socket buffer absorbs. *)
let add_conn t fd =
  t.conn_seq <- t.conn_seq + 1;
  let net =
    match t.setup.net_fault with
    | Some sp when not (Mpi.Fault.Net.wire_inert sp) ->
        (* Salted by the connection counter: a redialed worker gets a fresh
           instance with fresh one-shot draws, which is what makes a lossy
           link converge under retry. *)
        Mpi.Fault.Net.make ~on_inject:t.net_count sp ~salt:t.conn_seq
    | _ -> Mpi.Fault.Net.none
  in
  let c =
    {
      fd;
      oc = Unix.out_channel_of_descr fd;
      asm = Wire.assembler ();
      net;
      name = "?";
      state = `Greeting;
      last_seen = Unix.gettimeofday ();
      alive = true;
      outq = [];
      outq_bytes = 0;
      held = None;
      sever = false;
      gap_ewma = 0.0;
      hb_extended = false;
    }
  in
  t.conns <- t.conns @ [ c ];
  c

(* Return a session's leased items to the frontier for another worker. *)
let refund t s ~reason =
  match s.lease with
  | None -> ()
  | Some l ->
      let n = List.length l.lease_items in
      Log.warn (fun m ->
          m "session %s: re-leasing %d item(s) (%s)" s.sid n reason);
      t.frontier <- l.lease_items @ t.frontier;
      t.claimed <- t.claimed - n;
      s.lease <- None;
      t.st <- { t.st with releases = t.st.releases + n };
      (match t.metrics with
      | Some ms -> for _ = 1 to n do Obs.Metrics.incr ms.m_releases done
      | None -> ())

(* Close a connection without touching its session (version/auth
   rejections, superseded duplicates). *)
let drop_conn t c ~reason =
  ignore t;
  if c.alive then begin
    c.alive <- false;
    Log.info (fun m -> m "dropping connection %s: %s" c.name reason);
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

(* A worker connection died. Its session keeps the lease for the rejoin
   grace period — the grace scan refunds it if the worker stays away.
   A departing observer is only a dropped connection, not a lost worker. *)
let lose t c ~reason =
  if c.alive then
    match c.state with
    | `Observer -> drop_conn t c ~reason
    | state ->
        (match state with
        | (`Jobbed s | `Bound s) when s.conn_fd = Some c.fd ->
            s.conn_fd <- None;
            s.lost_at <- Unix.gettimeofday ();
            Log.warn (fun m ->
                m "worker %s lost (%s)%s" c.name reason
                  (match s.lease with
                  | Some l ->
                      Printf.sprintf "; lease %d held for %.3gs rejoin grace"
                        l.lease_id t.setup.rejoin_grace
                  | None -> ""))
        | _ -> Log.warn (fun m -> m "worker %s lost (%s)" c.name reason));
        t.st <- { t.st with workers_lost = t.st.workers_lost + 1 };
        c.alive <- false;
        (try Unix.close c.fd with Unix.Unix_error _ -> ())

let raw_write t c data =
  match t.metrics with
  | Some { m_wire_io = Some h; _ } -> (
      let t0 = Unix.gettimeofday () in
      match
        output_string c.oc data;
        flush c.oc
      with
      | () -> Obs.Metrics.observe h (Unix.gettimeofday () -. t0)
      | exception (Sys_error _ | Unix.Unix_error _) ->
          lose t c ~reason:"write failed")
  | _ -> (
      try
        output_string c.oc data;
        flush c.oc
      with Sys_error _ | Unix.Unix_error _ -> lose t c ~reason:"write failed")

(* Write every due frame, oldest first. A delayed head holds back the rest:
   only an injected Hold_back reorders, the queue itself models a slow pipe.
   Once a truncated frame has drained, the injected sever cuts the link. *)
let flush_outq t c now =
  let rec go () =
    match c.outq with
    | (due, data) :: rest when c.alive && due <= now ->
        c.outq <- rest;
        c.outq_bytes <- c.outq_bytes - String.length data;
        raw_write t c data;
        go ()
    | _ -> ()
  in
  go ();
  if c.sever && c.outq = [] && c.alive then
    lose t c ~reason:"injected: link severed after truncated frame"

let enqueue c ~due data =
  c.outq <- c.outq @ [ (due, data) ];
  c.outq_bytes <- c.outq_bytes + String.length data

let klass_of_to_worker = function
  | Wire.Lease _ -> Mpi.Fault.Net.Payload
  | Wire.Progress _ -> Mpi.Fault.Net.Chatter
  | Wire.Challenge _ | Wire.Welcome _ | Wire.Reject _ | Wire.Job _
  | Wire.Detach | Wire.Shutdown ->
      Mpi.Fault.Net.Control

let send t c msg =
  if (not (Mpi.Fault.Net.active c.net)) && c.outq = [] then
    (* No chaos on this connection: write straight through, as before. *)
    raw_write t c (Wire.to_worker_string msg)
  else begin
    let data = Wire.to_worker_string msg in
    let now = Unix.gettimeofday () in
    (match
       Mpi.Fault.Net.on_frame c.net ~klass:(klass_of_to_worker msg)
         ~size:(String.length data)
     with
    | Mpi.Fault.Net.Deliver { delay; copies } ->
        enqueue c ~due:(now +. delay) data;
        if copies > 1 then enqueue c ~due:(now +. delay) data;
        (* An injected reorder resolves here: the held frame goes out
           behind the one that overtook it. *)
        (match c.held with
        | Some h ->
            c.held <- None;
            enqueue c ~due:(now +. delay) h
        | None -> ())
    | Mpi.Fault.Net.Drop_frame -> ()
    | Mpi.Fault.Net.Corrupt_frame ->
        enqueue c ~due:now (Mpi.Fault.Net.corrupt_bytes data)
    | Mpi.Fault.Net.Truncate_sever ->
        enqueue c ~due:now (String.sub data 0 (Mpi.Fault.Net.truncate_len data));
        c.sever <- true
    | Mpi.Fault.Net.Hold_back -> (
        match c.held with
        | None -> c.held <- Some data
        | Some h ->
            (* Only one frame is ever held; a second hold flushes the
               first in arrival order. *)
            enqueue c ~due:now h;
            c.held <- Some data));
    flush_outq t c now
  end

(* Called once per event-loop turn: due frames drain, and a held frame that
   nothing overtook within the turn is released — reordering is bounded by
   the select timeout, never a stall. *)
let pump_out t c now =
  (match c.held with
  | Some h when c.outq = [] ->
      c.held <- None;
      enqueue c ~due:now h
  | _ -> ());
  if c.outq <> [] || c.sever then flush_outq t c now

(* ---- leasing ---- *)

let rec take_front n acc = function
  | rest when n = 0 -> (List.rev acc, rest)
  | [] -> (List.rev acc, [])
  | x :: tl -> take_front (n - 1) (x :: acc) tl

let maybe_lease t c =
  match c.state with
  | `Bound s
    when c.alive && s.lease = None && t.frontier <> []
         && t.claimed < t.budget
         && c.outq_bytes > t.setup.outq_budget ->
      (* Backpressure: this session's link is backed up past its write
         budget — leasing more work to it would only deepen the queue.
         The items stay in the frontier for a less congested worker. *)
      t.st <- { t.st with backpressured = t.st.backpressured + 1 };
      (match t.metrics with
      | Some ms -> Obs.Metrics.incr ms.m_backpressure
      | None -> ())
  | `Bound s
    when c.alive && s.lease = None && t.frontier <> []
         && t.claimed < t.budget ->
      let n = min t.setup.lease_size (t.budget - t.claimed) in
      let items, rest = take_front n [] t.frontier in
      t.frontier <- rest;
      t.claimed <- t.claimed + List.length items;
      let lease_id = t.next_lease in
      t.next_lease <- t.next_lease + 1;
      s.lease <-
        Some { lease_id; lease_items = items; sent_at = Unix.gettimeofday () };
      t.st <- { t.st with leases = t.st.leases + 1 };
      (match t.metrics with
      | Some ms -> Obs.Metrics.incr ms.m_leases
      | None -> ());
      send t c (Wire.Lease { lease_id; items })
  | _ -> ()

(* ---- admission ---- *)

let const_eq a b =
  String.length a = String.length b
  &&
  let d = ref 0 in
  String.iteri (fun i c -> d := !d lor (Char.code c lxor Char.code b.[i])) a;
  !d = 0

(* The hello (and auth, when configured) checked out. Observers get a
   welcome and then a stream of progress frames — no session, no job, no
   lease, so their presence cannot perturb the exploration. *)
let bind_observer t c (h : hello) =
  c.name <- h.h_id;
  c.state <- `Observer;
  Log.info (fun m -> m "observer %s attached" c.name);
  send t c (Wire.Welcome { epoch = 0 })

(* Bind a worker connection to its session, deciding between lease
   resumption and fencing. *)
let bind t c (h : hello) =
  let sid =
    if h.h_session = "" then begin
      t.anon <- t.anon + 1;
      Printf.sprintf "anon%d" t.anon
    end
    else h.h_session
  in
  let s, rejoined =
    match Hashtbl.find_opt t.sessions sid with
    | Some s -> (s, true)
    | None ->
        let s =
          {
            sid;
            epoch = next_epoch t;
            lease = None;
            conn_fd = None;
            lost_at = 0.0;
            seen_ready = false;
            last_settled = None;
          }
        in
        Hashtbl.add t.sessions sid s;
        (s, false)
  in
  (* A live connection already bound to this session is a stale duplicate
     (the worker redialed before we read its EOF): supersede it, keeping
     the lease with the session. *)
  (match s.conn_fd with
  | Some fd -> (
      match List.find_opt (fun c' -> c'.alive && c'.fd = fd) t.conns with
      | Some old -> drop_conn t old ~reason:"superseded by reconnect"
      | None -> ())
  | None -> ());
  if rejoined then begin
    t.st <- { t.st with reconnects = t.st.reconnects + 1 };
    (match t.metrics with
    | Some ms -> Obs.Metrics.incr ms.m_reconnects
    | None -> ());
    let intact =
      match (s.lease, h.h_pending) with
      | Some l, Some p -> h.h_epoch = s.epoch && p = l.lease_id
      | _ -> false
    in
    if intact then
      Log.info (fun m ->
          m "worker %s rejoined session %s: resuming lease at epoch %d"
            h.h_id sid s.epoch)
    else begin
      (* Anything the previous incarnation still holds is now a zombie's:
         refund the lease and fence the old epoch so its late results
         frames are recognisably stale. *)
      refund t s ~reason:"rejoined without the lease intact";
      s.epoch <- next_epoch t;
      Log.info (fun m ->
          m "worker %s rejoined session %s: fenced to epoch %d" h.h_id sid
            s.epoch)
    end
  end;
  s.conn_fd <- Some c.fd;
  s.lost_at <- 0.0;
  c.name <- h.h_id;
  c.state <- `Jobbed s;
  send t c (Wire.Welcome { epoch = s.epoch });
  send t c (Wire.Job t.setup.job)

let reject t c ~reason =
  send t c (Wire.Reject { proto = Wire.proto_version; reason });
  drop_conn t c ~reason

(* ---- message handling ---- *)

let handle_msg t c ~on_run msg =
  let now = Unix.gettimeofday () in
  (* Inter-frame gap EWMA: the pace this peer actually talks at, feeding
     the adaptive heartbeat grace. Seeded by the first gap, then smoothed. *)
  let gap = now -. c.last_seen in
  c.gap_ewma <-
    (if c.gap_ewma <= 0.0 then gap else (0.7 *. c.gap_ewma) +. (0.3 *. gap));
  c.hb_extended <- false;
  c.last_seen <- now;
  match msg with
  | Error e -> lose t c ~reason:("protocol error: " ^ e)
  | Ok (Wire.Hello { proto; id; session; epoch; pending; role }) -> (
      match c.state with
      | `Greeting ->
          if proto <> Wire.proto_version then
            (* One versioned line, then close: an old peer learns why it
               was refused instead of hanging on a silent drop. *)
            reject t c
              ~reason:
                (Printf.sprintf
                   "protocol version %d not supported (this build speaks %d)"
                   proto Wire.proto_version)
          else if not (role = None || role = Some "observer") then
            reject t c
              ~reason:
                (Printf.sprintf "unknown role %S"
                   (Option.value role ~default:""))
          else begin
            c.name <- id;
            let h =
              { h_id = id; h_session = session; h_epoch = epoch;
                h_pending = pending; h_role = role }
            in
            match t.setup.auth with
            | Some _ ->
                let nonce = Wire.gen_nonce () in
                c.state <- `Challenged (nonce, h);
                send t c (Wire.Challenge nonce)
            | None ->
                if h.h_role = Some "observer" then bind_observer t c h
                else bind t c h
          end
      | _ -> lose t c ~reason:"hello out of sequence")
  | Ok (Wire.Auth mac) -> (
      match c.state with
      | `Challenged (nonce, h) ->
          let secret = Option.value t.setup.auth ~default:"" in
          if const_eq (Wire.auth_mac ~secret ~nonce ~session:h.h_session) mac
          then
            if h.h_role = Some "observer" then bind_observer t c h
            else bind t c h
          else reject t c ~reason:"authentication failed"
      | _ -> lose t c ~reason:"auth out of sequence")
  | Ok Wire.Ready -> (
      match c.state with
      | `Jobbed s ->
          c.state <- `Bound s;
          if not s.seen_ready then begin
            s.seen_ready <- true;
            t.st <- { t.st with workers_seen = t.st.workers_seen + 1 }
          end;
          Log.info (fun m -> m "worker %s ready" c.name)
      | _ -> lose t c ~reason:"ready out of sequence")
  | Ok Wire.Heartbeat -> ()
  | Ok (Wire.Telemetry series) -> (
      (* Advisory metric deltas: fold them into the session's accumulated
         snapshot. Deltas from unbound or observer connections have no
         session to account to and are dropped. *)
      match c.state with
      | `Jobbed s | `Bound s ->
          let prev =
            Option.value (Hashtbl.find_opt t.telemetry s.sid) ~default:[]
          in
          Hashtbl.replace t.telemetry s.sid (Obs.Metrics.merge_delta prev series)
      | _ -> ())
  | Ok (Wire.Failed reason) -> lose t c ~reason:("worker failed: " ^ reason)
  | Ok (Wire.Results { epoch; lease_id; runs }) -> (
      match c.state with
      | `Bound s
        when epoch = s.epoch
             && (match s.lease with
                | Some l -> l.lease_id = lease_id
                | None -> false) -> (
          let l = Option.get s.lease in
          (* Validate the frame covers exactly the leased items before
             ingesting anything: all-or-nothing is what makes re-leases
             duplicate-free. *)
          let by_key =
            List.map (fun it -> (Checkpoint.item_key it, it)) l.lease_items
          in
          let matched =
            List.map
              (fun (r : Wire.run_result) ->
                (List.assoc_opt r.Wire.key by_key, r))
              runs
          in
          if
            List.length runs <> List.length l.lease_items
            || List.exists (fun (it, _) -> it = None) matched
          then lose t c ~reason:"results do not match the lease"
          else begin
            (match t.metrics with
            | Some ms ->
                Obs.Metrics.observe ms.m_rtt
                  (Unix.gettimeofday () -. l.sent_at)
            | None -> ());
            s.lease <- None;
            s.last_settled <- Some (epoch, lease_id);
            t.st <- { t.st with results = t.st.results + 1 };
            List.iter
              (fun (it, r) ->
                let item = Option.get it in
                (match (r : Wire.run_result).Wire.payload with
                | Some p -> push t p.Wire.children
                | None -> ());
                on_run ~item r)
              matched
          end)
      | `Bound s when s.last_settled = Some (epoch, lease_id) ->
          (* Duplicate delivery of a frame this session already settled at
             its *current* epoch — a retransmission or an injected wire
             duplicate, not a zombie. Same discard (the first arrival was
             counted, exactly once), separate ledger: dedup is cheaper to
             reason about when it is distinguishable from fencing. *)
          t.st <- { t.st with dup_results = t.st.dup_results + 1 };
          (match t.metrics with
          | Some ms -> Obs.Metrics.incr ms.m_dup_results
          | None -> ());
          Log.warn (fun m ->
              m
                "worker %s: discarding duplicate results frame (epoch %d, \
                 lease %d already ingested for session %s)"
                c.name epoch lease_id s.sid)
      | `Bound s ->
          (* Stale epoch, or a lease this session no longer holds: a fenced
             zombie flushing work that was re-leased at a later epoch. The
             frame arrived whole through the assembler; acknowledge by
             discarding it, never by counting. *)
          t.st <- { t.st with fenced = t.st.fenced + 1 };
          (match t.metrics with
          | Some ms -> Obs.Metrics.incr ms.m_fenced
          | None -> ());
          Log.warn (fun m ->
              m
                "worker %s: discarding fenced results frame (epoch %d, lease \
                 %d, %d run(s); session %s is at epoch %d)"
                c.name epoch lease_id (List.length runs) s.sid s.epoch)
      | _ -> lose t c ~reason:"results out of sequence")

(* ---- the event loop ---- *)

let work_remains t =
  (t.frontier <> [] && t.claimed < t.budget)
  || Hashtbl.fold (fun _ s acc -> acc || s.lease <> None) t.sessions false

let live_conns t = List.filter (fun c -> c.alive) t.conns

(* Observers are connections but not workers: they take no leases, send
   no heartbeats, and must not hold off the all-workers-lost verdict. *)
let live_workers t =
  List.filter
    (fun c ->
      c.alive && match c.state with `Observer -> false | _ -> true)
    t.conns

let observers t =
  List.filter
    (fun c ->
      c.alive && match c.state with `Observer -> true | _ -> false)
    t.conns

(* ---- observer progress frames ---- *)

let progress_kvs t now =
  let base =
    [
      ("frontier", string_of_int (pending t));
      ("claimed", string_of_int t.claimed);
      ("budget", string_of_int t.budget);
      ("leases", string_of_int t.st.leases);
      ("results", string_of_int t.st.results);
      ("workers", string_of_int (List.length (live_workers t)));
      ("uptime_s", Printf.sprintf "%.3f" (now -. t.started));
    ]
  in
  let per_worker =
    Hashtbl.fold
      (fun sid s acc ->
        let v =
          match s.conn_fd with
          | Some fd -> (
              match List.find_opt (fun c -> c.alive && c.fd = fd) t.conns with
              | Some c -> Printf.sprintf "%.3f" (now -. c.last_seen)
              | None -> "lost")
          | None -> "lost"
        in
        (("hb_age." ^ sid), v) :: acc)
      t.sessions []
    |> List.sort compare
  in
  base @ per_worker @ t.progress ()

let progress_interval = 0.5

let stream_progress t now =
  match observers t with
  | [] -> ()
  | obs ->
      if now -. t.last_progress >= progress_interval then begin
        t.last_progress <- now;
        let kvs = progress_kvs t now in
        List.iter (fun c -> send t c (Wire.Progress kvs)) obs
      end

(* Sessions disconnected within the grace window: their leases are still
   honoured and their return is still expected, so an all-workers-lost
   verdict would be premature. *)
let any_in_grace t now =
  Hashtbl.fold
    (fun _ s acc ->
      acc
      || (s.conn_fd = None && s.lost_at > 0.0
         && now -. s.lost_at <= t.setup.rejoin_grace))
    t.sessions false

(* Refund leases whose worker stayed away past the grace window. The
   epoch is NOT bumped here — fencing happens at rebind time, and a
   session that never returns never sends a stale frame. *)
let grace_scan t now =
  Hashtbl.iter
    (fun _ s ->
      if
        s.conn_fd = None && s.lease <> None
        && now -. s.lost_at > t.setup.rejoin_grace
      then refund t s ~reason:"rejoin grace expired")
    t.sessions

let close_all t =
  let farewell =
    match t.finish with `Done -> Wire.Shutdown | `Abort -> Wire.Detach
  in
  List.iter
    (fun c ->
      if c.alive then begin
        (* Drain anything the chaos queue still holds (held or delayed
           frames) so the farewell is not overtaken by stale traffic. *)
        (match c.held with
        | Some h ->
            c.held <- None;
            enqueue c ~due:0.0 h
        | None -> ());
        if c.outq <> [] then flush_outq t c infinity;
        if c.alive then raw_write t c (Wire.to_worker_string farewell);
        c.alive <- false;
        try Unix.close c.fd with Unix.Unix_error _ -> ()
      end)
    t.conns;
  (match t.listen_fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  match t.listen_path with
  | Some p -> ( try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
  | None -> ()

let drive t ~on_run ~should_stop ~tick =
  if t.ran then invalid_arg "Coordinator.drive: already ran";
  t.ran <- true;
  (* EPIPE must surface as an exception on write, not kill the process. *)
  let old_pipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  Fun.protect
    ~finally:(fun () ->
      (match old_pipe with
      | Some h -> (
          try Sys.set_signal Sys.sigpipe h
          with Invalid_argument _ | Sys_error _ -> ())
      | None -> ());
      close_all t)
  @@ fun () ->
  (match t.setup.attach with
  | Fds fds -> List.iter (fun fd -> ignore (add_conn t fd)) fds
  | Listen _ -> ()
  | Dial addrs ->
      List.iter
        (fun addr ->
          let sa = Wire.sockaddr_of_addr addr in
          let fd =
            Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0
          in
          match Unix.connect fd sa with
          | () -> ignore (add_conn t fd)
          | exception Unix.Unix_error (e, _, _) ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Log.warn (fun m ->
                  m "cannot dial %s: %s" (Wire.addr_to_string addr)
                    (Unix.error_message e)))
        addrs);
  let buf = Bytes.create 65536 in
  let rec loop () =
    if should_stop () then Ok ()
    else if not (work_remains t) then begin
      (* Drained (or budget-capped): the exploration is over, workers may
         exit. Any other way out of the loop leaves finish = `Abort, and
         close_all sends [detach] so long-lived workers keep serving. *)
      t.finish <- `Done;
      Ok ()
    end
    else begin
      let now = Unix.gettimeofday () in
      grace_scan t now;
      let live = live_workers t in
      (* Lost everyone (or nobody ever arrived): the frontier still holds
         the unfinished work, so the caller can checkpoint and resume —
         or drain it locally (Explorer's --fallback-local). *)
      if
        live = []
        && (not (any_in_grace t now))
        && (t.st.workers_seen > 0 || t.listen_fd = None
           || now -. t.started > t.setup.join_timeout)
      then
        Error
          (if t.st.workers_seen = 0 then "no workers connected"
           else
             Printf.sprintf "all %d worker(s) lost with work remaining"
               t.st.workers_seen)
      else begin
        List.iter (fun c -> maybe_lease t c) live;
        (* Chaos-queue pump: due delayed frames drain, held (reordered)
           frames release, pending severs cut. A no-op without chaos. *)
        List.iter
          (fun c ->
            if c.outq <> [] || c.held <> None || c.sever then
              pump_out t c now)
          (live_conns t);
        let fds =
          (match t.listen_fd with Some fd -> [ fd ] | None -> [])
          @ List.map (fun c -> c.fd) (live_conns t)
        in
        let readable, _, _ =
          try Unix.select fds [] [] 0.2
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        List.iter
          (fun fd ->
            if Some fd = t.listen_fd then begin
              match Unix.accept fd with
              | afd, _ -> ignore (add_conn t afd)
              | exception Unix.Unix_error _ -> ()
            end
            else
              match List.find_opt (fun c -> c.fd = fd && c.alive) t.conns with
              | None -> ()
              | Some c -> (
                  match Unix.read fd buf 0 (Bytes.length buf) with
                  | 0 -> lose t c ~reason:"connection closed"
                  | n ->
                      let msgs =
                        match t.metrics with
                        | Some { m_wire_io = Some h; _ } ->
                            let t0 = Unix.gettimeofday () in
                            let msgs = Wire.feed c.asm buf n in
                            Obs.Metrics.observe h (Unix.gettimeofday () -. t0);
                            msgs
                        | _ -> Wire.feed c.asm buf n
                      in
                      List.iter (handle_msg t c ~on_run) msgs
                  | exception
                      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
                    ->
                      ()
                  | exception Unix.Unix_error (e, _, _) ->
                      lose t c ~reason:(Unix.error_message e)))
          readable;
        (* Heartbeat scan: a worker silent past the timeout is dead even if
           its socket is technically open (wedged process, dead host). The
           timeout adapts to the link: a peer whose frames already arrive
           with long (but regular) gaps — a slow or shaped link — earns up
           to 4x the configured silence allowance before being declared
           dead, so degradation is not misclassified as death. *)
        let now = Unix.gettimeofday () in
        let base = t.setup.heartbeat_timeout in
        List.iter
          (fun c ->
            let effective =
              if c.gap_ewma <= 0.0 then base
              else Float.min (4.0 *. base) (Float.max base (4.0 *. c.gap_ewma))
            in
            let silent = now -. c.last_seen in
            if c.alive && silent > effective then
              lose t c ~reason:"missed heartbeat"
            else if c.alive && silent > base && not c.hb_extended then begin
              c.hb_extended <- true;
              (match t.metrics with
              | Some ms -> Obs.Metrics.incr ms.m_hb_grace
              | None -> ());
              Log.info (fun m ->
                  m
                    "worker %s: %.2fs silent exceeds the %.2fs heartbeat \
                     timeout, but its link paces at %.2fs/frame — extending \
                     grace to %.2fs"
                    c.name silent base c.gap_ewma effective)
            end)
          (live_workers t);
        stream_progress t now;
        tick ();
        loop ()
      end
    end
  in
  loop ()
