(** Verification findings and exploration reports. *)

type error =
  | Deadlock of { blocked : (int * string) list }
      (** global quiescence; per-pid blocked operation descriptions *)
  | Crash of { pid : int; message : string }
      (** a rank raised (assertion failure, MPI usage error, ...) *)
  | Comm_leak of { pid : int; labels : string list }
      (** communicators never freed before finalize (Table II "C-leak") *)
  | Request_leak of { pid : int; count : int }
      (** requests never completed by wait/test (Table II "R-leak") *)
  | Monitor_alert of { pid : int; epoch_id : int; op : string }
      (** §V pattern: a wildcard receive's clock escaped via [op] before its
          wait/test — coverage not guaranteed there *)
  | Replay_divergence of { count : int }
      (** guided events with no matching decision: the target program is not
          replay-deterministic *)

val pp_error : Format.formatter -> error -> unit
val error_signature : error -> string

(** One execution of the target program under a tool. *)
type run_record = {
  run_plan : Decisions.plan;
  outcome : Sim.Coroutine.outcome;
  makespan : float;  (** virtual seconds *)
  new_epochs : Epoch.t list;  (** self-run epochs, in completion order *)
  run_errors : error list;
  wildcards : int;
  cancelled : bool;
      (** poisoned mid-replay ([--stop-first]): no findings, no frontier *)
}

(** A deduplicated finding, with the schedule that reproduces it. *)
type finding = {
  error : error;
  run_index : int;
      (** which interleaving (0 = the initial self run). Informational: it
          reflects execution order, which worker scheduling permutes; the
          canonical identity of a finding is its signature and schedule. *)
  schedule : Decisions.decision list;
}

val compare_schedule :
  Decisions.decision list -> Decisions.decision list -> int
(** Canonical total order on reproduction schedules: shallower forks first,
    then lexicographic. Independent of execution order, so reports
    canonicalize identically at any worker count. *)

val compare_finding : finding -> finding -> int
(** Orders by {!compare_schedule}, then by {!error_signature}. *)

(** Order-independent findings accumulator shared by every merge path.
    Dedup is by the error's structural value bucketed under its signature —
    two different errors whose signatures collide are both kept (a
    signature-keyed table would drop one) — and the canonically smallest
    reproduction schedule wins per error. *)
module Merge : sig
  type t

  val create : unit -> t
  val add : t -> finding -> unit

  val to_list : t -> finding list
  (** Sorted by {!compare_finding}. *)
end

(** A failure of the exploration harness itself (a raising replay runner,
    not a finding about the target program). *)
type harness_failure = {
  hf_worker : int;  (** worker that hit it; -1 = the pool as a whole *)
  hf_message : string;
  hf_backtrace : string;  (** captured at the catch site *)
}

(** Per-worker exploration counters (parallel mode). *)
type worker_stat = {
  worker_id : int;
  runs_executed : int;  (** replays this worker ran (worker 0 owns the self run) *)
  queue_waits : int;  (** times the worker blocked on an empty work queue *)
  wall_seconds : float;  (** host time spent inside the runner *)
  virtual_seconds : float;  (** summed virtual makespans of its replays *)
}

(** Result of a whole verification. *)
type t = {
  np : int;
  interleavings : int;
  findings : finding list;
  wildcards_analyzed : int;  (** R* of Table II *)
  first_run_makespan : float;
  total_virtual_time : float;
  monitor_alerts : int;
  bounded_epochs : int;
      (** epochs a heuristic suppressed (loop abstraction / bounded mixing) *)
  runs_pruned : int;
      (** schedules never enqueued because the sleep-set / independence
          analysis proved them equivalent to an explored one *)
  host_seconds : float;
  jobs : int;  (** worker domains the exploration ran on *)
  workers : worker_stat list;  (** per-worker counters, worker-id order *)
  runs_cancelled : int;  (** replays poisoned mid-flight by [--stop-first] *)
  runs_timed_out : int;
      (** replay attempts killed by the watchdog (wall or step budget) *)
  runs_retried : int;  (** retry attempts launched after transient failures *)
  runs_crashed : int;
      (** replay attempts aborted by an injected transient fault *)
  harness_failures : harness_failure list;
      (** replays whose runner raised; sibling workers kept draining *)
  interrupted : bool;
      (** stopped early by SIGINT/SIGTERM; the outstanding frontier was
          checkpointed and the counters cover the completed portion only *)
  metrics : Obs.Metrics.snapshot;  (** merged over all worker shards *)
  worker_metrics : (string * Obs.Metrics.snapshot) list;
      (** labeled per-shard views: ["w0".."wN"] worker domains, ["sched"],
          ["aux"], plus one label per remote session in distributed mode *)
  events : Obs.Trace.event list;  (** span stream; empty unless traced *)
}

val metrics_json : t -> string
(** The [--metrics-out] document: merged series plus per-worker shards. *)

val metrics_openmetrics : t -> string
(** The same data in OpenMetrics text format
    ({!Obs.Metrics.to_openmetrics}). *)

val trace_json : t -> string
(** The [--trace-out] document: Chrome [trace_event] JSON. *)

val has_errors : t -> bool
(** True if any finding is a deadlock, crash, or leak (alerts and
    divergences are advisories). *)

val pp_finding : Format.formatter -> finding -> unit
val pp_worker_stat : Format.formatter -> worker_stat -> unit
val pp : Format.formatter -> t -> unit
