(** Verification findings and run/exploration reports. *)

type error =
  | Deadlock of { blocked : (int * string) list }
      (** global quiescence; per-pid blocked operation descriptions *)
  | Crash of { pid : int; message : string }
      (** a rank raised (assertion failure, MPI usage error, ...) *)
  | Comm_leak of { pid : int; labels : string list }
      (** communicators never freed before finalize (Table II "C-leak") *)
  | Request_leak of { pid : int; count : int }
      (** requests never completed by wait/test (Table II "R-leak") *)
  | Monitor_alert of { pid : int; epoch_id : int; op : string }
      (** §V pattern: a wildcard [Irecv]'s clock escaped via [op] before its
          wait/test — DAMPI's completeness is not guaranteed here *)
  | Replay_divergence of { count : int }
      (** guided events with no matching decision: the target program is not
          replay-deterministic (e.g. depends on wall-clock or randomness) *)

let pp_error ppf = function
  | Deadlock { blocked } ->
      Format.fprintf ppf "deadlock: %s"
        (String.concat "; "
           (List.map (fun (pid, r) -> Printf.sprintf "rank %d: %s" pid r) blocked))
  | Crash { pid; message } -> Format.fprintf ppf "rank %d crashed: %s" pid message
  | Comm_leak { pid; labels } ->
      Format.fprintf ppf "rank %d leaked communicator(s): %s" pid
        (String.concat ", " labels)
  | Request_leak { pid; count } ->
      Format.fprintf ppf "rank %d leaked %d request(s)" pid count
  | Monitor_alert { pid; epoch_id; op } ->
      Format.fprintf ppf
        "rank %d: wildcard receive (epoch %d) leaked its clock through %s \
         before wait/test — coverage not guaranteed (DAMPI limitation \
         pattern)"
        pid epoch_id op
  | Replay_divergence { count } ->
      Format.fprintf ppf "replay diverged at %d guided event(s)" count

let error_signature e = Format.asprintf "%a" pp_error e

(** One execution of the target program under the tool. *)
type run_record = {
  run_plan : Decisions.plan;
  outcome : Sim.Coroutine.outcome;
  makespan : float;  (** virtual seconds *)
  new_epochs : Epoch.t list;  (** self-run epochs, in completion order *)
  run_errors : error list;
  wildcards : int;  (** non-deterministic events recorded in this run *)
  cancelled : bool;
      (** the run was poisoned mid-replay ([--stop-first]): it produced no
          usable outcome and contributes no findings or child frontier *)
}

(** A deduplicated finding, with the schedule that reproduces it. *)
type finding = {
  error : error;
  run_index : int;  (** which interleaving (0 = the initial self run) *)
  schedule : Decisions.decision list;  (** forced matches reproducing it *)
}

(* Canonical total order on schedules: shallower forks first, then
   lexicographic on the forced decisions. Execution-order independent, so
   sequential and parallel exploration canonicalize findings identically. *)
let compare_decision = Decisions.compare_decision

let rec compare_schedule_lex a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs, y :: ys ->
      let c = compare_decision x y in
      if c <> 0 then c else compare_schedule_lex xs ys

let compare_schedule a b =
  let c = compare (List.length a) (List.length b) in
  if c <> 0 then c else compare_schedule_lex a b

let compare_finding a b =
  let c = compare_schedule a.schedule b.schedule in
  if c <> 0 then c else compare (error_signature a.error) (error_signature b.error)

(** The findings accumulator every merge path (explorer tables, resume
    seeding, distributed ingestion) goes through.

    Deduplication is by the error's {e structural value}, bucketed under
    its signature: two structurally different errors that happen to render
    to the same signature string (e.g. [Comm_leak] label lists whose
    [", "]-joined forms collide) are both kept, where a signature-keyed
    table would silently drop whichever merged second. Within one
    structural error the canonically smallest reproduction schedule wins,
    so merging is order-independent and reports canonicalize identically
    at any worker count. *)
module Merge = struct
  type nonrec t = (string, finding list) Hashtbl.t
  (** signature -> findings with structurally distinct errors *)

  let create () : t = Hashtbl.create 16

  let add (t : t) (f : finding) =
    let s = error_signature f.error in
    let bucket = Option.value (Hashtbl.find_opt t s) ~default:[] in
    let rec ins = function
      | [] -> [ f ]
      | g :: rest ->
          if g.error = f.error then
            (if compare_finding f g < 0 then f else g) :: rest
          else g :: ins rest
    in
    Hashtbl.replace t s (ins bucket)

  let to_list (t : t) =
    Hashtbl.fold (fun _ fs acc -> fs @ acc) t []
    |> List.sort compare_finding
end

(** A failure of the exploration harness itself (a raising replay runner,
    not a finding about the target program): recorded so one broken replay
    never tears down the worker pool, and surfaced with the backtrace
    captured at the catch site. *)
type harness_failure = {
  hf_worker : int;  (** worker that hit it; -1 = the pool as a whole *)
  hf_message : string;
  hf_backtrace : string;
}

(** Per-worker exploration counters (parallel mode, §IV scaling). *)
type worker_stat = {
  worker_id : int;
  runs_executed : int;  (** replays this worker ran (worker 0 owns the self run) *)
  queue_waits : int;  (** times the worker blocked on an empty work queue *)
  wall_seconds : float;  (** host time spent inside the runner *)
  virtual_seconds : float;  (** summed virtual makespans of its replays *)
}

(** Result of a whole verification (all explored interleavings). *)
type t = {
  np : int;
  interleavings : int;
  findings : finding list;
  wildcards_analyzed : int;  (** R* of Table II: epochs in the initial run *)
  first_run_makespan : float;  (** virtual time of the initial run *)
  total_virtual_time : float;  (** summed over all runs *)
  monitor_alerts : int;
  bounded_epochs : int;
      (** epochs whose exploration a heuristic suppressed (loop abstraction
          or bounded mixing) *)
  runs_pruned : int;
      (** schedules never enqueued because the sleep-set / independence
          analysis proved them equivalent to an explored one; not counted
          in [interleavings] *)
  host_seconds : float;  (** wall-clock cost of the exploration itself *)
  jobs : int;  (** worker domains the exploration ran on *)
  workers : worker_stat list;  (** per-worker counters, worker-id order *)
  runs_cancelled : int;
      (** replays poisoned mid-flight by [--stop-first]; not counted in
          [interleavings] *)
  runs_timed_out : int;
      (** replay attempts killed by the watchdog (wall or step budget) *)
  runs_retried : int;  (** retry attempts launched after transient failures *)
  runs_crashed : int;
      (** replay attempts aborted by an injected transient fault *)
  harness_failures : harness_failure list;
      (** replays whose runner raised; the pool kept draining *)
  interrupted : bool;
      (** exploration stopped early by SIGINT/SIGTERM with the outstanding
          frontier checkpointed; counters cover the completed portion only *)
  metrics : Obs.Metrics.snapshot;  (** merged over all worker shards *)
  worker_metrics : (string * Obs.Metrics.snapshot) list;
      (** labeled per-shard views: ["w0".."wN"] worker domains, ["sched"],
          ["aux"], plus one label per remote session in distributed mode *)
  events : Obs.Trace.event list;  (** span stream; empty unless traced *)
}

let metrics_json t = Obs.Metrics.to_json ~workers:t.worker_metrics t.metrics

let metrics_openmetrics t =
  Obs.Metrics.to_openmetrics ~workers:t.worker_metrics t.metrics

let trace_json t = Obs.Trace.to_chrome t.events

let has_errors t =
  List.exists
    (fun f ->
      match f.error with
      | Deadlock _ | Crash _ | Comm_leak _ | Request_leak _ -> true
      | Monitor_alert _ | Replay_divergence _ -> false)
    t.findings

let pp_finding ppf f =
  Format.fprintf ppf "@[<v 2>[interleaving %d] %a" f.run_index pp_error f.error;
  if f.schedule <> [] then
    Format.fprintf ppf "@ reproduce by forcing: %s"
      (String.concat ", "
         (List.map
            (fun (d : Decisions.decision) ->
              Printf.sprintf "(%d@%d <- src %d)" d.owner d.epoch_id d.src)
            f.schedule));
  Format.fprintf ppf "@]"

let pp_worker_stat ppf w =
  Format.fprintf ppf
    "worker %d: %d runs, %d queue waits, %.3fs wall, %.6fs virtual"
    w.worker_id w.runs_executed w.queue_waits w.wall_seconds w.virtual_seconds

let pp ppf t =
  Format.fprintf ppf
    "@[<v>verification of %d ranks:@ interleavings explored: %d@ wildcard \
     events analyzed (R*): %d@ findings: %d@ %a@ initial-run virtual time: \
     %.6fs@ total virtual time: %.6fs@ host time: %.3fs"
    t.np t.interleavings t.wildcards_analyzed (List.length t.findings)
    (Format.pp_print_list pp_finding)
    t.findings t.first_run_makespan t.total_virtual_time t.host_seconds;
  if t.runs_pruned > 0 then
    Format.fprintf ppf "@ schedules pruned as equivalent: %d" t.runs_pruned;
  if t.runs_cancelled > 0 then
    Format.fprintf ppf "@ runs cancelled mid-replay: %d" t.runs_cancelled;
  if t.runs_timed_out > 0 then
    Format.fprintf ppf "@ replay attempts timed out: %d" t.runs_timed_out;
  if t.runs_retried > 0 then
    Format.fprintf ppf "@ replay attempts retried: %d" t.runs_retried;
  if t.runs_crashed > 0 then
    Format.fprintf ppf "@ replay attempts lost to injected faults: %d"
      t.runs_crashed;
  List.iter
    (fun hf ->
      Format.fprintf ppf "@ harness failure (worker %d): %s" hf.hf_worker
        hf.hf_message)
    t.harness_failures;
  if t.interrupted then
    Format.fprintf ppf "@ exploration interrupted; frontier checkpointed";
  if t.jobs > 1 then
    Format.fprintf ppf "@ parallel exploration on %d domains:@ %a" t.jobs
      (Format.pp_print_list pp_worker_stat)
      t.workers;
  Format.fprintf ppf "@]"
