(** The distributed mode's frontier coordinator.

    Owns the global frontier of fork items and serves it to worker
    processes over the {!Wire} protocol: batches of items are {e leased} to
    a worker, the worker replays each and ships back a result delta
    (counters, findings, child frontier), and the coordinator ingests the
    delta, folds the children back into the frontier, and leases again.
    Results are ingested only as complete frames, so a replay is counted
    exactly once no matter how many times its item was leased — and since
    replays are deterministic, the canonical report is identical to a
    single-process run.

    {b Sessions, reconnects, fencing.} proto=2 distinguishes a worker's
    {e connection} (a socket that can drop) from its {e session} (an
    identity that survives reconnects). A lease belongs to the session.
    When a connection dies, the session keeps its lease for a
    {e rejoin grace} window; a worker that redials inside it with the
    lease intact (same fencing epoch, [pending=] naming the lease) simply
    resumes — its in-flight results frame is still welcome. Any other
    rejoin, or a grace expiry, refunds the lease to the frontier and
    advances the session's {e fencing epoch}: results frames stamped with
    a superseded epoch (a zombie flushing work that was re-leased, or a
    transport redelivery of an already-ingested frame) are read whole and
    discarded, never counted. A [hello] from a peer speaking a different
    protocol version gets a one-line [reject] instead of a hang, and when
    a shared secret is configured every connection must pass an
    HMAC challenge before it is admitted.

    {b Observers.} A connection whose hello carries [role=observer]
    ([dampi top]) is admitted (through the same auth challenge when one
    is configured) as read-only: it gets no job and no leases, does not
    count as a worker for the all-workers-lost verdict or the heartbeat
    scan, and receives periodic [Progress] frames with the aggregate
    (frontier depth, replays/sec, per-worker heartbeat age, ...).

    {b Telemetry.} Workers ship {!Obs.Metrics} deltas piggybacked on
    heartbeats and ahead of results frames; the coordinator folds them
    into one accumulated snapshot per session ({!telemetry}), which the
    explorer merges into the final report so distributed metric totals
    match an in-process run.

    The event loop is single-threaded ([Unix.select]); every callback runs
    on the calling thread, which is what makes periodic checkpointing from
    [tick] race-free. *)

(** How worker connections come to exist. *)
type attach =
  | Fds of Unix.file_descr list
      (** pre-connected sockets (tests and bench use socketpairs) *)
  | Listen of { addr : Wire.addr; ready : Wire.addr -> unit }
      (** bind + listen, then call [ready] (the CLI spawns
          [dampi worker --connect] children there); workers may also join
          later, any time before the frontier drains — including workers
          rejoining a coordinator restarted from a checkpoint *)
  | Dial of Wire.addr list
      (** connect to workers already listening ([dampi worker --listen]) *)

type setup = {
  attach : attach;
  job : Wire.job;  (** sent to every worker before its first lease *)
  lease_size : int;  (** max items per lease (≥ 1) *)
  heartbeat_timeout : float;
      (** seconds of silence before a connected worker is declared dead *)
  join_timeout : float;
      (** seconds a [Listen] coordinator waits for the {e first} worker
          before giving up — split from [heartbeat_timeout] so a
          slow-to-spawn worker pool under a tight heartbeat no longer
          aborts the run spuriously *)
  rejoin_grace : float;
      (** seconds a disconnected session keeps its lease (and holds off
          the all-workers-lost verdict) while its worker redials *)
  auth : string option;
      (** shared secret: when set, every connection must answer the HMAC
          challenge ({!Wire.auth_mac}) before admission *)
  net_fault : Mpi.Fault.Net.spec option;
      (** deterministic transport chaos: every outgoing frame on every
          connection passes through a per-connection {!Mpi.Fault.Net}
          instance (salted by a connection counter, so redials re-draw).
          Injections are counted in [net_fault.<kind>] metrics. [None] or
          a wire-inert spec leaves the send path exactly as before. *)
  outq_budget : int;
      (** backpressure threshold in bytes: a session whose outbound queue
          holds more than this is not leased further work until it drains
          ([coordinator.backpressure] counts the skips) *)
}

val default_lease_size : int
val default_heartbeat_timeout : float
val default_join_timeout : float
val default_rejoin_grace : float
val default_outq_budget : int

type stats = {
  leases : int;  (** lease frames sent *)
  releases : int;  (** items re-leased after a lease was forfeited *)
  workers_seen : int;  (** sessions that completed their first handshake *)
  workers_lost : int;  (** connections lost to EOF, failure, or silence *)
  results : int;  (** result frames ingested *)
  reconnects : int;  (** rebinds of an existing session (lease resumed
                         or fenced) *)
  fenced : int;  (** stale results frames discarded whole *)
  dup_results : int;
      (** duplicate deliveries of an already-settled results frame,
          discarded — distinguished from [fenced] (zombie work at a
          superseded epoch) because the sender is a live, current worker *)
  backpressured : int;  (** lease offers withheld from backed-up sessions *)
}

type t

val create :
  ?metrics:Obs.Metrics.shard ->
  ?profile:bool ->
  ?first_epoch:int ->
  ?admit:(Checkpoint.item -> bool) ->
  ?progress:(unit -> (string * string) list) ->
  budget:int ->
  setup ->
  t
(** Binds/listens or dials according to [setup.attach] (deferring accepts
    and handshakes to {!drive}). [budget] caps the total number of items
    ever leased; items beyond it stay in the frontier (mirroring
    {!Scheduler}'s claim budget). [first_epoch] (default 1) is the first
    fencing epoch this coordinator will grant — a restart passes the
    checkpointed epoch + 1 so every pre-crash grant is stale on arrival.
    [admit] filters every {!push} (seeds and children ingested from result
    frames); refunded leases bypass it, since their items were admitted
    when first pushed — the explorer uses it for duplicate-schedule
    detection at the frontier. [metrics] gains [coordinator.leases],
    [coordinator.releases], [coordinator.reconnects],
    [coordinator.fenced], [coordinator.dup_results],
    [coordinator.backpressure], [coordinator.hb_grace_extends],
    [coordinator.worker_rtt_s], and — under chaos — [net_fault.<kind>]
    injection counters, all written only from the driving thread. [profile] additionally records frame read/write
    time in the [profile.wire_io_s] histogram. [progress] supplies
    caller-level key/value pairs (runs, replays/sec, cache rates)
    appended to the coordinator's own figures in the progress frames
    streamed to attached observers. *)

val push : t -> Checkpoint.item list -> unit
(** Seed the frontier (before or during {!drive}). *)

val snapshot : t -> Checkpoint.item list
(** Frontier plus every item on an outstanding lease — the same consistent
    cut {!Scheduler.snapshot} gives, safe to call from {!drive}'s
    callbacks. *)

val pending : t -> int

val stats : t -> stats

val current_epoch : t -> int
(** Highest fencing epoch granted so far (the [first_epoch - 1] floor
    before any admission) — what a checkpoint must record so a restarted
    coordinator fences every session this one admitted. *)

val telemetry : t -> (string * Obs.Metrics.snapshot) list
(** Accumulated worker metric deltas, one labeled snapshot per session id,
    sorted. Workers ship deltas piggybacked on heartbeats and ahead of
    every results frame, so after a clean (failure-free) drain these
    totals account for every remote replay exactly once and the merged
    report equals a [jobs = 1] run. Under crashes telemetry stays
    best-effort: a delta in flight when a connection dies may be lost,
    and a fenced zombie's deltas may double-count — findings and run
    counts are never affected (they ride the exactly-once results
    path). *)

val drive :
  t ->
  on_run:(item:Checkpoint.item -> Wire.run_result -> unit) ->
  should_stop:(unit -> bool) ->
  tick:(unit -> unit) ->
  (unit, string) result
(** Run the event loop until the frontier drains (and no lease is
    outstanding), the budget is exhausted, or [should_stop] answers [true].
    On a drained/budget-capped exit workers are sent [shutdown] (the run
    is over; they may exit); on [should_stop] or [Error] they are sent
    [detach] (the run is {e not} over — long-lived workers go back to
    redialling or listening). [on_run] fires once per leased item as its
    result frame is ingested, with the original item; [tick] fires about
    once per select timeout (for periodic checkpoints). [Error] is
    returned when every worker is gone — and none is inside its rejoin
    grace — while work remains (or none ever appeared within
    [join_timeout]); the frontier still holds that work, so a checkpoint
    taken afterwards can resume it, and {!Explorer} can optionally drain
    it in-process instead. May be called only once. *)
