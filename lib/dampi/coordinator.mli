(** The distributed mode's frontier coordinator.

    Owns the global frontier of fork items and serves it to worker
    processes over the {!Wire} protocol: batches of items are {e leased} to
    a worker, the worker replays each and ships back a result delta
    (counters, findings, child frontier), and the coordinator ingests the
    delta, folds the children back into the frontier, and leases again. A
    worker that disconnects, reports failure, or goes silent past the
    heartbeat timeout forfeits its outstanding lease: those items return to
    the frontier and are re-leased to a surviving worker. Results are
    ingested only as complete frames, so a replay is counted exactly once
    no matter how many times its item was leased — and since replays are
    deterministic, the canonical report is identical to a single-process
    run.

    The event loop is single-threaded ([Unix.select]); every callback runs
    on the calling thread, which is what makes periodic checkpointing from
    [tick] race-free. *)

(** How worker connections come to exist. *)
type attach =
  | Fds of Unix.file_descr list
      (** pre-connected sockets (tests and bench use socketpairs) *)
  | Listen of { addr : Wire.addr; ready : Wire.addr -> unit }
      (** bind + listen, then call [ready] (the CLI spawns
          [dampi worker --connect] children there); workers may also join
          later, any time before the frontier drains *)
  | Dial of Wire.addr list
      (** connect to workers already listening ([dampi worker --listen]) *)

type setup = {
  attach : attach;
  job : Wire.job;  (** sent to every worker before its first lease *)
  lease_size : int;  (** max items per lease (≥ 1) *)
  heartbeat_timeout : float;
      (** seconds of silence before a worker is declared dead *)
}

val default_lease_size : int
val default_heartbeat_timeout : float

type stats = {
  leases : int;  (** lease frames sent *)
  releases : int;  (** items re-leased after a worker was lost *)
  workers_seen : int;  (** workers that completed the hello/ready handshake *)
  workers_lost : int;  (** workers lost to EOF, failure, or missed heartbeat *)
  results : int;  (** result frames ingested *)
}

type t

val create : ?metrics:Obs.Metrics.shard -> budget:int -> setup -> t
(** Binds/listens or dials according to [setup.attach] (deferring accepts
    and handshakes to {!drive}). [budget] caps the total number of items
    ever leased; items beyond it stay in the frontier (mirroring
    {!Scheduler}'s claim budget). [metrics] gains [coordinator.leases],
    [coordinator.releases], [coordinator.worker_rtt_s] — written only from
    the driving thread. *)

val push : t -> Checkpoint.item list -> unit
(** Seed the frontier (before or during {!drive}). *)

val snapshot : t -> Checkpoint.item list
(** Frontier plus every item on an outstanding lease — the same consistent
    cut {!Scheduler.snapshot} gives, safe to call from {!drive}'s
    callbacks. *)

val pending : t -> int

val stats : t -> stats

val drive :
  t ->
  on_run:(item:Checkpoint.item -> Wire.run_result -> unit) ->
  should_stop:(unit -> bool) ->
  tick:(unit -> unit) ->
  (unit, string) result
(** Run the event loop until the frontier drains (and no lease is
    outstanding), the budget is exhausted, or [should_stop] answers [true];
    workers are then sent [shutdown] and the connections closed. [on_run]
    fires once per leased item as its result frame is ingested, with the
    original item; [tick] fires about once per select timeout (for periodic
    checkpoints). [Error] is returned when every worker is gone (or none
    ever appeared within the heartbeat timeout) while work remains — the
    frontier still holds that work, so a checkpoint taken afterwards can
    resume it. May be called only once. *)
