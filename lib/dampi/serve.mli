(** Verification as a service: a crash-isolated, backpressured job daemon.

    [dampi serve] turns the one-shot CLI into a resident verifier: a
    single-threaded select loop (the {!Coordinator} event-loop pattern
    over the {!Wire.Lines} bounded assembler) accepts line-oriented job
    requests from many clients, queues them FIFO with per-client
    fairness, and runs each admitted job in a {e forked child process}.
    Fork-per-job is the crash-isolation mechanism: a job whose replay
    raises — or segfaults, or is OOM-killed — takes down only its child;
    the daemon classifies the death from the exit status plus whatever
    final frame the child managed to write, reports it to the submitting
    client with the backtrace, and keeps serving.

    Client protocol (serve proto=1, one request per line, free-form text
    percent-encoded via {!Checkpoint.enc}):
    {v
      client: submit workload=<enc> [np=<n>] [k=<enc>] ... [on-disconnect=cancel|detach]
      serve:  accepted id=<n>
              — or — reject queue-full | reject client-cap | reject draining
              — or — error proto=1 <enc reason>
      serve:  progress id=<n> <key>=<enc> ...        (streamed while running)
      serve:  report id=<n> <nlines> / nlines x l <enc-line> / end
      serve:  done id=<n> status=<s> code=<n> msg=<enc> backtrace=<enc>
      client: fetch <id>
      serve:  report/done as above (a parked report, consumed by the fetch)
              — or — pending id=<n> state=queued|running
              — or — error proto=1 <enc reason>
    v}

    Terminal statuses: [completed] (code 0 clean, 1 findings),
    [checkpointed] (code 3: daemon drained; the job is journaled and will
    resume on restart), [crashed] (code 1 or 2: classified failure, [msg]
    and [backtrace] carry the cause), [cancelled].

    {b Admission control.} The queue is bounded in jobs and bytes and
    each client has an in-flight cap; a submit past any bound gets a
    one-line reject and nothing else changes. Garbage request lines get a
    versioned [error proto=1] line (connection stays up); a single
    unterminated line past [limits.max_line] gets the error and the
    connection closed. None of these can terminate the daemon.

    {b Client lifecycle.} A client that disconnects mid-job triggers its
    jobs' [on-disconnect] policy: [cancel] (default) SIGTERMs the child
    and drops queued jobs; [detach] lets the job finish and parks its
    report on disk for a later [fetch] by id. A failed progress/report
    write to a vanished client marks the client gone and applies the same
    policy — EPIPE never kills the daemon.

    {b Drain and recovery.} SIGTERM stops admission and SIGTERMs running
    children, whose Explorer checkpoint machinery snapshots the frontier;
    [serve] then returns 0. Two SIGINTs force: children are SIGKILLed and
    [serve] returns 130. Every admitted-but-unfinished job spec lives in
    an atomic-write journal ({!Checkpoint.atomic_write}) in [state_dir],
    so a restarted daemon re-admits lost jobs exactly once (as detached
    jobs — their submitters are gone) and resumes checkpointed ones. *)

val proto : int
(** serve protocol version (1). *)

type on_disconnect = Cancel | Detach

val on_disconnect_of_string : string -> (on_disconnect, string) result
(** ["cancel" | "detach"]; anything else is [Error]. *)

(** What a job run produced, as reported by the child. *)
type outcome =
  | Completed of { report : string; code : int }
      (** rendered report text (what the client receives line by line)
          plus the exit code a standalone [dampi verify] would use *)
  | Checkpointed
      (** the run was interrupted (daemon drain) and snapshotted; the
          job stays journaled for the next daemon instance *)

type limits = {
  parallel : int;  (** concurrent job children *)
  max_queue : int;  (** queued (not yet running) jobs *)
  max_queue_bytes : int;  (** summed encoded spec bytes of queued jobs *)
  max_client_inflight : int;  (** queued+running jobs per client *)
  max_line : int;  (** request-line byte cap, {!Wire.Lines} *)
}

val default_limits : limits
(** parallel 2, queue 32 jobs / 1 MiB, 4 in-flight per client,
    {!Wire.default_max_line}-byte lines. *)

type config = {
  addr : Wire.addr;
  state_dir : string;
      (** journal, per-job checkpoints (+ prefix-cache sidecars, which
          survive job completion and make repeat submissions warm), and
          parked reports. Created if missing. *)
  limits : limits;
  validate : (string * string) list -> (string, string) result;
      (** Admission-time check of a submit's key/value params, run in the
          daemon: [Ok label] yields the canonical job label (which also
          keys the checkpoint path, so identically-labelled jobs share
          warm state and are never run concurrently); [Error] is sent to
          the client as [error proto=1]. Must not raise. *)
  run :
    ckpt:string ->
    label:string ->
    params:(string * string) list ->
    progress:((string * string) list -> unit) ->
    outcome;
      (** Executes one job, in the forked child. [ckpt] is the job's
          checkpoint path inside [state_dir]: the runner should arm
          Explorer checkpointing on it (drain depends on that) and resume
          from it when it exists. [progress] frames are forwarded to the
          submitting client. Raising is safe — it is what the
          crash-isolation path classifies. *)
  metrics : Obs.Metrics.shard option;
      (** serve.jobs_{accepted,rejected,completed,crashed,cancelled}
          counters, serve.queue_depth gauge, serve.job_wall_s
          histogram. *)
  ready : (Wire.addr -> unit) option;
      (** called once the listen socket is bound. *)
}

val serve : config -> (int, string) result
(** Runs the daemon until drained. [Ok 0]: graceful drain (SIGTERM or
    SIGINT) with every in-flight job finished or checkpointed; [Ok 130]:
    forced shutdown (second SIGINT). [Error] on bind/journal failures.
    Ignores SIGPIPE and installs SIGTERM/SIGINT handlers for the
    duration (restored on return). *)

(** {2 Client side}

    Blocking helpers for thin clients ([dampi submit] / [dampi fetch])
    and tests; they keep the encoding and its parse in one module. *)

type event =
  | Accepted of int
  | Rejected of string
  | Errored of { proto : int; reason : string }
  | Progress of int * (string * string) list
  | Report of int * string list  (** decoded report lines *)
  | Done of {
      id : int;
      status : string;
      code : int;
      msg : string;
      backtrace : string;
    }
  | Pending of { id : int; state : string }

val submit_line :
  params:(string * string) list -> on_disconnect:on_disconnect -> string
(** The [submit] request line (no trailing newline). *)

val fetch_line : int -> string

val read_event : in_channel -> (event, string) result
(** Blocking read of one daemon frame. [Error] on EOF or malformed
    input. *)
