(** Epochs (§II-B).

    Every non-deterministic event — a wildcard receive or a wildcard probe —
    starts an epoch on its issuing process. The epoch is identified by
    [(owner, id)] where [id] is the owner's scalar clock at the event
    ([RecordEpochData(LCi)] in Algorithm 1), and it accumulates the
    {e potential matches}: sources whose late messages could have matched
    this event in an alternative execution. *)

type kind = Wildcard_recv | Wildcard_probe

type t = {
  owner : int;  (** world pid of the issuing process *)
  id : int;  (** scalar clock at the event — the epoch identifier *)
  kind : kind;
  ctx : int;  (** communicator context the event was posted on *)
  tag : int;  (** tag spec (may be [any_tag]) *)
  clock_enc : int array;  (** encoded epoch clock, for the lateness test *)
  mutable matched_src : int;
      (** communicator rank actually matched in this run; -1 until known *)
  mutable potentials : int list;
      (** communicator ranks of discovered alternate matches (no duplicates,
          never contains [matched_src]) *)
  mutable completed : bool;
  mutable global_index : int;
      (** position in the run's global completion order; -1 until completed *)
  mutable expandable : bool;
      (** false when a bounding heuristic (loop abstraction, bounded mixing)
          rules this epoch out of further exploration *)
}

let make ~owner ~id ~kind ~ctx ~tag ~clock_enc =
  {
    owner;
    id;
    kind;
    ctx;
    tag;
    clock_enc;
    matched_src = -1;
    potentials = [];
    completed = false;
    global_index = -1;
    expandable = true;
  }

(** Could a message with this (ctx, tag) have been posted to this epoch's
    receive, ignoring causality? *)
let spec_matches t ~ctx ~tag =
  t.ctx = ctx && (t.tag = Mpi.Types.any_tag || t.tag = tag)

let add_potential t src =
  if src <> t.matched_src && not (List.mem src t.potentials) then
    t.potentials <- src :: t.potentials

(** Record the actual match; drops the matched source from the potential set
    (re-forcing the observed match would replay an explored interleaving). *)
let set_matched t src =
  t.matched_src <- src;
  t.completed <- true;
  t.potentials <- List.filter (fun s -> s <> src) t.potentials

let alternatives t = List.sort compare t.potentials

type summary = {
  s_owner : int;
  s_id : int;
  s_kind : kind;
  s_ctx : int;
  s_tag : int;
  s_matched : int;
  s_alternatives : int list;
  s_expandable : bool;
}

let summarize t =
  {
    s_owner = t.owner;
    s_id = t.id;
    s_kind = t.kind;
    s_ctx = t.ctx;
    s_tag = t.tag;
    s_matched = t.matched_src;
    s_alternatives = alternatives t;
    s_expandable = t.expandable;
  }

let summary_equal (a : summary) (b : summary) = a = b

let pp_kind ppf = function
  | Wildcard_recv -> Format.pp_print_string ppf "recv(*)"
  | Wildcard_probe -> Format.pp_print_string ppf "probe(*)"

let pp ppf t =
  Format.fprintf ppf
    "epoch(owner=%d, id=%d, %a, ctx=%d, tag=%d, matched=%d, alts=[%s]%s)"
    t.owner t.id pp_kind t.kind t.ctx t.tag t.matched_src
    (String.concat ";" (List.map string_of_int (alternatives t)))
    (if t.expandable then "" else ", bounded")
