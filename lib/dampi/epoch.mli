(** Epochs (§II-B of the paper).

    Every non-deterministic event — a wildcard receive or probe — starts an
    epoch on its issuing process, identified by [(owner, id)] where [id] is
    the owner's scalar clock at the event. The epoch accumulates the
    {e potential matches}: sources whose late messages could have matched it
    in an alternative execution. *)

type kind = Wildcard_recv | Wildcard_probe

type t = {
  owner : int;  (** world pid of the issuing process *)
  id : int;  (** scalar clock at the event — the epoch identifier *)
  kind : kind;
  ctx : int;  (** communicator context the event was posted on *)
  tag : int;  (** tag spec (may be [any_tag]) *)
  clock_enc : int array;  (** encoded epoch clock, for the lateness test *)
  mutable matched_src : int;  (** matched communicator rank; -1 until known *)
  mutable potentials : int list;
  mutable completed : bool;
  mutable global_index : int;  (** completion-order position; -1 until then *)
  mutable expandable : bool;
      (** false when a bounding heuristic rules this epoch out *)
}

val make :
  owner:int -> id:int -> kind:kind -> ctx:int -> tag:int -> clock_enc:int array -> t

val spec_matches : t -> ctx:int -> tag:int -> bool
(** Could a message with this (ctx, tag) have been posted to this epoch's
    receive, ignoring causality? *)

val add_potential : t -> int -> unit
(** Record an alternate source (idempotent; the matched source is never
    added). *)

val set_matched : t -> int -> unit
(** Record the actual match; drops it from the potential set. *)

val alternatives : t -> int list
(** Unexplored alternate sources, sorted. *)

(** The immutable footprint of a completed epoch — what pruning, caching,
    and the wire need to remember about it after the replay that produced
    it is gone. Built once per epoch by {!summarize}, so two summaries are
    equal exactly when the epochs were observed identically. *)
type summary = {
  s_owner : int;
  s_id : int;
  s_kind : kind;
  s_ctx : int;
  s_tag : int;
  s_matched : int;  (** matched communicator rank *)
  s_alternatives : int list;  (** sorted, as {!alternatives} returns *)
  s_expandable : bool;
}

val summarize : t -> summary

val summary_equal : summary -> summary -> bool
(** Structural equality on every field — "the same epoch rediscovered
    unchanged". *)

val pp_kind : Format.formatter -> kind -> unit
val pp : Format.formatter -> t -> unit
