(** The schedule generator and replay driver (Fig. 1, §II-B).

    After the initial self run, DAMPI walks the space of match decisions
    depth-first: it forces the alternate matches of the {e last} epoch
    first, then the penultimate, and so on, re-executing the target program
    under each Epoch-Decisions plan. The walk is stateless — every
    interleaving is a full re-execution from [MPI_Init] — so it relies on
    the runtime's determinism for sound replay.

    The explorer is parametric in the [runner] that executes one
    interleaving; the ISP baseline reuses the same walk with its own
    centralized-cost runner, which is exactly the comparison of Figs. 5/6
    (same coverage, different per-run cost).

    Execution is delegated to an {!Executor.t} backend: the in-process
    domain pool ({!Scheduler}) by default, or — the paper's distributed
    mode — a {!Coordinator} leasing the frontier to worker processes over
    sockets. Both drain the same frontier and feed the same counting path,
    so the canonical report is identical whichever executes the replays. *)

module Runtime = Mpi.Runtime
module Coroutine = Sim.Coroutine

let src = Obs.Log.src "dampi.explorer"

module Log = (val Obs.Log.src_log src : Obs.Log.LOG)

type checkpoint_cfg = Executor.checkpoint_cfg = {
  path : string;
  every : int;  (** completed replays between periodic writes; 0 = only on interrupt/finish *)
  label : string;  (** workload identity stored in (and validated against) the file *)
}

type robustness = Executor.robustness = {
  replay_timeout : float option;
  max_replay_steps : int option;
  max_retries : int;
  retry_backoff : float;
  fault : Mpi.Fault.spec option;
  net_fault : Mpi.Fault.Net.spec option;
  checkpoint : checkpoint_cfg option;
  interrupt_after : int option;
}

let default_robustness = Executor.default_robustness

type config = {
  state_config : State.config;
  cost : Runtime.cost_model;
  max_runs : int;  (** interleaving budget; [max_int] = exhaustive *)
  check_leaks : bool;
  stop_on_first_error : bool;
  jobs : int;  (** worker domains; 1 = sequential depth-first walk *)
  trace : bool;  (** collect a span timeline of the exploration *)
  prune : bool;
      (** sleep-set pruning at frontier expansion ({!Prune.expand}) plus
          duplicate-schedule suppression at the enqueue paths *)
  prefix_cache : int option;
      (** memoize replay artifacts by schedule ({!Prefix_cache}), with this
          LRU byte budget; persisted as a checkpoint sidecar *)
  profile : bool;
      (** phase-timing histograms ([profile.match_loop_s],
          [profile.clock_merge_s], [profile.sched_wait_s],
          [profile.wire_io_s]) in the metrics output; each timed phase
          costs a clock read, so off by default *)
  progress : ((string * string) list -> unit) option;
      (** live-progress sink, called (throttled, ~2 Hz) with exploration
          key/values: replays/sec, frontier depth, prune/cache rates,
          per-worker figures. Drives [--progress]; in distributed mode the
          run-level pairs also ride the [Progress] frames the coordinator
          streams to observers ([dampi top]) *)
  robustness : robustness;
}

let default_config =
  {
    state_config = State.default_config;
    cost = Runtime.default_cost;
    max_runs = max_int;
    check_leaks = true;
    stop_on_first_error = false;
    jobs = 1;
    trace = false;
    prune = false;
    prefix_cache = None;
    profile = false;
    progress = None;
    robustness = default_robustness;
  }

type run_ctx = Executor.run_ctx = {
  worker : int;
  metrics : Obs.Metrics.shard option;
  poison : (unit -> bool) option;
  salt : int;
}

let null_ctx = Executor.null_ctx

type runner = Executor.runner

(* ---- The DAMPI runner: one interposed execution ---- *)

let errors_of_run ~check_leaks ~(outcome : Coroutine.outcome) ~leaks
    ~shadow_ctxs ~(st : State.t) =
  let errors = ref [] in
  (match outcome with
  | Coroutine.All_finished -> ()
  | Coroutine.Deadlock blocked ->
      (* Ranks parked in the tool's finalize barrier completed their user
         code; naming that keeps the report pointing at the real culprits. *)
      let describe (b : Coroutine.blocked_info) =
        let reason =
          if
            b.reason = "collective barrier on dup(world)"
            || b.reason = "collective comm_dup on world"
          then "finished its program (parked in tool finalize)"
          else b.reason
        in
        (b.pid, reason)
      in
      errors :=
        Report.Deadlock { blocked = List.map describe blocked } :: !errors
  | Coroutine.Crashed (pid, exn, _) ->
      errors :=
        Report.Crash { pid; message = Printexc.to_string exn } :: !errors);
  if check_leaks then begin
    (* Leaks are only meaningful for runs that completed finalize. *)
    (match outcome with
    | Coroutine.All_finished ->
        let { Runtime.comm_leaks; req_leaks; _ } = leaks in
        List.iter
          (fun (pid, leaked) ->
            let user_leaked =
              List.filter
                (fun (l : Runtime.leaked_comm) ->
                  not (List.mem l.Runtime.leaked_ctx shadow_ctxs))
                leaked
            in
            if user_leaked <> [] then
              errors :=
                Report.Comm_leak
                  {
                    pid;
                    labels =
                      List.map
                        (fun (l : Runtime.leaked_comm) ->
                          Printf.sprintf "%s(ctx=%d)" l.Runtime.leaked_label
                            l.Runtime.leaked_ctx)
                        user_leaked;
                  }
                :: !errors)
          comm_leaks;
        Array.iteri
          (fun pid count ->
            if count > 0 then
              errors := Report.Request_leak { pid; count } :: !errors)
          req_leaks
    | Coroutine.Deadlock _ | Coroutine.Crashed _ -> ())
  end;
  List.iter
    (fun (w : State.monitor_warning) ->
      errors :=
        Report.Monitor_alert
          { pid = w.State.warn_pid; epoch_id = w.State.warn_epoch_id; op = w.State.warn_op }
        :: !errors)
    (State.warnings st);
  if st.State.divergences > 0 then
    errors := Report.Replay_divergence { count = st.State.divergences } :: !errors;
  List.rev !errors

(* The fault instance for one (replay, attempt), derived from the configured
   spec and the context's salt — shared with the ISP runner. *)
let fault_of_ctx (ctx : run_ctx) = function
  | None -> Mpi.Fault.none
  | Some spec -> Mpi.Fault.make spec ~salt:ctx.salt

let dampi_runner config ~np (program : Mpi.Mpi_intf.program) : runner =
 fun ~ctx plan ~fork_index ->
  let fault = fault_of_ctx ctx config.robustness.fault in
  let rt =
    Runtime.create ~cost:config.cost ?metrics:ctx.metrics
      ~profile:config.profile ~fault ~np ()
  in
  let st =
    State.create ~config:config.state_config ?metrics:ctx.metrics
      ~profile:config.profile ?poison:ctx.poison ~np ~plan ~fork_index ()
  in
  (* An injected wedge spins on this hook; the watchdog's poison breaks the
     spin through the same [State.check_poison] path as [--stop-first]. *)
  Runtime.set_interrupt_hook rt (fun () -> State.check_poison st);
  let module B = Mpi.Bind.Make (struct
    let rt = rt
  end) in
  let module W = Interpose.Wrap (B) (struct
    let st = st
  end) in
  let module P = (val program) in
  let module Prog = P (W) in
  Runtime.spawn_ranks rt (fun _rank ->
      W.init_tool ();
      Prog.main ();
      W.finalize_tool ());
  let outcome = Runtime.run rt in
  State.flush_metrics st;
  (* A poisoned rank surfaces as a crash on [Replay_cancelled]; the run is
     then a cancelled replay, not a finding. *)
  let cancelled =
    match outcome with
    | Coroutine.Crashed (_, State.Replay_cancelled, _) -> true
    | _ -> false
  in
  let leaks = Runtime.leak_report rt in
  {
    Report.run_plan = plan;
    outcome;
    makespan = Runtime.makespan rt;
    new_epochs = (if cancelled then [] else State.completed_epochs st);
    run_errors =
      (if cancelled then []
       else
         errors_of_run ~check_leaks:config.check_leaks ~outcome ~leaks
           ~shadow_ctxs:(W.shadow_ctxs ()) ~st);
    wildcards = State.wildcard_events st;
    cancelled;
  }

(* A run with no tool attached, for overhead baselines (Table II). *)
let native_makespan ?(cost = Runtime.default_cost) ~np program =
  let rt, _outcome = Mpi.Bind.exec ~cost ~np program in
  Runtime.makespan rt

(* ---- The walk over epoch decisions ---- *)

(* One pending guided run: the observed prefix up to a fork, plus the single
   alternate match to force there ({!Checkpoint.item}, so the frontier
   serializes as-is — to a checkpoint file or onto the distributed wire). *)
type item = Checkpoint.item = {
  prefix : Decisions.decision list;  (* observed matches before the fork *)
  choice : Decisions.decision;  (* the alternate match this run forces *)
  sleep : Epoch.summary list;  (* epochs this subtree must not re-expand *)
}

(* How one replay (possibly after retries) resolved, as seen by the walk.
   A counted run carries its memoizable artifact ({!Prefix_cache.entry}) —
   the same value whether the schedule was replayed or served from the
   cache, which is what keeps cache-hit children identical to executed-run
   children. *)
type run_status =
  | Counted of Prefix_cache.entry
      (* completed (or expand-only re-ran): expand its child frontier *)
  | Stopped  (* poisoned by stop-first cancellation: drop *)
  | Interrupted  (* poisoned by SIGINT/SIGTERM: requeue for the checkpoint *)
  | Gave_up  (* every attempt hit the watchdog: record, no frontier *)

(* Sequential, parallel, and distributed exploration share this one walk:
   the frontier is drained by an executor backend, and each executed item
   is a complete guided replay (fresh Runtime + State inside [runner], so
   workers share no mutable state beyond the queue and the findings
   table). Findings merge under [m] keyed by error signature, keeping the
   canonically smallest reproduction schedule, and the report sorts
   findings by schedule — so the finding set, interleaving count, and
   bounded-epoch count are identical at any worker count and over any
   transport (on an exhaustive exploration; a binding [max_runs] budget
   selects a worker-order-dependent subset of runs by nature). *)
let explore ?(config = default_config) ?resume ?distribute
    ?(fallback_local = false) ~np (runner : runner) : Report.t =
  let started = Unix.gettimeofday () in
  let jobs = max 1 config.jobs in
  let rb = config.robustness in
  (* A checkpoint recording nothing is indistinguishable from a fresh start;
     treat it as one so an interrupt during the self run stays resumable. *)
  let resume =
    match resume with
    | Some (c : Checkpoint.t) when c.Checkpoint.runs > 0 || c.Checkpoint.complete
      ->
        Some c
    | _ -> None
  in
  (* Shard layout: one per worker domain, plus a shard for the scheduler
     or coordinator (whose writes happen under its own lock, or on the
     single driving thread), plus a shard for the prefix cache and the
     frontier-dedup counters (written under their own mutexes). The merged
     snapshot of a jobs=N exploration equals the jobs=1 one for every
     series that is a property of the run set. *)
  let registry = Obs.Metrics.create ~shards:(jobs + 2) () in
  let worker_shard w = Obs.Metrics.shard registry w in
  let replays_c =
    Array.init jobs (fun w ->
        Obs.Metrics.counter (worker_shard w) "explorer.replays")
  in
  let retries_c =
    Array.init jobs (fun w ->
        Obs.Metrics.counter (worker_shard w) "explorer.retries")
  in
  let timeouts_c =
    Array.init jobs (fun w ->
        Obs.Metrics.counter (worker_shard w) "explorer.timeouts")
  in
  let faults_c =
    Array.init jobs (fun w ->
        Obs.Metrics.counter (worker_shard w) "explorer.fault_aborts")
  in
  let wall_h =
    Array.init jobs (fun w ->
        Obs.Metrics.histogram (worker_shard w) "explorer.replay_wall_s")
  in
  let vtime_h =
    Array.init jobs (fun w ->
        Obs.Metrics.histogram (worker_shard w) "explorer.replay_vtime_s")
  in
  let cancel_h =
    Array.init jobs (fun w ->
        Obs.Metrics.histogram (worker_shard w) "explorer.cancel_latency_s")
  in
  let pruned_c =
    Array.init jobs (fun w ->
        Obs.Metrics.counter (worker_shard w) "prune.children_suppressed")
  in
  let aux_shard = Obs.Metrics.shard registry (jobs + 1) in
  let cache =
    Option.map
      (fun budget_bytes ->
        let label =
          match rb.checkpoint with Some ck -> ck.label | None -> ""
        in
        Prefix_cache.create ~metrics:aux_shard ~label ~budget_bytes ())
      config.prefix_cache
  in
  (* Frontier-level duplicate-schedule suppression: one admit filter shared
     by every enqueue path (pool pushes and coordinator ingestion). In a
     normal walk every in-tree key is unique, so this only fires on actual
     re-discoveries — but it is what makes the dedup a frontier property
     instead of a report-layer afterthought. *)
  let seen = Prune.Seen.create () in
  let duplicates = Atomic.make 0 in
  let admit it =
    let fresh = Prune.Seen.admit seen it in
    if not fresh then Atomic.incr duplicates;
    fresh
  in
  let tracer =
    if config.trace then Some (Obs.Trace.create ~shards:jobs ()) else None
  in
  let m = Mutex.create () in
  let findings = Report.Merge.create () in
  let runs = ref 0 in
  let runs_pruned = ref 0 in
  let runs_cancelled = ref 0 in
  let runs_timed_out = ref 0 in
  let runs_retried = ref 0 in
  let runs_crashed = ref 0 in
  let harness_failures : Report.harness_failure list ref = ref [] in
  let total_vtime = ref 0.0 in
  let monitor_alerts = ref 0 in
  let bounded = ref 0 in
  let wildcards_analyzed = ref 0 in
  let first_makespan = ref 0.0 in
  let error_found = Atomic.make false in
  let cancel_at = Atomic.make 0.0 in
  let interrupt_requested = Atomic.make false in
  (* Keys of replays already counted. [resume_completed] is immutable during
     the run (safe to read from any worker without the lock); newly counted
     keys accumulate separately under [m] for the next checkpoint write. *)
  let resume_completed : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let new_completed : string list ref = ref [] in
  let completed_since = ref 0 in
  let exec_ref : Executor.t option ref = ref None in
  (* Accumulated worker telemetry from a distributed run, labeled by
     session id — captured when the coordinator backend finishes driving
     and folded into the final report so distributed metric totals match
     an in-process run. *)
  let remote_telemetry : (string * Obs.Metrics.snapshot) list ref =
    ref []
  in
  (* Highest fencing epoch known to this run: the checkpoint's floor,
     raised by whatever the coordinator grants. Persisted so a restarted
     coordinator starts above every pre-crash grant. *)
  let epoch_hi =
    ref (match resume with Some c -> c.Checkpoint.epoch | None -> 0)
  in
  (* The frontier before any backend exists (the self run's children, or a
     resumed checkpoint's items): if the exploration is cut before the
     backend starts, this is what the checkpoint must carry. *)
  let frontier_fallback : item list ref = ref [] in
  (match resume with
  | None -> ()
  | Some c ->
      runs := c.Checkpoint.runs;
      runs_cancelled := c.Checkpoint.runs_cancelled;
      runs_timed_out := c.Checkpoint.runs_timed_out;
      runs_retried := c.Checkpoint.runs_retried;
      runs_crashed := c.Checkpoint.runs_crashed;
      monitor_alerts := c.Checkpoint.monitor_alerts;
      bounded := c.Checkpoint.bounded_epochs;
      runs_pruned := c.Checkpoint.pruned;
      wildcards_analyzed := c.Checkpoint.wildcards_analyzed;
      first_makespan := c.Checkpoint.first_run_makespan;
      total_vtime := c.Checkpoint.total_virtual_time;
      List.iter
        (fun (f : Report.finding) ->
          Report.Merge.add findings f;
          match f.Report.error with
          | Report.Deadlock _ | Report.Crash _ -> Atomic.set error_found true
          | _ -> ())
        c.Checkpoint.findings;
      List.iter
        (fun k -> Hashtbl.replace resume_completed k ())
        c.Checkpoint.completed);
  (* Warm the cache from the checkpoint's sidecar — on resume (the
     expand-only re-runs then cost a lookup, not a replay) but also on a
     fresh start, where a sidecar left by a previous complete run turns the
     whole re-verification into lookups. The label stored in the sidecar
     must match the checkpoint label, so a stale file from another workload
     or config is refused; a missing or corrupt sidecar costs warmth, not
     correctness. *)
  (match (cache, rb.checkpoint) with
  | Some pc, Some ck when Sys.file_exists (ck.path ^ ".cache") ->
      ignore (Prefix_cache.load pc (ck.path ^ ".cache"))
  | _ -> ());
  let need_poison =
    config.stop_on_first_error || rb.checkpoint <> None
    || rb.replay_timeout <> None || rb.max_replay_steps <> None
    || rb.fault <> None || rb.interrupt_after <> None
  in
  let root_span =
    Option.map
      (fun tr ->
        Obs.Trace.begin_span (Obs.Trace.sink tr 0)
          ~args:[ ("np", Obs.Trace.Int np); ("jobs", Obs.Trace.Int jobs) ]
          "explore")
      tracer
  in
  let root_id =
    match root_span with Some sp -> Obs.Trace.span_id sp | None -> -1
  in
  let worker_runs = Array.make jobs 0 in
  let worker_wall = Array.make jobs 0.0 in
  let worker_vtime = Array.make jobs 0.0 in
  (* Caller holds [m]. Findings go through {!Report.Merge}: bucketed by
     signature but deduplicated by structural error value, so two distinct
     findings whose errors merely render identically can no longer shadow
     each other mid-merge. *)
  let record_findings errors ~run_index ~schedule =
    List.iter
      (fun error ->
        (match error with
        | Report.Monitor_alert _ -> incr monitor_alerts
        | _ -> ());
        Report.Merge.add findings { Report.error; run_index; schedule })
      errors
  in
  let sorted_findings () = Report.Merge.to_list findings in
  (* ---- live progress: the [--progress] ticker and observer frames ---- *)
  (* Caller holds [m]. Run-level figures — what the coordinator appends to
     the frames it streams to observers (its own pairs already carry
     frontier depth and per-worker heartbeat ages). *)
  let run_kvs now =
    let elapsed = now -. started in
    let rps =
      if elapsed > 0.0 then float_of_int !runs /. elapsed else 0.0
    in
    let cache_kvs =
      match cache with
      | None -> []
      | Some pc ->
          let hits, misses, bytes, _ = Prefix_cache.stats pc in
          [
            ("cache.hits", string_of_int hits);
            ("cache.misses", string_of_int misses);
            ("cache.bytes", string_of_int bytes);
          ]
    in
    [
      ("runs", string_of_int !runs);
      ("replays_per_s", Printf.sprintf "%.1f" rps);
      ("pruned", string_of_int !runs_pruned);
      ("findings", string_of_int (List.length (sorted_findings ())));
    ]
    @ cache_kvs
  in
  (* Caller holds [m]. The local ticker additionally sees the frontier
     depth and per-worker run counts (its "lag" signal: a straggler's
     count stalls while its siblings advance). *)
  let ticker_kvs now =
    let frontier =
      match !exec_ref with
      | Some e -> List.length (e.Executor.snapshot ())
      | None -> List.length !frontier_fallback
    in
    let per_worker =
      List.init jobs (fun i ->
          (Printf.sprintf "w%d.runs" i, string_of_int worker_runs.(i)))
    in
    (("frontier", string_of_int frontier) :: run_kvs now) @ per_worker
  in
  let last_tick = ref 0.0 in
  (* Caller holds [m]. Throttled to ~2 Hz so a hot counting path never
     pays for rendering. *)
  let maybe_progress () =
    match config.progress with
    | None -> ()
    | Some emit ->
        let now = Unix.gettimeofday () in
        if now -. !last_tick >= 0.5 then begin
          last_tick := now;
          emit (ticker_kvs now)
        end
  in
  (* Fold one counted replay into the canonical totals, wherever it ran —
     on a pool domain (from a full run record) or on a remote worker (from
     a wire delta). Everything here is a pure function of the run set, so
     the report is transport-independent. *)
  let count_completed ~worker ~key ~schedule ~makespan ~bounded_delta ~errors =
    Mutex.lock m;
    let index = !runs in
    incr runs;
    total_vtime := !total_vtime +. makespan;
    worker_runs.(worker) <- worker_runs.(worker) + 1;
    worker_vtime.(worker) <- worker_vtime.(worker) +. makespan;
    bounded := !bounded + bounded_delta;
    record_findings errors ~run_index:index ~schedule;
    new_completed := key :: !new_completed;
    incr completed_since;
    if
      List.exists
        (function Report.Deadlock _ | Report.Crash _ -> true | _ -> false)
        errors
    then begin
      if not (Atomic.get error_found) then
        Atomic.set cancel_at (Unix.gettimeofday ());
      Atomic.set error_found true
    end;
    (match rb.interrupt_after with
    | Some limit when !runs >= limit -> Atomic.set interrupt_requested true
    | _ -> ());
    maybe_progress ();
    Mutex.unlock m
  in
  (* Serialize the current cut. [m] stays held through the file write: the
     counters, completed set, and frontier must come from one consistent
     instant (the backend snapshot is itself atomic, and the pool publishes
     a replay's children and count moves under [m] too), and checkpoint
     writes are rare enough that stalling workers briefly is cheaper than a
     torn cut. *)
  (* Injected-ENOSPC stream for persistence writes, from the chaos spec.
     A degraded write must never abort the exploration: the failure is
     classified, counted, and logged loudly, and the run continues on the
     previous intact checkpoint. *)
  let fs_fault =
    match rb.net_fault with
    | Some ns when ns.Mpi.Fault.Net.write_fail > 0.0 ->
        Some (Mpi.Fault.Net.fs_fault ns ~salt:1)
    | _ -> None
  in
  let ck_write_failures =
    Obs.Metrics.counter aux_shard "checkpoint.write_failures"
  in
  let degraded_write what path = function
    | Checkpoint.Written -> ()
    | Checkpoint.Degraded msg ->
        Obs.Metrics.incr ck_write_failures;
        Log.warn (fun m ->
            m
              "%s write to %s failed (%s) — continuing without this cut; \
               the previous on-disk snapshot, if any, is intact"
              what path msg)
  in
  let write_checkpoint () =
    match rb.checkpoint with
    | None -> ()
    | Some c ->
        Mutex.lock m;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock m)
          (fun () ->
            let frontier =
              match !exec_ref with
              | Some e -> e.Executor.snapshot ()
              | None -> !frontier_fallback
            in
            (match !exec_ref with
            | Some e -> epoch_hi := max !epoch_hi (e.Executor.fence_epoch ())
            | None -> ());
            let completed =
              Hashtbl.fold (fun k () acc -> k :: acc) resume_completed []
              @ !new_completed
            in
            degraded_write "checkpoint" c.path
              (Checkpoint.save ?fault:fs_fault
                 {
                   Checkpoint.label = c.label;
                   np;
                   complete =
                     frontier = [] && not (Atomic.get interrupt_requested);
                   runs = !runs;
                   runs_cancelled = !runs_cancelled;
                   runs_timed_out = !runs_timed_out;
                   runs_retried = !runs_retried;
                   runs_crashed = !runs_crashed;
                   monitor_alerts = !monitor_alerts;
                   bounded_epochs = !bounded;
                   pruned = !runs_pruned;
                   wildcards_analyzed = !wildcards_analyzed;
                   first_run_makespan = !first_makespan;
                   total_virtual_time = !total_vtime;
                   findings = sorted_findings ();
                   completed;
                   frontier;
                   epoch = !epoch_hi;
                 }
                 c.path);
            match cache with
            | Some pc ->
                degraded_write "prefix-cache sidecar" (c.path ^ ".cache")
                  (Prefix_cache.save ?fault:fs_fault pc (c.path ^ ".cache"))
            | None -> ())
  in
  let maybe_periodic_checkpoint () =
    match rb.checkpoint with
    | Some c when c.every > 0 ->
        let due =
          Mutex.lock m;
          let d = !completed_since >= c.every in
          if d then completed_since := 0;
          Mutex.unlock m;
          d
        in
        if due then write_checkpoint ()
    | _ -> ()
  in
  (* One guided replay on this process, with watchdog and retries (the
     shared {!Executor.run_attempts} loop). [count] is false for
     expand-only re-runs during a resume: the replay executes (to
     regenerate its children deterministically) but contributes nothing to
     counters or findings — its contribution is already in the
     checkpoint. *)
  let run_one plan ~fork_index ~schedule ~worker ~name ~count =
    let key = Checkpoint.schedule_key schedule in
    (* Span args carry only run-set-determined values (fork, depth), never
       wall times, so jobs=1 span trees reproduce exactly. *)
    let wrap ~attempt f =
      let sp =
        Option.map
          (fun tr ->
            Obs.Trace.begin_span (Obs.Trace.sink tr worker) ~parent:root_id
              ~args:
                [
                  ("fork", Obs.Trace.Int fork_index);
                  ("depth", Obs.Trace.Int (List.length schedule));
                  ("attempt", Obs.Trace.Int attempt);
                ]
              name)
          tracer
      in
      let record = f () in
      (match (tracer, sp) with
      | Some tr, Some sp -> Obs.Trace.end_span (Obs.Trace.sink tr worker) sp
      | _ -> ());
      record
    in
    let on_event = function
      | Executor.Attempt_wall wall ->
          (* Per-worker shard: this domain is the only writer. *)
          Obs.Metrics.observe wall_h.(worker) wall;
          Mutex.lock m;
          worker_wall.(worker) <- worker_wall.(worker) +. wall;
          Mutex.unlock m
      | Executor.Timed_out ->
          Mutex.lock m;
          incr runs_timed_out;
          Mutex.unlock m;
          Obs.Metrics.incr timeouts_c.(worker)
      | Executor.Retried ->
          Mutex.lock m;
          incr runs_retried;
          Mutex.unlock m;
          Obs.Metrics.incr retries_c.(worker)
      | Executor.Transient_fault ->
          Mutex.lock m;
          incr runs_crashed;
          Mutex.unlock m;
          Obs.Metrics.incr faults_c.(worker)
      | Executor.Cancelled ->
          Mutex.lock m;
          incr runs_cancelled;
          Mutex.unlock m;
          Obs.Metrics.observe cancel_h.(worker)
            (Float.max 0.0 (Unix.gettimeofday () -. Atomic.get cancel_at))
    in
    (* Replay determinism makes the memoized artifact of a schedule as
       good as re-executing it: a cache hit skips the replay outright (the
       expand-only re-runs of a warm resume become pure lookups) and still
       feeds the counting path, so the canonical report cannot tell. *)
    let cached =
      match cache with Some pc -> Prefix_cache.find pc schedule | None -> None
    in
    match cached with
    | Some entry ->
        if count then
          count_completed ~worker ~key ~schedule
            ~makespan:entry.Prefix_cache.vtime
            ~bounded_delta:(Prefix_cache.bounded entry)
            ~errors:entry.Prefix_cache.errors;
        Counted entry
    | None -> (
        match
          Executor.run_attempts ~rb ~runner ~worker
            ~metrics:(Some (worker_shard worker)) ~need_poison
            ~external_poison:(fun () ->
              Atomic.get interrupt_requested
              || (config.stop_on_first_error && Atomic.get error_found))
            ~abort_retries:(fun () -> Atomic.get interrupt_requested)
            ~wrap ~on_event ~key plan ~fork_index
        with
        | Executor.Gave_up -> Gave_up
        | Executor.Poisoned ->
            if Atomic.get interrupt_requested then Interrupted else Stopped
        | Executor.Completed record ->
            Obs.Metrics.incr replays_c.(worker);
            Obs.Metrics.observe vtime_h.(worker) record.Report.makespan;
            let entry = Prefix_cache.entry_of_record record in
            (match cache with
            | Some pc -> Prefix_cache.add pc schedule entry
            | None -> ());
            if count then
              count_completed ~worker ~key ~schedule
                ~makespan:record.Report.makespan
                ~bounded_delta:
                  (List.length
                     (List.filter
                        (fun (e : Epoch.t) -> not e.Epoch.expandable)
                        record.Report.new_epochs))
                ~errors:record.Report.run_errors;
            Counted entry)
  in
  (* Expand one counted run into its child frontier, applying the item's
     sleep set when pruning is on. Counted either way so the report and
     checkpoint carry how much of the tree was cut. *)
  let expand_children ~worker ~(sleep : Epoch.summary list) ~plan_decisions
      (entry : Prefix_cache.entry) =
    let exp =
      Prune.expand ~prune:config.prune ~sleep ~plan_decisions
        entry.Prefix_cache.epochs
    in
    if exp.Prune.suppressed > 0 then begin
      Obs.Metrics.add pruned_c.(worker) exp.Prune.suppressed;
      Mutex.lock m;
      runs_pruned := !runs_pruned + exp.Prune.suppressed;
      Mutex.unlock m
    end;
    exp.Prune.items
  in
  (* ---- the in-process backend: per-worker stealing deques ---- *)
  let pool_backend initial_items ~budget =
    let sched =
      Scheduler.create ~order:Scheduler.Lifo ~jobs ~budget ~admit
        ~metrics:(Obs.Metrics.shard registry jobs)
        ~profile:config.profile ()
    in
    Scheduler.push_batch sched initial_items;
    let drive () =
      Scheduler.run sched (fun ~worker it ->
          (* A raising replay is a harness failure, not a pool teardown:
             record it (with the backtrace from the catch site) and keep the
             sibling workers draining. *)
          match
            let decisions = it.prefix @ [ it.choice ] in
            let plan = Decisions.of_decisions ~np decisions in
            let count =
              not
                (Hashtbl.mem resume_completed
                   (Checkpoint.schedule_key decisions))
            in
            run_one plan
              ~fork_index:(List.length decisions - 1)
              ~schedule:decisions ~worker ~name:"replay" ~count
          with
          | Counted entry ->
              maybe_periodic_checkpoint ();
              let children =
                expand_children ~worker ~sleep:it.sleep
                  ~plan_decisions:(it.prefix @ [ it.choice ])
                  entry
              in
              if
                Atomic.get interrupt_requested
                || (config.stop_on_first_error && Atomic.get error_found)
              then
                (* Stop claiming, but still publish the children: a
                   checkpoint taken after the drain must see the completed
                   replay's subtree. *)
                Scheduler.cancel sched;
              children
          | Stopped ->
              Scheduler.cancel sched;
              []
          | Interrupted ->
              (* The replay was poisoned before completing: put the item
                 back so the checkpointed frontier still covers it — and
                 un-remember it first, or the dedup filter would reject its
                 own requeue. *)
              Prune.Seen.forget seen it;
              Scheduler.cancel sched;
              [ it ]
          | Gave_up ->
              maybe_periodic_checkpoint ();
              []
          | exception exn ->
              let bt = Printexc.get_raw_backtrace () in
              Mutex.lock m;
              harness_failures :=
                {
                  Report.hf_worker = worker;
                  hf_message = Printexc.to_string exn;
                  hf_backtrace = Printexc.raw_backtrace_to_string bt;
                }
                :: !harness_failures;
              Mutex.unlock m;
              []);
      Executor.Drained
    in
    let stats () =
      let sched_stats = Scheduler.stats sched in
      List.init jobs (fun i ->
          let queue_waits =
            match
              List.find_opt
                (fun (ws : Scheduler.worker_stats) ->
                  ws.Scheduler.worker_id = i)
                sched_stats
            with
            | Some ws -> ws.Scheduler.queue_waits
            | None -> 0
          in
          {
            Report.worker_id = i;
            runs_executed = worker_runs.(i);
            queue_waits;
            wall_seconds = worker_wall.(i);
            virtual_seconds = worker_vtime.(i);
          })
    in
    {
      Executor.label = "pool";
      drive;
      snapshot = (fun () -> Scheduler.snapshot sched);
      stats;
      fence_epoch = (fun () -> 0);
    }
  in
  (* ---- the distributed backend: coordinator + remote workers ---- *)
  let coordinator_backend initial_items ~budget setup =
    let co =
      Coordinator.create
        ~metrics:(Obs.Metrics.shard registry jobs)
        ~profile:config.profile ~first_epoch:(!epoch_hi + 1) ~admit
        ~progress:(fun () ->
          Mutex.lock m;
          let kvs = run_kvs (Unix.gettimeofday ()) in
          Mutex.unlock m;
          kvs)
        ~budget setup
    in
    Coordinator.push co initial_items;
    let on_run ~(item : Checkpoint.item) (r : Wire.run_result) =
      (* Children were already folded into the coordinator's frontier; this
         ingests the delta into the canonical totals. The worker's attempt
         counters fold in even for expand-only re-runs (they are host-side
         events, like the pool's). *)
      Mutex.lock m;
      runs_timed_out := !runs_timed_out + r.Wire.timeouts;
      runs_retried := !runs_retried + r.Wire.retries;
      runs_crashed := !runs_crashed + r.Wire.transients;
      Mutex.unlock m;
      for _ = 1 to r.Wire.timeouts do Obs.Metrics.incr timeouts_c.(0) done;
      for _ = 1 to r.Wire.retries do Obs.Metrics.incr retries_c.(0) done;
      for _ = 1 to r.Wire.transients do Obs.Metrics.incr faults_c.(0) done;
      (* No checkpoint write from here: this runs mid-frame, after the
         lease was settled but before the frame's later items are counted
         and their children pushed — a cut taken now would lose them.
         [tick] below fires between event-loop iterations, where every
         ingested frame is whole. *)
      match r.Wire.payload with
      | None -> ()
      | Some p ->
          Obs.Metrics.incr replays_c.(0);
          Obs.Metrics.observe vtime_h.(0) p.Wire.vtime;
          if not (Hashtbl.mem resume_completed r.Wire.key) then begin
            (* The worker already applied the item's sleep set at
               expansion; its delta reports how many children it cut. An
               expand-only re-run's suppressions were counted before the
               cut (the checkpoint's [pruned]), so they fold in only for
               fresh runs — same rule as every other counter here. *)
            if p.Wire.pruned > 0 then begin
              Obs.Metrics.add pruned_c.(0) p.Wire.pruned;
              Mutex.lock m;
              runs_pruned := !runs_pruned + p.Wire.pruned;
              Mutex.unlock m
            end;
            count_completed ~worker:0 ~key:r.Wire.key
              ~schedule:(item.prefix @ [ item.choice ])
              ~makespan:p.Wire.vtime ~bounded_delta:p.Wire.bounded
              ~errors:p.Wire.errors
          end
    in
    (* Crash tolerance hinges on the coordinator's cut reaching disk while
       it is healthy: besides the every-N-replays policy, force a write
       about once per second of ticking so a SIGKILLed coordinator loses at
       most that much progress. *)
    let last_forced = ref (Unix.gettimeofday ()) in
    let tick () =
      (* A stalled distributed run (all leases out, nothing completing)
         should still tick the local --progress line. *)
      Mutex.lock m;
      maybe_progress ();
      Mutex.unlock m;
      maybe_periodic_checkpoint ();
      match rb.checkpoint with
      | Some c when c.every > 0 ->
          let now = Unix.gettimeofday () in
          if now -. !last_forced > 1.0 then begin
            last_forced := now;
            write_checkpoint ()
          end
      | _ -> ()
    in
    let drive () =
      let outcome =
        Coordinator.drive co ~on_run
          ~should_stop:(fun () -> Atomic.get interrupt_requested)
          ~tick
      in
      remote_telemetry := Coordinator.telemetry co;
      match outcome with
      | Ok () -> Executor.Drained
      | Error msg ->
          (* The frontier still holds the unfinished work; hand it to the
             caller, who either drains it in-process (--fallback-local) or
             flags the run interrupted so it exits through the checkpoint
             path and can be resumed. *)
          Executor.Lost { reason = msg; leftover = Coordinator.snapshot co }
    in
    let stats () =
      List.init jobs (fun i ->
          {
            Report.worker_id = i;
            runs_executed = worker_runs.(i);
            queue_waits = 0;
            wall_seconds = worker_wall.(i);
            virtual_seconds = worker_vtime.(i);
          })
    in
    {
      Executor.label = "coordinator";
      drive;
      snapshot = (fun () -> Coordinator.snapshot co);
      stats;
      fence_epoch = (fun () -> Coordinator.current_epoch co);
    }
  in
  (* SIGINT/SIGTERM flip the interrupt flag; the poison path then drains the
     pool cooperatively and the frontier is checkpointed. Installed only
     when checkpointing was requested, and restored on the way out. *)
  let old_signals =
    match rb.checkpoint with
    | None -> []
    | Some _ ->
        List.filter_map
          (fun signal ->
            match
              Sys.signal signal
                (Sys.Signal_handle
                   (fun _ -> Atomic.set interrupt_requested true))
            with
            | old -> Some (signal, old)
            | exception (Invalid_argument _ | Sys_error _) -> None)
          [ Sys.sigint; Sys.sigterm ]
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (signal, old) ->
          try Sys.set_signal signal old with Invalid_argument _ | Sys_error _ -> ())
        old_signals)
  @@ fun () ->
  (* Initial self run, on the calling domain — unless resuming, in which
     case the checkpoint already carries its contribution and frontier. *)
  let initial_items =
    match resume with
    | Some c -> c.Checkpoint.frontier
    | None -> (
        match
          run_one (Decisions.empty ~np) ~fork_index:(-1) ~schedule:[]
            ~worker:0 ~name:"self-run" ~count:true
        with
        | Counted entry ->
            wildcards_analyzed := entry.Prefix_cache.wildcards;
            first_makespan := entry.Prefix_cache.vtime;
            (* The root carries an empty sleep set; pruning begins with the
               sibling sets its children inherit. *)
            expand_children ~worker:0 ~sleep:[] ~plan_decisions:[] entry
        | Stopped | Interrupted | Gave_up -> [])
  in
  frontier_fallback := initial_items;
  let skip =
    initial_items = []
    || !runs >= config.max_runs
    || (config.stop_on_first_error && Atomic.get error_found)
    || Atomic.get interrupt_requested
  in
  (* Even with nothing to distribute, attached workers are owed the
     job/shutdown handshake — a skipped run must not leave them blocked on
     their sockets — so the coordinator backend always drives (with a zero
     claim budget when skipping, which shuts workers down immediately). *)
  if (not skip) || distribute <> None then begin
    (* Expand-only items don't count against [max_runs] (their runs were
       already counted before the cut), but they do consume execution
       claims; widen the claim budget accordingly. *)
    let expand_only =
      List.length
        (List.filter
           (fun it -> Hashtbl.mem resume_completed (Checkpoint.item_key it))
           initial_items)
    in
    let budget =
      if skip then 0
      else if config.max_runs = max_int then max_int
      else config.max_runs - !runs + expand_only
    in
    let exec =
      match distribute with
      | None -> pool_backend initial_items ~budget
      | Some setup -> coordinator_backend initial_items ~budget setup
    in
    exec_ref := Some exec;
    match exec.Executor.drive () with
    | Executor.Drained -> ()
    | Executor.Lost { reason; leftover } ->
        epoch_hi := max !epoch_hi (exec.Executor.fence_epoch ());
        if
          fallback_local && leftover <> []
          && not (Atomic.get interrupt_requested)
        then begin
          (* Graceful degradation: every worker is gone but this process
             can still replay. Drain the leftover cut on the in-process
             pool — the canonical report comes out identical, just
             slower. *)
          Log.warn (fun m ->
              m "%s — falling back to in-process execution of %d frontier item(s)"
                reason (List.length leftover));
          Obs.Metrics.incr
            (Obs.Metrics.counter
               (Obs.Metrics.shard registry jobs)
               "coordinator.fallbacks");
          let expand_only =
            List.length
              (List.filter
                 (fun it ->
                   Hashtbl.mem resume_completed (Checkpoint.item_key it))
                 leftover)
          in
          let budget =
            if config.max_runs = max_int then max_int
            else config.max_runs - !runs + expand_only
          in
          (* The leftover items were admitted when first pushed to the
             coordinator but never ran; forget them so the pool's own
             enqueue filter re-admits instead of dropping them as
             duplicates. *)
          List.iter (fun it -> Prune.Seen.forget seen it) leftover;
          let pool = pool_backend leftover ~budget in
          exec_ref := Some pool;
          ignore (pool.Executor.drive ())
        end
        else begin
          (* The frontier still holds the unfinished work; flag the run
             interrupted so it exits through the checkpoint path and can
             be resumed. *)
          Mutex.lock m;
          harness_failures :=
            { Report.hf_worker = -1; hf_message = reason; hf_backtrace = "" }
            :: !harness_failures;
          Mutex.unlock m;
          Atomic.set interrupt_requested true
        end
  end;
  let interrupted = Atomic.get interrupt_requested in
  (* Always leave a final checkpoint behind when one was requested: either
     the interrupt cut (resumable) or the completed exploration (resuming
     it is a no-op that just re-reports). *)
  write_checkpoint ();
  let workers =
    match !exec_ref with
    | Some e -> e.Executor.stats ()
    | None ->
        List.init jobs (fun i ->
            {
              Report.worker_id = i;
              runs_executed = worker_runs.(i);
              queue_waits = 0;
              wall_seconds = worker_wall.(i);
              virtual_seconds = worker_vtime.(i);
            })
  in
  (match (tracer, root_span) with
  | Some tr, Some sp -> Obs.Trace.end_span (Obs.Trace.sink tr 0) sp
  | _ -> ());
  (* Exploration is over: the aux shard has no concurrent writer left, so
     the duplicate tally can be published in one store. *)
  Obs.Metrics.add
    (Obs.Metrics.counter aux_shard "prune.duplicates")
    (Atomic.get duplicates);
  {
    Report.np;
    interleavings = !runs;
    findings = sorted_findings ();
    wildcards_analyzed = !wildcards_analyzed;
    first_run_makespan = !first_makespan;
    total_virtual_time = !total_vtime;
    monitor_alerts = !monitor_alerts;
    bounded_epochs = !bounded;
    runs_pruned = !runs_pruned;
    host_seconds = Unix.gettimeofday () -. started;
    jobs;
    workers;
    runs_cancelled = !runs_cancelled;
    runs_timed_out = !runs_timed_out;
    runs_retried = !runs_retried;
    runs_crashed = !runs_crashed;
    harness_failures = List.rev !harness_failures;
    interrupted;
    metrics =
      (* Remote workers ship their registries as telemetry deltas; folding
         the accumulated per-session snapshots into the local merge is what
         makes a clean [--distribute N] run's totals equal a [jobs = 1]
         run's (no name overlap: remote registries carry the replay-side
         [mpi.*]/[dampi.*] series, the local shards the explorer-side
         ones). *)
      List.fold_left
        (fun acc (_, s) -> Obs.Metrics.merge_delta acc s)
        (Obs.Metrics.snapshot registry)
        !remote_telemetry;
    worker_metrics =
      (List.init (jobs + 2) (fun i ->
           let label =
             if i < jobs then Printf.sprintf "w%d" i
             else if i = jobs then "sched"
             else "aux"
           in
           (label, Obs.Metrics.shard_snapshot registry i))
      |> List.filter (fun (_, s) -> s <> []))
      @ !remote_telemetry;
    events = (match tracer with Some tr -> Obs.Trace.events tr | None -> []);
  }

(** Verify [program] on [np] simulated ranks under DAMPI. *)
let verify ?(config = default_config) ?resume ?distribute ?fallback_local ~np
    program =
  explore ~config ?resume ?distribute ?fallback_local ~np
    (dampi_runner config ~np program)

(** Execute exactly one guided run under [plan] (e.g. a schedule loaded from
    an Epoch-Decisions file) and report what it produced. *)
let replay ?(config = default_config) ?metrics ~np program plan =
  dampi_runner config ~np program
    ~ctx:{ null_ctx with metrics }
    plan
    ~fork_index:(Decisions.length plan - 1)
