(** The schedule generator and replay driver (Fig. 1, §II-B).

    After the initial self run, DAMPI walks the space of match decisions
    depth-first: it forces the alternate matches of the {e last} epoch
    first, then the penultimate, and so on, re-executing the target program
    under each Epoch-Decisions plan. The walk is stateless — every
    interleaving is a full re-execution from [MPI_Init] — so it relies on
    the runtime's determinism for sound replay.

    The explorer is parametric in the [runner] that executes one
    interleaving; the ISP baseline reuses the same walk with its own
    centralized-cost runner, which is exactly the comparison of Figs. 5/6
    (same coverage, different per-run cost). *)

module Runtime = Mpi.Runtime
module Coroutine = Sim.Coroutine

type checkpoint_cfg = {
  path : string;
  every : int;  (** completed replays between periodic writes; 0 = only on interrupt/finish *)
  label : string;  (** workload identity stored in (and validated against) the file *)
}

type robustness = {
  replay_timeout : float option;
  max_replay_steps : int option;
  max_retries : int;
  retry_backoff : float;
  fault : Mpi.Fault.spec option;
  checkpoint : checkpoint_cfg option;
  interrupt_after : int option;
}

let default_robustness =
  {
    replay_timeout = None;
    max_replay_steps = None;
    max_retries = 0;
    retry_backoff = 0.0;
    fault = None;
    checkpoint = None;
    interrupt_after = None;
  }

type config = {
  state_config : State.config;
  cost : Runtime.cost_model;
  max_runs : int;  (** interleaving budget; [max_int] = exhaustive *)
  check_leaks : bool;
  stop_on_first_error : bool;
  jobs : int;  (** worker domains; 1 = sequential depth-first walk *)
  trace : bool;  (** collect a span timeline of the exploration *)
  robustness : robustness;
}

let default_config =
  {
    state_config = State.default_config;
    cost = Runtime.default_cost;
    max_runs = max_int;
    check_leaks = true;
    stop_on_first_error = false;
    jobs = 1;
    trace = false;
    robustness = default_robustness;
  }

(* Per-run observability context threaded into the runner: which worker is
   executing, the metric shard that worker owns, the poison closure the
   interposition layer polls for in-replay cancellation, and the fault salt
   identifying this (replay, attempt) for deterministic injection. *)
type run_ctx = {
  worker : int;
  metrics : Obs.Metrics.shard option;
  poison : (unit -> bool) option;
  salt : int;
}

let null_ctx = { worker = 0; metrics = None; poison = None; salt = 0 }

type runner = ctx:run_ctx -> Decisions.plan -> fork_index:int -> Report.run_record

(* ---- The DAMPI runner: one interposed execution ---- *)

let errors_of_run ~check_leaks ~(outcome : Coroutine.outcome) ~leaks
    ~shadow_ctxs ~(st : State.t) =
  let errors = ref [] in
  (match outcome with
  | Coroutine.All_finished -> ()
  | Coroutine.Deadlock blocked ->
      (* Ranks parked in the tool's finalize barrier completed their user
         code; naming that keeps the report pointing at the real culprits. *)
      let describe (b : Coroutine.blocked_info) =
        let reason =
          if
            b.reason = "collective barrier on dup(world)"
            || b.reason = "collective comm_dup on world"
          then "finished its program (parked in tool finalize)"
          else b.reason
        in
        (b.pid, reason)
      in
      errors :=
        Report.Deadlock { blocked = List.map describe blocked } :: !errors
  | Coroutine.Crashed (pid, exn, _) ->
      errors :=
        Report.Crash { pid; message = Printexc.to_string exn } :: !errors);
  if check_leaks then begin
    (* Leaks are only meaningful for runs that completed finalize. *)
    (match outcome with
    | Coroutine.All_finished ->
        let { Runtime.comm_leaks; req_leaks; _ } = leaks in
        List.iter
          (fun (pid, leaked) ->
            let user_leaked =
              List.filter
                (fun (l : Runtime.leaked_comm) ->
                  not (List.mem l.Runtime.leaked_ctx shadow_ctxs))
                leaked
            in
            if user_leaked <> [] then
              errors :=
                Report.Comm_leak
                  {
                    pid;
                    labels =
                      List.map
                        (fun (l : Runtime.leaked_comm) ->
                          Printf.sprintf "%s(ctx=%d)" l.Runtime.leaked_label
                            l.Runtime.leaked_ctx)
                        user_leaked;
                  }
                :: !errors)
          comm_leaks;
        Array.iteri
          (fun pid count ->
            if count > 0 then
              errors := Report.Request_leak { pid; count } :: !errors)
          req_leaks
    | Coroutine.Deadlock _ | Coroutine.Crashed _ -> ())
  end;
  List.iter
    (fun (w : State.monitor_warning) ->
      errors :=
        Report.Monitor_alert
          { pid = w.State.warn_pid; epoch_id = w.State.warn_epoch_id; op = w.State.warn_op }
        :: !errors)
    (State.warnings st);
  if st.State.divergences > 0 then
    errors := Report.Replay_divergence { count = st.State.divergences } :: !errors;
  List.rev !errors

(* The fault instance for one (replay, attempt), derived from the configured
   spec and the context's salt — shared with the ISP runner. *)
let fault_of_ctx ctx = function
  | None -> Mpi.Fault.none
  | Some spec -> Mpi.Fault.make spec ~salt:ctx.salt

let dampi_runner config ~np (program : Mpi.Mpi_intf.program) : runner =
 fun ~ctx plan ~fork_index ->
  let fault = fault_of_ctx ctx config.robustness.fault in
  let rt = Runtime.create ~cost:config.cost ?metrics:ctx.metrics ~fault ~np () in
  let st =
    State.create ~config:config.state_config ?metrics:ctx.metrics
      ?poison:ctx.poison ~np ~plan ~fork_index ()
  in
  (* An injected wedge spins on this hook; the watchdog's poison breaks the
     spin through the same [State.check_poison] path as [--stop-first]. *)
  Runtime.set_interrupt_hook rt (fun () -> State.check_poison st);
  let module B = Mpi.Bind.Make (struct
    let rt = rt
  end) in
  let module W = Interpose.Wrap (B) (struct
    let st = st
  end) in
  let module P = (val program) in
  let module Prog = P (W) in
  Runtime.spawn_ranks rt (fun _rank ->
      W.init_tool ();
      Prog.main ();
      W.finalize_tool ());
  let outcome = Runtime.run rt in
  (* A poisoned rank surfaces as a crash on [Replay_cancelled]; the run is
     then a cancelled replay, not a finding. *)
  let cancelled =
    match outcome with
    | Coroutine.Crashed (_, State.Replay_cancelled, _) -> true
    | _ -> false
  in
  let leaks = Runtime.leak_report rt in
  {
    Report.run_plan = plan;
    outcome;
    makespan = Runtime.makespan rt;
    new_epochs = (if cancelled then [] else State.completed_epochs st);
    run_errors =
      (if cancelled then []
       else
         errors_of_run ~check_leaks:config.check_leaks ~outcome ~leaks
           ~shadow_ctxs:(W.shadow_ctxs ()) ~st);
    wildcards = State.wildcard_events st;
    cancelled;
  }

(* A run with no tool attached, for overhead baselines (Table II). *)
let native_makespan ?(cost = Runtime.default_cost) ~np program =
  let rt, _outcome = Mpi.Bind.exec ~cost ~np program in
  Runtime.makespan rt

(* ---- The walk over epoch decisions ---- *)

(* One pending guided run: the observed prefix up to a fork, plus the single
   alternate match to force there ({!Checkpoint.item}, so the frontier
   serializes as-is). Expanding a frontier into one item per alternative
   (rather than one frame per epoch with an [untried] list) keeps the
   work-queue items immutable, which is what lets a pool of domains consume
   them without sharing any per-frame mutable state. *)
type item = Checkpoint.item = {
  prefix : Decisions.decision list;  (* observed matches before the fork *)
  choice : Decisions.decision;  (* the alternate match this run forces *)
}

let rec take n = function
  | [] -> []
  | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

(* The child frontier of [record]: one item per unexplored alternative of
   each expandable epoch, deepest epoch first and alternatives in ascending
   order. Under a LIFO queue with one worker this visits exactly the same
   depth-first order as the original recursive walk: the deepest fork's
   first alternative runs next, and its whole subtree is exhausted before
   the second alternative starts. *)
let items_of_record (record : Report.run_record) ~plan_decisions =
  let observed =
    List.map
      (fun (e : Epoch.t) ->
        Decisions.decision_of_epoch e ~src:e.Epoch.matched_src)
      record.Report.new_epochs
  in
  let batches =
    List.mapi
      (fun i (e : Epoch.t) ->
        if not e.Epoch.expandable then []
        else
          List.map
            (fun alt ->
              {
                prefix = plan_decisions @ take i observed;
                choice =
                  {
                    Decisions.owner = e.Epoch.owner;
                    epoch_id = e.Epoch.id;
                    src = alt;
                    kind = e.Epoch.kind;
                  };
              })
            (Epoch.alternatives e))
      record.Report.new_epochs
  in
  List.concat (List.rev batches)

(* How one replay (possibly after retries) resolved, as seen by the walk. *)
type run_status =
  | Counted of Report.run_record
      (* completed (or expand-only re-ran): expand its child frontier *)
  | Stopped  (* poisoned by stop-first cancellation: drop *)
  | Interrupted  (* poisoned by SIGINT/SIGTERM: requeue for the checkpoint *)
  | Gave_up  (* every attempt hit the watchdog: record, no frontier *)

(* Sequential and parallel exploration share this one loop: the frontier
   lives in a Scheduler work queue, and each executed item is a complete
   guided replay (fresh Runtime + State inside [runner], so workers share
   no mutable state beyond the queue and the findings table). Findings
   merge under [m] keyed by error signature, keeping the canonically
   smallest reproduction schedule, and the report sorts findings by
   schedule — so the finding set, interleaving count, and bounded-epoch
   count are identical at any worker count (on an exhaustive exploration;
   a binding [max_runs] budget selects a worker-order-dependent subset of
   runs by nature). *)
let explore ?(config = default_config) ?resume ~np (runner : runner) :
    Report.t =
  let started = Unix.gettimeofday () in
  let jobs = max 1 config.jobs in
  let rb = config.robustness in
  (* A checkpoint recording nothing is indistinguishable from a fresh start;
     treat it as one so an interrupt during the self run stays resumable. *)
  let resume =
    match resume with
    | Some (c : Checkpoint.t) when c.Checkpoint.runs > 0 || c.Checkpoint.complete
      ->
        Some c
    | _ -> None
  in
  (* Shard layout: one per worker domain, plus a final shard for the
     scheduler (whose writes happen under its own lock). The merged snapshot
     of a jobs=N exploration equals the jobs=1 one for every series that is
     a property of the run set. *)
  let registry = Obs.Metrics.create ~shards:(jobs + 1) () in
  let worker_shard w = Obs.Metrics.shard registry w in
  let replays_c =
    Array.init jobs (fun w ->
        Obs.Metrics.counter (worker_shard w) "explorer.replays")
  in
  let retries_c =
    Array.init jobs (fun w ->
        Obs.Metrics.counter (worker_shard w) "explorer.retries")
  in
  let timeouts_c =
    Array.init jobs (fun w ->
        Obs.Metrics.counter (worker_shard w) "explorer.timeouts")
  in
  let faults_c =
    Array.init jobs (fun w ->
        Obs.Metrics.counter (worker_shard w) "explorer.fault_aborts")
  in
  let wall_h =
    Array.init jobs (fun w ->
        Obs.Metrics.histogram (worker_shard w) "explorer.replay_wall_s")
  in
  let vtime_h =
    Array.init jobs (fun w ->
        Obs.Metrics.histogram (worker_shard w) "explorer.replay_vtime_s")
  in
  let cancel_h =
    Array.init jobs (fun w ->
        Obs.Metrics.histogram (worker_shard w) "explorer.cancel_latency_s")
  in
  let tracer =
    if config.trace then Some (Obs.Trace.create ~shards:jobs ()) else None
  in
  let m = Mutex.create () in
  let findings : (string, Report.finding) Hashtbl.t = Hashtbl.create 16 in
  let runs = ref 0 in
  let runs_cancelled = ref 0 in
  let runs_timed_out = ref 0 in
  let runs_retried = ref 0 in
  let runs_crashed = ref 0 in
  let harness_failures : Report.harness_failure list ref = ref [] in
  let total_vtime = ref 0.0 in
  let monitor_alerts = ref 0 in
  let bounded = ref 0 in
  let wildcards_analyzed = ref 0 in
  let first_makespan = ref 0.0 in
  let error_found = Atomic.make false in
  let cancel_at = Atomic.make 0.0 in
  let interrupt_requested = Atomic.make false in
  (* Keys of replays already counted. [resume_completed] is immutable during
     the run (safe to read from any worker without the lock); newly counted
     keys accumulate separately under [m] for the next checkpoint write. *)
  let resume_completed : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let new_completed : string list ref = ref [] in
  let completed_since = ref 0 in
  let sched_ref : item Scheduler.t option ref = ref None in
  (* The frontier before any scheduler exists (the self run's children, or
     a resumed checkpoint's items): if the exploration is cut before the
     pool starts, this is what the checkpoint must carry. *)
  let frontier_fallback : item list ref = ref [] in
  (match resume with
  | None -> ()
  | Some c ->
      runs := c.Checkpoint.runs;
      runs_cancelled := c.Checkpoint.runs_cancelled;
      runs_timed_out := c.Checkpoint.runs_timed_out;
      runs_retried := c.Checkpoint.runs_retried;
      runs_crashed := c.Checkpoint.runs_crashed;
      monitor_alerts := c.Checkpoint.monitor_alerts;
      bounded := c.Checkpoint.bounded_epochs;
      wildcards_analyzed := c.Checkpoint.wildcards_analyzed;
      first_makespan := c.Checkpoint.first_run_makespan;
      total_vtime := c.Checkpoint.total_virtual_time;
      List.iter
        (fun (f : Report.finding) ->
          Hashtbl.replace findings (Report.error_signature f.Report.error) f;
          match f.Report.error with
          | Report.Deadlock _ | Report.Crash _ -> Atomic.set error_found true
          | _ -> ())
        c.Checkpoint.findings;
      List.iter
        (fun k -> Hashtbl.replace resume_completed k ())
        c.Checkpoint.completed);
  let need_poison =
    config.stop_on_first_error || rb.checkpoint <> None
    || rb.replay_timeout <> None || rb.max_replay_steps <> None
    || rb.fault <> None || rb.interrupt_after <> None
  in
  let root_span =
    Option.map
      (fun tr ->
        Obs.Trace.begin_span (Obs.Trace.sink tr 0)
          ~args:[ ("np", Obs.Trace.Int np); ("jobs", Obs.Trace.Int jobs) ]
          "explore")
      tracer
  in
  let root_id =
    match root_span with Some sp -> Obs.Trace.span_id sp | None -> -1
  in
  let worker_runs = Array.make jobs 0 in
  let worker_wall = Array.make jobs 0.0 in
  let worker_vtime = Array.make jobs 0.0 in
  (* Caller holds [m]. *)
  let record_findings (record : Report.run_record) ~run_index ~schedule =
    List.iter
      (fun error ->
        (match error with
        | Report.Monitor_alert _ -> incr monitor_alerts
        | _ -> ());
        let key = Report.error_signature error in
        let candidate = { Report.error; run_index; schedule } in
        match Hashtbl.find_opt findings key with
        | None -> Hashtbl.replace findings key candidate
        | Some kept ->
            if Report.compare_schedule schedule kept.Report.schedule < 0 then
              Hashtbl.replace findings key candidate)
      record.Report.run_errors
  in
  let sorted_findings () =
    Hashtbl.fold (fun _ f acc -> f :: acc) findings []
    |> List.sort Report.compare_finding
  in
  (* Serialize the current cut. [m] stays held through the file write: the
     counters, completed set, and frontier must come from one consistent
     instant (the scheduler snapshot is itself atomic, and [finish]
     publishes a replay's children and count moves under [m] too), and
     checkpoint writes are rare enough that stalling workers briefly is
     cheaper than a torn cut. *)
  let write_checkpoint () =
    match rb.checkpoint with
    | None -> ()
    | Some c ->
        Mutex.lock m;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock m)
          (fun () ->
            let frontier =
              match !sched_ref with
              | Some sched -> Scheduler.snapshot sched
              | None -> !frontier_fallback
            in
            let completed =
              Hashtbl.fold (fun k () acc -> k :: acc) resume_completed []
              @ !new_completed
            in
            Checkpoint.save
              {
                Checkpoint.label = c.label;
                np;
                complete =
                  frontier = [] && not (Atomic.get interrupt_requested);
                runs = !runs;
                runs_cancelled = !runs_cancelled;
                runs_timed_out = !runs_timed_out;
                runs_retried = !runs_retried;
                runs_crashed = !runs_crashed;
                monitor_alerts = !monitor_alerts;
                bounded_epochs = !bounded;
                wildcards_analyzed = !wildcards_analyzed;
                first_run_makespan = !first_makespan;
                total_virtual_time = !total_vtime;
                findings = sorted_findings ();
                completed;
                frontier;
              }
              c.path)
  in
  let maybe_periodic_checkpoint () =
    match rb.checkpoint with
    | Some c when c.every > 0 ->
        let due =
          Mutex.lock m;
          let d = !completed_since >= c.every in
          if d then completed_since := 0;
          Mutex.unlock m;
          d
        in
        if due then write_checkpoint ()
    | _ -> ()
  in
  (* One guided replay, with watchdog and retries. [count] is false for
     expand-only re-runs during a resume: the replay executes (to regenerate
     its children deterministically) but contributes nothing to counters or
     findings — its contribution is already in the checkpoint. *)
  let run_one plan ~fork_index ~schedule ~worker ~name ~count =
    let key = Checkpoint.schedule_key schedule in
    let rec attempt ~n =
      let timed_out = ref false in
      let steps = ref 0 in
      let deadline =
        Option.map (fun s -> Unix.gettimeofday () +. s) rb.replay_timeout
      in
      let poison =
        if not need_poison then None
        else
          Some
            (fun () ->
              if
                Atomic.get interrupt_requested
                || (config.stop_on_first_error && Atomic.get error_found)
              then true
              else begin
                incr steps;
                let hit =
                  (match rb.max_replay_steps with
                  | Some limit -> !steps > limit
                  | None -> false)
                  ||
                  (* The wall check costs a syscall; poll it every 64
                     steps. The step budget stays exact (deterministic). *)
                  match deadline with
                  | Some d -> !steps land 63 = 0 && Unix.gettimeofday () > d
                  | None -> false
                in
                if hit then timed_out := true;
                hit
              end)
      in
      let ctx =
        {
          worker;
          metrics = Some (worker_shard worker);
          poison;
          salt = Mpi.Fault.salt_of_schedule ~attempt:n key;
        }
      in
      (* Span args carry only run-set-determined values (fork, depth), never
         wall times, so jobs=1 span trees reproduce exactly. *)
      let sp =
        Option.map
          (fun tr ->
            Obs.Trace.begin_span (Obs.Trace.sink tr worker) ~parent:root_id
              ~args:
                [
                  ("fork", Obs.Trace.Int fork_index);
                  ("depth", Obs.Trace.Int (List.length schedule));
                  ("attempt", Obs.Trace.Int n);
                ]
              name)
          tracer
      in
      let t0 = Unix.gettimeofday () in
      let record = runner ~ctx plan ~fork_index in
      let wall = Unix.gettimeofday () -. t0 in
      (match (tracer, sp) with
      | Some tr, Some sp -> Obs.Trace.end_span (Obs.Trace.sink tr worker) sp
      | _ -> ());
      (* Per-worker shard: this domain is the only writer. *)
      Obs.Metrics.observe wall_h.(worker) wall;
      Mutex.lock m;
      worker_wall.(worker) <- worker_wall.(worker) +. wall;
      Mutex.unlock m;
      let retry () =
        Mutex.lock m;
        incr runs_retried;
        Mutex.unlock m;
        Obs.Metrics.incr retries_c.(worker);
        if rb.retry_backoff > 0.0 then
          (* Capped exponential backoff; pure wall-clock politeness, no
             effect on what the retry explores. *)
          Unix.sleepf
            (Float.min 1.0 (rb.retry_backoff *. Float.pow 2.0 (float_of_int n)));
        attempt ~n:(n + 1)
      in
      if record.Report.cancelled then begin
        if !timed_out then begin
          Mutex.lock m;
          incr runs_timed_out;
          Mutex.unlock m;
          Obs.Metrics.incr timeouts_c.(worker);
          if n < rb.max_retries && not (Atomic.get interrupt_requested) then
            retry ()
          else Gave_up
        end
        else begin
          Mutex.lock m;
          incr runs_cancelled;
          Mutex.unlock m;
          Obs.Metrics.observe cancel_h.(worker)
            (Float.max 0.0 (Unix.gettimeofday () -. Atomic.get cancel_at));
          if Atomic.get interrupt_requested then Interrupted else Stopped
        end
      end
      else begin
        match record.Report.outcome with
        | Coroutine.Crashed (_, exn, _)
          when Mpi.Fault.is_transient exn
               && n < rb.max_retries
               && not (Atomic.get interrupt_requested) ->
            (* An injected environment fault, not a program bug: retry under
               a fresh salt. Once retries are exhausted the crash is counted
               and recorded like any other (the message names the fault). *)
            Mutex.lock m;
            incr runs_crashed;
            Mutex.unlock m;
            Obs.Metrics.incr faults_c.(worker);
            retry ()
        | _ ->
            Obs.Metrics.incr replays_c.(worker);
            Obs.Metrics.observe vtime_h.(worker) record.Report.makespan;
            if count then begin
              Mutex.lock m;
              let index = !runs in
              incr runs;
              total_vtime := !total_vtime +. record.Report.makespan;
              worker_runs.(worker) <- worker_runs.(worker) + 1;
              worker_vtime.(worker) <-
                worker_vtime.(worker) +. record.Report.makespan;
              List.iter
                (fun (e : Epoch.t) ->
                  if not e.Epoch.expandable then incr bounded)
                record.Report.new_epochs;
              record_findings record ~run_index:index ~schedule;
              new_completed := key :: !new_completed;
              incr completed_since;
              if
                List.exists
                  (function
                    | Report.Deadlock _ | Report.Crash _ -> true | _ -> false)
                  record.Report.run_errors
              then begin
                if not (Atomic.get error_found) then
                  Atomic.set cancel_at (Unix.gettimeofday ());
                Atomic.set error_found true
              end;
              (match rb.interrupt_after with
              | Some limit when !runs >= limit ->
                  Atomic.set interrupt_requested true
              | _ -> ());
              Mutex.unlock m
            end;
            Counted record
      end
    in
    attempt ~n:0
  in
  (* SIGINT/SIGTERM flip the interrupt flag; the poison path then drains the
     pool cooperatively and the frontier is checkpointed. Installed only
     when checkpointing was requested, and restored on the way out. *)
  let old_signals =
    match rb.checkpoint with
    | None -> []
    | Some _ ->
        List.filter_map
          (fun signal ->
            match
              Sys.signal signal
                (Sys.Signal_handle
                   (fun _ -> Atomic.set interrupt_requested true))
            with
            | old -> Some (signal, old)
            | exception (Invalid_argument _ | Sys_error _) -> None)
          [ Sys.sigint; Sys.sigterm ]
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (signal, old) ->
          try Sys.set_signal signal old with Invalid_argument _ | Sys_error _ -> ())
        old_signals)
  @@ fun () ->
  (* Initial self run, on the calling domain — unless resuming, in which
     case the checkpoint already carries its contribution and frontier. *)
  let initial_items =
    match resume with
    | Some c -> c.Checkpoint.frontier
    | None -> (
        match
          run_one (Decisions.empty ~np) ~fork_index:(-1) ~schedule:[]
            ~worker:0 ~name:"self-run" ~count:true
        with
        | Counted record ->
            wildcards_analyzed := record.Report.wildcards;
            first_makespan := record.Report.makespan;
            items_of_record record ~plan_decisions:[]
        | Stopped | Interrupted | Gave_up -> [])
  in
  frontier_fallback := initial_items;
  let sched_stats =
    if
      initial_items = []
      || !runs >= config.max_runs
      || (config.stop_on_first_error && Atomic.get error_found)
      || Atomic.get interrupt_requested
    then []
    else begin
      (* Expand-only items don't count against [max_runs] (their runs were
         already counted before the cut), but they do consume scheduler
         claims; widen the claim budget accordingly. *)
      let expand_only =
        List.length
          (List.filter
             (fun it -> Hashtbl.mem resume_completed (Checkpoint.item_key it))
             initial_items)
      in
      let budget =
        if config.max_runs = max_int then max_int
        else config.max_runs - !runs + expand_only
      in
      let sched =
        Scheduler.create ~order:Scheduler.Lifo ~jobs ~budget
          ~metrics:(Obs.Metrics.shard registry jobs)
          ()
      in
      sched_ref := Some sched;
      Scheduler.push_batch sched initial_items;
      Scheduler.run sched (fun ~worker it ->
          (* A raising replay is a harness failure, not a pool teardown:
             record it (with the backtrace from the catch site) and keep the
             sibling workers draining. *)
          match
            let decisions = it.prefix @ [ it.choice ] in
            let plan = Decisions.of_decisions ~np decisions in
            let count =
              not
                (Hashtbl.mem resume_completed
                   (Checkpoint.schedule_key decisions))
            in
            run_one plan
              ~fork_index:(List.length decisions - 1)
              ~schedule:decisions ~worker ~name:"replay" ~count
          with
          | Counted record ->
              maybe_periodic_checkpoint ();
              let children =
                items_of_record record
                  ~plan_decisions:(it.prefix @ [ it.choice ])
              in
              if
                Atomic.get interrupt_requested
                || (config.stop_on_first_error && Atomic.get error_found)
              then
                (* Stop claiming, but still publish the children: a
                   checkpoint taken after the drain must see the completed
                   replay's subtree. *)
                Scheduler.cancel sched;
              children
          | Stopped ->
              Scheduler.cancel sched;
              []
          | Interrupted ->
              (* The replay was poisoned before completing: put the item
                 back so the checkpointed frontier still covers it. *)
              Scheduler.cancel sched;
              [ it ]
          | Gave_up ->
              maybe_periodic_checkpoint ();
              []
          | exception exn ->
              let bt = Printexc.get_raw_backtrace () in
              Mutex.lock m;
              harness_failures :=
                {
                  Report.hf_worker = worker;
                  hf_message = Printexc.to_string exn;
                  hf_backtrace = Printexc.raw_backtrace_to_string bt;
                }
                :: !harness_failures;
              Mutex.unlock m;
              []);
      Scheduler.stats sched
    end
  in
  let interrupted = Atomic.get interrupt_requested in
  (* Always leave a final checkpoint behind when one was requested: either
     the interrupt cut (resumable) or the completed exploration (resuming
     it is a no-op that just re-reports). *)
  write_checkpoint ();
  let workers =
    List.init jobs (fun i ->
        let queue_waits =
          match
            List.find_opt
              (fun (ws : Scheduler.worker_stats) -> ws.Scheduler.worker_id = i)
              sched_stats
          with
          | Some ws -> ws.Scheduler.queue_waits
          | None -> 0
        in
        {
          Report.worker_id = i;
          runs_executed = worker_runs.(i);
          queue_waits;
          wall_seconds = worker_wall.(i);
          virtual_seconds = worker_vtime.(i);
        })
  in
  (match (tracer, root_span) with
  | Some tr, Some sp -> Obs.Trace.end_span (Obs.Trace.sink tr 0) sp
  | _ -> ());
  {
    Report.np;
    interleavings = !runs;
    findings = sorted_findings ();
    wildcards_analyzed = !wildcards_analyzed;
    first_run_makespan = !first_makespan;
    total_virtual_time = !total_vtime;
    monitor_alerts = !monitor_alerts;
    bounded_epochs = !bounded;
    host_seconds = Unix.gettimeofday () -. started;
    jobs;
    workers;
    runs_cancelled = !runs_cancelled;
    runs_timed_out = !runs_timed_out;
    runs_retried = !runs_retried;
    runs_crashed = !runs_crashed;
    harness_failures = List.rev !harness_failures;
    interrupted;
    metrics = Obs.Metrics.snapshot registry;
    worker_metrics =
      List.init (jobs + 1) (fun i -> (i, Obs.Metrics.shard_snapshot registry i))
      |> List.filter (fun (_, s) -> s <> []);
    events = (match tracer with Some tr -> Obs.Trace.events tr | None -> []);
  }

(** Verify [program] on [np] simulated ranks under DAMPI. *)
let verify ?(config = default_config) ?resume ~np program =
  explore ~config ?resume ~np (dampi_runner config ~np program)

(** Execute exactly one guided run under [plan] (e.g. a schedule loaded from
    an Epoch-Decisions file) and report what it produced. *)
let replay ?(config = default_config) ?metrics ~np program plan =
  dampi_runner config ~np program
    ~ctx:{ null_ctx with metrics }
    plan
    ~fork_index:(Decisions.length plan - 1)
