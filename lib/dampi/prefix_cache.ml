(* Memoized replay artifacts keyed by schedule, with an LRU byte budget.
   See prefix_cache.mli for the caching model and why whole-schedule
   memoization (not mid-run state snapshots) is what replay determinism
   makes sound. *)

type entry = {
  vtime : float;
  wildcards : int;
  errors : Report.error list;
  epochs : Epoch.summary list;  (* completion order *)
}

let entry_of_record (r : Report.run_record) =
  {
    vtime = r.Report.makespan;
    wildcards = r.Report.wildcards;
    errors = r.Report.run_errors;
    epochs = List.map Epoch.summarize r.Report.new_epochs;
  }

let bounded e =
  List.length
    (List.filter (fun (s : Epoch.summary) -> not s.Epoch.s_expandable) e.epochs)

(* ---- serialization (the checkpoint sidecar) ----

   One line per entry; errors are percent-encoded whole so the line stays
   whitespace-delimited. The byte cost charged against the budget is the
   serialized line length — the honest size of what a sidecar persists. *)

let entry_line ~key e =
  Printf.sprintf "entry %s %h %d %s %s" key e.vtime e.wildcards
    (Checkpoint.sleep_key e.epochs)
    (match e.errors with
    | [] -> "-"
    | errs ->
        String.concat ";"
          (List.map (fun er -> Checkpoint.enc (Checkpoint.error_to_line er)) errs))

let entry_of_line line =
  match String.split_on_char ' ' line with
  | [ "entry"; key; vtime; wildcards; epochs; errors ] -> (
      let parse_err s =
        let l = Checkpoint.dec s in
        match String.index_opt l ' ' with
        | Some i ->
            Checkpoint.error_of_line (String.sub l 0 i)
              (String.sub l (i + 1) (String.length l - i - 1))
        | None -> Checkpoint.error_of_line l ""
      in
      let errors =
        if errors = "-" then Some []
        else
          let parts = List.map parse_err (String.split_on_char ';' errors) in
          if List.exists Option.is_none parts then None
          else Some (List.filter_map Fun.id parts)
      in
      match
        ( float_of_string_opt vtime,
          int_of_string_opt wildcards,
          Checkpoint.sleep_of_key epochs,
          errors )
      with
      | Some vtime, Some wildcards, Some epochs, Some errors ->
          Some (key, { vtime; wildcards; errors; epochs })
      | _ -> None)
  | _ -> None

(* ---- LRU ---- *)

type node = {
  n_key : string;
  n_entry : entry;
  n_cost : int;
  mutable prev : node option;  (* toward most-recent *)
  mutable next : node option;  (* toward least-recent *)
}

type metrics = {
  shard : Obs.Metrics.shard;
  m_hits : Obs.Metrics.counter;
  m_misses : Obs.Metrics.counter;
  m_evictions : Obs.Metrics.counter;
  m_depth : Obs.Metrics.histogram;
}

type t = {
  label : string;
      (* workload+config identity (the checkpoint label); schedule keys are
         decision lists with no workload in them, so a sidecar is only safe
         to warm from when the labels agree *)
  budget : int;
  tbl : (string, node) Hashtbl.t;
  mutable head : node option;  (* most recently used *)
  mutable tail : node option;  (* least recently used *)
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  m : Mutex.t;
  metrics : metrics option;
}

let default_budget_bytes = 64 * 1024 * 1024

let create ?metrics ?(label = "") ~budget_bytes () =
  {
    label;
    budget = max 0 budget_bytes;
    tbl = Hashtbl.create 256;
    head = None;
    tail = None;
    bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    m = Mutex.create ();
    metrics =
      (* Resolved eagerly so the series exist even for a run with no
         cache traffic; all writes happen under [m], keeping the shard
         single-writer. *)
      Option.map
        (fun shard ->
          {
            shard;
            m_hits = Obs.Metrics.counter shard "cache.hits";
            m_misses = Obs.Metrics.counter shard "cache.misses";
            m_evictions = Obs.Metrics.counter shard "cache.evictions";
            m_depth =
              Obs.Metrics.histogram shard ~bounds:Obs.Metrics.count_bounds
                "cache.resume_depth";
          })
        metrics;
  }

(* All list surgery happens with [t.m] held. *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let set_bytes_gauge t =
  match t.metrics with
  | Some ms -> Obs.Metrics.gauge_set ms.shard "cache.bytes" (float_of_int t.bytes)
  | None -> ()

let evict_over_budget t =
  while t.bytes > t.budget && t.tail <> None do
    match t.tail with
    | Some n ->
        unlink t n;
        Hashtbl.remove t.tbl n.n_key;
        t.bytes <- t.bytes - n.n_cost;
        t.evictions <- t.evictions + 1;
        (match t.metrics with
        | Some ms -> Obs.Metrics.incr ms.m_evictions
        | None -> ())
    | None -> ()
  done

let keys_of_prefixes decisions =
  (* Keys of every proper prefix plus the full schedule, shallow first. *)
  let rec go acc rev_prefix = function
    | [] -> List.rev acc
    | d :: tl ->
        let rev_prefix = d :: rev_prefix in
        go (Checkpoint.schedule_key (List.rev rev_prefix) :: acc) rev_prefix tl
  in
  go [ Checkpoint.schedule_key [] ] [] decisions

let deepest_prefix_locked t decisions =
  let rec deepest best depth = function
    | [] -> best
    | k :: tl ->
        deepest (if Hashtbl.mem t.tbl k then depth else best) (depth + 1) tl
  in
  deepest 0 0 (keys_of_prefixes decisions)

let find t decisions =
  let key = Checkpoint.schedule_key decisions in
  Mutex.lock t.m;
  let r =
    match Hashtbl.find_opt t.tbl key with
    | Some n ->
        unlink t n;
        push_front t n;
        t.hits <- t.hits + 1;
        (match t.metrics with
        | Some ms ->
            Obs.Metrics.incr ms.m_hits;
            Obs.Metrics.observe ms.m_depth
              (float_of_int (List.length decisions))
        | None -> ());
        Some n.n_entry
    | None ->
        t.misses <- t.misses + 1;
        (match t.metrics with
        | Some ms ->
            Obs.Metrics.incr ms.m_misses;
            (* How deep a cached prefix this guided run shares — the
               resumed-depth a mid-run snapshot scheme would start from. *)
            Obs.Metrics.observe ms.m_depth
              (float_of_int (deepest_prefix_locked t decisions))
        | None -> ());
        None
  in
  Mutex.unlock t.m;
  r

let add t decisions entry =
  let key = Checkpoint.schedule_key decisions in
  Mutex.lock t.m;
  (match Hashtbl.find_opt t.tbl key with
  | Some n ->
      (* Replays are deterministic: a re-add carries the same artifact.
         Just refresh recency. *)
      unlink t n;
      push_front t n
  | None ->
      let cost = String.length (entry_line ~key entry) + 1 in
      if cost <= t.budget then begin
        let n =
          { n_key = key; n_entry = entry; n_cost = cost; prev = None; next = None }
        in
        Hashtbl.replace t.tbl key n;
        push_front t n;
        t.bytes <- t.bytes + cost;
        evict_over_budget t
      end);
  set_bytes_gauge t;
  Mutex.unlock t.m

let deepest_prefix t decisions =
  Mutex.lock t.m;
  let d = deepest_prefix_locked t decisions in
  Mutex.unlock t.m;
  d

let stats t =
  Mutex.lock t.m;
  let r = (t.hits, t.misses, t.bytes, t.evictions) in
  Mutex.unlock t.m;
  r

(* ---- sidecar persistence ---- *)

let to_string t =
  Mutex.lock t.m;
  let b = Buffer.create 1024 in
  Buffer.add_string b "# DAMPI prefix cache\nversion 1\n";
  Buffer.add_string b ("label " ^ Checkpoint.enc t.label ^ "\n");
  (* Least-recent first, so re-adding in file order restores recency. *)
  let rec emit = function
    | None -> ()
    | Some n ->
        Buffer.add_string b (entry_line ~key:n.n_key n.n_entry);
        Buffer.add_char b '\n';
        emit n.prev
  in
  emit t.tail;
  Mutex.unlock t.m;
  Buffer.contents b

let load_into t text =
  match String.split_on_char '\n' text with
  | "# DAMPI prefix cache" :: "version 1" :: label_line :: rest
    when label_line = "label " ^ Checkpoint.enc t.label ->
      List.iter
        (fun line ->
          if line <> "" then
            match entry_of_line line with
            | Some (key, e) -> (
                match Checkpoint.schedule_of_key key with
                | Some decisions -> add t decisions e
                | None -> ())
            | None -> ())
        rest;
      Ok ()
  | "# DAMPI prefix cache" :: "version 1" :: line :: _
    when String.length line >= 6 && String.sub line 0 6 = "label " ->
      Error "prefix-cache label mismatch (different workload or config)"
  | _ -> Error "not a DAMPI prefix-cache file"

let save ?fault t path = Checkpoint.atomic_write ?fault path (to_string t)

let load t path =
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    text
  with
  | text -> load_into t text
  | exception Sys_error msg -> Error msg
