(* Line-oriented wire protocol between the exploration coordinator and
   remote workers. See wire.mli for the conversation; the encodings for
   items, schedules, and errors are Checkpoint's, verbatim. *)

let proto_version = 2

type addr = Unix_sock of string | Tcp of string * int

let addr_of_string s =
  match String.index_opt s ':' with
  | None ->
      Error
        (Printf.sprintf "bad address %S (expected unix:PATH or tcp:HOST:PORT)" s)
  | Some i -> (
      let scheme = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match scheme with
      | "unix" ->
          if rest = "" then Error (Printf.sprintf "bad address %S: empty path" s)
          else Ok (Unix_sock rest)
      | "tcp" -> (
          match String.rindex_opt rest ':' with
          | None ->
              Error (Printf.sprintf "bad address %S (expected tcp:HOST:PORT)" s)
          | Some j -> (
              let host = String.sub rest 0 j in
              let port = String.sub rest (j + 1) (String.length rest - j - 1) in
              match int_of_string_opt port with
              | Some p when p > 0 && p < 65536 && host <> "" ->
                  Ok (Tcp (host, p))
              | _ ->
                  Error
                    (Printf.sprintf "bad address %S (expected tcp:HOST:PORT)" s)))
      | _ ->
          Error
            (Printf.sprintf
               "bad address %S (unknown scheme %S; expected unix: or tcp:)" s
               scheme))

let addr_to_string = function
  | Unix_sock p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let sockaddr_of_addr = function
  | Unix_sock p -> Unix.ADDR_UNIX p
  | Tcp (host, port) ->
      let ip =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      Unix.ADDR_INET (ip, port)

(* ---- authentication ---- *)

(* HMAC-MD5 (RFC 2104 two-pass construction over the stdlib Digest). MD5 is
   what the toolchain ships without extra dependencies; the goal is keeping
   strangers and misconfigured peers off a cross-host TCP coordinator, not
   resisting a cryptanalyst — the mli says so out loud. *)
let hmac ~secret msg =
  let block = 64 in
  let key =
    if String.length secret > block then Digest.string secret else secret
  in
  let key = key ^ String.make (block - String.length key) '\000' in
  let xored c = String.map (fun k -> Char.chr (Char.code k lxor c)) key in
  Digest.to_hex (Digest.string (xored 0x5c ^ Digest.string (xored 0x36 ^ msg)))

let auth_mac ~secret ~nonce ~session =
  hmac ~secret (nonce ^ "\n" ^ session)

(* Nonce freshness, not reproducibility, is what matters here; seed from
   volatile process state. *)
let nonce_counter = ref 0

let gen_nonce () =
  incr nonce_counter;
  let seed =
    Hashtbl.hash
      (Unix.gettimeofday (), Unix.getpid (), !nonce_counter, Sys.executable_name)
  in
  let g = Sim.Splitmix.derive seed ~salt:!nonce_counter in
  Printf.sprintf "%016Lx%016Lx" (Sim.Splitmix.next_int64 g)
    (Sim.Splitmix.next_int64 g)

let load_token path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    text
  with
  | text -> (
      match String.trim text with
      | "" -> Error (Printf.sprintf "auth token file %s is empty" path)
      | secret -> Ok secret)
  | exception Sys_error msg -> Error msg

type job = { workload : string; np : int; params : (string * string) list }

type run_result = {
  key : string;
  payload : run_payload option;
  timeouts : int;
  retries : int;
  transients : int;
}

and run_payload = {
  vtime : float;
  bounded : int;
  pruned : int;
  errors : Report.error list;
  children : Checkpoint.item list;
}

type to_worker =
  | Challenge of string
  | Welcome of { epoch : int }
  | Reject of { proto : int; reason : string }
  | Job of job
  | Lease of { lease_id : int; items : Checkpoint.item list }
  | Progress of (string * string) list
  | Detach
  | Shutdown

type to_coord =
  | Hello of {
      proto : int;
      id : string;
      session : string;
      epoch : int;
      pending : int option;
      role : string option;
    }
  | Auth of string
  | Ready
  | Heartbeat
  | Telemetry of (string * Obs.Metrics.sample) list
  | Results of { epoch : int; lease_id : int; runs : run_result list }
  | Failed of string

(* ---- line building ---- *)

let item_line (it : Checkpoint.item) =
  if it.Checkpoint.sleep = [] then
    Printf.sprintf "item %s %s"
      (Checkpoint.schedule_key it.Checkpoint.prefix)
      (Checkpoint.decision_to_key it.Checkpoint.choice)
  else
    Printf.sprintf "item %s %s %s"
      (Checkpoint.schedule_key it.Checkpoint.prefix)
      (Checkpoint.decision_to_key it.Checkpoint.choice)
      (Checkpoint.sleep_key it.Checkpoint.sleep)

let item_of_fields ?(sleep = "-") prefix choice =
  match
    ( Checkpoint.schedule_of_key prefix,
      Checkpoint.decision_of_key choice,
      Checkpoint.sleep_of_key sleep )
  with
  | Some prefix, Some choice, Some sleep ->
      Some { Checkpoint.prefix; choice; sleep }
  | _ -> None

(* Frames are serialized to strings before hitting the socket so the
   chaos layer ([Mpi.Fault.Net]) can drop, duplicate, corrupt or truncate a
   whole frame at the send boundary on either side. *)

let to_worker_string msg =
  let b = Buffer.create 128 in
  (match msg with
  | Challenge nonce ->
      Buffer.add_string b (Printf.sprintf "challenge %s\n" (Checkpoint.enc nonce))
  | Welcome { epoch } -> Buffer.add_string b (Printf.sprintf "welcome epoch=%d\n" epoch)
  | Reject { proto; reason } ->
      Buffer.add_string b
        (Printf.sprintf "reject proto=%d %s\n" proto (Checkpoint.enc reason))
  | Job j ->
      let params =
        String.concat " "
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=%s" k (Checkpoint.enc v))
             j.params)
      in
      Buffer.add_string b
        (Printf.sprintf "job workload=%s np=%d%s\n" (Checkpoint.enc j.workload)
           j.np
           (if params = "" then "" else " " ^ params))
  | Lease { lease_id; items } ->
      Buffer.add_string b (Printf.sprintf "lease %d %d\n" lease_id (List.length items));
      List.iter (fun it -> Buffer.add_string b (item_line it ^ "\n")) items;
      Buffer.add_string b "end\n"
  | Progress kvs ->
      Buffer.add_string b (Printf.sprintf "top %d\n" (List.length kvs));
      List.iter
        (fun (k, v) ->
          Buffer.add_string b
            (Printf.sprintf "s %s %s\n" (Checkpoint.enc k) (Checkpoint.enc v)))
        kvs;
      Buffer.add_string b "end\n"
  | Detach -> Buffer.add_string b "detach\n"
  | Shutdown -> Buffer.add_string b "shutdown\n");
  Buffer.contents b

let to_coord_string msg =
  let b = Buffer.create 256 in
  (match msg with
  | Hello { proto; id; session; epoch; pending; role } ->
      Buffer.add_string b
        (Printf.sprintf "hello proto=%d id=%s session=%s epoch=%d%s%s\n" proto
           (Checkpoint.enc id) (Checkpoint.enc session) epoch
           (match pending with
           | Some l -> Printf.sprintf " pending=%d" l
           | None -> "")
           (match role with
           | Some r -> Printf.sprintf " role=%s" (Checkpoint.enc r)
           | None -> ""))
  | Auth mac -> Buffer.add_string b (Printf.sprintf "auth %s\n" (Checkpoint.enc mac))
  | Ready -> Buffer.add_string b "ready\n"
  | Heartbeat -> Buffer.add_string b "hb\n"
  | Telemetry series ->
      Buffer.add_string b (Printf.sprintf "telemetry %d\n" (List.length series));
      List.iter
        (fun (name, s) ->
          Buffer.add_string b
            (Printf.sprintf "t %s %s\n" (Checkpoint.enc name)
               (Obs.Metrics.sample_to_wire s)))
        series;
      Buffer.add_string b "end\n"
  | Failed reason ->
      Buffer.add_string b (Printf.sprintf "fail %s\n" (Checkpoint.enc reason))
  | Results { epoch; lease_id; runs } ->
      Buffer.add_string b
        (Printf.sprintf "results %d %d %d\n" epoch lease_id (List.length runs));
      List.iter
        (fun r ->
          (match r.payload with
          | Some p ->
              (* %h hex-floats round-trip virtual time exactly; canonical
                 equality with the in-process pool depends on it. *)
              Buffer.add_string b
                (Printf.sprintf "run %s counted %h %d %d %d %d %d %d %d\n" r.key
                   p.vtime p.bounded p.pruned r.timeouts r.retries r.transients
                   (List.length p.errors) (List.length p.children));
              List.iter
                (fun e ->
                  Buffer.add_string b
                    (Printf.sprintf "err %s\n" (Checkpoint.error_to_line e)))
                p.errors;
              List.iter (fun it -> Buffer.add_string b (item_line it ^ "\n")) p.children
          | None ->
              Buffer.add_string b
                (Printf.sprintf "run %s gaveup %d %d %d\n" r.key r.timeouts
                   r.retries r.transients)))
        runs;
      Buffer.add_string b "end\n");
  Buffer.contents b

let write_to_worker oc msg =
  output_string oc (to_worker_string msg);
  flush oc

let write_to_coord oc msg =
  output_string oc (to_coord_string msg);
  flush oc

(* ---- parsing helpers ---- *)

let fields = String.split_on_char ' '

let kv_fields parts =
  List.filter_map
    (fun p ->
      match String.index_opt p '=' with
      | Some i ->
          Some
            ( String.sub p 0 i,
              Checkpoint.dec (String.sub p (i + 1) (String.length p - i - 1)) )
      | None -> None)
    parts

let parse_job rest =
  let kvs = kv_fields (fields rest) in
  match (List.assoc_opt "workload" kvs, List.assoc_opt "np" kvs) with
  | Some workload, Some np_s -> (
      match int_of_string_opt np_s with
      | Some np when np > 0 ->
          Ok
            {
              workload;
              np;
              params =
                List.filter (fun (k, _) -> k <> "workload" && k <> "np") kvs;
            }
      | _ -> Error (Printf.sprintf "bad job np %S" np_s))
  | _ -> Error "job line missing workload/np"

let parse_item_line line =
  match fields line with
  | [ "item"; prefix; choice ] -> (
      match item_of_fields prefix choice with
      | Some it -> Ok it
      | None -> Error (Printf.sprintf "malformed item line %S" line))
  | [ "item"; prefix; choice; sleep ] -> (
      match item_of_fields ~sleep prefix choice with
      | Some it -> Ok it
      | None -> Error (Printf.sprintf "malformed item line %S" line))
  | _ -> Error (Printf.sprintf "malformed item line %S" line)

(* "err <tag> <payload>" | "err <tag>" (empty payload) *)
let parse_err_line line =
  let body = String.sub line 4 (String.length line - 4) in
  let tag, payload =
    match String.index_opt body ' ' with
    | Some i ->
        ( String.sub body 0 i,
          String.sub body (i + 1) (String.length body - i - 1) )
    | None -> (body, "")
  in
  match Checkpoint.error_of_line tag payload with
  | Some e -> Ok e
  | None -> Error (Printf.sprintf "malformed err line %S" line)

(* First line of a run group; returns the header plus how many err/child
   lines follow it. *)
type run_header = { hdr : run_result; nerr : int; nchild : int }

let parse_run_line line =
  match fields line with
  | [ "run"; key; "counted"; vtime; bounded; pruned; timeouts; retries;
      transients; nerr; nchild ] -> (
      match
        ( float_of_string_opt vtime,
          int_of_string_opt bounded,
          int_of_string_opt pruned,
          int_of_string_opt timeouts,
          int_of_string_opt retries,
          int_of_string_opt transients,
          int_of_string_opt nerr,
          int_of_string_opt nchild )
      with
      | Some vtime, Some bounded, Some pruned, Some timeouts, Some retries,
        Some transients, Some nerr, Some nchild
        when nerr >= 0 && nchild >= 0 ->
          Ok
            {
              hdr =
                {
                  key;
                  payload =
                    Some { vtime; bounded; pruned; errors = []; children = [] };
                  timeouts;
                  retries;
                  transients;
                };
              nerr;
              nchild;
            }
      | _ -> Error (Printf.sprintf "malformed run line %S" line))
  | [ "run"; key; "gaveup"; timeouts; retries; transients ] -> (
      match
        ( int_of_string_opt timeouts,
          int_of_string_opt retries,
          int_of_string_opt transients )
      with
      | Some timeouts, Some retries, Some transients ->
          Ok
            {
              hdr = { key; payload = None; timeouts; retries; transients };
              nerr = 0;
              nchild = 0;
            }
      | _ -> Error (Printf.sprintf "malformed run line %S" line))
  | _ -> Error (Printf.sprintf "malformed run line %S" line)

(* ---- worker side: blocking frame reads ---- *)

(* A SIGKILLed peer surfaces as ECONNRESET ([Sys_error] through the
   channel layer), not a clean EOF; both just mean the session is over. *)
let read_line_opt ic =
  try Some (input_line ic)
  with End_of_file | Sys_error _ -> None

let read_to_worker ic =
  match read_line_opt ic with
  | None -> Error "connection closed"
  | Some line -> (
      match fields line with
      | [ "challenge"; nonce ] -> Ok (Challenge (Checkpoint.dec nonce))
      | "welcome" :: rest -> (
          match
            Option.bind
              (List.assoc_opt "epoch" (kv_fields rest))
              int_of_string_opt
          with
          | Some epoch -> Ok (Welcome { epoch })
          | None -> Error (Printf.sprintf "malformed welcome %S" line))
      | [ "reject"; proto_kv; reason ] -> (
          match
            Option.bind
              (List.assoc_opt "proto" (kv_fields [ proto_kv ]))
              int_of_string_opt
          with
          | Some proto -> Ok (Reject { proto; reason = Checkpoint.dec reason })
          | None -> Error (Printf.sprintf "malformed reject %S" line))
      | "job" :: _ ->
          parse_job (String.sub line 4 (String.length line - 4))
          |> Result.map (fun j -> Job j)
      | [ "lease"; id; n ] -> (
          match (int_of_string_opt id, int_of_string_opt n) with
          | Some lease_id, Some n when n >= 0 -> (
              let rec items acc k =
                if k = 0 then
                  match read_line_opt ic with
                  | Some "end" -> Ok (List.rev acc)
                  | _ -> Error "lease frame not closed by end"
                else
                  match read_line_opt ic with
                  | None -> Error "connection closed mid-lease"
                  | Some l -> (
                      match parse_item_line l with
                      | Ok it -> items (it :: acc) (k - 1)
                      | Error e -> Error e)
              in
              match items [] n with
              | Ok items -> Ok (Lease { lease_id; items })
              | Error e -> Error e)
          | _ -> Error (Printf.sprintf "malformed lease line %S" line))
      | [ "top"; n ] -> (
          match int_of_string_opt n with
          | Some n when n >= 0 -> (
              let rec kvs acc k =
                if k = 0 then
                  match read_line_opt ic with
                  | Some "end" -> Ok (List.rev acc)
                  | _ -> Error "top frame not closed by end"
                else
                  match read_line_opt ic with
                  | None -> Error "connection closed mid-frame"
                  | Some l -> (
                      match fields l with
                      | [ "s"; key; v ] ->
                          kvs
                            ((Checkpoint.dec key, Checkpoint.dec v) :: acc)
                            (k - 1)
                      | _ -> Error (Printf.sprintf "malformed top line %S" l))
              in
              match kvs [] n with
              | Ok kvs -> Ok (Progress kvs)
              | Error e -> Error e)
          | _ -> Error (Printf.sprintf "malformed top line %S" line))
      | [ "detach" ] -> Ok Detach
      | [ "shutdown" ] -> Ok Shutdown
      | _ -> Error (Printf.sprintf "unexpected coordinator line %S" line))

(* ---- incremental line splitting ---- *)

(* Cap on the bytes a single unterminated line may buffer. A peer that
   streams data without ever sending '\n' would otherwise grow the
   assembler without bound; reads arrive in chunks no larger than the
   caller's read buffer, so peak memory stays near [limit] + one chunk. *)
let default_max_line = 65536

module Lines = struct
  type t = { buf : Buffer.t; limit : int; mutable dead : bool }

  let create ?(limit = default_max_line) () =
    { buf = Buffer.create 256; limit = max 1 limit; dead = false }

  let limit t = t.limit

  let feed t bytes n =
    if t.dead then ([], true)
    else begin
      Buffer.add_subbytes t.buf bytes 0 n;
      let s = Buffer.contents t.buf in
      let lines = ref [] in
      let start = ref 0 in
      (try
         while true do
           let i = String.index_from s !start '\n' in
           lines := String.sub s !start (i - !start) :: !lines;
           start := i + 1
         done
       with Not_found -> ());
      Buffer.clear t.buf;
      Buffer.add_substring t.buf s !start (String.length s - !start);
      if Buffer.length t.buf > t.limit then begin
        t.dead <- true;
        Buffer.clear t.buf;
        (List.rev !lines, true)
      end
      else (List.rev !lines, false)
    end
end

(* ---- coordinator side: incremental assembly ---- *)

(* Mid-frame state of a results frame being assembled. *)
type partial = {
  p_epoch : int;
  p_lease_id : int;
  mutable p_want : int;  (* run groups still expected *)
  mutable p_runs : run_result list;  (* completed groups, reversed *)
  mutable p_cur : run_header option;  (* group whose err/child lines follow *)
  mutable p_errs : Report.error list;
  mutable p_children : Checkpoint.item list;
}

(* Mid-frame state of a telemetry frame. Unlike results frames, telemetry
   is advisory: malformed samples are skipped and a corrupt or truncated
   frame is dropped whole — it never poisons the connection. *)
type tpartial = {
  mutable t_want : int;
  mutable t_series : (string * Obs.Metrics.sample) list;  (* reversed *)
}

type frame_state = F_results of partial | F_telemetry of tpartial

type assembler = {
  lines : Lines.t;
  mutable frame : frame_state option;
  mutable overflowed : bool;
}

let assembler () =
  { lines = Lines.create (); frame = None; overflowed = false }

(* Bound what a single telemetry frame may claim, so a hostile header
   cannot make the assembler loop forever waiting for samples. *)
let max_telemetry_series = 4096

let close_group p (h : run_header) =
  let hdr = h.hdr in
  let payload =
    Option.map
      (fun pl ->
        {
          pl with
          errors = List.rev p.p_errs;
          children = List.rev p.p_children;
        })
      hdr.payload
  in
  p.p_runs <- { hdr with payload } :: p.p_runs;
  p.p_cur <- None;
  p.p_errs <- [];
  p.p_children <- [];
  p.p_want <- p.p_want - 1

(* One complete line, inside or outside a frame. *)
let rec line_msg a line =
  match a.frame with
  | Some (F_telemetry tp) -> (
      match fields line with
      | [ "end" ] ->
          a.frame <- None;
          Some (Ok (Telemetry (List.rev tp.t_series)))
      | "t" :: rest ->
          (match rest with
          | [ name; token ] when tp.t_want > 0 -> (
              tp.t_want <- tp.t_want - 1;
              match Obs.Metrics.sample_of_wire token with
              | Some s -> tp.t_series <- (Checkpoint.dec name, s) :: tp.t_series
              | None -> () (* malformed sample: skip it *))
          | _ -> () (* malformed or surplus sample: skip it *));
          None
      | ("hello" | "auth" | "ready" | "hb" | "fail" | "results" | "telemetry")
        :: _ ->
          (* The frame was truncated: drop it whole and let this line be
             whatever it claims to be at the top level. *)
          a.frame <- None;
          line_msg a line
      | _ -> None (* corrupt telemetry content: skip the line *))
  | Some (F_results p) -> (
      (* Inside a results frame: run headers, their err/child lines, end. *)
      let fill_cur () =
        match p.p_cur with
        | Some h
          when List.length p.p_errs >= h.nerr
               && List.length p.p_children >= h.nchild ->
            close_group p h
        | _ -> ()
      in
      match fields line with
      | "run" :: _ -> (
          match p.p_cur with
          | Some _ -> Some (Error "run group not completed before next run")
          | None -> (
              match parse_run_line line with
              | Error e -> Some (Error e)
              | Ok h ->
                  if h.nerr = 0 && h.nchild = 0 then begin
                    p.p_runs <- h.hdr :: p.p_runs;
                    p.p_want <- p.p_want - 1;
                    None
                  end
                  else begin
                    p.p_cur <- Some h;
                    None
                  end))
      | "err" :: _ -> (
          match p.p_cur with
          | None -> Some (Error "err line outside a run group")
          | Some _ -> (
              match parse_err_line line with
              | Error e -> Some (Error e)
              | Ok e ->
                  p.p_errs <- e :: p.p_errs;
                  fill_cur ();
                  None))
      | "item" :: _ -> (
          match p.p_cur with
          | None -> Some (Error "item line outside a run group")
          | Some _ -> (
              match parse_item_line line with
              | Error e -> Some (Error e)
              | Ok it ->
                  p.p_children <- it :: p.p_children;
                  fill_cur ();
                  None))
      | [ "end" ] ->
          a.frame <- None;
          if p.p_want = 0 && p.p_cur = None then
            Some
              (Ok
                 (Results
                    {
                      epoch = p.p_epoch;
                      lease_id = p.p_lease_id;
                      runs = List.rev p.p_runs;
                    }))
          else Some (Error "results frame closed with groups missing")
      | _ -> Some (Error (Printf.sprintf "unexpected line in results %S" line))
      )
  | None -> (
      match fields line with
      | "hello" :: rest -> (
          let kvs = kv_fields rest in
          match
            (Option.bind (List.assoc_opt "proto" kvs) int_of_string_opt,
             List.assoc_opt "id" kvs)
          with
          | Some proto, Some id ->
              (* session/epoch/pending are proto>=2 fields; a proto=1 hello
                 still parses so the coordinator can answer with a versioned
                 rejection instead of dropping the connection silently. *)
              let session =
                Option.value (List.assoc_opt "session" kvs) ~default:""
              in
              let epoch =
                Option.value
                  (Option.bind (List.assoc_opt "epoch" kvs) int_of_string_opt)
                  ~default:0
              in
              let pending =
                Option.bind (List.assoc_opt "pending" kvs) int_of_string_opt
              in
              let role = List.assoc_opt "role" kvs in
              Some (Ok (Hello { proto; id; session; epoch; pending; role }))
          | _ -> Some (Error (Printf.sprintf "malformed hello %S" line)))
      | [ "auth"; mac ] -> Some (Ok (Auth (Checkpoint.dec mac)))
      | [ "ready" ] -> Some (Ok Ready)
      | [ "hb" ] -> Some (Ok Heartbeat)
      | [ "fail"; reason ] -> Some (Ok (Failed (Checkpoint.dec reason)))
      | [ "results"; epoch; id; n ] -> (
          match
            (int_of_string_opt epoch, int_of_string_opt id, int_of_string_opt n)
          with
          | Some epoch, Some lease_id, Some n when n >= 0 ->
              (* Even an empty frame closes with "end": enter frame state
                 unconditionally so the closing line is consumed there. *)
              a.frame <-
                Some
                  (F_results
                     {
                       p_epoch = epoch;
                       p_lease_id = lease_id;
                       p_want = n;
                       p_runs = [];
                       p_cur = None;
                       p_errs = [];
                       p_children = [];
                     });
              None
          | _ -> Some (Error (Printf.sprintf "malformed results line %S" line)))
      | "telemetry" :: rest -> (
          (* Telemetry is best-effort: a malformed header is dropped
             silently rather than poisoning the connection. *)
          match rest with
          | [ n ] -> (
              match int_of_string_opt n with
              | Some n when n >= 0 && n <= max_telemetry_series ->
                  a.frame <- Some (F_telemetry { t_want = n; t_series = [] });
                  None
              | _ -> None)
          | _ -> None)
      | _ -> Some (Error (Printf.sprintf "unexpected worker line %S" line)))

let line_msg a line =
  match line_msg a line with
  | Some (Error _ as e) ->
      (* A protocol error poisons the connection; stop assembling. *)
      a.frame <- None;
      Some e
  | r -> r

let feed a buf n =
  let lines, overflow = Lines.feed a.lines buf n in
  let msgs = List.filter_map (line_msg a) lines in
  if overflow && not a.overflowed then begin
    a.overflowed <- true;
    a.frame <- None;
    msgs
    @ [
        Error
          (Printf.sprintf "unterminated line exceeds %d bytes"
             (Lines.limit a.lines));
      ]
  end
  else msgs
