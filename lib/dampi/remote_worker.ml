(* Worker side of the distributed mode. See remote_worker.mli. *)

let src = Logs.Src.create "dampi.worker" ~doc:"distributed worker"

module Log = (val Logs.src_log src : Logs.LOG)

type resolved = {
  np : int;
  runner : Executor.runner;
  rb : Executor.robustness;
}

(* Heartbeats ride the replay's poison hook: every [hb_poll_steps]
   interposed calls, if [hb_interval] elapsed, send one [hb] line. The hook
   answers false — a worker is never externally poisoned; cancellation is
   the coordinator closing the connection, which the next write notices. *)
let hb_poll_steps = 4096
let hb_interval = 0.25

type hb = { oc : out_channel; mutable polls : int; mutable last : float }

let heartbeat hb () =
  hb.polls <- hb.polls + 1;
  if hb.polls land (hb_poll_steps - 1) = 0 then begin
    let now = Unix.gettimeofday () in
    if now -. hb.last > hb_interval then begin
      hb.last <- now;
      try Wire.write_to_coord hb.oc Wire.Heartbeat
      with Sys_error _ | Unix.Unix_error _ -> ()
    end
  end;
  false

let run_item ~(r : resolved) ~hb ~metrics (it : Checkpoint.item) : Wire.run_result
    =
  let decisions = it.Checkpoint.prefix @ [ it.Checkpoint.choice ] in
  let key = Checkpoint.schedule_key decisions in
  let plan = Decisions.of_decisions ~np:r.np decisions in
  let timeouts = ref 0 in
  let retries = ref 0 in
  let transients = ref 0 in
  let outcome =
    Executor.run_attempts ~rb:r.rb ~runner:r.runner ~worker:0 ~metrics
      ~need_poison:true ~external_poison:(heartbeat hb)
      ~abort_retries:(fun () -> false)
      ~wrap:(fun ~attempt:_ f -> f ())
      ~on_event:(function
        | Executor.Timed_out -> incr timeouts
        | Executor.Retried -> incr retries
        | Executor.Transient_fault -> incr transients
        | Executor.Attempt_wall _ | Executor.Cancelled -> ())
      ~key plan
      ~fork_index:(List.length decisions - 1)
  in
  let payload =
    match outcome with
    | Executor.Completed record ->
        Some
          {
            Wire.vtime = record.Report.makespan;
            bounded =
              List.length
                (List.filter
                   (fun (e : Epoch.t) -> not e.Epoch.expandable)
                   record.Report.new_epochs);
            errors = record.Report.run_errors;
            children = Executor.items_of_record record ~plan_decisions:decisions;
          }
    | Executor.Gave_up | Executor.Poisoned ->
        (* Poisoned is unreachable (the external poison always answers
           false); treat it like an exhausted watchdog defensively. *)
        None
  in
  { Wire.key; payload; timeouts = !timeouts; retries = !retries;
    transients = !transients }

let serve ~resolve fd =
  let old_pipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  Fun.protect ~finally:(fun () ->
      (match old_pipe with
      | Some h -> (
          try Sys.set_signal Sys.sigpipe h
          with Invalid_argument _ | Sys_error _ -> ())
      | None -> ());
      try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let hb = { oc; polls = 0; last = Unix.gettimeofday () } in
  (* The worker's metric shard is process-local (registry of one shard);
     canonical counters travel in result deltas, not metrics. *)
  let registry = Obs.Metrics.create ~shards:1 () in
  let metrics = Some (Obs.Metrics.shard registry 0) in
  let id = Printf.sprintf "pid%d" (Unix.getpid ()) in
  match
    Wire.write_to_coord oc (Wire.Hello { proto = Wire.proto_version; id })
  with
  | exception (Sys_error _ | Unix.Unix_error _) -> ()
  | () ->
      let rec loop (r : resolved option) =
        match Wire.read_to_worker ic with
        | Error e -> Log.debug (fun m -> m "session over: %s" e)
        | Ok Wire.Shutdown -> ()
        | Ok (Wire.Job job) -> (
            match resolve job with
            | Ok r ->
                (match Wire.write_to_coord oc Wire.Ready with
                | () -> loop (Some r)
                | exception (Sys_error _ | Unix.Unix_error _) -> ())
            | Error reason -> (
                Log.err (fun m -> m "cannot resolve job: %s" reason);
                try Wire.write_to_coord oc (Wire.Failed reason)
                with Sys_error _ | Unix.Unix_error _ -> ()))
        | Ok (Wire.Lease { lease_id; items }) -> (
            match r with
            | None -> (
                try
                  Wire.write_to_coord oc (Wire.Failed "lease before job")
                with Sys_error _ | Unix.Unix_error _ -> ())
            | Some rr -> (
                let runs = List.map (run_item ~r:rr ~hb ~metrics) items in
                match
                  Wire.write_to_coord oc (Wire.Results { lease_id; runs })
                with
                | () -> loop r
                | exception (Sys_error _ | Unix.Unix_error _) -> ()))
      in
      loop None

let serve_addr ~resolve mode =
  match mode with
  | `Connect addr -> (
      let sa = Wire.sockaddr_of_addr addr in
      let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
      match Unix.connect fd sa with
      | () ->
          serve ~resolve fd;
          Ok ()
      | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED) as e, _, _)
        ->
          (* A coordinator that already drained its frontier closes and
             unlinks its socket before late workers arrive; joining a
             finished run is a no-op, not an error. *)
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Log.info (fun m ->
              m "coordinator at %s already gone (%s); nothing to do"
                (Wire.addr_to_string addr) (Unix.error_message e));
          Ok ()
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "cannot connect to %s: %s"
               (Wire.addr_to_string addr) (Unix.error_message e)))
  | `Listen addr -> (
      let sa = Wire.sockaddr_of_addr addr in
      let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
      (match addr with
      | Wire.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
      | Wire.Unix_sock p -> ( try Unix.unlink p with Unix.Unix_error _ -> ()));
      match
        Unix.bind fd sa;
        Unix.listen fd 1;
        Unix.accept fd
      with
      | afd, _ ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          (match addr with
          | Wire.Unix_sock p -> (
              try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
          | Wire.Tcp _ -> ());
          serve ~resolve afd;
          Ok ()
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "cannot listen on %s: %s"
               (Wire.addr_to_string addr) (Unix.error_message e)))
