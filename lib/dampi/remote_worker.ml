(* Worker side of the distributed mode. See remote_worker.mli. *)

let src = Obs.Log.src "dampi.worker"

module Log = (val Obs.Log.src_log src : Obs.Log.LOG)

type resolved = {
  np : int;
  runner : Executor.runner;
  rb : Executor.robustness;
  prune : bool;
}

(* The worker's chaos spec rides in [rb.net_fault] (the CLI decodes it from
   the job params, tests set it directly), so both ends of every link
   inject deterministically under the same seed. *)

(* An unacknowledged results frame: the lease was computed but the send
   failed (or never happened) before the connection died. It is re-sent on
   the next session, stamped with the epoch of the grant it answers — the
   coordinator fences it if that grant was superseded meanwhile. *)
type pending = {
  p_epoch : int;
  p_lease_id : int;
  p_runs : Wire.run_result list;
}

type session = {
  id : string;
  mutable epoch : int;  (* last granted fencing epoch; 0 = never admitted *)
  mutable pending : pending option;
  mutable conns : int;  (* serve invocations: the chaos salt stream *)
}

let make_session ?id () =
  let id =
    match id with
    | Some id -> id
    | None ->
        Printf.sprintf "w%d-%s" (Unix.getpid ())
          (String.sub (Wire.gen_nonce ()) 0 8)
  in
  { id; epoch = 0; pending = None; conns = 0 }

type reconnect = { max_redials : int; backoff : float; seed : int }

let default_reconnect = { max_redials = 5; backoff = 0.1; seed = 0 }

(* The worker's local metric registry plus the snapshot as of the last
   telemetry frame known to have been written. The pair must share a
   lifetime: deltas are computed against [t_prev], so a registry that
   outlives a session (a redialling CLI worker) must carry its prev
   snapshot along or re-ship — and double-count — old increments. *)
type telemetry = {
  t_registry : Obs.Metrics.t;
  mutable t_prev : Obs.Metrics.snapshot;
}

let telemetry registry = { t_registry = registry; t_prev = [] }

(* The worker end of the chaos boundary: every outgoing frame funnels
   through a sender, which consults the per-connection injector. Writes are
   synchronous (this side has no event loop), so a delay is a sleep, a drop
   pretends success, and a truncation writes half the frame and shuts the
   socket down — the very next operation then fails the way a real
   mid-stream link death would, engaging the pending-stash recovery. *)
type sender = {
  s_fd : Unix.file_descr;
  s_oc : out_channel;
  mutable s_net : Mpi.Fault.Net.t;
  mutable s_held : string option;  (* injected reorder holdback *)
}

let make_sender fd oc = { s_fd = fd; s_oc = oc; s_net = Mpi.Fault.Net.none; s_held = None }

let klass_of_to_coord = function
  | Wire.Results _ -> Mpi.Fault.Net.Payload
  | Wire.Heartbeat | Wire.Telemetry _ -> Mpi.Fault.Net.Chatter
  | Wire.Hello _ | Wire.Auth _ | Wire.Ready | Wire.Failed _ ->
      Mpi.Fault.Net.Control

(* Raises [Sys_error]/[Unix_error] exactly like a plain [write_to_coord]
   would, so every existing call-site recovery path applies unchanged. *)
let send_frame snd msg =
  if not (Mpi.Fault.Net.active snd.s_net) then Wire.write_to_coord snd.s_oc msg
  else begin
    let data = Wire.to_coord_string msg in
    let write s =
      output_string snd.s_oc s;
      flush snd.s_oc
    in
    match
      Mpi.Fault.Net.on_frame snd.s_net ~klass:(klass_of_to_coord msg)
        ~size:(String.length data)
    with
    | Mpi.Fault.Net.Deliver { delay; copies } ->
        if delay > 0.0 then Unix.sleepf delay;
        write data;
        if copies > 1 then write data;
        (match snd.s_held with
        | Some h ->
            snd.s_held <- None;
            write h
        | None -> ())
    | Mpi.Fault.Net.Drop_frame -> ()
    | Mpi.Fault.Net.Corrupt_frame -> write (Mpi.Fault.Net.corrupt_bytes data)
    | Mpi.Fault.Net.Truncate_sever ->
        write (String.sub data 0 (Mpi.Fault.Net.truncate_len data));
        (try Unix.shutdown snd.s_fd Unix.SHUTDOWN_ALL
         with Unix.Unix_error _ -> ());
        raise (Sys_error "injected: link severed after truncated frame")
    | Mpi.Fault.Net.Hold_back -> (
        match snd.s_held with
        | None -> snd.s_held <- Some data
        | Some h ->
            (* One frame held at a time; a second hold releases the first
               in arrival order. *)
            write h;
            snd.s_held <- Some data)
  end

(* A held frame that nothing overtook must not outlive the send burst:
   release it before blocking on the next read, so reordering is bounded
   and never a stall. *)
let flush_held snd =
  match snd.s_held with
  | None -> true
  | Some h -> (
      snd.s_held <- None;
      match
        output_string snd.s_oc h;
        flush snd.s_oc
      with
      | () -> true
      | exception (Sys_error _ | Unix.Unix_error _) -> false)

(* Ship the metric delta since the last successful ship. Best-effort by
   design: a failed write leaves [t_prev] alone so the increments travel
   with the next frame instead. *)
let ship_telemetry tele snd =
  let cur = Obs.Metrics.snapshot tele.t_registry in
  match Obs.Metrics.to_delta ~prev:tele.t_prev cur with
  | [] -> ()
  | delta -> (
      match send_frame snd (Wire.Telemetry delta) with
      | () -> tele.t_prev <- cur
      | exception (Sys_error _ | Unix.Unix_error _) -> ())

(* Heartbeats ride the replay's poison hook: every [hb_poll_steps]
   interposed calls, if [hb_interval] elapsed, send one [hb] line (plus
   any accumulated telemetry delta). The hook answers false — a worker is
   never externally poisoned; cancellation is the coordinator closing the
   connection, which the next write notices. *)
let hb_poll_steps = 4096
let hb_interval = 0.25

type hb = {
  snd : sender;
  mutable polls : int;
  mutable last : float;
  tele : telemetry;
}

let heartbeat hb () =
  hb.polls <- hb.polls + 1;
  if hb.polls land (hb_poll_steps - 1) = 0 then begin
    let now = Unix.gettimeofday () in
    if now -. hb.last > hb_interval then begin
      hb.last <- now;
      (* An injected sever raises here mid-replay; swallowing it is right —
         the replay finishes, the stash is taken, and the next flush
         notices the dead socket and redials with the frame intact. *)
      (try send_frame hb.snd Wire.Heartbeat
       with Sys_error _ | Unix.Unix_error _ -> ());
      ship_telemetry hb.tele hb.snd
    end
  end;
  false

let run_item ~(r : resolved) ~hb ~metrics (it : Checkpoint.item) : Wire.run_result
    =
  let decisions = it.Checkpoint.prefix @ [ it.Checkpoint.choice ] in
  let key = Checkpoint.schedule_key decisions in
  let plan = Decisions.of_decisions ~np:r.np decisions in
  let timeouts = ref 0 in
  let retries = ref 0 in
  let transients = ref 0 in
  let outcome =
    Executor.run_attempts ~rb:r.rb ~runner:r.runner ~worker:0 ~metrics
      ~need_poison:true ~external_poison:(heartbeat hb)
      ~abort_retries:(fun () -> false)
      ~wrap:(fun ~attempt:_ f -> f ())
      ~on_event:(function
        | Executor.Timed_out -> incr timeouts
        | Executor.Retried -> incr retries
        | Executor.Transient_fault -> incr transients
        | Executor.Attempt_wall _ | Executor.Cancelled -> ())
      ~key plan
      ~fork_index:(List.length decisions - 1)
  in
  let payload =
    match outcome with
    | Executor.Completed record ->
        (* Expansion is prune-aware: the leased item's sleep set travels
           with it, so suppression decisions match the coordinator's
           in-process pool exactly. *)
        let exp =
          Prune.expand ~prune:r.prune ~sleep:it.Checkpoint.sleep
            ~plan_decisions:decisions
            (List.map Epoch.summarize record.Report.new_epochs)
        in
        Some
          {
            Wire.vtime = record.Report.makespan;
            bounded =
              List.length
                (List.filter
                   (fun (e : Epoch.t) -> not e.Epoch.expandable)
                   record.Report.new_epochs);
            pruned = exp.Prune.suppressed;
            errors = record.Report.run_errors;
            children = exp.Prune.items;
          }
    | Executor.Gave_up | Executor.Poisoned ->
        (* Poisoned is unreachable (the external poison always answers
           false); treat it like an exhausted watchdog defensively. *)
        None
  in
  { Wire.key; payload; timeouts = !timeouts; retries = !retries;
    transients = !transients }

let serve ?auth ?session ?telemetry:tele ~resolve fd =
  let sess = match session with Some s -> s | None -> make_session () in
  (* The worker's metric shard is process-local (registry of one shard);
     canonical counters travel in result deltas, while the registry's own
     series (runtime, executor) ship as advisory telemetry frames. *)
  let tele =
    match tele with
    | Some t -> t
    | None -> telemetry (Obs.Metrics.create ~shards:1 ())
  in
  let old_pipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  Fun.protect ~finally:(fun () ->
      (match old_pipe with
      | Some h -> (
          try Sys.set_signal Sys.sigpipe h
          with Invalid_argument _ | Sys_error _ -> ())
      | None -> ());
      try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  sess.conns <- sess.conns + 1;
  let snd = make_sender fd oc in
  (* A write can fail because the coordinator already said its goodbye and
     closed — a drained run shuts down the instant the frontier empties,
     racing our hello/ready/results. The farewell is still sitting in the
     receive buffer, and reading cannot block (the peer is gone, so EOF
     follows the buffered bytes). Without this drain a [`Listen] worker
     would treat a completed run as a lost coordinator and wait forever. *)
  let disconnected () =
    let rec drain () =
      match Wire.read_to_worker ic with
      | Ok Wire.Shutdown -> `Shutdown
      | Ok _ -> drain ()
      | Error _ -> `Disconnected
      | exception (Sys_error _ | Unix.Unix_error _ | End_of_file) ->
          `Disconnected
    in
    drain ()
  in
  let hb = { snd; polls = 0; last = Unix.gettimeofday (); tele } in
  let metrics = Some (Obs.Metrics.shard tele.t_registry 0) in
  let id = Printf.sprintf "pid%d" (Unix.getpid ()) in
  (* Re-send the unacknowledged frame from a previous incarnation, tagged
     with its grant-time epoch. The coordinator either still holds that
     lease (it resumes: the frame is counted, exactly once) or has fenced
     this session (the frame is discarded). Either way the coordinator has
     settled the lease once the write went through, so the stash clears. *)
  let flush_pending () =
    match sess.pending with
    | None -> true
    | Some p -> (
        match
          send_frame snd
            (Wire.Results
               { epoch = p.p_epoch; lease_id = p.p_lease_id; runs = p.p_runs })
        with
        | () ->
            sess.pending <- None;
            true
        | exception (Sys_error _ | Unix.Unix_error _) -> false)
  in
  match
    send_frame snd
      (Wire.Hello
         {
           proto = Wire.proto_version;
           id;
           session = sess.id;
           epoch = sess.epoch;
           pending = Option.map (fun p -> p.p_lease_id) sess.pending;
           role = None;
         })
  with
  | exception (Sys_error _ | Unix.Unix_error _) -> disconnected ()
  | () ->
      let rec loop (r : resolved option) =
        (* Bounded reorder: anything still held back must go out before we
           block waiting on the coordinator. *)
        if not (flush_held snd) then disconnected ()
        else
        match Wire.read_to_worker ic with
        | Error e ->
            Log.debug (fun m -> m "session over: %s" e);
            `Disconnected
        | Ok (Wire.Challenge nonce) -> (
            let secret = Option.value auth ~default:"" in
            match
              send_frame snd
                (Wire.Auth (Wire.auth_mac ~secret ~nonce ~session:sess.id))
            with
            | () -> loop r
            | exception (Sys_error _ | Unix.Unix_error _) -> disconnected ())
        | Ok (Wire.Welcome { epoch }) ->
            (* An epoch differing from ours means any stale state we hold
               (the pending stash aside — its frame carries its own grant
               epoch and gets fenced server-side) is history. *)
            sess.epoch <- epoch;
            loop r
        | Ok (Wire.Reject { proto; reason }) ->
            Log.err (fun m ->
                m "coordinator (proto=%d) rejected us: %s" proto reason);
            `Rejected reason
        | Ok (Wire.Progress _) ->
            (* Progress frames are observer fare; a worker receiving one
               (a confused coordinator) just ignores it. *)
            loop r
        | Ok Wire.Detach ->
            Log.info (fun m -> m "coordinator detached; session over");
            `Disconnected
        | Ok Wire.Shutdown -> `Shutdown
        | Ok (Wire.Job job) -> (
            match resolve job with
            | Ok r -> (
                (* The chaos spec arrives with the job, so the handshake up
                   to here always went out clean; from Ready on, this
                   connection injects under a salt that redraws per redial
                   (fresh schedule ⇒ eventual convergence). *)
                (match r.rb.Executor.net_fault with
                | Some ns when not (Mpi.Fault.Net.wire_inert ns) ->
                    let sh = Obs.Metrics.shard tele.t_registry 0 in
                    let count kind =
                      Obs.Metrics.incr
                        (Obs.Metrics.counter sh ("net_fault." ^ kind))
                    in
                    snd.s_net <-
                      Mpi.Fault.Net.make ~on_inject:count ns
                        ~salt:(Hashtbl.hash (sess.id, sess.conns))
                | _ -> ());
                match send_frame snd Wire.Ready with
                | () ->
                    if flush_pending () then loop (Some r) else disconnected ()
                | exception (Sys_error _ | Unix.Unix_error _) ->
                    disconnected ())
            | Error reason ->
                Log.err (fun m -> m "cannot resolve job: %s" reason);
                (try send_frame snd (Wire.Failed reason)
                 with Sys_error _ | Unix.Unix_error _ -> ());
                (* Redialling cannot fix an unresolvable job; end cleanly. *)
                `Shutdown)
        | Ok (Wire.Lease { lease_id; items }) -> (
            match r with
            | None ->
                (try send_frame snd (Wire.Failed "lease before job")
                 with Sys_error _ | Unix.Unix_error _ -> ());
                `Shutdown
            | Some rr ->
                let runs = List.map (run_item ~r:rr ~hb ~metrics) items in
                (* Stash before sending: if the write dies part-way the
                   next session re-delivers the whole frame. Telemetry for
                   these replays ships first, so a drain right after the
                   final results frame cannot strand their metrics. *)
                sess.pending <-
                  Some { p_epoch = sess.epoch; p_lease_id = lease_id;
                         p_runs = runs };
                ship_telemetry tele snd;
                if flush_pending () then loop r else disconnected ())
      in
      loop None

(* ---- standalone worker entry points ---- *)

let sigterm_seen = Atomic.make false

let dial sa =
  let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
  match Unix.connect fd sa with
  | () -> `Connected fd
  | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED) as e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      `Gone e
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      `Err (Unix.error_message e)

let serve_addr ?auth ?session ?telemetry:tele ?(reconnect = default_reconnect)
    ?stop ~resolve mode =
  let sess = match session with Some s -> s | None -> make_session () in
  (* One registry across every (re)connection of this worker, so the
     shipped deltas stay monotone over reconnects. *)
  let tele =
    match tele with
    | Some t -> t
    | None -> telemetry (Obs.Metrics.create ~shards:1 ())
  in
  let stopping () =
    Atomic.get sigterm_seen
    || match stop with Some f -> f () | None -> false
  in
  (* Deterministic jitter: same (seed, session) always sleeps the same
     schedule, so reconnect tests are reproducible. *)
  let rng =
    Sim.Splitmix.derive reconnect.seed ~salt:(Hashtbl.hash sess.id)
  in
  let delay attempt =
    let base = reconnect.backoff *. (2.0 ** float_of_int attempt) in
    min 5.0 base *. (0.5 +. Sim.Splitmix.float rng 1.0)
  in
  match mode with
  | `Connect addr -> (
      let sa = Wire.sockaddr_of_addr addr in
      let rec go attempt ever_connected =
        if stopping () then Ok ()
        else
          match dial sa with
          | `Connected fd -> (
              match serve ?auth ~session:sess ~telemetry:tele ~resolve fd with
              | `Shutdown -> Ok ()
              | `Rejected reason ->
                  Error ("rejected by coordinator: " ^ reason)
              | `Disconnected ->
                  if reconnect.max_redials <= 0 then Ok ()
                  else begin
                    (* Fresh failure streak: the dial worked, so count
                       redials from here. *)
                    Unix.sleepf (delay 0);
                    go 1 true
                  end)
          | `Gone e ->
              if (not ever_connected) && attempt = 0 then begin
                (* A coordinator that already drained its frontier closes
                   and unlinks its socket before late workers arrive;
                   joining a finished run is a no-op, not an error. *)
                Log.info (fun m ->
                    m "coordinator at %s already gone (%s); nothing to do"
                      (Wire.addr_to_string addr) (Unix.error_message e));
                Ok ()
              end
              else if attempt >= reconnect.max_redials then begin
                Log.warn (fun m ->
                    m "giving up on %s after %d redial(s)"
                      (Wire.addr_to_string addr) attempt);
                Ok ()
              end
              else begin
                Unix.sleepf (delay attempt);
                go (attempt + 1) ever_connected
              end
          | `Err msg ->
              Error
                (Printf.sprintf "cannot connect to %s: %s"
                   (Wire.addr_to_string addr) msg)
      in
      go 0 false)
  | `Listen addr -> (
      let sa = Wire.sockaddr_of_addr addr in
      let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
      (match addr with
      | Wire.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
      | Wire.Unix_sock p -> ( try Unix.unlink p with Unix.Unix_error _ -> ()));
      (* The CLI worker runs standalone, so claiming the process SIGTERM
         handler is fine there; embedded callers pass [stop] instead and
         keep their handlers. *)
      let old_term =
        match stop with
        | Some _ -> None
        | None -> (
            try
              Some
                (Sys.signal Sys.sigterm
                   (Sys.Signal_handle (fun _ -> Atomic.set sigterm_seen true)))
            with Invalid_argument _ | Sys_error _ -> None)
      in
      let cleanup () =
        (match old_term with
        | Some h -> (
            try Sys.set_signal Sys.sigterm h
            with Invalid_argument _ | Sys_error _ -> ())
        | None -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ());
        match addr with
        | Wire.Unix_sock p -> (
            try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
        | Wire.Tcp _ -> ()
      in
      match
        Unix.bind fd sa;
        Unix.listen fd 4
      with
      | exception Unix.Unix_error (e, _, _) ->
          cleanup ();
          Error
            (Printf.sprintf "cannot listen on %s: %s"
               (Wire.addr_to_string addr) (Unix.error_message e))
      | () ->
          (* Serve successive coordinator sessions on one persistent
             session identity — a coordinator restarted from a checkpoint
             dials back in, and the carried-over pending/epoch state is
             exactly what exercises lease resumption and fencing. *)
          let rec accept_loop () =
            if stopping () then Ok ()
            else begin
              let readable, _, _ =
                try Unix.select [ fd ] [] [] 0.2
                with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
              in
              if readable = [] then accept_loop ()
              else
                match Unix.accept fd with
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
                | exception Unix.Unix_error _ -> accept_loop ()
                | afd, _ -> (
                    match
                      serve ?auth ~session:sess ~telemetry:tele ~resolve afd
                    with
                    | `Shutdown -> Ok ()
                    | `Rejected reason ->
                        Error ("rejected by coordinator: " ^ reason)
                    | `Disconnected -> accept_loop ())
            end
          in
          let r = accept_loop () in
          cleanup ();
          r)
