(** The distributed mode's line-oriented wire protocol.

    A coordinator (the process running {!Explorer.explore}) speaks to
    worker processes ({!Remote_worker}) over Unix-domain or TCP sockets.
    Every message is one line of whitespace-delimited fields — free-form
    text travels percent-encoded via {!Checkpoint.enc} — except leases and
    result deltas, which are multi-line frames with a declared element
    count and a closing [end] line, reusing {!Checkpoint}'s item, schedule,
    and error encodings verbatim.

    Conversation, worker-initiated after connect:
    {v
      worker: hello proto=1 id=<enc>
      coord:  job <key>=<enc-value> ...
      worker: ready                      (or: fail <enc reason>)
      coord:  lease <id> <n> / n x item ... / end
      worker: hb                         (heartbeats, during long replays)
      worker: results <id> <n> / n x run-groups / end
      ...                                (more leases)
      coord:  shutdown
    v}

    A worker that disconnects, fails, or goes silent past the heartbeat
    timeout forfeits its outstanding lease; the coordinator re-leases those
    items to another worker. Results are ingested only as complete frames,
    so a re-leased item is never double-counted. *)

val proto_version : int

(** {2 Addresses} *)

type addr =
  | Unix_sock of string  (** [unix:/path/to.sock] *)
  | Tcp of string * int  (** [tcp:host:port] *)

val addr_of_string : string -> (addr, string) result
val addr_to_string : addr -> string
val sockaddr_of_addr : addr -> Unix.sockaddr

(** {2 Job description}

    What a worker needs to reconstruct the runner: an opaque workload name
    plus free-form parameters, both sides interpreted by the CLI's (or the
    test harness's) resolve function — the protocol does not constrain
    them. *)

type job = { workload : string; np : int; params : (string * string) list }

(** {2 Messages} *)

(** One leased item's outcome, as shipped back by a worker. *)
type run_result = {
  key : string;  (** {!Checkpoint.item_key} of the leased item *)
  payload : run_payload option;  (** [None]: every attempt hit the watchdog *)
  timeouts : int;  (** attempts the watchdog cut *)
  retries : int;  (** re-attempts after timeouts or transient faults *)
  transients : int;  (** injected-fault crashes absorbed by retries *)
}

and run_payload = {
  vtime : float;  (** virtual makespan (exact: hex-float on the wire) *)
  bounded : int;  (** non-expandable epochs this replay produced *)
  errors : Report.error list;
  children : Checkpoint.item list;
}

type to_worker =
  | Job of job
  | Lease of { lease_id : int; items : Checkpoint.item list }
  | Shutdown

type to_coord =
  | Hello of { proto : int; id : string }
  | Ready
  | Heartbeat
  | Results of { lease_id : int; runs : run_result list }
  | Failed of string

(** {2 Writing} *)

val write_to_worker : out_channel -> to_worker -> unit
(** Writes the full frame and flushes. *)

val write_to_coord : out_channel -> to_coord -> unit

(** {2 Reading}

    The worker side blocks on a single coordinator connection and reads
    whole frames. The coordinator side is select-driven, so it feeds raw
    bytes into a per-connection assembler that yields complete messages as
    they close. *)

val read_to_worker : in_channel -> (to_worker, string) result
(** Blocking read of one coordinator frame. [Error] on malformed input or
    EOF. *)

type assembler

val assembler : unit -> assembler

val feed : assembler -> bytes -> int -> (to_coord, string) result list
(** [feed a buf n] consumes [n] bytes read from a worker's socket and
    returns every message completed by them, in order. A malformed line or
    frame yields [Error] (the coordinator drops the worker). *)
