(** The distributed mode's line-oriented wire protocol (proto=2).

    A coordinator (the process running {!Explorer.explore}) speaks to
    worker processes ({!Remote_worker}) over Unix-domain or TCP sockets.
    Every message is one line of whitespace-delimited fields — free-form
    text travels percent-encoded via {!Checkpoint.enc} — except leases and
    result deltas, which are multi-line frames with a declared element
    count and a closing [end] line, reusing {!Checkpoint}'s item, schedule,
    and error encodings verbatim.

    Conversation, worker-initiated after connect:
    {v
      worker: hello proto=2 id=<enc> session=<enc> epoch=<n> [pending=<id>]
      coord:  challenge <nonce>          (only when --auth-token is set)
      worker: auth <hmac>
      coord:  welcome epoch=<n>          (or: reject proto=2 <enc reason>)
      coord:  job <key>=<enc-value> ...
      worker: ready                      (or: fail <enc reason>)
      coord:  lease <id> <n> / n x item ... / end
      worker: hb                         (heartbeats, during long replays)
      worker: telemetry <n> / n x t <name> <sample> / end   (optional)
      worker: results <epoch> <id> <n> / n x run-groups / end
      ...                                (more leases)
      coord:  shutdown                   (exploration complete: exit)
              — or —
      coord:  detach                     (session over, run continues:
                                          redial / keep listening)
    v}

    {b Sessions and fencing.} A worker identifies itself by a stable
    session id that survives reconnects. Each (re)admission of a session
    is stamped with a monotonically increasing {e fencing epoch}, granted
    by the coordinator in [welcome] and echoed by the worker on every
    [results] frame. A worker that reconnects while its previous lease is
    still intact (same epoch, [pending=] names that lease) resumes it;
    any other reconnect gets a fresh epoch, and results frames carrying a
    stale epoch — a fenced zombie flushing work the coordinator already
    re-leased — are read to completion and discarded, preserving
    exactly-once counting across crashes and restarts.

    {b Version negotiation.} A [hello] with [proto<>2] is answered with a
    one-line [reject proto=2 <reason>] and the connection is closed — old
    peers get a versioned refusal, not a hang. The assembler therefore
    parses proto=1 hellos leniently (empty session, epoch 0).

    A worker that disconnects, fails, or goes silent past the heartbeat
    timeout forfeits its outstanding lease once the rejoin grace period
    expires; the coordinator re-leases those items to another worker.
    Results are ingested only as complete, current-epoch frames, so a
    re-leased item is never double-counted. *)

val proto_version : int

(** {2 Addresses} *)

type addr =
  | Unix_sock of string  (** [unix:/path/to.sock] *)
  | Tcp of string * int  (** [tcp:host:port] *)

val addr_of_string : string -> (addr, string) result
val addr_to_string : addr -> string
val sockaddr_of_addr : addr -> Unix.sockaddr

(** {2 Authentication}

    An HMAC-style challenge/response over a shared secret loaded from a
    file ([--auth-token FILE] on both sides). The MAC is HMAC-MD5 built
    on the stdlib [Digest] — this keeps strangers and misconfigured peers
    off a cross-host TCP coordinator; it is an authentication handshake,
    not transport encryption, and MD5 is not a defence against a
    determined cryptanalyst. The challenge nonce is fresh per connection;
    the response covers both the nonce and the claimed session id so a
    captured response cannot be replayed for another session. *)

val hmac : secret:string -> string -> string
(** [hmac ~secret msg] is the hex HMAC-MD5 of [msg] under [secret]. *)

val auth_mac : secret:string -> nonce:string -> session:string -> string
(** The response a worker sends to a [challenge]. *)

val gen_nonce : unit -> string
(** A fresh unpredictable-enough hex nonce (time/pid/counter seeded). *)

val load_token : string -> (string, string) result
(** [load_token path] reads and trims the shared secret from [path].
    [Error] on unreadable or empty files. *)

(** {2 Job description}

    What a worker needs to reconstruct the runner: an opaque workload name
    plus free-form parameters, both sides interpreted by the CLI's (or the
    test harness's) resolve function — the protocol does not constrain
    them. *)

type job = { workload : string; np : int; params : (string * string) list }

(** {2 Messages} *)

(** One leased item's outcome, as shipped back by a worker. *)
type run_result = {
  key : string;  (** {!Checkpoint.item_key} of the leased item *)
  payload : run_payload option;  (** [None]: every attempt hit the watchdog *)
  timeouts : int;  (** attempts the watchdog cut *)
  retries : int;  (** re-attempts after timeouts or transient faults *)
  transients : int;  (** injected-fault crashes absorbed by retries *)
}

and run_payload = {
  vtime : float;  (** virtual makespan (exact: hex-float on the wire) *)
  bounded : int;  (** non-expandable epochs this replay produced *)
  pruned : int;
      (** alternatives the sleep-set analysis suppressed at expansion *)
  errors : Report.error list;
  children : Checkpoint.item list;
}

type to_worker =
  | Challenge of string  (** auth nonce; reply with [Auth] *)
  | Welcome of { epoch : int }  (** admission + fencing epoch grant *)
  | Reject of { proto : int; reason : string }
      (** refusal (version or auth); [proto] is what the coordinator
          speaks. The connection closes after this line. *)
  | Job of job
  | Lease of { lease_id : int; items : Checkpoint.item list }
  | Progress of (string * string) list
      (** periodic aggregate progress, streamed to [role=observer]
          connections ([dampi top]): a [top <n>] frame of percent-encoded
          key/value pairs. Never sent to workers. *)
  | Detach
      (** this session is over but the exploration is not (coordinator
          interrupted or erroring out): reconnecting later may succeed *)
  | Shutdown  (** exploration complete: the worker should exit *)

type to_coord =
  | Hello of {
      proto : int;
      id : string;
      session : string;  (** stable across reconnects; fresh = new worker *)
      epoch : int;  (** last granted fencing epoch (0 = never admitted) *)
      pending : int option;
          (** lease id of an unacknowledged results frame the worker still
              holds, if any — the coordinator uses it to decide between
              resuming the lease and fencing *)
      role : string option;
          (** [Some "observer"]: a read-only client ([dampi top]) that
              receives [Progress] frames and no leases. [None] (the
              default, and what older peers send) means worker. *)
    }
  | Auth of string  (** response to [Challenge] *)
  | Ready
  | Heartbeat
  | Telemetry of (string * Obs.Metrics.sample) list
      (** metric deltas ({!Obs.Metrics.to_delta}) shipped piggybacked on
          heartbeats and ahead of results frames. Advisory: malformed
          samples are skipped and corrupt or truncated frames dropped
          whole by the assembler — telemetry never poisons a
          connection. *)
  | Results of { epoch : int; lease_id : int; runs : run_result list }
  | Failed of string

(** {2 Writing} *)

val to_worker_string : to_worker -> string
(** The full serialized frame (newline-terminated, possibly multi-line).
    Exposed so the chaos layer can drop/duplicate/corrupt/truncate whole
    frames at the send boundary. *)

val to_coord_string : to_coord -> string

val write_to_worker : out_channel -> to_worker -> unit
(** Writes the full frame and flushes. *)

val write_to_coord : out_channel -> to_coord -> unit

(** {2 Reading}

    The worker side blocks on a single coordinator connection and reads
    whole frames. The coordinator side is select-driven, so it feeds raw
    bytes into a per-connection assembler that yields complete messages as
    they close. *)

val default_max_line : int
(** Default cap on the bytes a single unterminated line may buffer
    (65536). A peer that streams data without a ['\n'] is cut off once
    its partial line passes this bound instead of growing the assembler
    without limit. *)

(** Incremental, bounded line splitting — the byte-level layer under
    {!assembler}, exposed so other line-oriented select loops
    ({!Serve}) share the same backpressure discipline. *)
module Lines : sig
  type t

  val create : ?limit:int -> unit -> t
  (** [create ?limit ()] is a fresh splitter capping unterminated input
      at [limit] bytes (default {!default_max_line}, floor 1). *)

  val limit : t -> int

  val feed : t -> bytes -> int -> string list * bool
  (** [feed t buf n] consumes [n] bytes and returns the lines they
      complete (without ['\n']), in order, plus an overflow flag. The
      flag is [true] once the buffered unterminated remainder exceeds
      the cap: the splitter is then dead — its buffer is dropped and
      every later feed yields [([], true)]. Callers should answer with
      one error and close the connection. *)
end

val read_to_worker : in_channel -> (to_worker, string) result
(** Blocking read of one coordinator frame. [Error] on malformed input or
    EOF. *)

type assembler

val assembler : unit -> assembler

val feed : assembler -> bytes -> int -> (to_coord, string) result list
(** [feed a buf n] consumes [n] bytes read from a worker's socket and
    returns every message completed by them, in order. A malformed line or
    frame yields [Error] (the coordinator drops the worker) — except
    telemetry, which is dropped silently (see {!to_coord.Telemetry}). An
    unterminated line past {!default_max_line} bytes yields a final
    [Error] after any completed messages; the assembler is dead from then
    on and the caller should close the connection. *)
