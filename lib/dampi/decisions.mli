(** Epoch Decisions (§II-B, §II-E of the paper).

    Between replays the schedule generator emits the set of match decisions
    to force: for each process, wildcard events up to its guided epoch are
    determinized to a recorded source, after which the process reverts to
    SELF_RUN. A {!plan} is the in-memory form of the paper's "Epoch
    Decisions file"; {!save}/{!load} give it the on-disk form. *)

type decision = {
  owner : int;  (** world pid *)
  epoch_id : int;  (** scalar clock identifying the epoch *)
  src : int;  (** communicator rank to force as the match *)
  kind : Epoch.kind;
}

type plan = {
  decisions : decision list;
      (** in global completion order of the parent run *)
  by_key : (int * int, decision) Hashtbl.t;
  guided_epoch : int array;  (** per owner; -1 when nothing is forced *)
}

val empty : np:int -> plan
val of_decisions : np:int -> decision list -> plan
val length : plan -> int
val is_empty : plan -> bool

val forced_src : plan -> owner:int -> epoch_id:int -> kind:Epoch.kind -> int option
(** [GetSrcFromEpoch] of Algorithm 1. The event kind must agree: a failed
    probe does not tick the clock, so a probe and a receive can share a
    clock value. *)

val in_guided_window : plan -> owner:int -> epoch_id:int -> bool
val decision_of_epoch : Epoch.t -> src:int -> decision

(** {1 Independence} *)

val compare_decision : decision -> decision -> int
(** Canonical total order: owner, then epoch id, then source, then kind. *)

val commutes : decision -> decision -> bool
(** Two decisions commute when they govern different (owner, epoch) keys:
    plans built from either order force identically. Decisions on the same
    epoch conflict (the later one wins {!forced_src}) and never commute. *)

val normal_form : plan -> decision list
(** The order-insensitive identity of a plan's decision set (sorted,
    deduplicated). [commutes]-related reorderings share a normal form. *)

(** {1 Schedule files} *)

val kind_to_string : Epoch.kind -> string
val kind_of_string : string -> Epoch.kind option

val to_string : plan -> string
val of_string : string -> (plan, string) result
val save : plan -> string -> unit
val load : string -> (plan, string) result

(** {1 Printing} *)

val pp_decision : Format.formatter -> decision -> unit
val pp : Format.formatter -> plan -> unit
