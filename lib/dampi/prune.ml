(* Sleep-set / independence pruning over match decisions (the DPOR idea
   ISP's POE descends from), plus the frontier admission filter that hoists
   the report layer's duplicate-schedule detection into the enqueue paths.
   See prune.mli for the soundness argument. *)

(* ---- independence ---- *)

(* The communicator ranks an epoch's match choice can involve: the owner,
   the observed match, and every alternate source. *)
let ranks (s : Epoch.summary) =
  s.Epoch.s_owner :: s.Epoch.s_matched :: s.Epoch.s_alternatives

(* Two completed epochs have disjoint footprints when re-forcing either
   one cannot change what the other could have matched: same communicator
   (cross-communicator effects are conservatively treated as dependent —
   rank numbering is not comparable across contexts), different owners,
   and no shared rank among {owner, matched, alternatives}. *)
let footprint_disjoint (a : Epoch.summary) (b : Epoch.summary) =
  a.Epoch.s_ctx = b.Epoch.s_ctx
  && a.Epoch.s_owner <> b.Epoch.s_owner
  && not (List.exists (fun r -> List.mem r (ranks b)) (ranks a))

(* ---- expansion ---- *)

let rec take n = function
  | [] -> []
  | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

type expansion = { items : Checkpoint.item list; suppressed : int }

(* The child frontier of a completed replay whose epochs (completion
   order) are [summaries], replayed under [plan_decisions] with inherited
   sleep set [sleep]. With [prune:false] this is exactly the historical
   expansion: one item per unexplored alternative of each expandable
   epoch, deepest epoch first, alternatives ascending, empty sleep sets.

   With [prune:true]:
   - an epoch rediscovered {e unchanged} (structurally equal to a sleep
     element) is not expanded — a sibling subtree already owns its
     alternatives; its would-be children are counted in [suppressed];
   - the children that do expand epoch [e_i] inherit the sleep elements
     disjoint from [e_i], plus every {e deeper} sibling epoch [e_j]
     (j > i) disjoint from [e_i] — under the LIFO depth-first order the
     [e_j] flips run first, so by the time an [e_i] child rediscovers
     [e_j] unchanged, [e_j]'s alternatives are covered. Shallower
     siblings are already forced in the child's prefix and can never be
     rediscovered, so carrying them would be dead weight. *)
let expand ~prune ~sleep ~plan_decisions summaries =
  let observed =
    List.map
      (fun (s : Epoch.summary) ->
        {
          Decisions.owner = s.Epoch.s_owner;
          epoch_id = s.Epoch.s_id;
          src = s.Epoch.s_matched;
          kind = s.Epoch.s_kind;
        })
      summaries
  in
  let arr = Array.of_list summaries in
  let suppressed = ref 0 in
  let batches =
    List.mapi
      (fun i (s : Epoch.summary) ->
        if not s.Epoch.s_expandable then []
        else if prune && List.exists (Epoch.summary_equal s) sleep then begin
          suppressed := !suppressed + List.length s.Epoch.s_alternatives;
          []
        end
        else
          let child_sleep =
            if not prune then []
            else begin
              let kept = List.filter (fun z -> footprint_disjoint z s) sleep in
              let deeper = ref [] in
              for j = Array.length arr - 1 downto i + 1 do
                if arr.(j).Epoch.s_expandable && footprint_disjoint arr.(j) s
                then deeper := arr.(j) :: !deeper
              done;
              kept @ !deeper
            end
          in
          List.map
            (fun alt ->
              {
                Checkpoint.prefix = plan_decisions @ take i observed;
                choice =
                  {
                    Decisions.owner = s.Epoch.s_owner;
                    epoch_id = s.Epoch.s_id;
                    src = alt;
                    kind = s.Epoch.s_kind;
                  };
                sleep = child_sleep;
              })
            s.Epoch.s_alternatives)
      summaries
  in
  { items = List.concat (List.rev batches); suppressed = !suppressed }

(* ---- frontier admission (duplicate-schedule dedup) ---- *)

module Seen = struct
  type t = { keys : (string, unit) Hashtbl.t; m : Mutex.t }

  let create () = { keys = Hashtbl.create 256; m = Mutex.create () }

  let admit t item =
    let key = Checkpoint.item_key item in
    Mutex.lock t.m;
    let fresh = not (Hashtbl.mem t.keys key) in
    if fresh then Hashtbl.add t.keys key ();
    Mutex.unlock t.m;
    fresh

  let forget t item =
    let key = Checkpoint.item_key item in
    Mutex.lock t.m;
    Hashtbl.remove t.keys key;
    Mutex.unlock t.m
end
