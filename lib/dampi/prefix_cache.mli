(** Memoized replay artifacts keyed by schedule, with an LRU byte budget.

    Ranks are effect-based coroutines ({!Sim.Coroutine}) whose one-shot
    continuations cannot be snapshotted, so "prefix resume" here does not
    freeze a half-run program. Instead it leans on the property the whole
    verifier is built on: guided replay is {e deterministic}, so the
    complete artifact of a schedule — epoch summaries, errors, makespan,
    wildcard count — is a pure function of its {!Checkpoint.schedule_key}.
    The cache memoizes those artifacts; a hit skips the replay outright
    (the entry suffices both for counting the run and for expanding its
    children via {!Prune.expand}), and on a miss the deepest cached prefix
    is recorded as the depth a snapshot-based scheme would have resumed
    from ([cache.resume_depth]).

    The big win is resume: {!Explorer} persists the cache as a sidecar
    next to the checkpoint, so re-running expand-only work after a restart
    becomes pure cache hits.

    Thread-safe (internal mutex); metric writes happen under it, so give
    the cache its own {!Obs.Metrics} shard. *)

type entry = {
  vtime : float;  (** simulated makespan of the replay *)
  wildcards : int;  (** wildcard receives observed *)
  errors : Report.error list;  (** errors this schedule exposes *)
  epochs : Epoch.summary list;  (** completed epochs, in completion order *)
}

val entry_of_record : Report.run_record -> entry

val bounded : entry -> int
(** Epochs completed but not expandable (depth/alternative-bounded) — the
    per-run delta {!Explorer} feeds its coverage counters. *)

type t

val default_budget_bytes : int
(** 64 MiB — what a bare [--prefix-cache] means. *)

val create :
  ?metrics:Obs.Metrics.shard -> ?label:string -> budget_bytes:int -> unit -> t
(** [metrics] gains [cache.hits], [cache.misses], [cache.evictions],
    [cache.bytes] (gauge), and the [cache.resume_depth] histogram.

    [label] (default [""]) is the workload+config identity — the checkpoint
    label. Schedule keys carry no workload in them, so sidecar loads are
    refused unless the stored label matches: a stale sidecar from another
    workload must cost warmth, never correctness. *)

val find : t -> Decisions.decision list -> entry option
(** Lookup by full schedule; refreshes LRU recency and records hit/miss
    plus the resumed-depth observation. *)

val add : t -> Decisions.decision list -> entry -> unit
(** Insert (refreshes recency if present — replays are deterministic, so
    a re-add carries the same artifact). An entry's cost is its serialized
    line length; entries are evicted least-recently-used until the budget
    holds, and an entry larger than the whole budget is not admitted. *)

val deepest_prefix : t -> Decisions.decision list -> int
(** Length of the longest cached prefix of [decisions] (0 when none, the
    full length when the schedule itself is cached). *)

val stats : t -> int * int * int * int
(** [(hits, misses, bytes, evictions)]. *)

(** {1 Sidecar persistence}

    A line-oriented text format reusing the {!Checkpoint} codecs.
    {!Explorer} writes it next to the checkpoint (at
    [checkpoint_path ^ ".cache"]) on every checkpoint write and reloads it
    on resume. *)

val to_string : t -> string
val load_into : t -> string -> (unit, string) result

val save : ?fault:(unit -> bool) -> t -> string -> Checkpoint.write_outcome
(** {!Checkpoint.atomic_write} of {!to_string}: tempfile + fsync + rename,
    write failures classified into [Degraded] rather than raised. *)

val load : t -> string -> (unit, string) result
(** [Error] on unreadable file or foreign format; entries on malformed
    lines are skipped (a corrupt sidecar costs warmth, not correctness). *)
