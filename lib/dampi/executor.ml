(* The execution layer under the exploration walk: run context, robustness
   envelope, and the watchdog/retry attempt loop. Shared verbatim by the
   in-process pool and the distributed remote workers, so a replay behaves
   identically wherever it executes. See executor.mli. *)

type checkpoint_cfg = { path : string; every : int; label : string }

type robustness = {
  replay_timeout : float option;
  max_replay_steps : int option;
  max_retries : int;
  retry_backoff : float;
  fault : Mpi.Fault.spec option;
  net_fault : Mpi.Fault.Net.spec option;
  checkpoint : checkpoint_cfg option;
  interrupt_after : int option;
}

let default_robustness =
  {
    replay_timeout = None;
    max_replay_steps = None;
    max_retries = 0;
    retry_backoff = 0.0;
    fault = None;
    net_fault = None;
    checkpoint = None;
    interrupt_after = None;
  }

type run_ctx = {
  worker : int;
  metrics : Obs.Metrics.shard option;
  poison : (unit -> bool) option;
  salt : int;
}

let null_ctx = { worker = 0; metrics = None; poison = None; salt = 0 }

type runner =
  ctx:run_ctx -> Decisions.plan -> fork_index:int -> Report.run_record

type event =
  | Attempt_wall of float
  | Timed_out
  | Retried
  | Transient_fault
  | Cancelled

type outcome =
  | Completed of Report.run_record
  | Poisoned
  | Gave_up

let run_attempts ~rb ~runner ~worker ~metrics ~need_poison ~external_poison
    ~abort_retries ~wrap ~on_event ~key plan ~fork_index =
  let rec attempt ~n =
    let timed_out = ref false in
    let steps = ref 0 in
    let deadline =
      Option.map (fun s -> Unix.gettimeofday () +. s) rb.replay_timeout
    in
    let poison =
      if not need_poison then None
      else
        Some
          (fun () ->
            if external_poison () then true
            else begin
              incr steps;
              let hit =
                (match rb.max_replay_steps with
                | Some limit -> !steps > limit
                | None -> false)
                ||
                (* The wall check costs a syscall; poll it every 64 steps.
                   The step budget stays exact (deterministic). *)
                match deadline with
                | Some d -> !steps land 63 = 0 && Unix.gettimeofday () > d
                | None -> false
              in
              if hit then timed_out := true;
              hit
            end)
    in
    let ctx =
      { worker; metrics; poison; salt = Mpi.Fault.salt_of_schedule ~attempt:n key }
    in
    let t0 = Unix.gettimeofday () in
    let record = wrap ~attempt:n (fun () -> runner ~ctx plan ~fork_index) in
    on_event (Attempt_wall (Unix.gettimeofday () -. t0));
    let retry () =
      on_event Retried;
      if rb.retry_backoff > 0.0 then
        (* Capped exponential backoff; pure wall-clock politeness, no effect
           on what the retry explores. *)
        Unix.sleepf
          (Float.min 1.0 (rb.retry_backoff *. Float.pow 2.0 (float_of_int n)));
      attempt ~n:(n + 1)
    in
    if record.Report.cancelled then
      if !timed_out then begin
        on_event Timed_out;
        if n < rb.max_retries && not (abort_retries ()) then retry ()
        else Gave_up
      end
      else begin
        on_event Cancelled;
        Poisoned
      end
    else
      match record.Report.outcome with
      | Sim.Coroutine.Crashed (_, exn, _)
        when Mpi.Fault.is_transient exn
             && n < rb.max_retries
             && not (abort_retries ()) ->
          (* An injected environment fault, not a program bug: retry under a
             fresh salt. Once retries are exhausted the crash is counted and
             recorded like any other (the message names the fault). *)
          on_event Transient_fault;
          retry ()
      | _ -> Completed record
  in
  attempt ~n:0

(* The child frontier of [record]: one item per unexplored alternative of
   each expandable epoch, deepest epoch first and alternatives in ascending
   order. Under a LIFO queue with one worker this visits exactly the same
   depth-first order as the original recursive walk. A pure function of the
   record and the plan, so a remote worker expands children bit-identically
   to the in-process pool. Prune-aware callers use {!Prune.expand}
   directly; this is the unpruned special case. *)
let items_of_record (record : Report.run_record) ~plan_decisions =
  (Prune.expand ~prune:false ~sleep:[] ~plan_decisions
     (List.map Epoch.summarize record.Report.new_epochs))
    .Prune.items

type drive_outcome =
  | Drained
  | Lost of { reason : string; leftover : Checkpoint.item list }

type t = {
  label : string;
  drive : unit -> drive_outcome;
  snapshot : unit -> Checkpoint.item list;
  stats : unit -> Report.worker_stat list;
  fence_epoch : unit -> int;
}
