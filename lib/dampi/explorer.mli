(** The schedule generator and replay driver (Fig. 1, §II-B of the paper).

    After an initial self run, the explorer walks the space of wildcard
    match decisions depth-first — forcing alternatives at the last epoch
    first — re-executing the target program under each Epoch-Decisions plan
    until the space (as bounded by the heuristics) is exhausted. *)

(** Where and how often to checkpoint the exploration frontier. *)
type checkpoint_cfg = Executor.checkpoint_cfg = {
  path : string;
  every : int;
      (** completed replays between periodic writes; 0 writes only on
          interrupt and on completion *)
  label : string;
      (** workload identity stored in the file and validated on resume *)
}

(** Fault-tolerance knobs: replay watchdog, retry policy, fault injection,
    and checkpointing. All off by default. *)
type robustness = Executor.robustness = {
  replay_timeout : float option;
      (** wall-clock budget per replay attempt; a wedged replay is poisoned
          through the same path as [--stop-first] cancellation *)
  max_replay_steps : int option;
      (** deterministic simulated-step budget per replay attempt *)
  max_retries : int;
      (** retries per replay after a timeout or an injected transient fault,
          each under a fresh fault salt, with capped exponential backoff *)
  retry_backoff : float;  (** base backoff in seconds; 0 retries immediately *)
  fault : Mpi.Fault.spec option;
      (** deterministic fault injection for every replay's runtime *)
  net_fault : Mpi.Fault.Net.spec option;
      (** deterministic transport + persistence chaos: wire-level fault
          injection on distributed connections, plus injected ENOSPC on
          checkpoint writes ([write_fail]) *)
  checkpoint : checkpoint_cfg option;
      (** serialize the frontier periodically and on SIGINT/SIGTERM *)
  interrupt_after : int option;
      (** request an interrupt once this many replays completed — a
          deterministic stand-in for a signal, used by tests *)
}

val default_robustness : robustness

type config = {
  state_config : State.config;  (** clocks, piggyback mode, bounding *)
  cost : Mpi.Runtime.cost_model;
  max_runs : int;  (** interleaving budget; [max_int] = exhaustive *)
  check_leaks : bool;
  stop_on_first_error : bool;
      (** stop after the first deadlock/crash finding (cooperative in
          parallel mode: in-flight replays complete, queued work is dropped) *)
  jobs : int;
      (** worker domains running guided replays concurrently; 1 (default)
          keeps the sequential depth-first walk. Every replay is a full
          independent re-execution, so on an exhaustive exploration the
          finding-signature set, interleaving count, and bounded-epoch count
          are identical at any worker count. *)
  trace : bool;
      (** collect a span timeline ([explore] root, one [self-run]/[replay]
          span per execution) into {!Report.t}[.events] *)
  prune : bool;
      (** sleep-set pruning: at every frontier expansion ({!Prune.expand})
          a child whose completed epochs include a sleeping epoch — one
          whose alternatives a sibling subtree with a provably commuting
          ({!Prune.footprint_disjoint}) fork already covers — is not
          expanded, and duplicate schedules are suppressed at the enqueue
          paths. The canonical report (findings, signatures, coverage
          counters modulo runs skipped) is unchanged; [runs_pruned] records
          how much of the tree was cut. Off by default. *)
  prefix_cache : int option;
      (** memoize each schedule's replay artifact ({!Prefix_cache}) under
          this LRU byte budget, so re-discovered schedules — chiefly the
          expand-only re-runs of a resume, warmed from the checkpoint's
          [.cache] sidecar — skip execution entirely. Replay determinism
          makes the memoized artifact indistinguishable from re-executing.
          [None] (default) disables caching. *)
  profile : bool;
      (** the lightweight replay profiler: wall-clock phase-timing
          histograms — [profile.match_loop_s] (runtime match loop),
          [profile.clock_merge_s] (verifier clock merges),
          [profile.sched_wait_s] (pool queue waits), [profile.wire_io_s]
          (coordinator frame I/O) — exported in the same metrics output
          ([--metrics-out], OpenMetrics). Each timed phase costs a clock
          read, so off by default. *)
  progress : ((string * string) list -> unit) option;
      (** live-progress sink, called (throttled, ~2 Hz, under the
          explorer's counting lock — keep it quick) with key/value pairs:
          [runs], [replays_per_s], [frontier], [pruned], [findings],
          [cache.*] when caching, and per-worker [w<i>.runs]. Drives the
          [--progress] ticker; in distributed mode the run-level pairs are
          also appended to the [Progress] frames the coordinator streams
          to observers ([dampi top]). *)
  robustness : robustness;
}

val default_config : config

(** Per-run observability context the explorer threads into its runner: the
    executing worker's id, the metric shard that worker owns (single
    writer), the poison closure the interposition layer polls for in-replay
    cancellation, and the fault salt identifying this (replay, attempt) for
    deterministic injection. *)
type run_ctx = Executor.run_ctx = {
  worker : int;
  metrics : Obs.Metrics.shard option;
  poison : (unit -> bool) option;
  salt : int;
}

val null_ctx : run_ctx
(** Worker 0, no metrics, no poison, salt 0 — for driving a runner
    standalone. *)

type runner = Executor.runner
(** Executes one interleaving under a given plan
    ([ctx:run_ctx -> Decisions.plan -> fork_index:int -> Report.run_record]).
    [fork_index] is the global decision index this run re-forces (-1 for
    the initial self run); bounded mixing measures its window from it. *)

val fault_of_ctx : run_ctx -> Mpi.Fault.spec option -> Mpi.Fault.t
(** The fault instance for one (replay, attempt): the configured spec
    instantiated with the context's salt ({!Mpi.Fault.none} when no spec).
    Shared with the ISP engine so both runners inject identically. *)

val dampi_runner : config -> np:int -> Mpi.Mpi_intf.program -> runner
(** One DAMPI-interposed execution per call: fresh runtime, fresh verifier
    state, program instantiated against the instrumented stack. *)

val native_makespan :
  ?cost:Mpi.Runtime.cost_model -> np:int -> Mpi.Mpi_intf.program -> float
(** Virtual makespan of an uninstrumented run — the overhead baseline. *)

val explore :
  ?config:config ->
  ?resume:Checkpoint.t ->
  ?distribute:Coordinator.setup ->
  ?fallback_local:bool ->
  np:int ->
  runner ->
  Report.t
(** Walk over epoch decisions, generic in the runner (the ISP baseline
    reuses it with its own cost model). With [config.jobs = 1] this is the
    depth-first walk of the paper; with more jobs the frontier is served to
    a pool of domains (see {!Scheduler}), each executing complete guided
    replays.

    [distribute] replaces the in-process pool with a {!Coordinator} that
    leases the frontier to worker processes over sockets; the self run
    still executes locally, counters and findings ingest from wire deltas,
    and — the paper's acceptance bar — an exhaustive distributed
    exploration produces a canonical report identical to [jobs = 1], across
    any sequence of worker loss, reconnection, and coordinator restart
    (exactly-once ingestion is enforced by fencing epochs; see
    {!Coordinator}). Losing every worker flags the run interrupted (the
    frontier is preserved for the checkpoint) and surfaces as a harness
    failure — unless [fallback_local] is set, in which case the leftover
    cut is drained by the in-process pool instead (graceful degradation:
    same canonical report, a loud stderr line, and a
    [coordinator.fallbacks] metric tick).

    When a checkpoint is configured with [every > 0], a distributed run
    also persists the consistent cut about once per second of coordinator
    ticking, so a SIGKILLed coordinator loses at most that much progress;
    [dampi verify --checkpoint F --workers ...] then resumes it, fencing
    every session the dead coordinator had admitted.

    [resume] restores a checkpointed cut instead of starting from the self
    run: counters and findings are seeded from the checkpoint, its frontier
    becomes the initial work queue, and frontier items already counted
    before the cut re-run expand-only. A resumed exhaustive exploration
    reaches the same canonical report as an uninterrupted one. *)

val verify :
  ?config:config ->
  ?resume:Checkpoint.t ->
  ?distribute:Coordinator.setup ->
  ?fallback_local:bool ->
  np:int ->
  Mpi.Mpi_intf.program ->
  Report.t
(** [verify ~np program] — the main entry point: DAMPI verification of
    [program] on [np] simulated ranks. *)

val replay :
  ?config:config ->
  ?metrics:Obs.Metrics.shard ->
  np:int ->
  Mpi.Mpi_intf.program ->
  Decisions.plan ->
  Report.run_record
(** One guided run under a given Epoch-Decisions plan — deterministic
    reproduction of a previously reported finding. [metrics] instruments the
    replay's runtime and verifier state. *)

(**/**)

val errors_of_run :
  check_leaks:bool ->
  outcome:Sim.Coroutine.outcome ->
  leaks:Mpi.Runtime.leak_report ->
  shadow_ctxs:int list ->
  st:State.t ->
  Report.error list
(** Shared with the ISP engine. *)
