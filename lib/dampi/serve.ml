(* Verification-as-a-service daemon. Single-threaded select loop in the
   Coordinator's idiom; every admitted job runs in a forked child so a
   raising (or segfaulting) replay can only ever take down its own
   process — the parent classifies the death from the exit status plus
   whatever final frame the child managed to write, and keeps serving.
   See serve.mli for the protocol and the robustness contract. *)

let src = Obs.Log.src "dampi.serve"

module Log = (val Obs.Log.src_log src : Obs.Log.LOG)

let proto = 1

type on_disconnect = Cancel | Detach

let on_disconnect_of_string = function
  | "cancel" -> Ok Cancel
  | "detach" -> Ok Detach
  | s -> Error (Printf.sprintf "bad on-disconnect %S (cancel|detach)" s)

let on_disconnect_to_string = function Cancel -> "cancel" | Detach -> "detach"

type outcome = Completed of { report : string; code : int } | Checkpointed

type limits = {
  parallel : int;
  max_queue : int;
  max_queue_bytes : int;
  max_client_inflight : int;
  max_line : int;
}

let default_limits =
  {
    parallel = 2;
    max_queue = 32;
    max_queue_bytes = 1 lsl 20;
    max_client_inflight = 4;
    max_line = Wire.default_max_line;
  }

type config = {
  addr : Wire.addr;
  state_dir : string;
  limits : limits;
  validate : (string * string) list -> (string, string) result;
  run :
    ckpt:string ->
    label:string ->
    params:(string * string) list ->
    progress:((string * string) list -> unit) ->
    outcome;
  metrics : Obs.Metrics.shard option;
  ready : (Wire.addr -> unit) option;
}

(* ---- encoding ---- *)

let enc = Checkpoint.enc
let dec = Checkpoint.dec
let fields = String.split_on_char ' '

(* Both sides of '=' travel percent-encoded (submit params are
   client-chosen free text, keys included). *)
let kv_fields parts =
  List.filter_map
    (fun p ->
      match String.index_opt p '=' with
      | Some i ->
          Some
            ( dec (String.sub p 0 i),
              dec (String.sub p (i + 1) (String.length p - i - 1)) )
      | None -> None)
    parts

let fmt_kvs kvs =
  String.concat " " (List.map (fun (k, v) -> enc k ^ "=" ^ enc v) kvs)

let submit_line ~params ~on_disconnect =
  "submit "
  ^ fmt_kvs (params @ [ ("on-disconnect", on_disconnect_to_string on_disconnect) ])

let fetch_line id = Printf.sprintf "fetch %d" id

let error_line reason = Printf.sprintf "error proto=%d %s" proto (enc reason)

(* ---- client side ---- *)

type event =
  | Accepted of int
  | Rejected of string
  | Errored of { proto : int; reason : string }
  | Progress of int * (string * string) list
  | Report of int * string list
  | Done of {
      id : int;
      status : string;
      code : int;
      msg : string;
      backtrace : string;
    }
  | Pending of { id : int; state : string }

let read_line_opt ic =
  try Some (input_line ic) with End_of_file | Sys_error _ -> None

let assoc_int k kvs = Option.bind (List.assoc_opt k kvs) int_of_string_opt

let read_event ic =
  match read_line_opt ic with
  | None -> Error "connection closed"
  | Some line -> (
      match fields line with
      | [ "accepted"; idkv ] -> (
          match assoc_int "id" (kv_fields [ idkv ]) with
          | Some id -> Ok (Accepted id)
          | None -> Error (Printf.sprintf "malformed accepted %S" line))
      | "reject" :: rest -> Ok (Rejected (String.concat " " rest))
      | "error" :: protokv :: rest -> (
          match assoc_int "proto" (kv_fields [ protokv ]) with
          | Some proto ->
              Ok (Errored { proto; reason = dec (String.concat " " rest) })
          | None -> Error (Printf.sprintf "malformed error %S" line))
      | "progress" :: idkv :: rest -> (
          match assoc_int "id" (kv_fields [ idkv ]) with
          | Some id -> Ok (Progress (id, kv_fields rest))
          | None -> Error (Printf.sprintf "malformed progress %S" line))
      | [ "pending"; idkv; statekv ] -> (
          match
            (assoc_int "id" (kv_fields [ idkv ]),
             List.assoc_opt "state" (kv_fields [ statekv ]))
          with
          | Some id, Some state -> Ok (Pending { id; state })
          | _ -> Error (Printf.sprintf "malformed pending %S" line))
      | [ "report"; idkv; n ] -> (
          match (assoc_int "id" (kv_fields [ idkv ]), int_of_string_opt n) with
          | Some id, Some n when n >= 0 -> (
              let rec lines acc k =
                if k = 0 then
                  match read_line_opt ic with
                  | Some "end" -> Ok (List.rev acc)
                  | _ -> Error "report frame not closed by end"
                else
                  match read_line_opt ic with
                  | None -> Error "connection closed mid-report"
                  | Some l -> (
                      match fields l with
                      | [ "l"; e ] -> lines (dec e :: acc) (k - 1)
                      | [ "l" ] -> lines ("" :: acc) (k - 1)
                      | _ -> Error (Printf.sprintf "malformed report line %S" l))
              in
              match lines [] n with
              | Ok ls -> Ok (Report (id, ls))
              | Error e -> Error e)
          | _ -> Error (Printf.sprintf "malformed report header %S" line))
      | "done" :: rest -> (
          let kvs = kv_fields rest in
          match (assoc_int "id" kvs, List.assoc_opt "status" kvs,
                 assoc_int "code" kvs)
          with
          | Some id, Some status, Some code ->
              Ok
                (Done
                   {
                     id;
                     status;
                     code;
                     msg = Option.value (List.assoc_opt "msg" kvs) ~default:"";
                     backtrace =
                       Option.value (List.assoc_opt "backtrace" kvs) ~default:"";
                   })
          | _ -> Error (Printf.sprintf "malformed done %S" line))
      | _ -> Error (Printf.sprintf "unexpected daemon line %S" line))

(* ---- daemon state ---- *)

type client = {
  cid : int;
  cfd : Unix.file_descr;
  coc : out_channel;
  clines : Wire.Lines.t;
  mutable calive : bool;
}

type final = {
  f_status : string;
  f_code : int;
  f_report : string;
  f_msg : string;
  f_bt : string;
}

type child = {
  pid : int;
  rfd : Unix.file_descr;
  plines : Wire.Lines.t;
  mutable final : final option;
  mutable live : bool;
  started : float;
}

type phase = Queued | Running of child

type job = {
  jid : int;
  label : string;
  params : (string * string) list;
  spec_bytes : int;
  mutable ondisc : on_disconnect;
  mutable owner : client option;
  mutable phase : phase;
  mutable cancelling : bool;
}

type jmetrics = {
  m_accepted : Obs.Metrics.counter;
  m_rejected : Obs.Metrics.counter;
  m_completed : Obs.Metrics.counter;
  m_crashed : Obs.Metrics.counter;
  m_cancelled : Obs.Metrics.counter;
  m_wall : Obs.Metrics.histogram;
  m_shard : Obs.Metrics.shard;
}

type t = {
  cfg : config;
  lfd : Unix.file_descr;
  lpath : string option;  (* unix socket to unlink on close *)
  rbuf : Bytes.t;
  m : jmetrics option;
  mutable clients : client list;
  mutable queue : job list;  (* FIFO; head oldest *)
  mutable running : job list;
  parked : (int, unit) Hashtbl.t;  (* report text lives on disk *)
  mutable next_id : int;
  mutable next_cid : int;
  mutable draining : bool;
  term : bool Atomic.t;
  ints : int Atomic.t;
}

let jincr t f = match t.m with Some m -> Obs.Metrics.incr (f m) | None -> ()

let gauge t =
  match t.m with
  | Some m ->
      Obs.Metrics.gauge_set m.m_shard "serve.queue_depth"
        (float_of_int (List.length t.queue))
  | None -> ()

let journal_path state_dir = Filename.concat state_dir "journal"
let report_path state_dir id = Filename.concat state_dir (Printf.sprintf "report-%d" id)

(* Checkpoints key on the canonical label, not the job id: a re-submitted
   workload resumes interrupted work and reuses the prefix-cache sidecar,
   and the same-label-never-concurrent rule below keeps the path unraced. *)
let ckpt_path state_dir label =
  Filename.concat state_dir ("job-" ^ Digest.to_hex (Digest.string label) ^ ".ck")

(* ---- journal ---- *)

let write_journal t =
  let b = Buffer.create 256 in
  Buffer.add_string b "# DAMPI serve journal\nversion 1\n";
  Buffer.add_string b (Printf.sprintf "next %d\n" t.next_id);
  let add_job j =
    Buffer.add_string b
      (Printf.sprintf "job %d %s%s\n" j.jid
         (on_disconnect_to_string j.ondisc)
         (List.fold_left
            (fun acc (k, v) -> acc ^ " " ^ enc k ^ "=" ^ enc v)
            "" j.params))
  in
  List.iter add_job t.queue;
  List.iter add_job t.running;
  Hashtbl.iter
    (fun id () -> Buffer.add_string b (Printf.sprintf "parked %d\n" id))
    t.parked;
  match Checkpoint.atomic_write (journal_path t.cfg.state_dir) (Buffer.contents b) with
  | Checkpoint.Written -> ()
  | Checkpoint.Degraded e ->
      Log.warn (fun m -> m "serve journal write degraded (%s); recovery may replay" e)

let load_journal state_dir =
  let path = journal_path state_dir in
  if not (Sys.file_exists path) then Ok (1, [], [])
  else
    match
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      text
    with
    | exception Sys_error e -> Error (Printf.sprintf "cannot read %s: %s" path e)
    | text -> (
        match String.split_on_char '\n' text with
        | "# DAMPI serve journal" :: "version 1" :: rest -> (
            let next = ref 1 and jobs = ref [] and parked = ref [] in
            let bad = ref None in
            List.iter
              (fun line ->
                if !bad = None && line <> "" then
                  match fields line with
                  | [ "next"; n ] -> (
                      match int_of_string_opt n with
                      | Some n when n >= 1 -> next := n
                      | _ -> bad := Some line)
                  | "job" :: id :: ondisc :: params -> (
                      match
                        (int_of_string_opt id, on_disconnect_of_string ondisc)
                      with
                      | Some id, Ok ondisc ->
                          jobs := (id, ondisc, kv_fields params) :: !jobs
                      | _ -> bad := Some line)
                  | [ "parked"; id ] -> (
                      match int_of_string_opt id with
                      | Some id -> parked := id :: !parked
                      | None -> bad := Some line)
                  | _ -> bad := Some line)
              rest;
            match !bad with
            | Some line ->
                Error (Printf.sprintf "corrupt serve journal %s: %S" path line)
            | None -> Ok (!next, List.rev !jobs, List.rev !parked))
        | _ -> Error (Printf.sprintf "corrupt serve journal %s: bad header" path))

(* ---- client plumbing ---- *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let kill_quietly pid signal = try Unix.kill pid signal with Unix.Unix_error _ -> ()

(* Disconnect (or first failed write): apply each owned job's policy.
   This is the only place a client's death touches job state, so an EPIPE
   on a progress write and a clean close behave identically. *)
let client_gone t c =
  if c.calive then begin
    c.calive <- false;
    close_quietly c.cfd;
    t.clients <- List.filter (fun c' -> c'.cid <> c.cid) t.clients;
    let owned j = match j.owner with Some o -> o.cid = c.cid | None -> false in
    let mine_q = List.filter owned t.queue in
    let mine_r = List.filter owned t.running in
    List.iter
      (fun j ->
        j.owner <- None;
        match j.ondisc with
        | Detach -> ()
        | Cancel ->
            t.queue <- List.filter (fun x -> x.jid <> j.jid) t.queue;
            jincr t (fun m -> m.m_cancelled);
            Log.info (fun m -> m "job %d cancelled (client gone)" j.jid))
      mine_q;
    List.iter
      (fun j ->
        j.owner <- None;
        match (j.ondisc, j.phase) with
        | Cancel, Running ch ->
            j.cancelling <- true;
            kill_quietly ch.pid Sys.sigterm
        | _ -> ())
      mine_r;
    if mine_q <> [] then write_journal t;
    gauge t
  end

let send_client t c line =
  if not c.calive then false
  else
    try
      output_string c.coc line;
      output_char c.coc '\n';
      flush c.coc;
      true
    with Sys_error _ | Unix.Unix_error _ ->
      client_gone t c;
      false

let send_report_frame t c ~id text =
  let lines = String.split_on_char '\n' text in
  let lines =
    match List.rev lines with "" :: r -> List.rev r | _ -> lines
  in
  send_client t c (Printf.sprintf "report id=%d %d" id (List.length lines))
  && List.for_all (fun l -> send_client t c ("l " ^ enc l)) lines
  && send_client t c "end"

let done_line id f =
  Printf.sprintf "done id=%d status=%s code=%d msg=%s backtrace=%s" id
    f.f_status f.f_code (enc f.f_msg) (enc f.f_bt)

(* ---- parked reports ---- *)

let park t job f =
  let text =
    Printf.sprintf "status %s\ncode %d\nmsg %s\nbacktrace %s\nreport %s\n"
      f.f_status f.f_code (enc f.f_msg) (enc f.f_bt) (enc f.f_report)
  in
  (match Checkpoint.atomic_write (report_path t.cfg.state_dir job.jid) text with
  | Checkpoint.Written -> Hashtbl.replace t.parked job.jid ()
  | Checkpoint.Degraded e ->
      Log.warn (fun m -> m "could not park report for job %d: %s" job.jid e))

let load_parked t id =
  match
    let ic = open_in_bin (report_path t.cfg.state_dir id) in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    text
  with
  | exception Sys_error _ -> None
  | text ->
      let kv = ref [] in
      List.iter
        (fun line ->
          match String.index_opt line ' ' with
          | Some i ->
              kv :=
                ( String.sub line 0 i,
                  String.sub line (i + 1) (String.length line - i - 1) )
                :: !kv
          | None -> ())
        (String.split_on_char '\n' text);
      let get k = Option.value (List.assoc_opt k !kv) ~default:"" in
      Some
        {
          f_status = get "status";
          f_code = Option.value (int_of_string_opt (get "code")) ~default:2;
          f_report = dec (get "report");
          f_msg = dec (get "msg");
          f_bt = dec (get "backtrace");
        }

let deliver t job f =
  match job.owner with
  | Some c when c.calive ->
      let ok =
        (f.f_report = "" || send_report_frame t c ~id:job.jid f.f_report)
        && send_client t c (done_line job.jid f)
      in
      if not ok then park t job f
  | _ -> park t job f

(* ---- running jobs ---- *)

let running_child j = match j.phase with Running ch -> Some ch | Queued -> None

(* Next job to start: FIFO, except (a) a label already running is held
   back (identical labels share a checkpoint path), and (b) among ready
   candidates the client with the fewest running jobs goes first, so one
   chatty submitter cannot starve the rest of the queue. *)
let pick_next t =
  let running_labels = List.map (fun j -> j.label) t.running in
  let okey j = match j.owner with Some c -> c.cid | None -> -1 in
  let load key =
    List.length (List.filter (fun j -> okey j = key) t.running)
  in
  List.fold_left
    (fun best j ->
      if List.mem j.label running_labels then best
      else
        match best with
        | Some b when load (okey b) <= load (okey j) -> best
        | _ -> Some j)
    None t.queue

let start t job =
  let rfd, wfd = Unix.pipe () in
  let ck = ckpt_path t.cfg.state_dir job.label in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (* Job child. Sever every daemon fd and restore default signal
         disposition so Explorer's own checkpoint handlers see a clean
         slate (the daemon's handlers are inherited otherwise). *)
      close_quietly rfd;
      close_quietly t.lfd;
      List.iter (fun c -> close_quietly c.cfd) t.clients;
      List.iter
        (fun j ->
          match running_child j with
          | Some ch -> close_quietly ch.rfd
          | None -> ())
        t.running;
      Sys.set_signal Sys.sigterm Sys.Signal_default;
      Sys.set_signal Sys.sigint Sys.Signal_default;
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      Printexc.record_backtrace true;
      let oc = Unix.out_channel_of_descr wfd in
      let send line =
        try
          output_string oc line;
          output_char oc '\n';
          flush oc
        with Sys_error _ | Unix.Unix_error _ -> ()
      in
      let progress kvs = send ("p " ^ fmt_kvs kvs) in
      let finish status code ?(report = "") ?(msg = "") ?(bt = "") () =
        send
          (Printf.sprintf "done status=%s code=%d report=%s msg=%s backtrace=%s"
             status code (enc report) (enc msg) (enc bt))
      in
      let code =
        match
          t.cfg.run ~ckpt:ck ~label:job.label ~params:job.params ~progress
        with
        | Completed { report; code } ->
            finish "completed" code ~report ();
            if code = 0 then 0 else 1
        | Checkpointed ->
            finish "checkpointed" 3 ();
            3
        | exception e ->
            let bt = Printexc.get_backtrace () in
            finish "crashed" 1 ~msg:(Printexc.to_string e) ~bt ();
            2
      in
      (* _exit: the parent's buffered channels were inherited by fork and
         must not be flushed a second time from here. *)
      Unix._exit code
  | pid ->
      Unix.close wfd;
      job.phase <-
        Running
          {
            pid;
            rfd;
            (* trusted pipe, but still bounded: a runaway report cannot
               balloon the daemon *)
            plines = Wire.Lines.create ~limit:(1 lsl 20) ();
            final = None;
            live = true;
            started = Unix.gettimeofday ();
          };
      t.queue <- List.filter (fun x -> x.jid <> job.jid) t.queue;
      t.running <- t.running @ [ job ];
      gauge t;
      Log.info (fun m -> m "job %d started (pid %d): %s" job.jid pid job.label)

let handle_child_line t job line =
  match fields line with
  | "p" :: rest -> (
      (* progress tokens are already percent-encoded k=v pairs; forward
         verbatim *)
      match job.owner with
      | Some c when c.calive ->
          ignore
            (send_client t c
               (Printf.sprintf "progress id=%d %s" job.jid
                  (String.concat " " rest)))
      | _ -> ())
  | "done" :: rest -> (
      let kvs = kv_fields rest in
      match running_child job with
      | Some ch ->
          ch.final <-
            Some
              {
                f_status =
                  Option.value (List.assoc_opt "status" kvs) ~default:"crashed";
                f_code = Option.value (assoc_int "code" kvs) ~default:2;
                f_report = Option.value (List.assoc_opt "report" kvs) ~default:"";
                f_msg = Option.value (List.assoc_opt "msg" kvs) ~default:"";
                f_bt = Option.value (List.assoc_opt "backtrace" kvs) ~default:"";
              }
      | None -> ())
  | _ -> Log.debug (fun m -> m "job %d: stray pipe line %S" job.jid line)

(* Child pipe hit EOF: reap, classify, deliver or requeue. *)
let settle t job ch =
  if ch.live then begin
    ch.live <- false;
    close_quietly ch.rfd;
    let wstatus =
      try snd (Unix.waitpid [] ch.pid)
      with Unix.Unix_error _ -> Unix.WEXITED 0
    in
    t.running <- List.filter (fun j -> j.jid <> job.jid) t.running;
    (match t.m with
    | Some m ->
        Obs.Metrics.observe m.m_wall (Unix.gettimeofday () -. ch.started)
    | None -> ());
    let f =
      match ch.final with
      | Some f -> f
      | None ->
          let msg =
            match wstatus with
            | Unix.WSIGNALED sg ->
                Printf.sprintf "job runner killed by signal %d" sg
            | Unix.WEXITED n ->
                Printf.sprintf "job runner exited with code %d before reporting"
                  n
            | Unix.WSTOPPED _ -> "job runner stopped"
          in
          { f_status = "crashed"; f_code = 2; f_report = ""; f_msg = msg; f_bt = "" }
    in
    let drop_ckpt () =
      try Sys.remove (ckpt_path t.cfg.state_dir job.label)
      with Sys_error _ -> ()
    in
    (match f.f_status with
    | _ when job.cancelling ->
        jincr t (fun m -> m.m_cancelled);
        drop_ckpt ();
        Log.info (fun m -> m "job %d cancelled" job.jid);
        (match job.owner with
        | Some c when c.calive ->
            ignore
              (send_client t c
                 (done_line job.jid
                    { f with f_status = "cancelled"; f_code = 3 }))
        | _ -> ())
    | "completed" ->
        jincr t (fun m -> m.m_completed);
        (* the .cache prefix sidecar stays: that is the daemon-resident
           warm path for repeat submissions of this label *)
        drop_ckpt ();
        Log.info (fun m -> m "job %d completed (code %d)" job.jid f.f_code);
        deliver t job f
    | "checkpointed" ->
        (* SIGTERM reached the child (daemon drain, or a stray external
           interrupt): the Explorer snapshotted its frontier. Requeue —
           under drain the queue is what the journal persists for the
           next daemon; otherwise the job simply resumes here. *)
        job.phase <- Queued;
        t.queue <- t.queue @ [ job ];
        Log.info (fun m -> m "job %d checkpointed" job.jid);
        if t.draining then begin
          (match job.owner with
          | Some c when c.calive ->
              ignore
                (send_client t c
                   (done_line job.jid { f with f_status = "checkpointed" }))
          | _ -> ());
          job.owner <- None
        end
    | _ ->
        jincr t (fun m -> m.m_crashed);
        drop_ckpt ();
        Log.warn (fun m -> m "job %d crashed: %s" job.jid f.f_msg);
        deliver t job { f with f_status = "crashed" });
    write_journal t;
    gauge t
  end

(* ---- admission ---- *)

let queue_bytes t = List.fold_left (fun a j -> a + j.spec_bytes) 0 t.queue

let inflight t c =
  let owned j = match j.owner with Some o -> o.cid = c.cid | None -> false in
  List.length (List.filter owned t.queue)
  + List.length (List.filter owned t.running)

let reject t c what =
  jincr t (fun m -> m.m_rejected);
  ignore (send_client t c ("reject " ^ what))

let handle_submit t c rest =
  let kvs = kv_fields rest in
  let ondisc =
    match List.assoc_opt "on-disconnect" kvs with
    | None -> Ok Cancel
    | Some s -> on_disconnect_of_string s
  in
  let params = List.filter (fun (k, _) -> k <> "on-disconnect") kvs in
  match ondisc with
  | Error e ->
      jincr t (fun m -> m.m_rejected);
      ignore (send_client t c (error_line e))
  | Ok ondisc -> (
      if t.draining then reject t c "draining"
      else
        match t.cfg.validate params with
        | Error e ->
            jincr t (fun m -> m.m_rejected);
            ignore (send_client t c (error_line e))
        | Ok label ->
            let spec_bytes = String.length (fmt_kvs params) in
            if
              List.length t.queue >= t.cfg.limits.max_queue
              || queue_bytes t + spec_bytes > t.cfg.limits.max_queue_bytes
            then reject t c "queue-full"
            else if inflight t c >= t.cfg.limits.max_client_inflight then
              reject t c "client-cap"
            else begin
              let jid = t.next_id in
              t.next_id <- jid + 1;
              let job =
                {
                  jid;
                  label;
                  params;
                  spec_bytes;
                  ondisc;
                  owner = Some c;
                  phase = Queued;
                  cancelling = false;
                }
              in
              t.queue <- t.queue @ [ job ];
              jincr t (fun m -> m.m_accepted);
              gauge t;
              (* journal before acknowledging: "accepted" must imply the
                 job survives a daemon restart *)
              write_journal t;
              ignore (send_client t c (Printf.sprintf "accepted id=%d" jid))
            end)

let handle_fetch t c id =
  if Hashtbl.mem t.parked id then begin
    match load_parked t id with
    | Some f ->
        let ok =
          (f.f_report = "" || send_report_frame t c ~id f.f_report)
          && send_client t c (done_line id f)
        in
        if ok then begin
          Hashtbl.remove t.parked id;
          (try Sys.remove (report_path t.cfg.state_dir id)
           with Sys_error _ -> ());
          write_journal t
        end
    | None ->
        Hashtbl.remove t.parked id;
        write_journal t;
        ignore
          (send_client t c
             (error_line (Printf.sprintf "parked report for job %d is gone" id)))
  end
  else if List.exists (fun x -> x.jid = id) t.queue then
    ignore (send_client t c (Printf.sprintf "pending id=%d state=queued" id))
  else if List.exists (fun x -> x.jid = id) t.running then
    ignore (send_client t c (Printf.sprintf "pending id=%d state=running" id))
  else
    ignore (send_client t c (error_line (Printf.sprintf "unknown job %d" id)))

let handle_line t c line =
  if c.calive && line <> "" then
    match fields line with
    | "submit" :: rest -> handle_submit t c rest
    | [ "fetch"; n ] -> (
        match int_of_string_opt n with
        | Some id -> handle_fetch t c id
        | None ->
            ignore
              (send_client t c (error_line (Printf.sprintf "bad fetch id %S" n))))
    | _ ->
        (* garbage gets a versioned error, never a crash or a close *)
        ignore
          (send_client t c
             (error_line (Printf.sprintf "unexpected request line %S" line)))

(* ---- the select loop ---- *)

let accept_client t =
  match Unix.accept t.lfd with
  | exception Unix.Unix_error _ -> ()
  | fd, _ ->
      let c =
        {
          cid = t.next_cid;
          cfd = fd;
          coc = Unix.out_channel_of_descr fd;
          clines = Wire.Lines.create ~limit:t.cfg.limits.max_line ();
          calive = true;
        }
      in
      t.next_cid <- t.next_cid + 1;
      t.clients <- t.clients @ [ c ]

let read_client t c =
  if c.calive then
    match Unix.read c.cfd t.rbuf 0 (Bytes.length t.rbuf) with
    | 0 -> client_gone t c
    | exception Unix.Unix_error _ -> client_gone t c
    | n ->
        let lines, overflow = Wire.Lines.feed c.clines t.rbuf n in
        List.iter (handle_line t c) lines;
        if overflow && c.calive then begin
          ignore
            (send_client t c
               (error_line
                  (Printf.sprintf "request line exceeds %d bytes"
                     t.cfg.limits.max_line)));
          client_gone t c
        end

let read_child t job ch =
  if ch.live then
    match Unix.read ch.rfd t.rbuf 0 (Bytes.length t.rbuf) with
    | 0 -> settle t job ch
    | exception Unix.Unix_error _ -> settle t job ch
    | n ->
        let lines, _ = Wire.Lines.feed ch.plines t.rbuf n in
        List.iter (handle_child_line t job) lines

let drive t =
  let rec loop () =
    if Atomic.get t.ints >= 2 then begin
      (* forced shutdown: children die hard; the journal re-admits their
         jobs on the next start *)
      List.iter
        (fun j ->
          match running_child j with
          | Some ch ->
              kill_quietly ch.pid Sys.sigkill;
              (try ignore (Unix.waitpid [] ch.pid) with Unix.Unix_error _ -> ())
          | None -> ())
        t.running;
      write_journal t;
      Log.warn (fun m -> m "forced shutdown; %d jobs journaled for restart"
                   (List.length t.queue + List.length t.running));
      130
    end
    else begin
      if (Atomic.get t.term || Atomic.get t.ints >= 1) && not t.draining
      then begin
        t.draining <- true;
        Log.info (fun m ->
            m "draining: %d running, %d queued" (List.length t.running)
              (List.length t.queue));
        List.iter
          (fun j ->
            match running_child j with
            | Some ch -> kill_quietly ch.pid Sys.sigterm
            | None -> ())
          t.running;
        (* queued jobs ride the journal into the next daemon; unblock
           their submitters now *)
        List.iter
          (fun j ->
            (match j.owner with
            | Some c when c.calive ->
                ignore
                  (send_client t c
                     (done_line j.jid
                        {
                          f_status = "checkpointed";
                          f_code = 3;
                          f_report = "";
                          f_msg = "daemon draining";
                          f_bt = "";
                        }))
            | _ -> ());
            j.owner <- None)
          t.queue
      end;
      if t.draining && t.running = [] then begin
        write_journal t;
        0
      end
      else begin
        let rec fill () =
          if
            (not t.draining)
            && List.length t.running < t.cfg.limits.parallel
          then
            match pick_next t with
            | Some j ->
                start t j;
                fill ()
            | None -> ()
        in
        fill ();
        let cmap = List.map (fun c -> (c.cfd, c)) t.clients in
        let jmap =
          List.filter_map
            (fun j ->
              match running_child j with
              | Some ch -> Some (ch.rfd, (j, ch))
              | None -> None)
            t.running
        in
        let watch =
          (if t.draining then [] else [ t.lfd ])
          @ List.map fst cmap @ List.map fst jmap
        in
        let readable, _, _ =
          try Unix.select watch [] [] 0.2
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        List.iter
          (fun fd ->
            if fd = t.lfd && not t.draining then accept_client t
            else
              match List.assq_opt fd cmap with
              | Some c -> read_client t c
              | None -> (
                  match List.assq_opt fd jmap with
                  | Some (j, ch) -> read_child t j ch
                  | None -> ()))
          readable;
        loop ()
      end
    end
  in
  loop ()

let make_metrics = function
  | None -> None
  | Some sh ->
      Some
        {
          m_accepted = Obs.Metrics.counter sh "serve.jobs_accepted";
          m_rejected = Obs.Metrics.counter sh "serve.jobs_rejected";
          m_completed = Obs.Metrics.counter sh "serve.jobs_completed";
          m_crashed = Obs.Metrics.counter sh "serve.jobs_crashed";
          m_cancelled = Obs.Metrics.counter sh "serve.jobs_cancelled";
          m_wall =
            Obs.Metrics.histogram sh ~bounds:Obs.Metrics.seconds_bounds
              "serve.job_wall_s";
          m_shard = sh;
        }

let serve cfg =
  (try Unix.mkdir cfg.state_dir 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  match load_journal cfg.state_dir with
  | Error e -> Error e
  | Ok (next, jobs, parked) -> (
      match
        let sa = Wire.sockaddr_of_addr cfg.addr in
        let domain = Unix.domain_of_sockaddr sa in
        let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
        (match cfg.addr with
        | Wire.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
        | Wire.Unix_sock p -> (
            try Unix.unlink p with Unix.Unix_error _ -> ()));
        Unix.bind fd sa;
        Unix.listen fd 16;
        fd
      with
      | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "cannot listen on %s: %s"
               (Wire.addr_to_string cfg.addr)
               (Unix.error_message e))
      | lfd ->
          let t =
            {
              cfg;
              lfd;
              lpath =
                (match cfg.addr with
                | Wire.Unix_sock p -> Some p
                | Wire.Tcp _ -> None);
              rbuf = Bytes.create 65536;
              m = make_metrics cfg.metrics;
              clients = [];
              queue = [];
              running = [];
              parked = Hashtbl.create 16;
              next_id = next;
              next_cid = 1;
              draining = false;
              term = Atomic.make false;
              ints = Atomic.make 0;
            }
          in
          (* journal recovery: re-admit every lost job exactly once. The
             submitters are gone, so the jobs run detached and park. *)
          List.iter
            (fun (jid, ondisc, params) ->
              match cfg.validate params with
              | Ok label ->
                  t.queue <-
                    t.queue
                    @ [
                        {
                          jid;
                          label;
                          params;
                          spec_bytes = String.length (fmt_kvs params);
                          ondisc;
                          owner = None;
                          phase = Queued;
                          cancelling = false;
                        };
                      ];
                  t.next_id <- max t.next_id (jid + 1);
                  Log.info (fun m -> m "re-admitted job %d from journal" jid)
              | Error e ->
                  Log.warn (fun m ->
                      m "dropping journaled job %d: %s" jid e))
            jobs;
          List.iter
            (fun id ->
              t.next_id <- max t.next_id (id + 1);
              Hashtbl.replace t.parked id ())
            parked;
          gauge t;
          write_journal t;
          (match cfg.ready with Some f -> f cfg.addr | None -> ());
          let old_term =
            Sys.signal Sys.sigterm
              (Sys.Signal_handle (fun _ -> Atomic.set t.term true))
          in
          let old_int =
            Sys.signal Sys.sigint
              (Sys.Signal_handle (fun _ -> Atomic.incr t.ints))
          in
          let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
          Fun.protect
            ~finally:(fun () ->
              Sys.set_signal Sys.sigterm old_term;
              Sys.set_signal Sys.sigint old_int;
              Sys.set_signal Sys.sigpipe old_pipe;
              close_quietly t.lfd;
              List.iter (fun c -> close_quietly c.cfd) t.clients;
              (match t.lpath with
              | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
              | None -> ()))
            (fun () -> Ok (drive t)))
