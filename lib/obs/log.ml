(* Leveled logger with a bounded ring and optional JSONL mirror. All
   state sits behind one mutex: logging is off the replay hot path (the
   distributed layer logs per-connection events, not per-message), so a
   single lock is cheaper than getting lock-free publication right. *)

type level = Error | Warn | Info | Debug

let level_to_string = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string s =
  match String.lowercase_ascii s with
  | "quiet" | "off" | "none" -> Ok None
  | "error" | "err" -> Ok (Some Error)
  | "warn" | "warning" -> Ok (Some Warn)
  | "info" -> Ok (Some Info)
  | "debug" -> Ok (Some Debug)
  | _ ->
      Error
        (Printf.sprintf
           "bad log level %S (expected quiet, error, warn, info or debug)" s)

let severity = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

type src = { name : string }

let src name = { name }
let src_name s = s.name

type record = { ts : float; r_level : level; r_src : string; r_msg : string }

let ring_cap = 256

type state = {
  mutable lvl : level option;
  mutable ring : record array; (* circular; [filled] valid entries *)
  mutable next : int;
  mutable filled : int;
  mutable jsonl : out_channel option;
  lock : Mutex.t;
}

let st =
  {
    lvl = Some Warn;
    ring = [||];
    next = 0;
    filled = 0;
    jsonl = None;
    lock = Mutex.create ();
  }

let set_level l = st.lvl <- l
let current_level () = st.lvl

let set_jsonl oc =
  Mutex.protect st.lock (fun () -> st.jsonl <- oc)

let enabled lvl =
  match st.lvl with Some l -> severity lvl <= severity l | None -> false

let record_jsonl b r =
  Printf.bprintf b "{\"ts\":%s,\"level\":\"%s\",\"src\":\"%s\",\"msg\":\"%s\"}\n"
    (Metrics.json_float r.ts)
    (level_to_string r.r_level)
    (Metrics.json_escape r.r_src)
    (Metrics.json_escape r.r_msg)

let to_jsonl records =
  let b = Buffer.create 512 in
  List.iter (record_jsonl b) records;
  Buffer.contents b

let emit s lvl text =
  let r =
    { ts = Unix.gettimeofday (); r_level = lvl; r_src = s.name; r_msg = text }
  in
  Mutex.protect st.lock (fun () ->
      if Array.length st.ring = 0 then
        st.ring <- Array.make ring_cap r
      else st.ring.(st.next) <- r;
      st.next <- (st.next + 1) mod ring_cap;
      if st.filled < ring_cap then st.filled <- st.filled + 1;
      (match st.jsonl with
      | Some oc ->
          (try
             let b = Buffer.create 128 in
             record_jsonl b r;
             output_string oc (Buffer.contents b);
             flush oc
           with Sys_error _ -> ())
      | None -> ());
      (* stderr may be a pipe whose reader vanished; losing a log line is
         fine, killing a long verify (or the serve daemon) is not. *)
      try Printf.eprintf "dampi [%s] %s: %s\n%!" (level_to_string lvl) s.name text
      with Sys_error _ -> ())

let msg s lvl k =
  if enabled lvl then
    k (fun fmt -> Format.kasprintf (fun text -> emit s lvl text) fmt)

module type LOG = sig
  val err : ((('a, Format.formatter, unit, unit) format4 -> 'a) -> unit) -> unit
  val warn : ((('a, Format.formatter, unit, unit) format4 -> 'a) -> unit) -> unit
  val info : ((('a, Format.formatter, unit, unit) format4 -> 'a) -> unit) -> unit

  val debug :
    ((('a, Format.formatter, unit, unit) format4 -> 'a) -> unit) -> unit
end

let src_log s : (module LOG) =
  (module struct
    let err k = msg s Error k
    let warn k = msg s Warn k
    let info k = msg s Info k
    let debug k = msg s Debug k
  end)

let recent () =
  Mutex.protect st.lock (fun () ->
      let n = st.filled in
      let start = (st.next - n + ring_cap) mod ring_cap in
      List.init n (fun i -> st.ring.((start + i) mod ring_cap)))
