(** Domain-safe metrics registry: monotonic counters, gauges, and
    fixed-bucket histograms.

    Writes go through a {!shard}; each shard is owned by exactly one writer
    (one worker domain, or one lock-protected subsystem), so recording is a
    plain unsynchronized store. Reading merges all shards: counters sum,
    gauges take the maximum, histograms add bucket-wise. The merged view of
    a [jobs = N] exploration therefore equals the [jobs = 1] view for every
    series whose value is a property of the run set rather than of worker
    scheduling.

    Handles ({!counter}, {!histogram}) are resolved once by name and then
    written through directly, keeping instrumented hot paths free of hash
    lookups. *)

type t
(** A registry: a fixed array of shards. *)

type shard
type counter
type histogram

val create : shards:int -> unit -> t
(** [create ~shards ()] builds a registry with [shards] independent write
    shards (at least 1). *)

val shards : t -> int
val shard : t -> int -> shard
val worker : shard -> int

(** {1 Recording} *)

val counter : shard -> string -> counter
(** Resolve (creating if needed) the named counter in this shard. Resolving
    an existing name returns the same underlying cell. *)

val add : counter -> int -> unit
val incr : counter -> unit

val gauge_set : shard -> string -> float -> unit
(** Set the named gauge; the merged view keeps the maximum across shards. *)

val histogram : shard -> ?bounds:float array -> string -> histogram
(** Resolve (creating if needed) the named histogram. [bounds] are ascending
    bucket upper bounds, used only on first creation (default
    {!seconds_bounds}); an implicit overflow bucket is always appended. *)

val observe : histogram -> float -> unit

val time : histogram -> (unit -> 'a) -> 'a
(** [time h f] runs [f ()] and observes its wall-clock duration (seconds)
    into [h] — the phase-timing helper behind [--profile]. Nothing is
    recorded if [f] raises. *)

val seconds_bounds : float array
(** Decades from 1µs to 10s — for wall/virtual durations. *)

val count_bounds : float array
(** Powers of two from 1 to 1024 — for queue depths and candidate counts. *)

(** {1 Snapshots} *)

type hist_view = {
  bounds : float array;
  counts : int array;  (** length = [Array.length bounds + 1] (overflow) *)
  sum : float;
  count : int;
  max_value : float;
}

type sample = Counter of int | Gauge of float | Histogram of hist_view

type snapshot = (string * sample) list
(** Sorted by metric name. *)

val snapshot : t -> snapshot
(** Merged over all shards. *)

val shard_snapshot : t -> int -> snapshot
val merge : snapshot list -> snapshot

val counter_value : snapshot -> string -> int
(** 0 when absent or not a counter. *)

val find : snapshot -> string -> sample option

(** {1 Deltas}

    A delta is itself a {!snapshot}: counters and histogram buckets hold
    the monotone increase since the previous snapshot (clamped at 0),
    gauges hold the current value. Deltas are what workers ship over the
    wire; the receiving side folds them in with {!merge_delta}. *)

val to_delta : prev:snapshot -> snapshot -> snapshot
(** [to_delta ~prev cur] — series whose delta carries no information
    (zero counters, empty histogram increments) are dropped, so a quiet
    interval yields [[]]. *)

val merge_delta : snapshot -> snapshot -> snapshot
(** [merge_delta base delta] adds counter/histogram increments into
    [base]; gauges take the delta's (latest) value. Mismatched kinds or
    histogram bounds keep [base]'s series — never raises. *)

(** {1 Wire encoding}

    Space-free sample tokens for line-oriented protocols: [c:N],
    [g:HEXFLOAT], [h:COUNT:SUM:MAX:B0,B1,..:C0,C1,..] (floats as OCaml
    hex floats for exact round-trips). *)

val sample_to_wire : sample -> string

val sample_of_wire : string -> sample option
(** [None] on any malformed token — telemetry parsing never raises. *)

(** {1 Export} *)

val to_json : ?workers:(string * snapshot) list -> snapshot -> string
(** A single JSON object: [{"metrics": {...}, "workers": [...]}]. Counters
    as integers, histograms with per-bucket counts ([le] upper bounds, the
    overflow bucket as ["+inf"]). [workers] entries are labeled snapshots
    (["w0"], ["sched"], a remote session id, ...). *)

val to_openmetrics : ?workers:(string * snapshot) list -> snapshot -> string
(** OpenMetrics text format: metric names sanitized to
    [[a-zA-Z0-9_:]], counters as [name_total], histograms as cumulative
    [name_bucket{le="..."}] plus [name_sum]/[name_count], terminated by
    [# EOF]. Worker-labeled series ride along as
    [name{worker="..."} ...] within the same family. *)

val pp : Format.formatter -> snapshot -> unit
(** Deterministic one-line-per-metric listing (for [dampi stats]). *)

(** {1 JSON helpers} (shared with {!Trace}) *)

val json_escape : string -> string
val json_float : float -> string
