(* Sharded metrics. Each shard is single-writer (a worker domain, or a
   subsystem that already serializes its writes under a lock), so recording
   is a plain store with no synchronization; reads happen only after the
   writers have quiesced (end of an exploration, or after a Domain.join) and
   merge shard-by-shard. *)

type hist = {
  h_bounds : float array;  (* ascending upper bounds *)
  h_counts : int array;  (* length = bounds + 1: last is overflow *)
  mutable h_sum : float;
  mutable h_count : int;
  mutable h_max : float;
}

type counter = { mutable c : int }
type gauge = { mutable g : float }
type histogram = hist

type value = V_counter of counter | V_gauge of gauge | V_hist of hist

type shard = { sh_worker : int; table : (string, value) Hashtbl.t }
type t = { all : shard array }

let seconds_bounds = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0 |]
let count_bounds = [| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024. |]

let create ~shards () =
  let shards = max 1 shards in
  {
    all =
      Array.init shards (fun sh_worker ->
          { sh_worker; table = Hashtbl.create 32 });
  }

let shards t = Array.length t.all
let shard t i = t.all.(i)
let worker sh = sh.sh_worker

let mismatch name =
  invalid_arg (Printf.sprintf "Obs.Metrics: %S registered with another kind" name)

let counter sh name =
  match Hashtbl.find_opt sh.table name with
  | Some (V_counter c) -> c
  | Some _ -> mismatch name
  | None ->
      let c = { c = 0 } in
      Hashtbl.replace sh.table name (V_counter c);
      c

let add c n = c.c <- c.c + n
let incr c = add c 1

let gauge_set sh name v =
  match Hashtbl.find_opt sh.table name with
  | Some (V_gauge g) -> g.g <- v
  | Some _ -> mismatch name
  | None -> Hashtbl.replace sh.table name (V_gauge { g = v })

let histogram sh ?(bounds = seconds_bounds) name =
  match Hashtbl.find_opt sh.table name with
  | Some (V_hist h) -> h
  | Some _ -> mismatch name
  | None ->
      let h =
        {
          h_bounds = Array.copy bounds;
          h_counts = Array.make (Array.length bounds + 1) 0;
          h_sum = 0.0;
          h_count = 0;
          h_max = neg_infinity;
        }
      in
      Hashtbl.replace sh.table name (V_hist h);
      h

let observe h v =
  let n = Array.length h.h_bounds in
  let rec bucket i = if i >= n || v <= h.h_bounds.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1;
  if v > h.h_max then h.h_max <- v

let time h f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  observe h (Unix.gettimeofday () -. t0);
  r

(* ---- Snapshots ---- *)

type hist_view = {
  bounds : float array;
  counts : int array;
  sum : float;
  count : int;
  max_value : float;
}

type sample = Counter of int | Gauge of float | Histogram of hist_view

type snapshot = (string * sample) list

let view_of_hist h =
  {
    bounds = Array.copy h.h_bounds;
    counts = Array.copy h.h_counts;
    sum = h.h_sum;
    count = h.h_count;
    max_value = (if h.h_count = 0 then 0.0 else h.h_max);
  }

let sample_of_value = function
  | V_counter c -> Counter c.c
  | V_gauge g -> Gauge g.g
  | V_hist h -> Histogram (view_of_hist h)

let merge_samples name a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge x, Gauge y -> Gauge (Float.max x y)
  | Histogram x, Histogram y ->
      if x.bounds <> y.bounds then mismatch name
      else
        Histogram
          {
            bounds = x.bounds;
            counts = Array.mapi (fun i c -> c + y.counts.(i)) x.counts;
            sum = x.sum +. y.sum;
            count = x.count + y.count;
            max_value = Float.max x.max_value y.max_value;
          }
  | _ -> mismatch name

let merge snapshots =
  let acc = Hashtbl.create 64 in
  List.iter
    (List.iter (fun (name, s) ->
         match Hashtbl.find_opt acc name with
         | None -> Hashtbl.replace acc name s
         | Some prev -> Hashtbl.replace acc name (merge_samples name prev s)))
    snapshots;
  Hashtbl.fold (fun name s l -> (name, s) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let raw_shard_snapshot sh =
  Hashtbl.fold (fun name v l -> (name, sample_of_value v) :: l) sh.table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let shard_snapshot t i = raw_shard_snapshot t.all.(i)

let snapshot t =
  merge (Array.to_list (Array.map raw_shard_snapshot t.all))

let find snap name =
  Option.map snd (List.find_opt (fun (n, _) -> String.equal n name) snap)

let counter_value snap name =
  match find snap name with Some (Counter n) -> n | _ -> 0

(* ---- Deltas ----

   A delta is itself a snapshot: counter values and histogram buckets hold
   the (clamped-monotone) increase since [prev]; gauges hold the current
   value. Deltas that carry no information are dropped so a quiet interval
   ships an empty frame. *)

let sample_is_zero = function
  | Counter 0 -> true
  | Histogram h -> h.count = 0 && Array.for_all (fun c -> c = 0) h.counts
  | _ -> false

let sample_delta prev cur =
  match (prev, cur) with
  | None, s -> s
  | Some (Counter p), Counter c -> Counter (max 0 (c - p))
  | Some (Gauge _), Gauge g -> Gauge g
  | Some (Histogram p), Histogram c when p.bounds = c.bounds ->
      Histogram
        {
          bounds = c.bounds;
          counts = Array.mapi (fun i v -> max 0 (v - p.counts.(i))) c.counts;
          sum = Float.max 0.0 (c.sum -. p.sum);
          count = max 0 (c.count - p.count);
          max_value = c.max_value;
        }
  | Some _, s -> s (* kind changed under us: ship the absolute value *)

let to_delta ~prev cur =
  List.filter_map
    (fun (name, s) ->
      let d = sample_delta (find prev name) s in
      if sample_is_zero d then None else Some (name, d))
    cur

(* Applying a delta to an accumulated snapshot: counters and histogram
   buckets add; gauges take the delta's (latest) value; a bounds mismatch
   keeps the accumulated series rather than raising — telemetry must never
   be fatal. *)
let merge_delta base delta =
  let acc = Hashtbl.create 64 in
  List.iter (fun (name, s) -> Hashtbl.replace acc name s) base;
  List.iter
    (fun (name, s) ->
      match (Hashtbl.find_opt acc name, s) with
      | None, _ -> Hashtbl.replace acc name s
      | Some (Counter x), Counter y -> Hashtbl.replace acc name (Counter (x + y))
      | Some (Gauge _), Gauge y -> Hashtbl.replace acc name (Gauge y)
      | Some (Histogram x), Histogram y when x.bounds = y.bounds ->
          Hashtbl.replace acc name
            (Histogram
               {
                 bounds = x.bounds;
                 counts = Array.mapi (fun i c -> c + y.counts.(i)) x.counts;
                 sum = x.sum +. y.sum;
                 count = x.count + y.count;
                 max_value = Float.max x.max_value y.max_value;
               })
      | Some _, _ -> () (* kind or bounds mismatch: keep what we had *))
    delta;
  Hashtbl.fold (fun name s l -> (name, s) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ---- Wire encoding ----

   Space-free tokens so a sample fits in one field of a line-oriented
   protocol. Floats travel as OCaml hex floats ([%h]) for exact
   round-trips. *)

let hexf = Printf.sprintf "%h"

let sample_to_wire = function
  | Counter n -> Printf.sprintf "c:%d" n
  | Gauge v -> Printf.sprintf "g:%s" (hexf v)
  | Histogram h ->
      let b = Buffer.create 96 in
      Printf.bprintf b "h:%d:%s:%s:" h.count (hexf h.sum) (hexf h.max_value);
      Array.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (hexf v))
        h.bounds;
      Buffer.add_char b ':';
      Array.iteri
        (fun i c ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (string_of_int c))
        h.counts;
      Buffer.contents b

let parse_floats s =
  if s = "" then Some [||]
  else
    let parts = String.split_on_char ',' s in
    let arr = Array.make (List.length parts) 0.0 in
    let ok = ref true in
    List.iteri
      (fun i p ->
        match float_of_string_opt p with
        | Some v -> arr.(i) <- v
        | None -> ok := false)
      parts;
    if !ok then Some arr else None

let parse_ints s =
  if s = "" then Some [||]
  else
    let parts = String.split_on_char ',' s in
    let arr = Array.make (List.length parts) 0 in
    let ok = ref true in
    List.iteri
      (fun i p ->
        match int_of_string_opt p with
        | Some v when v >= 0 -> arr.(i) <- v
        | _ -> ok := false)
      parts;
    if !ok then Some arr else None

let sample_of_wire s =
  let after_prefix p =
    String.sub s (String.length p) (String.length s - String.length p)
  in
  if String.length s >= 2 && String.sub s 0 2 = "c:" then
    match int_of_string_opt (after_prefix "c:") with
    | Some n when n >= 0 -> Some (Counter n)
    | _ -> None
  else if String.length s >= 2 && String.sub s 0 2 = "g:" then
    Option.map (fun v -> Gauge v) (float_of_string_opt (after_prefix "g:"))
  else if String.length s >= 2 && String.sub s 0 2 = "h:" then
    match String.split_on_char ':' (after_prefix "h:") with
    | [ count; sum; max_v; bounds; counts ] -> (
        match
          ( int_of_string_opt count,
            float_of_string_opt sum,
            float_of_string_opt max_v,
            parse_floats bounds,
            parse_ints counts )
        with
        | Some count, Some sum, Some max_value, Some bounds, Some counts
          when count >= 0 && Array.length counts = Array.length bounds + 1 ->
            Some (Histogram { bounds; counts; sum; count; max_value })
        | _ -> None)
    | _ -> None
  else None

(* ---- Export ---- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%.9g" v

let sample_json b = function
  | Counter n -> Printf.bprintf b "{\"type\":\"counter\",\"value\":%d}" n
  | Gauge v ->
      Printf.bprintf b "{\"type\":\"gauge\",\"value\":%s}" (json_float v)
  | Histogram h ->
      Printf.bprintf b
        "{\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"max\":%s,\"buckets\":["
        h.count (json_float h.sum) (json_float h.max_value);
      Array.iteri
        (fun i c ->
          if i > 0 then Buffer.add_char b ',';
          if i < Array.length h.bounds then
            Printf.bprintf b "{\"le\":%s,\"count\":%d}"
              (json_float h.bounds.(i)) c
          else Printf.bprintf b "{\"le\":\"+inf\",\"count\":%d}" c)
        h.counts;
      Buffer.add_string b "]}"

let snapshot_json b snap =
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, s) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\"%s\":" (json_escape name);
      sample_json b s)
    snap;
  Buffer.add_char b '}'

let to_json ?(workers = []) snap =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"metrics\": ";
  snapshot_json b snap;
  if workers <> [] then begin
    Buffer.add_string b ",\n  \"workers\": [";
    List.iteri
      (fun i (w, s) ->
        if i > 0 then Buffer.add_char b ',';
        Printf.bprintf b "\n    {\"worker\": \"%s\", \"metrics\": "
          (json_escape w);
        snapshot_json b s;
        Buffer.add_char b '}')
      workers;
    Buffer.add_string b "\n  ]"
  end;
  Buffer.add_string b "\n}\n";
  Buffer.contents b

(* ---- OpenMetrics text format ---- *)

let om_name name =
  let b = Buffer.create (String.length name) in
  String.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> Buffer.add_char b c
      | '0' .. '9' ->
          if i = 0 then Buffer.add_char b '_';
          Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let om_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let om_float v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.9g" v

(* One sample line set. [labels] is the pre-rendered [k="v"] list (without
   braces) shared by every line of the sample; histograms append [le]. *)
let om_sample b name labels = function
  | Counter n ->
      let l = if labels = "" then "" else "{" ^ labels ^ "}" in
      Printf.bprintf b "%s_total%s %d\n" name l n
  | Gauge v ->
      let l = if labels = "" then "" else "{" ^ labels ^ "}" in
      Printf.bprintf b "%s%s %s\n" name l (om_float v)
  | Histogram h ->
      let le v =
        if labels = "" then Printf.sprintf "{le=\"%s\"}" v
        else Printf.sprintf "{%s,le=\"%s\"}" labels v
      in
      let cum = ref 0 in
      Array.iteri
        (fun i c ->
          cum := !cum + c;
          let bound =
            if i < Array.length h.bounds then om_float h.bounds.(i) else "+Inf"
          in
          Printf.bprintf b "%s_bucket%s %d\n" name (le bound) !cum)
        h.counts;
      let l = if labels = "" then "" else "{" ^ labels ^ "}" in
      Printf.bprintf b "%s_sum%s %s\n" name l (om_float h.sum);
      Printf.bprintf b "%s_count%s %d\n" name l h.count

let om_type = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let to_openmetrics ?(workers = []) snap =
  let b = Buffer.create 4096 in
  (* All samples of one family must be contiguous: for each aggregate
     series, emit the unlabeled total then every worker-labeled series of
     the same name and kind. *)
  List.iter
    (fun (name, s) ->
      let om = om_name name in
      Printf.bprintf b "# TYPE %s %s\n" om (om_type s);
      om_sample b om "" s;
      List.iter
        (fun (w, wsnap) ->
          match find wsnap name with
          | Some ws when om_type ws = om_type s ->
              om_sample b om
                (Printf.sprintf "worker=\"%s\"" (om_label_value w))
                ws
          | _ -> ())
        workers)
    snap;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

let pp ppf snap =
  Format.pp_open_vbox ppf 0;
  List.iteri
    (fun i (name, s) ->
      if i > 0 then Format.pp_print_cut ppf ();
      match s with
      | Counter n -> Format.fprintf ppf "%-28s %d" name n
      | Gauge v -> Format.fprintf ppf "%-28s %g" name v
      | Histogram h ->
          Format.fprintf ppf "%-28s count=%d sum=%g max=%g" name h.count h.sum
            h.max_value)
    snap;
  Format.pp_close_box ppf ()
