(** Structured, leveled logging with a bounded in-memory ring and an
    optional JSONL sink.

    Replaces ad-hoc [Printf.eprintf] in the distributed layer. The default
    reporter writes enabled records to [stderr] (level [Warn] and louder),
    so operational warnings — fallback-local, lost workers, redial
    notices at [warn] — stay visible without any setup, while [info] and
    [debug] chatter needs an explicit [--log-level]. Every enabled record
    is also kept in a fixed-size ring ({!recent}) and mirrored to the
    JSONL sink when one is set. *)

type level = Error | Warn | Info | Debug

val level_to_string : level -> string

val level_of_string : string -> (level option, string) result
(** Accepts ["quiet"]/["off"] ([Ok None]) and
    ["error"|"warn"|"warning"|"info"|"debug"]; anything else is
    [Error msg]. *)

val set_level : level option -> unit
(** [None] silences everything (ring included). Default: [Some Warn]. *)

val current_level : unit -> level option

type src
(** A named log source, e.g. ["dampi.coordinator"]. *)

val src : string -> src
val src_name : src -> string

type record = { ts : float; r_level : level; r_src : string; r_msg : string }

val msg :
  src ->
  level ->
  ((('a, Format.formatter, unit, unit) format4 -> 'a) -> unit) ->
  unit
(** [msg s lvl (fun m -> m "fmt" ...)] — the thunk is not run when [lvl]
    is disabled, so disabled logging costs one branch. *)

(** Per-source convenience module mirroring [Logs.src_log]. *)
module type LOG = sig
  val err : ((('a, Format.formatter, unit, unit) format4 -> 'a) -> unit) -> unit
  val warn : ((('a, Format.formatter, unit, unit) format4 -> 'a) -> unit) -> unit
  val info : ((('a, Format.formatter, unit, unit) format4 -> 'a) -> unit) -> unit

  val debug :
    ((('a, Format.formatter, unit, unit) format4 -> 'a) -> unit) -> unit
end

val src_log : src -> (module LOG)

(** {1 Ring and sinks} *)

val recent : unit -> record list
(** The most recent enabled records, oldest first (ring capacity 256). *)

val set_jsonl : out_channel option -> unit
(** Mirror every enabled record to this channel as one JSON object per
    line (flushed per record). [None] detaches the sink. *)

val to_jsonl : record list -> string
(** Render records as JSONL (one [{"ts":..,"level":..,"src":..,"msg":..}]
    per line). *)
