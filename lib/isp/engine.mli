(** The ISP verification engine: DAMPI's depth-first match exploration with
    every run paying the centralized scheduler's costs. Coverage is
    identical to DAMPI's on these programs; only the per-run virtual cost
    differs — the comparison of the paper's Figs. 5 and 6. *)

type config = {
  state_config : Dampi.State.config;
  cost : Mpi.Runtime.cost_model;
  model : Model.t;
  max_runs : int;
  jobs : int;  (** worker domains for the exploration; 1 = sequential *)
  trace : bool;  (** collect a span timeline into the report *)
  robustness : Dampi.Explorer.robustness;
      (** watchdog / retry / fault-injection / checkpoint knobs, forwarded to
          the shared explorer and to this engine's runtimes *)
}

val default_config : config

val runner :
  config -> np:int -> Mpi.Mpi_intf.program -> Dampi.Explorer.runner
(** One ISP-interposed execution per call (layered as
    [Program -> Isp.Interpose -> Dampi.Interpose -> Bind -> Runtime]). *)

val verify :
  ?config:config ->
  ?resume:Dampi.Checkpoint.t ->
  np:int ->
  Mpi.Mpi_intf.program ->
  Dampi.Report.t
(** [resume] restores a checkpointed cut, as in {!Dampi.Explorer.explore}. *)

val single_run_makespan :
  ?config:config -> np:int -> Mpi.Mpi_intf.program -> float
(** Virtual makespan of one run under ISP's scheduler costs, for overhead
    curves. *)
