(** The ISP verification engine: the same depth-first match exploration as
    DAMPI (coverage is identical on these programs), with every run paying
    the centralized scheduler's costs.

    Layering per run, top to bottom:
    [Program -> Isp.Interpose -> Dampi.Interpose -> Bind -> Runtime].
    The DAMPI layer below provides match discovery and guided replay (in
    the real ISP the central scheduler discovers matches from its global
    picture; here the discovery bookkeeping is shared and its piggyback
    traffic bypasses the scheduler charges, so it does not distort ISP's
    cost accounting). *)

module Runtime = Mpi.Runtime

type config = {
  state_config : Dampi.State.config;
  cost : Runtime.cost_model;
  model : Model.t;
  max_runs : int;
  jobs : int;
  trace : bool;
  robustness : Dampi.Explorer.robustness;
}

let default_config =
  {
    state_config = Dampi.State.default_config;
    cost = Runtime.default_cost;
    model = Model.default;
    max_runs = max_int;
    jobs = 1;
    trace = false;
    robustness = Dampi.Explorer.default_robustness;
  }

let runner config ~np (program : Mpi.Mpi_intf.program) : Dampi.Explorer.runner
    =
 fun ~ctx plan ~fork_index ->
  let fault = Dampi.Explorer.fault_of_ctx ctx config.robustness.fault in
  let rt =
    Runtime.create ~cost:config.cost
      ?metrics:ctx.Dampi.Explorer.metrics ~fault ~np ()
  in
  let st =
    Dampi.State.create ~config:config.state_config
      ?metrics:ctx.Dampi.Explorer.metrics ?poison:ctx.Dampi.Explorer.poison
      ~np ~plan ~fork_index ()
  in
  Runtime.set_interrupt_hook rt (fun () -> Dampi.State.check_poison st);
  let server =
    Sim.Vtime.Server.create ~service:(Model.service config.model ~np)
  in
  let module B = Mpi.Bind.Make (struct
    let rt = rt
  end) in
  let module D = Dampi.Interpose.Wrap (B) (struct
    let st = st
  end) in
  let module I = Interpose.Wrap (D) (struct
    let rt = rt
    let model = config.model
    let server = server
  end) in
  let module P = (val program) in
  let module Prog = P (I) in
  Runtime.spawn_ranks rt (fun _rank ->
      D.init_tool ();
      Prog.main ();
      D.finalize_tool ());
  let outcome = Runtime.run rt in
  let cancelled =
    match outcome with
    | Sim.Coroutine.Crashed (_, Dampi.State.Replay_cancelled, _) -> true
    | _ -> false
  in
  let leaks = Runtime.leak_report rt in
  {
    Dampi.Report.run_plan = plan;
    outcome;
    makespan = Runtime.makespan rt;
    new_epochs = (if cancelled then [] else Dampi.State.completed_epochs st);
    run_errors =
      (if cancelled then []
       else
         Dampi.Explorer.errors_of_run ~check_leaks:true ~outcome ~leaks
           ~shadow_ctxs:(D.shadow_ctxs ()) ~st);
    wildcards = Dampi.State.wildcard_events st;
    cancelled;
  }

(** Verify under the ISP baseline; the report's virtual times reflect the
    centralized architecture. *)
let verify ?(config = default_config) ?resume ~np program =
  let explorer_config =
    {
      Dampi.Explorer.default_config with
      state_config = config.state_config;
      cost = config.cost;
      max_runs = config.max_runs;
      jobs = config.jobs;
      trace = config.trace;
      robustness = config.robustness;
    }
  in
  Dampi.Explorer.explore ~config:explorer_config ?resume ~np
    (runner config ~np program)

(** One uninstrumented-coverage run (overhead measurement): the program
    under ISP's scheduler costs, no exploration. *)
let single_run_makespan ?(config = default_config) ~np program =
  let record =
    runner config ~np program ~ctx:Dampi.Explorer.null_ctx
      (Dampi.Decisions.empty ~np) ~fork_index:(-1)
  in
  record.Dampi.Report.makespan
