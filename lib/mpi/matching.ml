(** The message-matching engine.

    One [mailbox] per destination process. It holds the *unexpected queue*
    (arrived envelopes no receive has claimed yet, in arrival order) and the
    *posted queue* (pending receive requests, in post order).

    MPI's matching rules implemented here:

    - a receive matches an envelope when context ids are equal and source/tag
      agree modulo wildcards;
    - {b non-overtaking}: two messages on the same (source, destination,
      context) channel that both match a receive must be consumed in send
      order. Because envelopes arrive in per-channel send order and are kept
      in arrival order, taking the {e earliest} matching envelope per source
      preserves the rule; a wildcard receive therefore has at most one
      eligible envelope {e per source} — exactly the candidate set DAMPI
      reasons about (§II-C of the paper);
    - an arriving envelope is delivered to the {e earliest} posted matching
      receive.

    Invariant: no envelope in the unexpected queue matches any request in the
    posted queue (arrivals are matched eagerly; posts sweep the queue). *)

type mailbox = {
  mutable unexpected : Envelope.t list;  (* arrival order *)
  mutable posted : Request.t list;  (* post order *)
}

type arrival_result = Delivered of Request.t | Queued

let create () = { unexpected = []; posted = [] }

let req_matches (req : Request.t) (env : Envelope.t) =
  match req.kind with
  | Request.Recv r -> Envelope.matches env ~src:r.src ~tag:r.tag ~ctx:r.ctx
  | Request.Send _ -> false

(* Earliest matching envelope per source, in arrival order of those
   representatives. This is the candidate set for a (possibly wildcard)
   receive: non-overtaking forbids skipping an earlier same-channel match.

   Allocation discipline: the common cases (empty queue; fixed source, where
   every match shares one channel so only the earliest is eligible) build at
   most one list cell. The wildcard sweep dedups sources by scanning the
   accumulated representatives — candidate sets are as wide as the source
   count at most, so the quadratic scan is cheaper than a per-call table. *)
let candidates mbox ~src ~tag ~ctx =
  match mbox.unexpected with
  | [] -> []
  | unexpected when src <> Types.any_source ->
      let rec first = function
        | [] -> []
        | (env : Envelope.t) :: rest ->
            if Envelope.matches env ~src ~tag ~ctx then [ env ] else first rest
      in
      first unexpected
  | unexpected ->
      let rec collect acc = function
        | [] -> List.rev acc
        | (env : Envelope.t) :: rest ->
            if
              Envelope.matches env ~src ~tag ~ctx
              && not
                   (List.exists
                      (fun (seen : Envelope.t) -> seen.src = env.src)
                      acc)
            then collect (env :: acc) rest
            else collect acc rest
      in
      collect [] unexpected

let remove_unexpected mbox (env : Envelope.t) =
  mbox.unexpected <-
    List.filter (fun (e : Envelope.t) -> e.uid <> env.uid) mbox.unexpected

(* Deliver [env] to the earliest posted matching receive, if any. *)
let on_arrival mbox (env : Envelope.t) =
  let rec find acc = function
    | [] -> None
    | req :: rest ->
        if req_matches req env then (
          mbox.posted <- List.rev_append acc rest;
          Some req)
        else find (req :: acc) rest
  in
  match find [] mbox.posted with
  | Some req -> Delivered req
  | None ->
      mbox.unexpected <- mbox.unexpected @ [ env ];
      Queued

(* Post a receive: try to claim an unexpected envelope first. [choose] picks
   among the per-source candidates (the runtime's match oracle); it is only
   consulted when there are two or more. *)
let post_recv mbox (req : Request.t) ~choose =
  match req.kind with
  | Request.Send _ -> invalid_arg "Matching.post_recv: send request"
  | Request.Recv r -> (
      match candidates mbox ~src:r.src ~tag:r.tag ~ctx:r.ctx with
      | [] ->
          mbox.posted <- mbox.posted @ [ req ];
          None
      | [ env ] ->
          remove_unexpected mbox env;
          Some env
      | envs ->
          let env = choose envs in
          remove_unexpected mbox env;
          Some env)

let cancel_posted mbox (req : Request.t) =
  mbox.posted <-
    List.filter (fun (r : Request.t) -> r.uid <> req.uid) mbox.posted

let unexpected_count mbox = List.length mbox.unexpected
let posted_count mbox = List.length mbox.posted
let unexpected mbox = mbox.unexpected
