(* Deterministic, seed-driven fault injection. See fault.mli for the model.

   Determinism contract: a [t] built from the same (spec, salt) pair injects
   at the same consultation indices with the same parameters, regardless of
   which OS thread or domain drives the run. All randomness flows through a
   private Splitmix stream derived from (spec.seed, salt); the per-run
   injection points are drawn once at [make] so that the decision "this run
   fails its Nth send" does not depend on how many delay coins were flipped
   before it. *)

exception Transient_send_failure of string
exception Rank_killed of int
exception Wedged of int

let () =
  Printexc.register_printer (function
    | Transient_send_failure site ->
        Some (Printf.sprintf "Mpi.Fault.Transient_send_failure(%S)" site)
    | Rank_killed pid -> Some (Printf.sprintf "Mpi.Fault.Rank_killed(%d)" pid)
    | Wedged pid -> Some (Printf.sprintf "Mpi.Fault.Wedged(%d)" pid)
    | _ -> None)

let is_transient = function
  | Transient_send_failure _ | Rank_killed _ | Wedged _ -> true
  | _ -> false

type spec = {
  seed : int;
  delay_prob : float;
  max_delay : float;
  sendfail_prob : float;
  crash_prob : float;
  wedge_prob : float;
  target_rank : int option;
}

let inert =
  {
    seed = 0;
    delay_prob = 0.0;
    max_delay = 1e-5;
    sendfail_prob = 0.0;
    crash_prob = 0.0;
    wedge_prob = 0.0;
    target_rank = None;
  }

let default_spec ~seed =
  { inert with seed; delay_prob = 0.05; sendfail_prob = 0.02 }

let is_inert spec =
  spec.delay_prob = 0.0 && spec.sendfail_prob = 0.0 && spec.crash_prob = 0.0
  && spec.wedge_prob = 0.0

let to_string spec =
  let b = Buffer.create 64 in
  Buffer.add_string b (Printf.sprintf "seed=%d" spec.seed);
  let fld name v = if v > 0.0 then Buffer.add_string b (Printf.sprintf ",%s=%g" name v) in
  fld "delay" spec.delay_prob;
  if spec.delay_prob > 0.0 then
    Buffer.add_string b (Printf.sprintf ",max-delay=%g" spec.max_delay);
  fld "sendfail" spec.sendfail_prob;
  fld "crash" spec.crash_prob;
  fld "wedge" spec.wedge_prob;
  (match spec.target_rank with
  | Some r -> Buffer.add_string b (Printf.sprintf ",rank=%d" r)
  | None -> ());
  Buffer.contents b

let of_string ?seed text =
  let text = String.trim text in
  let base =
    match seed with Some s -> default_spec ~seed:s | None -> inert
  in
  if text = "" then
    if seed = None then Error "empty fault spec (and no fault seed given)"
    else Ok base
  else begin
    (* An explicit spec starts from all-zero probabilities; --fault-seed then
       only provides the seed, not the default mild injection mix. *)
    let spec = ref { inert with seed = base.seed } in
    let err = ref None in
    let prob name v =
      match float_of_string_opt v with
      | Some p when p >= 0.0 && p <= 1.0 -> Some p
      | _ ->
          err := Some (Printf.sprintf "%s must be a probability in [0,1], got %S" name v);
          None
    in
    List.iter
      (fun pair ->
        if !err = None then
          match String.split_on_char '=' (String.trim pair) with
          | [ "seed"; v ] -> (
              match int_of_string_opt v with
              | Some s when seed = None -> spec := { !spec with seed = s }
              | Some _ -> () (* --fault-seed wins over seed= in the spec *)
              | None -> err := Some (Printf.sprintf "bad seed %S" v))
          | [ "delay"; v ] -> (
              match prob "delay" v with
              | Some p -> spec := { !spec with delay_prob = p }
              | None -> ())
          | [ "max-delay"; v ] -> (
              match float_of_string_opt v with
              | Some d when d >= 0.0 -> spec := { !spec with max_delay = d }
              | _ -> err := Some (Printf.sprintf "bad max-delay %S" v))
          | [ "sendfail"; v ] -> (
              match prob "sendfail" v with
              | Some p -> spec := { !spec with sendfail_prob = p }
              | None -> ())
          | [ "crash"; v ] -> (
              match prob "crash" v with
              | Some p -> spec := { !spec with crash_prob = p }
              | None -> ())
          | [ "wedge"; v ] -> (
              match prob "wedge" v with
              | Some p -> spec := { !spec with wedge_prob = p }
              | None -> ())
          | [ "rank"; v ] -> (
              match int_of_string_opt v with
              | Some r -> spec := { !spec with target_rank = Some r }
              | None -> err := Some (Printf.sprintf "bad rank %S" v))
          | _ ->
              err :=
                Some
                  (Printf.sprintf
                     "bad fault spec entry %S (expected key=value with key in \
                      seed|delay|max-delay|sendfail|crash|wedge|rank)"
                     pair))
      (String.split_on_char ',' text);
    match !err with Some e -> Error e | None -> Ok !spec
  end

(* ---- per-run instances ---- *)

(* At most one abortive injection per kind per run, at a pre-drawn
   consultation index. [horizon] bounds how deep into the run an injection
   can land; runs shorter than the drawn index simply see no injection, runs
   longer see exactly one. The bounded count is what makes retries converge:
   a retry re-draws under a fresh salt, so each attempt fails independently
   with the spec's probability rather than once per call site. *)
let horizon = 256

type call_kind = No_call_fault | Kill_at of int | Wedge_at of int

type t = {
  spec : spec;
  rng : Sim.Splitmix.t;  (* delay coin flips, in consultation order *)
  mutable send_countdown : int;  (* consultations until a send failure; -1 = never *)
  mutable call_fault : call_kind;
  mutable call_count : int;
}

let none =
  {
    spec = inert;
    rng = Sim.Splitmix.create 0;
    send_countdown = -1;
    call_fault = No_call_fault;
    call_count = 0;
  }

let make spec ~salt =
  if is_inert spec then none
  else begin
    let rng = Sim.Splitmix.derive spec.seed ~salt in
    let send_countdown =
      if spec.sendfail_prob > 0.0 && Sim.Splitmix.float rng 1.0 < spec.sendfail_prob
      then Sim.Splitmix.int rng horizon
      else -1
    in
    let call_fault =
      if spec.crash_prob +. spec.wedge_prob <= 0.0 then No_call_fault
      else begin
        let r = Sim.Splitmix.float rng 1.0 in
        if r < spec.crash_prob then Kill_at (Sim.Splitmix.int rng horizon)
        else if r < spec.crash_prob +. spec.wedge_prob then
          Wedge_at (Sim.Splitmix.int rng horizon)
        else No_call_fault
      end
    in
    { spec; rng; send_countdown; call_fault; call_count = 0 }
  end

let active t = not (is_inert t.spec)

let targets t pid =
  match t.spec.target_rank with None -> true | Some r -> r = pid

type send_action = Send_ok of float | Send_fail
type call_action = Call_ok | Call_kill | Call_wedge

let on_send t ~src =
  if not (active t && targets t src) then Send_ok 0.0
  else begin
    let fail = t.send_countdown = 0 in
    if t.send_countdown >= 0 then t.send_countdown <- t.send_countdown - 1;
    if fail then Send_fail
    else if
      t.spec.delay_prob > 0.0
      && Sim.Splitmix.float t.rng 1.0 < t.spec.delay_prob
    then Send_ok (Sim.Splitmix.float t.rng t.spec.max_delay)
    else Send_ok 0.0
  end

let on_call t ~pid =
  if not (active t && targets t pid) then Call_ok
  else begin
    let n = t.call_count in
    t.call_count <- n + 1;
    match t.call_fault with
    | Kill_at i when i = n -> Call_kill
    | Wedge_at i when i = n -> Call_wedge
    | _ -> Call_ok
  end

(* Per-replay salt: a pure function of the forced schedule and the attempt
   number, so the fault stream a replay sees is independent of worker count
   and execution order, while retries draw fresh faults. [Hashtbl.hash] is
   deterministic on immutable structural values across runs of the same
   binary, which is all checkpoint resume needs (the schedule itself, not the
   salt, is what goes on disk). *)
let salt_of_schedule ~attempt schedule =
  Hashtbl.hash (attempt, schedule)

(* ---- transport-layer faults ---- *)

module Net = struct
  type spec = {
    seed : int;
    drop : float;
    delay : float;
    max_delay : float;
    dup : float;
    reorder : float;
    corrupt : float;
    truncate : float;
    partition : float;
    partition_frames : int;
    bandwidth : int;
    write_fail : float;
  }

  let inert =
    {
      seed = 0;
      drop = 0.0;
      delay = 0.0;
      max_delay = 0.01;
      dup = 0.0;
      reorder = 0.0;
      corrupt = 0.0;
      truncate = 0.0;
      partition = 0.0;
      partition_frames = 8;
      bandwidth = 0;
      write_fail = 0.0;
    }

  (* The default mix behind [--net-fault-seed] alone is stall-free: delays,
     duplicates and reorders are absorbed inline by the protocol, whereas
     drops / truncations / partitions recover through heartbeat timeouts and
     redials, which under the default 30s heartbeat would make a smoke run
     crawl. The aggressive kinds are opt-in via the spec text. *)
  let default_spec ~seed =
    { inert with seed; delay = 0.2; max_delay = 0.02; dup = 0.15; reorder = 0.1 }

  let wire_inert spec =
    spec.drop = 0.0 && spec.delay = 0.0 && spec.dup = 0.0 && spec.reorder = 0.0
    && spec.corrupt = 0.0 && spec.truncate = 0.0 && spec.partition = 0.0
    && spec.bandwidth = 0

  let is_inert spec = wire_inert spec && spec.write_fail = 0.0

  let to_string spec =
    let b = Buffer.create 64 in
    Buffer.add_string b (Printf.sprintf "seed=%d" spec.seed);
    let fld name v = if v > 0.0 then Buffer.add_string b (Printf.sprintf ",%s=%g" name v) in
    fld "drop" spec.drop;
    fld "delay" spec.delay;
    if spec.delay > 0.0 then
      Buffer.add_string b (Printf.sprintf ",max-delay=%g" spec.max_delay);
    fld "dup" spec.dup;
    fld "reorder" spec.reorder;
    fld "corrupt" spec.corrupt;
    fld "truncate" spec.truncate;
    fld "partition" spec.partition;
    if spec.partition > 0.0 then
      Buffer.add_string b (Printf.sprintf ",partition-frames=%d" spec.partition_frames);
    if spec.bandwidth > 0 then
      Buffer.add_string b (Printf.sprintf ",bandwidth=%d" spec.bandwidth);
    fld "write-fail" spec.write_fail;
    Buffer.contents b

  let of_string ?seed text =
    let text = String.trim text in
    let base = match seed with Some s -> default_spec ~seed:s | None -> inert in
    if text = "" then
      if seed = None then Error "empty net fault spec (and no net fault seed given)"
      else Ok base
    else begin
      let spec = ref { inert with seed = base.seed } in
      let err = ref None in
      let prob name v =
        match float_of_string_opt v with
        | Some p when p >= 0.0 && p <= 1.0 -> Some p
        | _ ->
            err := Some (Printf.sprintf "%s must be a probability in [0,1], got %S" name v);
            None
      in
      let set_prob name v f =
        match prob name v with Some p -> spec := f !spec p | None -> ()
      in
      List.iter
        (fun pair ->
          if !err = None then
            match String.split_on_char '=' (String.trim pair) with
            | [ "seed"; v ] -> (
                match int_of_string_opt v with
                | Some s when seed = None -> spec := { !spec with seed = s }
                | Some _ -> () (* --net-fault-seed wins over seed= in the spec *)
                | None -> err := Some (Printf.sprintf "bad seed %S" v))
            | [ "drop"; v ] -> set_prob "drop" v (fun s p -> { s with drop = p })
            | [ "delay"; v ] -> set_prob "delay" v (fun s p -> { s with delay = p })
            | [ "max-delay"; v ] -> (
                match float_of_string_opt v with
                | Some d when d >= 0.0 -> spec := { !spec with max_delay = d }
                | _ -> err := Some (Printf.sprintf "bad max-delay %S" v))
            | [ "dup"; v ] -> set_prob "dup" v (fun s p -> { s with dup = p })
            | [ "reorder"; v ] -> set_prob "reorder" v (fun s p -> { s with reorder = p })
            | [ "corrupt"; v ] -> set_prob "corrupt" v (fun s p -> { s with corrupt = p })
            | [ "truncate"; v ] -> set_prob "truncate" v (fun s p -> { s with truncate = p })
            | [ "partition"; v ] ->
                set_prob "partition" v (fun s p -> { s with partition = p })
            | [ "partition-frames"; v ] -> (
                match int_of_string_opt v with
                | Some n when n > 0 -> spec := { !spec with partition_frames = n }
                | _ -> err := Some (Printf.sprintf "bad partition-frames %S" v))
            | [ "bandwidth"; v ] -> (
                match int_of_string_opt v with
                | Some n when n >= 0 -> spec := { !spec with bandwidth = n }
                | _ -> err := Some (Printf.sprintf "bad bandwidth %S" v))
            | [ "write-fail"; v ] ->
                set_prob "write-fail" v (fun s p -> { s with write_fail = p })
            | _ ->
                err :=
                  Some
                    (Printf.sprintf
                       "bad net fault spec entry %S (expected key=value with key in \
                        seed|drop|delay|max-delay|dup|reorder|corrupt|truncate|\
                        partition|partition-frames|bandwidth|write-fail)"
                       pair))
        (String.split_on_char ',' text);
      match !err with Some e -> Error e | None -> Ok !spec
    end

  (* ---- per-connection instances ----

     Mirrors the replay-fault idiom above: each one-shot kind pre-draws a
     single consultation index at [make], bounded by a small horizon, so every
     connection instance suffers at most one injection per kind and chaos
     quiesces — a redial is a fresh instance under a fresh salt, which re-draws
     independently, so with probabilities < 1 a lossy link makes progress with
     probability 1 while staying a pure function of (spec, salt).

     Frame classes gate which kinds may strike where:
     - [Control] (handshake, job setup, shutdown): only delayed or swallowed by
       a partition window. Dropping or corrupting exactly one of these in
       isolation would not add coverage — the recovery path (connection death,
       redial) is the same one a partition already exercises — while silently
       breaking invariants the protocol state machine is entitled to (e.g. a
       reordered lease-before-job is a permanent protocol error, not a fault).
     - [Chatter] (heartbeats, telemetry, progress): additionally corruptible —
       they parse-fail loudly and poison the connection, exercising detection.
     - [Payload] (leases, results): the frames exactly-once delivery is about;
       drop/dup/reorder/truncate target these. *)

  let payload_horizon = 4
  let frame_horizon = 16

  type klass = Control | Chatter | Payload

  type action =
    | Deliver of { delay : float; copies : int }
    | Drop_frame
    | Corrupt_frame
    | Truncate_sever
    | Hold_back

  type t = {
    spec : spec;
    rng : Sim.Splitmix.t;
    on_inject : string -> unit;
    drop_at : int;      (* payload-frame index; -1 = never *)
    dup_at : int;
    hold_at : int;
    corrupt_at : int;   (* non-control-frame index *)
    truncate_at : int;
    part_start : int;   (* any-frame index; -1 = never *)
    part_len : int;
    mutable payloads : int;
    mutable noncontrol : int;
    mutable frames : int;
  }

  let none =
    {
      spec = inert;
      rng = Sim.Splitmix.create 0;
      on_inject = ignore;
      drop_at = -1;
      dup_at = -1;
      hold_at = -1;
      corrupt_at = -1;
      truncate_at = -1;
      part_start = -1;
      part_len = 0;
      payloads = 0;
      noncontrol = 0;
      frames = 0;
    }

  let make ?(on_inject = ignore) spec ~salt =
    if wire_inert spec then none
    else begin
      let rng = Sim.Splitmix.derive spec.seed ~salt in
      let draw p horizon =
        if p > 0.0 && Sim.Splitmix.float rng 1.0 < p then Sim.Splitmix.int rng horizon
        else -1
      in
      let drop_at = draw spec.drop payload_horizon in
      let dup_at = draw spec.dup payload_horizon in
      let hold_at = draw spec.reorder payload_horizon in
      let corrupt_at = draw spec.corrupt frame_horizon in
      let truncate_at = draw spec.truncate frame_horizon in
      let part_start = draw spec.partition frame_horizon in
      {
        spec;
        rng;
        on_inject;
        drop_at;
        dup_at;
        hold_at;
        corrupt_at;
        truncate_at;
        part_start;
        part_len = spec.partition_frames;
        payloads = 0;
        noncontrol = 0;
        frames = 0;
      }
    end

  let active t = not (wire_inert t.spec)

  let on_frame t ~klass ~size =
    if not (active t) then Deliver { delay = 0.0; copies = 1 }
    else begin
      let f = t.frames in
      t.frames <- f + 1;
      let nc =
        match klass with
        | Control -> -1
        | Chatter | Payload ->
            let n = t.noncontrol in
            t.noncontrol <- n + 1;
            n
      in
      let p =
        match klass with
        | Payload ->
            let n = t.payloads in
            t.payloads <- n + 1;
            n
        | Control | Chatter -> -1
      in
      (* The delay coin is flipped unconditionally so the consultation stream
         stays aligned across frame classes. *)
      let coin =
        t.spec.delay > 0.0 && Sim.Splitmix.float t.rng 1.0 < t.spec.delay
      in
      let jitter = if coin then Sim.Splitmix.float t.rng t.spec.max_delay else 0.0 in
      if t.part_start >= 0 && f >= t.part_start && f < t.part_start + t.part_len
      then begin
        t.on_inject "partition";
        Drop_frame
      end
      else if nc >= 0 && nc = t.truncate_at then begin
        t.on_inject "truncate";
        Truncate_sever
      end
      else if nc >= 0 && nc = t.corrupt_at then begin
        t.on_inject "corrupt";
        Corrupt_frame
      end
      else if p >= 0 && p = t.drop_at then begin
        t.on_inject "drop";
        Drop_frame
      end
      else if p >= 0 && p = t.hold_at then begin
        t.on_inject "reorder";
        Hold_back
      end
      else begin
        let copies = if p >= 0 && p = t.dup_at then 2 else 1 in
        if copies = 2 then t.on_inject "dup";
        let shaping =
          if t.spec.bandwidth > 0 then float_of_int size /. float_of_int t.spec.bandwidth
          else 0.0
        in
        let delay = jitter +. shaping in
        if delay > 0.0 then t.on_inject "delay";
        Deliver { delay; copies }
      end
    end

  (* A detectably-corrupt frame: the leading verb byte becomes an unprintable
     control character, so the receiver's line parser rejects the frame
     ("unexpected … line") instead of silently ingesting mangled payload.
     Undetectable mid-payload corruption is out of scope until the wire grows
     checksummed framing (see ROADMAP: transport security). *)
  let corrupt_bytes frame =
    if String.length frame = 0 then frame
    else begin
      let b = Bytes.of_string frame in
      Bytes.set b 0 '\x01';
      Bytes.to_string b
    end

  let truncate_len frame =
    let n = String.length frame in
    if n <= 1 then n else n / 2

  let fs_fault spec ~salt =
    if spec.write_fail <= 0.0 then fun () -> false
    else begin
      let rng = Sim.Splitmix.derive spec.seed ~salt:(salt lxor 0x5f5f) in
      fun () -> Sim.Splitmix.float rng 1.0 < spec.write_fail
    end
end
