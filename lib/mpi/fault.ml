(* Deterministic, seed-driven fault injection. See fault.mli for the model.

   Determinism contract: a [t] built from the same (spec, salt) pair injects
   at the same consultation indices with the same parameters, regardless of
   which OS thread or domain drives the run. All randomness flows through a
   private Splitmix stream derived from (spec.seed, salt); the per-run
   injection points are drawn once at [make] so that the decision "this run
   fails its Nth send" does not depend on how many delay coins were flipped
   before it. *)

exception Transient_send_failure of string
exception Rank_killed of int
exception Wedged of int

let () =
  Printexc.register_printer (function
    | Transient_send_failure site ->
        Some (Printf.sprintf "Mpi.Fault.Transient_send_failure(%S)" site)
    | Rank_killed pid -> Some (Printf.sprintf "Mpi.Fault.Rank_killed(%d)" pid)
    | Wedged pid -> Some (Printf.sprintf "Mpi.Fault.Wedged(%d)" pid)
    | _ -> None)

let is_transient = function
  | Transient_send_failure _ | Rank_killed _ | Wedged _ -> true
  | _ -> false

type spec = {
  seed : int;
  delay_prob : float;
  max_delay : float;
  sendfail_prob : float;
  crash_prob : float;
  wedge_prob : float;
  target_rank : int option;
}

let inert =
  {
    seed = 0;
    delay_prob = 0.0;
    max_delay = 1e-5;
    sendfail_prob = 0.0;
    crash_prob = 0.0;
    wedge_prob = 0.0;
    target_rank = None;
  }

let default_spec ~seed =
  { inert with seed; delay_prob = 0.05; sendfail_prob = 0.02 }

let is_inert spec =
  spec.delay_prob = 0.0 && spec.sendfail_prob = 0.0 && spec.crash_prob = 0.0
  && spec.wedge_prob = 0.0

let to_string spec =
  let b = Buffer.create 64 in
  Buffer.add_string b (Printf.sprintf "seed=%d" spec.seed);
  let fld name v = if v > 0.0 then Buffer.add_string b (Printf.sprintf ",%s=%g" name v) in
  fld "delay" spec.delay_prob;
  if spec.delay_prob > 0.0 then
    Buffer.add_string b (Printf.sprintf ",max-delay=%g" spec.max_delay);
  fld "sendfail" spec.sendfail_prob;
  fld "crash" spec.crash_prob;
  fld "wedge" spec.wedge_prob;
  (match spec.target_rank with
  | Some r -> Buffer.add_string b (Printf.sprintf ",rank=%d" r)
  | None -> ());
  Buffer.contents b

let of_string ?seed text =
  let text = String.trim text in
  let base =
    match seed with Some s -> default_spec ~seed:s | None -> inert
  in
  if text = "" then
    if seed = None then Error "empty fault spec (and no fault seed given)"
    else Ok base
  else begin
    (* An explicit spec starts from all-zero probabilities; --fault-seed then
       only provides the seed, not the default mild injection mix. *)
    let spec = ref { inert with seed = base.seed } in
    let err = ref None in
    let prob name v =
      match float_of_string_opt v with
      | Some p when p >= 0.0 && p <= 1.0 -> Some p
      | _ ->
          err := Some (Printf.sprintf "%s must be a probability in [0,1], got %S" name v);
          None
    in
    List.iter
      (fun pair ->
        if !err = None then
          match String.split_on_char '=' (String.trim pair) with
          | [ "seed"; v ] -> (
              match int_of_string_opt v with
              | Some s when seed = None -> spec := { !spec with seed = s }
              | Some _ -> () (* --fault-seed wins over seed= in the spec *)
              | None -> err := Some (Printf.sprintf "bad seed %S" v))
          | [ "delay"; v ] -> (
              match prob "delay" v with
              | Some p -> spec := { !spec with delay_prob = p }
              | None -> ())
          | [ "max-delay"; v ] -> (
              match float_of_string_opt v with
              | Some d when d >= 0.0 -> spec := { !spec with max_delay = d }
              | _ -> err := Some (Printf.sprintf "bad max-delay %S" v))
          | [ "sendfail"; v ] -> (
              match prob "sendfail" v with
              | Some p -> spec := { !spec with sendfail_prob = p }
              | None -> ())
          | [ "crash"; v ] -> (
              match prob "crash" v with
              | Some p -> spec := { !spec with crash_prob = p }
              | None -> ())
          | [ "wedge"; v ] -> (
              match prob "wedge" v with
              | Some p -> spec := { !spec with wedge_prob = p }
              | None -> ())
          | [ "rank"; v ] -> (
              match int_of_string_opt v with
              | Some r -> spec := { !spec with target_rank = Some r }
              | None -> err := Some (Printf.sprintf "bad rank %S" v))
          | _ ->
              err :=
                Some
                  (Printf.sprintf
                     "bad fault spec entry %S (expected key=value with key in \
                      seed|delay|max-delay|sendfail|crash|wedge|rank)"
                     pair))
      (String.split_on_char ',' text);
    match !err with Some e -> Error e | None -> Ok !spec
  end

(* ---- per-run instances ---- *)

(* At most one abortive injection per kind per run, at a pre-drawn
   consultation index. [horizon] bounds how deep into the run an injection
   can land; runs shorter than the drawn index simply see no injection, runs
   longer see exactly one. The bounded count is what makes retries converge:
   a retry re-draws under a fresh salt, so each attempt fails independently
   with the spec's probability rather than once per call site. *)
let horizon = 256

type call_kind = No_call_fault | Kill_at of int | Wedge_at of int

type t = {
  spec : spec;
  rng : Sim.Splitmix.t;  (* delay coin flips, in consultation order *)
  mutable send_countdown : int;  (* consultations until a send failure; -1 = never *)
  mutable call_fault : call_kind;
  mutable call_count : int;
}

let none =
  {
    spec = inert;
    rng = Sim.Splitmix.create 0;
    send_countdown = -1;
    call_fault = No_call_fault;
    call_count = 0;
  }

let make spec ~salt =
  if is_inert spec then none
  else begin
    let rng = Sim.Splitmix.derive spec.seed ~salt in
    let send_countdown =
      if spec.sendfail_prob > 0.0 && Sim.Splitmix.float rng 1.0 < spec.sendfail_prob
      then Sim.Splitmix.int rng horizon
      else -1
    in
    let call_fault =
      if spec.crash_prob +. spec.wedge_prob <= 0.0 then No_call_fault
      else begin
        let r = Sim.Splitmix.float rng 1.0 in
        if r < spec.crash_prob then Kill_at (Sim.Splitmix.int rng horizon)
        else if r < spec.crash_prob +. spec.wedge_prob then
          Wedge_at (Sim.Splitmix.int rng horizon)
        else No_call_fault
      end
    in
    { spec; rng; send_countdown; call_fault; call_count = 0 }
  end

let active t = not (is_inert t.spec)

let targets t pid =
  match t.spec.target_rank with None -> true | Some r -> r = pid

type send_action = Send_ok of float | Send_fail
type call_action = Call_ok | Call_kill | Call_wedge

let on_send t ~src =
  if not (active t && targets t src) then Send_ok 0.0
  else begin
    let fail = t.send_countdown = 0 in
    if t.send_countdown >= 0 then t.send_countdown <- t.send_countdown - 1;
    if fail then Send_fail
    else if
      t.spec.delay_prob > 0.0
      && Sim.Splitmix.float t.rng 1.0 < t.spec.delay_prob
    then Send_ok (Sim.Splitmix.float t.rng t.spec.max_delay)
    else Send_ok 0.0
  end

let on_call t ~pid =
  if not (active t && targets t pid) then Call_ok
  else begin
    let n = t.call_count in
    t.call_count <- n + 1;
    match t.call_fault with
    | Kill_at i when i = n -> Call_kill
    | Wedge_at i when i = n -> Call_wedge
    | _ -> Call_ok
  end

(* Per-replay salt: a pure function of the forced schedule and the attempt
   number, so the fault stream a replay sees is independent of worker count
   and execution order, while retries draw fresh faults. [Hashtbl.hash] is
   deterministic on immutable structural values across runs of the same
   binary, which is all checkpoint resume needs (the schedule itself, not the
   salt, is what goes on disk). *)
let salt_of_schedule ~attempt schedule =
  Hashtbl.hash (attempt, schedule)
