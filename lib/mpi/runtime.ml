(** The simulated MPI runtime.

    Ranks execute as deterministic coroutines ({!Sim.Coroutine}); every MPI
    operation below runs in the context of the "current" process. Message
    transfer is eager: a send deposits its envelope at the destination
    mailbox immediately in scheduler order, while virtual timestamps carry
    the cost model ({!Sim.Vtime}). The combination gives a runtime that is

    - {e deterministic}: same program, same oracle, same schedule — the
      property DAMPI's stateless replay relies on;
    - {e biased}: wildcard receives resolve to whatever the (deterministic)
      default oracle picks, mirroring how a production MPI library biases
      non-deterministic outcomes (the paper's §I motivation);
    - {e observable}: deadlock (global quiescence), operation statistics,
      and resource leaks are all surfaced to the verification layers. *)

module Coroutine = Sim.Coroutine
module Vtime = Sim.Vtime

type cost_model = {
  local_op : float;  (** CPU cost of posting any MPI operation *)
  latency : float;  (** point-to-point wire latency *)
  per_byte : float;  (** per-byte transfer cost *)
  coll_base : float;  (** base cost of a collective *)
  coll_per_log : float;  (** additional collective cost per log2(size) *)
}

let default_cost =
  {
    local_op = 1e-7;
    latency = 2e-6;
    per_byte = 1e-9;
    coll_base = 4e-6;
    coll_per_log = 2e-6;
  }

(** Match oracle: picks among the per-source candidate envelopes of a
    wildcard receive or probe. Called only when two or more candidates
    exist. The default picks the earliest arrival — the "native MPI bias". *)
type oracle = Envelope.t list -> Envelope.t

let default_oracle = function
  | [] -> invalid_arg "oracle: no candidates"
  | env :: _ -> env

(* Per-communicator rendezvous slot for collectives. *)
type coll_slot = {
  mutable op_name : string;
  mutable arrivals : (int * Payload.t * float) list;  (* rank, contrib, time *)
  mutable results : Payload.t array;
  mutable gen : int;  (* completed generations *)
}

type comm_record = { comm : Comm.t; coll : coll_slot }

(** Optional execution trace: one entry per interesting runtime event, in
    scheduler order. Virtual timestamps are the acting process's clock. *)
type event =
  | Ev_send of {
      t : float;
      src : int;
      dst : int;
      tag : int;
      ctx : int;
      bytes : int;
      sync : bool;
    }
  | Ev_recv_post of { t : float; pid : int; src : int; tag : int; ctx : int }
  | Ev_match of { t : float; src : int; dst : int; tag : int; ctx : int }
  | Ev_collective of { t : float; name : string; ctx : int; size : int }

let pp_event ppf = function
  | Ev_send { t; src; dst; tag; ctx; bytes; sync } ->
      Format.fprintf ppf "%.6f  %ssend   %d -> %d  tag=%d ctx=%d (%dB)" t
        (if sync then "s" else " ")
        src dst tag ctx bytes
  | Ev_recv_post { t; pid; src; tag; ctx } ->
      Format.fprintf ppf "%.6f   recv   %d <- %s  tag=%s ctx=%d" t pid
        (if src = Types.any_source then "*" else string_of_int src)
        (if tag = Types.any_tag then "*" else string_of_int tag)
        ctx
  | Ev_match { t; src; dst; tag; ctx } ->
      Format.fprintf ppf "%.6f   match  %d -> %d  tag=%d ctx=%d" t src dst tag
        ctx
  | Ev_collective { t; name; ctx; size } ->
      Format.fprintf ppf "%.6f   coll   %-10s ctx=%d (%d ranks)" t name ctx
        size

(* Cached metric handles, resolved once at [create] so the hot paths do no
   name lookups. Present only when the caller supplied a metrics shard. *)
type rmetrics = {
  m_match_attempts : Obs.Metrics.counter;
  m_wildcard_candidates : Obs.Metrics.histogram;
  m_queue_depth : Obs.Metrics.histogram;
  m_deadlock_checks : Obs.Metrics.counter;
  m_env_pool_reuses : Obs.Metrics.counter;
  m_match_loop : Obs.Metrics.histogram option;
      (* [--profile]: wall time of each match-loop entry *)
}

(* Envelope free-list capacity. In-flight envelopes rarely exceed a few per
   rank; overflow simply falls back to fresh allocation. *)
let env_pool_cap = 256

type t = {
  np : int;
  sched : Coroutine.sched;
  vt : Vtime.t;
  cost : cost_model;
  oracle : oracle;
  mailboxes : Matching.mailbox array;
  comm_world : Comm.t;
  comm_by_ctx : (int, comm_record) Hashtbl.t;
  mutable comm_registry : comm_record list;  (* creation order *)
  mutable next_ctx : int;
  mutable next_uid : int;
  mutable next_req : int;
  chan_seq : (int, int array) Hashtbl.t;
      (* ctx -> np*np dense counters, indexed [src * np + dst] *)
  pending_sync : (int, Request.t) Hashtbl.t;  (* envelope uid -> send req *)
  mutable choose_fn : oracle;
      (* [consult_oracle rt] closed once at [create]; hot paths reuse it
         instead of re-building the partial application per receive *)
  env_pool : Envelope.t array;  (* free list of recycled envelopes *)
  mutable env_pool_top : int;
  stats : Stats.t;
  req_created : int array;
  req_released : int array;
  wildcard_recvs : int array;
  mutable pcontrol_hook : (pid:int -> int -> unit) option;
  fault : Fault.t;
  mutable interrupt_hook : (unit -> unit) option;
  mutable spawned : bool;
  trace_on : bool;
  mutable trace_events : event list;  (* reversed; only filled if trace_on *)
  metrics : rmetrics option;
}

let fresh_slot () =
  { op_name = ""; arrivals = []; results = [||]; gen = 0 }

(* Wildcard/probe oracle consultation, instrumented with the candidate-list
   width so the metrics expose how much non-determinism each run faced. *)
let consult_oracle rt envs =
  (match rt.metrics with
  | Some m ->
      Obs.Metrics.observe m.m_wildcard_candidates
        (float_of_int (List.length envs))
  | None -> ());
  rt.oracle envs

let register_comm rt comm =
  let record = { comm; coll = fresh_slot () } in
  Hashtbl.replace rt.comm_by_ctx (Comm.ctx comm) record;
  rt.comm_registry <- record :: rt.comm_registry;
  record

let create ?(cost = default_cost) ?(oracle = default_oracle) ?(trace = false)
    ?metrics ?(profile = false) ?(fault = Fault.none) ~np () =
  if np <= 0 then invalid_arg "Runtime.create: np must be positive";
  let comm_world =
    Comm.make ~ctx:0 ~ranks:(Array.init np Fun.id) ~internal:false
      ~label:"world"
  in
  (* Placeholder filling the (initially empty) free-list slots; only entries
     below [env_pool_top] are ever read. *)
  let dummy_env =
    {
      Envelope.uid = -1;
      src = -1;
      dst = -1;
      tag = -1;
      ctx = -1;
      seq = -1;
      payload = Payload.Unit;
      send_time = 0.0;
      delay = 0.0;
      sync = false;
      send_req = -1;
    }
  in
  let rt =
    {
      np;
      sched = Coroutine.create ();
      vt = Vtime.create np;
      cost;
      oracle;
      mailboxes = Array.init np (fun _ -> Matching.create ());
      comm_world;
      comm_by_ctx = Hashtbl.create 16;
      comm_registry = [];
      next_ctx = 1;
      next_uid = 0;
      next_req = 0;
      chan_seq = Hashtbl.create 8;
      pending_sync = Hashtbl.create 16;
      choose_fn = default_oracle;
      env_pool = Array.make env_pool_cap dummy_env;
      env_pool_top = 0;
      stats = Stats.create np;
      req_created = Array.make np 0;
      req_released = Array.make np 0;
      wildcard_recvs = Array.make np 0;
      pcontrol_hook = None;
      fault;
      interrupt_hook = None;
      spawned = false;
      trace_on = trace;
      trace_events = [];
      metrics =
        Option.map
          (fun sh ->
            {
              m_match_attempts = Obs.Metrics.counter sh "mpi.match_attempts";
              m_wildcard_candidates =
                Obs.Metrics.histogram sh ~bounds:Obs.Metrics.count_bounds
                  "mpi.wildcard_candidates";
              m_queue_depth =
                Obs.Metrics.histogram sh ~bounds:Obs.Metrics.count_bounds
                  "mpi.queue_depth";
              m_deadlock_checks = Obs.Metrics.counter sh "mpi.deadlock_checks";
              m_env_pool_reuses =
                Obs.Metrics.counter sh "mpi.envelope_pool_reuses";
              m_match_loop =
                (if profile then
                   Some (Obs.Metrics.histogram sh "profile.match_loop_s")
                 else None);
            })
          metrics;
    }
  in
  ignore (register_comm rt comm_world);
  rt.choose_fn <- (fun envs -> consult_oracle rt envs);
  rt

let np rt = rt.np
let comm_world rt = rt.comm_world
let stats rt = rt.stats
let current (_ : t) = Coroutine.self ()
let clock rt pid = Vtime.now rt.vt pid
let advance_clock rt pid dt = Vtime.advance rt.vt pid dt
let makespan rt = Vtime.makespan rt.vt
let set_pcontrol_hook rt f = rt.pcontrol_hook <- Some f
let set_interrupt_hook rt f = rt.interrupt_hook <- Some f

(* An injected wedge: spin forever, cooperatively. Each turn polls the
   interrupt hook (the verifier's poison path) so a watchdog upstream can
   break the loop by raising; yielding keeps sibling ranks runnable, so the
   scheduler never quiesces into a (false) deadlock verdict. Without a hook
   nothing could ever interrupt the spin, so degrade to a kill. *)
let wedge rt pid =
  match rt.interrupt_hook with
  | None -> raise (Fault.Wedged pid)
  | Some hook ->
      let rec spin () =
        hook ();
        Coroutine.yield ();
        spin ()
      in
      spin ()

(* Fault consultation at a blocking call site (waits, probes, collectives). *)
let fault_call_site rt =
  if Fault.active rt.fault then begin
    let me = Coroutine.self () in
    match Fault.on_call rt.fault ~pid:me with
    | Fault.Call_ok -> ()
    | Fault.Call_kill -> raise (Fault.Rank_killed me)
    | Fault.Call_wedge -> wedge rt me
  end

(* Call sites guard on [rt.trace_on] BEFORE building the event, so a
   trace-off runtime never allocates an event record at all. *)
let record_event rt ev = rt.trace_events <- ev :: rt.trace_events

let trace rt = List.rev rt.trace_events

let count_match_attempt rt =
  match rt.metrics with
  | Some m -> Obs.Metrics.incr m.m_match_attempts
  | None -> ()

let observe_queue_depth rt dst =
  match rt.metrics with
  | Some m ->
      Obs.Metrics.observe m.m_queue_depth
        (float_of_int (Matching.unexpected_count rt.mailboxes.(dst)))
  | None -> ()

let comm_of_ctx rt ctx =
  match Hashtbl.find_opt rt.comm_by_ctx ctx with
  | Some r -> r.comm
  | None -> Types.mpi_errorf "unknown communicator context %d" ctx

let record_of_comm rt comm =
  match Hashtbl.find_opt rt.comm_by_ctx (Comm.ctx comm) with
  | Some r -> r
  | None ->
      Types.mpi_errorf "communicator %s(ctx=%d) is not registered"
        (Comm.label comm) (Comm.ctx comm)

(* Park the current process until [pred] holds; whoever makes it hold must
   wake us. Spurious wake-ups simply re-check. Each re-check of a blocked
   predicate is one potential-deadlock probe, counted as such.

   [reason] is a thunk: the human-readable block reason is only rendered
   when the process actually blocks, so the (common) already-complete case
   never pays for string formatting. The request state cannot change between
   the predicate check and the render, so the string is identical to what an
   eager caller would have built. *)
let wait_until rt ~reason pred =
  while not (pred ()) do
    (match rt.metrics with
    | Some m -> Obs.Metrics.incr m.m_deadlock_checks
    | None -> ());
    Coroutine.block (reason ())
  done

let fresh_req rt ~owner ~kind =
  let uid = rt.next_req in
  rt.next_req <- uid + 1;
  rt.req_created.(owner) <- rt.req_created.(owner) + 1;
  {
    Request.uid;
    owner;
    kind;
    complete = false;
    released = false;
    status = None;
    data = None;
    arrive_time = 0.0;
  }

let release rt (req : Request.t) =
  if not req.released then begin
    req.released <- true;
    rt.req_released.(req.owner) <- rt.req_released.(req.owner) + 1
  end

(* Transfer-complete timestamp of an envelope at the receiver. *)
let arrival_stamp rt (env : Envelope.t) =
  env.send_time +. rt.cost.latency +. env.delay
  +. (rt.cost.per_byte *. float_of_int (Payload.size_bytes env.payload))

(* Fill in a matched receive request from the envelope it consumed. *)
let complete_recv rt (req : Request.t) (env : Envelope.t) =
  let comm = comm_of_ctx rt env.ctx in
  let source = Comm.rank_of_world comm env.src in
  req.complete <- true;
  req.status <-
    Some
      {
        Types.source;
        tag = env.tag;
        count = Payload.size_bytes env.payload;
      };
  req.data <- Some env.payload;
  req.arrive_time <- arrival_stamp rt env;
  (match req.kind with
  | Request.Recv r -> r.src <- env.src
  | Request.Send _ -> assert false);
  if rt.trace_on then
    record_event rt
      (Ev_match
         {
           t = req.arrive_time;
           src = env.Envelope.src;
           dst = req.owner;
           tag = env.Envelope.tag;
           ctx = env.Envelope.ctx;
         });
  Coroutine.wake rt.sched req.owner;
  (* A synchronous-mode send completes when its message is matched. *)
  if env.sync then
    match Hashtbl.find_opt rt.pending_sync env.send_req with
    | Some sreq ->
        Hashtbl.remove rt.pending_sync env.send_req;
        sreq.complete <- true;
        sreq.arrive_time <-
          Float.max (arrival_stamp rt env) (Vtime.now rt.vt req.owner);
        Coroutine.wake rt.sched env.src
    | None -> assert false

(* ---- Point-to-point ---- *)

(* Per-channel sequence counters live in one dense np*np array per context:
   bumping a counter touches no hash table and allocates nothing (the array
   itself is created once per (runtime, context)). *)
let next_chan_seq rt ~src ~dst ~ctx =
  let counters =
    match Hashtbl.find rt.chan_seq ctx with
    | counters -> counters
    | exception Not_found ->
        let counters = Array.make (rt.np * rt.np) 0 in
        Hashtbl.add rt.chan_seq ctx counters;
        counters
  in
  let slot = (src * rt.np) + dst in
  let n = counters.(slot) in
  counters.(slot) <- n + 1;
  n

(* Envelope free list. An envelope is recyclable as soon as its matching
   receive has completed (the request copies everything it needs); probes
   never consume envelopes, and envelopes still queued at run end are simply
   dropped with the runtime. *)
let release_env rt (env : Envelope.t) =
  if rt.env_pool_top < Array.length rt.env_pool then begin
    env.payload <- Payload.Unit;  (* don't retain user payloads *)
    rt.env_pool.(rt.env_pool_top) <- env;
    rt.env_pool_top <- rt.env_pool_top + 1
  end

let acquire_env rt ~uid ~src ~dst ~tag ~ctx ~seq ~payload ~send_time ~delay
    ~sync ~send_req =
  if rt.env_pool_top > 0 then begin
    rt.env_pool_top <- rt.env_pool_top - 1;
    (match rt.metrics with
    | Some m -> Obs.Metrics.incr m.m_env_pool_reuses
    | None -> ());
    let e = rt.env_pool.(rt.env_pool_top) in
    e.Envelope.uid <- uid;
    e.src <- src;
    e.dst <- dst;
    e.tag <- tag;
    e.ctx <- ctx;
    e.seq <- seq;
    e.payload <- payload;
    e.send_time <- send_time;
    e.delay <- delay;
    e.sync <- sync;
    e.send_req <- send_req;
    e
  end
  else
    {
      Envelope.uid;
      src;
      dst;
      tag;
      ctx;
      seq;
      payload;
      send_time;
      delay;
      sync;
      send_req;
    }

(* Hand a freshly sent envelope to the destination mailbox; a completed
   match retires the envelope to the free list (the request has copied out
   everything it needs). *)
let deliver_arrival rt dst env =
  match Matching.on_arrival rt.mailboxes.(dst) env with
  | Matching.Delivered rreq ->
      complete_recv rt rreq env;
      release_env rt env
  | Matching.Queued -> ()

let check_member comm pid =
  if not (Comm.is_member comm pid) then
    Types.mpi_errorf "process %d is not in communicator %s" pid
      (Comm.label comm)

let check_live comm pid =
  if Comm.freed_by comm pid then
    Types.mpi_errorf "rank %d uses communicator %s(ctx=%d) after freeing it"
      pid (Comm.label comm) (Comm.ctx comm)

let post_send rt ?(tag = 0) ~dest ~sync comm payload =
  let me = current rt in
  check_member comm me;
  check_live comm me;
  if tag < 0 then Types.mpi_errorf "send with negative tag %d" tag;
  let dst = Comm.world_of_rank comm dest in
  Stats.record rt.stats me Stats.Send_recv (if sync then "ssend" else "send");
  Vtime.advance rt.vt me rt.cost.local_op;
  let delay =
    if not (Fault.active rt.fault) then 0.0
    else
      match Fault.on_send rt.fault ~src:me with
      | Fault.Send_ok d -> d
      | Fault.Send_fail ->
          raise
            (Fault.Transient_send_failure
               (Printf.sprintf "send %d -> %d" me dst))
  in
  let ctx = Comm.ctx comm in
  let req =
    fresh_req rt ~owner:me ~kind:(Request.Send { dest = dst; tag; ctx; sync })
  in
  let uid = rt.next_uid in
  rt.next_uid <- uid + 1;
  let env =
    acquire_env rt ~uid ~src:me ~dst ~tag ~ctx
      ~seq:(next_chan_seq rt ~src:me ~dst ~ctx)
      ~payload
      ~send_time:(Vtime.now rt.vt me)
      ~delay ~sync ~send_req:req.uid
  in
  if sync then Hashtbl.replace rt.pending_sync req.uid req
  else req.complete <- true;
  if rt.trace_on then
    record_event rt
      (Ev_send
         {
           t = env.Envelope.send_time;
           src = me;
           dst;
           tag;
           ctx;
           bytes = Payload.size_bytes payload;
           sync;
         });
  count_match_attempt rt;
  (* Dispatch without wrapping the match in a closure: the [--profile]
     timing wrapper is only built when profiling is actually on. *)
  (match rt.metrics with
  | Some { m_match_loop = Some h; _ } ->
      Obs.Metrics.time h (fun () -> deliver_arrival rt dst env)
  | _ -> deliver_arrival rt dst env);
  observe_queue_depth rt dst;
  (* Always nudge the destination: it may be parked in a blocking probe. *)
  Coroutine.wake rt.sched dst;
  req

(* Posting side of the match loop: claim an already-arrived envelope if one
   matches, using the cached oracle closure ([rt.choose_fn]) rather than a
   fresh partial application per receive. *)
let claim_unexpected rt me (req : Request.t) =
  match Matching.post_recv rt.mailboxes.(me) req ~choose:rt.choose_fn with
  | Some env ->
      complete_recv rt req env;
      release_env rt env
  | None -> ()

let isend rt ?tag ~dest comm payload =
  post_send rt ?tag ~dest ~sync:false comm payload

let issend rt ?tag ~dest comm payload =
  post_send rt ?tag ~dest ~sync:true comm payload

let post_recv rt ?(src = Types.any_source) ?(tag = Types.any_tag) comm =
  let me = current rt in
  check_member comm me;
  check_live comm me;
  Stats.record rt.stats me Stats.Send_recv "recv";
  Vtime.advance rt.vt me rt.cost.local_op;
  let wildcard = src = Types.any_source in
  if wildcard then rt.wildcard_recvs.(me) <- rt.wildcard_recvs.(me) + 1;
  let src_pid =
    if wildcard then Types.any_source else Comm.world_of_rank comm src
  in
  let req =
    fresh_req rt ~owner:me
      ~kind:
        (Request.Recv
           { src = src_pid; tag; ctx = Comm.ctx comm; posted_as_wildcard = wildcard })
  in
  if rt.trace_on then
    record_event rt
      (Ev_recv_post
         { t = Vtime.now rt.vt me; pid = me; src = src_pid; tag; ctx = Comm.ctx comm });
  count_match_attempt rt;
  (match rt.metrics with
  | Some { m_match_loop = Some h; _ } ->
      Obs.Metrics.time h (fun () -> claim_unexpected rt me req)
  | _ -> claim_unexpected rt me req);
  req

let irecv = post_recv

(* ---- Completion ---- *)

let observe_completion rt (req : Request.t) =
  let me = req.owner in
  Vtime.observe rt.vt me req.arrive_time;
  release rt req;
  match req.status with
  | Some st -> st
  | None -> { Types.source = -1; tag = -1; count = 0 }

let wait rt (req : Request.t) =
  let me = current rt in
  if req.owner <> me then
    Types.mpi_errorf "process %d waits on a request owned by %d" me req.owner;
  Stats.record rt.stats me Stats.Wait "wait";
  Vtime.advance rt.vt me rt.cost.local_op;
  fault_call_site rt;
  wait_until rt
    ~reason:(fun () -> Format.asprintf "wait(%a)" Request.pp req)
    (fun () -> req.complete);
  observe_completion rt req

let test rt (req : Request.t) =
  let me = current rt in
  Stats.record rt.stats me Stats.Wait "test";
  Vtime.advance rt.vt me rt.cost.local_op;
  if req.complete then Some (observe_completion rt req)
  else begin
    (* Yield on a miss so that test-loops make global progress. *)
    Coroutine.yield ();
    None
  end

let waitall rt reqs =
  let me = current rt in
  Stats.record rt.stats me Stats.Wait "waitall";
  Vtime.advance rt.vt me rt.cost.local_op;
  fault_call_site rt;
  wait_until rt
    ~reason:(fun () -> "waitall")
    (fun () -> List.for_all (fun (r : Request.t) -> r.complete) reqs);
  List.map (observe_completion rt) reqs

let waitany rt reqs =
  if reqs = [] then invalid_arg "waitany: empty request list";
  let me = current rt in
  Stats.record rt.stats me Stats.Wait "waitany";
  Vtime.advance rt.vt me rt.cost.local_op;
  fault_call_site rt;
  wait_until rt
    ~reason:(fun () -> "waitany")
    (fun () ->
      List.exists (fun (r : Request.t) -> r.complete && not r.released) reqs);
  let rec find i = function
    | [] -> assert false
    | (r : Request.t) :: rest ->
        if r.complete && not r.released then (i, observe_completion rt r)
        else find (i + 1) rest
  in
  find 0 reqs

let testall rt reqs =
  let me = current rt in
  Stats.record rt.stats me Stats.Wait "testall";
  Vtime.advance rt.vt me rt.cost.local_op;
  if List.for_all (fun (r : Request.t) -> r.complete) reqs then
    Some (List.map (observe_completion rt) reqs)
  else begin
    Coroutine.yield ();
    None
  end

let recv rt ?src ?tag comm =
  let req = post_recv rt ?src ?tag comm in
  let st = wait rt req in
  (Option.get req.data, st)

let send rt ?tag ~dest comm payload =
  let req = isend rt ?tag ~dest comm payload in
  ignore (wait rt req)

let ssend rt ?tag ~dest comm payload =
  let req = issend rt ?tag ~dest comm payload in
  ignore (wait rt req)

let recv_data (req : Request.t) =
  match req.data with
  | Some p -> p
  | None -> Types.mpi_errorf "recv_data: request %d has no data" req.uid

(* ---- Probe ---- *)

let status_of_candidate comm (env : Envelope.t) =
  {
    Types.source = Comm.rank_of_world comm env.src;
    tag = env.tag;
    count = Payload.size_bytes env.payload;
  }

let probe_candidates rt ?(src = Types.any_source) ?(tag = Types.any_tag) comm =
  let me = current rt in
  check_member comm me;
  check_live comm me;
  let src_pid =
    if src = Types.any_source then Types.any_source
    else Comm.world_of_rank comm src
  in
  Matching.candidates rt.mailboxes.(me) ~src:src_pid ~tag ~ctx:(Comm.ctx comm)

let iprobe rt ?src ?tag comm =
  let me = current rt in
  Stats.record rt.stats me Stats.Send_recv "iprobe";
  Vtime.advance rt.vt me rt.cost.local_op;
  match probe_candidates rt ?src ?tag comm with
  | [] ->
      Coroutine.yield ();
      None
  | [ env ] -> Some (status_of_candidate comm env)
  | envs -> Some (status_of_candidate comm (consult_oracle rt envs))

let probe rt ?src ?tag comm =
  let me = current rt in
  Stats.record rt.stats me Stats.Send_recv "probe";
  Vtime.advance rt.vt me rt.cost.local_op;
  fault_call_site rt;
  let result = ref None in
  wait_until rt
    ~reason:(fun () -> "probe")
    (fun () ->
      match probe_candidates rt ?src ?tag comm with
      | [] -> false
      | [ env ] ->
          result := Some env;
          true
      | envs ->
          result := Some (consult_oracle rt envs);
          true);
  let env = Option.get !result in
  Vtime.observe rt.vt me (arrival_stamp rt env);
  status_of_candidate comm env

(* ---- Collectives ---- *)

type coll_timing = Sync_all | Root_to_all of int | All_to_root of int

let coll_cost rt comm =
  rt.cost.coll_base
  +. (rt.cost.coll_per_log *. log (float_of_int (max 2 (Comm.size comm))))

let apply_coll_timing rt comm timing arrivals =
  let cost = coll_cost rt comm in
  let time_of rank =
    match List.find_opt (fun (r, _, _) -> r = rank) arrivals with
    | Some (_, _, t) -> t
    | None -> assert false
  in
  match timing with
  | Sync_all ->
      let members =
        List.init (Comm.size comm) (Comm.world_of_rank comm)
      in
      Vtime.synchronize rt.vt members cost
  | Root_to_all root ->
      let root_time = time_of root in
      for r = 0 to Comm.size comm - 1 do
        if r <> root then
          Vtime.observe rt.vt (Comm.world_of_rank comm r) (root_time +. cost)
      done
  | All_to_root root ->
      let peak =
        List.fold_left (fun acc (_, _, t) -> Float.max acc t) 0.0 arrivals
      in
      Vtime.observe rt.vt (Comm.world_of_rank comm root) (peak +. cost)

(* Generic rendezvous: contribute, block until the whole communicator has
   arrived, read back the per-rank result computed by [compute]. *)
let collective rt comm ~name ~contrib ~compute ~timing =
  let me = current rt in
  check_member comm me;
  check_live comm me;
  Stats.record rt.stats me Stats.Collective name;
  Vtime.advance rt.vt me rt.cost.local_op;
  fault_call_site rt;
  let record = record_of_comm rt comm in
  let slot = record.coll in
  let my_rank = Comm.rank_of_world comm me in
  if slot.arrivals = [] then slot.op_name <- name
  else if not (String.equal slot.op_name name) then
    Types.mpi_errorf
      "collective mismatch on %s: rank %d calls %s while others are in %s"
      (Comm.label comm) my_rank name slot.op_name;
  let my_gen = slot.gen in
  slot.arrivals <- (my_rank, contrib, Vtime.now rt.vt me) :: slot.arrivals;
  if List.length slot.arrivals = Comm.size comm then begin
    let arrivals = List.rev slot.arrivals in
    if rt.trace_on then
      record_event rt
        (Ev_collective
           {
             t = Vtime.now rt.vt me;
             name;
             ctx = Comm.ctx comm;
             size = Comm.size comm;
           });
    slot.results <- compute arrivals;
    apply_coll_timing rt comm timing arrivals;
    slot.arrivals <- [];
    slot.gen <- my_gen + 1;
    Coroutine.wake_all rt.sched
      (Array.to_list (Array.init (Comm.size comm) (Comm.world_of_rank comm)));
    (* Step aside so participants resume in rank order rather than the last
       arriver racing ahead — the deterministic "native bias". *)
    Coroutine.yield ()
  end
  else
    wait_until rt
      ~reason:(fun () ->
        Printf.sprintf "collective %s on %s" name (Comm.label comm))
      (fun () -> slot.gen > my_gen);
  slot.results.(my_rank)

let contribs_in_rank_order arrivals =
  arrivals
  |> List.sort (fun (r1, _, _) (r2, _, _) -> compare r1 r2)
  |> List.map (fun (_, c, _) -> c)
  |> Array.of_list

let barrier rt comm =
  ignore
    (collective rt comm ~name:"barrier" ~contrib:Payload.Unit
       ~compute:(fun arrivals ->
         Array.make (List.length arrivals) Payload.Unit)
       ~timing:Sync_all)

let bcast rt ~root comm payload =
  collective rt comm ~name:"bcast" ~contrib:payload
    ~compute:(fun arrivals ->
      let contribs = contribs_in_rank_order arrivals in
      Array.make (Array.length contribs) contribs.(root))
    ~timing:(Root_to_all root)

let fold_combine op contribs =
  match Array.to_list contribs with
  | [] -> assert false
  | first :: rest -> List.fold_left (Payload.combine op) first rest

let reduce rt ~root ~op comm payload =
  let me = current rt in
  let result =
    collective rt comm ~name:"reduce" ~contrib:payload
      ~compute:(fun arrivals ->
        let contribs = contribs_in_rank_order arrivals in
        let combined = fold_combine op contribs in
        Array.init (Array.length contribs) (fun r ->
            if r = root then combined else Payload.Unit))
      ~timing:(All_to_root root)
  in
  if Comm.rank_of_world comm me = root then Some result else None

let allreduce rt ~op comm payload =
  collective rt comm ~name:"allreduce" ~contrib:payload
    ~compute:(fun arrivals ->
      let contribs = contribs_in_rank_order arrivals in
      Array.make (Array.length contribs) (fold_combine op contribs))
    ~timing:Sync_all

let gather rt ~root comm payload =
  let me = current rt in
  let result =
    collective rt comm ~name:"gather" ~contrib:payload
      ~compute:(fun arrivals ->
        let contribs = contribs_in_rank_order arrivals in
        Array.init (Array.length contribs) (fun r ->
            if r = root then Payload.Arr contribs else Payload.Unit))
      ~timing:(All_to_root root)
  in
  if Comm.rank_of_world comm me = root then Some (Payload.to_arr result)
  else None

let allgather rt comm payload =
  Payload.to_arr
    (collective rt comm ~name:"allgather" ~contrib:payload
       ~compute:(fun arrivals ->
         let contribs = contribs_in_rank_order arrivals in
         Array.make (Array.length contribs) (Payload.Arr contribs))
       ~timing:Sync_all)

let scatter rt ~root comm payloads =
  let me = current rt in
  let contrib =
    if Comm.rank_of_world comm me = root then
      match payloads with
      | Some arr ->
          if Array.length arr <> Comm.size comm then
            Types.mpi_errorf "scatter: root provides %d items for %d ranks"
              (Array.length arr) (Comm.size comm);
          Payload.Arr arr
      | None -> Types.mpi_errorf "scatter: root must provide the payload array"
    else Payload.Unit
  in
  collective rt comm ~name:"scatter" ~contrib
    ~compute:(fun arrivals ->
      let contribs = contribs_in_rank_order arrivals in
      Payload.to_arr contribs.(root))
    ~timing:(Root_to_all root)

let alltoall rt comm payloads =
  if Array.length payloads <> Comm.size comm then
    Types.mpi_errorf "alltoall: %d items for %d ranks" (Array.length payloads)
      (Comm.size comm);
  Payload.to_arr
    (collective rt comm ~name:"alltoall" ~contrib:(Payload.Arr payloads)
       ~compute:(fun arrivals ->
         let contribs =
           Array.map Payload.to_arr (contribs_in_rank_order arrivals)
         in
         let n = Array.length contribs in
         Array.init n (fun r ->
             Payload.Arr (Array.init n (fun s -> contribs.(s).(r)))))
       ~timing:Sync_all)

let scan rt ~op comm payload =
  let me = current rt in
  let my_rank = Comm.rank_of_world comm me in
  let result =
    collective rt comm ~name:"scan" ~contrib:payload
      ~compute:(fun arrivals ->
        let contribs = contribs_in_rank_order arrivals in
        let n = Array.length contribs in
        let out = Array.make n contribs.(0) in
        for r = 1 to n - 1 do
          out.(r) <- Payload.combine op out.(r - 1) contribs.(r)
        done;
        out)
      ~timing:Sync_all
  in
  ignore my_rank;
  result

(* Exclusive prefix reduction: rank 0 receives the identity-less "nothing"
   (modelled as the rank-0 contribution per MPI_Exscan's undefined-at-root
   convention we pin down as Unit), rank r > 0 the reduction over 0..r-1. *)
let exscan rt ~op comm payload =
  collective rt comm ~name:"exscan" ~contrib:payload
    ~compute:(fun arrivals ->
      let contribs = contribs_in_rank_order arrivals in
      let n = Array.length contribs in
      let out = Array.make n Payload.Unit in
      let acc = ref None in
      for r = 0 to n - 1 do
        (match !acc with Some a -> out.(r) <- a | None -> ());
        acc :=
          Some
            (match !acc with
            | None -> contribs.(r)
            | Some a -> Payload.combine op a contribs.(r))
      done;
      out)
    ~timing:Sync_all

(* Reduce + scatter of equal blocks: every rank contributes an np-element
   array; rank r gets the element-wise reduction of slot r. *)
let reduce_scatter_block rt ~op comm payloads =
  if Array.length payloads <> Comm.size comm then
    Types.mpi_errorf "reduce_scatter_block: %d items for %d ranks"
      (Array.length payloads) (Comm.size comm);
  collective rt comm ~name:"reduce_scatter_block"
    ~contrib:(Payload.Arr payloads)
    ~compute:(fun arrivals ->
      let contribs =
        Array.map Payload.to_arr (contribs_in_rank_order arrivals)
      in
      let n = Array.length contribs in
      Array.init n (fun slot ->
          let acc = ref contribs.(0).(slot) in
          for s = 1 to n - 1 do
            acc := Payload.combine op !acc contribs.(s).(slot)
          done;
          !acc))
    ~timing:Sync_all

let sendrecv rt ?(stag = 0) ?(rtag = Types.any_tag) ~dest ~src comm payload =
  let sreq = isend rt ~tag:stag ~dest comm payload in
  let rreq = post_recv rt ~src ~tag:rtag comm in
  let statuses = waitall rt [ sreq; rreq ] in
  match statuses with
  | [ _; rstatus ] -> (Option.get rreq.Request.data, rstatus)
  | _ -> assert false

(* ---- Communicator management ---- *)

let comm_dup rt ?(internal = false) comm =
  let label = Printf.sprintf "dup(%s)" (Comm.label comm) in
  let ctx_payload =
    collective rt comm ~name:"comm_dup" ~contrib:Payload.Unit
      ~compute:(fun arrivals ->
        let ctx = rt.next_ctx in
        rt.next_ctx <- ctx + 1;
        let ranks =
          Array.init (Comm.size comm) (fun r -> Comm.world_of_rank comm r)
        in
        ignore (register_comm rt (Comm.make ~ctx ~ranks ~internal ~label));
        Array.make (List.length arrivals) (Payload.Int ctx))
      ~timing:Sync_all
  in
  comm_of_ctx rt (Payload.to_int ctx_payload)

let comm_split rt ~color ~key comm =
  let label = Printf.sprintf "split(%s)" (Comm.label comm) in
  let ctx_payload =
    collective rt comm ~name:"comm_split" ~contrib:(Payload.pair (Payload.int color) (Payload.int key))
      ~compute:(fun arrivals ->
        let n = List.length arrivals in
        (* (rank, color, key) triples, grouped by color. *)
        let triples =
          List.map
            (fun (r, contrib, _) ->
              let c, k = Payload.to_pair contrib in
              (r, Payload.to_int c, Payload.to_int k))
            arrivals
        in
        let colors =
          List.sort_uniq compare (List.map (fun (_, c, _) -> c) triples)
        in
        let result = Array.make n (Payload.Int (-1)) in
        List.iter
          (fun color ->
            let members =
              triples
              |> List.filter (fun (_, c, _) -> c = color)
              |> List.sort (fun (r1, _, k1) (r2, _, k2) ->
                     compare (k1, r1) (k2, r2))
              |> List.map (fun (r, _, _) -> r)
            in
            let ctx = rt.next_ctx in
            rt.next_ctx <- ctx + 1;
            let ranks =
              Array.of_list
                (List.map (fun r -> Comm.world_of_rank comm r) members)
            in
            ignore
              (register_comm rt (Comm.make ~ctx ~ranks ~internal:false ~label));
            List.iter (fun r -> result.(r) <- Payload.Int ctx) members)
          colors;
        result)
      ~timing:Sync_all
  in
  comm_of_ctx rt (Payload.to_int ctx_payload)

let comm_group (_ : t) comm = Group.of_comm comm

(* Collective over [comm]: members of [group] obtain a new communicator,
   other ranks get None. All ranks must pass equal groups (checked). *)
let comm_create rt comm group =
  let me = current rt in
  Array.iter
    (fun pid ->
      if not (Comm.is_member comm pid) then
        Types.mpi_errorf
          "comm_create: group member %d is not in the parent communicator" pid)
    (Group.members group);
  let label = Printf.sprintf "create(%s)" (Comm.label comm) in
  let contrib =
    Payload.Arr (Array.map (fun m -> Payload.Int m) (Group.members group))
  in
  let ctx_payload =
    collective rt comm ~name:"comm_create" ~contrib
      ~compute:(fun arrivals ->
        let groups = contribs_in_rank_order arrivals in
        Array.iter
          (fun g ->
            if not (Payload.equal g groups.(0)) then
              Types.mpi_errorf
                "comm_create: ranks passed different groups on %s"
                (Comm.label comm))
          groups;
        let ranks = Array.map Payload.to_int (Payload.to_arr groups.(0)) in
        let n = List.length arrivals in
        if Array.length ranks = 0 then Array.make n (Payload.Int (-1))
        else begin
          let ctx = rt.next_ctx in
          rt.next_ctx <- ctx + 1;
          ignore (register_comm rt (Comm.make ~ctx ~ranks ~internal:false ~label));
          Array.init n (fun r ->
              let pid = Comm.world_of_rank comm r in
              if Array.exists (fun m -> m = pid) ranks then Payload.Int ctx
              else Payload.Int (-1))
        end)
      ~timing:Sync_all
  in
  match Payload.to_int ctx_payload with
  | -1 -> None
  | ctx ->
      ignore me;
      Some (comm_of_ctx rt ctx)

let comm_free rt comm =
  let me = current rt in
  if Comm.ctx comm = 0 then Types.mpi_errorf "cannot free the world communicator";
  Stats.record rt.stats me Stats.Collective "comm_free";
  Vtime.advance rt.vt me rt.cost.local_op;
  Comm.mark_freed comm me

(* ---- Misc ---- *)

let pcontrol rt level =
  let me = current rt in
  match rt.pcontrol_hook with
  | Some f -> f ~pid:me level
  | None -> ()

let wtime rt = Vtime.now rt.vt (current rt)

(* ---- Driving a program ---- *)

let spawn_ranks rt body =
  if rt.spawned then invalid_arg "Runtime.spawn_ranks: already spawned";
  rt.spawned <- true;
  for rank = 0 to rt.np - 1 do
    ignore (Coroutine.spawn rt.sched (fun () -> body rank))
  done

let run rt = Coroutine.run rt.sched

(* ---- Finalize-time reports ---- *)

type leaked_comm = { leaked_ctx : int; leaked_label : string }

type leak_report = {
  comm_leaks : (int * leaked_comm list) list;
      (** (world pid, communicators it helped create but never freed);
          tool-internal and world communicators excluded *)
  req_leaks : int array;  (** per-pid count of never-released requests *)
  internal_ctxs : int list;  (** contexts of tool-internal communicators *)
}

let leak_report rt =
  let user_comms =
    List.filter
      (fun r -> (not (Comm.is_internal r.comm)) && Comm.ctx r.comm <> 0)
      rt.comm_registry
  in
  let comm_leaks =
    List.init rt.np (fun pid ->
        let leaked =
          List.filter_map
            (fun r ->
              if Comm.is_member r.comm pid && not (Comm.freed_by r.comm pid)
              then
                Some
                  { leaked_ctx = Comm.ctx r.comm; leaked_label = Comm.label r.comm }
              else None)
            user_comms
        in
        (pid, leaked))
    |> List.filter (fun (_, l) -> l <> [])
  in
  let req_leaks =
    Array.init rt.np (fun pid -> rt.req_created.(pid) - rt.req_released.(pid))
  in
  let internal_ctxs =
    List.filter_map
      (fun r -> if Comm.is_internal r.comm then Some (Comm.ctx r.comm) else None)
      rt.comm_registry
  in
  { comm_leaks; req_leaks; internal_ctxs }

let wildcard_count rt = Array.fold_left ( + ) 0 rt.wildcard_recvs
let unexpected_in_flight rt pid = Matching.unexpected_count rt.mailboxes.(pid)
