(** Message payloads.

    Real MPI transfers typed buffers; the simulator transfers structured
    values. {!size_bytes} gives the wire size used by the virtual-time cost
    model and by [status.count]. *)

type t =
  | Unit
  | Int of int
  | Float of float
  | Str of string
  | Pair of t * t
  | Arr of t array
  | Ints of int array
      (** unboxed integer vector, wire-equivalent to [Arr] of [Int]s (same
          {!size_bytes}, so [status.count] is unchanged); one allocation for
          the whole array — the clock-piggyback representation on the replay
          hot path *)

val size_bytes : t -> int

(** {1 Constructors} *)

val int : int -> t
val float : float -> t
val str : string -> t
val pair : t -> t -> t
val arr : t array -> t
val ints : int array -> t

(** {1 Destructors}

    Each raises {!Types.Mpi_error} on a shape mismatch — in a simulated rank
    this surfaces as a crash finding, the moral equivalent of a type-mismatch
    MPI receive. *)

val to_int : t -> int
val to_float : t -> float
val to_str : t -> string
val to_pair : t -> t * t
val to_arr : t -> t array

val combine : Types.reduce_op -> t -> t -> t
(** Element-wise reduction; arrays reduce pointwise, scalars directly. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
