(** Deterministic, seed-driven fault injection for the simulated runtime.

    The runtime consults a per-run fault instance at its call sites to
    inject, within the simulation:

    - {e message delivery delays}: extra virtual latency on a sent envelope.
      Delivery stays eager in scheduler order, so delays reorder {e timing}
      (and therefore which candidates a later wildcard sees as "arrived")
      without ever violating per-channel non-overtaking;
    - {e transient send failures}: a send raises
      {!Transient_send_failure} — the verifier is expected to classify this
      as retryable and re-run the replay;
    - {e rank crashes}: a rank raises {!Rank_killed} at a chosen call site;
    - {e wedges}: a rank spins forever (cooperatively yielding) at a chosen
      call site, to exercise watchdog timeouts upstream.

    Everything is a deterministic function of [(spec, salt)]: same pair,
    same fault schedule, on any worker and at any parallelism. At most one
    abortive fault (send failure, crash, or wedge) is injected per run, at a
    pre-drawn call-site index, so retrying under fresh salts converges. *)

exception Transient_send_failure of string
(** Raised by an injected send failure; retryable by the explorer. *)

exception Rank_killed of int
(** Raised by an injected rank crash; retryable by the explorer. *)

exception Wedged of int
(** Raised in place of a wedge when the runtime has no interrupt hook
    installed (a native run with nothing polling for cancellation would
    otherwise spin forever). *)

val is_transient : exn -> bool
(** Is this exception an injected environment fault (as opposed to a genuine
    program failure)? Injected faults are transient: a retry under a fresh
    salt re-draws them. *)

(** What to inject and how often. Probabilities are per run for the abortive
    kinds (sendfail/crash/wedge — at most one injection per run each) and
    per message for [delay_prob]. *)
type spec = {
  seed : int;
  delay_prob : float;  (** P(extra virtual latency on a message) *)
  max_delay : float;  (** delay magnitude bound, virtual seconds *)
  sendfail_prob : float;  (** P(the run suffers one transient send failure) *)
  crash_prob : float;  (** P(the run suffers one injected rank crash) *)
  wedge_prob : float;  (** P(the run wedges at one call site) *)
  target_rank : int option;  (** restrict injection to one rank; [None] = all *)
}

val inert : spec
(** All probabilities zero (injects nothing). *)

val default_spec : seed:int -> spec
(** The mild default mix behind [--fault-seed] alone: occasional message
    delays plus rare transient send failures — faults a retrying explorer
    fully absorbs. *)

val is_inert : spec -> bool

val of_string : ?seed:int -> string -> (spec, string) result
(** Parse a comma-separated [key=value] spec:
    [seed|delay|max-delay|sendfail|crash|wedge|rank]. An explicit [?seed]
    (the CLI's [--fault-seed]) overrides [seed=] in the text; an empty
    string with a seed yields {!default_spec}. *)

val to_string : spec -> string

(** {1 Per-run instances} *)

type t

val none : t
(** Never injects. *)

val make : spec -> salt:int -> t
(** Instantiate the per-run fault schedule. [salt] must identify the replay
    (schedule + attempt, see {!salt_of_schedule}) so the schedule is
    worker-independent. *)

val active : t -> bool

type send_action =
  | Send_ok of float  (** proceed; add this much virtual delivery delay *)
  | Send_fail  (** raise {!Transient_send_failure} *)

type call_action = Call_ok | Call_kill | Call_wedge

val on_send : t -> src:int -> send_action
(** Consulted once per posted send, in program order. *)

val on_call : t -> pid:int -> call_action
(** Consulted once per blocking call site (waits, probes, collectives), in
    program order. *)

val salt_of_schedule : attempt:int -> 'a -> int
(** Deterministic salt for {!make} from a replay's forced schedule (any
    immutable structural value) and retry attempt number. *)
