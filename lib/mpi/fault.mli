(** Deterministic, seed-driven fault injection for the simulated runtime.

    The runtime consults a per-run fault instance at its call sites to
    inject, within the simulation:

    - {e message delivery delays}: extra virtual latency on a sent envelope.
      Delivery stays eager in scheduler order, so delays reorder {e timing}
      (and therefore which candidates a later wildcard sees as "arrived")
      without ever violating per-channel non-overtaking;
    - {e transient send failures}: a send raises
      {!Transient_send_failure} — the verifier is expected to classify this
      as retryable and re-run the replay;
    - {e rank crashes}: a rank raises {!Rank_killed} at a chosen call site;
    - {e wedges}: a rank spins forever (cooperatively yielding) at a chosen
      call site, to exercise watchdog timeouts upstream.

    Everything is a deterministic function of [(spec, salt)]: same pair,
    same fault schedule, on any worker and at any parallelism. At most one
    abortive fault (send failure, crash, or wedge) is injected per run, at a
    pre-drawn call-site index, so retrying under fresh salts converges. *)

exception Transient_send_failure of string
(** Raised by an injected send failure; retryable by the explorer. *)

exception Rank_killed of int
(** Raised by an injected rank crash; retryable by the explorer. *)

exception Wedged of int
(** Raised in place of a wedge when the runtime has no interrupt hook
    installed (a native run with nothing polling for cancellation would
    otherwise spin forever). *)

val is_transient : exn -> bool
(** Is this exception an injected environment fault (as opposed to a genuine
    program failure)? Injected faults are transient: a retry under a fresh
    salt re-draws them. *)

(** What to inject and how often. Probabilities are per run for the abortive
    kinds (sendfail/crash/wedge — at most one injection per run each) and
    per message for [delay_prob]. *)
type spec = {
  seed : int;
  delay_prob : float;  (** P(extra virtual latency on a message) *)
  max_delay : float;  (** delay magnitude bound, virtual seconds *)
  sendfail_prob : float;  (** P(the run suffers one transient send failure) *)
  crash_prob : float;  (** P(the run suffers one injected rank crash) *)
  wedge_prob : float;  (** P(the run wedges at one call site) *)
  target_rank : int option;  (** restrict injection to one rank; [None] = all *)
}

val inert : spec
(** All probabilities zero (injects nothing). *)

val default_spec : seed:int -> spec
(** The mild default mix behind [--fault-seed] alone: occasional message
    delays plus rare transient send failures — faults a retrying explorer
    fully absorbs. *)

val is_inert : spec -> bool

val of_string : ?seed:int -> string -> (spec, string) result
(** Parse a comma-separated [key=value] spec:
    [seed|delay|max-delay|sendfail|crash|wedge|rank]. An explicit [?seed]
    (the CLI's [--fault-seed]) overrides [seed=] in the text; an empty
    string with a seed yields {!default_spec}. *)

val to_string : spec -> string

(** {1 Per-run instances} *)

type t

val none : t
(** Never injects. *)

val make : spec -> salt:int -> t
(** Instantiate the per-run fault schedule. [salt] must identify the replay
    (schedule + attempt, see {!salt_of_schedule}) so the schedule is
    worker-independent. *)

val active : t -> bool

type send_action =
  | Send_ok of float  (** proceed; add this much virtual delivery delay *)
  | Send_fail  (** raise {!Transient_send_failure} *)

type call_action = Call_ok | Call_kill | Call_wedge

val on_send : t -> src:int -> send_action
(** Consulted once per posted send, in program order. *)

val on_call : t -> pid:int -> call_action
(** Consulted once per blocking call site (waits, probes, collectives), in
    program order. *)

val salt_of_schedule : attempt:int -> 'a -> int
(** Deterministic salt for {!make} from a replay's forced schedule (any
    immutable structural value) and retry attempt number. *)

(** Transport-layer fault injection for the coordinator/worker wire protocol.

    Where the parent module perturbs the {e simulated} MPI runtime, [Net]
    perturbs the {e real} sockets between a coordinator and its workers:
    frames are dropped, delayed, duplicated, reordered, corrupted or
    truncated at the send boundary, one-way partition windows swallow
    everything for a stretch, and bandwidth shaping slows a link down.
    Same determinism contract: a [t] is a pure function of [(spec, salt)],
    with each one-shot kind pre-drawn at a bounded frame index so every
    connection instance injects at most one fault per kind — a redial is a
    fresh instance, so lossy links converge under retry. *)
module Net : sig
  (** Per-connection probabilities. [drop]/[dup]/[reorder] strike payload
      frames (leases, results); [corrupt]/[truncate] any non-control frame;
      [partition] opens a one-way window of [partition_frames] swallowed
      frames; [delay] is a per-frame coin; [bandwidth] (bytes/s, 0 =
      unshaped) adds size-proportional latency; [write_fail] is consumed by
      the persistence layer (injected ENOSPC), not the wire. *)
  type spec = {
    seed : int;
    drop : float;
    delay : float;
    max_delay : float;
    dup : float;
    reorder : float;
    corrupt : float;
    truncate : float;
    partition : float;
    partition_frames : int;
    bandwidth : int;
    write_fail : float;
  }

  val inert : spec
  val default_spec : seed:int -> spec
  (** The stall-free default mix behind [--net-fault-seed] alone: delays,
      duplicates and reorders, which the protocol absorbs inline without
      waiting out heartbeat timeouts. *)

  val is_inert : spec -> bool
  val wire_inert : spec -> bool
  (** No wire-level kind enabled ([write_fail] may still be set). *)

  val of_string : ?seed:int -> string -> (spec, string) result
  (** Parse a comma-separated [key=value] spec with keys
      [seed|drop|delay|max-delay|dup|reorder|corrupt|truncate|partition|
       partition-frames|bandwidth|write-fail]. [?seed] (the CLI's
      [--net-fault-seed]) overrides [seed=] in the text; an empty string
      with a seed yields {!default_spec}. *)

  val to_string : spec -> string

  (** {1 Per-connection instances} *)

  (** How a frame is classified at the send boundary. [Control] frames
      (handshake, job setup, shutdown) are only ever delayed or partitioned;
      [Chatter] (heartbeats, telemetry, progress) may additionally be
      corrupted or truncated; [Payload] (leases, results) is eligible for
      every kind. *)
  type klass = Control | Chatter | Payload

  type action =
    | Deliver of { delay : float; copies : int }
        (** write [copies] times after [delay] seconds of pacing *)
    | Drop_frame  (** swallow silently, pretend success *)
    | Corrupt_frame  (** write {!corrupt_bytes} of the frame instead *)
    | Truncate_sever
        (** write only {!truncate_len} bytes, then sever the connection *)
    | Hold_back
        (** reorder: hold the frame, deliver it after the next one *)

  type t

  val none : t
  val make : ?on_inject:(string -> unit) -> spec -> salt:int -> t
  (** [salt] must identify the connection instance (e.g. a connection
      counter), so a redial re-draws. [on_inject] is called with the kind
      name each time a fault actually fires (for metrics). *)

  val active : t -> bool
  val on_frame : t -> klass:klass -> size:int -> action
  (** Consulted once per outgoing frame, in send order. *)

  val corrupt_bytes : string -> string
  (** Detectably-corrupt copy: the leading verb byte becomes an unprintable
      control character so the receiver's parser rejects the frame. *)

  val truncate_len : string -> int

  val fs_fault : spec -> salt:int -> unit -> bool
  (** Deterministic injected-ENOSPC coin stream for persistence writes,
      driven by [write_fail]. *)
end
