(** The simulated MPI runtime.

    Ranks execute as deterministic coroutines; every operation below acts on
    the {e currently running} simulated process. Message transfer is eager
    in scheduler order while virtual timestamps carry the cost model, so the
    runtime is deterministic (DAMPI's replay foundation), biased (wildcards
    resolve like a production MPI library would), and observable (deadlock,
    statistics, leaks).

    Most programs should not call this module directly: write a functor over
    {!Mpi_intf.MPI_CORE} and run it through {!Bind} or a verifier. This
    interface is for engines and tests. *)

type cost_model = {
  local_op : float;  (** CPU cost of posting any MPI operation *)
  latency : float;  (** point-to-point wire latency *)
  per_byte : float;  (** per-byte transfer cost *)
  coll_base : float;  (** base cost of a collective *)
  coll_per_log : float;  (** additional collective cost per log2(size) *)
}

val default_cost : cost_model

type oracle = Envelope.t list -> Envelope.t
(** Match oracle: picks among the per-source candidate envelopes of a
    wildcard receive or probe; consulted only with two or more candidates. *)

val default_oracle : oracle
(** Picks the earliest arrival — the "native MPI bias". *)

type t

(** [create ~np ()] builds a runtime; [trace] enables the execution-event
    log (default off — a trace-off runtime allocates no event records at
    all). [metrics] attaches an observability shard: the runtime then counts
    match attempts and deadlock re-checks and observes wildcard-candidate
    widths and destination queue depths ([mpi.*] series); with [profile]
    it additionally wall-clocks every match-loop entry into the
    [profile.match_loop_s] histogram. [fault] installs a
    per-run fault-injection instance ({!Fault.make}); the runtime consults it
    on every posted send (delivery delay / transient failure) and at every
    blocking call site (injected crash / wedge). *)
val create :
  ?cost:cost_model ->
  ?oracle:oracle ->
  ?trace:bool ->
  ?metrics:Obs.Metrics.shard ->
  ?profile:bool ->
  ?fault:Fault.t ->
  np:int ->
  unit ->
  t
val np : t -> int
val comm_world : t -> Comm.t
val stats : t -> Stats.t

val current : t -> int
(** World pid of the currently running simulated process. *)

val clock : t -> int -> float
val advance_clock : t -> int -> float -> unit
val makespan : t -> float

val set_pcontrol_hook : t -> (pid:int -> int -> unit) -> unit

val set_interrupt_hook : t -> (unit -> unit) -> unit
(** Install a closure polled from inside injected wedge loops (and free to
    raise to break them). The verifier installs its poison check here, so a
    wedged replay is interruptible through the same path as [--stop-first]
    cancellation. Without a hook, a wedge degrades to {!Fault.Wedged}. *)

val comm_of_ctx : t -> int -> Comm.t

(** {1 Point-to-point} *)

val isend : t -> ?tag:int -> dest:int -> Comm.t -> Payload.t -> Request.t
val issend : t -> ?tag:int -> dest:int -> Comm.t -> Payload.t -> Request.t
val send : t -> ?tag:int -> dest:int -> Comm.t -> Payload.t -> unit
val ssend : t -> ?tag:int -> dest:int -> Comm.t -> Payload.t -> unit
val irecv : t -> ?src:int -> ?tag:int -> Comm.t -> Request.t
val recv : t -> ?src:int -> ?tag:int -> Comm.t -> Payload.t * Types.status

val sendrecv :
  t ->
  ?stag:int ->
  ?rtag:int ->
  dest:int ->
  src:int ->
  Comm.t ->
  Payload.t ->
  Payload.t * Types.status

(** {1 Completion} *)

val wait : t -> Request.t -> Types.status
val test : t -> Request.t -> Types.status option
val waitall : t -> Request.t list -> Types.status list
val waitany : t -> Request.t list -> int * Types.status
val testall : t -> Request.t list -> Types.status list option
val recv_data : Request.t -> Payload.t

(** {1 Probe} *)

val probe : t -> ?src:int -> ?tag:int -> Comm.t -> Types.status
val iprobe : t -> ?src:int -> ?tag:int -> Comm.t -> Types.status option

(** {1 Collectives} *)

val barrier : t -> Comm.t -> unit
val bcast : t -> root:int -> Comm.t -> Payload.t -> Payload.t

val reduce :
  t -> root:int -> op:Types.reduce_op -> Comm.t -> Payload.t -> Payload.t option

val allreduce : t -> op:Types.reduce_op -> Comm.t -> Payload.t -> Payload.t
val gather : t -> root:int -> Comm.t -> Payload.t -> Payload.t array option
val allgather : t -> Comm.t -> Payload.t -> Payload.t array
val scatter : t -> root:int -> Comm.t -> Payload.t array option -> Payload.t
val alltoall : t -> Comm.t -> Payload.t array -> Payload.t array
val scan : t -> op:Types.reduce_op -> Comm.t -> Payload.t -> Payload.t

val exscan : t -> op:Types.reduce_op -> Comm.t -> Payload.t -> Payload.t
(** Exclusive prefix reduction; rank 0 receives [Unit]. *)

val reduce_scatter_block :
  t -> op:Types.reduce_op -> Comm.t -> Payload.t array -> Payload.t
(** Every rank contributes an np-element array; rank r receives the
    element-wise reduction of slot r. *)

(** {1 Communicator management} *)

val comm_group : t -> Comm.t -> Group.t

val comm_create : t -> Comm.t -> Group.t -> Comm.t option
(** Collective over the parent; group members receive the new communicator,
    others [None]. Ranks must pass equal groups. *)

val comm_dup : t -> ?internal:bool -> Comm.t -> Comm.t
val comm_split : t -> color:int -> key:int -> Comm.t -> Comm.t
val comm_free : t -> Comm.t -> unit

(** {1 Misc} *)

val pcontrol : t -> int -> unit
val wtime : t -> float

(** {1 Driving a program} *)

val spawn_ranks : t -> (int -> unit) -> unit
(** [spawn_ranks t body] spawns one simulated process per rank, each running
    [body rank]. Call once, before {!run}. *)

val run : t -> Sim.Coroutine.outcome

(** {1 Finalize-time reports} *)

type leaked_comm = { leaked_ctx : int; leaked_label : string }

type leak_report = {
  comm_leaks : (int * leaked_comm list) list;
      (** (world pid, communicators it helped create but never freed);
          tool-internal and world communicators excluded *)
  req_leaks : int array;  (** per-pid count of never-released requests *)
  internal_ctxs : int list;  (** contexts of tool-internal communicators *)
}

val leak_report : t -> leak_report

val wildcard_count : t -> int
(** Total wildcard receives posted across all ranks. *)

val unexpected_in_flight : t -> int -> int
(** Messages queued at a rank's mailbox that no receive has claimed. *)

(** {1 Execution trace} *)

type event =
  | Ev_send of {
      t : float;
      src : int;
      dst : int;
      tag : int;
      ctx : int;
      bytes : int;
      sync : bool;
    }
  | Ev_recv_post of { t : float; pid : int; src : int; tag : int; ctx : int }
  | Ev_match of { t : float; src : int; dst : int; tag : int; ctx : int }
  | Ev_collective of { t : float; name : string; ctx : int; size : int }

val trace : t -> event list
(** Events in scheduler order; empty unless created with [~trace:true]. *)

val pp_event : Format.formatter -> event -> unit
