(** Message payloads.

    Real MPI transfers typed buffers; the simulator transfers structured
    values. [size_bytes] gives the wire size used by the virtual-time cost
    model and by [status.count]. *)

type t =
  | Unit
  | Int of int
  | Float of float
  | Str of string
  | Pair of t * t
  | Arr of t array
  | Ints of int array
      (* unboxed integer vector — one allocation for the whole array, used
         for the clock piggybacks on the replay hot path. Wire-identical to
         [Arr] of [Int]s: same [size_bytes], so [status.count] is unchanged. *)

let rec size_bytes = function
  | Unit -> 0
  | Int _ -> 8
  | Float _ -> 8
  | Str s -> String.length s
  | Pair (a, b) -> size_bytes a + size_bytes b
  | Arr a -> Array.fold_left (fun acc v -> acc + size_bytes v) 0 a
  | Ints a -> 8 * Array.length a

let int n = Int n
let float f = Float f
let str s = Str s
let pair a b = Pair (a, b)
let arr a = Arr a
let ints a = Ints a

let to_int = function
  | Int n -> n
  | p ->
      Types.mpi_errorf "Payload.to_int: not an int payload (%d bytes)"
        (size_bytes p)

let to_float = function
  | Float f -> f
  | Int n -> float_of_int n
  | p ->
      Types.mpi_errorf "Payload.to_float: not a float payload (%d bytes)"
        (size_bytes p)

let to_str = function
  | Str s -> s
  | _ -> Types.mpi_errorf "Payload.to_str: not a string payload"

let to_pair = function
  | Pair (a, b) -> (a, b)
  | _ -> Types.mpi_errorf "Payload.to_pair: not a pair payload"

let to_arr = function
  | Arr a -> a
  | _ -> Types.mpi_errorf "Payload.to_arr: not an array payload"

(* Element-wise numeric reduction; arrays reduce pointwise, scalars reduce
   directly.  Logical ops treat nonzero as true. *)
let rec combine (op : Types.reduce_op) a b =
  let num f g =
    match (a, b) with
    | Int x, Int y -> Int (f x y)
    | (Float _ | Int _), (Float _ | Int _) -> Float (g (to_float a) (to_float b))
    | _ ->
        Types.mpi_errorf "Payload.combine: %s on non-numeric payload"
          (Types.string_of_reduce_op op)
  in
  let logical f =
    let truthy p = to_int p <> 0 in
    Int (if f (truthy a) (truthy b) then 1 else 0)
  in
  match (a, b) with
  | Arr xs, Arr ys ->
      if Array.length xs <> Array.length ys then
        Types.mpi_errorf "Payload.combine: array length mismatch (%d vs %d)"
          (Array.length xs) (Array.length ys);
      Arr (Array.map2 (combine op) xs ys)
  | Ints xs, Ints ys ->
      if Array.length xs <> Array.length ys then
        Types.mpi_errorf "Payload.combine: array length mismatch (%d vs %d)"
          (Array.length xs) (Array.length ys);
      let f : int -> int -> int =
        match op with
        | Sum -> ( + )
        | Prod -> ( * )
        | Max -> max
        | Min -> min
        | Land -> fun x y -> if x <> 0 && y <> 0 then 1 else 0
        | Lor -> fun x y -> if x <> 0 || y <> 0 then 1 else 0
      in
      Ints (Array.map2 f xs ys)
  | _ -> (
      match op with
      | Sum -> num ( + ) ( +. )
      | Prod -> num ( * ) ( *. )
      | Max -> num max Float.max
      | Min -> num min Float.min
      | Land -> logical ( && )
      | Lor -> logical ( || ))

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | Pair (a1, b1), Pair (a2, b2) -> equal a1 a2 && equal b1 b2
  | Arr x, Arr y ->
      Array.length x = Array.length y
      && (let ok = ref true in
          Array.iteri (fun i v -> if not (equal v y.(i)) then ok := false) x;
          !ok)
  | Ints x, Ints y -> x = y
  | (Unit | Int _ | Float _ | Str _ | Pair _ | Arr _ | Ints _), _ -> false

let rec pp ppf = function
  | Unit -> Format.pp_print_string ppf "()"
  | Int n -> Format.pp_print_int ppf n
  | Float f -> Format.pp_print_float ppf f
  | Str s -> Format.fprintf ppf "%S" s
  | Pair (a, b) -> Format.fprintf ppf "(%a, %a)" pp a pp b
  | Arr a ->
      Format.fprintf ppf "[|%a|]"
        (Format.pp_print_seq ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp)
        (Array.to_seq a)
  | Ints a ->
      (* Same rendering as [Arr] of [Int]s: the two are wire-equivalent. *)
      Format.fprintf ppf "[|%a|]"
        (Format.pp_print_seq
           ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
           Format.pp_print_int)
        (Array.to_seq a)
