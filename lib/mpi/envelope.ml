(** In-flight message envelopes.

    An envelope carries everything the matching engine needs: addressing
    (world pids), the communicator context, the tag, the payload, and two
    bookkeeping fields — [seq], the per-channel sequence number that encodes
    MPI's non-overtaking rule, and [send_time], the sender's virtual clock at
    post time, used to stamp the receive side. *)

type t = {
  (* All fields are mutable so the runtime can recycle envelope records
     through a free list (see [Runtime]'s envelope pool): an envelope is
     dead the moment its receive completes, and refilling a pooled record
     avoids one allocation per message on the replay hot path. Everything
     outside the runtime treats envelopes as immutable. *)
  mutable uid : int;  (** globally unique, in creation (arrival) order *)
  mutable src : int;  (** world pid of sender *)
  mutable dst : int;  (** world pid of receiver *)
  mutable tag : int;
  mutable ctx : int;  (** communicator context id *)
  mutable seq : int;  (** per (src, dst, ctx) channel sequence number *)
  mutable payload : Payload.t;
  mutable send_time : float;
  mutable delay : float;
      (** extra delivery latency (normally 0; fault injection adds virtual
          delay here without perturbing matching order) *)
  mutable sync : bool;  (** true for synchronous-mode sends (Ssend/Issend) *)
  mutable send_req : int;
      (** uid of the sender's request, to complete Ssends *)
}

(** [matches env ~src ~tag ~ctx] — does [env] satisfy a receive posted with
    this spec? [src] and [tag] may be wildcards; [src] is a world pid here
    (the runtime translates communicator ranks before calling). *)
let matches env ~src ~tag ~ctx =
  env.ctx = ctx
  && (src = Types.any_source || env.src = src)
  && (tag = Types.any_tag || env.tag = tag)

let pp ppf e =
  Format.fprintf ppf "msg#%d %d->%d tag=%d ctx=%d seq=%d (%d bytes)" e.uid e.src
    e.dst e.tag e.ctx e.seq
    (Payload.size_bytes e.payload)
