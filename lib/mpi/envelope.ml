(** In-flight message envelopes.

    An envelope carries everything the matching engine needs: addressing
    (world pids), the communicator context, the tag, the payload, and two
    bookkeeping fields — [seq], the per-channel sequence number that encodes
    MPI's non-overtaking rule, and [send_time], the sender's virtual clock at
    post time, used to stamp the receive side. *)

type t = {
  uid : int;  (** globally unique, in creation (arrival) order *)
  src : int;  (** world pid of sender *)
  dst : int;  (** world pid of receiver *)
  tag : int;
  ctx : int;  (** communicator context id *)
  seq : int;  (** per (src, dst, ctx) channel sequence number *)
  payload : Payload.t;
  send_time : float;
  delay : float;
      (** extra delivery latency (normally 0; fault injection adds virtual
          delay here without perturbing matching order) *)
  sync : bool;  (** true for synchronous-mode sends (Ssend/Issend) *)
  send_req : int;  (** uid of the sender's request, to complete Ssends *)
}

(** [matches env ~src ~tag ~ctx] — does [env] satisfy a receive posted with
    this spec? [src] and [tag] may be wildcards; [src] is a world pid here
    (the runtime translates communicator ranks before calling). *)
let matches env ~src ~tag ~ctx =
  env.ctx = ctx
  && (src = Types.any_source || env.src = src)
  && (tag = Types.any_tag || env.tag = tag)

let pp ppf e =
  Format.fprintf ppf "msg#%d %d->%d tag=%d ctx=%d seq=%d (%d bytes)" e.uid e.src
    e.dst e.tag e.ctx e.seq
    (Payload.size_bytes e.payload)
