(** MPI operation census, per process and per class.

    Reproduces the classification of the paper's Table I: Send-Recv (all
    point-to-point posts), Collective, and Wait (all completion calls).
    Local operations (datatype creation, etc.) are not modelled and hence not
    counted, matching the paper's methodology. *)

type op_class = Send_recv | Collective | Wait

type t = {
  send_recv : int array;
  collective : int array;
  wait : int array;
  by_name : (string, int) Hashtbl.t;
}

let create np =
  {
    send_recv = Array.make np 0;
    collective = Array.make np 0;
    wait = Array.make np 0;
    by_name = Hashtbl.create 32;
  }

let record t pid cls name =
  (match cls with
  | Send_recv -> t.send_recv.(pid) <- t.send_recv.(pid) + 1
  | Collective -> t.collective.(pid) <- t.collective.(pid) + 1
  | Wait -> t.wait.(pid) <- t.wait.(pid) + 1);
  (* [find]/[Not_found] rather than [find_opt]: this runs once per MPI op
     and the option would be the only allocation. *)
  let prev = match Hashtbl.find t.by_name name with n -> n | exception Not_found -> 0 in
  Hashtbl.replace t.by_name name (1 + prev)

let sum = Array.fold_left ( + ) 0
let total_send_recv t = sum t.send_recv
let total_collective t = sum t.collective
let total_wait t = sum t.wait
let total t = total_send_recv t + total_collective t + total_wait t

let per_proc_avg counts =
  if Array.length counts = 0 then 0.0
  else float_of_int (sum counts) /. float_of_int (Array.length counts)

let send_recv_per_proc t = per_proc_avg t.send_recv
let collective_per_proc t = per_proc_avg t.collective
let wait_per_proc t = per_proc_avg t.wait

let all_per_proc t =
  send_recv_per_proc t +. collective_per_proc t +. wait_per_proc t

let count_of t name = Option.value ~default:0 (Hashtbl.find_opt t.by_name name)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>All %d (%.0f/proc)@ Send-Recv %d (%.0f/proc)@ Collective %d \
     (%.1f/proc)@ Wait %d (%.0f/proc)@]"
    (total t) (all_per_proc t) (total_send_recv t) (send_recv_per_proc t)
    (total_collective t) (collective_per_proc t) (total_wait t)
    (wait_per_proc t)
