type pid = int

type blocked_info = { pid : pid; reason : string }

type outcome =
  | All_finished
  | Deadlock of blocked_info list
  | Crashed of pid * exn * Printexc.raw_backtrace

type state =
  | Ready
  | Running
  | Blocked of string
  | Finished
  | Crashed_st of exn * Printexc.raw_backtrace

type proc = {
  id : pid;
  body : unit -> unit;
  mutable state : state;
  mutable resume : (unit, unit) Effect.Deep.continuation option;
}

type sched = {
  mutable procs : proc array;
  mutable spawned : proc list;  (* reversed; frozen into [procs] at [run] *)
  ready : pid Queue.t;
  mutable current : pid;
  mutable started : bool;
  mutable crash : (pid * exn * Printexc.raw_backtrace) option;
}

type _ Effect.t +=
  | Yield : unit Effect.t
  | Block : string -> unit Effect.t
  | Self : pid Effect.t

let create () =
  {
    procs = [||];
    spawned = [];
    ready = Queue.create ();
    current = -1;
    started = false;
    crash = None;
  }

let spawn sched body =
  if sched.started then invalid_arg "Coroutine.spawn: scheduler already running";
  let id = List.length sched.spawned in
  let p = { id; body; state = Ready; resume = None } in
  sched.spawned <- p :: sched.spawned;
  Queue.add id sched.ready;
  id

let self () = Effect.perform Self
let yield () = Effect.perform Yield
let block reason = Effect.perform (Block reason)

let wake sched pid =
  let p = sched.procs.(pid) in
  match p.state with
  | Blocked _ ->
      p.state <- Ready;
      Queue.add pid sched.ready
  | Ready | Running | Finished | Crashed_st _ -> ()

let wake_all sched pids = List.iter (wake sched) pids

let is_blocked sched pid =
  match sched.procs.(pid).state with
  | Blocked _ -> true
  | Ready | Running | Finished | Crashed_st _ -> false

let nprocs sched = Array.length sched.procs

let blocked_processes sched =
  Array.to_list sched.procs
  |> List.filter_map (fun p ->
         match p.state with
         | Blocked reason -> Some { pid = p.id; reason }
         | Ready | Running | Finished | Crashed_st _ -> None)

(* Run one process until it yields control back (by finishing, blocking,
   yielding, or crashing). The handler stores the continuation in the process
   record; the scheduler resumes it later.

   The handler record (and its four closures) is needed only at the first
   dispatch: the deep handler installed by [match_with] stays in force for
   every resumed continuation, where a plain [continue] suffices. Building
   it inside the first-start branch keeps the resume path — the replay hot
   path, entered once per block/yield — allocation-free. *)
let step sched (p : proc) =
  p.state <- Running;
  sched.current <- p.id;
  match p.resume with
  | Some k ->
      p.resume <- None;
      Effect.Deep.continue k ()
  | None ->
      let handler : (unit, unit) Effect.Deep.handler =
        {
          retc = (fun () -> p.state <- Finished);
          exnc =
            (fun exn ->
              let bt = Printexc.get_raw_backtrace () in
              p.state <- Crashed_st (exn, bt);
              sched.crash <- Some (p.id, exn, bt));
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Yield ->
                  Some
                    (fun (k : (a, unit) Effect.Deep.continuation) ->
                      p.state <- Ready;
                      p.resume <-
                        Some (k : (unit, unit) Effect.Deep.continuation);
                      Queue.add p.id sched.ready)
              | Block reason ->
                  Some
                    (fun (k : (a, unit) Effect.Deep.continuation) ->
                      p.state <- Blocked reason;
                      p.resume <-
                        Some (k : (unit, unit) Effect.Deep.continuation))
              | Self ->
                  Some
                    (fun (k : (a, unit) Effect.Deep.continuation) ->
                      Effect.Deep.continue k p.id)
              | _ -> None);
        }
      in
      Effect.Deep.match_with p.body () handler

let run sched =
  if sched.started then invalid_arg "Coroutine.run: scheduler already ran";
  sched.started <- true;
  sched.procs <- Array.of_list (List.rev sched.spawned);
  sched.spawned <- [];
  let rec loop () =
    match sched.crash with
    | Some (pid, exn, bt) -> Crashed (pid, exn, bt)
    | None -> (
        match Queue.take_opt sched.ready with
        | Some pid ->
            let p = sched.procs.(pid) in
            (* A pid can sit in the queue twice only through API misuse
               ([wake] guards against it); re-check state defensively. *)
            (match p.state with
            | Ready -> step sched p
            | Running | Blocked _ | Finished | Crashed_st _ -> ());
            loop ()
        | None -> (
            match blocked_processes sched with
            | [] -> All_finished
            | blocked -> Deadlock blocked))
  in
  loop ()
