type t = { mutable state : int64; gamma : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* Finalization mix from the SplitMix64 reference implementation. *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

(* Gamma values must be odd; mix_gamma also fixes low-entropy candidates. *)
let mix_gamma z =
  let z = Int64.logor (mix64 z) 1L in
  let n =
    let x = Int64.(logxor z (shift_right_logical z 1)) in
    let rec popcount acc x =
      if Int64.equal x 0L then acc
      else popcount (acc + 1) Int64.(logand x (sub x 1L))
    in
    popcount 0 x
  in
  if n < 24 then Int64.logxor z 0xAAAAAAAAAAAAAAAAL else z

let create seed = { state = mix64 (Int64.of_int seed); gamma = golden_gamma }

(* Seed + salt, order-sensitive: derive s a <> derive a s in general. Used to
   key per-replay fault streams off (fault seed, schedule hash, attempt). *)
let derive seed ~salt =
  let s = mix64 (Int64.of_int seed) in
  let z = mix64 (Int64.add s (Int64.mul golden_gamma (Int64.of_int salt))) in
  { state = z; gamma = mix_gamma (mix64 z) }

let next_int64 t =
  t.state <- Int64.add t.state t.gamma;
  mix64 t.state

let split t =
  let s = next_int64 t in
  let g = next_int64 t in
  { state = mix64 s; gamma = mix_gamma g }

let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  (* Shift by 2 so the result fits OCaml's 63-bit native int. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 significant bits, matching an IEEE double mantissa. *)
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Splitmix.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
