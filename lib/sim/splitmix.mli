(** Deterministic splittable pseudo-random number generator (SplitMix64).

    Every source of randomness in the simulator flows through a [Splitmix.t]
    so that runs are exactly reproducible from a seed — a hard requirement for
    DAMPI's guided replay, which re-executes the target program and must
    observe the same sequence of events up to the forced match decisions. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed. Equal seeds yield
    equal streams. *)

val derive : int -> salt:int -> t
(** [derive seed ~salt] builds a generator from a (seed, salt) pair: equal
    pairs yield equal streams, and distinct salts under one seed yield
    independent streams. This is how per-replay fault schedules are keyed off
    a global fault seed plus a per-replay identity, so they do not depend on
    which worker runs the replay. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. Use one
    generator per simulated process so that adding draws in one process does
    not perturb the stream seen by another. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val pick : t -> 'a array -> 'a
(** [pick t arr] draws a uniform element. [arr] must be non-empty. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
