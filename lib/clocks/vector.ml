(** Vector clocks (§II-C): precise causality at O(np) cost per message.

    The paper argues these are not worth the cost at scale and uses them
    only to characterize what Lamport clocks miss; this implementation
    exists to reproduce that characterization (Fig. 4) and the
    clock-algebra ablation bench. *)

type t = int array

let name = "vector"
let make ~np = Array.make (max np 1) 0

let tick ~me t =
  let t' = Array.copy t in
  t'.(me) <- t'.(me) + 1;
  t'

let merge a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vector.merge: dimension mismatch";
  Array.init (Array.length a) (fun i -> max a.(i) b.(i))

(* a happened-before b: componentwise <= with at least one strict. *)
let happened_before a b =
  let le = ref true and lt = ref false in
  Array.iteri
    (fun i ai ->
      if ai > b.(i) then le := false else if ai < b.(i) then lt := true)
    a;
  !le && !lt

let epoch_clock ~me t = tick ~me t

(* A send is late iff it is not causally after the epoch event: neither
   [epoch < send] nor equality (equal vectors would be the same event). *)
let is_late ~send ~epoch = not (happened_before epoch send || epoch = send)

let precise = true
let encode t = Array.copy t

let decode ~np arr =
  if Array.length arr <> np then
    invalid_arg
      (Printf.sprintf "Vector.decode: expected %d components, got %d" np
         (Array.length arr))
  else Array.copy arr

let scalar ~me t = t.(me)

let pp ppf t =
  Format.fprintf ppf "VC=[%s]"
    (String.concat ";" (Array.to_list (Array.map string_of_int t)))

(* Encoded hot path: the encoding is the vector itself, so the in-place
   operations are plain array loops. *)

let width ~np = max np 1
let make_enc ~np = Array.make (max np 1) 0
let tick_into ~me enc = enc.(me) <- enc.(me) + 1

let merge_into ~into src =
  if Array.length into <> Array.length src then
    invalid_arg "Vector.merge_into: dimension mismatch";
  for i = 0 to Array.length into - 1 do
    if src.(i) > into.(i) then into.(i) <- src.(i)
  done

let epoch_clock_into ~me ~pre ~into =
  Array.blit pre 0 into 0 (Array.length pre);
  into.(me) <- into.(me) + 1

(* [is_late ~send ~epoch = not (happened_before epoch send || epoch = send)].
   Both disjuncts require epoch <= send componentwise, so the send is late
   iff some component of [epoch] exceeds [send]'s. *)
let is_late_enc ~send ~epoch =
  let n = Array.length epoch in
  let late = ref false in
  let i = ref 0 in
  while (not !late) && !i < n do
    if epoch.(!i) > send.(!i) then late := true;
    incr i
  done;
  !late

let scalar_enc ~me enc = enc.(me)
