(** The pure-API reference adapter.

    [Make (C)] re-exports [C]'s pure clock algebra unchanged and {e derives}
    the encoded hot-path block ([tick_into]/[merge_into]/...) from it by the
    literal decode-apply-encode composition the mutable implementations are
    specified against. Running the verifier with [Make (Lamport)] in place of
    [Lamport] therefore exercises the old copy-per-op code path; the
    differential tests diff canonical reports between the two to prove the
    mutable implementations change nothing observable.

    The derivation recovers [np] from the encoding width, which holds for
    both in-repo codecs: the vector encoding has one cell per process, and
    the Lamport codec ignores [np] entirely. *)

module Make (C : Clock_intf.S) : Clock_intf.S = struct
  include C

  let width ~np = Array.length (C.encode (C.make ~np))
  let make_enc ~np = C.encode (C.make ~np)

  let overwrite enc v =
    let e = C.encode v in
    Array.blit e 0 enc 0 (Array.length enc)

  let tick_into ~me enc =
    overwrite enc (C.tick ~me (C.decode ~np:(Array.length enc) enc))

  let merge_into ~into src =
    let np = Array.length into in
    overwrite into (C.merge (C.decode ~np into) (C.decode ~np src))

  let epoch_clock_into ~me ~pre ~into =
    overwrite into (C.epoch_clock ~me (C.decode ~np:(Array.length pre) pre))

  let is_late_enc ~send ~epoch =
    let np = Array.length epoch in
    C.is_late ~send:(C.decode ~np send) ~epoch:(C.decode ~np epoch)

  let scalar_enc ~me enc = C.scalar ~me (C.decode ~np:(Array.length enc) enc)
end
