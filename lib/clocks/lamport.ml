(** Lamport clocks (§II-C): a single integer approximating causality.

    DAMPI's scalable default. [is_late] is sound — it never reports a send
    that is causally after the epoch — but incomplete: a concurrent send
    whose scalar clock happens to be >= the epoch value is wrongly judged
    "not late" (the paper's Fig. 4 pattern, exercised in the test suite). *)

type t = int

let name = "lamport"
let make ~np:_ = 0
let tick ~me:_ t = t + 1
let merge a b = max a b

(* The lateness comparison is against the receive *event*'s clock (the
   post-tick value): in the paper's Fig. 3 both sends carry clock 0, the
   wildcard event is 1, and both are late. The epoch *identifier* remains
   the pre-tick scalar. *)
let epoch_clock ~me:_ t = t + 1
let is_late ~send ~epoch = send < epoch
let precise = false
let encode t = [| t |]

let decode ~np:_ = function
  | [| t |] -> t
  | arr ->
      invalid_arg
        (Printf.sprintf "Lamport.decode: expected 1 component, got %d"
           (Array.length arr))

let scalar ~me:_ t = t
let pp ppf t = Format.fprintf ppf "LC=%d" t

(* Encoded hot path: the encoding is the one-cell array [| t |], so every
   operation is a direct cell update. *)

let width ~np:_ = 1
let make_enc ~np:_ = [| 0 |]
let tick_into ~me:_ enc = enc.(0) <- enc.(0) + 1

let merge_into ~into src =
  if src.(0) > into.(0) then into.(0) <- src.(0)

let epoch_clock_into ~me:_ ~pre ~into = into.(0) <- pre.(0) + 1
let is_late_enc ~send ~epoch = send.(0) < epoch.(0)
let scalar_enc ~me:_ enc = enc.(0)
