(** Logical-clock algebra.

    DAMPI's late-message analysis is parametric in the clock implementation
    (§II-C of the paper): Lamport clocks scale (one integer piggybacked per
    message) but over-order concurrent events, losing completeness on the
    rare cross-coupled pattern of the paper's Fig. 4; vector clocks are
    precise but cost O(np) per message. Implementations of {!S} plug into
    [Dampi.Make] so both variants — and the ablation comparing them — share
    all verifier code. *)

module type S = sig
  type t

  val name : string
  (** "lamport" or "vector" — used in reports and bench labels. *)

  val make : np:int -> t
  (** The zero clock for a system of [np] processes. *)

  val tick : me:int -> t -> t
  (** Local visible event on process [me]. *)

  val merge : t -> t -> t
  (** Receive-side join: componentwise maximum. The Lamport variant is the
      scalar maximum ({e without} the +1 — DAMPI ticks only at
      non-deterministic events, per Algorithm 1). *)

  val epoch_clock : me:int -> t -> t
  (** The clock value to record for a wildcard receive's lateness judgement,
      given the process clock {e before} the event's tick. Lamport records
      the pre-tick scalar (Algorithm 1 records [LCi] and then increments);
      vector clocks record the event clock itself (post-tick), which is what
      the happened-before comparison needs. *)

  val is_late : send:t -> epoch:t -> bool
  (** The judgement at the heart of the algorithm: is a message whose
      piggybacked send-clock is [send] {e not causally after} the wildcard
      receive whose epoch clock is [epoch]? If so, the message is a
      {e late} message — a potential alternate match.

      - Lamport: [send < epoch]; sound but incomplete (a concurrent send can
        carry a clock >= the epoch and be missed).
      - Vector: [not (epoch < send)] in the vector partial order; sound and
        complete. *)

  val precise : bool
  (** Whether [is_late] is exact (vector) or an under-approximation that can
      miss concurrent sends (lamport). *)

  val encode : t -> int array
  (** Wire format for piggyback messages. *)

  val decode : np:int -> int array -> t

  val scalar : me:int -> t -> int
  (** A scalar view used for epoch identifiers: the Lamport value, or [me]'s
      own component for vector clocks. Strictly increasing across the
      non-deterministic events of process [me], and identical across replays
      of the same execution prefix — the property epoch ids rely on. *)

  val pp : Format.formatter -> t -> unit

  (** {2 Encoded hot-path operations}

      The replay hot path stores clocks directly in their wire encoding —
      an [int array] of [width ~np] cells — and mutates them in place,
      so a tick or a receive-side merge costs zero allocations instead of
      a decode/apply/encode round trip. The pure API above remains the
      specification: every [*_enc]/[*_into] operation must behave exactly
      like encode-compose-decode of its pure counterpart (QCheck holds the
      two to account in [test_clocks], and {!Reference.Make} derives this
      block from the pure block for differential runs). Buffer ownership
      rules live in DESIGN.md, "Hot path & allocation discipline". *)

  val width : np:int -> int
  (** Cells in the encoded form for a system of [np] processes. *)

  val make_enc : np:int -> int array
  (** The zero clock, encoded. Fresh storage owned by the caller. *)

  val tick_into : me:int -> int array -> unit
  (** In-place [tick] on an encoded clock. *)

  val merge_into : into:int array -> int array -> unit
  (** In-place receive-side join: [into <- merge into src]; [src] is read
      only. The arguments must not alias. *)

  val epoch_clock_into : me:int -> pre:int array -> into:int array -> unit
  (** Write the epoch clock derived from the {e pre-tick} encoded process
      clock [pre] into [into]. [pre] is read only; the arguments must not
      alias. *)

  val is_late_enc : send:int array -> epoch:int array -> bool
  (** [is_late] computed directly on encodings — no decode, no allocation. *)

  val scalar_enc : me:int -> int array -> int
  (** [scalar] computed directly on an encoding. *)
end
