(* Deterministic fault injection (Mpi.Fault) and the explorer's
   watchdog/retry machinery around it.

   The injection contract: every fault decision flows through a Splitmix
   stream derived from (seed, salt), where the salt is a pure function of
   the forced schedule and the attempt number. So the same seed produces
   the same fault schedule — and the same verification report — at any
   worker count, and a faulted exploration whose transient failures are
   all absorbed by retries converges to the fault-free canonical report. *)

module Explorer = Dampi.Explorer
module Report = Dampi.Report
module State = Dampi.State
module Fault = Mpi.Fault

(* ---- the derived PRNG stream ---- *)

let test_derive () =
  let draws g = List.init 8 (fun _ -> Sim.Splitmix.int g 1_000_000) in
  Alcotest.(check (list int))
    "same (seed, salt): same stream"
    (draws (Sim.Splitmix.derive 42 ~salt:7))
    (draws (Sim.Splitmix.derive 42 ~salt:7));
  Alcotest.(check bool)
    "different salts: different streams" false
    (draws (Sim.Splitmix.derive 42 ~salt:7)
    = draws (Sim.Splitmix.derive 42 ~salt:8));
  Alcotest.(check bool)
    "different seeds: different streams" false
    (draws (Sim.Splitmix.derive 42 ~salt:7)
    = draws (Sim.Splitmix.derive 43 ~salt:7))

(* ---- spec parsing ---- *)

let test_spec_parsing () =
  (match Fault.of_string "seed=9,delay=0.25,max-delay=0.001,sendfail=0.1" with
  | Ok spec ->
      Alcotest.(check int) "seed" 9 spec.Fault.seed;
      Alcotest.(check (float 0.0)) "delay" 0.25 spec.Fault.delay_prob;
      Alcotest.(check (float 0.0)) "max-delay" 0.001 spec.Fault.max_delay;
      Alcotest.(check (float 0.0)) "sendfail" 0.1 spec.Fault.sendfail_prob;
      (* An explicit spec starts from zero rates, not the defaults. *)
      Alcotest.(check (float 0.0)) "crash off" 0.0 spec.Fault.crash_prob
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Fault.of_string ~seed:5 "crash=0.5,rank=2" with
  | Ok spec ->
      Alcotest.(check int) "seed from ?seed" 5 spec.Fault.seed;
      Alcotest.(check (option int)) "rank" (Some 2) spec.Fault.target_rank
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Fault.of_string ~seed:5 "" with
  | Ok spec ->
      Alcotest.(check bool)
        "seed alone enables the default mix" false (Fault.is_inert spec)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  let expect_error text =
    match Fault.of_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected %S to be rejected" text
  in
  expect_error "";
  expect_error "delay=2.0,seed=1";
  expect_error "frobnicate=1,seed=1";
  expect_error "seed=banana";
  (* to_string/of_string round-trips the spec. *)
  match Fault.of_string "seed=3,delay=0.1,sendfail=0.05,wedge=0.01" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok spec -> (
      match Fault.of_string (Fault.to_string spec) with
      | Ok spec' ->
          Alcotest.(check string)
            "round trip" (Fault.to_string spec) (Fault.to_string spec')
      | Error e -> Alcotest.failf "re-parse failed: %s" e)

(* ---- instance-level determinism ---- *)

let test_instance_determinism () =
  let spec =
    {
      (Fault.default_spec ~seed:11) with
      Fault.crash_prob = 0.3;
      wedge_prob = 0.2;
    }
  in
  let trace salt =
    let t = Fault.make spec ~salt in
    let sends =
      List.init 300 (fun i ->
          match Fault.on_send t ~src:(i mod 4) with
          | Fault.Send_ok d -> Printf.sprintf "ok %h" d
          | Fault.Send_fail -> "fail")
    in
    let calls =
      List.init 300 (fun i ->
          match Fault.on_call t ~pid:(i mod 4) with
          | Fault.Call_ok -> "ok"
          | Fault.Call_kill -> "kill"
          | Fault.Call_wedge -> "wedge")
    in
    sends @ calls
  in
  Alcotest.(check (list string)) "same salt: same schedule" (trace 5) (trace 5);
  Alcotest.(check bool)
    "different salt: different schedule" false
    (trace 5 = trace 6);
  let abortive l =
    List.length (List.filter (fun a -> a = "fail" || a = "kill" || a = "wedge") l)
  in
  Alcotest.(check bool)
    "at most one send failure and one call fault per run" true
    (abortive (trace 5) <= 2)

(* ---- exploration under faults ---- *)

let k0 = State.make_config ~mixing_bound:0 ()

let verify_adlb ?fault ?(jobs = 1) ?(max_retries = 4) ?max_replay_steps () =
  Explorer.verify
    ~config:
      {
        Explorer.default_config with
        state_config = k0;
        jobs;
        robustness =
          {
            Explorer.default_robustness with
            fault;
            max_retries;
            max_replay_steps;
          };
      }
    ~np:6 (Workloads.Adlb.program ())

let signatures (r : Report.t) =
  List.map
    (fun (f : Report.finding) -> Report.error_signature f.Report.error)
    r.Report.findings
  |> List.sort_uniq compare

let canonical_summary (r : Report.t) =
  ( r.Report.interleavings,
    signatures r,
    r.Report.bounded_epochs,
    r.Report.wildcards_analyzed )

(* Same seed, same configuration: byte-identical canonical report AND
   identical fault accounting, at jobs=1 and jobs=4. *)
let test_seeded_report_determinism () =
  let spec =
    { (Fault.default_spec ~seed:7) with Fault.crash_prob = 0.05 }
  in
  let full (r : Report.t) =
    ( canonical_summary r,
      r.Report.runs_timed_out,
      r.Report.runs_retried,
      r.Report.runs_crashed )
  in
  List.iter
    (fun jobs ->
      let a = verify_adlb ~fault:spec ~jobs () in
      let b = verify_adlb ~fault:spec ~jobs () in
      Alcotest.(check bool)
        (Printf.sprintf "identical report and fault counters (jobs=%d)" jobs)
        true
        (full a = full b))
    [ 1; 4 ];
  (* The canonical report (though not the per-attempt accounting) also
     agrees across worker counts. *)
  let seq = verify_adlb ~fault:spec ~jobs:1 () in
  let par = verify_adlb ~fault:spec ~jobs:4 () in
  Alcotest.(check bool)
    "jobs=1 and jobs=4 agree under faults" true
    (canonical_summary seq = canonical_summary par)

(* Transient faults absorbed by retries leave no trace in the canonical
   report: the faulted exploration equals the fault-free one. *)
let test_retries_converge () =
  let baseline = verify_adlb () in
  List.iter
    (fun (label, spec) ->
      let faulted = verify_adlb ~fault:spec ~jobs:4 () in
      Alcotest.(check bool)
        (label ^ ": canonical report equals fault-free") true
        (canonical_summary faulted = canonical_summary baseline))
    [
      ("sendfail", Fault.default_spec ~seed:1);
      ("kills", { Fault.inert with Fault.seed = 3; crash_prob = 0.05 });
    ]

(* A replay wedged by an injected infinite delay is cut by the step-budget
   watchdog, retried, and recorded — and the jobs=4 pool is not stalled
   (this test finishing at all is the liveness claim). *)
let test_wedge_watchdog () =
  let spec = { Fault.inert with Fault.seed = 4; wedge_prob = 0.3 } in
  let r =
    verify_adlb ~fault:spec ~jobs:4 ~max_retries:2
      ~max_replay_steps:50_000 ()
  in
  Alcotest.(check bool)
    "wedges were cut by the watchdog" true
    (r.Report.runs_timed_out > 0);
  Alcotest.(check bool)
    "timed-out attempts were retried" true
    (r.Report.runs_retried > 0);
  Alcotest.(check bool)
    "exploration still made progress" true
    (r.Report.interleavings > 0)

(* With retries exhausted, a persistent injected crash is recorded as an
   ordinary Crash finding naming the fault. *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_exhausted_transient_is_recorded () =
  let spec = { Fault.inert with Fault.seed = 2; crash_prob = 1.0 } in
  let r = verify_adlb ~fault:spec ~jobs:1 ~max_retries:1 () in
  Alcotest.(check bool)
    "attempts were lost to injected faults" true
    (r.Report.runs_crashed > 0);
  Alcotest.(check bool)
    "the exhausted fault surfaces as a Crash finding" true
    (List.exists
       (fun (f : Report.finding) ->
         match f.Report.error with
         (* the registered printer names the fault in the message *)
         | Report.Crash { message; _ } -> contains message "Rank_killed"
         | _ -> false)
       r.Report.findings)

let () =
  Alcotest.run "fault"
    [
      ( "primitives",
        [
          Alcotest.test_case "splitmix derive" `Quick test_derive;
          Alcotest.test_case "spec parsing" `Quick test_spec_parsing;
          Alcotest.test_case "instance determinism" `Quick
            test_instance_determinism;
        ] );
      ( "exploration",
        [
          Alcotest.test_case "seeded report determinism" `Quick
            test_seeded_report_determinism;
          Alcotest.test_case "retries converge to fault-free" `Quick
            test_retries_converge;
          Alcotest.test_case "wedge vs watchdog (jobs=4)" `Quick
            test_wedge_watchdog;
          Alcotest.test_case "exhausted transient recorded" `Quick
            test_exhausted_transient_is_recorded;
        ] );
    ]
